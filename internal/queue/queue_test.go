package queue

import (
	"testing"
	"testing/quick"

	"fgp/internal/interp"
	"fgp/internal/ir"
)

func TestFIFOOrder(t *testing.T) {
	q := New(0, 0, 1, ir.I64, 4)
	for i := int64(0); i < 4; i++ {
		if q.Full() {
			t.Fatalf("queue full after %d pushes", i)
		}
		q.Push(interp.VI(i), 100+i, int32(i))
	}
	if !q.Full() {
		t.Error("queue should be full at capacity")
	}
	for i := int64(0); i < 4; i++ {
		e := q.Pop()
		if e.V.I != i || e.Edge != int32(i) || e.AvailAt != 100+i {
			t.Fatalf("pop %d = %+v", i, e)
		}
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestHeadDoesNotConsume(t *testing.T) {
	q := New(0, 0, 1, ir.F64, 2)
	q.Push(interp.VF(1.5), 7, 0)
	if q.Head().V.F != 1.5 || q.Len() != 1 {
		t.Error("Head must not consume")
	}
	if q.Pop().V.F != 1.5 || q.Len() != 0 {
		t.Error("Pop after Head wrong")
	}
}

func TestStats(t *testing.T) {
	q := New(3, 1, 2, ir.F64, 8)
	if q.Used() {
		t.Error("fresh queue must be unused")
	}
	q.Push(interp.VF(1), 0, 0)
	q.Push(interp.VF(2), 0, 1)
	q.Pop()
	q.Push(interp.VF(3), 0, 2)
	if !q.Used() || q.Transfers != 3 || q.Peak != 2 {
		t.Errorf("stats: used=%v transfers=%d peak=%d", q.Used(), q.Transfers, q.Peak)
	}
}

func TestPanics(t *testing.T) {
	q := New(0, 0, 1, ir.I64, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pop on empty must panic")
			}
		}()
		q.Pop()
	}()
	q.Push(interp.VI(1), 0, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("push on full must panic")
			}
		}()
		q.Push(interp.VI(2), 0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero capacity must panic")
			}
		}()
		New(0, 0, 1, ir.I64, 0)
	}()
}

// Property: any interleaving of pushes and pops preserves FIFO order, the
// entry sequence numbers pair the k-th pop with the k-th push, and the
// stats stay consistent with occupancy at every step.
func TestQuickFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		q := New(0, 0, 1, ir.I64, 16)
		next := int64(0)   // next value to push
		expect := int64(0) // next value we must pop
		for _, push := range ops {
			if push {
				if q.Full() {
					continue
				}
				q.Push(interp.VI(next), next, int32(next))
				next++
			} else {
				if q.Empty() {
					continue
				}
				e := q.Pop()
				if e.V.I != expect || e.Seq != expect {
					return false
				}
				expect++
			}
			if q.CheckStats() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPairingViolationDetected corrupts the ring from inside the package
// (as a head-arithmetic bug would) and checks that Pop refuses to hand out
// an entry whose push sequence number does not match the pop sequence.
func TestPairingViolationDetected(t *testing.T) {
	q := New(0, 0, 1, ir.I64, 4)
	q.Push(interp.VI(10), 0, 0)
	q.Push(interp.VI(11), 0, 1)
	q.buf[q.head].Seq = 1 // the head now claims to be the second push
	defer func() {
		if recover() == nil {
			t.Error("pop of a mispaired entry must panic")
		}
	}()
	q.Pop()
}

// TestCheckStatsDetectsDrift breaks each counter relation CheckStats
// guards and confirms it reports the drift.
func TestCheckStatsDetectsDrift(t *testing.T) {
	mk := func() *Queue {
		q := New(0, 0, 1, ir.I64, 4)
		q.Push(interp.VI(1), 0, 0)
		q.Push(interp.VI(2), 0, 1)
		q.Pop()
		return q
	}
	if q := mk(); q.CheckStats() != nil {
		t.Fatalf("healthy queue flagged: %v", q.CheckStats())
	}
	q := mk()
	q.Transfers++ // a push the ring never saw
	if q.CheckStats() == nil {
		t.Error("transfer/occupancy drift not detected")
	}
	q = mk()
	q.Peak = 0 // below current occupancy
	if q.CheckStats() == nil {
		t.Error("peak below occupancy not detected")
	}
	q = mk()
	q.used = false // transfers happened but used says otherwise
	if q.CheckStats() == nil {
		t.Error("used/transfers disagreement not detected")
	}
}
