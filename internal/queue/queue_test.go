package queue

import (
	"testing"
	"testing/quick"

	"fgp/internal/interp"
	"fgp/internal/ir"
)

func TestFIFOOrder(t *testing.T) {
	q := New(0, 0, 1, ir.I64, 4)
	for i := int64(0); i < 4; i++ {
		if q.Full() {
			t.Fatalf("queue full after %d pushes", i)
		}
		q.Push(interp.VI(i), 100+i, int32(i))
	}
	if !q.Full() {
		t.Error("queue should be full at capacity")
	}
	for i := int64(0); i < 4; i++ {
		e := q.Pop(0)
		if e.V.I != i || e.Edge != int32(i) || e.AvailAt != 100+i {
			t.Fatalf("pop %d = %+v", i, e)
		}
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestHeadDoesNotConsume(t *testing.T) {
	q := New(0, 0, 1, ir.F64, 2)
	q.Push(interp.VF(1.5), 7, 0)
	if q.Head().V.F != 1.5 || q.Len() != 1 {
		t.Error("Head must not consume")
	}
	if q.Pop(0).V.F != 1.5 || q.Len() != 0 {
		t.Error("Pop after Head wrong")
	}
}

func TestStats(t *testing.T) {
	q := New(3, 1, 2, ir.F64, 8)
	if q.Used() {
		t.Error("fresh queue must be unused")
	}
	q.Push(interp.VF(1), 0, 0)
	q.Push(interp.VF(2), 0, 1)
	q.Pop(0)
	q.Push(interp.VF(3), 0, 2)
	if !q.Used() || q.Transfers != 3 || q.Peak != 2 {
		t.Errorf("stats: used=%v transfers=%d peak=%d", q.Used(), q.Transfers, q.Peak)
	}
}

func TestPanics(t *testing.T) {
	q := New(0, 0, 1, ir.I64, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pop on empty must panic")
			}
		}()
		q.Pop(0)
	}()
	q.Push(interp.VI(1), 0, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("push on full must panic")
			}
		}()
		q.Push(interp.VI(2), 0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero capacity must panic")
			}
		}()
		New(0, 0, 1, ir.I64, 0)
	}()
}

// Property: any interleaving of pushes and pops preserves FIFO order, the
// entry sequence numbers pair the k-th pop with the k-th push, and the
// stats stay consistent with occupancy at every step.
func TestQuickFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		q := New(0, 0, 1, ir.I64, 16)
		next := int64(0)   // next value to push
		expect := int64(0) // next value we must pop
		for _, push := range ops {
			if push {
				if q.Full() {
					continue
				}
				q.Push(interp.VI(next), next, int32(next))
				next++
			} else {
				if q.Empty() {
					continue
				}
				e := q.Pop(0)
				if e.V.I != expect || e.Seq != expect {
					return false
				}
				expect++
			}
			if q.CheckStats() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPairingViolationDetected corrupts the ring from inside the package
// (as a head-arithmetic bug would) and checks that Pop refuses to hand out
// an entry whose push sequence number does not match the pop sequence.
func TestPairingViolationDetected(t *testing.T) {
	q := New(0, 0, 1, ir.I64, 4)
	q.Push(interp.VI(10), 0, 0)
	q.Push(interp.VI(11), 0, 1)
	q.buf[q.head].Seq = 1 // the head now claims to be the second push
	defer func() {
		if recover() == nil {
			t.Error("pop of a mispaired entry must panic")
		}
	}()
	q.Pop(0)
}

// TestCheckStatsDetectsDrift breaks each counter relation CheckStats
// guards and confirms it reports the drift.
func TestCheckStatsDetectsDrift(t *testing.T) {
	mk := func() *Queue {
		q := New(0, 0, 1, ir.I64, 4)
		q.Push(interp.VI(1), 0, 0)
		q.Push(interp.VI(2), 0, 1)
		q.Pop(0)
		return q
	}
	if q := mk(); q.CheckStats() != nil {
		t.Fatalf("healthy queue flagged: %v", q.CheckStats())
	}
	q := mk()
	q.Transfers++ // a push the ring never saw
	if q.CheckStats() == nil {
		t.Error("transfer/occupancy drift not detected")
	}
	q = mk()
	q.Peak = 0 // below current occupancy
	if q.CheckStats() == nil {
		t.Error("peak below occupancy not detected")
	}
	q = mk()
	q.used = false // transfers happened but used says otherwise
	if q.CheckStats() == nil {
		t.Error("used/transfers disagreement not detected")
	}
}

// TestPushEarlyPeakReconstruction exercises the out-of-order peak
// accounting: a producer running ahead of the canonical schedule records
// provisional depths that later pops settle. Three early pushes at
// t=10,12,14 with one pop canonically between the first and second
// (u=11) must reconstruct a canonical peak of 2, not the observed 3.
func TestPushEarlyPeakReconstruction(t *testing.T) {
	q := New(0, 1, 0, ir.I64, 4) // dst < src: consumer wins same-cycle ties
	q.PushEarly(interp.VI(0), 20, 0, 10)
	q.PushEarly(interp.VI(1), 22, 0, 12)
	q.PushEarly(interp.VI(2), 24, 0, 14)
	if q.Peak != 0 {
		t.Fatalf("Peak settled prematurely: %d", q.Peak)
	}
	// Pop of seq 0 at u=11 canonically precedes the pushes at t=12 and
	// t=14, so their depths drop to 1 and 2; the pending at t=10 folds
	// at its observed depth 1.
	q.Pop(11)
	q.FoldPeak()
	if q.Peak != 2 {
		t.Fatalf("canonical peak = %d, want 2", q.Peak)
	}
}

// TestPushEarlySameCycleTies pins the same-cycle tie rule: an executed
// pop at exactly the early push's time canonically follows the push iff
// the producer core wins the scheduler tiebreak (lower id first), in
// which case the popped item still occupied the queue at the push.
func TestPushEarlySameCycleTies(t *testing.T) {
	// Producer wins (src 0 < dst 1): pop at t=7 counts back in.
	q := New(0, 0, 1, ir.I64, 4)
	q.Push(interp.VI(0), 5, 0)
	q.Pop(7)
	q.PushEarly(interp.VI(1), 9, 0, 7)
	q.FoldPeak()
	if q.Peak != 2 {
		t.Fatalf("producer-wins tie: peak = %d, want 2", q.Peak)
	}

	// Consumer wins (dst 0 < src 1): the pop precedes the push.
	q = New(0, 1, 0, ir.I64, 4)
	q.Push(interp.VI(0), 5, 0)
	q.Pop(7)
	q.PushEarly(interp.VI(1), 9, 0, 7)
	q.FoldPeak()
	if q.Peak != 1 {
		t.Fatalf("consumer-wins tie: peak = %d, want 1", q.Peak)
	}
}

// TestCheckStatsFoldsPending ensures quiescent stats checks see the
// reconstructed peak without an explicit FoldPeak call.
func TestCheckStatsFoldsPending(t *testing.T) {
	q := New(0, 0, 1, ir.F64, 2)
	q.PushEarly(interp.VF(1.5), 9, 0, 4)
	if err := q.CheckStats(); err != nil {
		t.Fatalf("CheckStats: %v", err)
	}
	if q.Peak != 1 {
		t.Fatalf("peak after CheckStats = %d, want 1", q.Peak)
	}
}
