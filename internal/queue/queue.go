// Package queue models the dedicated hardware communication queues the
// paper introduces (Section II, Fig 3): fixed-length FIFOs between a
// specific (sender core, receiver core) pair, one per register class, with
// a configurable transfer latency. An enqueued value becomes visible to the
// receiver only transfer-latency cycles after the enqueue issues (Fig 11);
// enqueues block while the queue is full and dequeues block until a value
// is visible.
package queue

import (
	"fmt"

	"fgp/internal/interp"
	"fgp/internal/ir"
)

// Entry is one in-flight value.
type Entry struct {
	V       interp.Value
	AvailAt int64 // simulation time at which the receiver may observe it
	Edge    int32 // communication-edge tag for debug verification
	Seq     int64 // push sequence number (0-based), stamped by Push
}

// Queue is one directional hardware queue.
type Queue struct {
	ID       int32
	Src, Dst int
	Class    ir.Kind
	Cap      int

	buf  []Entry // ring buffer of Cap entries
	head int     // index of the oldest entry
	n    int     // current occupancy
	used bool

	// Peak occupancy and transfer counts, for the evaluation's
	// "queues actually used" metric and general stats. Transfers counts
	// pushes and Pops counts pops, so Transfers-1 / Pops-1 are the
	// sequence numbers of the most recent push / pop — the observability
	// layer uses them to pair every dequeue with its enqueue (FIFO order
	// makes the k-th pop receive the k-th push).
	Transfers int64
	Pops      int64
	Peak      int
}

// New creates an empty queue with the given capacity.
func New(id int32, src, dst int, class ir.Kind, capacity int) *Queue {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: capacity must be >= 1, got %d", capacity))
	}
	return &Queue{ID: id, Src: src, Dst: dst, Class: class, Cap: capacity,
		buf: make([]Entry, capacity)}
}

// Full reports whether an enqueue would block.
func (q *Queue) Full() bool { return q.n >= q.Cap }

// Empty reports whether no entries are present (visible or not).
func (q *Queue) Empty() bool { return q.n == 0 }

// Len returns the current occupancy.
func (q *Queue) Len() int { return q.n }

// Used reports whether the queue ever carried a value.
func (q *Queue) Used() bool { return q.used }

// Push appends a value that becomes visible at availAt. The caller must
// have checked Full.
func (q *Queue) Push(v interp.Value, availAt int64, edge int32) {
	if q.Full() {
		panic("queue: push on full queue")
	}
	tail := q.head + q.n
	if tail >= q.Cap {
		tail -= q.Cap
	}
	q.buf[tail] = Entry{V: v, AvailAt: availAt, Edge: edge, Seq: q.Transfers}
	q.n++
	q.used = true
	q.Transfers++
	if q.n > q.Peak {
		q.Peak = q.n
	}
}

// Head returns the oldest entry without removing it. The caller must have
// checked Empty.
func (q *Queue) Head() Entry {
	if q.Empty() {
		panic("queue: head of empty queue")
	}
	return q.buf[q.head]
}

// Pop removes and returns the oldest entry. It enforces the stats pairing
// invariant the observability layer depends on: the k-th pop must receive
// the k-th push (entries carry their push sequence number, and FIFO order
// makes it equal to the pop sequence number). A mismatch means the ring
// arithmetic and the Transfers/Pops counters have drifted apart — every
// seq-paired flow arrow in the trace would silently point at the wrong
// enqueue — so it is a panic, like push-on-full, not an error.
func (q *Queue) Pop() Entry {
	e := q.Head()
	q.head++
	if q.head >= q.Cap {
		q.head = 0
	}
	q.n--
	q.Pops++
	if e.Seq != q.Pops-1 {
		panic(fmt.Sprintf("queue: %v pairing violated: pop %d received push %d", q, q.Pops-1, e.Seq))
	}
	return e
}

// CheckStats is the debug/test hook validating that the occupancy counters
// the observability layer pairs transfers with are mutually consistent. It
// can be called at any quiescent point (between simulator cycles, after a
// run); the simulator's tests run it after every drained program.
func (q *Queue) CheckStats() error {
	if got := q.Transfers - q.Pops; got != int64(q.n) {
		return fmt.Errorf("queue: %v stats drifted: %d pushes - %d pops = %d but occupancy is %d",
			q, q.Transfers, q.Pops, got, q.n)
	}
	if q.Peak < q.n {
		return fmt.Errorf("queue: %v peak %d below current occupancy %d", q, q.Peak, q.n)
	}
	if q.used != (q.Transfers > 0) {
		return fmt.Errorf("queue: %v used=%v disagrees with %d transfers", q, q.used, q.Transfers)
	}
	return nil
}

func (q *Queue) String() string {
	return fmt.Sprintf("q%d(%d->%d %s, %d/%d)", q.ID, q.Src, q.Dst, q.Class, q.n, q.Cap)
}
