// Package queue models the dedicated hardware communication queues the
// paper introduces (Section II, Fig 3): fixed-length FIFOs between a
// specific (sender core, receiver core) pair, one per register class, with
// a configurable transfer latency. An enqueued value becomes visible to the
// receiver only transfer-latency cycles after the enqueue issues (Fig 11);
// enqueues block while the queue is full and dequeues block until a value
// is visible.
package queue

import (
	"fmt"

	"fgp/internal/interp"
	"fgp/internal/ir"
)

// Entry is one in-flight value.
type Entry struct {
	V       interp.Value
	AvailAt int64 // simulation time at which the receiver may observe it
	Edge    int32 // communication-edge tag for debug verification
	Seq     int64 // push sequence number (0-based), stamped by Push
}

// Queue is one directional hardware queue.
type Queue struct {
	ID       int32
	Src, Dst int
	Class    ir.Kind
	Cap      int

	buf  []Entry // ring buffer of Cap entries
	head int     // index of the oldest entry
	n    int     // current occupancy
	used bool

	// Peak occupancy and transfer counts, for the evaluation's
	// "queues actually used" metric and general stats. Transfers counts
	// pushes and Pops counts pops, so Transfers-1 / Pops-1 are the
	// sequence numbers of the most recent push / pop — the observability
	// layer uses them to pair every dequeue with its enqueue (FIFO order
	// makes the k-th pop receive the k-th push).
	Transfers int64
	Pops      int64
	Peak      int

	// Out-of-order peak reconstruction (see PushEarly). pend holds pushes
	// whose canonical-order depth is not yet settled; dstFirst breaks
	// same-cycle ties the way the scheduler does (lower core id first).
	// lastPopT/lastPopRun track the trailing run of pops sharing one
	// execution time, for the tie adjustment in PushEarly.
	pend       []pendPeak
	lastPopT   int64
	lastPopRun int
	dstFirst   bool
}

// pendPeak is one PushEarly depth observation awaiting settlement: the
// push's execution time and sequence number, and the provisional depth the
// canonical schedule would have recorded (decremented as later pops turn
// out to precede the push in canonical order).
type pendPeak struct {
	t   int64
	seq int64
	d   int
}

// New creates an empty queue with the given capacity.
func New(id int32, src, dst int, class ir.Kind, capacity int) *Queue {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: capacity must be >= 1, got %d", capacity))
	}
	return &Queue{ID: id, Src: src, Dst: dst, Class: class, Cap: capacity,
		buf: make([]Entry, capacity), dstFirst: dst < src, lastPopT: -1}
}

// Full reports whether an enqueue would block.
func (q *Queue) Full() bool { return q.n >= q.Cap }

// Empty reports whether no entries are present (visible or not).
func (q *Queue) Empty() bool { return q.n == 0 }

// Len returns the current occupancy.
func (q *Queue) Len() int { return q.n }

// Used reports whether the queue ever carried a value.
func (q *Queue) Used() bool { return q.used }

// Push appends a value that becomes visible at availAt. The caller must
// have checked Full.
func (q *Queue) Push(v interp.Value, availAt int64, edge int32) {
	if q.Full() {
		panic("queue: push on full queue")
	}
	tail := q.head + q.n
	if tail >= q.Cap {
		tail -= q.Cap
	}
	q.buf[tail] = Entry{V: v, AvailAt: availAt, Edge: edge, Seq: q.Transfers}
	q.n++
	q.used = true
	q.Transfers++
	if q.n > q.Peak {
		q.Peak = q.n
	}
}

// PushEarly appends a value like Push, but for a producer running ahead of
// the scheduler's canonical (time, core-id) order: the push executes at
// producer time t even though pops with earlier canonical order may not
// have run yet. The current occupancy is therefore only a provisional
// depth, so instead of updating Peak directly the observation is parked on
// a pending list and settled as the consumer's pops reveal their order
// (Pop decrements pendings it canonically precedes and folds settled ones
// into Peak; FoldPeak folds the rest at quiescence). Two facts keep this
// exact with a tiny list: the queue is point-to-point, and each core's
// execution time is monotone, so every pending settles as soon as the
// consumer's time passes t.
//
// One executed-pop case needs an adjustment at push time rather than pop
// time: a guarded pop may already have run at exactly time t (guarded pops
// always satisfy pop-time <= t), and if the producer wins the same-cycle
// tie that pop canonically happens after this push, meaning the item it
// removed canonically still occupied the queue here. Such pops are exactly
// the trailing run of pops at time t, counted by lastPopRun.
func (q *Queue) PushEarly(v interp.Value, availAt int64, edge int32, t int64) {
	if q.Full() {
		panic("queue: push on full queue")
	}
	tail := q.head + q.n
	if tail >= q.Cap {
		tail -= q.Cap
	}
	seq := q.Transfers
	q.buf[tail] = Entry{V: v, AvailAt: availAt, Edge: edge, Seq: seq}
	q.n++
	q.used = true
	q.Transfers++
	d := q.n
	if q.lastPopT == t && !q.dstFirst {
		d += q.lastPopRun
	}
	q.pend = append(q.pend, pendPeak{t: t, seq: seq, d: d})
}

// Head returns the oldest entry without removing it. The caller must have
// checked Empty.
func (q *Queue) Head() Entry {
	if q.Empty() {
		panic("queue: head of empty queue")
	}
	return q.buf[q.head]
}

// Pop removes and returns the oldest entry; u is the consumer core's
// execution time at the dequeue (before any visibility stall), which
// settles pending PushEarly depth observations: a pop of an older item
// that canonically precedes a pending push means that push's canonical
// depth was one lower, while a pop at or past a pending push's order can
// never be preceded by a later pop (pop times are monotone), so that
// pending folds into Peak.
//
// Pop also enforces the stats pairing invariant the observability layer
// depends on: the k-th pop must receive the k-th push (entries carry their
// push sequence number, and FIFO order makes it equal to the pop sequence
// number). A mismatch means the ring arithmetic and the Transfers/Pops
// counters have drifted apart — every seq-paired flow arrow in the trace
// would silently point at the wrong enqueue — so it is a panic, like
// push-on-full, not an error.
func (q *Queue) Pop(u int64) Entry {
	e := q.Head()
	q.head++
	if q.head >= q.Cap {
		q.head = 0
	}
	q.n--
	q.Pops++
	if e.Seq != q.Pops-1 {
		panic(fmt.Sprintf("queue: %v pairing violated: pop %d received push %d", q, q.Pops-1, e.Seq))
	}
	if len(q.pend) > 0 {
		q.settle(u, e.Seq)
	}
	if u == q.lastPopT {
		q.lastPopRun++
	} else {
		q.lastPopT, q.lastPopRun = u, 1
	}
	return e
}

// settle updates pending PushEarly observations against a pop of item seq
// s at consumer execution time u. The pop canonically precedes a pending
// push at time t iff it pops an older item (s < seq — a pop of the push's
// own item reaches it only through the canonical block-then-wake retry,
// which orders after the push regardless of times) and its time orders
// first (u < t, producer winning same-cycle ties per dstFirst). A pending
// is settled once no future pop can precede it: future pops have larger
// seq and, by per-core time monotonicity, no earlier time.
func (q *Queue) settle(u int64, s int64) {
	keep := q.pend[:0]
	for _, p := range q.pend {
		before := u < p.t || (u == p.t && q.dstFirst)
		if s < p.seq && before {
			p.d--
		}
		if s+1 >= p.seq || !before {
			if p.d > q.Peak {
				q.Peak = p.d
			}
		} else {
			keep = append(keep, p)
		}
	}
	q.pend = keep
}

// FoldPeak folds any still-pending PushEarly depth observations into Peak.
// Call at quiescence (end of run, stats checks): with no further pops
// coming, every provisional depth is final.
func (q *Queue) FoldPeak() {
	for _, p := range q.pend {
		if p.d > q.Peak {
			q.Peak = p.d
		}
	}
	q.pend = q.pend[:0]
}

// CheckStats is the debug/test hook validating that the occupancy counters
// the observability layer pairs transfers with are mutually consistent. It
// can be called at any quiescent point (between simulator cycles, after a
// run); the simulator's tests run it after every drained program.
func (q *Queue) CheckStats() error {
	q.FoldPeak()
	if got := q.Transfers - q.Pops; got != int64(q.n) {
		return fmt.Errorf("queue: %v stats drifted: %d pushes - %d pops = %d but occupancy is %d",
			q, q.Transfers, q.Pops, got, q.n)
	}
	if q.Peak < q.n {
		return fmt.Errorf("queue: %v peak %d below current occupancy %d", q, q.Peak, q.n)
	}
	if q.used != (q.Transfers > 0) {
		return fmt.Errorf("queue: %v used=%v disagrees with %d transfers", q, q.used, q.Transfers)
	}
	return nil
}

func (q *Queue) String() string {
	return fmt.Sprintf("q%d(%d->%d %s, %d/%d)", q.ID, q.Src, q.Dst, q.Class, q.n, q.Cap)
}
