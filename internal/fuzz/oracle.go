package fuzz

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"fgp/internal/core"
	"fgp/internal/frontend"
	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/mem"
	"fgp/internal/obs"
	"fgp/internal/outline"
	"fgp/internal/sim"
	"fgp/internal/verify"
)

// OracleConfig selects the configuration matrix one kernel is checked
// against. The zero value checks the full default matrix: cores 1..4 ×
// speculation {off, on} × normalization {as-authored, split-at-3} × engine
// {burst, reference, threaded}, plus the metamorphic invariants.
type OracleConfig struct {
	// MaxCores bounds the core-count sweep (default 4).
	MaxCores int
	// Specs lists the speculation settings to compile (default {false, true}).
	Specs []bool
	// Norms lists NormalizeOps settings to compile (default {0, 3}).
	Norms []int
	// SkipRepeat disables the run-twice determinism invariant.
	SkipRepeat bool
	// SearchBudget, when > 0, adds the partitioner lever to the matrix: at
	// one configuration per kernel (cores = MaxCores, no speculation, no
	// normalization) the loop is recompiled with Options.Partitioner =
	// "search" under this candidate budget, and the searched artifact must
	// match the interpreter ground truth bit-exactly on every engine —
	// "verifier accepts ⇒ oracle matches" extended to searched partitions.
	SearchBudget int
	// SearchSeed seeds the search leg's annealing phase.
	SearchSeed int64
	// MutateCompiled, when set, transforms the loop fed to the compiler
	// while the interpreter keeps running the original — a deliberate
	// miscompile injection used to prove the oracle catches real
	// divergence (the mutation self-test).
	MutateCompiled func(*ir.Loop) *ir.Loop
}

func (c OracleConfig) withDefaults() OracleConfig {
	if c.MaxCores <= 0 {
		c.MaxCores = 4
	}
	if c.Specs == nil {
		c.Specs = []bool{false, true}
	}
	if c.Norms == nil {
		c.Norms = []int{0, 3}
	}
	return c
}

// Mismatch describes one oracle failure: which configuration diverged from
// the interpreter ground truth (or from a metamorphic invariant) and how.
type Mismatch struct {
	Kernel string
	Cores  int
	Spec   bool
	Norm   int
	Engine string
	Stage  string // "frontend", "compile", "verify", "run", "memory", "liveout", "invariant"
	Detail string
}

func (m *Mismatch) Error() string {
	eng := m.Engine
	if eng == "" {
		eng = sim.EngineBurst
	}
	return fmt.Sprintf("fuzz: %s: cores=%d spec=%v norm=%d engine=%s: %s: %s",
		m.Kernel, m.Cores, m.Spec, m.Norm, eng, m.Stage, m.Detail)
}

// roundTrip formats the loop, reparses the text, and compares canonical
// wire encodings; a non-empty return describes the divergence.
func roundTrip(l *ir.Loop) string {
	src := frontend.Format(l)
	l2, err := frontend.Parse([]byte(src))
	if err != nil {
		return fmt.Sprintf("formatted loop does not reparse: %v\nsource:\n%s", err, src)
	}
	b1, err := ir.MarshalLoop(l)
	if err != nil {
		return fmt.Sprintf("marshal original: %v", err)
	}
	b2, err := ir.MarshalLoop(l2)
	if err != nil {
		return fmt.Sprintf("marshal reparse: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		return fmt.Sprintf("round trip changed the wire encoding\nsource:\n%s\nwant %s\ngot  %s", src, b1, b2)
	}
	return ""
}

// isTrap reports whether err is a semantic trap (division by zero or an
// out-of-bounds access) as opposed to an infrastructure failure such as a
// deadlock or FIFO mismatch. Traps are legitimate program outcomes the
// compiled code must reproduce; anything else failing is always a bug.
func isTrap(err error) bool {
	return errors.Is(err, interp.ErrDivByZero) ||
		errors.Is(err, interp.ErrOutOfBounds) ||
		errors.Is(err, mem.ErrOutOfBounds)
}

// Check runs the differential oracle for one loop. It returns nil when
// every configuration in the matrix reproduces the interpreter bit-exactly
// and all metamorphic invariants hold, and a *Mismatch otherwise.
func Check(l *ir.Loop, oc OracleConfig) error {
	oc = oc.withDefaults()

	// Front-door invariant: every oracle subject must survive the
	// parse∘print round trip. frontend.Format is the IR's source-level
	// normal form; a loop that formats to text reparsing differently would
	// split the compile cache by submission route (source vs wire).
	if detail := roundTrip(l); detail != "" {
		return &Mismatch{Kernel: l.Name, Stage: "frontend", Detail: detail}
	}

	ref, rerr := interp.Run(l)
	if rerr != nil && !isTrap(rerr) {
		return &Mismatch{Kernel: l.Name, Stage: "run",
			Detail: fmt.Sprintf("interpreter failed non-trap: %v", rerr)}
	}

	compiled := l
	if oc.MutateCompiled != nil {
		compiled = oc.MutateCompiled(l)
	}

	for _, norm := range oc.Norms {
		for _, spec := range oc.Specs {
			// The profile depends on the loop and pre-lowering transforms,
			// not the core count: measure once, reuse across the sweep.
			popt := core.DefaultOptions(1)
			popt.Speculate = spec
			popt.NormalizeOps = norm
			prof, perr := core.ComputeProfile(compiled, popt)
			if perr != nil {
				// A trapping kernel traps during profiling too — that is the
				// expected outcome, not a mismatch; compile without profile
				// feedback and still require every simulation to trap.
				if rerr == nil || !isTrap(perr) {
					return &Mismatch{Kernel: l.Name, Cores: 1, Spec: spec, Norm: norm,
						Stage: "compile", Detail: fmt.Sprintf("profiling run: %v", perr)}
				}
				prof = nil
			}
			for cores := 1; cores <= oc.MaxCores; cores++ {
				opt := core.DefaultOptions(cores)
				opt.Speculate = spec
				opt.NormalizeOps = norm
				if prof != nil {
					opt.Profile = prof
				} else {
					opt.UseProfile = false
				}
				art, cerr := core.Compile(compiled, opt)
				if cerr != nil {
					// A static-verifier rejection gets its own stage so
					// shrink reports show the structured diagnostics rather
					// than a generic compile failure.
					stage := "compile"
					var ve *verify.Error
					if errors.As(cerr, &ve) {
						stage = "verify"
					}
					return &Mismatch{Kernel: l.Name, Cores: cores, Spec: spec, Norm: norm,
						Stage: stage, Detail: cerr.Error()}
				}
				results := map[string]*sim.Result{}
				recs := map[string]*obs.Recorder{}
				for _, eng := range sim.Engines() {
					res, rec, err := checkRun(l, art, ref, rerr, eng)
					if err != nil {
						m := err.(*Mismatch)
						m.Cores, m.Spec, m.Norm, m.Engine = cores, spec, norm, eng
						return m
					}
					results[eng] = res
					recs[eng] = rec
				}
				burstRes, refRes := results[sim.EngineBurst], results[sim.EngineReference]
				burstRec, refRec := recs[sim.EngineBurst], recs[sim.EngineReference]
				// Invariant: every engine is bit-identical to the reference
				// scheduler — full counter equality, not just the headline
				// cycle count, so relaxed-order scheduling in the threaded
				// engine cannot hide behind matching totals (QueueHighWater in
				// particular observes canonical queue-depth order directly).
				for _, eng := range sim.Engines() {
					if eng == sim.EngineReference || results[eng] == nil || refRes == nil {
						continue
					}
					if d := diffResults(results[eng], refRes); d != "" {
						return &Mismatch{Kernel: l.Name, Cores: cores, Spec: spec, Norm: norm,
							Engine: eng, Stage: "invariant",
							Detail: fmt.Sprintf("diverges from reference: %s", d)}
					}
				}
				// Invariant: both engines deliver the identical canonical
				// event stream, and the per-cause stall windows sum exactly
				// to the aggregate queue-stall counters.
				if burstRec != nil && refRec != nil {
					if m := checkEvents(l.Name, burstRes, burstRec, refRec); m != nil {
						m.Cores, m.Spec, m.Norm = cores, spec, norm
						return m
					}
				}
				// Invariant: one core needs no communication at all.
				if cores == 1 && burstRes != nil && (burstRes.Transfers != 0 || burstRes.QueuesUsed != 0) {
					return &Mismatch{Kernel: l.Name, Cores: cores, Spec: spec, Norm: norm,
						Stage:  "invariant",
						Detail: fmt.Sprintf("queue traffic on 1 core: transfers=%d queues=%d", burstRes.Transfers, burstRes.QueuesUsed)}
				}
				// Partitioner lever: recompile with the simulator-guided
				// partition search and hold the searched artifact to the same
				// oracle — bit-identical memory and live-outs vs the
				// interpreter on every engine, engines bit-identical to each
				// other, and the searched partition never worse than the
				// heuristic seed it started from.
				if oc.SearchBudget > 0 && cores == oc.MaxCores && cores > 1 && !spec && norm == 0 {
					if m := checkSearch(l, compiled, ref, rerr, opt, oc); m != nil {
						m.Cores, m.Spec, m.Norm = cores, spec, norm
						return m
					}
				}
				// Invariant: repeat runs are cycle-deterministic, on the
				// default engine and on the threaded engine (whose artifact
				// cache makes the second run take the warm path). One
				// configuration per kernel keeps the cost bounded.
				if !oc.SkipRepeat && cores == oc.MaxCores && !spec && norm == 0 {
					for _, eng := range []string{sim.EngineBurst, sim.EngineThreaded} {
						first := results[eng]
						if first == nil {
							continue
						}
						res2, _, err := checkRun(l, art, ref, rerr, eng)
						if err != nil {
							m := err.(*Mismatch)
							m.Cores, m.Spec, m.Norm, m.Engine = cores, spec, norm, eng
							m.Stage = "invariant"
							m.Detail = "repeat run: " + m.Detail
							return m
						}
						if res2.Cycles != first.Cycles || res2.Transfers != first.Transfers {
							return &Mismatch{Kernel: l.Name, Cores: cores, Spec: spec, Norm: norm,
								Engine: eng, Stage: "invariant",
								Detail: fmt.Sprintf("nondeterministic repeat: cycles %d then %d", first.Cycles, res2.Cycles)}
						}
					}
				}
			}
		}
	}
	return nil
}

// checkSearch runs the search-partitioner oracle leg: compile with
// Options.Partitioner = "search", then require the searched artifact to
// reproduce the interpreter ground truth on every engine, all engines to
// agree with the reference bit for bit, and the search's own never-worse
// contract to hold. The returned Mismatch (nil = pass) has Cores/Spec/Norm
// filled in by the caller.
func checkSearch(l *ir.Loop, compiled *ir.Loop, ref *interp.Result, rerr error, opt core.Options, oc OracleConfig) *Mismatch {
	opt.Partitioner = core.PartitionerSearch
	opt.SearchBudget = oc.SearchBudget
	opt.SearchSeed = oc.SearchSeed
	art, cerr := core.Compile(compiled, opt)
	if cerr != nil {
		stage := "compile"
		var ve *verify.Error
		if errors.As(cerr, &ve) {
			stage = "verify"
		}
		return &Mismatch{Kernel: l.Name, Stage: stage,
			Detail: "search partitioner: " + cerr.Error()}
	}
	if art.Report.SearchCycles > art.Report.SearchBaselineCycles {
		return &Mismatch{Kernel: l.Name, Stage: "invariant",
			Detail: fmt.Sprintf("search partitioner worse than heuristic: %d > %d cycles",
				art.Report.SearchCycles, art.Report.SearchBaselineCycles)}
	}
	results := map[string]*sim.Result{}
	for _, eng := range sim.Engines() {
		res, _, err := checkRun(l, art, ref, rerr, eng)
		if err != nil {
			m := err.(*Mismatch)
			m.Engine = eng
			m.Detail = "search partitioner: " + m.Detail
			return m
		}
		results[eng] = res
	}
	refRes := results[sim.EngineReference]
	for _, eng := range sim.Engines() {
		if eng == sim.EngineReference || results[eng] == nil || refRes == nil {
			continue
		}
		if d := diffResults(results[eng], refRes); d != "" {
			return &Mismatch{Kernel: l.Name, Engine: eng, Stage: "invariant",
				Detail: "search partitioner diverges from reference: " + d}
		}
	}
	return nil
}

// checkEvents enforces the observability invariants between one kernel's
// burst and reference recordings: bit-identical canonical event streams,
// and per-cause stall-window sums equal to the aggregate EnqStalls and
// DeqStalls counters (the metamorphic link between the typed stream and
// the counters both engines already agree on).
func checkEvents(kernel string, res *sim.Result, burst, ref *obs.Recorder) *Mismatch {
	if len(burst.Events) != len(ref.Events) {
		return &Mismatch{Kernel: kernel, Stage: "invariant",
			Detail: fmt.Sprintf("event streams diverge: burst %d events, reference %d", len(burst.Events), len(ref.Events))}
	}
	for i := range burst.Events {
		if burst.Events[i] != ref.Events[i] {
			return &Mismatch{Kernel: kernel, Stage: "invariant",
				Detail: fmt.Sprintf("event %d diverges: burst %+v, reference %+v", i, burst.Events[i], ref.Events[i])}
		}
	}
	sums := obs.SumStalls(burst.Events)
	var enq, deq int64
	for i := range res.EnqStalls {
		enq += res.EnqStalls[i]
		deq += res.DeqStalls[i]
	}
	if sums[obs.CauseEnqFull] != enq {
		return &Mismatch{Kernel: kernel, Stage: "invariant",
			Detail: fmt.Sprintf("enq-full stall windows sum to %d, EnqStalls total %d", sums[obs.CauseEnqFull], enq)}
	}
	if sums[obs.CauseDeqEmpty] != deq {
		return &Mismatch{Kernel: kernel, Stage: "invariant",
			Detail: fmt.Sprintf("deq-empty stall windows sum to %d, DeqStalls total %d", sums[obs.CauseDeqEmpty], deq)}
	}
	return nil
}

// diffResults compares every deterministic counter of two engine results
// and describes the first divergence ("" when bit-identical). LiveOut and
// the memory image are checked against the interpreter separately; this is
// the engine-vs-engine half of the oracle.
func diffResults(got, want *sim.Result) string {
	if got.Cycles != want.Cycles {
		return fmt.Sprintf("cycles %d != %d", got.Cycles, want.Cycles)
	}
	if got.Transfers != want.Transfers {
		return fmt.Sprintf("transfers %d != %d", got.Transfers, want.Transfers)
	}
	if got.QueuesUsed != want.QueuesUsed || got.PairsUsed != want.PairsUsed {
		return fmt.Sprintf("queues/pairs %d/%d != %d/%d", got.QueuesUsed, got.PairsUsed, want.QueuesUsed, want.PairsUsed)
	}
	if got.LoadHits != want.LoadHits || got.LoadMisses != want.LoadMisses {
		return fmt.Sprintf("load hits/misses %d/%d != %d/%d", got.LoadHits, got.LoadMisses, want.LoadHits, want.LoadMisses)
	}
	if got.MemPortBusyCycles != want.MemPortBusyCycles {
		return fmt.Sprintf("port busy cycles %d != %d", got.MemPortBusyCycles, want.MemPortBusyCycles)
	}
	for _, v := range []struct {
		name      string
		got, want []int64
	}{
		{"per-core cycles", got.PerCoreCycles, want.PerCoreCycles},
		{"per-core instrs", got.PerCoreInstrs, want.PerCoreInstrs},
		{"enq stalls", got.EnqStalls, want.EnqStalls},
		{"deq stalls", got.DeqStalls, want.DeqStalls},
	} {
		if len(v.got) != len(v.want) {
			return fmt.Sprintf("%s length %d != %d", v.name, len(v.got), len(v.want))
		}
		for i := range v.got {
			if v.got[i] != v.want[i] {
				return fmt.Sprintf("%s[%d] %d != %d", v.name, i, v.got[i], v.want[i])
			}
		}
	}
	if len(got.QueueHighWater) != len(want.QueueHighWater) {
		return fmt.Sprintf("high-water length %d != %d", len(got.QueueHighWater), len(want.QueueHighWater))
	}
	for i := range got.QueueHighWater {
		if got.QueueHighWater[i] != want.QueueHighWater[i] {
			return fmt.Sprintf("queue %d high-water %d != %d", i, got.QueueHighWater[i], want.QueueHighWater[i])
		}
	}
	return ""
}

// checkRun simulates the artifact on one engine — recording the full event
// stream — and compares the final memory image and live-outs against the
// interpreter result. When the interpreter trapped (rerr != nil), the
// simulation must also trap and the value comparison is skipped. The
// returned error is always a *Mismatch.
//
// The threaded leg runs without an event sink: a sink makes runThreaded
// delegate to the burst decomposition by construction, which would leave the
// fused-block runtime unexercised. Its recorder is therefore nil and the
// event-stream invariants apply to the burst/reference pair only.
func checkRun(src *ir.Loop, art *core.Artifact, ref *interp.Result, rerr error, engine string) (*sim.Result, *obs.Recorder, error) {
	cfg := art.MachineConfig()
	cfg.DebugEdges = true
	cfg.Engine = engine
	var rec *obs.Recorder
	if engine != sim.EngineThreaded {
		rec = obs.NewRecorder()
		cfg.Sink = rec
	}
	img := outline.BuildMemory(art.Loop)
	m, err := sim.New(art.Compiled.Programs, img, cfg)
	if err != nil {
		return nil, nil, &Mismatch{Kernel: src.Name, Stage: "run", Detail: err.Error()}
	}
	res, err := m.Run()
	if rerr != nil {
		// Ground truth trapped: the compiled code must trap too.
		if err == nil {
			return nil, nil, &Mismatch{Kernel: src.Name, Stage: "run",
				Detail: fmt.Sprintf("interpreter trapped (%v) but simulation completed", rerr)}
		}
		if !isTrap(err) {
			return nil, nil, &Mismatch{Kernel: src.Name, Stage: "run",
				Detail: fmt.Sprintf("interpreter trapped (%v) but simulation failed differently: %v", rerr, err)}
		}
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, &Mismatch{Kernel: src.Name, Stage: "run", Detail: err.Error()}
	}
	for _, arr := range src.Arrays {
		if arr.K == ir.F64 {
			got, want := img.SnapshotF(arr.Name), ref.ArraysF[arr.Name]
			for i := range want {
				if !sameF64(got[i], want[i]) {
					return nil, nil, &Mismatch{Kernel: src.Name, Stage: "memory",
						Detail: fmt.Sprintf("%s[%d] = %v, want %v", arr.Name, i, got[i], want[i])}
				}
			}
		} else {
			got, want := img.SnapshotI(arr.Name), ref.ArraysI[arr.Name]
			for i := range want {
				if got[i] != want[i] {
					return nil, nil, &Mismatch{Kernel: src.Name, Stage: "memory",
						Detail: fmt.Sprintf("%s[%d] = %d, want %d", arr.Name, i, got[i], want[i])}
				}
			}
		}
	}
	for _, name := range src.LiveOut {
		got, ok := res.LiveOut[name]
		if !ok {
			return nil, nil, &Mismatch{Kernel: src.Name, Stage: "liveout",
				Detail: fmt.Sprintf("%q missing from simulation result", name)}
		}
		want, ok := ref.Temps[name]
		if !ok {
			return nil, nil, &Mismatch{Kernel: src.Name, Stage: "liveout",
				Detail: fmt.Sprintf("%q missing from interpreter result", name)}
		}
		if !sameValue(got, want) {
			return nil, nil, &Mismatch{Kernel: src.Name, Stage: "liveout",
				Detail: fmt.Sprintf("%q = %+v, want %+v", name, got, want)}
		}
	}
	return res, rec, nil
}

// sameF64 is bit-exact float equality except that any NaN matches any NaN:
// both paths execute the identical Go arithmetic, so payloads agree in
// practice, but the oracle does not depend on NaN bit patterns.
func sameF64(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameValue(a, b interp.Value) bool {
	if a.K != b.K {
		return false
	}
	if a.K == ir.F64 {
		return sameF64(a.F, b.F)
	}
	return a.I == b.I
}

// InjectMiscompile returns a copy of the loop with the first additive
// binary operator flipped (add<->sub) — a minimal, observable miscompile.
// ok is false when the loop has no eligible operator. The fuzz self-test
// feeds the result to OracleConfig.MutateCompiled to prove a real
// divergence is caught and minimized.
func InjectMiscompile(l *ir.Loop) (out *ir.Loop, ok bool) {
	c := l.Clone()
	flipped := false
	var flipExpr func(e ir.Expr) ir.Expr
	flipExpr = func(e ir.Expr) ir.Expr {
		if flipped {
			return e
		}
		switch x := e.(type) {
		case *ir.Bin:
			if x.Op == ir.Add || x.Op == ir.Sub {
				flipped = true
				op := ir.Add
				if x.Op == ir.Add {
					op = ir.Sub
				}
				return &ir.Bin{Op: op, L: x.L, R: x.R}
			}
			nl := flipExpr(x.L)
			nr := flipExpr(x.R)
			if nl != x.L || nr != x.R {
				return &ir.Bin{Op: x.Op, L: nl, R: nr}
			}
		case *ir.Un:
			nx := flipExpr(x.X)
			if nx != x.X {
				return &ir.Un{Op: x.Op, X: nx}
			}
		}
		return e
	}
	var flipStmts func(stmts []ir.Stmt) []ir.Stmt
	flipStmts = func(stmts []ir.Stmt) []ir.Stmt {
		out := make([]ir.Stmt, len(stmts))
		for i, s := range stmts {
			if flipped {
				out[i] = s
				continue
			}
			switch x := s.(type) {
			case *ir.Assign:
				out[i] = &ir.Assign{Src: x.Src, Dest: x.Dest, X: flipExpr(x.X)}
			case *ir.If:
				out[i] = &ir.If{Src: x.Src, Cond: x.Cond,
					Then: flipStmts(x.Then), Else: flipStmts(x.Else)}
			default:
				out[i] = s
			}
		}
		return out
	}
	c.Body = flipStmts(c.Body)
	return c, flipped
}
