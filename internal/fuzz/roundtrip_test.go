package fuzz

import (
	"testing"

	"fgp/internal/kernels"
)

// TestFrontendRoundTripSeeds sweeps the parse∘print invariant over many
// generator seeds directly — far more than the full oracle matrix can
// afford — so formatter/parser divergence surfaces here with a seed
// number, not as a slow Check failure.
func TestFrontendRoundTripSeeds(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 50
	}
	for seed := 0; seed < n; seed++ {
		l := Generate(uint64(seed), GenConfig{})
		if detail := roundTrip(l); detail != "" {
			t.Fatalf("seed %d: %s", seed, detail)
		}
	}
}

// TestFrontendRoundTripKernels runs the same invariant over the built-in
// catalog from the fuzz package's side (internal/frontend pins it too;
// this guards the oracle's own roundTrip helper against drift).
func TestFrontendRoundTripKernels(t *testing.T) {
	for _, k := range kernels.All() {
		if detail := roundTrip(k.Build()); detail != "" {
			t.Fatalf("%s: %s", k.Name, detail)
		}
	}
}
