package fuzz

import (
	"os"
	"path/filepath"
	"testing"

	"fgp/internal/interp"
	"fgp/internal/ir"
)

// testOracle is the matrix used by unit tests: full speculation/normalize
// coverage but three cores and no repeat run, keeping `go test` fast. The
// CLI (cmd/fgpfuzz) and the fuzz targets exercise the full default matrix.
func testOracle() OracleConfig {
	return OracleConfig{MaxCores: 3, SkipRepeat: true}
}

// TestGeneratorAlwaysValid pins the generator contract: every decoded loop
// validates and runs trap-free on the interpreter.
func TestGeneratorAlwaysValid(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	for seed := 0; seed < n; seed++ {
		l := Generate(uint64(seed), GenConfig{})
		if err := ir.Validate(l); err != nil {
			t.Fatalf("seed %d: invalid loop: %v\n%s", seed, err, ir.Print(l))
		}
		if _, err := interp.Run(l); err != nil {
			t.Fatalf("seed %d: interpreter trap: %v\n%s", seed, err, ir.Print(l))
		}
	}
}

// TestGeneratorDeterministic: same bytes, same loop.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := ir.Print(Generate(seed, GenConfig{}))
		b := ir.Print(Generate(seed, GenConfig{}))
		if a != b {
			t.Fatalf("seed %d: nondeterministic generation", seed)
		}
	}
}

// TestOracleSeeds is the in-tree differential sweep: a batch of generated
// kernels through the full interpreter-vs-compiled matrix.
func TestOracleSeeds(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 6
	}
	oc := testOracle()
	for seed := 0; seed < n; seed++ {
		l := Generate(uint64(seed), GenConfig{})
		if err := Check(l, oc); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, ir.Print(l))
		}
	}
}

// TestVerifierAcceptImpliesOracleMatch pins the metamorphic invariant
// linking the static verifier to the differential oracle: every compile
// inside Check now runs verify.Check first, so an oracle run that reaches
// the simulation stage is by construction a verifier-accepted program —
// and it must then match the interpreter. The two failure modes are kept
// distinct: a "verify" stage mismatch means the verifier rejected the
// compiler's own output (a verifier false positive or a real miscompile,
// either way a bug in this repo), while any later stage means a
// verifier-accepted program diverged (a soundness hole in the verifier).
func TestVerifierAcceptImpliesOracleMatch(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	oc := testOracle()
	for i := 0; i < n; i++ {
		seed := uint64(1000 + i) // disjoint from TestOracleSeeds
		l := Generate(seed, GenConfig{})
		err := Check(l, oc)
		if err == nil {
			continue
		}
		m := err.(*Mismatch)
		if m.Stage == "verify" {
			t.Fatalf("seed %d: verifier rejected the compiler's own output: %v\n%s",
				seed, err, ir.Print(l))
		}
		t.Fatalf("seed %d: verifier-accepted program diverged (%s stage): %v\n%s",
			seed, m.Stage, err, ir.Print(l))
	}
}

// TestOracleSearchLever extends the cross-product with the partitioner
// lever: for generated seeds, compiling with Options.Partitioner = "search"
// must stay bit-identical to the interpreter ground truth on every engine
// (memory and live-outs), the engines must agree with each other, and the
// searched partition must never be worse than the heuristic seed — i.e.
// "verifier accepts ⇒ oracle matches" holds for searched partitions too.
func TestOracleSearchLever(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	oc := OracleConfig{MaxCores: 3, SkipRepeat: true, Specs: []bool{false}, Norms: []int{0},
		SearchBudget: 10, SearchSeed: 7}
	for i := 0; i < n; i++ {
		seed := uint64(2000 + i) // disjoint from the other sweeps
		l := Generate(seed, GenConfig{})
		err := Check(l, oc)
		if err == nil {
			continue
		}
		m := err.(*Mismatch)
		if m.Stage == "verify" {
			t.Fatalf("seed %d: verifier rejected a searched compile: %v\n%s", seed, err, ir.Print(l))
		}
		t.Fatalf("seed %d: search-partitioned run diverged (%s stage): %v\n%s",
			seed, m.Stage, err, ir.Print(l))
	}
}

// TestInjectedMiscompileCaught is the mutation self-test demanded by the
// acceptance criteria: a deliberately miscompiled kernel must be flagged by
// the oracle and minimized by the shrinker to a strictly smaller kernel
// that still reproduces the divergence.
func TestInjectedMiscompileCaught(t *testing.T) {
	oc := testOracle()
	oc.Norms = []int{0}
	mutFails := func(l *ir.Loop) bool {
		c := oc
		c.MutateCompiled = func(x *ir.Loop) *ir.Loop {
			m, _ := InjectMiscompile(x)
			return m
		}
		return Check(l, c) != nil
	}
	for seed := uint64(0); seed < 10; seed++ {
		l := Generate(seed, GenConfig{})
		if _, ok := InjectMiscompile(l); !ok {
			continue
		}
		if !mutFails(l) {
			continue // flip happened to be unobservable; try another seed
		}
		shrunk := Shrink(l, mutFails, 400)
		if !mutFails(shrunk) {
			t.Fatalf("seed %d: shrinker returned a kernel that no longer fails\n%s", seed, ir.Print(shrunk))
		}
		if got, orig := ir.CountStmts(shrunk.Body), ir.CountStmts(l.Body); got > orig {
			t.Fatalf("seed %d: shrinker grew the kernel: %d -> %d stmts", seed, orig, got)
		} else {
			t.Logf("seed %d: injected miscompile caught; minimized %d -> %d stmts, %d -> %d trips",
				seed, orig, got, l.Trips(), shrunk.Trips())
		}
		return
	}
	t.Fatal("no seed in 0..9 produced an observable injected miscompile — generator or oracle regressed")
}

// TestShrinkMachinery exercises the shrinker against a cheap structural
// predicate (no oracle): it must reach a minimal loop that still satisfies
// the predicate and prune now-unused declarations.
func TestShrinkMachinery(t *testing.T) {
	l := Generate(7, GenConfig{})
	hasGather := func(c *ir.Loop) bool {
		found := false
		ir.WalkStmts(c.Body, func(s ir.Stmt) {
			ir.StmtExprs(s, func(e ir.Expr) {
				ir.WalkExpr(e, func(n ir.Expr) {
					if ld, ok := n.(*ir.Load); ok && ld.Array == "idx" {
						found = true
					}
				})
			})
		})
		return found
	}
	if !hasGather(l) {
		t.Skip("seed 7 has no gather; adjust seed")
	}
	shrunk := Shrink(l, hasGather, 3000)
	if !hasGather(shrunk) {
		t.Fatal("shrunk loop lost the property")
	}
	if err := ir.Validate(shrunk); err != nil {
		t.Fatalf("shrunk loop invalid: %v\n%s", err, ir.Print(shrunk))
	}
	if ir.CountStmts(shrunk.Body) >= ir.CountStmts(l.Body) {
		t.Fatalf("no reduction: %d -> %d stmts", ir.CountStmts(l.Body), ir.CountStmts(shrunk.Body))
	}
	if shrunk.Trips() >= l.Trips() {
		t.Fatalf("trip count not reduced: %d -> %d", l.Trips(), shrunk.Trips())
	}
}

// TestCrasherCorpus replays every committed crasher byte input through the
// full default oracle matrix. A crasher lands here together with the fix
// that made it pass, so the corpus is a cross-package regression suite for
// the whole pipeline.
func TestCrasherCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "crashers", "*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Skip("no committed crashers")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(filepath.Base(f), func(t *testing.T) {
			l := FromBytes(data, GenConfig{})
			if err := Check(l, OracleConfig{}); err != nil {
				t.Fatalf("%v\n%s", err, ir.Print(l))
			}
		})
	}
}

// FuzzDifferential is the native entry point for Go's coverage-guided
// engine: arbitrary byte strings decode to valid kernels, which must agree
// with the interpreter across the multi-core matrix.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(SeedBytes(seed))
	}
	oc := OracleConfig{MaxCores: 3, SkipRepeat: true}
	f.Fuzz(func(t *testing.T, data []byte) {
		l := FromBytes(data, GenConfig{Trips: 12, MaxStmts: 8})
		if err := ir.Validate(l); err != nil {
			t.Fatalf("generator produced invalid loop: %v\n%s", err, ir.Print(l))
		}
		if err := Check(l, oc); err != nil {
			t.Fatalf("%v\n%s", err, ir.Print(l))
		}
	})
}

// FuzzSequential is the high-throughput target: single-core compilation
// (through normalization, speculation, lowering, outlining) against the
// interpreter. It executes an order of magnitude more kernels per second
// than FuzzDifferential, catching front-of-pipeline semantics bugs fast.
func FuzzSequential(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(SeedBytes(seed))
	}
	oc := OracleConfig{MaxCores: 1, SkipRepeat: true}
	f.Fuzz(func(t *testing.T, data []byte) {
		l := FromBytes(data, GenConfig{Trips: 10, MaxStmts: 6})
		if err := Check(l, oc); err != nil {
			t.Fatalf("%v\n%s", err, ir.Print(l))
		}
	})
}
