// Package fuzz is the differential fuzzing harness for the whole compiler
// pipeline. It generates random (but valid) IR loops, runs each one through
// the reference interpreter as ground truth and through the full
// compile-and-simulate path across a configuration matrix (core counts,
// speculation, tree normalization, burst vs. reference engine), and demands
// bit-identical final memory and live-out values everywhere, plus a set of
// metamorphic invariants (determinism across repeat runs, zero queue
// traffic on one core). A shrinker minimizes failing kernels by statement
// and expression deletion so a crasher lands as a small readable loop.
//
// The generator decodes a byte string: every structural decision consumes
// one byte of the input while it lasts and falls back to a deterministic
// PRNG continuation afterwards, so the same code path serves seeded batch
// runs (cmd/fgpfuzz), the committed crasher corpus, and Go's native fuzzing
// engine (go test -fuzz), whose mutations of the byte string translate
// directly into structural mutations of the loop.
package fuzz

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"fgp/internal/ir"
)

// GenConfig bounds the generated loop shapes.
type GenConfig struct {
	// Trips is the loop trip count; arrays have Trips+2 elements. 0 means
	// the default (20).
	Trips int
	// MaxStmts caps the random top-level statements (the generator appends
	// a fixed observable epilogue on top). 0 means the default (10).
	MaxStmts int
	// MaxDepth caps expression tree depth. 0 means the default (3).
	MaxDepth int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Trips <= 0 {
		c.Trips = 20
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 10
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	return c
}

// src is the decision stream: bytes first, PRNG continuation after. Mixing
// each consumed byte into the xorshift state keeps the continuation
// dependent on the whole prefix, so distinct inputs diverge everywhere.
type src struct {
	data []byte
	pos  int
	s    uint64
}

func newSrc(data []byte) *src {
	return &src{data: data, s: 0x9e3779b97f4a7c15}
}

func (r *src) rnd(n int) int {
	if n <= 1 {
		return 0
	}
	var b byte
	if r.pos < len(r.data) {
		b = r.data[r.pos]
		r.pos++
	}
	r.s ^= uint64(b) + 0x9e3779b97f4a7c15 + (r.s << 6) + (r.s >> 2)
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return int((r.s * 0x2545f4914f6cdd1d) >> 33 % uint64(n))
}

// SeedBytes encodes a numeric seed as the canonical 8-byte input, so batch
// runs, crasher files, and go-fuzz corpus entries share one format.
func SeedBytes(seed uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seed)
	return b[:]
}

// Generate builds the loop for a numeric seed (shorthand for
// FromBytes(SeedBytes(seed), cfg)).
func Generate(seed uint64, cfg GenConfig) *ir.Loop {
	return FromBytes(SeedBytes(seed), cfg)
}

// FromBytes decodes a byte string into a valid loop. The result always
// passes ir.Validate; the generator never emits trapping operations
// (indices are clamped or masked in-bounds, integer denominators are forced
// odd and nonzero), so the interpreter ground truth always succeeds.
func FromBytes(data []byte, cfg GenConfig) *ir.Loop {
	cfg = cfg.withDefaults()
	h := fnv.New64a()
	h.Write(data)
	g := &gen{
		r:   newSrc(data),
		cfg: cfg,
		n:   cfg.Trips + 2,
	}
	b := ir.NewBuilder(fmt.Sprintf("fuzz-%x", h.Sum64()), "i", 1, int64(cfg.Trips)+1, 1)
	g.b = b

	n := g.n
	fa := make([]float64, n)
	fb := make([]float64, n)
	gi := make([]int64, n)
	idx := make([]int64, n)
	of := make([]float64, n)
	oi := make([]int64, n)
	for i := 0; i < n; i++ {
		fa[i] = float64(g.r.rnd(64)-32) * 0.25
		fb[i] = float64(g.r.rnd(48)+1) * 0.125
		gi[i] = int64(g.r.rnd(33) - 16)
		idx[i] = int64(g.r.rnd(n)) // aliasing gather/scatter targets
		of[i] = float64(g.r.rnd(16)) * 0.5
		oi[i] = int64(g.r.rnd(9) - 4)
	}
	b.ArrayF("f0", fa)
	b.ArrayF("f1", fb)
	b.ArrayI("g0", gi)
	b.ArrayI("idx", idx)
	b.ArrayF("of", of)
	b.ArrayI("oi", oi)
	b.ScalarF("facc", float64(g.r.rnd(9))*0.5)
	b.ScalarI("iacc", int64(g.r.rnd(7)))
	b.ScalarF("kf", float64(g.r.rnd(15)+1)*0.25)
	b.ScalarI("ki", int64(g.r.rnd(5)+1))
	g.ftmps = append(g.ftmps, "kf")
	g.itmps = append(g.itmps, "ki")
	b.LiveOut("facc", "iacc")

	// Optional loop-carried sweep: read the previous iteration's output.
	if g.r.rnd(3) == 0 {
		prev := g.name()
		b.Def(prev, ir.LDF("of", ir.SubE(b.Idx(), ir.I(1))))
		g.ftmps = append(g.ftmps, prev)
	}
	nStmts := 2 + g.r.rnd(cfg.MaxStmts)
	for s := 0; s < nStmts; s++ {
		g.statement(2)
	}
	// Fixed observable epilogue: both accumulators advance and the last
	// store depends on them, so every kernel has live output in both
	// register classes and through memory.
	b.Def("facc", ir.AddE(b.T("facc"), ir.MulE(g.fexpr(1), ir.F(0.125))))
	b.Def("iacc", ir.XorE(b.T("iacc"), g.iexpr(1)))
	b.StoreF("of", b.Idx(), ir.AddE(g.fexpr(1), b.T("facc")))
	b.StoreI("oi", g.index(), b.T("iacc"))
	if g.r.rnd(3) == 0 {
		last := g.name()
		b.Def(last, g.fexpr(1))
		b.LiveOut(last)
	}
	return b.MustBuild()
}

type gen struct {
	r     *src
	b     *ir.Builder
	cfg   GenConfig
	n     int // array length
	ftmps []string
	itmps []string
	fresh int
}

func (g *gen) name() string {
	g.fresh++
	return fmt.Sprintf("t%d", g.fresh)
}

// index produces an in-bounds I64 index expression; most alternatives alias
// unpredictably (gathered, masked, clamped), which is exactly what the
// dependence analysis and memory-token machinery must order correctly.
func (g *gen) index() ir.Expr {
	i := g.b.Idx()
	switch g.r.rnd(7) {
	case 0:
		return i
	case 1:
		return ir.AddE(i, ir.I(1))
	case 2:
		return ir.SubE(i, ir.I(1))
	case 3:
		return ir.LDI("idx", i) // values in [0, n)
	case 4:
		return ir.LDI("idx", ir.LDI("idx", i)) // double gather
	case 5:
		// Mask to [0, 15]; arrays always have >= 16 elements (Trips >= 14
		// not required: clamp below covers shorter arrays).
		if g.n >= 16 {
			return ir.AndE(g.iexpr(1), ir.I(15))
		}
		return g.clamp(g.iexpr(1))
	default:
		return g.clamp(g.iexpr(1))
	}
}

// clamp forces an arbitrary I64 expression into [0, n-1].
func (g *gen) clamp(e ir.Expr) ir.Expr {
	return ir.MinE(ir.MaxE(e, ir.I(0)), ir.I(int64(g.n-1)))
}

func (g *gen) fexpr(depth int) ir.Expr {
	if depth <= 0 {
		switch g.r.rnd(6) {
		case 0:
			return ir.F(float64(g.r.rnd(33)-16) * 0.25)
		case 1:
			if len(g.ftmps) > 0 {
				return g.b.T(g.ftmps[g.r.rnd(len(g.ftmps))])
			}
			return ir.F(1.5)
		case 2:
			return ir.LDF("f0", g.index())
		case 3:
			return ir.LDF("f1", g.index())
		case 4:
			return ir.LDF("of", g.index()) // load from the store target
		default:
			return ir.IToF(g.iexpr(0))
		}
	}
	switch g.r.rnd(11) {
	case 0:
		return ir.AddE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 1:
		return ir.SubE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 2:
		return ir.MulE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 3:
		return ir.MinE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 4:
		return ir.MaxE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 5:
		return ir.SqrtE(ir.AbsE(g.fexpr(depth - 1)))
	case 6:
		// Denominator bounded away from zero.
		return ir.DivE(g.fexpr(depth-1), ir.AddE(ir.AbsE(g.fexpr(depth-1)), ir.F(0.5)))
	case 7:
		return ir.FloorE(g.fexpr(depth - 1))
	case 8:
		return ir.LogE(ir.AddE(ir.AbsE(g.fexpr(depth-1)), ir.F(0.25)))
	case 9:
		return ir.IToF(g.iexpr(depth - 1))
	default:
		return ir.NegE(g.fexpr(depth - 1))
	}
}

func (g *gen) iexpr(depth int) ir.Expr {
	if depth <= 0 {
		switch g.r.rnd(6) {
		case 0:
			return ir.I(int64(g.r.rnd(15) - 7))
		case 1:
			if len(g.itmps) > 0 {
				return g.b.T(g.itmps[g.r.rnd(len(g.itmps))])
			}
			return g.b.Idx()
		case 2:
			return g.b.Idx()
		case 3:
			return ir.LDI("g0", g.index())
		case 4:
			return ir.LDI("oi", g.index()) // load from the store target
		default:
			return ir.LDI("idx", g.b.Idx())
		}
	}
	switch g.r.rnd(12) {
	case 0:
		return ir.AddE(g.iexpr(depth-1), g.iexpr(depth-1))
	case 1:
		return ir.SubE(g.iexpr(depth-1), g.iexpr(depth-1))
	case 2:
		return ir.AndE(g.iexpr(depth-1), g.iexpr(depth-1))
	case 3:
		return ir.OrE(g.iexpr(depth-1), g.iexpr(depth-1))
	case 4:
		return ir.XorE(g.iexpr(depth-1), g.iexpr(depth-1))
	case 5:
		return ir.ShlE(ir.AndE(g.iexpr(depth-1), ir.I(255)), ir.I(int64(g.r.rnd(4))))
	case 6:
		return ir.ShrE(g.iexpr(depth-1), ir.I(int64(g.r.rnd(4))))
	case 7:
		// Denominator (x&7)|1 is odd and nonzero: no trap, still dynamic.
		return ir.DivE(g.iexpr(depth-1), ir.OrE(ir.AndE(g.iexpr(depth-1), ir.I(7)), ir.I(1)))
	case 8:
		return ir.RemE(g.iexpr(depth-1), ir.OrE(ir.AndE(g.iexpr(depth-1), ir.I(7)), ir.I(1)))
	case 9:
		return g.cmp(depth - 1)
	case 10:
		return ir.MulE(g.iexpr(depth-1), ir.I(int64(1+g.r.rnd(3))))
	default:
		return ir.MinE(g.iexpr(depth-1), g.iexpr(depth-1))
	}
}

// cmp builds an I64 0/1 comparison over either register class.
func (g *gen) cmp(depth int) ir.Expr {
	ops := []func(l, r ir.Expr) ir.Expr{ir.EqE, ir.NeE, ir.LtE, ir.LeE, ir.GtE, ir.GeE}
	op := ops[g.r.rnd(len(ops))]
	if g.r.rnd(2) == 0 {
		return op(g.fexpr(depth), g.fexpr(depth))
	}
	return op(g.iexpr(depth), g.iexpr(depth))
}

func (g *gen) cond() ir.Expr {
	switch g.r.rnd(4) {
	case 0:
		return g.cmp(1)
	case 1:
		return ir.NeE(ir.AndE(g.b.Idx(), ir.I(int64(1+g.r.rnd(3)))), ir.I(0))
	case 2:
		return ir.NotE(g.cmp(1))
	default:
		return ir.LeE(g.iexpr(1), ir.I(int64(g.r.rnd(9)-2)))
	}
}

// statement emits one top-level statement; ifDepth bounds conditional
// nesting.
func (g *gen) statement(ifDepth int) {
	b := g.b
	d := 1 + g.r.rnd(g.cfg.MaxDepth)
	switch g.r.rnd(10) {
	case 0: // new F64 temp
		n := g.name()
		b.Def(n, g.fexpr(d))
		g.ftmps = append(g.ftmps, n)
	case 1: // new I64 temp
		n := g.name()
		b.Def(n, g.iexpr(d))
		g.itmps = append(g.itmps, n)
	case 2: // direct F64 store
		b.StoreF("of", g.index(), g.fexpr(d))
	case 3: // direct I64 store
		b.StoreI("oi", g.index(), g.iexpr(d))
	case 4: // indirect read-modify-write through the gather array
		g.rmw()
	case 5: // F64 reduction
		g.faccUpdate()
	case 6: // I64 reduction
		g.iaccUpdate()
	case 7: // scatter into the I64 output
		b.StoreI("oi", ir.LDI("idx", b.Idx()), g.iexpr(1+g.r.rnd(2)))
	case 8: // loop-carried use of the output array
		n := g.name()
		b.Def(n, ir.MulE(ir.LDF("of", ir.SubE(b.Idx(), ir.I(1))), ir.F(0.5)))
		g.ftmps = append(g.ftmps, n)
	default:
		if ifDepth > 0 {
			g.ifStmt(ifDepth)
		} else {
			b.StoreF("of", g.index(), g.fexpr(1))
		}
	}
}

// rmw emits slot = idx[i]; cur = A[slot]; A[slot] = cur ⊕ e — an aliasing
// read-modify-write the compiler must keep ordered via memory tokens.
func (g *gen) rmw() {
	b := g.b
	slot := g.name()
	b.Def(slot, ir.LDI("idx", b.Idx()))
	g.itmps = append(g.itmps, slot)
	if g.r.rnd(2) == 0 {
		cur := g.name()
		b.Def(cur, ir.LDF("of", b.T(slot)))
		b.StoreF("of", b.T(slot), ir.AddE(b.T(cur), g.fexpr(1)))
		g.ftmps = append(g.ftmps, cur)
	} else {
		cur := g.name()
		b.Def(cur, ir.LDI("oi", b.T(slot)))
		b.StoreI("oi", b.T(slot), ir.AddE(b.T(cur), g.iexpr(1)))
		g.itmps = append(g.itmps, cur)
	}
}

func (g *gen) faccUpdate() {
	b := g.b
	switch g.r.rnd(3) {
	case 0:
		b.Def("facc", ir.AddE(b.T("facc"), g.fexpr(1+g.r.rnd(2))))
	case 1:
		b.Def("facc", ir.MaxE(b.T("facc"), g.fexpr(1)))
	default:
		b.Def("facc", ir.AddE(ir.MulE(b.T("facc"), ir.F(0.5)), g.fexpr(1)))
	}
}

func (g *gen) iaccUpdate() {
	b := g.b
	switch g.r.rnd(4) {
	case 0:
		b.Def("iacc", ir.AddE(b.T("iacc"), g.iexpr(1+g.r.rnd(2))))
	case 1:
		b.Def("iacc", ir.XorE(b.T("iacc"), g.iexpr(1)))
	case 2:
		b.Def("iacc", ir.MinE(b.T("iacc"), g.iexpr(1)))
	default:
		b.Def("iacc", ir.AndE(b.T("iacc"), ir.OrE(g.iexpr(1), ir.I(3))))
	}
}

// scoped runs f and then drops any temps it registered: definitions made
// inside a conditional branch are not visible on all paths, so statements
// generated after the branch must not reference them.
func (g *gen) scoped(f func()) {
	nf, ni := len(g.ftmps), len(g.itmps)
	f()
	g.ftmps = g.ftmps[:nf]
	g.itmps = g.itmps[:ni]
}

// ifStmt emits a conditional. Branch bodies contain stores, accumulator
// updates, local RMWs, and optionally a nested conditional; when both
// branches define the same fresh temp, it becomes visible afterwards (the
// merged-definition pattern the validator and outliner must handle).
func (g *gen) ifStmt(ifDepth int) {
	b := g.b
	c := g.name()
	b.Def(c, g.cond())
	g.itmps = append(g.itmps, c)
	style := g.r.rnd(4)
	nThen := 1 + g.r.rnd(3)
	nElse := 1 + g.r.rnd(2)
	switch style {
	case 0: // both branches define the same fresh temp
		v := g.name()
		kindF := g.r.rnd(2) == 0
		b.If(b.T(c), func() {
			g.scoped(func() {
				for k := 0; k < nThen-1; k++ {
					g.branchStmt(ifDepth - 1)
				}
				if kindF {
					b.Def(v, g.fexpr(1+g.r.rnd(2)))
				} else {
					b.Def(v, g.iexpr(1+g.r.rnd(2)))
				}
			})
		}, func() {
			g.scoped(func() {
				for k := 0; k < nElse-1; k++ {
					g.branchStmt(ifDepth - 1)
				}
				if kindF {
					b.Def(v, g.fexpr(1))
				} else {
					b.Def(v, g.iexpr(1))
				}
			})
		})
		if kindF {
			g.ftmps = append(g.ftmps, v)
		} else {
			g.itmps = append(g.itmps, v)
		}
	case 1: // stores on both paths (same cell or different cells)
		b.If(b.T(c), func() {
			g.scoped(func() {
				for k := 0; k < nThen; k++ {
					g.branchStmt(ifDepth - 1)
				}
			})
		}, func() {
			g.scoped(func() {
				for k := 0; k < nElse; k++ {
					g.branchStmt(ifDepth - 1)
				}
			})
		})
	case 2: // empty else
		b.If(b.T(c), func() {
			g.scoped(func() {
				for k := 0; k < nThen; k++ {
					g.branchStmt(ifDepth - 1)
				}
			})
		}, nil)
	default: // then-only accumulator guard (speculation candidate shape)
		b.If(b.T(c), func() {
			g.faccUpdate()
		}, func() {
			g.iaccUpdate()
		})
	}
}

// branchStmt emits a statement legal inside a conditional: side effects on
// arrays and accumulators only (fresh temps would not dominate later uses),
// except for branch-local RMW temps consumed immediately.
func (g *gen) branchStmt(ifDepth int) {
	b := g.b
	switch g.r.rnd(6) {
	case 0:
		b.StoreF("of", g.index(), g.fexpr(1+g.r.rnd(2)))
	case 1:
		b.StoreI("oi", g.index(), g.iexpr(1))
	case 2:
		g.faccUpdate()
	case 3:
		g.iaccUpdate()
	case 4:
		if ifDepth > 0 {
			g.ifStmt(ifDepth)
			return
		}
		g.rmw()
	default:
		g.rmw()
	}
}
