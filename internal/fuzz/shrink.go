package fuzz

import (
	"fgp/internal/ir"
)

// Shrink minimizes a failing loop. fails must return true for the original
// loop (and for any candidate that still reproduces the failure); Shrink
// greedily applies size-reducing transformations — statement deletion
// (recursing into branches), conditional flattening, trip-count halving,
// live-out dropping, expression subtree replacement — keeping a candidate
// only when it still validates and still fails, until a fixpoint or until
// maxChecks oracle invocations have been spent. Unreferenced array and
// scalar declarations are pruned from the final result.
func Shrink(l *ir.Loop, fails func(*ir.Loop) bool, maxChecks int) *ir.Loop {
	if maxChecks <= 0 {
		maxChecks = 2000
	}
	s := &shrinker{fails: fails, budget: maxChecks}
	cur := l
	for {
		next, improved := s.pass(cur)
		if !improved || s.budget <= 0 {
			break
		}
		cur = next
	}
	return pruneDecls(cur)
}

type shrinker struct {
	fails  func(*ir.Loop) bool
	budget int
}

// try reports whether the candidate still validates and still fails.
func (s *shrinker) try(cand *ir.Loop) bool {
	if s.budget <= 0 {
		return false
	}
	if ir.Validate(cand) != nil {
		return false
	}
	s.budget--
	return s.fails(cand)
}

// pass applies each transformation family once; improved reports whether
// anything was reduced.
func (s *shrinker) pass(l *ir.Loop) (*ir.Loop, bool) {
	improved := false

	// Statement deletion, largest index first so branch interiors shrink
	// before the conditionals that own them are considered.
	for i := ir.CountStmts(l.Body) - 1; i >= 0; i-- {
		c := l.Clone()
		counter := 0
		c.Body = removeStmt(l.Body, i, &counter)
		if ir.CountStmts(c.Body) < ir.CountStmts(l.Body) && s.try(c) {
			l, improved = c, true
		}
	}

	// Conditional flattening: replace an If by one of its branches.
	for i := ir.CountStmts(l.Body) - 1; i >= 0; i-- {
		for _, takeThen := range []bool{true, false} {
			c := l.Clone()
			counter := 0
			body, changed := flattenIf(l.Body, i, takeThen, &counter)
			if !changed {
				continue
			}
			c.Body = body
			if s.try(c) {
				l, improved = c, true
				break
			}
		}
	}

	// Trip-count halving.
	for {
		trips := (l.End - l.Start) / l.Step
		if trips <= 1 {
			break
		}
		c := l.Clone()
		c.End = l.Start + (trips/2)*l.Step
		if !s.try(c) {
			break
		}
		l, improved = c, true
	}

	// Live-out dropping.
	for i := len(l.LiveOut) - 1; i >= 0; i-- {
		if len(l.LiveOut) == 0 {
			break
		}
		c := l.Clone()
		c.LiveOut = append(append([]string(nil), l.LiveOut[:i]...), l.LiveOut[i+1:]...)
		if s.try(c) {
			l, improved = c, true
		}
	}

	// Expression simplification: for every statement expression slot, try
	// replacing the tree with a same-kind subtree or a constant leaf.
	for i := ir.CountStmts(l.Body) - 1; i >= 0; i-- {
		for {
			reduced := false
			counter := 0
			orig := stmtAt(l.Body, i, &counter)
			if orig == nil {
				break
			}
			for slot := 0; slot < stmtSlots(orig); slot++ {
				cands := exprCandidates(stmtSlotExpr(orig, slot))
				for _, repl := range cands {
					c := l.Clone()
					counter = 0
					c.Body = replaceSlot(l.Body, i, slot, repl, &counter)
					if s.try(c) {
						l, improved, reduced = c, true, true
						break
					}
				}
				if reduced {
					break
				}
			}
			if !reduced {
				break
			}
		}
	}
	return l, improved
}

// removeStmt rebuilds stmts with the statement at pre-order index target
// removed (counting into branches).
func removeStmt(stmts []ir.Stmt, target int, counter *int) []ir.Stmt {
	var out []ir.Stmt
	for _, st := range stmts {
		idx := *counter
		*counter++
		if iff, ok := st.(*ir.If); ok {
			nt := removeStmt(iff.Then, target, counter)
			ne := removeStmt(iff.Else, target, counter)
			if idx == target {
				continue
			}
			out = append(out, &ir.If{Src: iff.Src, Cond: iff.Cond, Then: nt, Else: ne})
			continue
		}
		if idx == target {
			continue
		}
		out = append(out, st)
	}
	return out
}

// flattenIf replaces the If at pre-order index target with its then- or
// else-branch contents.
func flattenIf(stmts []ir.Stmt, target int, takeThen bool, counter *int) ([]ir.Stmt, bool) {
	var out []ir.Stmt
	changed := false
	for _, st := range stmts {
		idx := *counter
		*counter++
		if iff, ok := st.(*ir.If); ok {
			if idx == target {
				// Skip child indices of the removed conditional.
				*counter += ir.CountStmts(iff.Then) + ir.CountStmts(iff.Else)
				if takeThen {
					out = append(out, iff.Then...)
				} else {
					out = append(out, iff.Else...)
				}
				changed = true
				continue
			}
			nt, ct := flattenIf(iff.Then, target, takeThen, counter)
			ne, ce := flattenIf(iff.Else, target, takeThen, counter)
			changed = changed || ct || ce
			out = append(out, &ir.If{Src: iff.Src, Cond: iff.Cond, Then: nt, Else: ne})
			continue
		}
		out = append(out, st)
	}
	return out, changed
}

// stmtAt returns the statement at pre-order index target, or nil.
func stmtAt(stmts []ir.Stmt, target int, counter *int) ir.Stmt {
	for _, st := range stmts {
		idx := *counter
		*counter++
		if idx == target {
			return st
		}
		if iff, ok := st.(*ir.If); ok {
			if f := stmtAt(iff.Then, target, counter); f != nil {
				return f
			}
			if f := stmtAt(iff.Else, target, counter); f != nil {
				return f
			}
		}
	}
	return nil
}

// Statement expression slots: 0 = RHS / condition, 1 = store index.
func stmtSlots(s ir.Stmt) int {
	if a, ok := s.(*ir.Assign); ok {
		if _, isElem := a.Dest.(*ir.ElemDest); isElem {
			return 2
		}
	}
	return 1
}

func stmtSlotExpr(s ir.Stmt, slot int) ir.Expr {
	switch x := s.(type) {
	case *ir.Assign:
		if slot == 1 {
			return x.Dest.(*ir.ElemDest).Index
		}
		return x.X
	case *ir.If:
		return x.Cond
	}
	return nil
}

func withSlotExpr(s ir.Stmt, slot int, e ir.Expr) ir.Stmt {
	switch x := s.(type) {
	case *ir.Assign:
		if slot == 1 {
			d := x.Dest.(*ir.ElemDest)
			return &ir.Assign{Src: x.Src, Dest: &ir.ElemDest{Array: d.Array, K: d.K, Index: e}, X: x.X}
		}
		return &ir.Assign{Src: x.Src, Dest: x.Dest, X: e}
	case *ir.If:
		return &ir.If{Src: x.Src, Cond: e, Then: x.Then, Else: x.Else}
	}
	return s
}

// replaceSlot rebuilds stmts with expression slot `slot` of the statement
// at pre-order index target replaced by repl.
func replaceSlot(stmts []ir.Stmt, target, slot int, repl ir.Expr, counter *int) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(stmts))
	for _, st := range stmts {
		idx := *counter
		*counter++
		if idx == target {
			out = append(out, withSlotExpr(st, slot, repl))
			if iff, ok := st.(*ir.If); ok {
				*counter += ir.CountStmts(iff.Then) + ir.CountStmts(iff.Else)
			}
			continue
		}
		if iff, ok := st.(*ir.If); ok {
			nt := replaceSlot(iff.Then, target, slot, repl, counter)
			ne := replaceSlot(iff.Else, target, slot, repl, counter)
			out = append(out, &ir.If{Src: iff.Src, Cond: iff.Cond, Then: nt, Else: ne})
			continue
		}
		out = append(out, st)
	}
	return out
}

// exprCandidates lists smaller same-kind replacements for an expression:
// every strict subtree of matching kind (largest first), then a constant
// leaf. Candidates are capped to keep each shrink pass bounded.
func exprCandidates(e ir.Expr) []ir.Expr {
	if e == nil {
		return nil
	}
	k := e.Kind()
	var subs []ir.Expr
	ir.WalkExpr(e, func(n ir.Expr) {
		if n != e && n.Kind() == k && ir.CountOps(n) < ir.CountOps(e) {
			subs = append(subs, n)
		}
	})
	// Largest subtrees first: fewer, bigger deletions reach the fixpoint
	// faster than leaf-at-a-time nibbling.
	for i, j := 0, len(subs)-1; i < j; i, j = i+1, j-1 {
		subs[i], subs[j] = subs[j], subs[i]
	}
	if len(subs) > 24 {
		subs = subs[:24]
	}
	if _, isConst := e.(ir.ConstF); !isConst {
		if _, isConstI := e.(ir.ConstI); !isConstI {
			if k == ir.F64 {
				subs = append(subs, ir.F(1))
			} else {
				subs = append(subs, ir.I(1))
			}
		}
	}
	return subs
}

// pruneDecls drops array and scalar declarations (and nothing else) that
// the shrunken body no longer references.
func pruneDecls(l *ir.Loop) *ir.Loop {
	usedArr := map[string]bool{}
	usedTmp := map[string]ir.Kind{}
	scan := func(e ir.Expr) {
		ir.WalkExpr(e, func(n ir.Expr) {
			if ld, ok := n.(*ir.Load); ok {
				usedArr[ld.Array] = true
			}
		})
		ir.TempUses(e, usedTmp)
	}
	ir.WalkStmts(l.Body, func(s ir.Stmt) {
		ir.StmtExprs(s, scan)
		if a, ok := s.(*ir.Assign); ok {
			if d, ok := a.Dest.(*ir.ElemDest); ok {
				usedArr[d.Array] = true
			}
		}
	})
	for _, name := range l.LiveOut {
		usedTmp[name] = 0
	}
	c := l.Clone()
	c.Arrays = nil
	for _, a := range l.Arrays {
		if usedArr[a.Name] {
			c.Arrays = append(c.Arrays, a)
		}
	}
	c.Scalars = nil
	for _, sc := range l.Scalars {
		if _, ok := usedTmp[sc.Name]; ok {
			c.Scalars = append(c.Scalars, sc)
		}
	}
	if ir.Validate(c) != nil {
		return l
	}
	return c
}
