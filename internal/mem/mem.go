// Package mem implements the shared memory of the simulated node and a
// simple per-core L1 cache timing model. Functional data always lives in
// the backing arrays (stores write through immediately), so the caches only
// produce load latencies; the compiler never splits ordered accesses to
// aliasing locations across cores, which makes a coherence protocol
// unnecessary for correctness.
package mem

import (
	"errors"
	"fmt"

	"fgp/internal/ir"
)

// ErrOutOfBounds is wrapped by loads and stores whose index falls outside
// the target array. The fuzz oracle classifies errors wrapping it as
// semantic traps (mirroring interp.ErrOutOfBounds on the interpreter side)
// rather than simulator-infrastructure failures.
var ErrOutOfBounds = errors.New("out of bounds")

// ArrayID indexes a registered array.
type ArrayID = int32

// Memory is the shared address space: a set of named arrays laid out
// consecutively, line-aligned, so cache indexing behaves realistically.
type Memory struct {
	names  map[string]ArrayID
	arrays []array
}

type array struct {
	name string
	k    ir.Kind
	base int64 // byte address of element 0
	f    []float64
	i    []int64
}

const elemSize = 8

// New creates an empty memory.
func New() *Memory { return &Memory{names: map[string]ArrayID{}} }

// AddF registers a float array initialized with a copy of init.
func (m *Memory) AddF(name string, init []float64) ArrayID {
	return m.add(array{name: name, k: ir.F64, f: append([]float64(nil), init...)})
}

// AddI registers an integer array initialized with a copy of init.
func (m *Memory) AddI(name string, init []int64) ArrayID {
	return m.add(array{name: name, k: ir.I64, i: append([]int64(nil), init...)})
}

func (m *Memory) add(a array) ArrayID {
	if _, dup := m.names[a.name]; dup {
		panic(fmt.Sprintf("mem: array %q registered twice", a.name))
	}
	var end int64
	if n := len(m.arrays); n > 0 {
		prev := &m.arrays[n-1]
		end = prev.base + int64(prev.len())*elemSize
	}
	// Align each array to a 64-byte line boundary.
	a.base = (end + 63) &^ 63
	id := ArrayID(len(m.arrays))
	m.arrays = append(m.arrays, a)
	m.names[a.name] = id
	return id
}

func (a *array) len() int {
	if a.k == ir.F64 {
		return len(a.f)
	}
	return len(a.i)
}

// ID resolves an array name.
func (m *Memory) ID(name string) (ArrayID, bool) {
	id, ok := m.names[name]
	return id, ok
}

// Addr returns the byte address of arr[idx], for the cache model. Invalid
// ids return address 0 (the simulator errors on the access itself first).
func (m *Memory) Addr(arr ArrayID, idx int64) int64 {
	if arr < 0 || int(arr) >= len(m.arrays) {
		return 0
	}
	return m.arrays[arr].base + idx*elemSize
}

// DataF returns the live backing slice of a float array (nil for integer
// arrays or invalid ids). Writes through the slice are real stores; the
// simulator's burst engine uses it to predecode loads and stores into
// direct slice accesses.
func (m *Memory) DataF(arr ArrayID) []float64 {
	if arr < 0 || int(arr) >= len(m.arrays) {
		return nil
	}
	return m.arrays[arr].f
}

// DataI returns the live backing slice of an integer array (nil for float
// arrays or invalid ids).
func (m *Memory) DataI(arr ArrayID) []int64 {
	if arr < 0 || int(arr) >= len(m.arrays) {
		return nil
	}
	return m.arrays[arr].i
}

// Base returns the byte address of element 0 of an array (0 for invalid
// ids), so Base(arr) + idx*8 == Addr(arr, idx).
func (m *Memory) Base(arr ArrayID) int64 {
	if arr < 0 || int(arr) >= len(m.arrays) {
		return 0
	}
	return m.arrays[arr].base
}

// Len returns the element count of an array.
func (m *Memory) Len(arr ArrayID) int { return m.arrays[arr].len() }

// Kind returns the element kind of an array.
func (m *Memory) Kind(arr ArrayID) ir.Kind { return m.arrays[arr].k }

// Name returns the name of an array.
func (m *Memory) Name(arr ArrayID) string { return m.arrays[arr].name }

func (m *Memory) array(arr ArrayID) (*array, error) {
	if arr < 0 || int(arr) >= len(m.arrays) {
		return nil, fmt.Errorf("mem: invalid array id %d (have %d arrays)", arr, len(m.arrays))
	}
	return &m.arrays[arr], nil
}

// LoadF reads a float element.
func (m *Memory) LoadF(arr ArrayID, idx int64) (float64, error) {
	a, err := m.array(arr)
	if err != nil {
		return 0, err
	}
	if idx < 0 || idx >= int64(len(a.f)) {
		return 0, fmt.Errorf("mem: load %s[%d] %w (len %d)", a.name, idx, ErrOutOfBounds, len(a.f))
	}
	return a.f[idx], nil
}

// LoadI reads an integer element.
func (m *Memory) LoadI(arr ArrayID, idx int64) (int64, error) {
	a, err := m.array(arr)
	if err != nil {
		return 0, err
	}
	if idx < 0 || idx >= int64(len(a.i)) {
		return 0, fmt.Errorf("mem: load %s[%d] %w (len %d)", a.name, idx, ErrOutOfBounds, len(a.i))
	}
	return a.i[idx], nil
}

// StoreF writes a float element.
func (m *Memory) StoreF(arr ArrayID, idx int64, v float64) error {
	a, err := m.array(arr)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= int64(len(a.f)) {
		return fmt.Errorf("mem: store %s[%d] %w (len %d)", a.name, idx, ErrOutOfBounds, len(a.f))
	}
	a.f[idx] = v
	return nil
}

// StoreI writes an integer element.
func (m *Memory) StoreI(arr ArrayID, idx int64, v int64) error {
	a, err := m.array(arr)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= int64(len(a.i)) {
		return fmt.Errorf("mem: store %s[%d] %w (len %d)", a.name, idx, ErrOutOfBounds, len(a.i))
	}
	a.i[idx] = v
	return nil
}

// SnapshotF returns a copy of a float array's contents.
func (m *Memory) SnapshotF(name string) []float64 {
	id, ok := m.names[name]
	if !ok {
		return nil
	}
	return append([]float64(nil), m.arrays[id].f...)
}

// SnapshotI returns a copy of an integer array's contents.
func (m *Memory) SnapshotI(name string) []int64 {
	id, ok := m.names[name]
	if !ok {
		return nil
	}
	return append([]int64(nil), m.arrays[id].i...)
}
