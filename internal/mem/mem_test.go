package mem

import (
	"testing"
)

func TestArraysBasic(t *testing.T) {
	m := New()
	a := m.AddF("a", []float64{1, 2, 3})
	b := m.AddI("b", []int64{10, 20})

	if id, ok := m.ID("a"); !ok || id != a {
		t.Error("ID lookup for a failed")
	}
	if _, ok := m.ID("zzz"); ok {
		t.Error("ID lookup for missing array should fail")
	}
	if m.Len(a) != 3 || m.Len(b) != 2 {
		t.Error("Len wrong")
	}
	if m.Name(b) != "b" {
		t.Error("Name wrong")
	}

	v, err := m.LoadF(a, 1)
	if err != nil || v != 2 {
		t.Errorf("LoadF = %v, %v", v, err)
	}
	if err := m.StoreF(a, 1, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.LoadF(a, 1); v != 9 {
		t.Error("StoreF did not take effect")
	}
	iv, err := m.LoadI(b, 0)
	if err != nil || iv != 10 {
		t.Errorf("LoadI = %v, %v", iv, err)
	}
	if err := m.StoreI(b, 0, 77); err != nil {
		t.Fatal(err)
	}
	if iv, _ := m.LoadI(b, 0); iv != 77 {
		t.Error("StoreI did not take effect")
	}
}

func TestBoundsChecking(t *testing.T) {
	m := New()
	a := m.AddF("a", make([]float64, 4))
	b := m.AddI("b", make([]int64, 4))
	if _, err := m.LoadF(a, 4); err == nil {
		t.Error("load past end should fail")
	}
	if _, err := m.LoadF(a, -1); err == nil {
		t.Error("negative load should fail")
	}
	if err := m.StoreF(a, 4, 0); err == nil {
		t.Error("store past end should fail")
	}
	if _, err := m.LoadI(b, 99); err == nil {
		t.Error("int load past end should fail")
	}
	if err := m.StoreI(b, -1, 0); err == nil {
		t.Error("negative int store should fail")
	}
}

func TestAddressesLineAligned(t *testing.T) {
	m := New()
	a := m.AddF("a", make([]float64, 3)) // 24 bytes
	b := m.AddF("b", make([]float64, 3))
	addrA := m.Addr(a, 0)
	addrB := m.Addr(b, 0)
	if addrA%64 != 0 || addrB%64 != 0 {
		t.Errorf("arrays not 64-byte aligned: %d, %d", addrA, addrB)
	}
	if addrB <= m.Addr(a, 2) {
		t.Error("arrays overlap")
	}
	if m.Addr(a, 1)-m.Addr(a, 0) != 8 {
		t.Error("element stride must be 8 bytes")
	}
}

func TestSnapshotCopies(t *testing.T) {
	m := New()
	m.AddF("a", []float64{1, 2})
	s := m.SnapshotF("a")
	s[0] = 99
	s2 := m.SnapshotF("a")
	if s2[0] != 1 {
		t.Error("snapshot must be a copy")
	}
	if m.SnapshotF("missing") != nil {
		t.Error("snapshot of a missing array must be nil")
	}
	m.AddI("b", []int64{5})
	if got := m.SnapshotI("b"); len(got) != 1 || got[0] != 5 {
		t.Error("SnapshotI wrong")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	m := New()
	m.AddF("a", []float64{1})
	defer func() {
		if recover() == nil {
			t.Error("duplicate array must panic")
		}
	}()
	m.AddF("a", []float64{2})
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{Lines: 4, LineSize: 64})
	// First touch misses, second hits.
	if c.Access(0) {
		t.Error("cold access must miss")
	}
	if !c.Access(8) {
		t.Error("same-line access must hit")
	}
	if !c.Access(56) {
		t.Error("end of line must hit")
	}
	if c.Access(64) {
		t.Error("next line must miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheConflictEviction(t *testing.T) {
	c := NewCache(CacheConfig{Lines: 4, LineSize: 64})
	// Lines 0 and 4 map to the same set in a 4-line direct-mapped cache.
	c.Access(0)
	c.Access(4 * 64)
	if c.Access(0) {
		t.Error("conflicting line must have evicted line 0")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(CacheConfig{})
	for i := int64(0); i < 100; i++ {
		if !c.Access(i * 64) {
			t.Fatal("disabled cache must always hit")
		}
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(CacheConfig{Lines: 2, LineSize: 64})
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("reset must clear stats")
	}
	if c.Access(0) {
		t.Error("reset must clear lines")
	}
}

func TestCacheStreamingMissRate(t *testing.T) {
	// Sequential 8-byte accesses: exactly one miss per 64-byte line.
	c := NewCache(CacheConfig{Lines: 512, LineSize: 64})
	for i := int64(0); i < 512; i++ {
		c.Access(i * 8)
	}
	if c.Misses != 64 {
		t.Errorf("streaming misses = %d, want 64", c.Misses)
	}
}
