package mem

// CacheConfig parameterizes the per-core L1 timing model.
type CacheConfig struct {
	Lines    int // number of direct-mapped lines; 0 disables the model
	LineSize int // bytes per line (power of two)
}

// DefaultCache returns a 32 KiB direct-mapped L1 with 64-byte lines.
func DefaultCache() CacheConfig { return CacheConfig{Lines: 512, LineSize: 64} }

// Cache is a direct-mapped L1 used purely for load timing. Stores update
// the line on a hit (write-through, no write-allocate) but are charged a
// fixed store cost by the simulator.
type Cache struct {
	cfg       CacheConfig
	tags      []int64
	valid     []bool
	shift     uint
	mask      int64 // Lines-1 when Lines is a power of two, else -1
	Hits      int64
	Misses    int64
	Disabled  bool
	hitAlways bool
}

// NewCache builds a cache; a zero Lines count produces a disabled cache
// where every access hits (uniform memory latency).
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Lines <= 0 {
		return &Cache{Disabled: true, hitAlways: true}
	}
	shift := uint(0)
	for (1 << shift) < cfg.LineSize {
		shift++
	}
	mask := int64(-1)
	if cfg.Lines&(cfg.Lines-1) == 0 {
		mask = int64(cfg.Lines - 1)
	}
	return &Cache{
		cfg:   cfg,
		tags:  make([]int64, cfg.Lines),
		valid: make([]bool, cfg.Lines),
		shift: shift,
		mask:  mask,
	}
}

// set maps a line number to its direct-mapped slot. Addresses (hence line
// numbers) are non-negative, so the mask path equals the modulo path for
// power-of-two line counts while avoiding a hardware divide per access.
func (c *Cache) set(line int64) int {
	if c.mask >= 0 {
		return int(line & c.mask)
	}
	return int(line % int64(c.cfg.Lines))
}

// Access touches addr for a load; it returns true on a hit and fills the
// line on a miss.
func (c *Cache) Access(addr int64) bool {
	if c.hitAlways {
		c.Hits++
		return true
	}
	line := addr >> c.shift
	set := c.set(line)
	if c.valid[set] && c.tags[set] == line {
		c.Hits++
		return true
	}
	c.valid[set] = true
	c.tags[set] = line
	c.Misses++
	return false
}

// Probe reports whether a load of addr would hit, without filling the line
// or touching the hit/miss statistics. The simulator's burst engine uses it
// to decide — before committing to the access — whether a load would need
// the shared memory port.
func (c *Cache) Probe(addr int64) bool {
	if c.hitAlways {
		return true
	}
	line := addr >> c.shift
	set := c.set(line)
	return c.valid[set] && c.tags[set] == line
}

// Touch updates the line for a store without counting hit/miss statistics
// (write-through, no allocate).
func (c *Cache) Touch(addr int64) {
	if c.hitAlways {
		return
	}
	// A store to a cached line keeps it valid; to an uncached line it
	// bypasses the cache. Nothing to do in either case for a direct-mapped
	// write-through no-allocate cache with the tag already tracked.
}

// Reset clears all lines and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Hits, c.Misses = 0, 0
}
