package codegraph

import (
	"testing"

	"fgp/internal/cost"
	"fgp/internal/deps"
	"fgp/internal/fiber"
	"fgp/internal/ir"
	"fgp/internal/profile"
	"fgp/internal/tac"
)

func analyzed(t *testing.T, build func(b *ir.Builder)) *deps.Info {
	t.Helper()
	b := ir.NewBuilder("t", "i", 0, 32, 1)
	b.ArrayF("a", make([]float64, 64))
	b.ArrayF("o", make([]float64, 64))
	build(b)
	l := b.MustBuild()
	fn, err := tac.Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		t.Fatal(err)
	}
	info, err := deps.Analyze(fn, set)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func instrCost() func(*tac.Instr) int64 {
	return profile.InstrCost(cost.Default(), nil)
}

// wideBody builds a loop with many independent statements so merging has
// real choices.
func wideBody(b *ir.Builder) {
	i := b.Idx()
	for k := 0; k < 8; k++ {
		name := string(rune('p' + k))
		b.Def(name, ir.MulE(ir.AddE(ir.LDF("a", ir.AddE(i, ir.I(int64(k)))), ir.F(1)), ir.F(float64(k+1))))
	}
	sum := b.T("p")
	for k := 1; k < 8; k++ {
		sum = ir.AddE(sum, b.T(string(rune('p'+k))))
	}
	b.StoreF("o", i, sum)
}

func TestMergeToTargets(t *testing.T) {
	info := analyzed(t, wideBody)
	for _, targets := range []int{1, 2, 3, 4} {
		res, err := Merge(info, Options{Targets: targets, Weights: DefaultWeights(), InstrCost: instrCost()})
		if err != nil {
			t.Fatalf("targets=%d: %v", targets, err)
		}
		if len(res.Parts) != targets {
			t.Errorf("targets=%d: got %d partitions", targets, len(res.Parts))
		}
		// Every fiber assigned to exactly one partition.
		seen := map[int32]int{}
		for pi, fibers := range res.Parts {
			for _, f := range fibers {
				seen[f]++
				if res.PartOf[f] != int32(pi) {
					t.Errorf("PartOf[%d] inconsistent", f)
				}
			}
		}
		for f, n := range seen {
			if n != 1 {
				t.Errorf("fiber %d appears %d times", f, n)
			}
		}
		if len(seen) != len(info.Set.Fibers) {
			t.Errorf("covered %d fibers, set has %d", len(seen), len(info.Set.Fibers))
		}
	}
}

func TestMergeMoreTargetsThanFibers(t *testing.T) {
	info := analyzed(t, func(b *ir.Builder) {
		b.StoreF("o", b.Idx(), ir.MulE(ir.LDF("a", b.Idx()), ir.F(2)))
	})
	res, err := Merge(info, Options{Targets: 8, Weights: DefaultWeights(), InstrCost: instrCost()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) > 8 || len(res.Parts) < 1 {
		t.Errorf("got %d partitions for a tiny loop", len(res.Parts))
	}
}

func TestColocationConstraintsHonored(t *testing.T) {
	info := analyzed(t, func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.MulE(ir.LDF("a", i), ir.F(2)))
		}, func() {
			b.Def("v", ir.F(0))
		})
		b.StoreF("o", i, b.T("v"))
	})
	res, err := Merge(info, Options{Targets: 4, Weights: DefaultWeights(), InstrCost: instrCost()})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range info.Colocate {
		if res.PartOf[pair[0]] != res.PartOf[pair[1]] {
			t.Errorf("colocation pair %v split across partitions %d/%d",
				pair, res.PartOf[pair[0]], res.PartOf[pair[1]])
		}
	}
}

func TestThroughputProducesDAG(t *testing.T) {
	info := analyzed(t, wideBody)
	res, err := Merge(info, Options{Targets: 4, Weights: DefaultWeights(), Throughput: true, InstrCost: instrCost()})
	if err != nil {
		t.Fatal(err)
	}
	// Build the partition-level directed graph and assert acyclicity.
	n := len(res.Parts)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, fe := range info.FiberEdges() {
		a := res.PartOf[fe.From]
		b := res.PartOf[fe.To]
		if a != b {
			adj[a][b] = true
		}
	}
	// DFS cycle check.
	state := make([]int, n)
	var dfs func(v int) bool
	dfs = func(v int) bool {
		state[v] = 1
		for w := 0; w < n; w++ {
			if !adj[v][w] {
				continue
			}
			if state[w] == 1 {
				return false
			}
			if state[w] == 0 && !dfs(w) {
				return false
			}
		}
		state[v] = 2
		return true
	}
	for v := 0; v < n; v++ {
		if state[v] == 0 && !dfs(v) {
			t.Fatal("throughput heuristic left a cycle between partitions")
		}
	}
}

func TestMultiPairMatchesTargetCount(t *testing.T) {
	info := analyzed(t, wideBody)
	res, err := Merge(info, Options{Targets: 3, Weights: DefaultWeights(), MultiPair: true, InstrCost: instrCost()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 3 {
		t.Errorf("multi-pair produced %d partitions, want 3", len(res.Parts))
	}
	// Multi-pair should take no more steps than single-pair.
	single, err := Merge(info, Options{Targets: 3, Weights: DefaultWeights(), InstrCost: instrCost()})
	if err != nil {
		t.Fatal(err)
	}
	if res.MergeSteps > single.MergeSteps {
		t.Errorf("multi-pair took %d steps, single-pair %d", res.MergeSteps, single.MergeSteps)
	}
}

func TestDeterminism(t *testing.T) {
	info := analyzed(t, wideBody)
	a, err := Merge(info, Options{Targets: 4, Weights: DefaultWeights(), InstrCost: instrCost()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Merge(info, Options{Targets: 4, Weights: DefaultWeights(), InstrCost: instrCost()})
	if err != nil {
		t.Fatal(err)
	}
	for f := range a.PartOf {
		if a.PartOf[f] != b.PartOf[f] {
			t.Fatal("merge is not deterministic")
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	info := analyzed(t, wideBody)
	if _, err := Merge(info, Options{Targets: 0, InstrCost: instrCost()}); err == nil {
		t.Error("targets=0 must error")
	}
	if _, err := Merge(info, Options{Targets: 2}); err == nil {
		t.Error("missing InstrCost must error")
	}
}

func TestBalanceWeightLimitsSnowballing(t *testing.T) {
	info := analyzed(t, wideBody)
	heavyDep := DefaultWeights()
	heavyDep.Balance = 0
	heavyDep.Dep = 100
	unbalanced, err := Merge(info, Options{Targets: 4, Weights: heavyDep, InstrCost: instrCost()})
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := Merge(info, Options{Targets: 4, Weights: DefaultWeights(), InstrCost: instrCost()})
	if err != nil {
		t.Fatal(err)
	}
	spread := func(r *Result) int64 {
		mx, mn := int64(0), int64(1<<62)
		for _, c := range r.Cost {
			if c > mx {
				mx = c
			}
			if c < mn {
				mn = c
			}
		}
		return mx - mn
	}
	if spread(balanced) > spread(unbalanced) {
		t.Errorf("balance penalty should not worsen the cost spread: %d vs %d",
			spread(balanced), spread(unbalanced))
	}
}
