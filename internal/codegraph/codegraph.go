// Package codegraph builds the paper's code graph — one node per fiber,
// edges for data and control dependences — and merges node pairs until the
// number of nodes equals the number of available hardware cores
// (Section III-B). Merging is driven by weighted affinity heuristics:
//
//   - node pairs with more dependence edges between them have higher
//     affinity (merging them removes communication);
//   - node pairs with smaller combined compute time have higher affinity
//     (keeps partitions balanced);
//   - node pairs closer together in the serial source have higher affinity.
//
// Two variants from the paper are implemented: multi-pair merging (several
// disjoint pairs per step, for faster compilation on large fiber sets) and
// the throughput heuristic (merge dependence cycles so the final partitions
// form a DAG — evaluated as an ablation; the paper reports an 11% average
// slowdown from it).
package codegraph

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fgp/internal/deps"
	"fgp/internal/tac"
)

// Weights combines the individual merge heuristics into one affinity value.
type Weights struct {
	Dep  float64 // weight of the dependence-edge count (damped by sqrt)
	Cost float64 // weight of the small-combined-compute-time score
	Prox float64 // weight of the source-proximity score
	// Balance penalizes merges whose combined compute time exceeds the
	// ideal partition size (total cost / target partitions); it is what
	// keeps one partition from snowballing.
	Balance float64
}

// DefaultWeights returns the weighting used in all experiments.
func DefaultWeights() Weights { return Weights{Dep: 0.5, Cost: 0.5, Prox: 6.0, Balance: 10.0} }

// Options configures a merge run.
type Options struct {
	// Targets is the number of partitions to produce (= hardware cores).
	Targets int
	Weights Weights
	// Throughput enables the DAG-constraining heuristic.
	Throughput bool
	// MultiPair merges several disjoint pairs per step.
	MultiPair bool
	// InstrCost estimates the execution time of one instruction (static
	// latency, with profile feedback folded in for loads).
	InstrCost func(*tac.Instr) int64
}

// Result maps fibers to partitions.
type Result struct {
	// Parts holds the fiber IDs of each partition, one slice per partition.
	Parts [][]int32
	// PartOf maps fiber ID -> partition index.
	PartOf []int32
	// Cost is the estimated compute time of each partition.
	Cost []int64
	// MergeSteps counts heuristic merge iterations performed.
	MergeSteps int
}

type node struct {
	id     int32
	alive  bool
	fibers []int32
	cost   int64
	// line is the cost-weighted mean source line, for the proximity score.
	line float64
	out  map[int32]int // edge multiplicity to other nodes (directed)
	in   map[int32]int
}

type merger struct {
	info  *deps.Info
	opt   Options
	nodes []*node
	owner []int32 // fiber -> node id
	alive int
	// und[a][b] is the undirected edge multiplicity between nodes a and b
	// (out[b] + in[b] kept dense): the affinity scan reads it O(V^2) times
	// per merge step, far too hot for the per-node maps.
	und [][]int32

	// Single-pair argmax cache. bestScore[i]/bestJ[i] memoize the best
	// partner j > i (in id order, ties to the smallest j) for alive node i;
	// a merge only changes scores of pairs involving the survivor or the
	// dead node, so mergeNodes patches or invalidates exactly those rows
	// and each merge step costs O(V) instead of a fresh O(V^2) scan. The
	// cached maximum is bit-identical to the full scan: both resolve score
	// ties to the lexicographically first (i, j) pair.
	bestScore  []float64
	bestJ      []int32
	bestOK     []bool
	cacheTotal int64 // total live cost; invariant under merges
	cacheOn    bool
}

// Merge runs the transformation and returns the final partitions.
func Merge(info *deps.Info, opt Options) (*Result, error) {
	if opt.Targets < 1 {
		return nil, fmt.Errorf("codegraph: targets must be >= 1, got %d", opt.Targets)
	}
	if opt.InstrCost == nil {
		return nil, fmt.Errorf("codegraph: InstrCost is required")
	}
	m := &merger{info: info, opt: opt}
	m.build()

	// Hard constraints first: co-located fibers merge unconditionally.
	for _, pair := range info.Colocate {
		a, b := m.find(pair[0]), m.find(pair[1])
		if a != b {
			m.mergeNodes(a, b)
		}
	}
	if opt.Throughput {
		m.collapseCycles()
	}

	steps := 0
	for m.alive > opt.Targets {
		pairs := m.pickPairs()
		if len(pairs) == 0 {
			break // disconnected leftovers; merge arbitrary smallest pair
		}
		for _, p := range pairs {
			if m.alive <= opt.Targets {
				break
			}
			a, b := m.findNode(p[0]), m.findNode(p[1])
			if a == b {
				continue
			}
			m.mergeNodes(a, b)
			if opt.Throughput {
				m.collapseCycles()
			}
		}
		steps++
		if steps > 4*len(m.nodes)+16 {
			return nil, fmt.Errorf("codegraph: merge did not converge")
		}
	}

	return m.result(steps), nil
}

func (m *merger) build() {
	set := m.info.Set
	m.nodes = make([]*node, len(set.Fibers))
	m.owner = make([]int32, len(set.Fibers))
	for i, f := range set.Fibers {
		var c int64
		for _, id := range f.Instrs {
			c += m.opt.InstrCost(m.info.Fn.Instrs[id])
		}
		m.nodes[i] = &node{
			id: int32(i), alive: true, fibers: []int32{int32(i)},
			cost: c, line: float64(f.Line),
			out: map[int32]int{}, in: map[int32]int{},
		}
		m.owner[i] = int32(i)
		m.alive++
	}
	m.und = make([][]int32, len(set.Fibers))
	for i := range m.und {
		m.und[i] = make([]int32, len(set.Fibers))
	}
	for _, fe := range m.info.FiberEdges() {
		m.nodes[fe.From].out[fe.To] += fe.Count
		m.nodes[fe.To].in[fe.From] += fe.Count
		m.und[fe.From][fe.To] += int32(fe.Count)
		m.und[fe.To][fe.From] += int32(fe.Count)
	}
}

func (m *merger) find(fiber int32) *node { return m.nodes[m.owner[fiber]] }

func (m *merger) findNode(id int32) *node { return m.nodes[id] }

// mergeNodes folds b into a.
func (m *merger) mergeNodes(a, b *node) {
	if a == b || !a.alive || !b.alive {
		return
	}
	if len(b.fibers) > len(a.fibers) {
		a, b = b, a
	}
	total := a.cost + b.cost
	if total > 0 {
		a.line = (a.line*float64(a.cost) + b.line*float64(b.cost)) / float64(total)
	} else {
		a.line = (a.line + b.line) / 2
	}
	a.cost = total
	a.fibers = append(a.fibers, b.fibers...)
	for _, f := range b.fibers {
		m.owner[f] = a.id
	}
	for to, c := range b.out {
		if to == a.id {
			delete(a.in, b.id)
			continue
		}
		a.out[to] += c
		t := m.nodes[to]
		t.in[a.id] += c
		delete(t.in, b.id)
	}
	for from, c := range b.in {
		if from == a.id {
			delete(a.out, b.id)
			continue
		}
		a.in[from] += c
		fnode := m.nodes[from]
		fnode.out[a.id] += c
		delete(fnode.out, b.id)
	}
	delete(a.out, b.id)
	delete(a.in, b.id)
	ua, ub := m.und[a.id], m.und[b.id]
	for x := range ub {
		if int32(x) == a.id || int32(x) == b.id {
			continue
		}
		ua[x] += ub[x]
		m.und[x][a.id] = ua[x]
		m.und[x][b.id] = 0
		ub[x] = 0
	}
	ua[b.id], ub[a.id] = 0, 0
	b.alive = false
	b.out, b.in = nil, nil
	m.alive--

	if m.cacheOn {
		// Only pairs involving the survivor changed score and only pairs
		// involving the dead node disappeared; patch exactly those rows.
		aID, bID := a.id, b.id
		for _, nd := range m.nodes {
			if !nd.alive || nd == a || !m.bestOK[nd.id] {
				continue
			}
			id := nd.id
			if m.bestJ[id] == aID || m.bestJ[id] == bID {
				// The row's maximum involved a changed or vanished pair;
				// recompute lazily on the next pickPairs.
				m.bestOK[id] = false
				continue
			}
			if id < aID {
				// The (nd, a) score changed. The row's cached maximum did
				// not involve a, so it still stands — unless the new score
				// beats it, or ties it earlier in scan order.
				s := m.affinity(nd, a, m.cacheTotal)
				if s > m.bestScore[id] || (s == m.bestScore[id] && aID < m.bestJ[id]) {
					m.bestScore[id], m.bestJ[id] = s, aID
				}
			}
		}
		m.bestOK[aID], m.bestOK[bID] = false, false
	}
}

// affinity scores a candidate pair per the paper's combined heuristics.
func (m *merger) affinity(a, b *node, totalCost int64) float64 {
	e := math.Sqrt(float64(m.und[a.id][b.id]))
	cScore := 0.0
	if totalCost > 0 {
		cScore = 1.0 - float64(a.cost+b.cost)/float64(totalCost)
		if cScore < 0 {
			cScore = 0
		}
	}
	pScore := 1.0 / (1.0 + math.Abs(a.line-b.line)/4.0)
	w := m.opt.Weights
	score := w.Dep*e + w.Cost*cScore + w.Prox*pScore
	if totalCost > 0 && m.opt.Targets > 0 {
		// Quadratic penalty on exceeding the ideal partition size: mild for
		// small overshoots (merging along a dependence chain is usually
		// worth a little imbalance), prohibitive once a partition
		// approaches twice the ideal size.
		ideal := float64(totalCost) / float64(m.opt.Targets)
		if over := (float64(a.cost+b.cost) - ideal) / ideal; over > 0 {
			score -= w.Balance * over * over
		}
	}
	return score
}

// Clone returns a deep copy of the result; mutating the copy's slices
// leaves the original untouched. The partition searcher (internal/search)
// derives every candidate from a clone of the heuristic seed.
func (r *Result) Clone() *Result {
	c := &Result{
		Parts:      make([][]int32, len(r.Parts)),
		PartOf:     append([]int32(nil), r.PartOf...),
		Cost:       append([]int64(nil), r.Cost...),
		MergeSteps: r.MergeSteps,
	}
	for i, p := range r.Parts {
		c.Parts[i] = append([]int32(nil), p...)
	}
	return c
}

// CanonicalKey renders the partition in its canonical text form: partitions
// ordered by their smallest fiber id (the Merge output convention — the
// partition holding fiber 0 is the primary core's), fibers ascending within
// each. Two Results describe the same partitioning of fibers onto cores if
// and only if their keys are equal, so the key serves both as a dedup
// identity and as the deterministic tie-breaker when two candidates score
// the same simulated cycle count.
func (r *Result) CanonicalKey() string {
	var sb strings.Builder
	for _, part := range r.Parts {
		for i, f := range part {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", f)
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

type scoredPair struct {
	a, b  int32
	score float64
}

// pickPairs returns the pairs to merge this step: the single best pair, or
// (multi-pair mode) a greedy disjoint set of the top-scoring pairs.
func (m *merger) pickPairs() [][2]int32 {
	var live []*node
	var totalCost int64
	for _, n := range m.nodes {
		if n.alive {
			live = append(live, n)
			totalCost += n.cost
		}
	}
	if len(live) < 2 {
		return nil
	}
	if !m.opt.MultiPair {
		// Single-pair mode, run every merge step: consult the per-node
		// best-partner cache, refreshing only rows a merge invalidated.
		if !m.cacheOn {
			v := len(m.nodes)
			m.bestScore = make([]float64, v)
			m.bestJ = make([]int32, v)
			m.bestOK = make([]bool, v)
			m.cacheTotal = totalCost
			m.cacheOn = true
		}
		best := scoredPair{score: math.Inf(-1)}
		for i, a := range live {
			if !m.bestOK[a.id] {
				m.recomputeRow(a, live[i+1:])
			}
			if m.bestJ[a.id] >= 0 && m.bestScore[a.id] > best.score {
				best = scoredPair{a.id, m.bestJ[a.id], m.bestScore[a.id]}
			}
		}
		return [][2]int32{{best.a, best.b}}
	}
	var pairs []scoredPair
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			pairs = append(pairs, scoredPair{live[i].id, live[j].id, m.affinity(live[i], live[j], totalCost)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	// Multi-pair: take up to a quarter of the needed merges in one step,
	// using each node at most once.
	budget := (m.alive - m.opt.Targets + 3) / 4
	if budget < 1 {
		budget = 1
	}
	used := map[int32]bool{}
	var out [][2]int32
	for _, p := range pairs {
		if len(out) >= budget {
			break
		}
		if used[p.a] || used[p.b] {
			continue
		}
		used[p.a], used[p.b] = true, true
		out = append(out, [2]int32{p.a, p.b})
	}
	return out
}

// recomputeRow refreshes node a's cache row: its best partner among the
// later live nodes (rest is the tail of the id-ordered live slice after a),
// with score ties resolved to the earliest partner like the full scan.
func (m *merger) recomputeRow(a *node, rest []*node) {
	bs, bj := math.Inf(-1), int32(-1)
	for _, b := range rest {
		if s := m.affinity(a, b, m.cacheTotal); s > bs {
			bs, bj = s, b.id
		}
	}
	m.bestScore[a.id], m.bestJ[a.id] = bs, bj
	m.bestOK[a.id] = true
}

// collapseCycles merges every strongly connected component of the current
// node graph into a single node (the throughput heuristic).
func (m *merger) collapseCycles() {
	for {
		sccs := m.tarjan()
		merged := false
		for _, scc := range sccs {
			if len(scc) > 1 {
				base := m.nodes[scc[0]]
				for _, id := range scc[1:] {
					m.mergeNodes(base, m.nodes[id])
				}
				merged = true
			}
		}
		if !merged {
			return
		}
	}
}

// tarjan computes SCCs over live nodes.
func (m *merger) tarjan() [][]int32 {
	index := map[int32]int{}
	low := map[int32]int{}
	onStack := map[int32]bool{}
	var stack []int32
	var sccs [][]int32
	counter := 0

	var strongconnect func(v int32)
	strongconnect = func(v int32) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for w := range m.nodes[v].out {
			if !m.nodes[w].alive {
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int32
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range m.nodes {
		if n.alive {
			if _, seen := index[n.id]; !seen {
				strongconnect(n.id)
			}
		}
	}
	return sccs
}

func (m *merger) result(steps int) *Result {
	var live []*node
	for _, n := range m.nodes {
		if n.alive {
			live = append(live, n)
		}
	}
	// Stable partition order: by smallest fiber id, so the partition
	// containing the first fiber becomes the primary core's partition.
	for _, n := range live {
		sort.Slice(n.fibers, func(i, j int) bool { return n.fibers[i] < n.fibers[j] })
	}
	sort.Slice(live, func(i, j int) bool { return live[i].fibers[0] < live[j].fibers[0] })

	res := &Result{
		PartOf:     make([]int32, len(m.owner)),
		MergeSteps: steps,
	}
	for pi, n := range live {
		res.Parts = append(res.Parts, n.fibers)
		res.Cost = append(res.Cost, n.cost)
		for _, f := range n.fibers {
			res.PartOf[f] = int32(pi)
		}
	}
	return res
}
