package profile

import (
	"testing"

	"fgp/internal/cost"
	"fgp/internal/ir"
	"fgp/internal/tac"
)

func TestFromLoadStats(t *testing.T) {
	p := FromLoadStats(map[int32][2]int64{
		1: {100, 10}, // avg 10
		2: {46, 1},   // avg 46
		3: {0, 0},    // no samples: dropped
	})
	if p[1] != 10 || p[2] != 46 {
		t.Errorf("averages wrong: %v", p)
	}
	if _, ok := p[3]; ok {
		t.Error("zero-count entry must be dropped")
	}
}

func TestInstrCostUsesProfile(t *testing.T) {
	tab := cost.Default()
	load := &tac.Instr{ID: 7, Op: tac.OpLoad, K: ir.F64}
	static := InstrCost(tab, nil)
	if got := static(load); got != tab.L1Hit {
		t.Errorf("static load cost = %d, want L1 hit %d", got, tab.L1Hit)
	}
	prof := Profile{7: 30.4}
	dynamic := InstrCost(tab, prof)
	if got := dynamic(load); got != 30 {
		t.Errorf("profiled load cost = %d, want 30 (rounded)", got)
	}
	other := &tac.Instr{ID: 8, Op: tac.OpLoad, K: ir.F64}
	if got := dynamic(other); got != tab.L1Hit {
		t.Errorf("unprofiled load must fall back to hit latency, got %d", got)
	}
}

func TestInstrCostTable(t *testing.T) {
	tab := cost.Default()
	f := InstrCost(tab, nil)
	cases := []struct {
		in   tac.Instr
		want int64
	}{
		{tac.Instr{Op: tac.OpConstF}, tab.Const},
		{tac.Instr{Op: tac.OpConstI}, tab.Const},
		{tac.Instr{Op: tac.OpMov}, tab.Mov},
		{tac.Instr{Op: tac.OpBin, BinOp: ir.Mul, K: ir.F64}, tab.FMul},
		{tac.Instr{Op: tac.OpBin, BinOp: ir.Div, K: ir.I64}, tab.IntDiv},
		{tac.Instr{Op: tac.OpUn, UnOp: ir.Sqrt, K: ir.F64}, tab.FSqrt},
		{tac.Instr{Op: tac.OpStore}, tab.Store},
	}
	for _, c := range cases {
		in := c.in
		if got := f(&in); got != c.want {
			t.Errorf("%s: cost %d, want %d", in.Op, got, c.want)
		}
	}
}
