// Package profile implements the profile-directed feedback loop the paper's
// partitioner relies on (Section III-B / III-I): static operation latencies
// from the cost table, refined with measured memory-access latencies from a
// sequential profiling run on the simulator.
package profile

import (
	"fgp/internal/cost"
	"fgp/internal/tac"
)

// Profile maps a TAC instruction id to its measured average load latency in
// cycles. A nil or empty profile falls back to the static L1-hit latency.
type Profile map[int32]float64

// FromLoadStats converts the simulator's (total latency, count) pairs into
// averages.
func FromLoadStats(stats map[int32][2]int64) Profile {
	p := Profile{}
	for id, s := range stats {
		if s[1] > 0 {
			p[id] = float64(s[0]) / float64(s[1])
		}
	}
	return p
}

// InstrCost returns a cost estimator combining the static table with the
// profile. It is handed to both the code-graph merger (compute-time
// heuristic) and the scheduler (critical-path priorities).
func InstrCost(t cost.Table, p Profile) func(*tac.Instr) int64 {
	return func(in *tac.Instr) int64 {
		switch in.Op {
		case tac.OpConstF, tac.OpConstI:
			return t.Const
		case tac.OpMov:
			return t.Mov
		case tac.OpBin:
			return t.Bin(in.BinOp, in.K)
		case tac.OpUn:
			return t.Un(in.UnOp, in.K)
		case tac.OpLoad:
			if p != nil {
				if avg, ok := p[int32(in.ID)]; ok {
					return int64(avg + 0.5)
				}
			}
			return t.L1Hit
		case tac.OpStore:
			return t.Store
		}
		return 1
	}
}
