package interp

import (
	"errors"
	"math"
	"testing"

	"fgp/internal/ir"
)

// These tests pin the interpreter's edge semantics as the differential
// oracle's ground truth (internal/fuzz): every trap is a classified
// sentinel, and every implementation-defined corner of Go arithmetic is
// replaced by a single deterministic rule both the interpreter and the
// simulator engines share.

// TestTrapSentinels: traps must be matchable with errors.Is so the fuzz
// oracle can tell a legitimate program outcome (the compiled code must
// reproduce it) from an infrastructure failure (always a bug).
func TestTrapSentinels(t *testing.T) {
	if _, err := EvalBin(ir.Div, VI(1), VI(0)); !errors.Is(err, ErrDivByZero) {
		t.Errorf("div: got %v, want ErrDivByZero", err)
	}
	if _, err := EvalBin(ir.Rem, VI(1), VI(0)); !errors.Is(err, ErrDivByZero) {
		t.Errorf("rem: got %v, want ErrDivByZero", err)
	}

	load := ir.NewBuilder("oobload", "i", 0, 8, 1)
	load.ArrayF("x", make([]float64, 4))
	load.ArrayF("o", make([]float64, 8))
	load.StoreF("o", load.Idx(), ir.LDF("x", load.Idx()))
	if _, err := Run(load.MustBuild()); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("oob load: got %v, want ErrOutOfBounds", err)
	}

	store := ir.NewBuilder("oobstore", "i", 0, 8, 1)
	store.ArrayF("o", make([]float64, 4))
	store.StoreF("o", store.Idx(), ir.F(1))
	if _, err := Run(store.MustBuild()); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("oob store: got %v, want ErrOutOfBounds", err)
	}

	div := ir.NewBuilder("div0", "i", 0, 4, 1)
	div.ArrayI("o", make([]int64, 4))
	div.StoreI("o", div.Idx(), ir.DivE(ir.I(1), div.Idx()))
	if _, err := Run(div.MustBuild()); !errors.Is(err, ErrDivByZero) {
		t.Errorf("run div0: got %v, want ErrDivByZero", err)
	}
}

// TestTruncFISaturation: the Go spec leaves float-to-int conversion of NaN
// and out-of-range values implementation-defined, so the pipeline pins its
// own rule — NaN converts to 0, everything else saturates — and TruncFI is
// the single definition both the interpreter and the burst engine call.
func TestTruncFISaturation(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{math.NaN(), 0},
		{math.Inf(1), math.MaxInt64},
		{math.Inf(-1), math.MinInt64},
		{1e300, math.MaxInt64},
		{-1e300, math.MinInt64},
		{9.3e18, math.MaxInt64},  // just above MaxInt64
		{-9.3e18, math.MinInt64}, // just below MinInt64
		{3.9, 3},
		{-3.9, -3},
		{0, 0},
	}
	for _, c := range cases {
		if got := TruncFI(c.in); got != c.want {
			t.Errorf("TruncFI(%v) = %d, want %d", c.in, got, c.want)
		}
		v, err := EvalUn(ir.CvtFI, VF(c.in))
		if err != nil || v.I != c.want {
			t.Errorf("EvalUn(CvtFI, %v) = %v, %v; want %d", c.in, v, err, c.want)
		}
	}
}

// TestNaNSemantics pins IEEE NaN behavior the oracle depends on: NaN
// propagates through arithmetic and min/max, every ordered comparison with
// NaN is false, and the domain-error unaries produce NaN rather than
// trapping.
func TestNaNSemantics(t *testing.T) {
	nan := VF(math.NaN())
	for _, op := range []ir.BinOp{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Min, ir.Max} {
		v, err := EvalBin(op, nan, VF(2))
		if err != nil || !math.IsNaN(v.F) {
			t.Errorf("%s(NaN, 2) = %v, %v; want NaN", op, v, err)
		}
	}
	for _, op := range []ir.BinOp{ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.Eq} {
		v, err := EvalBin(op, nan, nan)
		if err != nil || v.I != 0 {
			t.Errorf("%s(NaN, NaN) = %v, %v; want 0", op, v, err)
		}
	}
	if v, _ := EvalBin(ir.Ne, nan, nan); v.I != 1 {
		t.Errorf("Ne(NaN, NaN) = %v, want 1", v)
	}
	if v, err := EvalUn(ir.Sqrt, VF(-1)); err != nil || !math.IsNaN(v.F) {
		t.Errorf("sqrt(-1) = %v, %v; want NaN", v, err)
	}
	if v, err := EvalUn(ir.Log, VF(-1)); err != nil || !math.IsNaN(v.F) {
		t.Errorf("log(-1) = %v, %v; want NaN", v, err)
	}
	// 0/0 is the arithmetic NaN source; FP division never traps.
	if v, err := EvalBin(ir.Div, VF(0), VF(0)); err != nil || !math.IsNaN(v.F) {
		t.Errorf("0/0 = %v, %v; want NaN", v, err)
	}
}
