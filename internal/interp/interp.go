// Package interp is the semantics oracle: a direct tree-walking interpreter
// for the IR. Every compiled configuration (sequential or fine-grained
// parallel, any core count) must produce exactly the memory image and
// live-out values this interpreter produces — the compiler performs no
// floating-point reassociation, so the comparison is bit-exact.
package interp

import (
	"errors"
	"fmt"
	"math"

	"fgp/internal/ir"
)

// Trap sentinels. The interpreter is the differential-testing ground truth,
// so the conditions under which execution aborts are part of its specified
// semantics: the fuzz oracle classifies an error that wraps one of these as
// a semantic trap (which the compiled path must reproduce) rather than an
// infrastructure failure (deadlock, FIFO mismatch), which it must not.
var (
	// ErrDivByZero is wrapped by integer division/remainder by zero.
	ErrDivByZero = errors.New("integer division by zero")
	// ErrOutOfBounds is wrapped by array accesses outside the declared
	// length.
	ErrOutOfBounds = errors.New("array index out of bounds")
)

// TruncFI is the deterministic F64 -> I64 truncation used by CvtFI. Go's
// built-in conversion is implementation-specific for NaN and out-of-range
// values, so the oracle pins saturating semantics: NaN converts to 0 and
// out-of-range values clamp to the nearest representable int64. In-range
// values truncate toward zero as before. Shared with the simulator's burst
// engine so both execution paths stay bit-identical.
func TruncFI(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64: // 2^63 is the smallest float64 >= MaxInt64
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

// Value is a dynamically-kinded IR value.
type Value struct {
	K ir.Kind
	F float64
	I int64
}

// VF wraps a float value.
func VF(f float64) Value { return Value{K: ir.F64, F: f} }

// VI wraps an integer value.
func VI(i int64) Value { return Value{K: ir.I64, I: i} }

// VB wraps a boolean as the I64 0/1 encoding the IR uses for comparison
// results. Shared with the simulator's burst engine so inline comparisons
// produce bit-identical values.
func VB(b bool) Value {
	if b {
		return Value{K: ir.I64, I: 1}
	}
	return Value{K: ir.I64, I: 0}
}

// Result holds the post-execution state of a loop.
type Result struct {
	ArraysF map[string][]float64
	ArraysI map[string][]int64
	Temps   map[string]Value // final values of all temporaries
	// OpCount is the number of compute operations executed (dynamic),
	// useful for sanity-checking kernel sizes.
	OpCount int64
}

type env struct {
	loop    *ir.Loop
	arraysF map[string][]float64
	arraysI map[string][]int64
	temps   map[string]Value
	ops     int64
}

// Run executes the loop and returns its final state. The loop's declared
// array init data is copied, never mutated.
func Run(l *ir.Loop) (*Result, error) {
	e := &env{
		loop:    l,
		arraysF: map[string][]float64{},
		arraysI: map[string][]int64{},
		temps:   map[string]Value{},
	}
	for _, a := range l.Arrays {
		if a.K == ir.F64 {
			e.arraysF[a.Name] = append([]float64(nil), a.InitF...)
		} else {
			e.arraysI[a.Name] = append([]int64(nil), a.InitI...)
		}
	}
	for _, s := range l.Scalars {
		if s.K == ir.F64 {
			e.temps[s.Name] = VF(s.F)
		} else {
			e.temps[s.Name] = VI(s.I)
		}
	}
	for i := l.Start; i < l.End; i += l.Step {
		e.temps[l.Index] = VI(i)
		if err := e.execStmts(l.Body); err != nil {
			return nil, fmt.Errorf("interp: %s at %s=%d: %w", l.Name, l.Index, i, err)
		}
	}
	return &Result{ArraysF: e.arraysF, ArraysI: e.arraysI, Temps: e.temps, OpCount: e.ops}, nil
}

func (e *env) execStmts(stmts []ir.Stmt) error {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ir.Assign:
			v, err := e.eval(x.X)
			if err != nil {
				return err
			}
			switch d := x.Dest.(type) {
			case ir.TempDest:
				e.temps[d.Name] = v
			case *ir.ElemDest:
				idx, err := e.eval(d.Index)
				if err != nil {
					return err
				}
				if err := e.store(d.Array, d.K, idx.I, v); err != nil {
					return fmt.Errorf("line %d: %w", x.Src, err)
				}
			}
		case *ir.If:
			c, err := e.eval(x.Cond)
			if err != nil {
				return err
			}
			if c.I != 0 {
				if err := e.execStmts(x.Then); err != nil {
					return err
				}
			} else {
				if err := e.execStmts(x.Else); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (e *env) store(array string, k ir.Kind, idx int64, v Value) error {
	if k == ir.F64 {
		a := e.arraysF[array]
		if idx < 0 || idx >= int64(len(a)) {
			return fmt.Errorf("store %s[%d] %w (len %d)", array, idx, ErrOutOfBounds, len(a))
		}
		a[idx] = v.F
		return nil
	}
	a := e.arraysI[array]
	if idx < 0 || idx >= int64(len(a)) {
		return fmt.Errorf("store %s[%d] %w (len %d)", array, idx, ErrOutOfBounds, len(a))
	}
	a[idx] = v.I
	return nil
}

func (e *env) eval(x ir.Expr) (Value, error) {
	switch n := x.(type) {
	case ir.ConstF:
		return VF(n.V), nil
	case ir.ConstI:
		return VI(n.V), nil
	case ir.Temp:
		v, ok := e.temps[n.Name]
		if !ok {
			return Value{}, fmt.Errorf("read of undefined temp %q", n.Name)
		}
		return v, nil
	case *ir.Load:
		idx, err := e.eval(n.Index)
		if err != nil {
			return Value{}, err
		}
		if n.K == ir.F64 {
			a := e.arraysF[n.Array]
			if idx.I < 0 || idx.I >= int64(len(a)) {
				return Value{}, fmt.Errorf("load %s[%d] %w (len %d)", n.Array, idx.I, ErrOutOfBounds, len(a))
			}
			return VF(a[idx.I]), nil
		}
		a := e.arraysI[n.Array]
		if idx.I < 0 || idx.I >= int64(len(a)) {
			return Value{}, fmt.Errorf("load %s[%d] %w (len %d)", n.Array, idx.I, ErrOutOfBounds, len(a))
		}
		return VI(a[idx.I]), nil
	case *ir.Bin:
		l, err := e.eval(n.L)
		if err != nil {
			return Value{}, err
		}
		r, err := e.eval(n.R)
		if err != nil {
			return Value{}, err
		}
		e.ops++
		return EvalBin(n.Op, l, r)
	case *ir.Un:
		v, err := e.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		e.ops++
		return EvalUn(n.Op, v)
	}
	return Value{}, fmt.Errorf("unknown expression type %T", x)
}

// EvalBin applies a binary operator to two values. It is shared with the
// instruction-set simulator so both execution paths have identical
// arithmetic semantics.
func EvalBin(op ir.BinOp, l, r Value) (Value, error) {
	if l.K == ir.F64 {
		switch op {
		case ir.Add:
			return VF(l.F + r.F), nil
		case ir.Sub:
			return VF(l.F - r.F), nil
		case ir.Mul:
			return VF(l.F * r.F), nil
		case ir.Div:
			return VF(l.F / r.F), nil
		case ir.Min:
			return VF(math.Min(l.F, r.F)), nil
		case ir.Max:
			return VF(math.Max(l.F, r.F)), nil
		case ir.Eq:
			return VB(l.F == r.F), nil
		case ir.Ne:
			return VB(l.F != r.F), nil
		case ir.Lt:
			return VB(l.F < r.F), nil
		case ir.Le:
			return VB(l.F <= r.F), nil
		case ir.Gt:
			return VB(l.F > r.F), nil
		case ir.Ge:
			return VB(l.F >= r.F), nil
		}
		return Value{}, fmt.Errorf("op %s undefined on f64", op)
	}
	switch op {
	case ir.Add:
		return VI(l.I + r.I), nil
	case ir.Sub:
		return VI(l.I - r.I), nil
	case ir.Mul:
		return VI(l.I * r.I), nil
	case ir.Div:
		if r.I == 0 {
			return Value{}, fmt.Errorf("%w (div)", ErrDivByZero)
		}
		return VI(l.I / r.I), nil
	case ir.Rem:
		if r.I == 0 {
			return Value{}, fmt.Errorf("%w (rem)", ErrDivByZero)
		}
		return VI(l.I % r.I), nil
	case ir.Min:
		if l.I < r.I {
			return l, nil
		}
		return r, nil
	case ir.Max:
		if l.I > r.I {
			return l, nil
		}
		return r, nil
	case ir.And:
		return VI(l.I & r.I), nil
	case ir.Or:
		return VI(l.I | r.I), nil
	case ir.Xor:
		return VI(l.I ^ r.I), nil
	case ir.Shl:
		return VI(l.I << uint64(r.I&63)), nil
	case ir.Shr:
		return VI(l.I >> uint64(r.I&63)), nil
	case ir.Eq:
		return VB(l.I == r.I), nil
	case ir.Ne:
		return VB(l.I != r.I), nil
	case ir.Lt:
		return VB(l.I < r.I), nil
	case ir.Le:
		return VB(l.I <= r.I), nil
	case ir.Gt:
		return VB(l.I > r.I), nil
	case ir.Ge:
		return VB(l.I >= r.I), nil
	}
	return Value{}, fmt.Errorf("op %s undefined on i64", op)
}

// EvalUn applies a unary operator; shared with the simulator.
func EvalUn(op ir.UnOp, v Value) (Value, error) {
	switch op {
	case ir.Neg:
		if v.K == ir.F64 {
			return VF(-v.F), nil
		}
		return VI(-v.I), nil
	case ir.Not:
		return VB(v.I == 0), nil
	case ir.Sqrt:
		return VF(math.Sqrt(v.F)), nil
	case ir.Exp:
		return VF(math.Exp(v.F)), nil
	case ir.Log:
		return VF(math.Log(v.F)), nil
	case ir.Abs:
		if v.K == ir.F64 {
			return VF(math.Abs(v.F)), nil
		}
		if v.I < 0 {
			return VI(-v.I), nil
		}
		return v, nil
	case ir.Floor:
		return VF(math.Floor(v.F)), nil
	case ir.CvtIF:
		return VF(float64(v.I)), nil
	case ir.CvtFI:
		return VI(TruncFI(v.F)), nil
	}
	return Value{}, fmt.Errorf("unknown unary op %s", op)
}
