package interp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"fgp/internal/ir"
)

func TestEvalBinF64(t *testing.T) {
	cases := []struct {
		op   ir.BinOp
		l, r float64
		want float64
	}{
		{ir.Add, 1.5, 2.25, 3.75},
		{ir.Sub, 1.5, 2.25, -0.75},
		{ir.Mul, 3, 4, 12},
		{ir.Div, 7, 2, 3.5},
		{ir.Min, 3, -2, -2},
		{ir.Max, 3, -2, 3},
	}
	for _, c := range cases {
		got, err := EvalBin(c.op, VF(c.l), VF(c.r))
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		if got.F != c.want || got.K != ir.F64 {
			t.Errorf("%s(%g,%g) = %v, want %g", c.op, c.l, c.r, got, c.want)
		}
	}
}

func TestEvalBinF64Compare(t *testing.T) {
	cases := []struct {
		op   ir.BinOp
		l, r float64
		want int64
	}{
		{ir.Eq, 1, 1, 1}, {ir.Eq, 1, 2, 0},
		{ir.Ne, 1, 2, 1}, {ir.Ne, 2, 2, 0},
		{ir.Lt, 1, 2, 1}, {ir.Lt, 2, 1, 0},
		{ir.Le, 2, 2, 1}, {ir.Le, 3, 2, 0},
		{ir.Gt, 3, 2, 1}, {ir.Gt, 2, 3, 0},
		{ir.Ge, 2, 2, 1}, {ir.Ge, 1, 2, 0},
	}
	for _, c := range cases {
		got, err := EvalBin(c.op, VF(c.l), VF(c.r))
		if err != nil {
			t.Fatal(err)
		}
		if got.I != c.want || got.K != ir.I64 {
			t.Errorf("%s(%g,%g) = %v, want %d", c.op, c.l, c.r, got, c.want)
		}
	}
}

func TestEvalBinI64(t *testing.T) {
	cases := []struct {
		op   ir.BinOp
		l, r int64
		want int64
	}{
		{ir.Add, 3, 4, 7},
		{ir.Sub, 3, 4, -1},
		{ir.Mul, 3, 4, 12},
		{ir.Div, 7, 2, 3},
		{ir.Div, -7, 2, -3},
		{ir.Rem, 7, 3, 1},
		{ir.Rem, -7, 3, -1},
		{ir.Min, 3, -2, -2},
		{ir.Max, 3, -2, 3},
		{ir.And, 0b1100, 0b1010, 0b1000},
		{ir.Or, 0b1100, 0b1010, 0b1110},
		{ir.Xor, 0b1100, 0b1010, 0b0110},
		{ir.Shl, 1, 4, 16},
		{ir.Shr, 16, 3, 2},
		{ir.Lt, -1, 0, 1},
		{ir.Ge, 0, 0, 1},
	}
	for _, c := range cases {
		got, err := EvalBin(c.op, VI(c.l), VI(c.r))
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		if got.I != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.l, c.r, got.I, c.want)
		}
	}
}

func TestEvalBinIntDivZero(t *testing.T) {
	if _, err := EvalBin(ir.Div, VI(1), VI(0)); err == nil {
		t.Error("int division by zero should error")
	}
	if _, err := EvalBin(ir.Rem, VI(1), VI(0)); err == nil {
		t.Error("int remainder by zero should error")
	}
	// FP division by zero is IEEE infinity, not an error.
	v, err := EvalBin(ir.Div, VF(1), VF(0))
	if err != nil || !math.IsInf(v.F, 1) {
		t.Errorf("fp 1/0 = %v, %v; want +Inf", v, err)
	}
}

func TestEvalBinShiftMasksCount(t *testing.T) {
	// Shift counts are masked to 6 bits, like hardware.
	v, err := EvalBin(ir.Shl, VI(1), VI(64))
	if err != nil || v.I != 1 {
		t.Errorf("1 << 64 (masked) = %v, want 1", v)
	}
}

func TestEvalUn(t *testing.T) {
	check := func(op ir.UnOp, in Value, want Value) {
		t.Helper()
		got, err := EvalUn(op, in)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if got != want {
			t.Errorf("%s(%v) = %v, want %v", op, in, got, want)
		}
	}
	check(ir.Neg, VF(1.5), VF(-1.5))
	check(ir.Neg, VI(3), VI(-3))
	check(ir.Not, VI(0), VI(1))
	check(ir.Not, VI(7), VI(0))
	check(ir.Sqrt, VF(9), VF(3))
	check(ir.Abs, VF(-2), VF(2))
	check(ir.Abs, VI(-2), VI(2))
	check(ir.Floor, VF(2.7), VF(2))
	check(ir.CvtIF, VI(3), VF(3))
	check(ir.CvtFI, VF(3.9), VI(3))
	check(ir.CvtFI, VF(-3.9), VI(-3))
	v, _ := EvalUn(ir.Exp, VF(0))
	if v.F != 1 {
		t.Errorf("exp(0) = %v, want 1", v.F)
	}
	v, _ = EvalUn(ir.Log, VF(1))
	if v.F != 0 {
		t.Errorf("log(1) = %v, want 0", v.F)
	}
}

func TestRunSimpleLoop(t *testing.T) {
	b := ir.NewBuilder("axpy", "i", 0, 16, 1)
	xs := make([]float64, 16)
	ys := make([]float64, 16)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) * 0.5
	}
	b.ArrayF("x", xs)
	b.ArrayF("y", ys)
	b.ArrayF("o", make([]float64, 16))
	alpha := b.ScalarF("alpha", 2)
	i := b.Idx()
	b.StoreF("o", i, ir.AddE(ir.MulE(alpha, ir.LDF("x", i)), ir.LDF("y", i)))
	l := b.MustBuild()

	res, err := Run(l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		want := 2*float64(i) + float64(i)*0.5
		if res.ArraysF["o"][i] != want {
			t.Fatalf("o[%d] = %g, want %g", i, res.ArraysF["o"][i], want)
		}
	}
	if res.OpCount != 16*2 {
		t.Errorf("OpCount = %d, want 32", res.OpCount)
	}
}

func TestRunReduction(t *testing.T) {
	b := ir.NewBuilder("sum", "i", 0, 10, 1)
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	b.ArrayF("x", xs)
	acc := b.ScalarF("acc", 0)
	_ = acc
	b.LiveOut("acc")
	b.Def("acc", ir.AddE(b.T("acc"), ir.LDF("x", b.Idx())))
	l := b.MustBuild()
	res, err := Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Temps["acc"].F != 55 {
		t.Errorf("acc = %g, want 55", res.Temps["acc"].F)
	}
}

func TestRunConditional(t *testing.T) {
	b := ir.NewBuilder("clamp", "i", 0, 8, 1)
	xs := []float64{-3, -1, 0, 1, 2, 3, 4, 5}
	b.ArrayF("x", xs)
	b.ArrayF("o", make([]float64, 8))
	i := b.Idx()
	c := b.Def("c", ir.LtE(ir.LDF("x", i), ir.F(0)))
	b.If(c, func() {
		b.Def("v", ir.F(0))
	}, func() {
		b.Def("v", ir.LDF("x", i))
	})
	b.StoreF("o", i, b.T("v"))
	l := b.MustBuild()
	res, err := Run(l)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want := math.Max(x, 0)
		if res.ArraysF["o"][i] != want {
			t.Errorf("o[%d] = %g, want %g", i, res.ArraysF["o"][i], want)
		}
	}
}

func TestRunOutOfBounds(t *testing.T) {
	b := ir.NewBuilder("oob", "i", 0, 8, 1)
	b.ArrayF("x", make([]float64, 4)) // shorter than the trip count
	b.ArrayF("o", make([]float64, 8))
	b.StoreF("o", b.Idx(), ir.LDF("x", b.Idx()))
	l := b.MustBuild()
	_, err := Run(l)
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("expected out-of-bounds error, got %v", err)
	}
}

func TestRunStoreOutOfBounds(t *testing.T) {
	b := ir.NewBuilder("oob", "i", 0, 8, 1)
	b.ArrayF("o", make([]float64, 4))
	b.StoreF("o", b.Idx(), ir.F(1))
	l := b.MustBuild()
	if _, err := Run(l); err == nil {
		t.Error("expected store out-of-bounds error")
	}
}

func TestRunDoesNotMutateInit(t *testing.T) {
	b := ir.NewBuilder("m", "i", 0, 4, 1)
	b.ArrayF("a", []float64{1, 2, 3, 4})
	b.StoreF("a", b.Idx(), ir.F(0))
	l := b.MustBuild()
	if _, err := Run(l); err != nil {
		t.Fatal(err)
	}
	if l.Arrays[0].InitF[0] != 1 {
		t.Error("Run mutated the loop's declared init data")
	}
}

// Property: integer min/max agree with the obvious definitions for all
// inputs.
func TestQuickMinMax(t *testing.T) {
	f := func(a, b int64) bool {
		mn, err1 := EvalBin(ir.Min, VI(a), VI(b))
		mx, err2 := EvalBin(ir.Max, VI(a), VI(b))
		if err1 != nil || err2 != nil {
			return false
		}
		wantMin, wantMax := a, b
		if b < a {
			wantMin = b
		}
		if b > a {
			wantMax = b
		}
		if a > b {
			wantMax = a
		}
		return mn.I == wantMin && mx.I == wantMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparisons are mutually consistent (exactly one of <, ==, >
// holds; <= is < or ==).
func TestQuickCompareConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		lt, _ := EvalBin(ir.Lt, VI(a), VI(b))
		eq, _ := EvalBin(ir.Eq, VI(a), VI(b))
		gt, _ := EvalBin(ir.Gt, VI(a), VI(b))
		le, _ := EvalBin(ir.Le, VI(a), VI(b))
		ge, _ := EvalBin(ir.Ge, VI(a), VI(b))
		ne, _ := EvalBin(ir.Ne, VI(a), VI(b))
		if lt.I+eq.I+gt.I != 1 {
			return false
		}
		if le.I != lt.I|eq.I || ge.I != gt.I|eq.I || ne.I != 1-eq.I {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: float negate and abs round-trip.
func TestQuickNegAbs(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		n, _ := EvalUn(ir.Neg, VF(x))
		nn, _ := EvalUn(ir.Neg, n)
		a, _ := EvalUn(ir.Abs, VF(x))
		return nn.F == x && a.F == math.Abs(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
