// Package isa defines the instruction set of the simulated cores, including
// the enqueue/dequeue instructions the paper adds for low-latency
// core-to-core transfers (Section II). Programs are linear instruction
// lists with resolved branch targets; registers are per-core virtual
// registers (the model does not simulate register pressure).
package isa

import (
	"fmt"
	"strings"

	"fgp/internal/ir"
)

// Reg is a per-core virtual register index.
type Reg int32

// NoReg marks an unused register slot.
const NoReg Reg = -1

// Op enumerates opcodes.
type Op uint8

const (
	Nop Op = iota
	// ConstF/ConstI: Dst = immediate.
	ConstF
	ConstI
	// Mov: Dst = A.
	Mov
	// Bin: Dst = A <BinOp> B on values of kind K.
	Bin
	// Un: Dst = <UnOp> A on a value of kind K.
	Un
	// Load: Dst = Array[A].
	Load
	// Store: Array[A] = B.
	Store
	// Enq: push register A into queue Q; blocks while the queue is full.
	Enq
	// Deq: pop the next visible value from queue Q into Dst; blocks until
	// a value is visible (enqueue time + transfer latency, Fig 11).
	Deq
	// Fjp: jump to Tgt if A == 0 ("jump if false").
	Fjp
	// Jp: unconditional jump to Tgt.
	Jp
	// Jr: indirect jump to the instruction index held in A (used by the
	// secondary-thread driver to dispatch outlined functions).
	Jr
	// Halt stops the core.
	Halt
)

var opNames = [...]string{
	Nop: "nop", ConstF: "constf", ConstI: "consti", Mov: "mov",
	Bin: "bin", Un: "un", Load: "load", Store: "store",
	Enq: "enq", Deq: "deq", Fjp: "fjp", Jp: "jp", Jr: "jr", Halt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one machine instruction.
type Instr struct {
	Op    Op
	BinOp ir.BinOp
	UnOp  ir.UnOp
	K     ir.Kind // operand kind for Bin/Un/Load/Store and queue class
	Dst   Reg
	A, B  Reg
	ImmF  float64
	ImmI  int64
	Arr   int32 // array id, for Load/Store
	Q     int32 // queue id, for Enq/Deq
	Tgt   int32 // branch target (instruction index)
	Edge  int32 // communication edge tag for debug FIFO verification (-1 none)
	Tac   int32 // originating TAC instruction id (-1 none); profile mapping
}

// Mark annotates an instruction index with a region boundary for the
// observability layer (internal/obs). An Enter mark fires when the
// instruction at PC completes, opening region Region at that instruction's
// start time; an Exit mark closes it. Exit marks placed on shared merge
// points only fire when their region is actually open (the simulator keeps
// a per-core region stack), so a then-region exit sitting on a join
// instruction is ignored when control arrived via the else path.
type Mark struct {
	PC     int
	Region int32
	Enter  bool
	Name   string
}

// Program is the code image for one core.
type Program struct {
	Core   int
	Instrs []Instr
	NRegs  int
	// Labels annotates instruction indices for disassembly.
	Labels map[int]string
	// RegName maps registers to temp names for disassembly and live-out
	// extraction.
	RegName map[Reg]string
	// Marks lists region boundaries for observability, in the order they
	// should fire when several share one PC.
	Marks []Mark
}

// IsComm reports whether the opcode interacts with the hardware queues.
// Enqueues and dequeues are the only instructions through which cores
// observe each other (besides the shared memory port), so they are the
// synchronization points the simulator's burst engine must stop at.
func (o Op) IsComm() bool { return o == Enq || o == Deq }

// CommPoints returns the instruction indices of every enqueue and dequeue
// in the program, in program order. A program with no communication points
// runs to completion without ever observing another core through the
// queues.
func (p *Program) CommPoints() []int {
	var pts []int
	for i := range p.Instrs {
		if p.Instrs[i].Op.IsComm() {
			pts = append(pts, i)
		}
	}
	return pts
}

// Append adds an instruction and returns its index.
func (p *Program) Append(in Instr) int {
	p.Instrs = append(p.Instrs, in)
	return len(p.Instrs) - 1
}

// AddMark records a region boundary at an instruction index. Marks sharing
// a PC fire in the order they were added.
func (p *Program) AddMark(pc int, region int32, enter bool, name string) {
	p.Marks = append(p.Marks, Mark{PC: pc, Region: region, Enter: enter, Name: name})
}

// Label annotates the next emitted instruction index with a name.
func (p *Program) Label(name string) {
	if p.Labels == nil {
		p.Labels = map[int]string{}
	}
	idx := len(p.Instrs)
	if prev, ok := p.Labels[idx]; ok {
		name = prev + "," + name
	}
	p.Labels[idx] = name
}

// Disasm renders the program for the inspection tools.
func (p *Program) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "core %d: %d instrs, %d regs\n", p.Core, len(p.Instrs), p.NRegs)
	rn := func(r Reg) string {
		if r == NoReg {
			return "_"
		}
		if n, ok := p.RegName[r]; ok {
			return fmt.Sprintf("r%d<%s>", r, n)
		}
		return fmt.Sprintf("r%d", r)
	}
	for i, in := range p.Instrs {
		if lab, ok := p.Labels[i]; ok {
			fmt.Fprintf(&sb, "%s:\n", lab)
		}
		switch in.Op {
		case ConstF:
			fmt.Fprintf(&sb, "  %4d constf %s, %g\n", i, rn(in.Dst), in.ImmF)
		case ConstI:
			fmt.Fprintf(&sb, "  %4d consti %s, %d\n", i, rn(in.Dst), in.ImmI)
		case Mov:
			fmt.Fprintf(&sb, "  %4d mov    %s, %s\n", i, rn(in.Dst), rn(in.A))
		case Bin:
			fmt.Fprintf(&sb, "  %4d %-6s %s, %s, %s (%s)\n", i, in.BinOp, rn(in.Dst), rn(in.A), rn(in.B), in.K)
		case Un:
			fmt.Fprintf(&sb, "  %4d %-6s %s, %s (%s)\n", i, in.UnOp, rn(in.Dst), rn(in.A), in.K)
		case Load:
			fmt.Fprintf(&sb, "  %4d load   %s, arr%d[%s]\n", i, rn(in.Dst), in.Arr, rn(in.A))
		case Store:
			fmt.Fprintf(&sb, "  %4d store  arr%d[%s], %s\n", i, in.Arr, rn(in.A), rn(in.B))
		case Enq:
			fmt.Fprintf(&sb, "  %4d enq    q%d, %s (edge %d)\n", i, in.Q, rn(in.A), in.Edge)
		case Deq:
			fmt.Fprintf(&sb, "  %4d deq    %s, q%d (edge %d)\n", i, rn(in.Dst), in.Q, in.Edge)
		case Fjp:
			fmt.Fprintf(&sb, "  %4d fjp    %s, @%d\n", i, rn(in.A), in.Tgt)
		case Jp:
			fmt.Fprintf(&sb, "  %4d jp     @%d\n", i, in.Tgt)
		case Jr:
			fmt.Fprintf(&sb, "  %4d jr     %s\n", i, rn(in.A))
		case Halt:
			fmt.Fprintf(&sb, "  %4d halt\n", i)
		default:
			fmt.Fprintf(&sb, "  %4d %s\n", i, in.Op)
		}
	}
	return sb.String()
}
