package isa

import "fmt"

// Validate statically checks a program's well-formedness: register indices
// within NRegs, branch and indirect-jump plausibility, queue ids
// non-negative, and that execution cannot fall off the end (the last
// instruction on every straight-line path is a Halt or an unconditional
// jump). The compiler runs it on every generated program as a defense in
// depth; the simulator would also catch these, but later and with less
// context.
func (p *Program) Validate(machineCores int) error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("isa: core %d: empty program", p.Core)
	}
	checkReg := func(i int, r Reg, slot string) error {
		if r == NoReg {
			return nil
		}
		if r < 0 || int(r) >= p.NRegs {
			return fmt.Errorf("isa: core %d instr %d: %s register %d outside [0,%d)", p.Core, i, slot, r, p.NRegs)
		}
		return nil
	}
	maxQ := int32(machineCores*machineCores*2) - 1
	for i, in := range p.Instrs {
		var needDst, needA, needB bool
		switch in.Op {
		case ConstF, ConstI:
			needDst = true
		case Mov, Un, Load:
			needDst, needA = true, true
		case Bin:
			needDst, needA, needB = true, true, true
		case Store:
			needA, needB = true, true
		case Enq:
			needA = true
		case Deq:
			needDst = true
		case Fjp, Jr:
			needA = true
		case Jp, Halt, Nop:
		default:
			return fmt.Errorf("isa: core %d instr %d: unknown opcode %d", p.Core, i, in.Op)
		}
		if needDst {
			if in.Dst == NoReg {
				return fmt.Errorf("isa: core %d instr %d: %s needs a destination", p.Core, i, in.Op)
			}
			if err := checkReg(i, in.Dst, "dst"); err != nil {
				return err
			}
		}
		if needA {
			if in.A == NoReg {
				return fmt.Errorf("isa: core %d instr %d: %s needs operand A", p.Core, i, in.Op)
			}
			if err := checkReg(i, in.A, "A"); err != nil {
				return err
			}
		}
		if needB {
			if in.B == NoReg {
				return fmt.Errorf("isa: core %d instr %d: %s needs operand B", p.Core, i, in.Op)
			}
			if err := checkReg(i, in.B, "B"); err != nil {
				return err
			}
		}
		switch in.Op {
		case Fjp, Jp:
			if in.Tgt < 0 || int(in.Tgt) >= len(p.Instrs) {
				return fmt.Errorf("isa: core %d instr %d: branch target %d outside program (%d instrs)", p.Core, i, in.Tgt, len(p.Instrs))
			}
		case Enq, Deq:
			if in.Q < 0 || in.Q > maxQ {
				return fmt.Errorf("isa: core %d instr %d: queue id %d outside [0,%d]", p.Core, i, in.Q, maxQ)
			}
			src := int(in.Q) / 2 / machineCores
			dst := int(in.Q) / 2 % machineCores
			if in.Op == Enq && src != p.Core {
				return fmt.Errorf("isa: core %d instr %d: enqueue into queue %d owned by core %d", p.Core, i, in.Q, src)
			}
			if in.Op == Deq && dst != p.Core {
				return fmt.Errorf("isa: core %d instr %d: dequeue from queue %d delivered to core %d", p.Core, i, in.Q, dst)
			}
		}
	}
	// Execution must not fall off the end.
	last := p.Instrs[len(p.Instrs)-1]
	if last.Op != Halt && last.Op != Jp && last.Op != Jr {
		return fmt.Errorf("isa: core %d: program can fall off the end (last op %s)", p.Core, last.Op)
	}
	return nil
}
