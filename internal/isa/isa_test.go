package isa

import (
	"strings"
	"testing"

	"fgp/internal/ir"
)

func halting(instrs ...Instr) *Program {
	p := &Program{Core: 0}
	for _, in := range instrs {
		p.Append(in)
	}
	p.Append(Instr{Op: Halt, Dst: NoReg, A: NoReg, B: NoReg})
	maxReg := Reg(-1)
	for _, in := range p.Instrs {
		for _, r := range []Reg{in.Dst, in.A, in.B} {
			if r > maxReg {
				maxReg = r
			}
		}
	}
	p.NRegs = int(maxReg) + 1
	return p
}

func TestValidateAccepts(t *testing.T) {
	p := halting(
		Instr{Op: ConstI, Dst: 0, A: NoReg, B: NoReg, ImmI: 1},
		Instr{Op: ConstF, Dst: 1, A: NoReg, B: NoReg, ImmF: 2},
		Instr{Op: Bin, BinOp: ir.Add, K: ir.I64, Dst: 2, A: 0, B: 0},
		Instr{Op: Un, UnOp: ir.Neg, K: ir.F64, Dst: 3, A: 1},
		Instr{Op: Load, Dst: 4, A: 0, B: NoReg, K: ir.F64, Arr: 0},
		Instr{Op: Store, A: 0, B: 4, Dst: NoReg, K: ir.F64, Arr: 0},
		Instr{Op: Enq, A: 0, B: NoReg, Dst: NoReg, K: ir.I64, Q: 3}, // 0->1 I64 on 2 cores
		Instr{Op: Deq, Dst: 5, A: NoReg, B: NoReg, K: ir.I64, Q: 5}, // 1->0 I64
		Instr{Op: Fjp, A: 0, B: NoReg, Dst: NoReg, Tgt: 0},
		Instr{Op: Jp, Tgt: 0, Dst: NoReg, A: NoReg, B: NoReg},
	)
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		frag string
	}{
		{
			"register out of range",
			func() *Program {
				p := halting(Instr{Op: ConstI, Dst: 9, A: NoReg, B: NoReg})
				p.NRegs = 2
				return p
			}(),
			"outside",
		},
		{
			"missing destination",
			halting(Instr{Op: ConstI, Dst: NoReg, A: NoReg, B: NoReg}),
			"needs a destination",
		},
		{
			"missing operand",
			halting(Instr{Op: Bin, BinOp: ir.Add, Dst: 0, A: 0, B: NoReg}),
			"needs operand B",
		},
		{
			"branch out of program",
			halting(Instr{Op: Jp, Tgt: 99, Dst: NoReg, A: NoReg, B: NoReg}),
			"branch target",
		},
		{
			"enqueue to foreign queue",
			halting(Instr{Op: Enq, A: 0, B: NoReg, Dst: NoReg, Q: 5}), // 1->0 on 2 cores, but we are core 0
			"owned by core",
		},
		{
			"dequeue from foreign queue",
			halting(Instr{Op: Deq, Dst: 0, A: NoReg, B: NoReg, Q: 3}), // 0->1: delivered to core 1
			"delivered to core",
		},
		{
			"queue id out of range",
			halting(Instr{Op: Enq, A: 0, B: NoReg, Dst: NoReg, Q: 99}),
			"queue id",
		},
	}
	for _, c := range cases {
		err := c.p.Validate(2)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.frag)
		}
	}
}

func TestValidateFallOffEnd(t *testing.T) {
	p := &Program{Core: 0, NRegs: 1}
	p.Append(Instr{Op: ConstI, Dst: 0, A: NoReg, B: NoReg})
	if err := p.Validate(1); err == nil || !strings.Contains(err.Error(), "fall off") {
		t.Errorf("got %v", err)
	}
	p2 := &Program{Core: 0}
	if err := p2.Validate(1); err == nil {
		t.Error("empty program must be rejected")
	}
}

func TestLabelsAndDisasm(t *testing.T) {
	p := halting(
		Instr{Op: ConstF, Dst: 0, A: NoReg, B: NoReg, ImmF: 1.5},
		Instr{Op: Enq, A: 0, B: NoReg, Dst: NoReg, K: ir.F64, Q: 0, Edge: 7},
	)
	p.Label("extra") // annotates the next (nonexistent) index harmlessly
	p.RegName = map[Reg]string{0: "acc"}
	out := p.Disasm()
	for _, frag := range []string{"constf", "r0<acc>", "enq", "edge 7", "halt"} {
		if !strings.Contains(out, frag) {
			t.Errorf("disasm missing %q:\n%s", frag, out)
		}
	}
}

func TestLabelMergesNames(t *testing.T) {
	p := &Program{}
	p.Label("a")
	p.Label("b")
	p.Append(Instr{Op: Halt, Dst: NoReg, A: NoReg, B: NoReg})
	if p.Labels[0] != "a,b" {
		t.Errorf("labels = %q", p.Labels[0])
	}
}

func TestOpString(t *testing.T) {
	for op := Nop; op <= Halt; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}
