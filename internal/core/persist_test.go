package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"fgp/internal/kernels"
	"fgp/internal/sim"
)

// TestArtifactRoundTrip is the persistence acceptance criterion: an
// artifact restored from its serialized form must simulate bit-identically
// to the artifact that was stored, on every engine.
func TestArtifactRoundTrip(t *testing.T) {
	for _, name := range []string{"sphot-1", "irs-1", "lammps-2"} {
		k, err := kernels.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		art, err := Compile(k.Build(), DefaultOptions(3))
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		data, err := art.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		got, err := UnmarshalArtifact(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}

		if !reflect.DeepEqual(got.Report, art.Report) {
			t.Errorf("%s: report drifted:\ngot  %+v\nwant %+v", name, got.Report, art.Report)
		}
		if got.MachineConfig() != art.MachineConfig() {
			t.Errorf("%s: machine config drifted: %+v vs %+v", name, got.MachineConfig(), art.MachineConfig())
		}

		for _, engine := range []string{sim.EngineBurst, sim.EngineReference, sim.EngineThreaded} {
			cfg := art.MachineConfig()
			cfg.Engine = engine
			want, err := art.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: original run: %v", name, engine, err)
			}
			res, err := got.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: restored run: %v", name, engine, err)
			}
			if res.Cycles != want.Cycles || res.Transfers != want.Transfers ||
				!reflect.DeepEqual(res.PerCoreCycles, want.PerCoreCycles) ||
				!reflect.DeepEqual(res.EnqStalls, want.EnqStalls) ||
				!reflect.DeepEqual(res.DeqStalls, want.DeqStalls) {
				t.Errorf("%s/%s: restored artifact diverged: %+v vs %+v", name, engine, res, want)
			}
		}

		// The restored artifact still passes end-to-end verification against
		// the reference interpreter (memory image + live-outs).
		if _, err := got.Verify(got.MachineConfig()); err != nil {
			t.Errorf("%s: restored artifact fails verify: %v", name, err)
		}
	}
}

func TestUnmarshalArtifactRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalArtifact([]byte("not a gob stream")); err == nil {
		t.Error("garbage bytes decoded without error")
	}
	if _, err := UnmarshalArtifact(nil); err == nil {
		t.Error("empty input decoded without error")
	}
}

func TestUnmarshalArtifactRejectsVersionSkew(t *testing.T) {
	k, err := kernels.ByName("sphot-1")
	if err != nil {
		t.Fatal(err)
	}
	art, err := Compile(k.Build(), DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode the wire struct with a bumped version: the decoder must
	// refuse it so stale snapshots read as misses, not wrong artifacts.
	data, err := art.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var w artifactWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		t.Fatal(err)
	}
	w.Version = artifactWireVersion + 1
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalArtifact(buf.Bytes()); err == nil {
		t.Error("version-skewed artifact decoded without error")
	}
}
