// Artifact persistence: a compiled kernel serialized to bytes and back, so
// fgpd's on-disk artifact store (internal/service/store) can warm-start a
// restarted or horizontally scaled daemon without recompiling.
//
// The wire format carries exactly what executing an artifact needs — the
// per-core machine programs, the post-transformation loop (whose arrays
// build the fresh memory image of every run), the compile report, and the
// machine configuration — not the compiler's intermediate structures
// (TAC, fibers, dependence info, partitions). A restored artifact therefore
// supports Run/RunContext/Verify/MachineConfig/Report, which is everything
// the service uses after compilation; it is not a substitute for the
// pipeline's internals.
//
// Loops travel in their canonical JSON wire encoding (ir.MarshalLoop — the
// same bytes the service content-addresses), everything else in gob. The
// store layers integrity checking (sha256 of the payload) on top, so this
// codec only needs a version tag to reject incompatible snapshots.

package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/outline"
	"fgp/internal/sim"
)

// artifactWireVersion is bumped whenever the serialized shape (this struct,
// isa.Instr, sim.Config, the IR wire codec, ...) changes incompatibly. A
// mismatch makes UnmarshalArtifact fail, which the store's callers treat
// like a cache miss: the kernel recompiles and the stale entry is
// overwritten.
const artifactWireVersion = 1

// artifactWire is the serialized form of an Artifact.
type artifactWire struct {
	Version      int
	Loop         []byte // canonical encoding of the post-transformation loop
	Source       []byte // canonical encoding of the original loop
	Programs     []*isa.Program
	CommOps      int
	Transfers    int
	StaticQueues int
	Report       Report
	Machine      sim.Config // Trace/Sink are zeroed: sinks never persist
}

// MarshalBinary serializes the artifact for the on-disk store.
func (a *Artifact) MarshalBinary() ([]byte, error) {
	loopBytes, err := ir.MarshalLoop(a.Loop)
	if err != nil {
		return nil, fmt.Errorf("core: encoding loop: %w", err)
	}
	srcBytes, err := ir.MarshalLoop(a.Source)
	if err != nil {
		return nil, fmt.Errorf("core: encoding source loop: %w", err)
	}
	mc := a.machine
	mc.Trace = nil
	mc.Sink = nil
	w := artifactWire{
		Version:      artifactWireVersion,
		Loop:         loopBytes,
		Source:       srcBytes,
		Programs:     a.Compiled.Programs,
		CommOps:      a.Compiled.CommOps,
		Transfers:    a.Compiled.Transfers,
		StaticQueues: a.Compiled.StaticQueues,
		Report:       a.Report,
		Machine:      mc,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("core: encoding artifact: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalArtifact restores a serialized artifact. The result executes
// bit-identically to the artifact that was stored (the programs and machine
// configuration are carried verbatim; every run builds its memory image
// fresh from the loop's arrays). The threaded engine's translation cache is
// prewarmed exactly as CompileContext does after a fresh compile.
func UnmarshalArtifact(data []byte) (*Artifact, error) {
	var w artifactWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: decoding artifact: %w", err)
	}
	if w.Version != artifactWireVersion {
		return nil, fmt.Errorf("core: artifact wire version %d, want %d", w.Version, artifactWireVersion)
	}
	loop, err := ir.UnmarshalLoop(w.Loop)
	if err != nil {
		return nil, fmt.Errorf("core: decoding loop: %w", err)
	}
	src, err := ir.UnmarshalLoop(w.Source)
	if err != nil {
		return nil, fmt.Errorf("core: decoding source loop: %w", err)
	}
	if len(w.Programs) == 0 {
		return nil, fmt.Errorf("core: artifact carries no programs")
	}
	for _, prog := range w.Programs {
		if err := prog.Validate(w.Machine.Cores); err != nil {
			return nil, fmt.Errorf("core: restored program failed validation: %w", err)
		}
	}
	sim.PrecompileThreaded(w.Programs, w.Machine.Cost)
	return &Artifact{
		Loop:   loop,
		Source: src,
		Compiled: &outline.Compiled{
			Programs:     w.Programs,
			CommOps:      w.CommOps,
			Transfers:    w.Transfers,
			StaticQueues: w.StaticQueues,
		},
		Report:  w.Report,
		machine: w.Machine,
	}, nil
}
