package core

import (
	"testing"

	"fgp/internal/ir"
)

// TestBigFuzz is the wider companion of TestFuzzCompileAndVerify: more
// seeds, every option combination, cores 2-4. The 4000-seed version of this
// sweep was run during development; 500 seeds keep the checked-in suite
// fast while still covering each option combination dozens of times.
func TestBigFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz sweep")
	}
	for it := 0; it < 500; it++ {
		seed := uint64(it)*0x9e3779b97f4a7c15 + 777777
		l := generate(seed)
		for cores := 2; cores <= 4; cores++ {
			opt := DefaultOptions(cores)
			opt.UseProfile = false
			opt.Speculate = it%2 == 0
			opt.Throughput = it%3 == 0
			opt.MultiPair = it%5 == 0
			opt.Schedule = it%4 == 0
			a, err := Compile(l, opt)
			if err != nil {
				t.Fatalf("seed %x cores %d: compile: %v\n%s", seed, cores, err, ir.Print(l))
			}
			if _, err := a.Verify(a.MachineConfig()); err != nil {
				t.Fatalf("seed %x cores %d (spec=%v thr=%v mp=%v sched=%v): %v\n%s",
					seed, cores, opt.Speculate, opt.Throughput, opt.MultiPair, opt.Schedule, err, ir.Print(l))
			}
		}
	}
}
