// Package core is the compiler driver: it runs the full pipeline from IR
// loop to per-core machine programs (optionally with control-flow
// speculation and profile feedback) and provides helpers to execute the
// result on the simulator and verify it against the reference interpreter.
//
// Pipeline (Sections III-A..III-H of the paper):
//
//	IR loop
//	  └─ speculate (optional)    internal/speculate
//	  └─ lower to TAC            internal/tac
//	  └─ fiber partitioning      internal/fiber
//	  └─ dependence analysis     internal/deps
//	  └─ profile feedback        internal/profile (+ a sequential sim run)
//	  └─ code-graph merging      internal/codegraph
//	  └─ outlining + comm        internal/outline
//	  └─ machine programs        internal/isa → internal/sim
package core

import (
	"context"
	"fmt"
	"math"

	"fgp/internal/codegraph"
	"fgp/internal/deps"
	"fgp/internal/fiber"
	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/mem"
	"fgp/internal/normalize"
	"fgp/internal/outline"
	"fgp/internal/profile"
	"fgp/internal/search"
	"fgp/internal/sim"
	"fgp/internal/speculate"
	"fgp/internal/tac"
	"fgp/internal/verify"
)

// Options selects compiler behavior.
type Options struct {
	// Cores is the number of hardware cores to partition for (1 =
	// sequential compilation, no communication).
	Cores int
	// Weights for the merge heuristics; zero value uses the defaults.
	Weights codegraph.Weights
	// Throughput enables the DAG-constraining merge heuristic (ablation).
	Throughput bool
	// MultiPair merges several node pairs per step (compile-time variant).
	MultiPair bool
	// Speculate enables the control-flow speculation transformation.
	Speculate bool
	// NormalizeOps, when > 0, splits statements whose expression trees hold
	// more than this many compute operations (the Section III-A tree-depth
	// reduction). 0 leaves statements as authored.
	NormalizeOps int
	// Schedule enables within-region instruction scheduling (on in all
	// paper experiments).
	Schedule bool
	// UseProfile runs a sequential profiling simulation and feeds measured
	// load latencies to the partitioning heuristics.
	UseProfile bool
	// Profile supplies precomputed profile feedback (see ComputeProfile),
	// skipping the profiling simulation. The profile depends only on the
	// loop and the pre-lowering transformations (speculation, tree
	// splitting) plus the machine cost model — not on the target core count
	// — so one profile can feed compilations at every core count. Ignored
	// unless UseProfile is set.
	Profile profile.Profile
	// Machine overrides the simulation configuration used for profiling
	// runs (and recorded as default for Run). Cores is forced to Options
	// values as needed.
	Machine *sim.Config
	// Partitioner selects how fibers are placed onto cores:
	// PartitionerHeuristic (the default — the paper's greedy code-graph
	// merge) or PartitionerSearch, which refines the heuristic partition
	// with internal/search: beam search plus simulated annealing over merge
	// orders, scored by the threaded simulator, with every candidate gated
	// through program validation and internal/verify before scoring. The
	// search is seeded by the heuristic partition, so its result is never
	// worse. Ignored when Cores == 1 (there is nothing to place).
	Partitioner string
	// SearchSeed seeds the randomized refinement phase of
	// PartitionerSearch; the same seed and budget reproduce the same
	// partition byte for byte.
	SearchSeed int64
	// SearchBudget bounds the number of candidate partitions the search
	// may score (0 = search.DefaultBudget).
	SearchBudget int
	// SearchWorkers bounds concurrent candidate scoring (0/1 = serial). It
	// affects compile time only, never the chosen partition.
	SearchWorkers int
}

// Partitioner names accepted by Options.Partitioner ("" means heuristic).
const (
	PartitionerHeuristic = "heuristic"
	PartitionerSearch    = "search"
)

// Partitioners lists the selectable partitioners, default first.
func Partitioners() []string { return []string{PartitionerHeuristic, PartitionerSearch} }

// DefaultOptions returns the configuration used for the paper's main
// results: profile feedback on; speculation and the throughput heuristic
// off. The within-region scheduling pass is also off by default: on this
// substrate the hardware queues already decouple producers and consumers
// across iterations, and we measured the pass as neutral-to-negative (the
// paper makes the matching observation that partitioning-adjacent changes
// had unpredictable performance effects, Section III-B). It remains
// available via Schedule and is covered by the scheduling ablation.
func DefaultOptions(cores int) Options {
	return Options{Cores: cores, UseProfile: true}
}

// Report carries the compiler statistics that Table III of the paper
// reports per kernel.
type Report struct {
	Kernel        string
	Cores         int
	InitialFibers int
	DataDeps      int
	// LoadBalance is (max compute ops per partition) / (min compute ops
	// per partition); 1.0 is perfectly balanced.
	LoadBalance float64
	// ComputeOps holds the compute-operation count of each partition.
	ComputeOps []int
	// CommOps is the number of enqueue+dequeue operations inserted in the
	// loop body.
	CommOps int
	// Transfers is the number of distinct values communicated per
	// iteration.
	Transfers int
	// StaticQueues is the number of (sender, receiver) pairs with static
	// queue traffic, including the runtime protocol.
	StaticQueues int
	MergeSteps   int
	// SpeculatedIfs counts conditionals rewritten by the speculation pass.
	SpeculatedIfs int
	// Partitioner records which selector produced Parts ("heuristic" or
	// "search"). The Search* fields below are populated only for "search".
	Partitioner string
	// SearchExplored counts candidate partitions the search scored
	// (including the heuristic seed).
	SearchExplored int
	// SearchBaselineCycles is the simulated cycle count of the heuristic
	// seed partition on the threaded engine; SearchCycles is the winner's.
	// SearchCycles <= SearchBaselineCycles by construction.
	SearchBaselineCycles int64
	SearchCycles         int64
}

// Artifact is a compiled kernel.
type Artifact struct {
	Loop     *ir.Loop // post-speculation loop actually compiled
	Source   *ir.Loop // original loop
	Fn       *tac.Fn
	Fibers   *fiber.Set
	Deps     *deps.Info
	Parts    *codegraph.Result
	Compiled *outline.Compiled
	Report   Report
	machine  sim.Config
}

// Compile runs the pipeline.
func Compile(l *ir.Loop, opt Options) (*Artifact, error) {
	return CompileContext(context.Background(), l, opt)
}

// CompileContext is Compile with cooperative cancellation: the profiling
// simulation (the only unbounded-cost stage of the pipeline) aborts within
// one burst horizon when ctx is cancelled, returning ctx.Err().
func CompileContext(ctx context.Context, l *ir.Loop, opt Options) (*Artifact, error) {
	if opt.Cores < 1 {
		return nil, fmt.Errorf("core: cores must be >= 1")
	}
	switch opt.Partitioner {
	case "", PartitionerHeuristic, PartitionerSearch:
	default:
		return nil, fmt.Errorf("core: unknown partitioner %q (have %v)", opt.Partitioner, Partitioners())
	}
	if (opt.Weights == codegraph.Weights{}) {
		opt.Weights = codegraph.DefaultWeights()
	}
	mc := sim.DefaultConfig(opt.Cores)
	if opt.Machine != nil {
		mc = *opt.Machine
		if mc.Cores < opt.Cores {
			mc.Cores = opt.Cores
		}
	}
	// Reject an unusable machine before any pipeline work: degenerate sweep
	// points (see internal/machspace) must fail with the structured
	// *sim.ConfigError here, never surface as a mid-compile panic or a
	// simulated deadlock.
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	if mc.GroupSize > 0 && opt.Cores > mc.GroupSize {
		return nil, fmt.Errorf("core: %d cores requested but queues connect groups of %d (Section II: the hardware provides all-to-all queues only within a group)",
			opt.Cores, mc.GroupSize)
	}

	src := l
	if opt.NormalizeOps > 0 {
		var normRes normalize.Result
		l, normRes = normalize.Apply(l, opt.NormalizeOps)
		_ = normRes
		if err := ir.Validate(l); err != nil {
			return nil, fmt.Errorf("core: normalization produced invalid IR: %w", err)
		}
	}
	var specRes speculate.Result
	if opt.Speculate {
		l, specRes = speculate.Apply(l)
		if err := ir.Validate(l); err != nil {
			return nil, fmt.Errorf("core: speculation produced invalid IR: %w", err)
		}
	}

	fn, err := tac.Lower(l)
	if err != nil {
		return nil, err
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		return nil, err
	}
	info, err := deps.Analyze(fn, set)
	if err != nil {
		return nil, err
	}

	var prof profile.Profile
	if opt.UseProfile {
		if opt.Profile != nil {
			prof = opt.Profile
		} else {
			prof, err = profileRun(ctx, fn, info, set, mc)
			if err != nil {
				return nil, fmt.Errorf("core: profiling run failed: %w", err)
			}
		}
	}
	instrCost := profile.InstrCost(mc.Cost, prof)

	parts, err := codegraph.Merge(info, codegraph.Options{
		Targets:    opt.Cores,
		Weights:    opt.Weights,
		Throughput: opt.Throughput,
		MultiPair:  opt.MultiPair,
		InstrCost:  instrCost,
	})
	if err != nil {
		return nil, err
	}
	var stats searchStats
	if opt.Partitioner == PartitionerSearch && opt.Cores > 1 && len(parts.Parts) > 1 {
		parts, stats, err = searchPartition(ctx, l, fn, info, parts, instrCost, mc, opt)
		if err != nil {
			return nil, err
		}
	}

	depthCap := 8
	if mc.QueueLen < depthCap {
		depthCap = mc.QueueLen
	}
	compiled, err := outline.Generate(fn, info, parts, outline.Options{
		MachineCores:  mc.Cores,
		Schedule:      opt.Schedule,
		InstrCost:     instrCost,
		TokenDepthCap: depthCap,
	})
	if err != nil {
		return nil, err
	}

	for _, prog := range compiled.Programs {
		if err := prog.Validate(mc.Cores); err != nil {
			return nil, fmt.Errorf("core: generated program failed validation: %w", err)
		}
	}

	if err := verify.Check(verify.Input{
		Programs: compiled.Programs,
		Cores:    mc.Cores,
		QueueLen: mc.QueueLen,
		Fn:       fn,
		Deps:     info,
		Parts:    parts,
	}); err != nil {
		return nil, fmt.Errorf("core: compiled program failed static verification: %w", err)
	}

	// Build the threaded engine's basic-block translation now, from the
	// programs static verification just accepted. The translation cache is
	// content-addressed, so every later simulation of this artifact — and of
	// any identical artifact compiled elsewhere (fgpd's singleflight cache,
	// the experiment runner) — starts warm.
	sim.PrecompileThreaded(compiled.Programs, mc.Cost)

	a := &Artifact{
		Loop: l, Source: src, Fn: fn, Fibers: set, Deps: info,
		Parts: parts, Compiled: compiled, machine: mc,
	}
	a.Report = buildReport(l.Name, opt.Cores, set, info, parts, compiled, specRes)
	a.Report.Partitioner = PartitionerHeuristic
	if opt.Partitioner == PartitionerSearch {
		a.Report.Partitioner = PartitionerSearch
		a.Report.SearchExplored = stats.explored
		a.Report.SearchBaselineCycles = stats.baseline
		a.Report.SearchCycles = stats.cycles
	}
	return a, nil
}

type searchStats struct {
	explored int
	baseline int64
	cycles   int64
}

// searchPartition refines the heuristic seed partition with internal/search.
// The objective compiles every candidate through the normal pipeline tail —
// outlining, program validation, and internal/verify's translation
// validation — so illegal partitions are rejected before they are ever
// scored, then simulates the survivor on the threaded engine and returns
// its cycle count. When the winner differs from the seed, its final memory
// image and live-outs are cross-checked bit-identical against the seed's
// before it is accepted. If the seed itself cannot be scored (the kernel
// traps on its inputs), the heuristic partition is kept unchanged.
func searchPartition(ctx context.Context, l *ir.Loop, fn *tac.Fn, info *deps.Info, seed *codegraph.Result, instrCost func(*tac.Instr) int64, mc sim.Config, opt Options) (*codegraph.Result, searchStats, error) {
	depthCap := 8
	if mc.QueueLen < depthCap {
		depthCap = mc.QueueLen
	}
	build := func(cand *codegraph.Result) (*outline.Compiled, error) {
		compiled, err := outline.Generate(fn, info, cand, outline.Options{
			MachineCores:  mc.Cores,
			Schedule:      opt.Schedule,
			InstrCost:     instrCost,
			TokenDepthCap: depthCap,
		})
		if err != nil {
			return nil, err
		}
		for _, prog := range compiled.Programs {
			if err := prog.Validate(mc.Cores); err != nil {
				return nil, err
			}
		}
		if err := verify.Check(verify.Input{
			Programs: compiled.Programs,
			Cores:    mc.Cores,
			QueueLen: mc.QueueLen,
			Fn:       fn,
			Deps:     info,
			Parts:    cand,
		}); err != nil {
			return nil, err
		}
		return compiled, nil
	}
	objCfg := mc
	objCfg.Engine = sim.EngineThreaded
	simulate := func(ctx context.Context, compiled *outline.Compiled, image *mem.Memory) (*sim.Result, error) {
		m, err := sim.New(compiled.Programs, image, objCfg)
		if err != nil {
			return nil, err
		}
		return m.RunContext(ctx)
	}
	obj := func(ctx context.Context, cand *codegraph.Result) (int64, error) {
		compiled, err := build(cand)
		if err != nil {
			return 0, err
		}
		res, err := simulate(ctx, compiled, outline.BuildMemory(l))
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}

	fiberCost := make([]int64, len(seed.PartOf))
	for i := range fn.Instrs {
		in := fn.Instrs[i]
		if int(in.Fiber) < len(fiberCost) {
			fiberCost[in.Fiber] += instrCost(in)
		}
	}

	sr, err := search.Refine(ctx, info, seed, fiberCost, obj, search.Options{
		Seed:    opt.SearchSeed,
		Budget:  opt.SearchBudget,
		Workers: opt.SearchWorkers,
	})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, searchStats{}, ctxErr
		}
		if sr != nil {
			// The heuristic seed itself cannot be simulated (the kernel
			// traps on its committed inputs): keep the heuristic partition
			// and report no search gain.
			return seed, searchStats{explored: sr.Explored}, nil
		}
		return nil, searchStats{}, fmt.Errorf("core: partition search failed: %w", err)
	}

	if sr.Improved {
		if err := crossCheckPartitions(ctx, l, seed, sr.Best, build, simulate); err != nil {
			return nil, searchStats{}, fmt.Errorf("core: searched partition diverges from heuristic baseline: %w", err)
		}
	}
	// The searched Result describes a placement, not a merge trace; keep the
	// heuristic's step count so Table III statistics stay meaningful.
	sr.Best.MergeSteps = seed.MergeSteps
	return sr.Best, searchStats{explored: sr.Explored, baseline: sr.SeedCycles, cycles: sr.BestCycles}, nil
}

// crossCheckPartitions simulates the heuristic and searched partitions on
// fresh memory images and requires bit-identical final memory and live-out
// values. The compiler's correctness story does not rest on this check —
// internal/verify already validated the searched program — but the search
// promises it anyway: an accepted speedup must be the same computation.
func crossCheckPartitions(ctx context.Context, l *ir.Loop, seed, best *codegraph.Result, build func(*codegraph.Result) (*outline.Compiled, error), simulate func(context.Context, *outline.Compiled, *mem.Memory) (*sim.Result, error)) error {
	runSide := func(cand *codegraph.Result) (*mem.Memory, *sim.Result, error) {
		compiled, err := build(cand)
		if err != nil {
			return nil, nil, err
		}
		image := outline.BuildMemory(l)
		res, err := simulate(ctx, compiled, image)
		return image, res, err
	}
	seedMem, seedRes, err := runSide(seed)
	if err != nil {
		return fmt.Errorf("baseline run: %w", err)
	}
	bestMem, bestRes, err := runSide(best)
	if err != nil {
		return fmt.Errorf("searched run: %w", err)
	}
	for _, arr := range l.Arrays {
		if arr.K == ir.F64 {
			a, b := seedMem.SnapshotF(arr.Name), bestMem.SnapshotF(arr.Name)
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					return fmt.Errorf("%s[%d] = %v (heuristic) vs %v (search)", arr.Name, i, a[i], b[i])
				}
			}
		} else {
			a, b := seedMem.SnapshotI(arr.Name), bestMem.SnapshotI(arr.Name)
			for i := range a {
				if a[i] != b[i] {
					return fmt.Errorf("%s[%d] = %v (heuristic) vs %v (search)", arr.Name, i, a[i], b[i])
				}
			}
		}
	}
	for _, name := range l.LiveOut {
		a, aok := seedRes.LiveOut[name]
		b, bok := bestRes.LiveOut[name]
		if aok != bok {
			return fmt.Errorf("live-out %q present=%v (heuristic) vs present=%v (search)", name, aok, bok)
		}
		if a.K != b.K || a.I != b.I || math.Float64bits(a.F) != math.Float64bits(b.F) {
			return fmt.Errorf("live-out %q = %+v (heuristic) vs %+v (search)", name, a, b)
		}
	}
	return nil
}

// ComputeProfile runs the front of the pipeline (normalization,
// speculation, lowering, fiber partitioning, dependence analysis) and the
// sequential profiling simulation, returning the profile feedback Compile
// would measure for these options. The result is independent of
// Options.Cores (the profiling machine always has one core), so callers
// compiling one loop variant at several core counts can measure the profile
// once and pass it to each compilation via Options.Profile — bit-identical
// to letting every Compile run its own profiling simulation.
func ComputeProfile(l *ir.Loop, opt Options) (profile.Profile, error) {
	mc := sim.DefaultConfig(1)
	if opt.Machine != nil {
		mc = *opt.Machine
	}
	if opt.NormalizeOps > 0 {
		l, _ = normalize.Apply(l, opt.NormalizeOps)
	}
	if opt.Speculate {
		l, _ = speculate.Apply(l)
	}
	fn, err := tac.Lower(l)
	if err != nil {
		return nil, err
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		return nil, err
	}
	info, err := deps.Analyze(fn, set)
	if err != nil {
		return nil, err
	}
	return profileRun(context.Background(), fn, info, set, mc)
}

// profileRun compiles the loop for one core and simulates it collecting
// per-load latencies.
func profileRun(ctx context.Context, fn *tac.Fn, info *deps.Info, set *fiber.Set, mc sim.Config) (profile.Profile, error) {
	parts := singlePartition(set)
	compiled, err := outline.Generate(fn, info, parts, outline.Options{MachineCores: 1})
	if err != nil {
		return nil, err
	}
	cfg := mc
	cfg.Cores = 1
	cfg.CollectProfile = true
	m, err := sim.New(compiled.Programs, outline.BuildMemory(fn.Loop), cfg)
	if err != nil {
		return nil, err
	}
	res, err := m.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return profile.FromLoadStats(res.LoadProfile), nil
}

// singlePartition places every fiber in one partition (sequential code).
func singlePartition(set *fiber.Set) *codegraph.Result {
	r := &codegraph.Result{PartOf: make([]int32, len(set.Fibers))}
	var fibers []int32
	for i := range set.Fibers {
		fibers = append(fibers, int32(i))
	}
	r.Parts = [][]int32{fibers}
	r.Cost = []int64{0}
	return r
}

func buildReport(name string, cores int, set *fiber.Set, info *deps.Info, parts *codegraph.Result, compiled *outline.Compiled, spec speculate.Result) Report {
	rep := Report{
		Kernel:        name,
		Cores:         cores,
		InitialFibers: len(set.Fibers),
		DataDeps:      info.DataDepCount(),
		CommOps:       compiled.CommOps,
		Transfers:     compiled.Transfers,
		StaticQueues:  compiled.StaticQueues,
		MergeSteps:    parts.MergeSteps,
		SpeculatedIfs: spec.Transformed,
	}
	for _, fibers := range parts.Parts {
		ops := 0
		for _, f := range fibers {
			ops += set.ComputeOps(set.Fibers[f])
		}
		rep.ComputeOps = append(rep.ComputeOps, ops)
	}
	maxOps, minOps := 0, math.MaxInt
	for _, o := range rep.ComputeOps {
		if o > maxOps {
			maxOps = o
		}
		if o < minOps {
			minOps = o
		}
	}
	if minOps < 1 {
		minOps = 1
	}
	if maxOps < 1 {
		maxOps = 1
	}
	rep.LoadBalance = float64(maxOps) / float64(minOps)
	return rep
}

// CompileSequential compiles the loop for a single core without any
// communication; the baseline of every speedup the paper reports.
func CompileSequential(l *ir.Loop) (*Artifact, error) {
	opt := DefaultOptions(1)
	opt.UseProfile = false
	return Compile(l, opt)
}

// Run simulates the artifact on a fresh memory image.
func (a *Artifact) Run(cfg sim.Config) (*sim.Result, error) {
	return a.RunContext(context.Background(), cfg)
}

// RunContext simulates the artifact on a fresh memory image, aborting
// within one burst horizon with ctx.Err() when ctx is cancelled.
func (a *Artifact) RunContext(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	m, err := sim.New(a.Compiled.Programs, outline.BuildMemory(a.Loop), cfg)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}

// RunDefault simulates with the configuration captured at compile time.
func (a *Artifact) RunDefault() (*sim.Result, error) { return a.Run(a.machine) }

// MachineConfig returns the simulation configuration captured at compile
// time.
func (a *Artifact) MachineConfig() sim.Config { return a.machine }

// Verify simulates the artifact and checks its final memory image and
// live-out values bit-for-bit against the reference interpreter running the
// ORIGINAL (pre-speculation) loop.
func (a *Artifact) Verify(cfg sim.Config) (*sim.Result, error) {
	cfg.DebugEdges = true
	memImage := outline.BuildMemory(a.Loop)
	m, err := sim.New(a.Compiled.Programs, memImage, cfg)
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	ref, err := interp.Run(a.Source)
	if err != nil {
		return nil, err
	}
	for _, arr := range a.Source.Arrays {
		if arr.K == ir.F64 {
			got := memImage.SnapshotF(arr.Name)
			want := ref.ArraysF[arr.Name]
			for i := range want {
				if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
					return nil, fmt.Errorf("core: verify %s: %s[%d] = %v, want %v", a.Loop.Name, arr.Name, i, got[i], want[i])
				}
			}
		} else {
			got := memImage.SnapshotI(arr.Name)
			want := ref.ArraysI[arr.Name]
			for i := range want {
				if got[i] != want[i] {
					return nil, fmt.Errorf("core: verify %s: %s[%d] = %v, want %v", a.Loop.Name, arr.Name, i, got[i], want[i])
				}
			}
		}
	}
	for _, name := range a.Source.LiveOut {
		got, ok := res.LiveOut[name]
		if !ok {
			return nil, fmt.Errorf("core: verify %s: live-out %q missing from result", a.Loop.Name, name)
		}
		want := ref.Temps[name]
		if got.K != want.K || got.F != want.F && !(math.IsNaN(got.F) && math.IsNaN(want.F)) || got.I != want.I {
			return nil, fmt.Errorf("core: verify %s: live-out %q = %+v, want %+v", a.Loop.Name, name, got, want)
		}
	}
	return res, nil
}
