// Package core is the compiler driver: it runs the full pipeline from IR
// loop to per-core machine programs (optionally with control-flow
// speculation and profile feedback) and provides helpers to execute the
// result on the simulator and verify it against the reference interpreter.
//
// Pipeline (Sections III-A..III-H of the paper):
//
//	IR loop
//	  └─ speculate (optional)    internal/speculate
//	  └─ lower to TAC            internal/tac
//	  └─ fiber partitioning      internal/fiber
//	  └─ dependence analysis     internal/deps
//	  └─ profile feedback        internal/profile (+ a sequential sim run)
//	  └─ code-graph merging      internal/codegraph
//	  └─ outlining + comm        internal/outline
//	  └─ machine programs        internal/isa → internal/sim
package core

import (
	"context"
	"fmt"
	"math"

	"fgp/internal/codegraph"
	"fgp/internal/deps"
	"fgp/internal/fiber"
	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/normalize"
	"fgp/internal/outline"
	"fgp/internal/profile"
	"fgp/internal/sim"
	"fgp/internal/speculate"
	"fgp/internal/tac"
	"fgp/internal/verify"
)

// Options selects compiler behavior.
type Options struct {
	// Cores is the number of hardware cores to partition for (1 =
	// sequential compilation, no communication).
	Cores int
	// Weights for the merge heuristics; zero value uses the defaults.
	Weights codegraph.Weights
	// Throughput enables the DAG-constraining merge heuristic (ablation).
	Throughput bool
	// MultiPair merges several node pairs per step (compile-time variant).
	MultiPair bool
	// Speculate enables the control-flow speculation transformation.
	Speculate bool
	// NormalizeOps, when > 0, splits statements whose expression trees hold
	// more than this many compute operations (the Section III-A tree-depth
	// reduction). 0 leaves statements as authored.
	NormalizeOps int
	// Schedule enables within-region instruction scheduling (on in all
	// paper experiments).
	Schedule bool
	// UseProfile runs a sequential profiling simulation and feeds measured
	// load latencies to the partitioning heuristics.
	UseProfile bool
	// Profile supplies precomputed profile feedback (see ComputeProfile),
	// skipping the profiling simulation. The profile depends only on the
	// loop and the pre-lowering transformations (speculation, tree
	// splitting) plus the machine cost model — not on the target core count
	// — so one profile can feed compilations at every core count. Ignored
	// unless UseProfile is set.
	Profile profile.Profile
	// Machine overrides the simulation configuration used for profiling
	// runs (and recorded as default for Run). Cores is forced to Options
	// values as needed.
	Machine *sim.Config
}

// DefaultOptions returns the configuration used for the paper's main
// results: profile feedback on; speculation and the throughput heuristic
// off. The within-region scheduling pass is also off by default: on this
// substrate the hardware queues already decouple producers and consumers
// across iterations, and we measured the pass as neutral-to-negative (the
// paper makes the matching observation that partitioning-adjacent changes
// had unpredictable performance effects, Section III-B). It remains
// available via Schedule and is covered by the scheduling ablation.
func DefaultOptions(cores int) Options {
	return Options{Cores: cores, UseProfile: true}
}

// Report carries the compiler statistics that Table III of the paper
// reports per kernel.
type Report struct {
	Kernel        string
	Cores         int
	InitialFibers int
	DataDeps      int
	// LoadBalance is (max compute ops per partition) / (min compute ops
	// per partition); 1.0 is perfectly balanced.
	LoadBalance float64
	// ComputeOps holds the compute-operation count of each partition.
	ComputeOps []int
	// CommOps is the number of enqueue+dequeue operations inserted in the
	// loop body.
	CommOps int
	// Transfers is the number of distinct values communicated per
	// iteration.
	Transfers int
	// StaticQueues is the number of (sender, receiver) pairs with static
	// queue traffic, including the runtime protocol.
	StaticQueues int
	MergeSteps   int
	// SpeculatedIfs counts conditionals rewritten by the speculation pass.
	SpeculatedIfs int
}

// Artifact is a compiled kernel.
type Artifact struct {
	Loop     *ir.Loop // post-speculation loop actually compiled
	Source   *ir.Loop // original loop
	Fn       *tac.Fn
	Fibers   *fiber.Set
	Deps     *deps.Info
	Parts    *codegraph.Result
	Compiled *outline.Compiled
	Report   Report
	machine  sim.Config
}

// Compile runs the pipeline.
func Compile(l *ir.Loop, opt Options) (*Artifact, error) {
	return CompileContext(context.Background(), l, opt)
}

// CompileContext is Compile with cooperative cancellation: the profiling
// simulation (the only unbounded-cost stage of the pipeline) aborts within
// one burst horizon when ctx is cancelled, returning ctx.Err().
func CompileContext(ctx context.Context, l *ir.Loop, opt Options) (*Artifact, error) {
	if opt.Cores < 1 {
		return nil, fmt.Errorf("core: cores must be >= 1")
	}
	if (opt.Weights == codegraph.Weights{}) {
		opt.Weights = codegraph.DefaultWeights()
	}
	mc := sim.DefaultConfig(opt.Cores)
	if opt.Machine != nil {
		mc = *opt.Machine
		if mc.Cores < opt.Cores {
			mc.Cores = opt.Cores
		}
	}
	if mc.GroupSize > 0 && opt.Cores > mc.GroupSize {
		return nil, fmt.Errorf("core: %d cores requested but queues connect groups of %d (Section II: the hardware provides all-to-all queues only within a group)",
			opt.Cores, mc.GroupSize)
	}

	src := l
	if opt.NormalizeOps > 0 {
		var normRes normalize.Result
		l, normRes = normalize.Apply(l, opt.NormalizeOps)
		_ = normRes
		if err := ir.Validate(l); err != nil {
			return nil, fmt.Errorf("core: normalization produced invalid IR: %w", err)
		}
	}
	var specRes speculate.Result
	if opt.Speculate {
		l, specRes = speculate.Apply(l)
		if err := ir.Validate(l); err != nil {
			return nil, fmt.Errorf("core: speculation produced invalid IR: %w", err)
		}
	}

	fn, err := tac.Lower(l)
	if err != nil {
		return nil, err
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		return nil, err
	}
	info, err := deps.Analyze(fn, set)
	if err != nil {
		return nil, err
	}

	var prof profile.Profile
	if opt.UseProfile {
		if opt.Profile != nil {
			prof = opt.Profile
		} else {
			prof, err = profileRun(ctx, fn, info, set, mc)
			if err != nil {
				return nil, fmt.Errorf("core: profiling run failed: %w", err)
			}
		}
	}
	instrCost := profile.InstrCost(mc.Cost, prof)

	parts, err := codegraph.Merge(info, codegraph.Options{
		Targets:    opt.Cores,
		Weights:    opt.Weights,
		Throughput: opt.Throughput,
		MultiPair:  opt.MultiPair,
		InstrCost:  instrCost,
	})
	if err != nil {
		return nil, err
	}
	depthCap := 8
	if mc.QueueLen < depthCap {
		depthCap = mc.QueueLen
	}
	compiled, err := outline.Generate(fn, info, parts, outline.Options{
		MachineCores:  mc.Cores,
		Schedule:      opt.Schedule,
		InstrCost:     instrCost,
		TokenDepthCap: depthCap,
	})
	if err != nil {
		return nil, err
	}

	for _, prog := range compiled.Programs {
		if err := prog.Validate(mc.Cores); err != nil {
			return nil, fmt.Errorf("core: generated program failed validation: %w", err)
		}
	}

	if err := verify.Check(verify.Input{
		Programs: compiled.Programs,
		Cores:    mc.Cores,
		QueueLen: mc.QueueLen,
		Fn:       fn,
		Deps:     info,
		Parts:    parts,
	}); err != nil {
		return nil, fmt.Errorf("core: compiled program failed static verification: %w", err)
	}

	// Build the threaded engine's basic-block translation now, from the
	// programs static verification just accepted. The translation cache is
	// content-addressed, so every later simulation of this artifact — and of
	// any identical artifact compiled elsewhere (fgpd's singleflight cache,
	// the experiment runner) — starts warm.
	sim.PrecompileThreaded(compiled.Programs, mc.Cost)

	a := &Artifact{
		Loop: l, Source: src, Fn: fn, Fibers: set, Deps: info,
		Parts: parts, Compiled: compiled, machine: mc,
	}
	a.Report = buildReport(l.Name, opt.Cores, set, info, parts, compiled, specRes)
	return a, nil
}

// ComputeProfile runs the front of the pipeline (normalization,
// speculation, lowering, fiber partitioning, dependence analysis) and the
// sequential profiling simulation, returning the profile feedback Compile
// would measure for these options. The result is independent of
// Options.Cores (the profiling machine always has one core), so callers
// compiling one loop variant at several core counts can measure the profile
// once and pass it to each compilation via Options.Profile — bit-identical
// to letting every Compile run its own profiling simulation.
func ComputeProfile(l *ir.Loop, opt Options) (profile.Profile, error) {
	mc := sim.DefaultConfig(1)
	if opt.Machine != nil {
		mc = *opt.Machine
	}
	if opt.NormalizeOps > 0 {
		l, _ = normalize.Apply(l, opt.NormalizeOps)
	}
	if opt.Speculate {
		l, _ = speculate.Apply(l)
	}
	fn, err := tac.Lower(l)
	if err != nil {
		return nil, err
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		return nil, err
	}
	info, err := deps.Analyze(fn, set)
	if err != nil {
		return nil, err
	}
	return profileRun(context.Background(), fn, info, set, mc)
}

// profileRun compiles the loop for one core and simulates it collecting
// per-load latencies.
func profileRun(ctx context.Context, fn *tac.Fn, info *deps.Info, set *fiber.Set, mc sim.Config) (profile.Profile, error) {
	parts := singlePartition(set)
	compiled, err := outline.Generate(fn, info, parts, outline.Options{MachineCores: 1})
	if err != nil {
		return nil, err
	}
	cfg := mc
	cfg.Cores = 1
	cfg.CollectProfile = true
	m, err := sim.New(compiled.Programs, outline.BuildMemory(fn.Loop), cfg)
	if err != nil {
		return nil, err
	}
	res, err := m.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return profile.FromLoadStats(res.LoadProfile), nil
}

// singlePartition places every fiber in one partition (sequential code).
func singlePartition(set *fiber.Set) *codegraph.Result {
	r := &codegraph.Result{PartOf: make([]int32, len(set.Fibers))}
	var fibers []int32
	for i := range set.Fibers {
		fibers = append(fibers, int32(i))
	}
	r.Parts = [][]int32{fibers}
	r.Cost = []int64{0}
	return r
}

func buildReport(name string, cores int, set *fiber.Set, info *deps.Info, parts *codegraph.Result, compiled *outline.Compiled, spec speculate.Result) Report {
	rep := Report{
		Kernel:        name,
		Cores:         cores,
		InitialFibers: len(set.Fibers),
		DataDeps:      info.DataDepCount(),
		CommOps:       compiled.CommOps,
		Transfers:     compiled.Transfers,
		StaticQueues:  compiled.StaticQueues,
		MergeSteps:    parts.MergeSteps,
		SpeculatedIfs: spec.Transformed,
	}
	for _, fibers := range parts.Parts {
		ops := 0
		for _, f := range fibers {
			ops += set.ComputeOps(set.Fibers[f])
		}
		rep.ComputeOps = append(rep.ComputeOps, ops)
	}
	maxOps, minOps := 0, math.MaxInt
	for _, o := range rep.ComputeOps {
		if o > maxOps {
			maxOps = o
		}
		if o < minOps {
			minOps = o
		}
	}
	if minOps < 1 {
		minOps = 1
	}
	if maxOps < 1 {
		maxOps = 1
	}
	rep.LoadBalance = float64(maxOps) / float64(minOps)
	return rep
}

// CompileSequential compiles the loop for a single core without any
// communication; the baseline of every speedup the paper reports.
func CompileSequential(l *ir.Loop) (*Artifact, error) {
	opt := DefaultOptions(1)
	opt.UseProfile = false
	return Compile(l, opt)
}

// Run simulates the artifact on a fresh memory image.
func (a *Artifact) Run(cfg sim.Config) (*sim.Result, error) {
	return a.RunContext(context.Background(), cfg)
}

// RunContext simulates the artifact on a fresh memory image, aborting
// within one burst horizon with ctx.Err() when ctx is cancelled.
func (a *Artifact) RunContext(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	m, err := sim.New(a.Compiled.Programs, outline.BuildMemory(a.Loop), cfg)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}

// RunDefault simulates with the configuration captured at compile time.
func (a *Artifact) RunDefault() (*sim.Result, error) { return a.Run(a.machine) }

// MachineConfig returns the simulation configuration captured at compile
// time.
func (a *Artifact) MachineConfig() sim.Config { return a.machine }

// Verify simulates the artifact and checks its final memory image and
// live-out values bit-for-bit against the reference interpreter running the
// ORIGINAL (pre-speculation) loop.
func (a *Artifact) Verify(cfg sim.Config) (*sim.Result, error) {
	cfg.DebugEdges = true
	memImage := outline.BuildMemory(a.Loop)
	m, err := sim.New(a.Compiled.Programs, memImage, cfg)
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	ref, err := interp.Run(a.Source)
	if err != nil {
		return nil, err
	}
	for _, arr := range a.Source.Arrays {
		if arr.K == ir.F64 {
			got := memImage.SnapshotF(arr.Name)
			want := ref.ArraysF[arr.Name]
			for i := range want {
				if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
					return nil, fmt.Errorf("core: verify %s: %s[%d] = %v, want %v", a.Loop.Name, arr.Name, i, got[i], want[i])
				}
			}
		} else {
			got := memImage.SnapshotI(arr.Name)
			want := ref.ArraysI[arr.Name]
			for i := range want {
				if got[i] != want[i] {
					return nil, fmt.Errorf("core: verify %s: %s[%d] = %v, want %v", a.Loop.Name, arr.Name, i, got[i], want[i])
				}
			}
		}
	}
	for _, name := range a.Source.LiveOut {
		got, ok := res.LiveOut[name]
		if !ok {
			return nil, fmt.Errorf("core: verify %s: live-out %q missing from result", a.Loop.Name, name)
		}
		want := ref.Temps[name]
		if got.K != want.K || got.F != want.F && !(math.IsNaN(got.F) && math.IsNaN(want.F)) || got.I != want.I {
			return nil, fmt.Errorf("core: verify %s: live-out %q = %+v, want %+v", a.Loop.Name, name, got, want)
		}
	}
	return res, nil
}
