package core

// Property-based testing of the whole pipeline: generate random (but valid)
// loops — mixed arithmetic, conditionals, reductions, indirect stores,
// loop-carried sweeps — compile them for 1..4 cores under every option
// combination, simulate with queue-edge verification enabled, and require
// the final memory image and live-outs to be bit-identical to the
// reference interpreter. Any FIFO mismatch, deadlock, lost update or
// mis-ordered memory access fails the property.

import (
	"fmt"
	"testing"

	"fgp/internal/ir"
	"fgp/internal/sim"
)

const fuzzN = 24 // loop trip count (arrays are fuzzN+2 long)

// loopGen generates a random valid loop from a deterministic seed.
type loopGen struct {
	s     uint64
	b     *ir.Builder
	ftmps []string // defined F64 temps
	itmps []string // defined I64 temps
	fresh int
}

func (g *loopGen) rnd(n int) int {
	g.s ^= g.s >> 12
	g.s ^= g.s << 25
	g.s ^= g.s >> 27
	return int((g.s * 0x2545f4914f6cdd1d) >> 33 % uint64(n))
}

func (g *loopGen) name() string {
	g.fresh++
	return fmt.Sprintf("t%d", g.fresh)
}

// safeIndex returns an index expression guaranteed in-bounds for the
// fuzzN+2-element arrays over the 1..fuzzN+1 loop.
func (g *loopGen) safeIndex() ir.Expr {
	i := g.b.Idx()
	switch g.rnd(4) {
	case 0:
		return i
	case 1:
		return ir.AddE(i, ir.I(1))
	case 2:
		return ir.SubE(i, ir.I(1))
	default:
		return ir.LDI("idx", i) // values in [0, fuzzN)
	}
}

func (g *loopGen) fexpr(depth int) ir.Expr {
	if depth <= 0 {
		switch g.rnd(5) {
		case 0:
			return ir.F(float64(g.rnd(17)) * 0.25)
		case 1:
			if len(g.ftmps) > 0 {
				return g.b.T(g.ftmps[g.rnd(len(g.ftmps))])
			}
			return ir.F(1.5)
		case 2:
			return ir.LDF("a", g.safeIndex())
		case 3:
			return ir.LDF("c", g.safeIndex())
		default:
			return ir.IToF(g.iexpr(0))
		}
	}
	switch g.rnd(8) {
	case 0:
		return ir.AddE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 1:
		return ir.SubE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 2:
		return ir.MulE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 3:
		return ir.MinE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 4:
		return ir.MaxE(g.fexpr(depth-1), g.fexpr(depth-1))
	case 5:
		return ir.SqrtE(ir.AbsE(g.fexpr(depth - 1)))
	case 6:
		// Division with a denominator bounded away from zero.
		return ir.DivE(g.fexpr(depth-1), ir.AddE(ir.AbsE(g.fexpr(depth-1)), ir.F(0.5)))
	default:
		return ir.NegE(g.fexpr(depth - 1))
	}
}

func (g *loopGen) iexpr(depth int) ir.Expr {
	if depth <= 0 {
		switch g.rnd(4) {
		case 0:
			return ir.I(int64(g.rnd(7)))
		case 1:
			if len(g.itmps) > 0 {
				return g.b.T(g.itmps[g.rnd(len(g.itmps))])
			}
			return g.b.Idx()
		case 2:
			return g.b.Idx()
		default:
			return ir.LDI("idx", g.b.Idx())
		}
	}
	switch g.rnd(5) {
	case 0:
		return ir.AddE(g.iexpr(depth-1), g.iexpr(depth-1))
	case 1:
		return ir.SubE(g.iexpr(depth-1), g.iexpr(depth-1))
	case 2:
		return ir.AndE(g.iexpr(depth-1), ir.I(15))
	case 3:
		return ir.LtE(g.fexpr(depth-1), g.fexpr(depth-1))
	default:
		return ir.MulE(g.iexpr(depth-1), ir.I(int64(1+g.rnd(3))))
	}
}

func (g *loopGen) cond() ir.Expr {
	switch g.rnd(3) {
	case 0:
		return ir.GtE(g.fexpr(1), g.fexpr(1))
	case 1:
		return ir.LeE(g.iexpr(1), ir.I(int64(g.rnd(9))))
	default:
		return ir.NeE(ir.AndE(g.b.Idx(), ir.I(int64(1+g.rnd(3)))), ir.I(0))
	}
}

func (g *loopGen) statement(allowIf bool) {
	b := g.b
	switch g.rnd(7) {
	case 0, 1: // define a new float temp
		n := g.name()
		b.Def(n, g.fexpr(1+g.rnd(3)))
		g.ftmps = append(g.ftmps, n)
	case 2: // define a new int temp
		n := g.name()
		b.Def(n, g.iexpr(1+g.rnd(2)))
		g.itmps = append(g.itmps, n)
	case 3: // direct store
		b.StoreF("o", b.Idx(), g.fexpr(1+g.rnd(2)))
	case 4: // indirect read-modify-write (forces memory synchronization)
		slot := g.name()
		b.Def(slot, ir.LDI("idx", b.Idx()))
		cur := g.name()
		b.Def(cur, ir.LDF("t1y", b.T(slot)))
		b.StoreF("t1y", b.T(slot), ir.AddE(b.T(cur), g.fexpr(1)))
	case 5: // accumulator update
		b.Def("acc", ir.AddE(b.T("acc"), g.fexpr(1)))
	default:
		if allowIf {
			c := g.name()
			b.Def(c, g.cond())
			g.itmps = append(g.itmps, c)
			// Both branches define the same fresh temp so the merged value
			// is well defined afterwards.
			v := g.name()
			nThen := 1 + g.rnd(2)
			nElse := 1 + g.rnd(2)
			b.If(b.T(c), func() {
				for k := 0; k < nThen-1; k++ {
					g.statementInBranch()
				}
				b.Def(v, g.fexpr(1+g.rnd(2)))
			}, func() {
				for k := 0; k < nElse-1; k++ {
					g.statementInBranch()
				}
				b.Def(v, g.fexpr(1))
			})
			g.ftmps = append(g.ftmps, v)
		} else {
			b.StoreF("o", ir.AddE(b.Idx(), ir.I(1)), g.fexpr(1))
		}
	}
}

// statementInBranch emits a side-effect-light statement legal inside a
// conditional (stores allowed; new temps would not dominate later uses, so
// only stores and accumulator updates appear).
func (g *loopGen) statementInBranch() {
	b := g.b
	switch g.rnd(3) {
	case 0:
		b.StoreF("o", b.Idx(), g.fexpr(1))
	case 1:
		b.Def("acc", ir.AddE(b.T("acc"), g.fexpr(1)))
	default:
		b.StoreF("o", ir.AddE(b.Idx(), ir.I(1)), g.fexpr(1))
	}
}

// generate builds a random loop; seed determines everything.
func generate(seed uint64) *ir.Loop {
	g := &loopGen{s: seed | 1}
	b := ir.NewBuilder(fmt.Sprintf("fuzz-%x", seed), "i", 1, fuzzN+1, 1)
	g.b = b

	n := fuzzN + 2
	fa := make([]float64, n)
	fc := make([]float64, n)
	ty := make([]float64, n)
	idx := make([]int64, n)
	for i := 0; i < n; i++ {
		fa[i] = float64((i*7+3)%11) * 0.375
		fc[i] = float64((i*5+1)%13) - 6
		ty[i] = float64(i) * 0.125
		idx[i] = int64((i*13 + int(seed%17)) % fuzzN)
	}
	b.ArrayF("a", fa)
	b.ArrayF("c", fc)
	b.ArrayF("t1y", ty)
	b.ArrayI("idx", idx)
	b.ArrayF("o", make([]float64, n))
	b.ScalarF("acc", 1.25)
	b.ScalarF("k", 0.75)
	g.ftmps = append(g.ftmps, "k")
	b.LiveOut("acc")

	// Sometimes include a loop-carried sweep through memory.
	if g.rnd(3) == 0 {
		prev := g.name()
		b.Def(prev, ir.LDF("o", ir.SubE(b.Idx(), ir.I(1))))
		g.ftmps = append(g.ftmps, prev)
	}
	nStmts := 3 + g.rnd(7)
	for s := 0; s < nStmts; s++ {
		g.statement(true)
	}
	// Always update the accumulator (it is declared live-out) and end with
	// a store so the loop has observable output.
	b.Def("acc", ir.AddE(b.T("acc"), ir.MulE(g.fexpr(1), ir.F(0.125))))
	b.StoreF("o", b.Idx(), ir.AddE(g.fexpr(1), b.T("acc")))
	return b.MustBuild()
}

// TestFuzzCompileAndVerify is the main property: every generated loop, at
// every core count and option combination, produces bit-identical results
// to the interpreter.
func TestFuzzCompileAndVerify(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 12
	}
	for it := 0; it < iterations; it++ {
		seed := uint64(it)*0x9e3779b97f4a7c15 + 12345
		l := generate(seed)
		if err := ir.Validate(l); err != nil {
			t.Fatalf("seed %x: generator produced invalid loop: %v\n%s", seed, err, ir.Print(l))
		}
		for cores := 1; cores <= 4; cores++ {
			opt := DefaultOptions(cores)
			opt.Speculate = it%2 == 0
			opt.Throughput = it%3 == 0
			opt.MultiPair = it%5 == 0
			opt.Schedule = it%4 == 0
			if it%6 == 0 {
				opt.NormalizeOps = 3
			}
			a, err := Compile(l, opt)
			if err != nil {
				t.Fatalf("seed %x cores %d (%+v): compile: %v\n%s", seed, cores, opt, err, ir.Print(l))
			}
			if _, err := a.Verify(a.MachineConfig()); err != nil {
				t.Fatalf("seed %x cores %d (spec=%v thr=%v mp=%v sched=%v): %v\n%s\n%s",
					seed, cores, opt.Speculate, opt.Throughput, opt.MultiPair, opt.Schedule,
					err, ir.Print(l), a.Fn.Dump())
			}
		}
	}
}

// TestFuzzLatencyAndQueueConfigs verifies a subset of seeds across machine
// configurations: short queues, long latency, no caches.
func TestFuzzLatencyAndQueueConfigs(t *testing.T) {
	for it := 0; it < 12; it++ {
		seed := uint64(it)*0xdeadbeef97f4a7c + 99
		l := generate(seed)
		for _, mod := range []struct {
			name string
			qlen int
			lat  int64
		}{
			{"tiny queues", 2, 5},
			{"long latency", 20, 100},
			{"both", 3, 50},
		} {
			opt := DefaultOptions(3)
			mc := sim.DefaultConfig(3)
			mc.QueueLen = mod.qlen
			mc.TransferLatency = mod.lat
			opt.Machine = &mc
			a, err := Compile(l, opt)
			if err != nil {
				t.Fatalf("seed %x %s: compile: %v", seed, mod.name, err)
			}
			if _, err := a.Verify(a.MachineConfig()); err != nil {
				t.Fatalf("seed %x %s: %v\n%s", seed, mod.name, err, ir.Print(l))
			}
		}
	}
}
