// Degenerate machine points: the machine-space sweep (internal/machspace)
// dials every hardware lever through literal zero and single-unit corners.
// Each such point must either simulate correctly — verified bit-for-bit
// against the reference interpreter and bit-identical across all three
// engines — or be rejected with a structured *sim.ConfigError before any
// compile work. Never a panic, never a hang.

package core

import (
	"errors"
	"testing"

	"fgp/internal/sim"
)

func TestDegeneratePointsSimulateCorrectly(t *testing.T) {
	l := fig1Loop(t, 256)
	mods := []struct {
		name string
		mod  func(*sim.Config)
	}{
		{"one-slot queue", func(c *sim.Config) { c.QueueLen = 1 }},
		{"zero transfer latency", func(c *sim.Config) { c.TransferLatency = 0 }},
		{"free enqueue/dequeue", func(c *sim.Config) { c.Cost.Enq = 0; c.Cost.Deq = 0 }},
		{"all comm free", func(c *sim.Config) {
			c.QueueLen = 1
			c.TransferLatency = 0
			c.Cost.Enq = 0
			c.Cost.Deq = 0
		}},
		{"disabled L1", func(c *sim.Config) { c.Cache.Lines = 0 }},
		{"one-line L1", func(c *sim.Config) { c.Cache.Lines = 1 }},
		{"two-line thrash L1", func(c *sim.Config) { c.Cache.Lines = 2 }},
	}
	for _, m := range mods {
		// The lever is part of the compile-time machine, exactly as the
		// sweep requests it: token priming is capped to the queue capacity
		// (depthCap), so a one-slot queue is compiled for, not tripped over.
		opt := DefaultOptions(3)
		mc := sim.DefaultConfig(3)
		m.mod(&mc)
		opt.Machine = &mc
		a, err := Compile(l, opt)
		if err != nil {
			t.Fatalf("%s: compile: %v", m.name, err)
		}
		// Correctness: final memory bit-identical to the reference
		// interpreter.
		if _, err := a.Verify(a.MachineConfig()); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		// Engine equivalence: the burst, reference, and threaded engines
		// must agree on the cycle count at this point.
		var cycles []int64
		for _, eng := range sim.Engines() {
			cfg := a.MachineConfig()
			cfg.Engine = eng
			res, err := a.Run(cfg)
			if err != nil {
				t.Fatalf("%s: engine %s: %v", m.name, eng, err)
			}
			cycles = append(cycles, res.Cycles)
		}
		for i := 1; i < len(cycles); i++ {
			if cycles[i] != cycles[0] {
				t.Errorf("%s: engines disagree: %v (order %v)", m.name, cycles, sim.Engines())
			}
		}
	}
}

func TestUnusableMachineRejectedBeforeCompile(t *testing.T) {
	l := fig1Loop(t, 64)
	cases := []struct {
		field string
		mod   func(*sim.Config)
	}{
		{"QueueLen", func(c *sim.Config) { c.QueueLen = 0 }},
		{"TransferLatency", func(c *sim.Config) { c.TransferLatency = -1 }},
		{"Cost.Deq", func(c *sim.Config) { c.Cost.Deq = -5 }},
		{"Cache.LineSize", func(c *sim.Config) { c.Cache.Lines = 8; c.Cache.LineSize = 48 }},
		{"Engine", func(c *sim.Config) { c.Engine = "warp-drive" }},
	}
	for _, tc := range cases {
		opt := DefaultOptions(2)
		mc := sim.DefaultConfig(2)
		tc.mod(&mc)
		opt.Machine = &mc
		_, err := Compile(l, opt)
		var ce *sim.ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: want *sim.ConfigError from compile, got %v", tc.field, err)
		}
		if ce.Field != tc.field {
			t.Errorf("rejected field %q, want %q", ce.Field, tc.field)
		}
		if !errors.Is(err, sim.ErrBadConfig) {
			t.Errorf("%s: error does not wrap ErrBadConfig", tc.field)
		}
	}
}

// TestCapacityMismatchIsDiagnosedNotHung pins the one remaining corner: an
// artifact compiled for a deep queue (priming depth up to 8) simulated on
// a machine with a shallower queue than its primed depth. The simulator
// must return — a result or a structured error — never panic or hang.
func TestCapacityMismatchIsDiagnosedNotHung(t *testing.T) {
	l := fig1Loop(t, 256)
	a, err := Compile(l, DefaultOptions(3)) // default 20-slot queues
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.MachineConfig()
	cfg.QueueLen = 1
	res, err := a.Run(cfg)
	if err != nil {
		t.Logf("capacity mismatch diagnosed: %v", err)
		return
	}
	// Legal too: priming blocks until the receiver drains, and the
	// schedule happens to make progress. Then the run must still be
	// correct.
	if res.Cycles <= 0 {
		t.Fatalf("mismatched run returned %d cycles", res.Cycles)
	}
	if _, err := a.Verify(cfg); err != nil {
		t.Fatalf("mismatched run completed but is wrong: %v", err)
	}
}
