package core

import (
	"strings"
	"testing"

	"fgp/internal/sim"
)

// TestCoreGrouping covers the Section II scaling note: hardware queues are
// all-to-all only within a group of cores. Partitioning beyond the group
// size must be rejected at compile time; partitioning within it must work.
func TestCoreGrouping(t *testing.T) {
	l := generate(42)

	mc := sim.DefaultConfig(4)
	mc.GroupSize = 2
	opt := DefaultOptions(4)
	opt.Machine = &mc
	if _, err := Compile(l, opt); err == nil || !strings.Contains(err.Error(), "group") {
		t.Errorf("4-way partitioning on group-of-2 hardware must fail at compile time, got %v", err)
	}

	opt2 := DefaultOptions(2)
	mc2 := sim.DefaultConfig(4)
	mc2.GroupSize = 2
	opt2.Machine = &mc2
	a, err := Compile(l, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(a.MachineConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestNormalizeOption checks the Section III-A splitting pass end to end.
func TestNormalizeOption(t *testing.T) {
	l := generate(77)
	opt := DefaultOptions(3)
	opt.NormalizeOps = 2
	a, err := Compile(l, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(a.MachineConfig()); err != nil {
		t.Fatal(err)
	}
	base, err := Compile(l, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.InitialFibers < base.Report.InitialFibers {
		t.Errorf("normalization should not reduce fibers: %d -> %d",
			base.Report.InitialFibers, a.Report.InitialFibers)
	}
}
