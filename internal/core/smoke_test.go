package core

import (
	"testing"

	"fgp/internal/ir"
)

// fig1Loop reproduces the computation of Fig 1 of the paper inside a loop:
//
//	x = a*b + c*d
//	y = c*d + e
//	z = x * y
//
// over arrays, with enough iterations to amortize startup.
func fig1Loop(t testing.TB, n int64) *ir.Loop {
	t.Helper()
	mk := func(f func(i int) float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = f(i)
		}
		return s
	}
	b := ir.NewBuilder("fig1", "i", 0, n, 1)
	b.ArrayF("a", mk(func(i int) float64 { return 1.0 + float64(i%7)*0.25 }))
	b.ArrayF("b", mk(func(i int) float64 { return 2.0 - float64(i%5)*0.125 }))
	b.ArrayF("c", mk(func(i int) float64 { return 0.5 + float64(i%3) }))
	b.ArrayF("d", mk(func(i int) float64 { return 1.5 + float64(i%11)*0.0625 }))
	b.ArrayF("e", mk(func(i int) float64 { return float64(i%13) * 0.5 }))
	b.ArrayF("x", make([]float64, n))
	b.ArrayF("y", make([]float64, n))
	b.ArrayF("z", make([]float64, n))
	i := b.Idx()
	x := b.Def("tx", ir.AddE(ir.MulE(ir.LDF("a", i), ir.LDF("b", i)), ir.MulE(ir.LDF("c", i), ir.LDF("d", i))))
	y := b.Def("ty", ir.AddE(ir.MulE(ir.LDF("c", i), ir.LDF("d", i)), ir.LDF("e", i)))
	b.StoreF("x", i, x)
	b.StoreF("y", i, y)
	b.StoreF("z", i, ir.MulE(x, y))
	return b.MustBuild()
}

func TestSmokeSequential(t *testing.T) {
	l := fig1Loop(t, 256)
	a, err := CompileSequential(l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Verify(a.MachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("sequential run took %d cycles", res.Cycles)
	}
	t.Logf("sequential: %d cycles, %d instrs", res.Cycles, res.PerCoreInstrs[0])
}

func TestSmokeParallel(t *testing.T) {
	l := fig1Loop(t, 256)
	for _, cores := range []int{2, 3, 4} {
		a, err := Compile(l, DefaultOptions(cores))
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		res, err := a.Verify(a.MachineConfig())
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		t.Logf("cores=%d: %d cycles, fibers=%d deps=%d comm=%d balance=%.2f",
			cores, res.Cycles, a.Report.InitialFibers, a.Report.DataDeps,
			a.Report.CommOps, a.Report.LoadBalance)
	}
}

func TestSmokeSpeedup(t *testing.T) {
	l := fig1Loop(t, 2048)
	seq, err := CompileSequential(l)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := seq.RunDefault()
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compile(l, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	pres, err := par.RunDefault()
	if err != nil {
		t.Fatal(err)
	}
	sp := float64(sres.Cycles) / float64(pres.Cycles)
	t.Logf("fig1 speedup on 2 cores: %.3f (seq %d, par %d)", sp, sres.Cycles, pres.Cycles)
	if sp < 0.5 {
		t.Fatalf("parallel version catastrophically slow: speedup %.3f", sp)
	}
}
