// Package kernels defines the 18 hot-loop kernels used in the paper's
// evaluation (Table I): five loops from lammps, five from irs, six from
// umt2k and two from sphot. The original Sequoia sources and Blue Gene
// profiles are not redistributable, so each kernel here is a synthetic
// equivalent authored to match the structural signature the paper reports
// for it (Table III): operation mix, approximate fiber count, dependence
// density, conditional structure, and reduction patterns. Input data is
// deterministic (seeded xorshift), so every experiment is reproducible
// bit-for-bit.
package kernels

import (
	"fmt"
	"sort"

	"fgp/internal/ir"
)

// Kernel is one evaluation loop plus the paper's published numbers for it.
type Kernel struct {
	Name string
	App  string
	// PctTime is the fraction of whole-application time the loop accounts
	// for (Table I, percent).
	PctTime float64
	// Paper columns from Table III (4-core configuration).
	PaperFibers  int
	PaperDeps    int
	PaperBalance float64
	PaperCommOps int
	PaperQueues  int
	PaperSpeedup float64
	// HasConditionals mirrors the paper's Section IV characterization.
	HasConditionals bool
	// SpeculationHelps marks the kernels whose conditionals the
	// control-flow speculation pass targets (Fig 14 improves 8 kernels).
	SpeculationHelps bool

	build func() *ir.Loop
}

// Build constructs a fresh loop (new data arrays each call).
func (k *Kernel) Build() *ir.Loop { return k.build() }

// Wrap builds an unregistered Kernel around a caller-supplied loop
// builder, so engines written against the registry type — the experiment
// runner, the machine-space sweeper — can run loops that arrive from
// outside it (e.g. IR posted to fgpd). The kernel carries no paper
// columns; only Name and Build are meaningful.
func Wrap(name string, build func() *ir.Loop) *Kernel {
	return &Kernel{Name: name, build: build}
}

var registry []*Kernel

func register(k *Kernel) {
	registry = append(registry, k)
}

// All returns the 18 kernels in Table I order.
func All() []*Kernel {
	out := append([]*Kernel(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return tableOrder(out[i].Name) < tableOrder(out[j].Name) })
	return out
}

// ByName finds a kernel.
func ByName(name string) (*Kernel, error) {
	for _, k := range registry {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", name)
}

var tableNames = []string{
	"lammps-1", "lammps-2", "lammps-3", "lammps-4", "lammps-5",
	"irs-1", "irs-2", "irs-3", "irs-4", "irs-5",
	"umt2k-1", "umt2k-2", "umt2k-3", "umt2k-4", "umt2k-5", "umt2k-6",
	"sphot-1", "sphot-2",
}

func tableOrder(name string) int {
	for i, n := range tableNames {
		if n == name {
			return i
		}
	}
	return len(tableNames)
}

// Apps returns the application names in Table II order.
func Apps() []string { return []string{"lammps", "irs", "umt2k", "sphot"} }

// ByApp returns the kernels of one application, in table order.
func ByApp(app string) []*Kernel {
	var out []*Kernel
	for _, k := range All() {
		if k.App == app {
			out = append(out, k)
		}
	}
	return out
}

// rng is a deterministic xorshift64* generator for kernel input data.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// f64 returns a float in [lo, hi).
func (r *rng) f64(lo, hi float64) float64 {
	u := r.next() >> 11 // 53 bits
	return lo + (hi-lo)*(float64(u)/float64(1<<53))
}

// i64 returns an int in [0, n).
func (r *rng) i64(n int64) int64 {
	return int64(r.next() % uint64(n))
}

// floats fills a slice with values in [lo, hi).
func (r *rng) floats(n int, lo, hi float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.f64(lo, hi)
	}
	return s
}

// indices fills a slice with indices in [0, max).
func (r *rng) indices(n int, max int64) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = r.i64(max)
	}
	return s
}
