// Package tier2 ships the curated fuzzer-discovered kernels as committed
// fgp source files — a second benchmark tier next to the 18 paper kernels.
// Each .fgp file is the frontend's normal form of a pinned generator seed
// (the seed list lives in tier2_test.go, and the -update-guarded
// regeneration test keeps the files honest), so the corpus is reproducible
// bit-for-bit and the source front door sits on the critical path of every
// sweep that uses it: a tier-2 kernel cannot be built except by parsing
// its source.
package tier2

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"fgp/internal/frontend"
	"fgp/internal/ir"
)

//go:embed *.fgp
var files embed.FS

// Kernel is one committed tier-2 kernel.
type Kernel struct {
	Name   string // kernel name, also the file basename
	Source []byte // fgp source text, frontend normal form
}

// Build parses the kernel's source into a validated loop.
func (k Kernel) Build() (*ir.Loop, error) {
	l, err := frontend.Parse(k.Source)
	if err != nil {
		return nil, fmt.Errorf("tier2: %s: %w", k.Name, err)
	}
	return l, nil
}

// All returns the committed kernels sorted by name.
func All() ([]Kernel, error) {
	ents, err := files.ReadDir(".")
	if err != nil {
		return nil, fmt.Errorf("tier2: %w", err)
	}
	out := make([]Kernel, 0, len(ents))
	for _, e := range ents {
		data, err := files.ReadFile(e.Name())
		if err != nil {
			return nil, fmt.Errorf("tier2: %w", err)
		}
		out = append(out, Kernel{Name: strings.TrimSuffix(e.Name(), ".fgp"), Source: data})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ByName returns one committed kernel.
func ByName(name string) (Kernel, error) {
	ks, err := All()
	if err != nil {
		return Kernel{}, err
	}
	for _, k := range ks {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("tier2: unknown kernel %q", name)
}
