package tier2

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"testing"

	"fgp/internal/frontend"
	"fgp/internal/fuzz"
)

var update = flag.Bool("update", false, "regenerate the committed .fgp files from the pinned seeds")

// seeds pins the generator seeds behind the committed corpus. Chosen by
// sweeping seeds 0..59 for shape diversity: 0 and 28 are straight-line,
// 5 and 49 carry two if/else chains, 45 and 55 carry three.
var seeds = []uint64{0, 5, 28, 45, 49, 55}

func generated() map[string][]byte {
	out := make(map[string][]byte, len(seeds))
	for i, seed := range seeds {
		l := fuzz.Generate(seed, fuzz.GenConfig{})
		l.Name = fmt.Sprintf("tier2-%02d", i)
		out[l.Name] = []byte(frontend.Format(l))
	}
	return out
}

// TestCorpusMatchesSeeds regenerates each kernel from its pinned seed and
// byte-compares against the committed file, so the corpus can't drift from
// its provenance. Run with -update to rewrite the files after a deliberate
// generator or formatter change.
func TestCorpusMatchesSeeds(t *testing.T) {
	want := generated()
	if *update {
		for name, src := range want {
			if err := os.WriteFile(name+".fgp", src, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	ks, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != len(want) {
		t.Fatalf("committed %d kernels, seeds pin %d", len(ks), len(want))
	}
	for _, k := range ks {
		src, ok := want[k.Name]
		if !ok {
			t.Errorf("%s: committed but not pinned by any seed", k.Name)
			continue
		}
		if !bytes.Equal(k.Source, src) {
			t.Errorf("%s: committed source diverges from seed regeneration (rerun with -update after a deliberate change)", k.Name)
		}
	}
}

// TestSweep builds every committed kernel through the frontend and runs the
// full oracle (compile, verify, simulate, compare against the reference
// interpreter) — tier 2 is only useful if each member survives the whole
// pipeline.
func TestSweep(t *testing.T) {
	ks, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) == 0 {
		t.Fatal("no committed tier-2 kernels")
	}
	for _, k := range ks {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			l, err := k.Build()
			if err != nil {
				t.Fatal(err)
			}
			if err := fuzz.Check(l, fuzz.OracleConfig{}); err != nil {
				t.Fatalf("oracle mismatch: %v", err)
			}
		})
	}
}

// TestByName covers the lookup helper both ways.
func TestByName(t *testing.T) {
	if _, err := ByName("tier2-00"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
}
