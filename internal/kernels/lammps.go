package kernels

import "fgp/internal/ir"

// The five lammps kernels mirror the EAM pair-potential compute loops and
// the half-bin neighbor-list construction loops of Sequoia lammps
// (pair_eam.cpp / neigh_half_bin.cpp): cubic-spline table interpolation,
// pairwise distance computation, cutoff conditionals, and indirect
// accumulation into per-atom arrays.

const lammpsN = 1000
const splineN = 64 // spline table segments

// splineEval emits a cubic spline evaluation ((c3*fr+c2)*fr+c1)*fr+c0 from
// a coefficient table laid out as 4 consecutive coefficients per segment.
func splineEval(b *ir.Builder, dst, tbl string, base, fr ir.Expr) ir.Expr {
	c3 := b.Def(dst+"_c3", ir.LDF(tbl, base))
	c2 := b.Def(dst+"_c2", ir.LDF(tbl, ir.AddE(base, ir.I(1))))
	c1 := b.Def(dst+"_c1", ir.LDF(tbl, ir.AddE(base, ir.I(2))))
	c0 := b.Def(dst+"_c0", ir.LDF(tbl, ir.AddE(base, ir.I(3))))
	return b.Def(dst, ir.AddE(ir.MulE(ir.AddE(ir.MulE(ir.AddE(ir.MulE(c3, fr), c2), fr), c1), fr), c0))
}

// splineIndex emits the table lookup prologue: p = v*scale + 1 clamped to
// the table, returning (base index expr, fractional part expr).
func splineIndex(b *ir.Builder, tag string, v, scale ir.Expr) (base, fr ir.Expr) {
	p := b.Def(tag+"_p", ir.AddE(ir.MulE(v, scale), ir.F(1)))
	mi := b.Def(tag+"_mi", ir.MinE(ir.FToI(p), ir.I(splineN-2)))
	fr = b.Def(tag+"_fr", ir.SubE(p, ir.IToF(b.T(tag+"_mi"))))
	base = b.Def(tag+"_b", ir.MulE(mi, ir.I(4)))
	return base, fr
}

// pairDistance emits j = nbr[i]; dx,dy,dz = pos_i - pos_j; r2 with a small
// core-softening constant, so self-pairs in the synthetic neighbor list
// never produce a singular 1/r.
func pairDistance(b *ir.Builder) (j, r2 ir.Expr) {
	i := b.Idx()
	j = b.Def("j", ir.LDI("nbr", i))
	dx := b.Def("dx", ir.SubE(ir.LDF("x", i), ir.LDF("x", j)))
	dy := b.Def("dy", ir.SubE(ir.LDF("y", i), ir.LDF("y", j)))
	dz := b.Def("dz", ir.SubE(ir.LDF("z", i), ir.LDF("z", j)))
	r2 = b.Def("r2", ir.AddE(ir.AddE(ir.MulE(dx, dx), ir.MulE(dy, dy)), ir.AddE(ir.MulE(dz, dz), ir.F(0.0625))))
	return j, r2
}

func lammpsArrays(b *ir.Builder, r *rng, n int) {
	b.ArrayF("x", r.floats(n, 0, 8))
	b.ArrayF("y", r.floats(n, 0, 8))
	b.ArrayF("z", r.floats(n, 0, 8))
	b.ArrayI("nbr", r.indices(n, int64(n)))
}

func init() {
	register(&Kernel{
		Name: "lammps-1", App: "lammps", PctTime: 30.0,
		PaperFibers: 63, PaperDeps: 37, PaperBalance: 1.49,
		PaperCommOps: 9, PaperQueues: 3, PaperSpeedup: 1.94,
		HasConditionals: true, SpeculationHelps: true,
		build: lammps1,
	})
	register(&Kernel{
		Name: "lammps-2", App: "lammps", PctTime: 0.3,
		PaperFibers: 60, PaperDeps: 6, PaperBalance: 1.89,
		PaperCommOps: 6, PaperQueues: 3, PaperSpeedup: 2.07,
		HasConditionals: false,
		build:           lammps2,
	})
	register(&Kernel{
		Name: "lammps-3", App: "lammps", PctTime: 49.5,
		PaperFibers: 123, PaperDeps: 96, PaperBalance: 1.49,
		PaperCommOps: 23, PaperQueues: 6, PaperSpeedup: 1.67,
		HasConditionals: true, SpeculationHelps: true,
		build: lammps3,
	})
	register(&Kernel{
		Name: "lammps-4", App: "lammps", PctTime: 3.6,
		PaperFibers: 105, PaperDeps: 67, PaperBalance: 1.68,
		PaperCommOps: 34, PaperQueues: 6, PaperSpeedup: 1.56,
		HasConditionals: true, SpeculationHelps: true,
		build: lammps4,
	})
	register(&Kernel{
		Name: "lammps-5", App: "lammps", PctTime: 3.6,
		PaperFibers: 87, PaperDeps: 14, PaperBalance: 1.45,
		PaperCommOps: 18, PaperQueues: 6, PaperSpeedup: 2.80,
		HasConditionals: false,
		build:           lammps5,
	})
}

// lammps1 is the EAM density accumulation (PairEAM::compute, line 182):
// pairwise distance, two spline interpolations of the density tables, a
// cutoff conditional selecting the contribution, and accumulation into both
// atoms' densities (the j side through an indirect read-modify-write).
func lammps1() *ir.Loop {
	r := newRNG(0x1a55e51)
	b := ir.NewBuilder("lammps-1", "i", 0, lammpsN, 1)
	lammpsArrays(b, r, lammpsN)
	b.ArrayF("rhor", r.floats(splineN*4, 0.01, 0.5))
	b.ArrayF("rhor2", r.floats(splineN*4, 0.01, 0.4))
	b.ArrayF("rho", r.floats(lammpsN, 0, 0.1))
	b.ArrayF("rhoJ", r.floats(lammpsN, 0, 0.1))
	rdr := b.ScalarF("rdr", float64(splineN-3)/192.0)
	cutsq := b.ScalarF("cutsq", 120.0)
	i := b.Idx()

	j, r2 := pairDistance(b)
	base, fr := splineIndex(b, "s", r2, rdr)
	val := splineEval(b, "val", "rhor", base, fr)
	val2 := splineEval(b, "val2", "rhor2", base, fr)
	cnd := b.Def("cnd", ir.LtE(r2, cutsq))
	b.If(cnd, func() {
		b.Def("w", val)
		b.Def("w2", val2)
	}, func() {
		b.Def("w", ir.F(0))
		b.Def("w2", ir.F(0))
	})
	b.StoreF("rho", i, ir.AddE(ir.LDF("rho", i), b.T("w")))
	rj := b.Def("rj", ir.LDF("rhoJ", j))
	b.StoreF("rhoJ", j, ir.AddE(rj, b.T("w2")))
	return b.MustBuild()
}

// lammps2 is the EAM embedding-energy loop (PairEAM::compute, line 214):
// one spline index computation feeding several independent polynomial
// evaluations over different tables — wide instruction-level parallelism
// with very few cross-chain dependences.
func lammps2() *ir.Loop {
	r := newRNG(0x1a55e52)
	b := ir.NewBuilder("lammps-2", "i", 0, lammpsN, 1)
	b.ArrayF("rho", r.floats(lammpsN, 0, 150))
	b.ArrayF("frho", r.floats(splineN*4, -0.4, 0.4))
	b.ArrayF("frhoP", r.floats(splineN*4, -0.3, 0.3))
	b.ArrayF("zr", r.floats(splineN*4, 0.0, 0.6))
	b.ArrayF("zrP", r.floats(splineN*4, 0.0, 0.5))
	b.ArrayF("fp", make([]float64, lammpsN))
	b.ArrayF("emb", make([]float64, lammpsN))
	b.ArrayF("eng", make([]float64, lammpsN))
	b.ArrayF("aux", make([]float64, lammpsN))
	rdrho := b.ScalarF("rdrho", float64(splineN-3)/150.0)
	scale := b.ScalarF("scale", 0.85)
	i := b.Idx()

	rho := b.Def("rhoi", ir.LDF("rho", i))
	base, fr := splineIndex(b, "s", rho, rdrho)
	fpv := splineEval(b, "fpv", "frhoP", base, fr)
	embv := splineEval(b, "embv", "frho", base, fr)
	zv := splineEval(b, "zv", "zr", base, fr)
	zpv := splineEval(b, "zpv", "zrP", base, fr)
	b.StoreF("fp", i, fpv)
	b.StoreF("emb", i, ir.MulE(embv, scale))
	b.StoreF("eng", i, ir.AddE(ir.MulE(zv, zv), ir.MulE(embv, scale)))
	b.StoreF("aux", i, ir.SubE(ir.MulE(zpv, zv), ir.MulE(fpv, fpv)))
	return b.MustBuild()
}

// lammps3 is the EAM force loop (PairEAM::compute, line 247): the densest
// kernel — four spline evaluations, the pair-potential force formula with
// a chain of divisions, a cutoff-smoothing conditional, and force
// accumulation into both atoms (i direct, j indirect).
func lammps3() *ir.Loop {
	r := newRNG(0x1a55e53)
	b := ir.NewBuilder("lammps-3", "i", 0, lammpsN, 1)
	lammpsArrays(b, r, lammpsN)
	b.ArrayF("rhorP", r.floats(splineN*4, 0.005, 0.2))
	b.ArrayF("rhorP2", r.floats(splineN*4, 0.005, 0.25))
	b.ArrayF("z2r", r.floats(splineN*4, 0.05, 0.8))
	b.ArrayF("z2rP", r.floats(splineN*4, 0.02, 0.4))
	b.ArrayF("fpA", r.floats(lammpsN, -0.5, 0.5))
	b.ArrayF("fpB", r.floats(lammpsN, -0.5, 0.5))
	b.ArrayF("fx", make([]float64, lammpsN))
	b.ArrayF("fy", make([]float64, lammpsN))
	b.ArrayF("fz", make([]float64, lammpsN))
	b.ArrayF("gx", r.floats(lammpsN, -0.1, 0.1))
	rdr := b.ScalarF("rdr", float64(splineN-3)/192.0)
	rin := b.ScalarF("rin", 6.0)
	swA := b.ScalarF("swA", 0.75)
	swB := b.ScalarF("swB", 0.25)
	i := b.Idx()

	j, r2 := pairDistance(b)
	rr := b.Def("rr", ir.SqrtE(r2))
	recip := b.Def("recip", ir.DivE(ir.F(1), rr))
	base, fr := splineIndex(b, "s", r2, rdr)
	rhoip := splineEval(b, "rhoip", "rhorP", base, fr)
	rhojp := splineEval(b, "rhojp", "rhorP2", base, fr)
	z2 := splineEval(b, "z2", "z2r", base, fr)
	z2p := splineEval(b, "z2p", "z2rP", base, fr)
	fpi := b.Def("fpi", ir.LDF("fpA", i))
	fpj := b.Def("fpj", ir.LDF("fpB", j))
	psip := b.Def("psip", ir.AddE(ir.AddE(ir.MulE(fpi, rhojp), ir.MulE(fpj, rhoip)), z2p))
	phi := b.Def("phi", ir.MulE(z2, recip))
	phip := b.Def("phip", ir.SubE(ir.MulE(z2p, recip), ir.MulE(phi, recip)))
	cnd := b.Def("cnd", ir.GtE(rr, rin))
	b.If(cnd, func() {
		b.Def("sw", ir.AddE(ir.MulE(swA, rr), swB))
	}, func() {
		b.Def("sw", ir.F(1))
	})
	fpair := b.Def("fpair", ir.MulE(ir.NegE(ir.MulE(b.T("sw"), ir.AddE(psip, phip))), recip))
	b.StoreF("fx", i, ir.AddE(ir.LDF("fx", i), ir.MulE(fpair, b.T("dx"))))
	b.StoreF("fy", i, ir.AddE(ir.LDF("fy", i), ir.MulE(fpair, b.T("dy"))))
	b.StoreF("fz", i, ir.AddE(ir.LDF("fz", i), ir.MulE(fpair, b.T("dz"))))
	gj := b.Def("gj", ir.LDF("gx", j))
	b.StoreF("gx", j, ir.SubE(gj, ir.MulE(fpair, b.T("dx"))))
	return b.MustBuild()
}

// lammps4 is the half-bin neighbor construction (Neighbor::half_bin_newton,
// line 172): distance test against the neighbor cutoff, bin-coordinate
// computation, a conditional hit flag, a running pair count (scalar
// reduction) and per-candidate bookkeeping stores.
func lammps4() *ir.Loop {
	r := newRNG(0x1a55e54)
	b := ir.NewBuilder("lammps-4", "i", 0, lammpsN, 1)
	lammpsArrays(b, r, lammpsN)
	b.ArrayF("dist", make([]float64, lammpsN))
	b.ArrayI("code", make([]int64, lammpsN))
	b.ArrayI("bins", make([]int64, 4096))
	cutn2 := b.ScalarF("cutn2", 60.0)
	xlo := b.ScalarF("xlo", 0.0)
	binInv := b.ScalarF("binInv", 2.0)
	cnt := b.ScalarI("cnt", 0)
	_ = cnt
	b.LiveOut("cnt")
	i := b.Idx()

	j, r2 := pairDistance(b)
	xj := b.Def("xj", ir.LDF("x", j))
	yj := b.Def("yj", ir.LDF("y", j))
	zj := b.Def("zj", ir.LDF("z", j))
	ix := b.Def("ix", ir.FToI(ir.MulE(ir.SubE(xj, xlo), binInv)))
	iy := b.Def("iy", ir.FToI(ir.MulE(ir.SubE(yj, xlo), binInv)))
	iz := b.Def("iz", ir.FToI(ir.MulE(ir.SubE(zj, xlo), binInv)))
	bc := b.Def("bc", ir.AddE(ix, ir.AddE(ir.MulE(iy, ir.I(16)), ir.MulE(iz, ir.I(256)))))
	flag := b.Def("flag", ir.LeE(r2, cutn2))
	b.If(flag, func() {
		b.Def("hit", ir.I(1))
	}, func() {
		b.Def("hit", ir.I(0))
	})
	b.Def("cnt", ir.AddE(b.T("cnt"), b.T("hit")))
	b.StoreI("code", i, ir.MulE(bc, b.T("hit")))
	// Bin occupancy counter: an indirect read-modify-write whose address is
	// unknown at compile time, so splitting it from other bins accesses
	// requires bidirectional queue synchronization.
	slot := b.Def("slot", ir.AndE(bc, ir.I(4095)))
	bcnt := b.Def("bcnt", ir.LDI("bins", slot))
	b.StoreI("bins", slot, ir.AddE(bcnt, b.T("hit")))
	b.StoreF("dist", i, r2)
	return b.MustBuild()
}

// lammps5 is the second half-bin loop (line 199): the same candidate scan
// but unrolled over independent ghost images — four independent distance
// and bin computations with almost no dependences between them, the
// highest-ILP lammps kernel.
func lammps5() *ir.Loop {
	r := newRNG(0x1a55e55)
	b := ir.NewBuilder("lammps-5", "i", 0, lammpsN, 1)
	lammpsArrays(b, r, lammpsN)
	b.ArrayI("nbr2", r.indices(lammpsN, lammpsN))
	b.ArrayF("d0", make([]float64, lammpsN))
	b.ArrayF("d1", make([]float64, lammpsN))
	b.ArrayF("d2", make([]float64, lammpsN))
	b.ArrayF("d3", make([]float64, lammpsN))
	sx := b.ScalarF("sx", 8.0)
	sy := b.ScalarF("sy", 7.5)
	i := b.Idx()

	j, r2 := pairDistance(b)
	_ = j
	b.StoreF("d0", i, r2)

	k := b.Def("k", ir.LDI("nbr2", i))
	ex := b.Def("ex", ir.SubE(ir.AddE(ir.LDF("x", i), sx), ir.LDF("x", k)))
	ey := b.Def("ey", ir.SubE(ir.AddE(ir.LDF("y", i), sy), ir.LDF("y", k)))
	ez := b.Def("ez", ir.SubE(ir.LDF("z", i), ir.LDF("z", k)))
	e2 := b.Def("e2", ir.AddE(ir.AddE(ir.MulE(ex, ex), ir.MulE(ey, ey)), ir.MulE(ez, ez)))
	b.StoreF("d1", i, e2)

	gx := b.Def("gxv", ir.SubE(ir.SubE(ir.LDF("x", i), sx), ir.LDF("x", k)))
	gy := b.Def("gyv", ir.SubE(ir.SubE(ir.LDF("y", i), sy), ir.LDF("y", k)))
	gz := b.Def("gzv", ir.AddE(ir.LDF("z", i), ir.LDF("z", k)))
	g2 := b.Def("g2", ir.AddE(ir.AddE(ir.MulE(gx, gx), ir.MulE(gy, gy)), ir.MulE(gz, gz)))
	b.StoreF("d2", i, g2)

	hx := b.Def("hx", ir.MulE(ir.AddE(ir.LDF("x", j), ir.LDF("x", k)), sx))
	hy := b.Def("hy", ir.MulE(ir.SubE(ir.LDF("y", j), ir.LDF("y", k)), sy))
	h2 := b.Def("h2", ir.AddE(ir.MulE(hx, hx), ir.MulE(hy, hy)))
	b.StoreF("d3", i, ir.SqrtE(h2))
	return b.MustBuild()
}
