package kernels

import "fgp/internal/ir"

// The six umt2k kernels mirror the snswp3d transport-sweep loops: angular
// flux updates with per-face incident/exiting flux bookkeeping, conditional
// scalar reductions over face signs (the load-imbalance cases umt2k-2/3),
// and a chain of small conditional blocks with read-after-write dependences
// between the condition variables (umt2k-6, the kernel with no speedup).

const umtN = 1400

func init() {
	register(&Kernel{
		Name: "umt2k-1", App: "umt2k", PctTime: 5.5,
		PaperFibers: 11, PaperDeps: 6, PaperBalance: 1.91,
		PaperCommOps: 2, PaperQueues: 2, PaperSpeedup: 2.62,
		HasConditionals: false,
		build:           umt2k1,
	})
	register(&Kernel{
		Name: "umt2k-2", App: "umt2k", PctTime: 8.0,
		PaperFibers: 33, PaperDeps: 2, PaperBalance: 87.50,
		PaperCommOps: 3, PaperQueues: 2, PaperSpeedup: 1.01,
		HasConditionals: true,
		build:           umt2k2,
	})
	register(&Kernel{
		Name: "umt2k-3", App: "umt2k", PctTime: 5.2,
		PaperFibers: 31, PaperDeps: 4, PaperBalance: 55.00,
		PaperCommOps: 5, PaperQueues: 3, PaperSpeedup: 1.25,
		HasConditionals: true,
		build:           umt2k3,
	})
	register(&Kernel{
		Name: "umt2k-4", App: "umt2k", PctTime: 22.6,
		PaperFibers: 35, PaperDeps: 62, PaperBalance: 1.67,
		PaperCommOps: 10, PaperQueues: 7, PaperSpeedup: 2.79,
		HasConditionals: true, SpeculationHelps: true,
		build: umt2k4,
	})
	register(&Kernel{
		Name: "umt2k-5", App: "umt2k", PctTime: 1.0,
		PaperFibers: 9, PaperDeps: 28, PaperBalance: 1.30,
		PaperCommOps: 6, PaperQueues: 6, PaperSpeedup: 2.03,
		HasConditionals: false,
		build:           umt2k5,
	})
	register(&Kernel{
		Name: "umt2k-6", App: "umt2k", PctTime: 5.7,
		PaperFibers: 38, PaperDeps: 1, PaperBalance: 1.57,
		PaperCommOps: 6, PaperQueues: 6, PaperSpeedup: 0.90,
		HasConditionals: true,
		build:           umt2k6,
	})
}

// umt2k1 is the zone flux update (snswp3d line 96): the new angular flux
// from the source plus the incident face fluxes, and the two exiting face
// fluxes derived from it. Iterations (angles within the wavefront) are
// independent.
func umt2k1() *ir.Loop {
	r := newRNG(0x0171201)
	b := ir.NewBuilder("umt2k-1", "i", 1, umtN, 1)
	b.ArrayF("q", r.floats(umtN, 0, 2))
	b.ArrayF("afp", r.floats(umtN, -1, 1))
	b.ArrayF("aez", r.floats(umtN, -1, 1))
	b.ArrayF("rdn", r.floats(umtN, 0.2, 1.2))
	b.ArrayF("psi", make([]float64, umtN))
	b.ArrayF("ofp", r.floats(umtN, 0, 0.5))
	b.ArrayF("oez", make([]float64, umtN))
	mu := b.ScalarF("mu", 0.35)
	eta := b.ScalarF("eta", 0.55)
	i := b.Idx()

	inc := b.Def("inc", ir.LDF("afp", i))
	fin := b.Def("fin", ir.AddE(ir.MulE(mu, inc), ir.MulE(eta, ir.LDF("aez", i))))
	pv := b.Def("pv", ir.MulE(ir.AddE(ir.LDF("q", i), fin), ir.LDF("rdn", i)))
	b.StoreF("psi", i, pv)
	b.StoreF("ofp", i, ir.MulE(ir.SubE(ir.MulE(ir.F(2), pv), inc), ir.F(0.45)))
	b.StoreF("oez", i, ir.SubE(ir.MulE(ir.F(2), pv), ir.LDF("aez", i)))
	return b.MustBuild()
}

// umt2k2 is the incident/exiting partial-current tally (snswp3d line 117):
// the loop body is almost entirely two scalar reductions inside a face-sign
// conditional. Both accumulations are forced onto one core (the recurrence
// cannot be split), producing the extreme load imbalance Table III reports
// (87.5) and essentially no speedup.
func umt2k2() *ir.Loop {
	r := newRNG(0x0171202)
	b := ir.NewBuilder("umt2k-2", "i", 0, umtN, 1)
	b.ArrayF("afp", r.floats(umtN, -1, 1))
	b.ArrayF("wts", r.floats(umtN, 0.1, 1))
	b.ArrayF("psi", r.floats(umtN, 0, 2))
	sumin := b.ScalarF("sumin", 0)
	sumout := b.ScalarF("sumout", 0)
	_, _ = sumin, sumout
	b.LiveOut("sumin", "sumout")
	i := b.Idx()

	a := b.Def("a", ir.LDF("afp", i))
	w := b.Def("w", ir.MulE(ir.LDF("wts", i), ir.LDF("psi", i)))
	// The face test renormalizes against the running tally, so the
	// condition itself is part of the reduction recurrence: the condition,
	// both accumulations, and their feeding operations are pinned to one
	// core, reproducing the pinned-reduction structure behind the paper's
	// 87.5 load-balance ratio.
	bal := b.Def("bal", ir.SubE(b.T("sumout"), b.T("sumin")))
	cnd := b.Def("cnd", ir.GtE(ir.MulE(a, ir.F(500)), bal))
	b.If(cnd, func() {
		b.Def("sumout", ir.AddE(b.T("sumout"), ir.MulE(a, w)))
	}, func() {
		b.Def("sumin", ir.SubE(b.T("sumin"), w))
	})
	return b.MustBuild()
}

// umt2k3 is the boundary partial-current tally (line 145): like umt2k-2 but
// with an extra independent exit-flux store that gives the other cores a
// little work — slightly better balance (55 vs 87.5) and a small speedup.
func umt2k3() *ir.Loop {
	r := newRNG(0x0171203)
	b := ir.NewBuilder("umt2k-3", "i", 0, umtN, 1)
	b.ArrayF("aez", r.floats(umtN, -1, 1))
	b.ArrayF("wts", r.floats(umtN, 0.1, 1))
	b.ArrayF("psib", r.floats(umtN, 0, 2))
	b.ArrayF("exitf", make([]float64, umtN))
	binc := b.ScalarF("binc", 0)
	bout := b.ScalarF("bout", 0)
	_, _ = binc, bout
	b.LiveOut("binc", "bout")
	i := b.Idx()

	a := b.Def("a", ir.LDF("aez", i))
	w := b.Def("w", ir.MulE(ir.LDF("wts", i), ir.LDF("psib", i)))
	b.StoreF("exitf", i, ir.MulE(ir.AbsE(a), w))
	// Like umt2k-2, the boundary test references the running tallies, so
	// the conditional reductions pin to one core; the independent exit-flux
	// store gives the remaining cores a little work (balance 55 vs 87.5 in
	// the paper, and a correspondingly small speedup).
	cnd := b.Def("cnd", ir.GtE(ir.MulE(a, ir.F(500)), ir.SubE(b.T("bout"), b.T("binc"))))
	b.If(cnd, func() {
		b.Def("bout", ir.AddE(b.T("bout"), ir.MulE(a, w)))
	}, func() {
		b.Def("binc", ir.SubE(b.T("binc"), ir.MulE(a, w)))
	})
	return b.MustBuild()
}

// umt2k4 is the corner-balance flux solve (line 158), the hottest umt2k
// loop: three coupled face fluxes, a denominator chain with divisions, and
// a negative-flux fixup conditional whose branches are pure (speculable).
func umt2k4() *ir.Loop {
	r := newRNG(0x0171204)
	b := ir.NewBuilder("umt2k-4", "i", 1, umtN, 1)
	b.ArrayF("q", r.floats(umtN, 0.1, 2))
	b.ArrayF("a1", r.floats(umtN, -1, 1))
	b.ArrayF("a2", r.floats(umtN, -1, 1))
	b.ArrayF("a3", r.floats(umtN, -1, 1))
	b.ArrayF("sigv", r.floats(umtN, 0.5, 2.5))
	b.ArrayF("psi1", make([]float64, umtN))
	b.ArrayF("psi2", make([]float64, umtN))
	b.ArrayF("psi3", make([]float64, umtN))
	mu := b.ScalarF("mu", 0.4)
	eta := b.ScalarF("eta", 0.3)
	xi := b.ScalarF("xi", 0.5)
	i := b.Idx()

	f1 := b.Def("f1", ir.MulE(mu, ir.LDF("a1", i)))
	f2 := b.Def("f2", ir.MulE(eta, ir.LDF("a2", i)))
	f3 := b.Def("f3", ir.MulE(xi, ir.LDF("a3", i)))
	qq := b.Def("qq", ir.LDF("q", i))
	sv := b.Def("sv", ir.LDF("sigv", i))
	// Three independent corner-flux chains, one per face pair.
	den1 := b.Def("den1", ir.AddE(sv, ir.AddE(ir.AbsE(f1), ir.AbsE(f2))))
	den2 := b.Def("den2", ir.AddE(sv, ir.AddE(ir.AbsE(f2), ir.AbsE(f3))))
	den3 := b.Def("den3", ir.AddE(sv, ir.AddE(ir.AbsE(f3), ir.AbsE(f1))))
	raw1 := b.Def("raw1", ir.DivE(ir.AddE(qq, ir.AddE(f1, f2)), den1))
	raw2 := b.Def("raw2", ir.DivE(ir.AddE(qq, ir.AddE(f2, f3)), den2))
	raw3 := b.Def("raw3", ir.DivE(ir.AddE(qq, ir.AddE(f3, f1)), den3))
	neg := b.Def("neg", ir.LtE(ir.MinE(raw1, ir.MinE(raw2, raw3)), ir.F(0)))
	b.If(neg, func() {
		b.Def("o1", ir.MaxE(raw1, ir.F(0)))
		b.Def("o2", ir.MaxE(raw2, ir.F(0)))
		b.Def("o3", ir.MaxE(raw3, ir.F(0)))
	}, func() {
		b.Def("o1", raw1)
		b.Def("o2", raw2)
		b.Def("o3", raw3)
	})
	b.StoreF("psi1", i, b.T("o1"))
	b.StoreF("psi2", i, b.T("o2"))
	b.StoreF("psi3", i, b.T("o3"))
	return b.MustBuild()
}

// umt2k5 is the source-moment update (line 178): few statements but each
// feeding the next — dependence-dense for its size (the paper reports 28
// dependences over 9 fibers), which forces real communication between the
// two halves.
func umt2k5() *ir.Loop {
	r := newRNG(0x0171205)
	b := ir.NewBuilder("umt2k-5", "i", 0, umtN, 1)
	b.ArrayF("phi", r.floats(umtN, 0.1, 2))
	b.ArrayF("cur", r.floats(umtN, -1, 1))
	b.ArrayF("sct", r.floats(umtN, 0.1, 0.9))
	b.ArrayF("src", make([]float64, umtN))
	b.ArrayF("mom", make([]float64, umtN))
	w0 := b.ScalarF("w0", 0.25)
	w1 := b.ScalarF("w1", 0.75)
	i := b.Idx()

	t1 := b.Def("t1", ir.MulE(ir.LDF("phi", i), ir.LDF("sct", i)))
	t2 := b.Def("t2", ir.AddE(t1, ir.MulE(w0, ir.LDF("cur", i))))
	t3 := b.Def("t3", ir.MulE(t2, w1))
	t4 := b.Def("t4", ir.AddE(t3, ir.MulE(t1, t2)))
	b.StoreF("src", i, t4)
	b.StoreF("mom", i, ir.SubE(ir.MulE(t4, t3), t2))
	return b.MustBuild()
}

// umt2k6 is the ordinate-set selection inside the wavefront sweep (line
// 208): a chain of small conditional blocks where each block's condition
// depends on the value the previous block computed (read-after-write on
// the condition variables), and the whole chain is loop-carried through
// the swept flux array. Every value a core needs sits on the critical
// path of the previous iteration, so the transformed code only adds queue
// round-trips — the one kernel the paper reports slowing down (0.90).
func umt2k6() *ir.Loop {
	r := newRNG(0x0171206)
	b := ir.NewBuilder("umt2k-6", "i", 1, umtN, 1)
	b.ArrayF("xin", r.floats(umtN, -1, 1))
	b.ArrayF("yout", make([]float64, umtN))
	th1 := b.ScalarF("th1", 0.1)
	th2 := b.ScalarF("th2", 0.3)
	th3 := b.ScalarF("th3", -0.2)
	th4 := b.ScalarF("th4", 0.6)
	i := b.Idx()

	prev := b.Def("prev", ir.LDF("yout", ir.SubE(i, ir.I(1))))
	t0 := b.Def("t0", ir.AddE(ir.LDF("xin", i), ir.MulE(prev, ir.F(0.3))))
	c1 := b.Def("c1", ir.GtE(t0, th1))
	b.If(c1, func() {
		b.Def("t1c", ir.MulE(t0, ir.F(2)))
	}, func() {
		b.Def("t1c", ir.AddE(t0, ir.F(1)))
	})
	c2 := b.Def("c2", ir.GtE(b.T("t1c"), th2))
	b.If(c2, func() {
		b.Def("t2c", ir.SubE(b.T("t1c"), ir.F(0.5)))
	}, func() {
		b.Def("t2c", ir.MulE(b.T("t1c"), ir.F(0.25)))
	})
	c3 := b.Def("c3", ir.LtE(b.T("t2c"), th3))
	b.If(c3, func() {
		b.Def("t3c", ir.NegE(b.T("t2c")))
	}, func() {
		b.Def("t3c", ir.AddE(b.T("t2c"), ir.F(0.125)))
	})
	c4 := b.Def("c4", ir.LtE(b.T("t3c"), th4))
	b.If(c4, func() {
		b.Def("t4c", ir.MulE(b.T("t3c"), b.T("t3c")))
	}, func() {
		b.Def("t4c", ir.SubE(b.T("t3c"), ir.F(2)))
	})
	b.StoreF("yout", i, b.T("t4c"))
	return b.MustBuild()
}
