package kernels

import (
	"testing"

	"fgp/internal/core"
	"fgp/internal/interp"
	"fgp/internal/ir"
)

func TestAllKernelsRegistered(t *testing.T) {
	ks := All()
	if len(ks) != 18 {
		t.Fatalf("got %d kernels, want 18", len(ks))
	}
	for i, k := range ks {
		if k.Name != tableNames[i] {
			t.Errorf("kernel %d = %s, want %s", i, k.Name, tableNames[i])
		}
	}
}

func TestKernelsValidateAndInterpret(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			l := k.Build()
			if err := ir.Validate(l); err != nil {
				t.Fatal(err)
			}
			res, err := interp.Run(l)
			if err != nil {
				t.Fatal(err)
			}
			if res.OpCount == 0 {
				t.Fatal("kernel executed no compute operations")
			}
			t.Logf("%s: %d trips, %d dynamic ops (%.1f ops/iter)",
				k.Name, l.Trips(), res.OpCount, float64(res.OpCount)/float64(l.Trips()))
		})
	}
}

func TestKernelsDeterministicBuild(t *testing.T) {
	for _, k := range All() {
		a, err := interp.Run(k.Build())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		b, err := interp.Run(k.Build())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for name, av := range a.ArraysF {
			bv := b.ArraysF[name]
			for i := range av {
				if av[i] != bv[i] {
					t.Fatalf("%s: array %s differs between builds at %d", k.Name, name, i)
				}
			}
		}
	}
}

// TestKernelsJSONRoundTrip pushes every built-in kernel through the JSON
// wire codec (the fgpd request format and compile-cache content-address):
// decode(encode(k)) must print identically, and re-encoding the decoded
// loop must reproduce the exact bytes (the canonical-encoding property the
// cache key depends on).
func TestKernelsJSONRoundTrip(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			l := k.Build()
			data, err := ir.MarshalLoop(l)
			if err != nil {
				t.Fatal(err)
			}
			back, err := ir.UnmarshalLoop(data)
			if err != nil {
				t.Fatal(err)
			}
			if ir.Print(back) != ir.Print(l) {
				t.Fatal("round-trip changed the loop")
			}
			data2, err := ir.MarshalLoop(back)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(data2) {
				t.Fatal("re-encoding a decoded kernel changed the bytes")
			}
		})
	}
}

// TestKernelsCompileAndVerify is the central correctness gate: every kernel
// compiled for 1, 2 and 4 cores must produce a memory image and live-outs
// bit-identical to the reference interpreter, with queue-edge verification
// enabled.
func TestKernelsCompileAndVerify(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			l := k.Build()
			for _, cores := range []int{1, 2, 4} {
				opt := core.DefaultOptions(cores)
				a, err := core.Compile(l, opt)
				if err != nil {
					t.Fatalf("cores=%d: compile: %v", cores, err)
				}
				if _, err := a.Verify(a.MachineConfig()); err != nil {
					t.Fatalf("cores=%d: %v", cores, err)
				}
			}
		})
	}
}

// TestKernelsSpeculateAndVerify checks the speculation path preserves
// semantics on every kernel.
func TestKernelsSpeculateAndVerify(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			l := k.Build()
			opt := core.DefaultOptions(4)
			opt.Speculate = true
			a, err := core.Compile(l, opt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.Verify(a.MachineConfig()); err != nil {
				t.Fatal(err)
			}
			if k.SpeculationHelps && a.Report.SpeculatedIfs == 0 {
				t.Errorf("%s: expected the speculation pass to fire", k.Name)
			}
		})
	}
}

// TestKernelStructuralSignatures checks that each kernel exhibits the
// structural property the paper attributes to it (Section IV).
func TestKernelStructuralSignatures(t *testing.T) {
	hasIf := func(l *ir.Loop) bool {
		found := false
		ir.WalkStmts(l.Body, func(s ir.Stmt) {
			if _, ok := s.(*ir.If); ok {
				found = true
			}
		})
		return found
	}
	condCount := 0
	for _, k := range All() {
		l := k.Build()
		if got := hasIf(l); got != k.HasConditionals {
			t.Errorf("%s: HasConditionals=%v but loop hasIf=%v", k.Name, k.HasConditionals, got)
		}
		if k.HasConditionals {
			condCount++
		}
		if k.PctTime <= 0 || k.PaperSpeedup <= 0 {
			t.Errorf("%s: missing paper metadata", k.Name)
		}
	}
	// Paper: 7 of the 18 loops have no conditionals in the body.
	if got := 18 - condCount; got != 7 {
		t.Errorf("%d kernels without conditionals, paper says 7", got)
	}
}

// TestTableIPercentages checks per-app coverage stays in the bands the
// paper quotes (≈85%% lammps, 65%% irs, 50%% umt2k, and Table I's 38%% for
// sphot).
func TestTableIPercentages(t *testing.T) {
	want := map[string][2]float64{
		"lammps": {80, 92},
		"irs":    {60, 70},
		"umt2k":  {44, 55},
		"sphot":  {35, 42},
	}
	for app, band := range want {
		sum := 0.0
		for _, k := range ByApp(app) {
			sum += k.PctTime
		}
		if sum < band[0] || sum > band[1] {
			t.Errorf("%s: coverage %.1f%% outside [%g, %g]", app, sum, band[0], band[1])
		}
	}
}

// TestReductionKernelsAreImbalanced verifies the umt2k-2/3 mechanism: the
// conditional reductions pin to one core, so those kernels' load balance is
// the worst of their application.
func TestReductionKernelsAreImbalanced(t *testing.T) {
	balance := func(name string) float64 {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Compile(k.Build(), core.DefaultOptions(4))
		if err != nil {
			t.Fatal(err)
		}
		return a.Report.LoadBalance
	}
	if b2, b1 := balance("umt2k-2"), balance("umt2k-1"); b2 <= b1 {
		t.Errorf("umt2k-2 (conditional reduction) balance %.1f should exceed umt2k-1's %.1f", b2, b1)
	}
}
