package kernels

import (
	"fmt"

	"fgp/internal/ir"
)

// The five irs kernels mirror the Implicit Radiation Solver hot loops:
// the 27-point block matrix-vector product of rmatmult3 (irs-1), two loops
// of the preconditioned conjugate-gradient solve (irs-2, irs-3), and two
// diffusion-coefficient loops with geometric-mean conditionals (irs-4,
// irs-5).

func init() {
	register(&Kernel{
		Name: "irs-1", App: "irs", PctTime: 55.6,
		PaperFibers: 208, PaperDeps: 54, PaperBalance: 1.69,
		PaperCommOps: 3, PaperQueues: 3, PaperSpeedup: 2.29,
		HasConditionals: false,
		build:           irs1,
	})
	register(&Kernel{
		Name: "irs-2", App: "irs", PctTime: 5.1,
		PaperFibers: 47, PaperDeps: 6, PaperBalance: 2.54,
		PaperCommOps: 8, PaperQueues: 6, PaperSpeedup: 1.33,
		HasConditionals: true, SpeculationHelps: true,
		build: irs2,
	})
	register(&Kernel{
		Name: "irs-3", App: "irs", PctTime: 2.5,
		PaperFibers: 30, PaperDeps: 3, PaperBalance: 1.88,
		PaperCommOps: 2, PaperQueues: 2, PaperSpeedup: 2.06,
		HasConditionals: false,
		build:           irs3,
	})
	register(&Kernel{
		Name: "irs-4", App: "irs", PctTime: 0.6,
		PaperFibers: 110, PaperDeps: 108, PaperBalance: 1.65,
		PaperCommOps: 16, PaperQueues: 3, PaperSpeedup: 2.98,
		HasConditionals: true, SpeculationHelps: true,
		build: irs4,
	})
	register(&Kernel{
		Name: "irs-5", App: "irs", PctTime: 1.5,
		PaperFibers: 390, PaperDeps: 698, PaperBalance: 1.84,
		PaperCommOps: 60, PaperQueues: 3, PaperSpeedup: 2.99,
		HasConditionals: true, SpeculationHelps: true,
		build: irs5,
	})
}

// irs1 is the rmatmult3 27-point stencil (rmatmult3.c line 75): b[i] is the
// sum of 27 coefficient*neighbor products across three planes of a 3D
// brick. Every product is independent; only the final reduction tree links
// them — the widest-ILP kernel of the suite.
func irs1() *ir.Loop {
	const (
		stX  = 1
		stY  = 34
		stZ  = 34 * 34
		n    = 2*stZ + 1200 // interior band plus halo planes
		from = stZ + stY + 1
		to   = n - stZ - stY - 1
	)
	r := newRNG(0x125051)
	b := ir.NewBuilder("irs-1", "i", from, to, 1)
	b.ArrayF("xv", r.floats(n, -1, 1))
	b.ArrayF("bv", make([]float64, n))
	offs := [9][2]int64{
		{-stZ - stY, 0}, {-stZ, 1}, {-stZ + stY, 2},
		{-stY, 3}, {0, 4}, {stY, 5},
		{stZ - stY, 6}, {stZ, 7}, {stZ + stY, 8},
	}
	for k := 0; k < 9; k++ {
		b.ArrayF(fmt.Sprintf("c%d", k), r.floats(n, -0.25, 0.25))
	}
	i := b.Idx()
	// 27 independent products: for each of the 9 rows, the left/center/right
	// neighbors with that row's coefficient plane.
	var rows []ir.Expr
	for k := 0; k < 9; k++ {
		o := offs[k][0]
		cf := fmt.Sprintf("c%d", k)
		l := b.Def(fmt.Sprintf("pl%d", k), ir.MulE(ir.LDF(cf, i), ir.LDF("xv", ir.AddE(i, ir.I(o-stX)))))
		c := b.Def(fmt.Sprintf("pc%d", k), ir.MulE(ir.LDF(cf, ir.AddE(i, ir.I(o))), ir.LDF("xv", ir.AddE(i, ir.I(o)))))
		rr := b.Def(fmt.Sprintf("pr%d", k), ir.MulE(ir.LDF(cf, ir.AddE(i, ir.I(o+stX))), ir.LDF("xv", ir.AddE(i, ir.I(o+stX)))))
		rows = append(rows, b.Def(fmt.Sprintf("row%d", k), ir.AddE(ir.AddE(l, c), rr)))
	}
	// Balanced reduction tree over the 9 row sums.
	s01 := b.Def("s01", ir.AddE(rows[0], rows[1]))
	s23 := b.Def("s23", ir.AddE(rows[2], rows[3]))
	s45 := b.Def("s45", ir.AddE(rows[4], rows[5]))
	s67 := b.Def("s67", ir.AddE(rows[6], rows[7]))
	sA := b.Def("sA", ir.AddE(s01, s23))
	sB := b.Def("sB", ir.AddE(s45, s67))
	b.StoreF("bv", i, ir.AddE(ir.AddE(sA, sB), rows[8]))
	return b.MustBuild()
}

// irs2 is the MatrixSolveCG preconditioner loop (MatrixSolve.c line 287):
// an incomplete-factorization forward substitution — z[i] depends on
// z[i-1] through memory, a loop-carried recurrence the compiler must
// synchronize when split — plus a scalar dot-product reduction and a
// masked correction conditional. The combination of the carried sweep and
// the reductions is what limits its speedup (paper: 1.33, and one of the
// four kernels that lose all speedup at 20-cycle transfer latency).
func irs2() *ir.Loop {
	const n = 1500
	r := newRNG(0x125052)
	b := ir.NewBuilder("irs-2", "i", 1, n, 1)
	b.ArrayF("rv", r.floats(n, -1, 1))
	b.ArrayF("pre", r.floats(n, 0.3, 0.9))
	b.ArrayF("lw", r.floats(n, 0.1, 0.4))
	b.ArrayF("zv", make([]float64, n))
	b.ArrayF("pv", r.floats(n, -1, 1))
	b.ArrayF("p2", make([]float64, n))
	b.ArrayI("mask", r.indices(n, 3))
	beta := b.ScalarF("beta", 0.37)
	rz := b.ScalarF("rz", 0)
	snorm := b.ScalarF("snorm", 0)
	_, _ = rz, snorm
	b.LiveOut("rz", "snorm")
	i := b.Idx()

	// Forward substitution: z[i] = (r[i] - L[i]*z[i-1]) * pre[i].
	zp := b.Def("zp", ir.LDF("zv", ir.SubE(i, ir.I(1))))
	z := b.Def("z", ir.MulE(ir.SubE(ir.LDF("rv", i), ir.MulE(ir.LDF("lw", i), zp)), ir.LDF("pre", i)))
	b.StoreF("zv", i, z)
	b.Def("rz", ir.AddE(b.T("rz"), ir.MulE(z, ir.LDF("rv", i))))
	pnew := b.Def("pnew", ir.AddE(z, ir.MulE(beta, ir.LDF("pv", i))))
	b.StoreF("p2", i, pnew)
	cnd := b.Def("cnd", ir.GtE(ir.LDI("mask", i), ir.I(0)))
	b.If(cnd, func() {
		b.Def("corr", z)
	}, func() {
		b.Def("corr", ir.F(0))
	})
	b.Def("snorm", ir.AddE(b.T("snorm"), ir.MulE(b.T("corr"), b.T("corr"))))
	return b.MustBuild()
}

// irs3 is the second CG loop (MatrixSolve.c line 250): independent fused
// multiply-add streams with no cross-stream dependences and no
// conditionals.
func irs3() *ir.Loop {
	const n = 1500
	r := newRNG(0x125053)
	b := ir.NewBuilder("irs-3", "i", 0, n, 1)
	for _, name := range []string{"a1", "a2", "a3", "a4", "a5", "a6", "g1", "g2"} {
		b.ArrayF(name, r.floats(n, -1, 1))
	}
	for _, name := range []string{"o1", "o2", "o3", "o4"} {
		b.ArrayF(name, make([]float64, n))
	}
	k1 := b.ScalarF("k1", 1.5)
	k2 := b.ScalarF("k2", -0.5)
	k3 := b.ScalarF("k3", 0.25)
	k4 := b.ScalarF("k4", 2.0)
	i := b.Idx()

	b.StoreF("o1", i, ir.AddE(ir.MulE(ir.LDF("a1", i), k1), ir.MulE(ir.LDF("a2", i), k2)))
	b.StoreF("o2", i, ir.SubE(ir.MulE(ir.LDF("a3", i), k3), ir.MulE(ir.LDF("a4", i), k4)))
	b.StoreF("o3", i, ir.MulE(ir.AddE(ir.LDF("a5", i), ir.LDF("a6", i)), k1))
	g := b.Def("g", ir.AddE(ir.MulE(ir.LDF("g1", i), ir.LDF("g1", i)), ir.MulE(ir.LDF("g2", i), ir.LDF("g2", i))))
	b.StoreF("o4", i, ir.SqrtE(g))
	return b.MustBuild()
}

// irs4 is the 3D diffusion-coefficient loop (DiffCoef.c line 191): for each
// of the three face directions, a geometric mean of the adjacent zones'
// sigma*volume products guarded by a denominator conditional (the classic
// speculation target, Fig 10), scaled by the face area.
func irs4() *ir.Loop {
	const (
		stY = 40
		stZ = 40 * 40
		n   = 2*stZ + 1300
	)
	r := newRNG(0x125054)
	b := ir.NewBuilder("irs-4", "i", stZ, n-stZ, 1)
	b.ArrayF("sig", r.floats(n, 0.0, 2.0))
	b.ArrayF("vol", r.floats(n, 0.5, 1.5))
	b.ArrayF("ax", r.floats(n, 0.8, 1.2))
	b.ArrayF("ay", r.floats(n, 0.8, 1.2))
	b.ArrayF("az", r.floats(n, 0.8, 1.2))
	b.ArrayF("dcx", make([]float64, n))
	b.ArrayF("dcy", make([]float64, n))
	b.ArrayF("dcz", make([]float64, n))
	tiny := b.ScalarF("tiny", 0.02)
	i := b.Idx()

	dc := b.Def("dc", ir.MulE(ir.LDF("sig", i), ir.LDF("vol", i)))
	dirs := []struct {
		tag  string
		off  int64
		area string
		out  string
	}{
		{"x", 1, "ax", "dcx"},
		{"y", stY, "ay", "dcy"},
		{"z", stZ, "az", "dcz"},
	}
	for _, d := range dirs {
		dn := b.Def("dn_"+d.tag, ir.MulE(ir.LDF("sig", ir.AddE(i, ir.I(d.off))), ir.LDF("vol", ir.AddE(i, ir.I(d.off)))))
		num := b.Def("num_"+d.tag, ir.MulE(ir.MulE(ir.F(2), dc), dn))
		den := b.Def("den_"+d.tag, ir.AddE(ir.AddE(dc, dn), tiny))
		cnd := b.Def("cnd_"+d.tag, ir.GtE(den, ir.MulE(tiny, ir.F(4))))
		b.If(cnd, func() {
			b.Def("gm_"+d.tag, ir.DivE(num, den))
		}, func() {
			b.Def("gm_"+d.tag, ir.F(0))
		})
		b.StoreF(d.out, i, ir.MulE(b.T("gm_"+d.tag), ir.LDF(d.area, i)))
	}
	return b.MustBuild()
}

// irs5 is the second DiffCoef loop (line 317), the largest kernel: a
// three-direction advective update with slope limiting (min/abs chains),
// upwind selection conditionals, and coupled density/energy flux chains
// feeding a combined zone update — several hundred operations per
// iteration with dense cross-statement dependences.
func irs5() *ir.Loop {
	const (
		stY = 36
		stZ = 36 * 36
		n   = 2*stZ + 1300
	)
	r := newRNG(0x125055)
	b := ir.NewBuilder("irs-5", "i", stZ, n-stZ, 1)
	b.ArrayF("u", r.floats(n, 0.2, 2.0))
	b.ArrayF("en", r.floats(n, 0.5, 3.0))
	b.ArrayF("rho", r.floats(n, 0.5, 1.5))
	b.ArrayF("vx", r.floats(n, -1, 1))
	b.ArrayF("vy", r.floats(n, -1, 1))
	b.ArrayF("vz", r.floats(n, -1, 1))
	b.ArrayF("unew", make([]float64, n))
	b.ArrayF("enew", make([]float64, n))
	dt := b.ScalarF("dt", 0.01)
	half := b.ScalarF("half", 0.5)
	i := b.Idx()

	dirs := []struct {
		tag string
		off int64
		vel string
	}{
		{"x", 1, "vx"},
		{"y", stY, "vy"},
		{"z", stZ, "vz"},
	}
	flux := func(field, tag string, off int64, vel string) ir.Expr {
		ql := b.Def(field+"ql_"+tag, ir.LDF(field, ir.SubE(i, ir.I(off))))
		qc := b.Def(field+"qc_"+tag, ir.LDF(field, i))
		qr := b.Def(field+"qr_"+tag, ir.LDF(field, ir.AddE(i, ir.I(off))))
		dl := b.Def(field+"dl_"+tag, ir.SubE(qc, ql))
		dr := b.Def(field+"dr_"+tag, ir.SubE(qr, qc))
		// minmod limiter via min of magnitudes and an agreement mask.
		mag := b.Def(field+"mag_"+tag, ir.MinE(ir.AbsE(dl), ir.AbsE(dr)))
		agree := b.Def(field+"ag_"+tag, ir.MaxE(ir.MulE(dl, dr), ir.F(0)))
		nrm := b.Def(field+"nr_"+tag, ir.AddE(ir.AbsE(ir.MulE(dl, dr)), ir.F(1e-12)))
		sl := b.Def(field+"sl_"+tag, ir.MulE(mag, ir.DivE(agree, nrm)))
		v := b.Def(field+"v_"+tag, ir.LDF(vel, i))
		cnd := b.Def(field+"cnd_"+tag, ir.GtE(v, ir.F(0)))
		b.If(cnd, func() {
			b.Def(field+"fs_"+tag, ir.AddE(qc, ir.MulE(half, sl)))
		}, func() {
			b.Def(field+"fs_"+tag, ir.SubE(qr, ir.MulE(half, sl)))
		})
		return b.Def(field+"fx_"+tag, ir.MulE(v, ir.MulE(b.T(field+"fs_"+tag), ir.LDF("rho", i))))
	}
	var uf, ef []ir.Expr
	for _, d := range dirs {
		uf = append(uf, flux("u", d.tag, d.off, d.vel))
		ef = append(ef, flux("en", d.tag, d.off, d.vel))
	}
	usum := b.Def("usum", ir.AddE(ir.AddE(uf[0], uf[1]), uf[2]))
	esum := b.Def("esum", ir.AddE(ir.AddE(ef[0], ef[1]), ef[2]))
	b.StoreF("unew", i, ir.SubE(ir.LDF("u", i), ir.MulE(dt, usum)))
	b.StoreF("enew", i, ir.SubE(ir.LDF("en", i), ir.MulE(dt, ir.AddE(esum, ir.MulE(usum, half)))))
	return b.MustBuild()
}
