package kernels

import "fgp/internal/ir"

// The two sphot kernels mirror the Monte Carlo photon-transport execute
// loops: a short per-particle bookkeeping step (sphot-1) and the main
// tracking step (sphot-2) with exp/log-heavy distance sampling, scattering
// angle updates, absorption conditionals and indirect tally accumulation.

const sphotN = 900

func init() {
	register(&Kernel{
		Name: "sphot-1", App: "sphot", PctTime: 0.6,
		PaperFibers: 5, PaperDeps: 2, PaperBalance: 2.36,
		PaperCommOps: 2, PaperQueues: 2, PaperSpeedup: 2.26,
		HasConditionals: false,
		build:           sphot1,
	})
	register(&Kernel{
		Name: "sphot-2", App: "sphot", PctTime: 37.5,
		PaperFibers: 448, PaperDeps: 329, PaperBalance: 1.71,
		PaperCommOps: 36, PaperQueues: 8, PaperSpeedup: 2.60,
		HasConditionals: true, SpeculationHelps: true,
		build: sphot2,
	})
}

// sphot1 is the per-particle setup step (execute.f line 88): attenuate the
// statistical weight and advance the position — a handful of independent
// statements.
func sphot1() *ir.Loop {
	r := newRNG(0x5107001)
	b := ir.NewBuilder("sphot-1", "i", 0, sphotN, 1)
	b.ArrayF("wt", r.floats(sphotN, 0.5, 1))
	b.ArrayF("sig", r.floats(sphotN, 0.1, 1.5))
	b.ArrayF("dst", r.floats(sphotN, 0.0, 2))
	b.ArrayF("x0", r.floats(sphotN, -5, 5))
	b.ArrayF("u0", r.floats(sphotN, 0, 1))
	b.ArrayF("wout", make([]float64, sphotN))
	b.ArrayF("xout", make([]float64, sphotN))
	i := b.Idx()

	att := b.Def("att", ir.ExpE(ir.NegE(ir.MulE(ir.LDF("sig", i), ir.LDF("dst", i)))))
	b.StoreF("wout", i, ir.MulE(ir.LDF("wt", i), att))
	mu := b.Def("mu", ir.SubE(ir.MulE(ir.F(2), ir.LDF("u0", i)), ir.F(1)))
	b.StoreF("xout", i, ir.AddE(ir.LDF("x0", i), ir.MulE(ir.LDF("dst", i), mu)))
	return b.MustBuild()
}

// sphot2 is the main tracking step (execute.f line 300): sample the flight
// distance (log of a uniform), rotate the direction (sqrt/div chains),
// attenuate the weight (exp), split the weight into absorbed and scattered
// parts behind a census conditional (speculable: both parts are pure), and
// tally into the particle's cell through an indirect read-modify-write.
func sphot2() *ir.Loop {
	const cells = 128
	r := newRNG(0x5107002)
	b := ir.NewBuilder("sphot-2", "i", 0, sphotN, 1)
	b.ArrayF("rn1", r.floats(sphotN, 1e-3, 1))
	b.ArrayF("rn2", r.floats(sphotN, 0, 1))
	b.ArrayF("rn3", r.floats(sphotN, 1e-3, 1))
	b.ArrayF("sigt", r.floats(sphotN, 0.2, 2))
	b.ArrayF("siga", r.floats(sphotN, 0.05, 0.5))
	b.ArrayF("wt", r.floats(sphotN, 0.2, 1))
	b.ArrayF("ux", r.floats(sphotN, -0.9, 0.9))
	b.ArrayF("uy", r.floats(sphotN, -0.9, 0.9))
	b.ArrayF("xp", r.floats(sphotN, -4, 4))
	b.ArrayF("yp", r.floats(sphotN, -4, 4))
	b.ArrayI("cell", r.indices(sphotN, cells))
	b.ArrayF("tally", make([]float64, cells))
	b.ArrayF("wnew", make([]float64, sphotN))
	b.ArrayF("xnew", make([]float64, sphotN))
	b.ArrayF("ynew", make([]float64, sphotN))
	b.ArrayF("escat", make([]float64, sphotN))
	_ = b.ScalarF("wcut", 0.35)
	twopi := b.ScalarF("twopi", 6.283185307179586)
	i := b.Idx()

	// Flight distance: d = -ln(rn1)/sigt.
	st := b.Def("st", ir.LDF("sigt", i))
	d := b.Def("d", ir.DivE(ir.NegE(ir.LogE(ir.LDF("rn1", i))), st))
	// New direction cosines from a scattering angle sample.
	cmu := b.Def("cmu", ir.SubE(ir.MulE(ir.F(2), ir.LDF("rn2", i)), ir.F(1)))
	smu := b.Def("smu", ir.SqrtE(ir.MaxE(ir.SubE(ir.F(1), ir.MulE(cmu, cmu)), ir.F(0))))
	phi := b.Def("phi", ir.MulE(twopi, ir.LDF("rn3", i)))
	// Cheap trig surrogate: Bhaskara-like rational approximations keep the
	// op mix (mul/div heavy) without a hardware sin/cos.
	ph2 := b.Def("ph2", ir.MulE(phi, phi))
	cph := b.Def("cph", ir.DivE(ir.SubE(ir.F(39.478418), ir.MulE(ir.F(4), ph2)),
		ir.AddE(ir.F(39.478418), ph2)))
	sph := b.Def("sph", ir.SqrtE(ir.MaxE(ir.SubE(ir.F(1), ir.MulE(cph, cph)), ir.F(0))))
	uxn := b.Def("uxn", ir.AddE(ir.MulE(ir.LDF("ux", i), cmu), ir.MulE(smu, cph)))
	uyn := b.Def("uyn", ir.AddE(ir.MulE(ir.LDF("uy", i), cmu), ir.MulE(smu, sph)))
	// Weight attenuation and absorption split.
	w := b.Def("w", ir.LDF("wt", i))
	att := b.Def("att", ir.ExpE(ir.NegE(ir.MulE(ir.LDF("siga", i), d))))
	wsur := b.Def("wsur", ir.MulE(w, att))
	// Russian-roulette census with a variance-adaptive threshold: the cut
	// tracks the running deposited weight, so the previous iteration's
	// branch outcome feeds this iteration's condition. Without speculation
	// the branch bodies sit on that recurrence; with it only the select
	// does (the Fig 10 payoff).
	cnd := b.Def("cndw", ir.GtE(wsur, b.T("wcut")))
	b.If(cnd, func() {
		b.Def("wkeep", wsur)
		b.Def("wdep", ir.SubE(b.T("w"), wsur))
	}, func() {
		b.Def("wkeep", ir.F(0))
		b.Def("wdep", b.T("w"))
	})
	b.Def("wcut", ir.AddE(ir.MulE(b.T("wcut"), ir.F(0.995)), ir.MulE(b.T("wdep"), ir.F(0.004))))
	// Position advance and scattered energy.
	b.StoreF("xnew", i, ir.AddE(ir.LDF("xp", i), ir.MulE(d, uxn)))
	b.StoreF("ynew", i, ir.AddE(ir.LDF("yp", i), ir.MulE(d, uyn)))
	b.StoreF("wnew", i, b.T("wkeep"))
	b.StoreF("escat", i, ir.MulE(b.T("wkeep"), ir.AddE(ir.MulE(uxn, uxn), ir.MulE(uyn, uyn))))
	// Tally deposited weight into the particle's cell (indirect RMW).
	c := b.Def("c", ir.LDI("cell", i))
	tv := b.Def("tv", ir.LDF("tally", c))
	b.StoreF("tally", c, ir.AddE(tv, b.T("wdep")))
	return b.MustBuild()
}
