package normalize

import (
	"testing"

	"fgp/internal/ir"
	"fgp/internal/kernels"
)

// TestNormalizeIdempotent: a second application of the tree-splitting pass
// at the same bound must be the identity, on every built-in kernel and at
// every bound the ablations use. A non-idempotent normalizer would make
// the service's content-addressed cache key unstable for pre-normalized
// inputs and re-split already-minimal statements.
func TestNormalizeIdempotent(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, maxOps := range []int{1, 2, 3, 5, 8} {
				once, _ := Apply(k.Build(), maxOps)
				if err := ir.Validate(once); err != nil {
					t.Fatalf("maxOps=%d: first pass produced invalid IR: %v", maxOps, err)
				}
				twice, res := Apply(once, maxOps)
				if res.Extracted != 0 {
					t.Errorf("maxOps=%d: second pass extracted %d statements, want 0", maxOps, res.Extracted)
				}
				if got, want := ir.Print(twice), ir.Print(once); got != want {
					t.Errorf("maxOps=%d: normalize(normalize(l)) != normalize(l)\n--- twice ---\n%s--- once ---\n%s",
						maxOps, got, want)
				}
			}
		})
	}
}
