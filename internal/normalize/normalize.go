// Package normalize implements the pre-processing step of Section III-A:
// "the expression trees are pre-processed to reduce the depth of the tree by
// splitting compound expressions into multiple statements. This makes it
// possible to detect even more fine-grained parallelism."
//
// Splitting extracts subtrees of large expressions into fresh temporaries,
// each assigned by its own statement. Because the fiber-partitioning
// algorithm works per statement tree, smaller trees yield more, finer
// fibers. Extracted statements keep the pseudo source line of their origin,
// so the source-proximity merge heuristic still clusters them.
package normalize

import (
	"fmt"

	"fgp/internal/ir"
)

// Result reports what the pass did.
type Result struct {
	// Extracted counts subtrees hoisted into fresh statements.
	Extracted int
}

// Apply returns a copy of the loop in which no statement's expression tree
// holds more than maxOps compute operations (loads and literals are free).
// maxOps < 1 disables the pass. The input loop is not modified.
func Apply(l *ir.Loop, maxOps int) (*ir.Loop, Result) {
	out := l.Clone()
	if maxOps < 1 {
		return out, Result{}
	}
	n := &normalizer{max: maxOps}
	out.Body = n.stmts(out.Body)
	return out, Result{Extracted: n.extracted}
}

type normalizer struct {
	max       int
	fresh     int
	extracted int
}

func (n *normalizer) stmts(body []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range body {
		switch x := s.(type) {
		case *ir.Assign:
			pre, nx := n.limit(x.X, x.Src)
			out = append(out, pre...)
			if ed, ok := x.Dest.(*ir.ElemDest); ok {
				preIdx, nidx := n.limit(ed.Index, x.Src)
				out = append(out, preIdx...)
				out = append(out, &ir.Assign{Src: x.Src, Dest: &ir.ElemDest{Array: ed.Array, K: ed.K, Index: nidx}, X: nx})
			} else {
				out = append(out, &ir.Assign{Src: x.Src, Dest: x.Dest, X: nx})
			}
		case *ir.If:
			pre, nc := n.limit(x.Cond, x.Src)
			out = append(out, pre...)
			out = append(out, &ir.If{
				Src:  x.Src,
				Cond: nc,
				Then: n.stmts(x.Then),
				Else: n.stmts(x.Else),
			})
		default:
			out = append(out, s)
		}
	}
	return out
}

// limit rewrites e so that it holds at most max compute operations,
// extracting oversized subtrees into fresh temporaries assigned by the
// returned prelude statements.
func (n *normalizer) limit(e ir.Expr, line int) ([]ir.Stmt, ir.Expr) {
	var pre []ir.Stmt
	out := n.rec(e, line, &pre)
	return pre, out
}

func (n *normalizer) rec(e ir.Expr, line int, pre *[]ir.Stmt) ir.Expr {
	switch x := e.(type) {
	case *ir.Bin:
		l := n.rec(x.L, line, pre)
		r := n.rec(x.R, line, pre)
		if ir.CountOps(l)+ir.CountOps(r)+1 > n.max {
			// Extract the heavier side; ties extract the left.
			if ir.CountOps(l) >= ir.CountOps(r) {
				l = n.extract(l, line, pre)
			} else {
				r = n.extract(r, line, pre)
			}
			// One extraction may not suffice when both sides are large.
			if ir.CountOps(l)+ir.CountOps(r)+1 > n.max {
				if ir.CountOps(l) >= ir.CountOps(r) {
					l = n.extract(l, line, pre)
				} else {
					r = n.extract(r, line, pre)
				}
			}
		}
		return &ir.Bin{Op: x.Op, L: l, R: r}
	case *ir.Un:
		v := n.rec(x.X, line, pre)
		if ir.CountOps(v)+1 > n.max {
			v = n.extract(v, line, pre)
		}
		return &ir.Un{Op: x.Op, X: v}
	case *ir.Load:
		idx := n.rec(x.Index, line, pre)
		return &ir.Load{Array: x.Array, K: x.K, Index: idx}
	default:
		return e
	}
}

// extract hoists a subtree into a fresh temporary. Leaves are returned
// unchanged (nothing to gain).
func (n *normalizer) extract(e ir.Expr, line int, pre *[]ir.Stmt) ir.Expr {
	switch e.(type) {
	case ir.ConstF, ir.ConstI, ir.Temp:
		return e
	}
	n.fresh++
	n.extracted++
	name := fmt.Sprintf(".n%d", n.fresh)
	*pre = append(*pre, &ir.Assign{
		Src:  line,
		Dest: ir.TempDest{Name: name, K: e.Kind()},
		X:    e,
	})
	return ir.Temp{Name: name, K: e.Kind()}
}
