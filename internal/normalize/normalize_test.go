package normalize

import (
	"testing"

	"fgp/internal/fiber"
	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/tac"
)

func bigExprLoop() *ir.Loop {
	b := ir.NewBuilder("big", "i", 0, 16, 1)
	data := make([]float64, 18)
	for i := range data {
		data[i] = float64(i)*0.25 + 1
	}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, 18))
	i := b.Idx()
	ld := func(off int64) ir.Expr { return ir.LDF("a", ir.AddE(i, ir.I(off))) }
	// A 15-op tree in one statement.
	e := ir.AddE(
		ir.MulE(ir.AddE(ld(0), ld(1)), ir.SubE(ld(2), ld(0))),
		ir.MulE(ir.AddE(ir.MulE(ld(1), ld(1)), ir.F(1)), ir.SqrtE(ir.AbsE(ld(2)))),
	)
	b.StoreF("o", i, e)
	return b.MustBuild()
}

func TestSplitPreservesSemantics(t *testing.T) {
	l := bigExprLoop()
	for _, maxOps := range []int{1, 2, 3, 5, 8} {
		out, res := Apply(l, maxOps)
		if err := ir.Validate(out); err != nil {
			t.Fatalf("maxOps=%d: %v\n%s", maxOps, err, ir.Print(out))
		}
		if res.Extracted == 0 {
			t.Errorf("maxOps=%d: expected extractions", maxOps)
		}
		ra, err := interp.Run(l)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := interp.Run(out)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ra.ArraysF["o"] {
			if ra.ArraysF["o"][i] != rb.ArraysF["o"][i] {
				t.Fatalf("maxOps=%d: o[%d] differs", maxOps, i)
			}
		}
	}
}

func TestSplitBoundsStatementSize(t *testing.T) {
	l := bigExprLoop()
	out, _ := Apply(l, 3)
	ir.WalkStmts(out.Body, func(s ir.Stmt) {
		if a, ok := s.(*ir.Assign); ok {
			if ops := ir.CountOps(a.X); ops > 3 {
				t.Errorf("statement still has %d ops: %v", ops, a)
			}
		}
	})
}

func TestSplitIncreasesFiberCount(t *testing.T) {
	count := func(l *ir.Loop) int {
		fn, err := tac.Lower(l)
		if err != nil {
			t.Fatal(err)
		}
		set, err := fiber.Partition(fn)
		if err != nil {
			t.Fatal(err)
		}
		return len(set.Fibers)
	}
	// A deep chain is a single fiber before splitting (the partitioning
	// algorithm continues one fiber down a chain); after splitting, each
	// fresh statement starts its own fiber.
	b := ir.NewBuilder("chain", "i", 0, 8, 1)
	data := make([]float64, 8)
	for i := range data {
		data[i] = float64(i) + 1
	}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, 8))
	i := b.Idx()
	e := ir.LDF("a", i)
	for k := 0; k < 8; k++ {
		e = ir.AddE(ir.MulE(e, ir.F(1.5)), ir.F(float64(k)))
	}
	b.StoreF("o", i, e)
	l := b.MustBuild()

	before := count(l)
	split, res := Apply(l, 2)
	if res.Extracted == 0 {
		t.Fatal("chain should split")
	}
	after := count(split)
	if after <= before {
		t.Errorf("splitting should expose more fibers: %d -> %d", before, after)
	}
}

func TestSplitDisabled(t *testing.T) {
	l := bigExprLoop()
	out, res := Apply(l, 0)
	if res.Extracted != 0 || len(out.Body) != len(l.Body) {
		t.Error("maxOps=0 must be a no-op")
	}
}

func TestSplitInsideConditional(t *testing.T) {
	b := ir.NewBuilder("c", "i", 0, 8, 1)
	data := []float64{1, -2, 3, -4, 5, -6, 7, -8}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, 8))
	i := b.Idx()
	c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
	b.If(c, func() {
		x := ir.LDF("a", i)
		b.Def("v", ir.MulE(ir.AddE(ir.MulE(x, x), ir.MulE(x, ir.F(2))), ir.SubE(ir.MulE(x, x), ir.F(1))))
	}, func() {
		b.Def("v", ir.F(0))
	})
	b.StoreF("o", i, b.T("v"))
	l := b.MustBuild()
	out, res := Apply(l, 2)
	if res.Extracted == 0 {
		t.Fatal("expected extraction inside the branch")
	}
	if err := ir.Validate(out); err != nil {
		t.Fatal(err)
	}
	ra, _ := interp.Run(l)
	rb, _ := interp.Run(out)
	for i := range ra.ArraysF["o"] {
		if ra.ArraysF["o"][i] != rb.ArraysF["o"][i] {
			t.Fatalf("o[%d] differs after in-branch split", i)
		}
	}
}

func TestSplitStoreIndex(t *testing.T) {
	b := ir.NewBuilder("si", "i", 0, 8, 1)
	b.ArrayF("o", make([]float64, 64))
	i := b.Idx()
	idx := ir.AddE(ir.MulE(ir.AddE(i, ir.I(1)), ir.I(3)), ir.MulE(i, ir.I(2)))
	b.StoreF("o", idx, ir.F(1))
	l := b.MustBuild()
	out, res := Apply(l, 1)
	if res.Extracted == 0 {
		t.Fatal("expected the store index computation to split")
	}
	if err := ir.Validate(out); err != nil {
		t.Fatal(err)
	}
}
