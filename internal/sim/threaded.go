// Threaded-code execution engine (runtime half; tcompile.go is the
// translation pass).
//
// The burst engine already collapsed most scheduling decisions; what it
// still pays per instruction is dispatch: one switch, one latency add, one
// boxed interp.Value write, and a budget/step update for every micro-op.
// The threaded engine removes that too. Each picked core executes whole
// fused basic blocks: straight-line typed micro-ops over split float64/
// int64 register files (no per-value kind guards — kinds were resolved
// statically), with the block's entire static cycle cost folded into
// per-block charges applied at time-sync points instead of per-op adds.
// The scheduler-visible unit of work drops from an instruction to a block.
//
// Time accounting. Loads are the only data-dependent time sources inside a
// block (L1 hit/miss plus memory-port serialization), so they are the
// block's sync points: a load eagerly applies the folded static charge
// accrued since the previous sync (op.pre), then its own dynamic latency;
// the block's terminator applies the remaining tail. Entering a block at
// an arbitrary op j (resuming after a yield, a blocked queue, or a burst
// handoff) subtracts preAt(b, j) once, which makes cold entry, mid-block
// resume and terminator-entry all the same code path: c.pc is the only
// resume state.
//
// Yield discipline — identical to burst by construction:
//   - loads that would miss while the core is past the (time, id) horizon
//     yield before touching the shared memory port;
//   - enqueues/dequeues are ordinary in-block micro-ops that run inline
//     while the core is provably the scheduler's next pick, else they
//     yield; full/empty queues block with the exact stall bookkeeping of
//     the reference step;
//   - the per-pick step budget (MaxSteps remainder, clamped to
//     cancelStride under a cancellable context) bounds a pick at block
//     granularity; a single pick that cannot fit even one block falls back
//     to the burst engine for that pick, which is bit-identical anyway.
//
// Deoptimization. Two runtime guards cover what static analysis cannot:
// an indirect jump whose target is not the canonical driver body, and a
// dequeued value whose kind differs from the statically solved one. Both
// materialize the typed registers back into the boxed register file,
// complete the faulting instruction with reference semantics, and
// permanently hand the core to the burst engine. Materialization is exact
// because every dynamically-assigned register holds a "clean" Value
// (single-field, as interp constructs them) of the solved kind, and the
// definite-assignment analysis proves reads never observe unassigned
// registers.
//
// With an event sink attached the engine delegates to runBurst, which
// already decomposes to the shared per-instruction step path — the event
// stream is byte-identical to the reference engine by construction.

package sim

import (
	"context"
	"fmt"
	"math"

	"fgp/internal/interp"
	"fgp/internal/ir"
)

// tcore is the per-core runtime state of the threaded engine: the split
// typed register files and the deoptimization latches.
type tcore struct {
	tp    *tprog // this core's compiled program (hot-path copy of m.tprogs[id])
	fregs []float64
	iregs []int64
	deopt bool // permanently back on the burst engine (a runtime guard failed)
	stale bool // typed files must be rehydrated from c.regs before use
}

// tinit compiles (or fetches from the content-addressed cache) every
// per-core program and binds the machine's memory arrays. Cores whose
// programs are ineligible simply keep a nil tcore and run on burst.
func (m *Machine) tinit() {
	if m.tprogs != nil {
		return
	}
	m.tprogs = make([]*tprog, len(m.cores))
	m.tcores = make([]*tcore, len(m.cores))
	maxArr := int32(-1)
	for i, c := range m.cores {
		tp := threadedFor(c.prog, m.cfg.Cost)
		m.tprogs[i] = tp
		if !tp.ok {
			continue
		}
		m.tcores[i] = &tcore{
			tp:    tp,
			fregs: make([]float64, len(c.regs)),
			iregs: make([]int64, len(c.regs)),
			stale: true,
		}
		if tp.maxArr > maxArr {
			maxArr = tp.maxArr
		}
	}
	m.tArrF = make([][]float64, maxArr+1)
	m.tArrI = make([][]int64, maxArr+1)
	m.tBase = make([]int64, maxArr+1)
	for arr := int32(0); arr <= maxArr; arr++ {
		m.tArrF[arr] = m.mm.DataF(arr)
		m.tArrI[arr] = m.mm.DataI(arr)
		m.tBase[arr] = m.mm.Base(arr)
	}
}

// tmaterialize boxes the typed register files back into c.regs. Exact for
// every register the subsequent boxed execution can observe: assigned
// registers hold clean single-field Values of the solved kind, and the
// definite-assignment analysis guarantees unassigned ones are rewritten
// before any read (the live-out rule covers the halt extraction).
func (m *Machine) tmaterialize(c *coreState, tc *tcore) {
	kinds := m.tprogs[c.id].kinds
	for r := range c.regs {
		if kinds[r] == ir.F64 {
			c.regs[r] = interp.Value{K: ir.F64, F: tc.fregs[r]}
		} else {
			c.regs[r] = interp.Value{K: ir.I64, I: tc.iregs[r]}
		}
	}
	tc.stale = true
}

// runThreaded is the outer scheduler of the threaded engine: the burst
// scheduler with block-granular picks for eligible cores.
func (m *Machine) runThreaded(ctx context.Context) (*Result, error) {
	if m.sink != nil {
		// Under instrumentation every instruction must flow through the
		// shared step path so the event stream matches the reference engine
		// by construction; runBurst is exactly that decomposition already.
		return m.runBurst(ctx)
	}
	if m.code == nil {
		m.decode() // burst fallbacks and deoptimized cores execute this
	}
	m.tinit()
	done := ctx.Done()
	var steps int64
	for {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		c, hTime, hID := m.pickCore2()
		if c == nil {
			if m.allHalted() {
				break
			}
			return nil, fmt.Errorf("%w\n%s", ErrDeadlock, m.dump())
		}
		tc := m.tcores[c.id]
		if tc == nil || tc.deopt {
			// Ineligible or deoptimized core: the burst engine's per-pick
			// body, verbatim (bit-identical to the reference engine).
			code := m.code[c.id]
			if c.pc < 0 || c.pc >= len(code) {
				return nil, fmt.Errorf("sim: core %d pc %d t=%d: pc out of program (len %d)", c.id, c.pc, c.time, len(code))
			}
			if u := code[c.pc].u; u == uEnq || u == uDeq {
				if err := m.step(c); err != nil {
					return nil, fmt.Errorf("sim: core %d pc %d t=%d: %w", c.id, c.pc, c.time, err)
				}
				steps++
			} else {
				budget := m.cfg.MaxSteps - steps + 1
				if done != nil && budget > cancelStride {
					budget = cancelStride
				}
				n, err := m.burst(c, hTime, hID, budget)
				steps += n
				if err != nil {
					return nil, fmt.Errorf("sim: core %d pc %d t=%d: %w", c.id, c.pc, c.time, err)
				}
			}
		} else {
			// Eligible pick: enter the resident scheduler, which keeps
			// executing picks (of any eligible core) without unwinding, and
			// hands back only when the next pick needs the fallback path.
			n, err := m.trun(ctx, c, tc, hTime, hID, steps)
			steps += n
			if err != nil {
				return nil, err
			}
		}
		if steps > m.cfg.MaxSteps {
			return nil, fmt.Errorf("sim: exceeded MaxSteps=%d (livelock?)\n%s", m.cfg.MaxSteps, m.dump())
		}
	}
	return m.result(), nil
}

// trun is the resident scheduler of the threaded engine: it executes
// scheduler picks back to back — at block granularity, switching cores
// without unwinding — for as long as every pick lands on an eligible,
// non-deoptimized core. Machine-wide invariants (cost parameters, memory
// bindings, the port cursor) stay in registers across picks; only the
// per-core state is rebound on a core switch. It returns the number of
// instructions executed since entry and hands control back to runThreaded
// when the next pick needs the fallback path (ineligible or deoptimized
// core), when all cores halt or block, on cancellation, or on any error
// (already wrapped exactly as the burst scheduler would).
//
// On entry c is the scheduler's (time, id)-minimal pick with horizon
// (hTime, hID), so the first instruction — including a communication op or
// a missing load — is safe to execute. steps0 is the global step count so
// far (for MaxSteps accounting and per-pick budgets). Every pick exit path
// writes c.pc and c.time itself (they differ per path).
func (m *Machine) trun(ctx context.Context, c *coreState, tc *tcore, hTime int64, hID int, steps0 int64) (int64, error) {
	done := ctx.Done()
	maxSteps := m.cfg.MaxSteps
	portOn := m.cfg.MemPortCycles > 0
	l1Hit, l1Miss := m.cfg.Cost.L1Hit, m.cfg.Cost.L1Miss
	portCycles := m.cfg.MemPortCycles
	portFree := m.memPortFree
	portBusy := m.portBusy
	prof := m.prof
	profOn := prof != nil
	transferLat := m.cfg.TransferLatency
	dbgEdges := m.cfg.DebugEdges
	tArrF, tArrI, tBase := m.tArrF, m.tArrI, m.tBase
	queues := m.queues
	enqLat, deqLat := m.cfg.Cost.Enq, m.cfg.Cost.Deq
	stepsTotal := steps0

pick:
	for {
		tp := tc.tp
		if c.pc < 0 || c.pc >= len(tp.pcmap) {
			m.memPortFree = portFree
			m.portBusy = portBusy
			return stepsTotal - steps0, fmt.Errorf("sim: core %d pc %d t=%d: pc out of program (len %d)", c.id, c.pc, c.time, len(tp.pcmap))
		}
		budget := maxSteps - stepsTotal + 1
		if done != nil && budget > cancelStride {
			budget = cancelStride
		}
		if tc.stale {
			for r := range c.regs {
				tc.fregs[r] = c.regs[r].F
				tc.iregs[r] = c.regs[r].I
			}
			tc.stale = false
		}
		fregs, iregs := tc.fregs, tc.iregs
		cc := c.cache
		cid := c.id
		time := c.time
		blks := tp.blocks
		var steps int64
		var err error

		ref := tp.pcmap[c.pc]
		b := &blks[ref.blk]
		ops, aux := b.ops, b.aux
		op := int(ref.op)
		// The uniform entry adjustment: charges already paid up to this op
		// are subtracted once, so the sync points below can re-apply their
		// full folded charges regardless of where the pick entered the block.
		time -= preAt(b, op)

	blocks:
		for {
			rem := int64(len(ops)-op) + 1 // every block ends at a terminator
			if steps+rem > budget {
				time += preAt(b, op)
				c.pc = pcAt(b, op)
				c.time = time
				if steps == 0 {
					// A pick must make progress; hand this one to the burst
					// engine at instruction granularity (bit-identical), leaving
					// the typed files stale for the next pick. burst updates
					// c.instrs itself, so steps stays zero here.
					m.memPortFree = portFree
					m.portBusy = portBusy
					m.tmaterialize(c, tc)
					n, berr := m.burst(c, hTime, hID, budget)
					portFree = m.memPortFree
					portBusy = m.portBusy
					stepsTotal += n
					if berr != nil {
						return stepsTotal - steps0, fmt.Errorf("sim: core %d pc %d t=%d: %w", c.id, c.pc, c.time, berr)
					}
				}
				break blocks
			}
			op0 := op
			for ; op < len(ops); op++ {
				o := &ops[op]
				switch o.u {
				case tNop: // latency folded into pre/tail
				case tConstF:
					fregs[o.dst] = aux[op].immF
				case tConstI:
					iregs[o.dst] = aux[op].immI
				case tMovF:
					fregs[o.dst] = fregs[o.a]
				case tMovI:
					iregs[o.dst] = iregs[o.a]

				case tAddF:
					fregs[o.dst] = fregs[o.a] + fregs[o.b]
				case tSubF:
					fregs[o.dst] = fregs[o.a] - fregs[o.b]
				case tMulF:
					fregs[o.dst] = fregs[o.a] * fregs[o.b]
				case tDivF:
					fregs[o.dst] = fregs[o.a] / fregs[o.b]
				case tMinF:
					fregs[o.dst] = math.Min(fregs[o.a], fregs[o.b])
				case tMaxF:
					fregs[o.dst] = math.Max(fregs[o.a], fregs[o.b])
				case tEqF:
					iregs[o.dst] = b2i(fregs[o.a] == fregs[o.b])
				case tNeF:
					iregs[o.dst] = b2i(fregs[o.a] != fregs[o.b])
				case tLtF:
					iregs[o.dst] = b2i(fregs[o.a] < fregs[o.b])
				case tLeF:
					iregs[o.dst] = b2i(fregs[o.a] <= fregs[o.b])
				case tGtF:
					iregs[o.dst] = b2i(fregs[o.a] > fregs[o.b])
				case tGeF:
					iregs[o.dst] = b2i(fregs[o.a] >= fregs[o.b])

				case tAddI:
					iregs[o.dst] = iregs[o.a] + iregs[o.b]
				case tSubI:
					iregs[o.dst] = iregs[o.a] - iregs[o.b]
				case tMulI:
					iregs[o.dst] = iregs[o.a] * iregs[o.b]
				case tDivI:
					d := iregs[o.b]
					if d == 0 {
						// Route through EvalBin for the exact reference error.
						_, err = interp.EvalBin(aux[op].binop, interp.VI(iregs[o.a]), interp.VI(0))
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time + int64(o.pre)
						break blocks
					}
					iregs[o.dst] = iregs[o.a] / d
				case tRemI:
					d := iregs[o.b]
					if d == 0 {
						_, err = interp.EvalBin(aux[op].binop, interp.VI(iregs[o.a]), interp.VI(0))
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time + int64(o.pre)
						break blocks
					}
					iregs[o.dst] = iregs[o.a] % d
				case tMinI:
					if l, r := iregs[o.a], iregs[o.b]; l < r {
						iregs[o.dst] = l
					} else {
						iregs[o.dst] = r
					}
				case tMaxI:
					if l, r := iregs[o.a], iregs[o.b]; l > r {
						iregs[o.dst] = l
					} else {
						iregs[o.dst] = r
					}
				case tAndI:
					iregs[o.dst] = iregs[o.a] & iregs[o.b]
				case tOrI:
					iregs[o.dst] = iregs[o.a] | iregs[o.b]
				case tXorI:
					iregs[o.dst] = iregs[o.a] ^ iregs[o.b]
				case tShlI:
					iregs[o.dst] = iregs[o.a] << uint64(iregs[o.b]&63)
				case tShrI:
					iregs[o.dst] = iregs[o.a] >> uint64(iregs[o.b]&63)
				case tEqI:
					iregs[o.dst] = b2i(iregs[o.a] == iregs[o.b])
				case tNeI:
					iregs[o.dst] = b2i(iregs[o.a] != iregs[o.b])
				case tLtI:
					iregs[o.dst] = b2i(iregs[o.a] < iregs[o.b])
				case tLeI:
					iregs[o.dst] = b2i(iregs[o.a] <= iregs[o.b])
				case tGtI:
					iregs[o.dst] = b2i(iregs[o.a] > iregs[o.b])
				case tGeI:
					iregs[o.dst] = b2i(iregs[o.a] >= iregs[o.b])

				case tNegF:
					fregs[o.dst] = -fregs[o.a]
				case tNegI:
					iregs[o.dst] = -iregs[o.a]
				case tNotI:
					iregs[o.dst] = b2i(iregs[o.a] == 0)
				case tSqrt:
					fregs[o.dst] = math.Sqrt(fregs[o.a])
				case tExp:
					fregs[o.dst] = math.Exp(fregs[o.a])
				case tLog:
					fregs[o.dst] = math.Log(fregs[o.a])
				case tAbsF:
					fregs[o.dst] = math.Abs(fregs[o.a])
				case tAbsI:
					if v := iregs[o.a]; v < 0 {
						iregs[o.dst] = -v
					} else {
						iregs[o.dst] = v
					}
				case tFloor:
					fregs[o.dst] = math.Floor(fregs[o.a])
				case tCvtIF:
					fregs[o.dst] = float64(iregs[o.a])
				case tCvtFI:
					iregs[o.dst] = interp.TruncFI(fregs[o.a])

				case tLoadF:
					time += int64(o.pre) // sync: time is exact from here
					idx := iregs[o.a]
					data := tArrF[o.arr]
					if uint64(idx) >= uint64(len(data)) {
						if _, err = m.mm.LoadF(int32(o.arr), idx); err == nil {
							err = fmt.Errorf("load out of bounds")
						}
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time
						break blocks
					}
					addr := tBase[o.arr] + idx*8
					if portOn && !(time < hTime || (time == hTime && cid < hID)) && !cc.Probe(addr) {
						// Would miss past the horizon: the next memory-port
						// grant may belong to another core. Yield; the load
						// re-executes once this core is minimal again.
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time
						break blocks
					}
					var lat int64
					if cc.Access(addr) {
						lat = l1Hit
					} else {
						start := time
						if portOn {
							if portFree > start {
								start = portFree
							}
							portFree = start + portCycles
							portBusy += portCycles
						}
						lat = start - time + l1Miss
					}
					fregs[o.dst] = data[idx]
					time += lat
					if profOn {
						if tac := aux[op].tac; tac >= 0 {
							prof[tac][0] += lat
							prof[tac][1]++
						}
					}
				case tLoadI:
					time += int64(o.pre)
					idx := iregs[o.a]
					data := tArrI[o.arr]
					if uint64(idx) >= uint64(len(data)) {
						if _, err = m.mm.LoadI(int32(o.arr), idx); err == nil {
							err = fmt.Errorf("load out of bounds")
						}
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time
						break blocks
					}
					addr := tBase[o.arr] + idx*8
					if portOn && !(time < hTime || (time == hTime && cid < hID)) && !cc.Probe(addr) {
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time
						break blocks
					}
					var lat int64
					if cc.Access(addr) {
						lat = l1Hit
					} else {
						start := time
						if portOn {
							if portFree > start {
								start = portFree
							}
							portFree = start + portCycles
							portBusy += portCycles
						}
						lat = start - time + l1Miss
					}
					iregs[o.dst] = data[idx]
					time += lat
					if profOn {
						if tac := aux[op].tac; tac >= 0 {
							prof[tac][0] += lat
							prof[tac][1]++
						}
					}

				case tStoreF:
					idx := iregs[o.a]
					data := tArrF[o.arr]
					if uint64(idx) >= uint64(len(data)) {
						if err = m.mm.StoreF(int32(o.arr), idx, fregs[o.b]); err == nil {
							err = fmt.Errorf("store out of bounds")
						}
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time + int64(o.pre)
						break blocks
					}
					data[idx] = fregs[o.b]
				case tStoreI:
					idx := iregs[o.a]
					data := tArrI[o.arr]
					if uint64(idx) >= uint64(len(data)) {
						if err = m.mm.StoreI(int32(o.arr), idx, iregs[o.b]); err == nil {
							err = fmt.Errorf("store out of bounds")
						}
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time + int64(o.pre)
						break blocks
					}
					data[idx] = iregs[o.b]

				case tEnqF, tEnqI:
					time += int64(o.pre) // sync: comm timing is exact from here
					q := queues[o.arr]
					if q == nil {
						if steps+int64(op-op0) > 0 {
							// Mid-chain: yield first, like burst; the error is
							// raised on the next pick, when this core is minimal.
							steps += int64(op - op0)
							c.pc = int(aux[op].pc)
							c.time = time
							break blocks
						}
						err = fmt.Errorf("no hardware queue %d (cross-group transfer)", o.arr)
						c.pc = int(aux[op].pc)
						c.time = time
						break blocks
					}
					if q.Full() {
						// Only a full queue needs scheduler ordering: a pop the
						// scheduler owes first may free the slot, so block only
						// while provably ahead of the horizon, else yield.
						if !(time < hTime || (time == hTime && cid < hID)) {
							steps += int64(op - op0)
							c.pc = int(aux[op].pc)
							c.time = time
							break blocks
						}
						c.blocked = blockedFull
						c.blockQ = q
						c.blockAt = time
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time
						break blocks
					}
					// The success path runs even past the horizon: the queue is
					// point-to-point, so this push appends to the tail with
					// timestamps derived only from this core's own time. Pops
					// the scheduler owes first only shorten the queue (they
					// cannot fill it), and an empty-blocked consumer woken now
					// dequeues with the same start time it would have seen had
					// it blocked and been woken in scheduler order. Only the
					// peak-occupancy statistic observes the relaxed order, so
					// past-horizon pushes record their depth via PushEarly,
					// which reconstructs the canonical depth as the consumer's
					// pops reveal where they fall relative to this push.
					var v interp.Value
					if o.u == tEnqF {
						v = interp.Value{K: ir.F64, F: fregs[o.a]}
					} else {
						v = interp.Value{K: ir.I64, I: iregs[o.a]}
					}
					if time < hTime || (time == hTime && cid < hID) {
						q.Push(v, time+transferLat, int32(o.b))
					} else {
						q.PushEarly(v, time+transferLat, int32(o.b), time)
					}
					time += enqLat
					if dst := m.coreByID(q.Dst); dst != nil && dst.blocked == blockedEmpty && dst.blockQ == q {
						dst.blocked = notBlocked
						dst.blockQ = nil
						// The wake adds exactly one runnable core, so the new
						// horizon is the min of the old one and that core —
						// no rescan needed.
						if dst.time < hTime || (dst.time == hTime && dst.id < hID) {
							hTime, hID = dst.time, dst.id
						}
					}

				case tDeqF, tDeqI:
					time += int64(o.pre) // sync: comm timing is exact from here
					q := queues[o.arr]
					if q == nil {
						if steps+int64(op-op0) > 0 {
							steps += int64(op - op0)
							c.pc = int(aux[op].pc)
							c.time = time
							break blocks
						}
						err = fmt.Errorf("no hardware queue %d (cross-group transfer)", o.arr)
						c.pc = int(aux[op].pc)
						c.time = time
						break blocks
					}
					if !(time < hTime || (time == hTime && cid < hID)) {
						// Past the horizon a pop may still be safe: if the
						// producer has halted, no future push exists, so the
						// head (FIFO) and every Full() outcome are already
						// final. Otherwise wait for the scheduler — popping
						// early could spare the producer a full-queue stall it
						// is owed in scheduler order.
						if src := m.coreByID(q.Src); src == nil || !src.halted || q.Empty() {
							steps += int64(op - op0)
							c.pc = int(aux[op].pc)
							c.time = time
							break blocks
						}
					}
					if q.Empty() {
						c.blocked = blockedEmpty
						c.blockQ = q
						c.blockAt = time
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time
						break blocks
					}
					e := q.Pop(time)
					if (o.u == tDeqF) != (e.V.K == ir.F64) {
						// The dequeued kind contradicts the static solution: box the
						// registers, complete the dequeue with reference semantics,
						// and permanently deoptimize this core.
						m.tmaterialize(c, tc)
						tc.deopt = true
						if dbgEdges && int32(o.b) != e.Edge {
							err = fmt.Errorf("queue %s FIFO mismatch: dequeue expects edge %d, head carries edge %d", q, int32(o.b), e.Edge)
							steps += int64(op - op0)
							c.pc = int(aux[op].pc)
							c.time = time
							break blocks
						}
						start := time
						if e.AvailAt > start {
							start = e.AvailAt
						}
						c.deqSt += start - time
						c.regs[o.dst] = e.V
						time = start + deqLat
						steps += int64(op-op0) + 1
						if src := m.coreByID(q.Src); src != nil && src.blocked == blockedFull && src.blockQ == q {
							src.blocked = notBlocked
							src.blockQ = nil
							src.enqSt += start - src.blockAt
							if src.time < start {
								src.time = start
							}
						}
						c.pc = int(aux[op].pc) + 1
						c.time = time
						break blocks
					}
					if dbgEdges && int32(o.b) != e.Edge {
						err = fmt.Errorf("queue %s FIFO mismatch: dequeue expects edge %d, head carries edge %d", q, int32(o.b), e.Edge)
						steps += int64(op - op0)
						c.pc = int(aux[op].pc)
						c.time = time
						break blocks
					}
					start := time
					if e.AvailAt > start {
						start = e.AvailAt
					}
					c.deqSt += start - time
					if o.u == tDeqF {
						fregs[o.dst] = e.V.F
					} else {
						iregs[o.dst] = e.V.I
					}
					time = start + deqLat
					if src := m.coreByID(q.Src); src != nil && src.blocked == blockedFull && src.blockQ == q {
						src.blocked = notBlocked
						src.blockQ = nil
						src.enqSt += start - src.blockAt
						if src.time < start {
							src.time = start
						}
						// The wake adds exactly one runnable core, so the new
						// horizon is the min of the old one and that core —
						// no rescan needed.
						if src.time < hTime || (src.time == hTime && src.id < hID) {
							hTime, hID = src.time, src.id
						}
					}

				default:
					err = fmt.Errorf("threaded: unknown micro-op %d", o.u)
					steps += int64(op - op0)
					c.pc = int(aux[op].pc)
					c.time = time + int64(o.pre)
					break blocks
				}
			}
			steps += int64(len(ops) - op0)
			time += b.tail // remaining folded charge since the last sync point

			switch b.term {
			case ttJp:
				time += b.tlat
				steps++
				t := b.tgt
				b = &blks[t.blk]
				ops, aux = b.ops, b.aux
				op = int(t.op)
				// Taken targets can land mid-block: the entry adjustment makes
				// the next sync point net out to the charges actually due.
				time -= preAt(b, op)
				continue

			case ttFjp:
				time += b.tlat
				steps++
				var t tref
				if iregs[b.a] == 0 {
					t = b.tgt
				} else {
					t = b.fall
				}
				b = &blks[t.blk]
				ops, aux = b.ops, b.aux
				op = int(t.op)
				time -= preAt(b, op)
				continue

			case ttJr:
				tgt := iregs[b.a]
				time += b.tlat
				steps++
				if tgt != driverLen {
					// Off-script indirect jump: permanently deoptimize to the
					// burst engine, which handles any target (including an
					// out-of-program pc, with the exact reference error).
					c.pc = int(tgt)
					c.time = time
					m.tmaterialize(c, tc)
					tc.deopt = true
					break blocks
				}
				t := b.tgt
				b = &blks[t.blk]
				ops, aux = b.ops, b.aux
				op = int(t.op)
				time -= preAt(b, op)
				continue

			case ttHalt:
				c.halted = true
				steps++
				// Box the live-out registers so result() extracts exact Values.
				for _, r := range tp.named {
					if tp.kinds[r] == ir.F64 {
						c.regs[r] = interp.Value{K: ir.F64, F: fregs[r]}
					} else {
						c.regs[r] = interp.Value{K: ir.I64, I: iregs[r]}
					}
				}
				c.pc = int(b.termPC)
				c.time = time
				break blocks
			}
		}

		c.instrs += steps
		stepsTotal += steps
		if err != nil {
			m.memPortFree = portFree
			m.portBusy = portBusy
			return stepsTotal - steps0, fmt.Errorf("sim: core %d pc %d t=%d: %w", c.id, c.pc, c.time, err)
		}
		if stepsTotal > maxSteps {
			m.memPortFree = portFree
			m.portBusy = portBusy
			return stepsTotal - steps0, fmt.Errorf("sim: exceeded MaxSteps=%d (livelock?)\n%s", maxSteps, m.dump())
		}
		if done != nil {
			select {
			case <-done:
				m.memPortFree = portFree
				m.portBusy = portBusy
				return stepsTotal - steps0, ctx.Err()
			default:
			}
		}
		c2, hT, hI := m.pickCore2()
		if c2 == nil {
			break pick // all halted or blocked: runThreaded decides which
		}
		tc2 := m.tcores[c2.id]
		if tc2 == nil || tc2.deopt {
			break pick // next pick needs the fallback path
		}
		c, tc, hTime, hID = c2, tc2, hT, hI
	}

	m.memPortFree = portFree
	m.portBusy = portBusy
	return stepsTotal - steps0, nil
}

// pickCore2 returns the scheduler's (time, id)-minimal runnable core plus
// the horizon — the second minimum, i.e. exactly what pickCore followed by
// horizon(pick) would compute — in a single scan instead of two.
func (m *Machine) pickCore2() (*coreState, int64, int) {
	var best, second *coreState
	for _, o := range m.cores {
		if o.halted || o.blocked != notBlocked {
			continue
		}
		if best == nil || o.time < best.time {
			second = best
			best = o
		} else if second == nil || o.time < second.time {
			second = o
		}
	}
	if second == nil {
		return best, math.MaxInt64, int(math.MaxInt32)
	}
	return best, second.time, second.id
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
