package sim_test

import (
	"testing"

	"fgp/internal/core"
	"fgp/internal/kernels"
	"fgp/internal/sim"
)

// BenchmarkEngines times one warm simulation of every kernel at 4 cores per
// engine — the pure engine-throughput comparison the sweep-level numbers in
// BENCH_sim.json aggregate.
func BenchmarkEngines(b *testing.B) {
	var arts []*core.Artifact
	for _, k := range kernels.All() {
		a, err := core.Compile(k.Build(), core.DefaultOptions(4))
		if err != nil {
			b.Fatal(err)
		}
		arts = append(arts, a)
	}
	for _, engine := range []string{sim.EngineBurst, sim.EngineThreaded, sim.EngineReference} {
		b.Run(engine, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, a := range arts {
					cfg := a.MachineConfig()
					cfg.Engine = engine
					if _, err := a.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkEnginesSequential times the 1-core compilations (the speedup
// baselines and the profiling machines): no queues and no horizon, so the
// pick granularity is the whole program — the threaded engine's best case.
func BenchmarkEnginesSequential(b *testing.B) {
	var arts []*core.Artifact
	for _, k := range kernels.All() {
		a, err := core.CompileSequential(k.Build())
		if err != nil {
			b.Fatal(err)
		}
		arts = append(arts, a)
	}
	for _, engine := range []string{sim.EngineBurst, sim.EngineThreaded, sim.EngineReference} {
		b.Run(engine, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, a := range arts {
					cfg := a.MachineConfig()
					cfg.Engine = engine
					if _, err := a.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
