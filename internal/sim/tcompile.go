// Threaded-code translation pass: the compile side of the threaded engine
// (threaded.go holds the runtime).
//
// Each per-core isa.Program is partitioned into basic blocks and every block
// is lowered to a fused straight-line unit: a compact array of typed
// micro-ops whose operand kinds were resolved statically, plus one folded
// cycle charge. At runtime the scheduler dispatches whole blocks instead of
// instructions; the only data-dependent time residue inside a block is the
// L1 hit/miss latency of loads (which are exact time-sync points, see the
// `pre` field) and traps.
//
// Block boundaries: a block is a maximal straight-line run ending at a
// control transfer (conditional/unconditional/indirect branch or halt) —
// nothing else fragments blocks. Branch targets need no leader because the
// pcmap locates every pc as a (block, op) pair and entry adjusts the folded
// charge, so branches jump into the middle of blocks; queue operations are
// ordinary in-block micro-ops that synchronize time and yield only when the
// horizon check demands it; trap-capable instructions (loads/stores that
// can go out of bounds, integer div/rem) likewise stay in-block, since
// every micro-op carries the statically folded cycle count since the last
// time-sync point (`pre`) from which the exact trap or load time is
// reconstructed.
//
// The typed register files (one float64 and one int64 slot per virtual
// register) are sound only when a static analysis proves them equivalent to
// the dynamically-kinded interp.Value register file of the reference
// engine. compileThreaded runs that analysis:
//
//   - kind unification: every register gets a single static kind consistent
//     with all its definitions and kind-sensitive uses (union-find);
//   - definite assignment: every read is dominated by a write on all paths,
//     so typed execution never observes the zero Value's F64 kind;
//   - live-out safety: registers named in RegName are definitely assigned
//     at every halt (or never assigned at all), so boxing them back to
//     interp.Values at halt is exact;
//   - the only indirect jump allowed is the canonical secondary-thread
//     driver (pc0 deq / pc1 fjp / pc2 jr), whose jump register provably
//     holds the value a cooperating primary enqueued; a runtime guard
//     deoptimizes the core to the burst engine if the target is ever not
//     the driver body.
//
// A program failing any check is simply ineligible: the machine runs that
// core on the burst engine, which is already bit-identical to the
// reference, so eligibility is purely a performance property — never a
// correctness one.
//
// Compiled tprogs are immutable and cached content-addressed (program text
// + cost table), so fgpd's singleflight compile cache and the experiment
// runner's artifact cache warm-start the translation for free across
// simulations of the same artifact.

package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"fgp/internal/cost"
	"fgp/internal/ir"
	"fgp/internal/isa"
)

// tuop is a typed micro-op: opcode fused with the statically resolved
// operand kind, so the block runner needs no per-value kind guards.
type tuop uint8

const (
	tNop tuop = iota
	tConstF
	tConstI
	tMovF
	tMovI

	tAddF
	tSubF
	tMulF
	tDivF
	tMinF
	tMaxF
	tEqF
	tNeF
	tLtF
	tLeF
	tGtF
	tGeF

	tAddI
	tSubI
	tMulI
	tDivI // traps on zero divisor
	tRemI // traps on zero divisor
	tMinI
	tMaxI
	tAndI
	tOrI
	tXorI
	tShlI
	tShrI
	tEqI
	tNeI
	tLtI
	tLeI
	tGtI
	tGeI

	tNegF
	tNegI
	tNotI
	tSqrt
	tExp
	tLog
	tAbsF
	tAbsI
	tFloor
	tCvtIF
	tCvtFI

	tLoadF  // time-sync point; may trap out of bounds
	tLoadI  // time-sync point; may trap out of bounds
	tStoreF // may trap out of bounds
	tStoreI // may trap out of bounds

	tEnqF // time-sync point; yields unless provably ahead of the horizon
	tEnqI
	tDeqF // time-sync point; runtime kind guard may deoptimize
	tDeqI
)

// top is one typed micro-op, packed to 12 bytes so the dispatch stream of a
// whole program stays L1-resident next to the data it touches. pre is the
// folded static cycle charge accrued since the last time-sync point (block
// entry or the previous load) up to — but excluding — this op, used to
// reconstruct exact times at loads, traps and mid-block resumes. Cold
// operands (constants, trap metadata, profiling slots) live in the parallel
// taux array at the same index.
//
// Packing limits (checked by compileThreaded; violations make the program
// ineligible, never wrong): register indices fit uint16, array ids fit
// uint8, folded charges fit int32. Queue micro-ops reuse the fields: arr
// holds the queue id (fits uint8) and b the edge tag (fits uint16). Unused
// operand fields hold the wrapped noReg sentinel and are never read.
type top struct {
	u    tuop
	arr  uint8
	dst  uint16
	a, b uint16
	pre  int32
}

// taux holds the micro-op operands that only matter off the hot path:
// constants, the originating pc and operator (exact trap errors, yield
// resume points) and the profiling slot. Indexed in lockstep with the ops
// array.
type taux struct {
	immI  int64
	immF  float64
	pc    int32
	tac   int32
	binop ir.BinOp // originating operator, for exact trap errors
}

// Terminator kinds. Every block ends at a real control transfer: queue
// operations live inside blocks and fallthrough blocks cannot arise when
// only branches end blocks.
const (
	ttJp uint8 = iota
	ttFjp
	ttJr // canonical driver dispatch; runtime-guarded
	ttHalt
)

// tref locates a pc inside the compiled form: block index plus op index,
// where op == len(ops) designates the block terminator. Branch successors
// are trefs too, because branch targets are not block leaders and routinely
// land mid-block.
type tref struct{ blk, op int32 }

// tblock is one compiled basic block: the fused op array, the folded tail
// charge from the last sync point to the terminator, and the terminator.
type tblock struct {
	ops    []top
	aux    []taux // cold operands, indexed in lockstep with ops
	tail   int64  // static cycles from the last sync point to the terminator
	term   uint8
	tlat   int64 // terminator latency (branch occupancy)
	termPC int32 // pc of the terminator instruction
	tgt    tref  // taken successor (Jp/Fjp/Jr); may be mid-block
	fall   tref  // fallthrough successor (Fjp)
	a      int32 // terminator register: Fjp condition, Jr target
}

// tprog is one compiled program. Immutable after compileThreaded; shared
// between machines through the content-addressed cache.
type tprog struct {
	ok     bool
	reason string // first eligibility failure, for tests and diagnostics
	blocks []tblock
	pcmap  []tref
	kinds  []ir.Kind
	named  []isa.Reg // registers boxed back into c.regs at halt (live-outs)
	maxArr int32     // highest array id referenced, for machine binding
}

// preAt returns the folded charge already accounted for at (b, op): the
// op's pre, or the block tail when entering at the terminator.
func preAt(b *tblock, op int) int64 {
	if op < len(b.ops) {
		return int64(b.ops[op].pre)
	}
	return b.tail
}

// pcAt returns the program counter of (b, op).
func pcAt(b *tblock, op int) int {
	if op < len(b.ops) {
		return int(b.aux[op].pc)
	}
	return int(b.termPC)
}

// driverLen is the length of the canonical secondary-thread driver prologue
// (deq fn / fjp fn -> halt / jr fn); the only runtime Jr target a
// cooperating primary ever dispatches is driverLen itself.
const driverLen = 3

// ---------------------------------------------------------------------------
// Kind unification

// kindSolver is a union-find over registers with a kind label per class.
type kindSolver struct {
	parent []int32
	kind   []int8 // -1 unknown, otherwise int8(ir.Kind)
	bad    bool
}

func newKindSolver(n int) *kindSolver {
	s := &kindSolver{parent: make([]int32, n), kind: make([]int8, n)}
	for i := range s.parent {
		s.parent[i] = int32(i)
		s.kind[i] = -1
	}
	return s
}

func (s *kindSolver) find(r int32) int32 {
	for s.parent[r] != r {
		s.parent[r] = s.parent[s.parent[r]]
		r = s.parent[r]
	}
	return r
}

func (s *kindSolver) union(a, b int32) {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	if s.kind[ra] >= 0 && s.kind[rb] >= 0 && s.kind[ra] != s.kind[rb] {
		s.bad = true
		return
	}
	if s.kind[rb] >= 0 {
		s.kind[ra] = s.kind[rb]
	}
	s.parent[rb] = ra
}

func (s *kindSolver) set(r int32, k ir.Kind) {
	root := s.find(r)
	if s.kind[root] >= 0 && s.kind[root] != int8(k) {
		s.bad = true
		return
	}
	s.kind[root] = int8(k)
}

// kindOf returns the solved kind of r; unconstrained registers default to
// F64, matching the zero interp.Value's kind.
func (s *kindSolver) kindOf(r isa.Reg) ir.Kind {
	root := s.find(int32(r))
	if s.kind[root] < 0 {
		return ir.F64
	}
	return ir.Kind(s.kind[root])
}

// ---------------------------------------------------------------------------
// Bitsets for the definite-assignment dataflow

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int32)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) has(i int32) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

func (b bitset) copyFrom(o bitset) { copy(b, o) }

// intersectWith ands o into b and reports whether b changed.
func (b bitset) intersectWith(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] & o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// ---------------------------------------------------------------------------
// Per-instruction read/write sets

// instrReads appends the registers instruction in reads to dst.
func instrReads(in *isa.Instr, dst []isa.Reg) []isa.Reg {
	switch in.Op {
	case isa.Mov, isa.Un, isa.Load, isa.Enq, isa.Fjp, isa.Jr:
		dst = append(dst, in.A)
	case isa.Bin, isa.Store:
		dst = append(dst, in.A, in.B)
	}
	return dst
}

// instrWrite returns the register in writes, or isa.NoReg.
func instrWrite(in *isa.Instr) isa.Reg {
	switch in.Op {
	case isa.ConstF, isa.ConstI, isa.Mov, isa.Bin, isa.Un, isa.Load, isa.Deq:
		return in.Dst
	}
	return isa.NoReg
}

// staticLat returns the fixed latency of a non-terminator instruction,
// exactly as the reference step charges it (note: Bin/Un use the
// instruction's K annotation, not the solved operand kind).
func staticLat(in *isa.Instr, t *cost.Table) int64 {
	switch in.Op {
	case isa.Nop:
		return 1
	case isa.ConstF, isa.ConstI:
		return t.Const
	case isa.Mov:
		return t.Mov
	case isa.Bin:
		return t.Bin(in.BinOp, in.K)
	case isa.Un:
		return t.Un(in.UnOp, in.K)
	case isa.Store:
		return t.Store
	}
	return 0
}

// ---------------------------------------------------------------------------
// The translation pass

// compileThreaded lowers one program, returning an ineligible tprog (with
// the reason recorded) rather than an error when any soundness check fails.
func compileThreaded(p *isa.Program, t cost.Table) *tprog {
	bad := func(format string, args ...any) *tprog {
		return &tprog{ok: false, reason: fmt.Sprintf(format, args...)}
	}
	n := len(p.Instrs)
	if n == 0 {
		return bad("empty program")
	}
	if p.NRegs < 0 || p.NRegs > 1<<20 {
		return bad("implausible register count %d", p.NRegs)
	}
	if p.NRegs > math.MaxUint16 {
		return bad("register count %d outside the packed encoding", p.NRegs)
	}

	// --- structural checks: opcodes, register bounds, branch targets, the
	// canonical driver shape, and no falling off the end of the program.
	isDriver := n > driverLen &&
		p.Instrs[0].Op == isa.Deq && p.Instrs[1].Op == isa.Fjp && p.Instrs[2].Op == isa.Jr
	inRange := func(r isa.Reg) bool { return r >= 0 && int(r) < p.NRegs }
	var scratch []isa.Reg
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		switch in.Op {
		case isa.Nop, isa.ConstF, isa.ConstI, isa.Mov, isa.Bin, isa.Un,
			isa.Load, isa.Store, isa.Enq, isa.Deq, isa.Fjp, isa.Jp, isa.Jr, isa.Halt:
		default:
			return bad("pc %d: unknown opcode %s", pc, in.Op)
		}
		scratch = instrReads(in, scratch[:0])
		for _, r := range scratch {
			if !inRange(r) {
				return bad("pc %d: read of out-of-range register %d", pc, r)
			}
		}
		if w := instrWrite(in); w != isa.NoReg && !inRange(w) {
			return bad("pc %d: write to out-of-range register %d", pc, w)
		}
		switch in.Op {
		case isa.Fjp, isa.Jp:
			if in.Tgt < 0 || int(in.Tgt) >= n {
				return bad("pc %d: branch target %d out of program", pc, in.Tgt)
			}
		case isa.Jr:
			if !(isDriver && pc == 2) {
				return bad("pc %d: indirect jump outside the canonical driver", pc)
			}
		}
		// Every instruction that can reach pc+1 needs pc+1 to exist.
		fallsThrough := true
		switch in.Op {
		case isa.Jp, isa.Jr, isa.Halt:
			fallsThrough = false
		}
		if fallsThrough && pc+1 >= n {
			return bad("pc %d: %s falls off the end of the program", pc, in.Op)
		}
	}

	// --- kind unification.
	ks := newKindSolver(p.NRegs)
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		switch in.Op {
		case isa.ConstF:
			ks.set(int32(in.Dst), ir.F64)
		case isa.ConstI:
			ks.set(int32(in.Dst), ir.I64)
		case isa.Mov:
			ks.union(int32(in.Dst), int32(in.A))
		case isa.Bin:
			ks.union(int32(in.A), int32(in.B))
			if in.BinOp.IsCompare() {
				ks.set(int32(in.Dst), ir.I64)
			} else {
				ks.union(int32(in.Dst), int32(in.A))
			}
		case isa.Un:
			switch in.UnOp {
			case ir.Neg, ir.Abs:
				ks.union(int32(in.Dst), int32(in.A))
			case ir.Not:
				ks.set(int32(in.A), ir.I64)
				ks.set(int32(in.Dst), ir.I64)
			case ir.Sqrt, ir.Exp, ir.Log, ir.Floor:
				ks.set(int32(in.A), ir.F64)
				ks.set(int32(in.Dst), ir.F64)
			case ir.CvtIF:
				ks.set(int32(in.A), ir.I64)
				ks.set(int32(in.Dst), ir.F64)
			case ir.CvtFI:
				ks.set(int32(in.A), ir.F64)
				ks.set(int32(in.Dst), ir.I64)
			default:
				return bad("pc %d: unknown unary op %s", pc, in.UnOp)
			}
		case isa.Load:
			ks.set(int32(in.A), ir.I64)
			ks.set(int32(in.Dst), in.K)
		case isa.Store:
			ks.set(int32(in.A), ir.I64)
			ks.set(int32(in.B), in.K)
		case isa.Fjp, isa.Jr:
			ks.set(int32(in.A), ir.I64)
			// Enq boxes with the solved kind, Deq guards at runtime: no
			// constraints from the queue ops themselves.
		}
		if ks.bad {
			return bad("pc %d: register kind conflict", pc)
		}
	}

	// --- block partition: maximal straight-line runs ending at a control
	// transfer. No leader set is needed — the walk itself defines blocks,
	// and branch successors are resolved to (block, op) refs afterwards.
	tp := &tprog{
		ok:     true,
		pcmap:  make([]tref, n),
		kinds:  make([]ir.Kind, p.NRegs),
		maxArr: -1,
	}
	for r := 0; r < p.NRegs; r++ {
		tp.kinds[r] = ks.kindOf(isa.Reg(r))
	}

	for pc := 0; pc < n; {
		bi := int32(len(tp.blocks))
		b := tblock{termPC: -1, a: -1}
		var acc int64 // folded charge since the last sync point
	body:
		for {
			in := &p.Instrs[pc]
			switch in.Op {
			case isa.Fjp, isa.Jp, isa.Jr, isa.Halt:
				b.termPC = int32(pc)
				b.tail = acc
				switch in.Op {
				case isa.Fjp:
					b.term, b.tlat = ttFjp, t.Branch
					b.a = int32(in.A)
				case isa.Jp:
					b.term, b.tlat = ttJp, t.Branch
				case isa.Jr:
					b.term, b.tlat = ttJr, t.Branch
					b.a = int32(in.A)
				case isa.Halt:
					b.term = ttHalt
				}
				tp.pcmap[pc] = tref{bi, int32(len(b.ops))}
				pc++
				break body
			}
			// Body op.
			if acc > math.MaxInt32 {
				return bad("pc %d: folded charge %d overflows the packed encoding", pc, acc)
			}
			o := top{
				dst: uint16(in.Dst), a: uint16(in.A), b: uint16(in.B),
				pre: int32(acc),
			}
			ax := taux{
				immI: in.ImmI, immF: in.ImmF,
				pc: int32(pc), tac: in.Tac, binop: in.BinOp,
			}
			sync := false
			switch in.Op {
			case isa.Nop:
				o.u = tNop
			case isa.ConstF:
				o.u = tConstF
			case isa.ConstI:
				o.u = tConstI
			case isa.Mov:
				if ks.kindOf(in.A) == ir.F64 {
					o.u = tMovF
				} else {
					o.u = tMovI
				}
			case isa.Bin:
				u, ok := binTuop(in.BinOp, ks.kindOf(in.A))
				if !ok {
					return bad("pc %d: operator %s undefined on solved kind", pc, in.BinOp)
				}
				o.u = u
			case isa.Un:
				switch in.UnOp {
				case ir.Neg:
					if ks.kindOf(in.A) == ir.F64 {
						o.u = tNegF
					} else {
						o.u = tNegI
					}
				case ir.Abs:
					if ks.kindOf(in.A) == ir.F64 {
						o.u = tAbsF
					} else {
						o.u = tAbsI
					}
				case ir.Not:
					o.u = tNotI
				case ir.Sqrt:
					o.u = tSqrt
				case ir.Exp:
					o.u = tExp
				case ir.Log:
					o.u = tLog
				case ir.Floor:
					o.u = tFloor
				case ir.CvtIF:
					o.u = tCvtIF
				case ir.CvtFI:
					o.u = tCvtFI
				}
			case isa.Load:
				if in.K == ir.F64 {
					o.u = tLoadF
				} else {
					o.u = tLoadI
				}
				sync = true
			case isa.Store:
				if in.K == ir.F64 {
					o.u = tStoreF
				} else {
					o.u = tStoreI
				}
			case isa.Enq, isa.Deq:
				// Queue micro-ops pack the queue id into arr and the edge tag
				// into b; they re-synchronize time dynamically like loads.
				if in.Q < 0 || in.Q > math.MaxUint8 {
					return bad("pc %d: queue id %d outside the packed encoding", pc, in.Q)
				}
				if in.Edge < 0 || in.Edge > math.MaxUint16 {
					return bad("pc %d: edge tag %d outside the packed encoding", pc, in.Edge)
				}
				o.arr = uint8(in.Q)
				o.b = uint16(in.Edge)
				if in.Op == isa.Enq {
					if ks.kindOf(in.A) == ir.F64 {
						o.u = tEnqF
					} else {
						o.u = tEnqI
					}
				} else {
					if ks.kindOf(in.Dst) == ir.F64 {
						o.u = tDeqF
					} else {
						o.u = tDeqI
					}
				}
				sync = true
			}
			if in.Op == isa.Load || in.Op == isa.Store {
				if in.Arr < 0 || in.Arr > math.MaxUint8 {
					return bad("pc %d: array id %d outside the packed encoding", pc, in.Arr)
				}
				o.arr = uint8(in.Arr)
				if in.Arr > tp.maxArr {
					tp.maxArr = in.Arr
				}
			}
			tp.pcmap[pc] = tref{bi, int32(len(b.ops))}
			b.ops = append(b.ops, o)
			b.aux = append(b.aux, ax)
			if sync {
				acc = 0 // the op re-synchronizes time dynamically
			} else {
				acc += staticLat(in, &t)
			}
			pc++
		}
		tp.blocks = append(tp.blocks, b)
	}

	// Resolve branch successors now that every pc has its (block, op) ref;
	// taken targets routinely land mid-block (targets are not leaders).
	for i := range tp.blocks {
		b := &tp.blocks[i]
		in := &p.Instrs[b.termPC]
		switch b.term {
		case ttJp:
			b.tgt = tp.pcmap[in.Tgt]
		case ttFjp:
			b.tgt = tp.pcmap[in.Tgt]
			b.fall = tp.pcmap[b.termPC+1]
		case ttJr:
			b.tgt = tp.pcmap[driverLen]
		}
	}

	// --- definite assignment over the block CFG.
	if reason := checkDefiniteAssignment(p, tp); reason != "" {
		return bad("%s", reason)
	}

	// Live-out registers boxed back at halt, in deterministic order.
	for r := range p.RegName {
		tp.named = append(tp.named, r)
	}
	sort.Slice(tp.named, func(i, j int) bool { return tp.named[i] < tp.named[j] })

	return tp
}

// binTuop fuses a binary operator with the solved operand kind.
func binTuop(op ir.BinOp, k ir.Kind) (tuop, bool) {
	if k == ir.F64 {
		switch op {
		case ir.Add:
			return tAddF, true
		case ir.Sub:
			return tSubF, true
		case ir.Mul:
			return tMulF, true
		case ir.Div:
			return tDivF, true
		case ir.Min:
			return tMinF, true
		case ir.Max:
			return tMaxF, true
		case ir.Eq:
			return tEqF, true
		case ir.Ne:
			return tNeF, true
		case ir.Lt:
			return tLtF, true
		case ir.Le:
			return tLeF, true
		case ir.Gt:
			return tGtF, true
		case ir.Ge:
			return tGeF, true
		}
		return 0, false // Rem/And/Or/Xor/Shl/Shr are undefined on f64
	}
	switch op {
	case ir.Add:
		return tAddI, true
	case ir.Sub:
		return tSubI, true
	case ir.Mul:
		return tMulI, true
	case ir.Div:
		return tDivI, true
	case ir.Rem:
		return tRemI, true
	case ir.Min:
		return tMinI, true
	case ir.Max:
		return tMaxI, true
	case ir.And:
		return tAndI, true
	case ir.Or:
		return tOrI, true
	case ir.Xor:
		return tXorI, true
	case ir.Shl:
		return tShlI, true
	case ir.Shr:
		return tShrI, true
	case ir.Eq:
		return tEqI, true
	case ir.Ne:
		return tNeI, true
	case ir.Lt:
		return tLtI, true
	case ir.Le:
		return tLeI, true
	case ir.Gt:
		return tGtI, true
	case ir.Ge:
		return tGeI, true
	}
	return 0, false
}

// checkDefiniteAssignment runs the must-assign dataflow and returns a
// non-empty reason string on failure. On success it also verifies the
// live-out condition: every RegName register is definitely assigned at each
// reachable halt, or never assigned anywhere.
//
// The analysis runs over its own fine-grained partition — leaders at every
// branch target and after every control transfer — independent of the
// coarse execution blocks: joins only happen at branch targets, and every
// mid-block entry the runtime can take (taken branches, comm and yield
// resumes) re-enters with unchanged register state, so a proof over this
// CFG covers every path the engine executes.
func checkDefiniteAssignment(p *isa.Program, tp *tprog) string {
	n := len(p.Instrs)
	nr := p.NRegs
	if nr == 0 {
		nr = 1 // keep the bitsets non-degenerate
	}

	leader := make([]bool, n)
	leader[0] = true
	mark := func(pc int) {
		if pc >= 0 && pc < n {
			leader[pc] = true
		}
	}
	for pc := range p.Instrs {
		switch in := &p.Instrs[pc]; in.Op {
		case isa.Fjp:
			mark(int(in.Tgt))
			mark(pc + 1)
		case isa.Jp:
			mark(int(in.Tgt))
			mark(pc + 1)
		case isa.Jr:
			mark(driverLen)
			mark(pc + 1)
		case isa.Halt:
			mark(pc + 1)
		}
	}
	blkIdx := make([]int32, n) // pc -> analysis block
	var starts []int32
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			starts = append(starts, int32(pc))
		}
		blkIdx[pc] = int32(len(starts) - 1)
	}
	nb := len(starts)
	endOf := func(bi int32) int32 {
		if int(bi)+1 < nb {
			return starts[bi+1] - 1
		}
		return int32(n - 1)
	}
	// succs relies on the structural pass: an instruction that can fall
	// through always has a pc+1 (checked), so end+1 is in range below.
	succs := func(bi int32, dst []int32) []int32 {
		end := endOf(bi)
		switch in := &p.Instrs[end]; in.Op {
		case isa.Jp:
			dst = append(dst, blkIdx[in.Tgt])
		case isa.Jr:
			dst = append(dst, blkIdx[driverLen])
		case isa.Fjp:
			dst = append(dst, blkIdx[in.Tgt], blkIdx[end+1])
		case isa.Halt:
		default: // falls through into the next leader
			dst = append(dst, blkIdx[end+1])
		}
		return dst
	}

	// Reachability from the entry block (pc 0 is block 0).
	reach := make([]bool, nb)
	reach[0] = true
	stack := []int32{0}
	var sc []int32
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sc = succs(bi, sc[:0])
		for _, s := range sc {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}

	// Gen (assigned) sets per block.
	def := make([]bitset, nb)
	for bi := 0; bi < nb; bi++ {
		def[bi] = newBitset(nr)
		for pc := starts[bi]; pc <= endOf(int32(bi)); pc++ {
			if w := instrWrite(&p.Instrs[pc]); w != isa.NoReg {
				def[bi].set(int32(w))
			}
		}
	}

	// Must-assign dataflow: IN[b] = ∩ OUT[pred]; OUT[b] = IN[b] ∪ def[b].
	in := make([]bitset, nb)
	out := make([]bitset, nb)
	for bi := 0; bi < nb; bi++ {
		in[bi] = newBitset(nr)
		out[bi] = newBitset(nr)
		if bi != 0 {
			in[bi].fill()
		}
		out[bi].copyFrom(in[bi])
		for i := range out[bi] {
			out[bi][i] |= def[bi][i]
		}
	}
	changed := true
	for changed {
		changed = false
		for bi := 0; bi < nb; bi++ {
			if !reach[bi] {
				continue
			}
			sc = succs(int32(bi), sc[:0])
			for _, s := range sc {
				if !reach[s] {
					continue
				}
				if in[s].intersectWith(out[bi]) {
					for i := range out[s] {
						n := in[s][i] | def[s][i]
						if n != out[s][i] {
							out[s][i] = n
						}
					}
					changed = true
				}
			}
		}
	}

	// Check every read inside each reachable block against the running
	// assigned set, and apply the live-out rule at reachable halts.
	cur := newBitset(nr)
	everDef := newBitset(nr)
	for bi := 0; bi < nb; bi++ {
		for i := range everDef {
			everDef[i] |= def[bi][i]
		}
	}
	var reads []isa.Reg
	for bi := 0; bi < nb; bi++ {
		if !reach[bi] {
			continue
		}
		cur.copyFrom(in[bi])
		end := endOf(int32(bi))
		for pc := starts[bi]; pc <= end; pc++ {
			inst := &p.Instrs[pc]
			reads = instrReads(inst, reads[:0])
			for _, r := range reads {
				if !cur.has(int32(r)) {
					return fmt.Sprintf("pc %d: read of possibly-unassigned register %d", pc, r)
				}
			}
			if w := instrWrite(inst); w != isa.NoReg {
				cur.set(int32(w))
			}
		}
		if p.Instrs[end].Op == isa.Halt && len(p.RegName) > 0 {
			for r := range p.RegName {
				if !cur.has(int32(r)) && everDef.has(int32(r)) {
					return fmt.Sprintf("pc %d: live-out register %d possibly unassigned at halt", end, r)
				}
			}
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// Content-addressed compile cache

// tcacheCap bounds the package-level compile cache. FIFO eviction: the
// cache exists to warm-start repeated simulations of the same artifacts
// (fgpd's compile cache, the experiment runner, benchmark repeats), all of
// which re-request recent keys.
const tcacheCap = 512

var tcache = struct {
	sync.Mutex
	m     map[[32]byte]*tprog
	order [][32]byte
}{m: map[[32]byte]*tprog{}}

// tkey hashes everything the translation depends on: the instruction
// stream, register count, region-mark pcs (leader rules), live-out names
// (halt materialization) and the cost table (folded charges).
func tkey(p *isa.Program, t cost.Table) [32]byte {
	h := sha256.New()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wi(int64(p.NRegs))
	wi(int64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		wi(int64(in.Op))
		wi(int64(in.BinOp))
		wi(int64(in.UnOp))
		wi(int64(in.K))
		wi(int64(in.Dst))
		wi(int64(in.A))
		wi(int64(in.B))
		wi(int64(math.Float64bits(in.ImmF)))
		wi(in.ImmI)
		wi(int64(in.Arr))
		wi(int64(in.Q))
		wi(int64(in.Tgt))
		wi(int64(in.Edge))
		wi(int64(in.Tac))
	}
	wi(int64(len(p.Marks)))
	for _, mk := range p.Marks {
		wi(int64(mk.PC))
	}
	named := make([]isa.Reg, 0, len(p.RegName))
	for r := range p.RegName {
		named = append(named, r)
	}
	sort.Slice(named, func(i, j int) bool { return named[i] < named[j] })
	wi(int64(len(named)))
	for _, r := range named {
		wi(int64(r))
	}
	for _, v := range []int64{
		t.IntALU, t.IntMul, t.IntDiv, t.FAdd, t.FMul, t.FDiv, t.FSqrt,
		t.FMath, t.Cvt, t.Mov, t.Const, t.Branch, t.Store, t.L1Hit,
		t.L1Miss, t.Enq, t.Deq,
	} {
		wi(v)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// tptrCache short-circuits threadedFor for a program pointer already seen
// with the same cost table: artifacts are immutable, so pointer identity
// plus an equal (comparable, all-scalar) cost table proves the cached
// translation is the right one without rehashing the program every Run.
//
// Unlike the content cache it is keyed by pointer, so every freshly
// compiled artifact adds an entry that can never be hit again once the
// artifact is dropped — unbounded, it pins dead programs and their
// translations for the life of the process (and its GC scan cost grows
// with every cold compile). tptrCount bounds it: past tptrCap the whole
// map is discarded and rebuilt, which at worst costs one content-key hash
// per live program on the next Run.
var (
	tptrCache sync.Map // *isa.Program -> *tptrEntry
	tptrCount atomic.Int64
)

const tptrCap = 1024

type tptrEntry struct {
	t  cost.Table
	tp *tprog
}

// threadedFor returns the cached translation of p under cost table t,
// compiling (outside the lock) on a miss.
func threadedFor(p *isa.Program, t cost.Table) *tprog {
	if e, ok := tptrCache.Load(p); ok {
		if ent := e.(*tptrEntry); ent.t == t {
			return ent.tp
		}
	}
	key := tkey(p, t)
	tcache.Lock()
	if tp, ok := tcache.m[key]; ok {
		tcache.Unlock()
		return tp
	}
	tcache.Unlock()

	tp := compileThreaded(p, t)

	tcache.Lock()
	if existing, ok := tcache.m[key]; ok {
		tp = existing // a concurrent compile won the race; share its result
	} else {
		if len(tcache.order) >= tcacheCap {
			oldest := tcache.order[0]
			tcache.order = tcache.order[1:]
			delete(tcache.m, oldest)
		}
		tcache.m[key] = tp
		tcache.order = append(tcache.order, key)
	}
	tcache.Unlock()
	if tptrCount.Add(1) > tptrCap {
		// Reset rather than evict: sync.Map has no cheap LRU, and a full
		// rebuild is one content-cache hit per live program. Racing
		// stores may survive the sweep or be dropped; either is correct
		// for a cache, and the counter only needs to be approximate.
		tptrCache.Range(func(k, _ any) bool {
			tptrCache.Delete(k)
			return true
		})
		tptrCount.Store(0)
	}
	tptrCache.Store(p, &tptrEntry{t: t, tp: tp})
	return tp
}

// PrecompileThreaded populates the threaded engine's translation cache for
// the given programs, so the first threaded simulation of a freshly
// compiled artifact starts warm. The compiler driver calls it right after
// static verification succeeds: closures are only ever built from verified
// programs.
func PrecompileThreaded(progs []*isa.Program, t cost.Table) {
	for _, p := range progs {
		if p != nil {
			threadedFor(p, t)
		}
	}
}
