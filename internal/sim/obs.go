// Observability plumbing: the machine-side half of internal/obs. Events are
// appended to per-core buffers in each core's execution order while the run
// is in flight, then merged into the canonical (Time, Core)-stable order and
// delivered to the sink. Because both engines execute every core through the
// identical per-core sequence, the canonical stream is bit-identical between
// them — the determinism tests and the fuzz oracle enforce this.

package sim

import (
	"fgp/internal/isa"
	"fgp/internal/obs"
	"fgp/internal/queue"
)

// attachObs arms the emission paths for one run.
func (m *Machine) attachObs(sink obs.Sink) {
	m.sink = sink
	mask := sink.Mask()
	m.obsRetire = mask&obs.MRetire != 0
	m.obsQueue = mask&obs.MQueue != 0
	m.obsStall = mask&obs.MStall != 0
	m.obsRegion = mask&obs.MRegion != 0
	m.obsBuf = make([][]obs.Event, len(m.cores))
	if m.obsRegion {
		m.marks = make([]map[int][]isa.Mark, len(m.cores))
		m.regionStack = make([][]int32, len(m.cores))
		for i, c := range m.cores {
			if len(c.prog.Marks) == 0 {
				continue
			}
			byPC := make(map[int][]isa.Mark, len(c.prog.Marks))
			for _, mk := range c.prog.Marks {
				byPC[mk.PC] = append(byPC[mk.PC], mk)
			}
			m.marks[i] = byPC
		}
	}
}

// drainObs merges the per-core buffers into canonical order and delivers
// the stream. It runs even when the simulation errored, so a partial trace
// of a deadlocked run survives.
func (m *Machine) drainObs(sink obs.Sink) error {
	sink.Begin(m.obsMeta())
	total := 0
	for _, b := range m.obsBuf {
		total += len(b)
	}
	all := make([]obs.Event, 0, total)
	for _, b := range m.obsBuf {
		all = append(all, b...)
	}
	obs.Canonicalize(all)
	for i := range all {
		sink.Emit(all[i])
	}
	return sink.Close()
}

// obsMeta describes the machine to the sink.
func (m *Machine) obsMeta() obs.Meta {
	meta := obs.Meta{Cores: len(m.cores), TransferLatency: m.cfg.TransferLatency}
	for _, q := range m.queues {
		if q != nil {
			meta.Queues = append(meta.Queues, obs.QueueMeta{
				ID: q.ID, Src: q.Src, Dst: q.Dst,
				Class: q.Class.String(), Cap: q.Cap,
			})
		}
	}
	names := map[int32]string{}
	for _, c := range m.cores {
		for _, mk := range c.prog.Marks {
			if mk.Enter && mk.Name != "" {
				names[mk.Region] = mk.Name
			}
		}
	}
	if len(names) > 0 {
		meta.RegionNames = names
	}
	return meta
}

// emit appends one event to a core's buffer.
func (m *Machine) emit(core int, e obs.Event) {
	e.Core = int16(core)
	m.obsBuf[core] = append(m.obsBuf[core], e)
}

// evStall emits a stall window [t0, t1) with its matching end marker.
// Zero-length windows are suppressed, so only real stalls appear.
func (m *Machine) evStall(core int, cause obs.StallCause, t0, t1 int64) {
	if t0 == t1 {
		return
	}
	m.emit(core, obs.Event{Kind: obs.KStallBegin, Cause: cause, Queue: -1, Time: t0, End: t1})
	m.emit(core, obs.Event{Kind: obs.KStallEnd, Cause: cause, Queue: -1, Time: t1, End: t1})
}

// evQueue emits queue telemetry after a push or pop: occupancy after the
// operation plus the transfer sequence number, which pairs each dequeue
// with its enqueue (FIFO order: the k-th pop receives the k-th push).
func (m *Machine) evQueue(kind obs.Kind, core int, q *queue.Queue, t int64) {
	var seq int64
	if kind == obs.KEnq {
		seq = q.Transfers - 1
	} else {
		seq = q.Pops - 1
	}
	m.emit(core, obs.Event{
		Kind: kind, Queue: q.ID, Occ: int32(q.Len()), Seq: int32(seq),
		Time: t, End: t,
	})
}

// evComplete fires the region marks and the retire event of one completed
// instruction: pc ran on core over [start, end). Marks fire at completion,
// never on a blocked enqueue/dequeue retry, so each boundary fires once.
func (m *Machine) evComplete(core, pc int, op isa.Op, start, end int64) {
	if m.obsRegion && m.marks[core] != nil {
		if mks, ok := m.marks[core][pc]; ok {
			st := m.regionStack[core]
			for _, mk := range mks {
				if mk.Enter {
					st = append(st, mk.Region)
					m.emit(core, obs.Event{Kind: obs.KRegionEnter, Region: mk.Region, Queue: -1, Time: start, End: start})
				} else if n := len(st); n > 0 && st[n-1] == mk.Region {
					st = st[:n-1]
					m.emit(core, obs.Event{Kind: obs.KRegionExit, Region: mk.Region, Queue: -1, Time: start, End: start})
				}
			}
			m.regionStack[core] = st
		}
	}
	if m.obsRetire {
		m.emit(core, obs.Event{Kind: obs.KRetire, Op: uint8(op), PC: int32(pc), Queue: -1, Time: start, End: end})
	}
}
