package sim_test

// Determinism tests: the burst engine must be a pure host-speed
// optimization. For every kernel of the paper's evaluation, at 2 and 4
// cores, with and without control-flow speculation, the full simulation
// Result — cycles, per-core cycles and instruction counts, enqueue and
// dequeue stalls, queue statistics, cache statistics, and live-out values —
// must be bit-identical between the burst engine and the retained
// per-instruction reference scheduler. Any divergence is a correctness bug
// in burst execution, not a tolerable approximation.

import (
	"fmt"
	"reflect"
	"testing"

	"fgp/internal/core"
	"fgp/internal/kernels"
	"fgp/internal/obs"
	"fgp/internal/sim"
)

// runEngines compiles nothing: it simulates an existing artifact once per
// engine and returns all three results.
func runEngines(t *testing.T, a *core.Artifact, cfg sim.Config) (burst, threaded, ref *sim.Result) {
	t.Helper()
	cfg.Reference = false
	cfg.Engine = sim.EngineBurst
	burst, err := a.Run(cfg)
	if err != nil {
		t.Fatalf("burst run: %v", err)
	}
	cfg.Engine = sim.EngineThreaded
	threaded, err = a.Run(cfg)
	if err != nil {
		t.Fatalf("threaded run: %v", err)
	}
	cfg.Engine = sim.EngineReference
	ref, err = a.Run(cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return burst, threaded, ref
}

// diffAllEngines asserts both optimized engines against the reference.
func diffAllEngines(t *testing.T, label string, burst, threaded, ref *sim.Result) {
	t.Helper()
	diffResults(t, label+"/burst", burst, ref)
	diffResults(t, label+"/threaded", threaded, ref)
}

// diffResults compares every observable field of two results.
func diffResults(t *testing.T, label string, burst, ref *sim.Result) {
	t.Helper()
	type cmp struct {
		name      string
		got, want any
	}
	checks := []cmp{
		{"Cycles", burst.Cycles, ref.Cycles},
		{"PerCoreCycles", burst.PerCoreCycles, ref.PerCoreCycles},
		{"PerCoreInstrs", burst.PerCoreInstrs, ref.PerCoreInstrs},
		{"EnqStalls", burst.EnqStalls, ref.EnqStalls},
		{"DeqStalls", burst.DeqStalls, ref.DeqStalls},
		{"QueuesUsed", burst.QueuesUsed, ref.QueuesUsed},
		{"PairsUsed", burst.PairsUsed, ref.PairsUsed},
		{"Transfers", burst.Transfers, ref.Transfers},
		{"LoadHits", burst.LoadHits, ref.LoadHits},
		{"LoadMisses", burst.LoadMisses, ref.LoadMisses},
		{"LiveOut", burst.LiveOut, ref.LiveOut},
		{"QueueHighWater", burst.QueueHighWater, ref.QueueHighWater},
		{"MemPortBusyCycles", burst.MemPortBusyCycles, ref.MemPortBusyCycles},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s: %s diverges: got %v, reference %v", label, c.name, c.got, c.want)
		}
	}
}

// TestBurstMatchesReferenceAllKernels is the tentpole guarantee: for all 18
// kernels × {2, 4} cores × {speculation off, on}, burst-mode results are
// identical to the reference per-instruction scheduler.
func TestBurstMatchesReferenceAllKernels(t *testing.T) {
	for _, k := range kernels.All() {
		for _, cores := range []int{2, 4} {
			for _, spec := range []bool{false, true} {
				k, cores, spec := k, cores, spec
				name := fmt.Sprintf("%s/%dcore/spec=%v", k.Name, cores, spec)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					opt := core.DefaultOptions(cores)
					opt.Speculate = spec
					a, err := core.Compile(k.Build(), opt)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					burst, threaded, ref := runEngines(t, a, a.MachineConfig())
					diffAllEngines(t, name, burst, threaded, ref)
				})
			}
		}
	}
}

// TestBurstMatchesReferenceSequential covers the 1-core compilation path
// (the baseline of every speedup and the profiling runs).
func TestBurstMatchesReferenceSequential(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			a, err := core.CompileSequential(k.Build())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			burst, threaded, ref := runEngines(t, a, a.MachineConfig())
			diffAllEngines(t, k.Name, burst, threaded, ref)
		})
	}
}

// TestBurstMatchesReferenceConfigSweep stresses the engine equivalence on
// the machine-parameter axes the figures sweep: transfer latency (Fig 13),
// queue length, disabled memory port, and disabled caches.
func TestBurstMatchesReferenceConfigSweep(t *testing.T) {
	k, err := kernels.ByName("irs-1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Compile(k.Build(), core.DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	mods := map[string]func(*sim.Config){
		"latency50":  func(c *sim.Config) { c.TransferLatency = 50 },
		"latency100": func(c *sim.Config) { c.TransferLatency = 100 },
		"noport":     func(c *sim.Config) { c.MemPortCycles = 0 },
		"bigport":    func(c *sim.Config) { c.MemPortCycles = 128 },
		"nocache":    func(c *sim.Config) { c.Cache.Lines = 0 },
		"debugedges": func(c *sim.Config) { c.DebugEdges = true },
	}
	for name, mod := range mods {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := a.MachineConfig()
			mod(&cfg)
			burst, threaded, ref := runEngines(t, a, cfg)
			diffAllEngines(t, name, burst, threaded, ref)
		})
	}
}

// TestEventStreamMatchesAcrossEngines asserts the tentpole observability
// guarantee: with a sink attached, the burst and reference engines deliver
// the identical canonical event stream — every retire, queue operation,
// stall window and region boundary, bit for bit — and still produce
// identical Results.
func TestEventStreamMatchesAcrossEngines(t *testing.T) {
	for _, name := range []string{"sphot-1", "irs-1", "lammps-1", "umt2k-3"} {
		for _, cores := range []int{2, 3, 4} {
			name, cores := name, cores
			t.Run(fmt.Sprintf("%s/%dcore", name, cores), func(t *testing.T) {
				t.Parallel()
				k, err := kernels.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				a, err := core.Compile(k.Build(), core.DefaultOptions(cores))
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				cfg := a.MachineConfig()
				rRec := obs.NewRecorder()
				cfg.Engine = sim.EngineReference
				cfg.Sink = rRec
				ref, err := a.Run(cfg)
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				for _, engine := range []string{sim.EngineBurst, sim.EngineThreaded} {
					rec := obs.NewRecorder()
					cfg.Engine = engine
					cfg.Sink = rec
					res, err := a.Run(cfg)
					if err != nil {
						t.Fatalf("%s run: %v", engine, err)
					}
					diffResults(t, name+"/"+engine, res, ref)

					if !reflect.DeepEqual(rec.Meta, rRec.Meta) {
						t.Errorf("sink metadata diverges: %s %+v, reference %+v", engine, rec.Meta, rRec.Meta)
					}
					if len(rec.Events) != len(rRec.Events) {
						t.Fatalf("event counts diverge: %s %d, reference %d", engine, len(rec.Events), len(rRec.Events))
					}
					for i := range rec.Events {
						if rec.Events[i] != rRec.Events[i] {
							t.Fatalf("event %d diverges:\n  %-9s %+v\n  reference %+v", i, engine, rec.Events[i], rRec.Events[i])
						}
					}
				}
			})
		}
	}
}

// TestStallAttributionSumsToAggregates asserts the metamorphic invariant
// behind the stall report: per-cause stall windows, summed per core, equal
// the simulator's aggregate EnqStalls/DeqStalls counters exactly, and the
// mem-port windows sum to MemPortBusyCycles' wait share observed per core.
func TestStallAttributionSumsToAggregates(t *testing.T) {
	k, err := kernels.ByName("sphot-1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Compile(k.Build(), core.DefaultOptions(3))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := a.MachineConfig()
	rec := obs.NewRecorder()
	cfg.Sink = rec
	res, err := a.Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	perCore := make([][obs.NumCauses]int64, len(res.PerCoreCycles))
	for _, e := range rec.Events {
		if e.Kind == obs.KStallBegin {
			perCore[e.Core][e.Cause] += e.End - e.Time
		}
	}
	var enqTot, deqTot int64
	for i := range perCore {
		if got, want := perCore[i][obs.CauseDeqEmpty], res.DeqStalls[i]; got != want {
			t.Errorf("core %d: deq-empty stall windows sum to %d, DeqStalls says %d", i, got, want)
		}
		if got, want := perCore[i][obs.CauseEnqFull], res.EnqStalls[i]; got != want {
			t.Errorf("core %d: enq-full stall windows sum to %d, EnqStalls says %d", i, got, want)
		}
		enqTot += res.EnqStalls[i]
		deqTot += res.DeqStalls[i]
	}
	if enqTot+deqTot == 0 {
		t.Fatalf("degenerate test: sphot-1 at 3 cores has no queue stalls at all")
	}
}

// TestBurstVerifiesAgainstInterpreter runs the burst engine through the
// full memory-image verification against the reference interpreter for a
// handful of kernels, closing the loop end-to-end.
func TestBurstVerifiesAgainstInterpreter(t *testing.T) {
	for _, name := range []string{"lammps-1", "irs-2", "umt2k-3", "sphot-1"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, err := kernels.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := core.Compile(k.Build(), core.DefaultOptions(4))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.Verify(a.MachineConfig()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
