package sim_test

// Determinism tests: the burst engine must be a pure host-speed
// optimization. For every kernel of the paper's evaluation, at 2 and 4
// cores, with and without control-flow speculation, the full simulation
// Result — cycles, per-core cycles and instruction counts, enqueue and
// dequeue stalls, queue statistics, cache statistics, and live-out values —
// must be bit-identical between the burst engine and the retained
// per-instruction reference scheduler. Any divergence is a correctness bug
// in burst execution, not a tolerable approximation.

import (
	"fmt"
	"reflect"
	"testing"

	"fgp/internal/core"
	"fgp/internal/kernels"
	"fgp/internal/sim"
)

// runEngines compiles nothing: it simulates an existing artifact once per
// engine and returns both results.
func runEngines(t *testing.T, a *core.Artifact, cfg sim.Config) (burst, ref *sim.Result) {
	t.Helper()
	cfg.Reference = false
	burst, err := a.Run(cfg)
	if err != nil {
		t.Fatalf("burst run: %v", err)
	}
	cfg.Reference = true
	ref, err = a.Run(cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return burst, ref
}

// diffResults compares every observable field of two results.
func diffResults(t *testing.T, label string, burst, ref *sim.Result) {
	t.Helper()
	type cmp struct {
		name      string
		got, want any
	}
	checks := []cmp{
		{"Cycles", burst.Cycles, ref.Cycles},
		{"PerCoreCycles", burst.PerCoreCycles, ref.PerCoreCycles},
		{"PerCoreInstrs", burst.PerCoreInstrs, ref.PerCoreInstrs},
		{"EnqStalls", burst.EnqStalls, ref.EnqStalls},
		{"DeqStalls", burst.DeqStalls, ref.DeqStalls},
		{"QueuesUsed", burst.QueuesUsed, ref.QueuesUsed},
		{"PairsUsed", burst.PairsUsed, ref.PairsUsed},
		{"Transfers", burst.Transfers, ref.Transfers},
		{"LoadHits", burst.LoadHits, ref.LoadHits},
		{"LoadMisses", burst.LoadMisses, ref.LoadMisses},
		{"LiveOut", burst.LiveOut, ref.LiveOut},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s: %s diverges: burst %v, reference %v", label, c.name, c.got, c.want)
		}
	}
}

// TestBurstMatchesReferenceAllKernels is the tentpole guarantee: for all 18
// kernels × {2, 4} cores × {speculation off, on}, burst-mode results are
// identical to the reference per-instruction scheduler.
func TestBurstMatchesReferenceAllKernels(t *testing.T) {
	for _, k := range kernels.All() {
		for _, cores := range []int{2, 4} {
			for _, spec := range []bool{false, true} {
				k, cores, spec := k, cores, spec
				name := fmt.Sprintf("%s/%dcore/spec=%v", k.Name, cores, spec)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					opt := core.DefaultOptions(cores)
					opt.Speculate = spec
					a, err := core.Compile(k.Build(), opt)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					burst, ref := runEngines(t, a, a.MachineConfig())
					diffResults(t, name, burst, ref)
				})
			}
		}
	}
}

// TestBurstMatchesReferenceSequential covers the 1-core compilation path
// (the baseline of every speedup and the profiling runs).
func TestBurstMatchesReferenceSequential(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			a, err := core.CompileSequential(k.Build())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			burst, ref := runEngines(t, a, a.MachineConfig())
			diffResults(t, k.Name, burst, ref)
		})
	}
}

// TestBurstMatchesReferenceConfigSweep stresses the engine equivalence on
// the machine-parameter axes the figures sweep: transfer latency (Fig 13),
// queue length, disabled memory port, and disabled caches.
func TestBurstMatchesReferenceConfigSweep(t *testing.T) {
	k, err := kernels.ByName("irs-1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Compile(k.Build(), core.DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	mods := map[string]func(*sim.Config){
		"latency50":  func(c *sim.Config) { c.TransferLatency = 50 },
		"latency100": func(c *sim.Config) { c.TransferLatency = 100 },
		"noport":     func(c *sim.Config) { c.MemPortCycles = 0 },
		"bigport":    func(c *sim.Config) { c.MemPortCycles = 128 },
		"nocache":    func(c *sim.Config) { c.Cache.Lines = 0 },
		"debugedges": func(c *sim.Config) { c.DebugEdges = true },
	}
	for name, mod := range mods {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := a.MachineConfig()
			mod(&cfg)
			burst, ref := runEngines(t, a, cfg)
			diffResults(t, name, burst, ref)
		})
	}
}

// TestBurstVerifiesAgainstInterpreter runs the burst engine through the
// full memory-image verification against the reference interpreter for a
// handful of kernels, closing the loop end-to-end.
func TestBurstVerifiesAgainstInterpreter(t *testing.T) {
	for _, name := range []string{"lammps-1", "irs-2", "umt2k-3", "sphot-1"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, err := kernels.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := core.Compile(k.Build(), core.DefaultOptions(4))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.Verify(a.MachineConfig()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
