package sim_test

// The enq→deq pairing audit: the observability layer pairs every dequeue
// event with its enqueue through per-queue sequence numbers (the k-th pop
// receives the k-th push), and the Perfetto exporter draws flow arrows from
// exactly that pairing. Region marks ride the same event stream and fire on
// the completion path of the same Enq/Deq instructions — a mark firing on a
// blocked retry, or a burst-engine resequencing bug, would silently shear
// the pairing. This test runs real kernels with everything enabled and
// audits the stream itself.

import (
	"fmt"
	"testing"

	"fgp/internal/core"
	"fgp/internal/kernels"
	"fgp/internal/obs"
)

// TestQueuePairingSurvivesRegionMarks runs kernels with region marks and
// queue telemetry recorded together (plus the queue package's own
// per-pop sequence check and post-run stats audit via DebugEdges) and
// asserts per queue: enqueue and dequeue sequence numbers each count
// 0,1,2,... in stream order, every dequeued sequence was previously
// enqueued, and region events actually interleaved with the queue traffic.
func TestQueuePairingSurvivesRegionMarks(t *testing.T) {
	for _, name := range []string{"sphot-1", "irs-1", "lammps-3"} {
		for _, cores := range []int{2, 4} {
			name, cores := name, cores
			t.Run(fmt.Sprintf("%s/%dcore", name, cores), func(t *testing.T) {
				t.Parallel()
				k, err := kernels.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				a, err := core.Compile(k.Build(), core.DefaultOptions(cores))
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				cfg := a.MachineConfig()
				cfg.DebugEdges = true // per-pop pairing check + post-run stats audit
				rec := obs.NewRecorder()
				cfg.Sink = rec
				if _, err := a.Run(cfg); err != nil {
					t.Fatalf("run: %v", err)
				}

				nextEnq := map[int32]int32{} // queue id -> expected next enq seq
				nextDeq := map[int32]int32{}
				regions := 0
				for i, e := range rec.Events {
					switch e.Kind {
					case obs.KEnq:
						if e.Seq != nextEnq[e.Queue] {
							t.Fatalf("event %d: enq on q%d has seq %d, want %d",
								i, e.Queue, e.Seq, nextEnq[e.Queue])
						}
						nextEnq[e.Queue]++
					case obs.KDeq:
						if e.Seq != nextDeq[e.Queue] {
							t.Fatalf("event %d: deq on q%d has seq %d, want %d",
								i, e.Queue, e.Seq, nextDeq[e.Queue])
						}
						if e.Seq >= nextEnq[e.Queue] {
							// Canonical order is (Time, Core); with nonzero
							// transfer latency a value is always enqueued at
							// an earlier time than it is dequeued, so its
							// enqueue event must already have passed.
							t.Fatalf("event %d: deq of q%d seq %d precedes its enqueue",
								i, e.Queue, e.Seq)
						}
						nextDeq[e.Queue]++
					case obs.KRegionEnter, obs.KRegionExit:
						regions++
					}
				}
				if len(nextEnq) == 0 {
					t.Fatal("degenerate test: no queue traffic recorded")
				}
				if regions == 0 {
					t.Fatal("degenerate test: no region marks recorded")
				}
				for q, n := range nextEnq {
					if nextDeq[q] != n {
						t.Errorf("q%d: %d enqueues but %d dequeues in a completed run",
							q, n, nextDeq[q])
					}
				}
			})
		}
	}
}
