// Burst execution engine.
//
// The discrete-event loop in runReference re-enters the global scheduler
// after every instruction, although cores interact only through the
// hardware queues and the shared memory port (the invariant documented at
// the top of sim.go). The burst engine exploits that: each program is
// pre-scanned and predecoded into micro-ops (operands resolved, latencies
// precomputed, loads and stores bound directly to their backing slices),
// and the scheduler lets the picked core execute an uninterrupted run of
// instructions. Operations on shared state — enqueues, dequeues, and L1
// misses that need the MemPortCycles-serialized memory port — run inline
// only while the core is provably still the scheduler's (time, id)-minimal
// pick (ahead of the horizon over the other runnable cores), which makes
// their globally visible effects occur at exactly the reference engine's
// moment. A burst stops at
//
//   - a communication point past the horizon (it must wait its turn in
//     global scheduler order; the outer loop re-runs it via step once the
//     core is minimal again), or blocking on a full/empty queue,
//   - an L1 miss that needs the memory port while past the horizon, or
//   - halt, an error, or the MaxSteps budget.
//
// Everything else — arithmetic, branches, L1 hits, stores, and misses
// taken while the core is still the minimal pick — touches only core-local
// state plus race-free memory data, so executing it without rescheduling
// is observationally identical to the reference engine. The determinism
// tests assert bit-identical Results across both engines for every kernel.
package sim

import (
	"context"
	"fmt"
	"math"

	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/queue"
)

// uop is a predecoded micro-op: the opcode fused with its operand kind and
// (for Bin/Un) its operator, so the hot loop is a single flat switch with
// no per-instruction cost-table lookups and no (Value, error) returns from
// interp.EvalBin on the common arithmetic paths.
type uop uint8

const (
	uBad uop = iota // unknown opcode: error on execution, like step
	uNop
	uConst // Dst = pre-built immediate Value
	uMov
	// F64 binary arithmetic (fast path guarded by the runtime value kind,
	// falling back to interp.EvalBin to keep exotic programs bit-exact).
	uAddF
	uSubF
	uMulF
	uDivF
	uMinF
	uMaxF
	uEqF
	uNeF
	uLtF
	uLeF
	uGtF
	uGeF
	// I64 binary arithmetic.
	uAddI
	uSubI
	uMulI
	uDivI
	uRemI
	uMinI
	uMaxI
	uAndI
	uOrI
	uXorI
	uShlI
	uShrI
	uEqI
	uNeI
	uLtI
	uLeI
	uGtI
	uGeI
	uBinGen // operator with no fused form for the kind: interp.EvalBin
	// Unary operators (each mirrors interp.EvalUn exactly).
	uNeg
	uNot
	uSqrt
	uExp
	uLog
	uAbs
	uFloor
	uCvtIF
	uCvtFI
	uUnGen // unknown unary operator: interp.EvalUn for the exact error
	uLoadF
	uLoadI
	uStoreF
	uStoreI
	uEnq // inline while ahead of the horizon, else via step in the outer loop
	uDeq // inline while ahead of the horizon, else via step in the outer loop
	uFjp
	uJp
	uJr
	uHalt
)

// dinstr is one predecoded instruction. Loads and stores carry the live
// backing slice and base address of their array so the hot loop performs a
// direct indexed access instead of going through mem.Memory; immediates
// are pre-built Values; lat is the precomputed fixed latency of the op
// (loads use the machine-level hit/miss latencies instead).
type dinstr struct {
	u        uop
	dst      int32
	a, b     int32
	lat      int64
	imm      interp.Value
	binop    ir.BinOp
	unop     ir.UnOp
	arr      int32
	tgt      int32
	tac      int32
	base     int64 // byte address of the array's element 0
	f        []float64
	i        []int64
	q        *queue.Queue // hardware queue of an Enq/Deq (nil if missing)
	edge     int32        // communication-edge tag of an Enq/Deq
	srcInstr *isa.Instr   // originating instruction, for fallback paths
}

// decode predecodes every program once per machine. It is O(program size),
// trivially amortized over simulations that execute millions of
// instructions.
func (m *Machine) decode() {
	t := &m.cfg.Cost
	m.code = make([][]dinstr, len(m.cores))
	for ci, c := range m.cores {
		code := make([]dinstr, len(c.prog.Instrs))
		for pc := range c.prog.Instrs {
			in := &c.prog.Instrs[pc]
			d := &code[pc]
			d.dst, d.a, d.b = int32(in.Dst), int32(in.A), int32(in.B)
			d.binop, d.unop = in.BinOp, in.UnOp
			d.arr, d.tgt, d.tac = in.Arr, in.Tgt, in.Tac
			d.srcInstr = in
			switch in.Op {
			case isa.Nop:
				d.u, d.lat = uNop, 1
			case isa.ConstF:
				d.u, d.lat, d.imm = uConst, t.Const, interp.VF(in.ImmF)
			case isa.ConstI:
				d.u, d.lat, d.imm = uConst, t.Const, interp.VI(in.ImmI)
			case isa.Mov:
				d.u, d.lat = uMov, t.Mov
			case isa.Bin:
				d.u, d.lat = binUop(in.BinOp, in.K), t.Bin(in.BinOp, in.K)
			case isa.Un:
				d.u, d.lat = unUop(in.UnOp), t.Un(in.UnOp, in.K)
			case isa.Load:
				if in.K == ir.F64 {
					d.u, d.f = uLoadF, m.mm.DataF(in.Arr)
				} else {
					d.u, d.i = uLoadI, m.mm.DataI(in.Arr)
				}
				d.base = m.mm.Base(in.Arr)
			case isa.Store:
				if in.K == ir.F64 {
					d.u, d.f = uStoreF, m.mm.DataF(in.Arr)
				} else {
					d.u, d.i = uStoreI, m.mm.DataI(in.Arr)
				}
				d.base = m.mm.Base(in.Arr)
				d.lat = t.Store
			case isa.Enq:
				d.u, d.lat, d.q, d.edge = uEnq, t.Enq, m.queues[in.Q], in.Edge
			case isa.Deq:
				d.u, d.lat, d.q, d.edge = uDeq, t.Deq, m.queues[in.Q], in.Edge
			case isa.Fjp:
				d.u, d.lat = uFjp, t.Branch
			case isa.Jp:
				d.u, d.lat = uJp, t.Branch
			case isa.Jr:
				d.u, d.lat = uJr, t.Branch
			case isa.Halt:
				d.u = uHalt
			default:
				d.u = uBad
			}
		}
		m.code[ci] = code
	}
}

// binUop fuses a binary operator with its static operand kind. Operators
// with no meaning for the kind decode to uBinGen so interp.EvalBin can
// produce the exact reference behavior (including its error).
func binUop(op ir.BinOp, k ir.Kind) uop {
	if k == ir.F64 {
		switch op {
		case ir.Add:
			return uAddF
		case ir.Sub:
			return uSubF
		case ir.Mul:
			return uMulF
		case ir.Div:
			return uDivF
		case ir.Min:
			return uMinF
		case ir.Max:
			return uMaxF
		case ir.Eq:
			return uEqF
		case ir.Ne:
			return uNeF
		case ir.Lt:
			return uLtF
		case ir.Le:
			return uLeF
		case ir.Gt:
			return uGtF
		case ir.Ge:
			return uGeF
		}
		return uBinGen
	}
	switch op {
	case ir.Add:
		return uAddI
	case ir.Sub:
		return uSubI
	case ir.Mul:
		return uMulI
	case ir.Div:
		return uDivI
	case ir.Rem:
		return uRemI
	case ir.Min:
		return uMinI
	case ir.Max:
		return uMaxI
	case ir.And:
		return uAndI
	case ir.Or:
		return uOrI
	case ir.Xor:
		return uXorI
	case ir.Shl:
		return uShlI
	case ir.Shr:
		return uShrI
	case ir.Eq:
		return uEqI
	case ir.Ne:
		return uNeI
	case ir.Lt:
		return uLtI
	case ir.Le:
		return uLeI
	case ir.Gt:
		return uGtI
	case ir.Ge:
		return uGeI
	}
	return uBinGen
}

func unUop(op ir.UnOp) uop {
	switch op {
	case ir.Neg:
		return uNeg
	case ir.Not:
		return uNot
	case ir.Sqrt:
		return uSqrt
	case ir.Exp:
		return uExp
	case ir.Log:
		return uLog
	case ir.Abs:
		return uAbs
	case ir.Floor:
		return uFloor
	case ir.CvtIF:
		return uCvtIF
	case ir.CvtFI:
		return uCvtFI
	}
	return uUnGen
}

// runBurst is the outer scheduler of the burst engine. Like the reference
// loop it always advances the (time, id)-minimal runnable core, but hands
// that core to burst, which executes until a communication point or an
// unsafe memory-port access. Enqueues and dequeues themselves run through
// the untouched step, so all queue blocking, waking, and stall accounting
// is shared verbatim with the reference engine.
//
// A cancellable context is polled once per scheduling decision, and each
// burst's step budget is clamped to cancelStride so a core that never
// communicates (a sequential kernel has no horizon at all) still returns to
// the scheduler — and therefore to the poll — promptly. The clamp changes
// where bursts pause, never what they compute: the resumed burst continues
// from identical machine state.
func (m *Machine) runBurst(ctx context.Context) (*Result, error) {
	if m.code == nil {
		m.decode()
	}
	done := ctx.Done()
	obsOn := m.sink != nil
	var steps int64
	for {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		c := m.pickCore()
		if c == nil {
			if m.allHalted() {
				break
			}
			return nil, fmt.Errorf("%w\n%s", ErrDeadlock, m.dump())
		}
		code := m.code[c.id]
		if c.pc < 0 || c.pc >= len(code) {
			return nil, fmt.Errorf("sim: core %d pc %d t=%d: pc out of program (len %d)", c.id, c.pc, c.time, len(code))
		}
		// With a sink attached every instruction takes the shared step
		// path: retire, queue and stall events are emitted from one place,
		// the streams match the reference engine by construction, and the
		// burst fast path below stays free of instrumentation.
		if u := code[c.pc].u; obsOn || u == uEnq || u == uDeq {
			if err := m.step(c); err != nil {
				return nil, fmt.Errorf("sim: core %d pc %d t=%d: %w", c.id, c.pc, c.time, err)
			}
			steps++
		} else {
			hTime, hID := m.horizon(c)
			budget := m.cfg.MaxSteps - steps + 1
			if done != nil && budget > cancelStride {
				budget = cancelStride
			}
			n, err := m.burst(c, hTime, hID, budget)
			steps += n
			if err != nil {
				return nil, fmt.Errorf("sim: core %d pc %d t=%d: %w", c.id, c.pc, c.time, err)
			}
		}
		if steps > m.cfg.MaxSteps {
			return nil, fmt.Errorf("sim: exceeded MaxSteps=%d (livelock?)\n%s", m.cfg.MaxSteps, m.dump())
		}
	}
	return m.result(), nil
}

// horizon returns the (time, id) of the lexicographically minimal runnable
// core other than c: the point up to which c is guaranteed to remain the
// scheduler's pick. Blocked cores are excluded — they cannot execute until
// some core reaches an enqueue/dequeue, which ends any burst first.
func (m *Machine) horizon(c *coreState) (int64, int) {
	hTime := int64(math.MaxInt64)
	hID := int(math.MaxInt32)
	for _, o := range m.cores {
		if o == c || o.halted || o.blocked != notBlocked {
			continue
		}
		if o.time < hTime {
			hTime, hID = o.time, o.id
		}
	}
	return hTime, hID
}

// burst executes core c until a communication point, an L1 miss that must
// wait its turn at the shared memory port, a halt, an error, or the step
// budget. It returns the number of instructions executed. On entry c is
// the scheduler's pick, so the first instruction — including a missing
// load — is always safe to execute.
func (m *Machine) burst(c *coreState, hTime int64, hID int, budget int64) (int64, error) {
	code := m.code[c.id]
	regs := c.regs
	cc := c.cache
	pc := c.pc
	time := c.time
	cid := c.id
	portOn := m.cfg.MemPortCycles > 0
	// Per-load constants and the port cursor, hoisted out of the hot loop.
	// No other core runs during a burst, so memPortFree is ours alone; it is
	// written back on every exit path below.
	l1Hit, l1Miss := m.cfg.Cost.L1Hit, m.cfg.Cost.L1Miss
	portCycles := m.cfg.MemPortCycles
	portFree := m.memPortFree
	profOn := m.prof != nil
	transferLat := m.cfg.TransferLatency
	dbgEdges := m.cfg.DebugEdges
	var steps int64
	var err error

loop:
	for steps < budget {
		if pc < 0 || pc >= len(code) {
			err = fmt.Errorf("pc out of program (len %d)", len(code))
			break loop
		}
		in := &code[pc]
		switch in.u {
		case uNop:
			time++
		case uConst:
			regs[in.dst] = in.imm
			time += in.lat
		case uMov:
			regs[in.dst] = regs[in.a]
			time += in.lat

		case uAddF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.Value{K: ir.F64, F: l.F + regs[in.b].F}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uSubF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.Value{K: ir.F64, F: l.F - regs[in.b].F}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uMulF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.Value{K: ir.F64, F: l.F * regs[in.b].F}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uDivF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.Value{K: ir.F64, F: l.F / regs[in.b].F}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uMinF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.Value{K: ir.F64, F: math.Min(l.F, regs[in.b].F)}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uMaxF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.Value{K: ir.F64, F: math.Max(l.F, regs[in.b].F)}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uEqF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.VB(l.F == regs[in.b].F)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uNeF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.VB(l.F != regs[in.b].F)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uLtF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.VB(l.F < regs[in.b].F)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uLeF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.VB(l.F <= regs[in.b].F)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uGtF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.VB(l.F > regs[in.b].F)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uGeF:
			if l := regs[in.a]; l.K == ir.F64 {
				regs[in.dst] = interp.VB(l.F >= regs[in.b].F)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat

		case uAddI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I + regs[in.b].I}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uSubI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I - regs[in.b].I}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uMulI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I * regs[in.b].I}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uDivI:
			// Division by zero routes through the fallback for the exact
			// reference error.
			if l, r := regs[in.a], regs[in.b]; l.K != ir.F64 && r.I != 0 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I / r.I}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uRemI:
			if l, r := regs[in.a], regs[in.b]; l.K != ir.F64 && r.I != 0 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I % r.I}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uMinI:
			// EvalBin returns the operand Value itself for integer min/max;
			// copy that behavior exactly.
			if l, r := regs[in.a], regs[in.b]; l.K != ir.F64 {
				if l.I < r.I {
					regs[in.dst] = l
				} else {
					regs[in.dst] = r
				}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uMaxI:
			if l, r := regs[in.a], regs[in.b]; l.K != ir.F64 {
				if l.I > r.I {
					regs[in.dst] = l
				} else {
					regs[in.dst] = r
				}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uAndI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I & regs[in.b].I}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uOrI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I | regs[in.b].I}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uXorI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I ^ regs[in.b].I}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uShlI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I << uint64(regs[in.b].I&63)}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uShrI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.Value{K: ir.I64, I: l.I >> uint64(regs[in.b].I&63)}
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uEqI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.VB(l.I == regs[in.b].I)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uNeI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.VB(l.I != regs[in.b].I)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uLtI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.VB(l.I < regs[in.b].I)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uLeI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.VB(l.I <= regs[in.b].I)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uGtI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.VB(l.I > regs[in.b].I)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uGeI:
			if l := regs[in.a]; l.K != ir.F64 {
				regs[in.dst] = interp.VB(l.I >= regs[in.b].I)
			} else if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat
		case uBinGen:
			if err = binFallback(in, regs); err != nil {
				break loop
			}
			time += in.lat

		case uNeg:
			if v := regs[in.a]; v.K == ir.F64 {
				regs[in.dst] = interp.Value{K: ir.F64, F: -v.F}
			} else {
				regs[in.dst] = interp.Value{K: ir.I64, I: -v.I}
			}
			time += in.lat
		case uNot:
			regs[in.dst] = interp.VB(regs[in.a].I == 0)
			time += in.lat
		case uSqrt:
			regs[in.dst] = interp.Value{K: ir.F64, F: math.Sqrt(regs[in.a].F)}
			time += in.lat
		case uExp:
			regs[in.dst] = interp.Value{K: ir.F64, F: math.Exp(regs[in.a].F)}
			time += in.lat
		case uLog:
			regs[in.dst] = interp.Value{K: ir.F64, F: math.Log(regs[in.a].F)}
			time += in.lat
		case uAbs:
			if v := regs[in.a]; v.K == ir.F64 {
				regs[in.dst] = interp.Value{K: ir.F64, F: math.Abs(v.F)}
			} else if v.I < 0 {
				regs[in.dst] = interp.Value{K: ir.I64, I: -v.I}
			} else {
				regs[in.dst] = v
			}
			time += in.lat
		case uFloor:
			regs[in.dst] = interp.Value{K: ir.F64, F: math.Floor(regs[in.a].F)}
			time += in.lat
		case uCvtIF:
			regs[in.dst] = interp.Value{K: ir.F64, F: float64(regs[in.a].I)}
			time += in.lat
		case uCvtFI:
			regs[in.dst] = interp.Value{K: ir.I64, I: interp.TruncFI(regs[in.a].F)}
			time += in.lat
		case uUnGen:
			var v interp.Value
			if v, err = interp.EvalUn(in.unop, regs[in.a]); err != nil {
				break loop
			}
			regs[in.dst] = v
			time += in.lat

		case uLoadF:
			idx := regs[in.a].I
			if uint64(idx) >= uint64(len(in.f)) {
				if _, err = m.mm.LoadF(in.arr, idx); err == nil {
					err = fmt.Errorf("load out of bounds")
				}
				break loop
			}
			addr := in.base + idx*8
			if portOn && !(time < hTime || (time == hTime && cid < hID)) && !cc.Probe(addr) {
				// The load would miss and the core is no longer the
				// scheduler's minimal pick: another core may own the next
				// memory-port grant. Yield; the load re-executes once this
				// core is minimal again.
				break loop
			}
			var lat int64
			if cc.Access(addr) {
				lat = l1Hit
			} else {
				start := time
				if portOn {
					if portFree > start {
						start = portFree
					}
					portFree = start + portCycles
					m.portBusy += portCycles
				}
				lat = start - time + l1Miss
			}
			regs[in.dst] = interp.Value{K: ir.F64, F: in.f[idx]}
			time += lat
			if profOn && in.tac >= 0 {
				m.prof[in.tac][0] += lat
				m.prof[in.tac][1]++
			}
		case uLoadI:
			idx := regs[in.a].I
			if uint64(idx) >= uint64(len(in.i)) {
				if _, err = m.mm.LoadI(in.arr, idx); err == nil {
					err = fmt.Errorf("load out of bounds")
				}
				break loop
			}
			addr := in.base + idx*8
			if portOn && !(time < hTime || (time == hTime && cid < hID)) && !cc.Probe(addr) {
				break loop
			}
			var lat int64
			if cc.Access(addr) {
				lat = l1Hit
			} else {
				start := time
				if portOn {
					if portFree > start {
						start = portFree
					}
					portFree = start + portCycles
					m.portBusy += portCycles
				}
				lat = start - time + l1Miss
			}
			regs[in.dst] = interp.Value{K: ir.I64, I: in.i[idx]}
			time += lat
			if profOn && in.tac >= 0 {
				m.prof[in.tac][0] += lat
				m.prof[in.tac][1]++
			}

		case uStoreF:
			idx := regs[in.a].I
			if uint64(idx) >= uint64(len(in.f)) {
				if err = m.mm.StoreF(in.arr, idx, regs[in.b].F); err == nil {
					err = fmt.Errorf("store out of bounds")
				}
				break loop
			}
			in.f[idx] = regs[in.b].F
			// cache.Touch is a no-op for the write-through no-allocate L1;
			// elided here (the reference step still calls it).
			time += in.lat
		case uStoreI:
			idx := regs[in.a].I
			if uint64(idx) >= uint64(len(in.i)) {
				if err = m.mm.StoreI(in.arr, idx, regs[in.b].I); err == nil {
					err = fmt.Errorf("store out of bounds")
				}
				break loop
			}
			in.i[idx] = regs[in.b].I
			time += in.lat

		case uEnq:
			// Communication point. Safe to run inline only while this core
			// is provably the scheduler's next pick — then both the
			// full/block decision and the receiver wake-up happen at
			// exactly the reference engine's moment. Otherwise (or for a
			// missing queue, which step turns into the exact error) the
			// burst yields and the outer loop runs it via step.
			q := in.q
			if q == nil || !(time < hTime || (time == hTime && cid < hID)) {
				break loop
			}
			if q.Full() {
				c.blocked = blockedFull
				c.blockQ = q
				c.blockAt = time
				break loop
			}
			q.Push(regs[in.a], time+transferLat, in.edge)
			time += in.lat
			pc++
			steps++
			if dst := m.coreByID(q.Dst); dst != nil && dst.blocked == blockedEmpty && dst.blockQ == q {
				dst.blocked = notBlocked
				dst.blockQ = nil
				// The wake adds a runnable core; tighten the horizon.
				hTime, hID = m.horizon(c)
			}
			continue
		case uDeq:
			// Mirror image of uEnq. DebugEdges dequeues take the step path
			// for its FIFO-mismatch diagnostics.
			q := in.q
			if q == nil || dbgEdges || !(time < hTime || (time == hTime && cid < hID)) {
				break loop
			}
			if q.Empty() {
				c.blocked = blockedEmpty
				c.blockQ = q
				c.blockAt = time
				break loop
			}
			e := q.Pop(time)
			start := time
			if e.AvailAt > start {
				start = e.AvailAt
			}
			c.deqSt += start - time
			regs[in.dst] = e.V
			time = start + in.lat
			pc++
			steps++
			if src := m.coreByID(q.Src); src != nil && src.blocked == blockedFull && src.blockQ == q {
				src.blocked = notBlocked
				src.blockQ = nil
				src.enqSt += start - src.blockAt
				if src.time < start {
					src.time = start
				}
				hTime, hID = m.horizon(c)
			}
			continue

		case uFjp:
			time += in.lat
			steps++
			if regs[in.a].I == 0 {
				pc = int(in.tgt)
			} else {
				pc++
			}
			continue
		case uJp:
			time += in.lat
			steps++
			pc = int(in.tgt)
			continue
		case uJr:
			time += in.lat
			steps++
			pc = int(regs[in.a].I)
			continue
		case uHalt:
			c.halted = true
			steps++
			break loop

		default: // uBad
			err = fmt.Errorf("unknown opcode %s", in.srcInstr.Op)
			break loop
		}
		pc++
		steps++
	}

	c.pc = pc
	c.time = time
	c.instrs += steps
	m.memPortFree = portFree
	return steps, err
}

// binFallback routes a binary operation through interp.EvalBin — the
// shared semantics oracle — for operand kinds the fused fast paths do not
// cover, so results and errors stay bit-identical to the reference step.
func binFallback(in *dinstr, regs []interp.Value) error {
	v, err := interp.EvalBin(in.binop, regs[in.a], regs[in.b])
	if err != nil {
		return err
	}
	regs[in.dst] = v
	return nil
}
