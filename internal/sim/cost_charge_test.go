// TestChargesEveryTableEntry pins the simulator to the latency table for
// the entries the cost package's own matrices cannot reach (they are
// charged per instruction class, not per operator): Mov, Const, Branch,
// Store, L1Hit, L1Miss, Enq and Deq. Each case runs one micro-program
// twice — once at default latencies, once with a single table entry
// inflated — and asserts total cycles grow by exactly (occurrences × Δ),
// proving the entry is charged where (and only as often as) expected.
// Together with internal/cost's ledger test this exercises every field of
// cost.Table.

package sim

import (
	"testing"

	"fgp/internal/cost"
	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/mem"
)

func runResult(t *testing.T, progs []*isa.Program, mm *mem.Memory, cfg Config) *Result {
	t.Helper()
	m, err := New(progs, mm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChargesEveryTableEntry(t *testing.T) {
	const delta = 13 // prime, so an accidental ×2 or ÷2 cannot cancel out

	halt := isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg}
	consti := func(dst isa.Reg, v int64) isa.Instr {
		return isa.Instr{Op: isa.ConstI, Dst: dst, A: noReg, B: noReg, ImmI: v}
	}

	type testCase struct {
		name   string
		bump   func(*cost.Table) // inflate one entry by delta
		count  int64             // expected occurrences of that entry
		memory func() *mem.Memory
		progs  func() []*isa.Program
		config func() Config // base config; the table is set afterwards
		// metric extracts the cycle count the entry must shift; nil means
		// the machine total. Queue-op latencies are pipeline-occupancy
		// charges on the issuing core, so those cases watch that core's
		// timeline rather than the machine total (which queue visibility
		// timing dominates).
		metric func(*Result) int64
	}

	singleCore := func(instrs ...isa.Instr) func() []*isa.Program {
		return func() []*isa.Program { return []*isa.Program{prog(0, instrs...)} }
	}

	cases := []testCase{
		{
			name:   "Const",
			bump:   func(t *cost.Table) { t.Const += delta },
			count:  3,
			memory: mem.New,
			progs: singleCore(
				consti(0, 1),
				consti(0, 2),
				isa.Instr{Op: isa.ConstF, Dst: 1, A: noReg, B: noReg, ImmF: 2.5},
				halt,
			),
			config: cfg1,
		},
		{
			name:   "Mov",
			bump:   func(t *cost.Table) { t.Mov += delta },
			count:  4,
			memory: mem.New,
			progs: singleCore(
				consti(0, 7),
				isa.Instr{Op: isa.Mov, Dst: 1, A: 0, B: noReg},
				isa.Instr{Op: isa.Mov, Dst: 2, A: 1, B: noReg},
				isa.Instr{Op: isa.Mov, Dst: 3, A: 2, B: noReg},
				isa.Instr{Op: isa.Mov, Dst: 4, A: 3, B: noReg},
				halt,
			),
			config: cfg1,
		},
		{
			name:  "Branch",
			bump:  func(t *cost.Table) { t.Branch += delta },
			count: 3, // two unconditional jumps plus one taken conditional
			memory: func() *mem.Memory {
				return mem.New()
			},
			progs: singleCore(
				consti(0, 0),
				isa.Instr{Op: isa.Jp, Dst: noReg, A: noReg, B: noReg, Tgt: 2},
				isa.Instr{Op: isa.Jp, Dst: noReg, A: noReg, B: noReg, Tgt: 3},
				isa.Instr{Op: isa.Fjp, Dst: noReg, A: 0, B: noReg, Tgt: 4},
				halt,
			),
			config: cfg1,
		},
		{
			name:  "Store",
			bump:  func(t *cost.Table) { t.Store += delta },
			count: 2,
			memory: func() *mem.Memory {
				mm := mem.New()
				mm.AddF("a", make([]float64, 4))
				return mm
			},
			progs: singleCore(
				consti(0, 0),
				isa.Instr{Op: isa.ConstF, Dst: 1, A: noReg, B: noReg, ImmF: 3},
				isa.Instr{Op: isa.Store, Dst: noReg, A: 0, B: 1, K: ir.F64, Arr: 0},
				isa.Instr{Op: isa.Store, Dst: noReg, A: 0, B: 1, K: ir.F64, Arr: 0},
				halt,
			),
			config: cfg1,
		},
		{
			// One cold load (miss) then two repeats (hits) of the same line.
			name:  "L1Hit",
			bump:  func(t *cost.Table) { t.L1Hit += delta },
			count: 2,
			memory: func() *mem.Memory {
				mm := mem.New()
				mm.AddF("a", make([]float64, 4))
				return mm
			},
			progs: singleCore(
				consti(0, 0),
				isa.Instr{Op: isa.Load, Dst: 1, A: 0, B: noReg, K: ir.F64, Arr: 0},
				isa.Instr{Op: isa.Load, Dst: 1, A: 0, B: noReg, K: ir.F64, Arr: 0},
				isa.Instr{Op: isa.Load, Dst: 1, A: 0, B: noReg, K: ir.F64, Arr: 0},
				halt,
			),
			config: func() Config {
				c := DefaultConfig(1) // real cache, so hit/miss distinction exists
				c.MemPortCycles = 0
				return c
			},
		},
		{
			name:  "L1Miss",
			bump:  func(t *cost.Table) { t.L1Miss += delta },
			count: 1,
			memory: func() *mem.Memory {
				mm := mem.New()
				mm.AddF("a", make([]float64, 4))
				return mm
			},
			progs: singleCore(
				consti(0, 0),
				isa.Instr{Op: isa.Load, Dst: 1, A: 0, B: noReg, K: ir.F64, Arr: 0},
				isa.Instr{Op: isa.Load, Dst: 1, A: 0, B: noReg, K: ir.F64, Arr: 0},
				halt,
			),
			config: func() Config {
				c := DefaultConfig(1)
				c.MemPortCycles = 0
				return c
			},
		},
		{
			// The enqueue delays visibility, so the receiver's finish time —
			// and the machine's total — shifts with it.
			name:   "Enq",
			bump:   func(t *cost.Table) { t.Enq += delta },
			count:  1,
			memory: mem.New,
			progs: func() []*isa.Program {
				sender := prog(0,
					consti(0, 42),
					isa.Instr{Op: isa.Enq, Dst: noReg, A: 0, B: noReg, K: ir.I64, Q: QID(0, 1, ir.I64, 2), Edge: 1},
					halt,
				)
				receiver := prog(1,
					isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: QID(0, 1, ir.I64, 2), Edge: 1},
					halt,
				)
				return []*isa.Program{sender, receiver}
			},
			config: func() Config {
				c := cfg2()
				c.DebugEdges = true
				return c
			},
			metric: func(r *Result) int64 { return r.PerCoreCycles[0] },
		},
		{
			name:   "Deq",
			bump:   func(t *cost.Table) { t.Deq += delta },
			count:  1,
			memory: mem.New,
			progs: func() []*isa.Program {
				sender := prog(0,
					consti(0, 42),
					isa.Instr{Op: isa.Enq, Dst: noReg, A: 0, B: noReg, K: ir.I64, Q: QID(0, 1, ir.I64, 2), Edge: 1},
					halt,
				)
				receiver := prog(1,
					isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: QID(0, 1, ir.I64, 2), Edge: 1},
					halt,
				)
				return []*isa.Program{sender, receiver}
			},
			config: func() Config {
				c := cfg2()
				c.DebugEdges = true
				return c
			},
			metric: func(r *Result) int64 { return r.PerCoreCycles[1] },
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			metric := c.metric
			if metric == nil {
				metric = func(r *Result) int64 { return r.Cycles }
			}
			base := metric(runResult(t, c.progs(), c.memory(), c.config()))
			bumped := c.config()
			c.bump(&bumped.Cost)
			inflated := metric(runResult(t, c.progs(), c.memory(), bumped))
			if got, want := inflated-base, c.count*delta; got != want {
				t.Errorf("inflating %s by %d moved total cycles by %d, want %d (%d occurrence(s))",
					c.name, delta, got, want, c.count)
			}
		})
	}
}
