package sim_test

import (
	"errors"
	"strings"
	"testing"

	"fgp/internal/sim"
)

func TestValidateAcceptsDegenerateButRealMachines(t *testing.T) {
	mods := []struct {
		name string
		mod  func(*sim.Config)
	}{
		{"paper default", func(c *sim.Config) {}},
		{"one-slot queue", func(c *sim.Config) { c.QueueLen = 1 }},
		{"zero transfer latency", func(c *sim.Config) { c.TransferLatency = 0 }},
		{"free enqueue/dequeue", func(c *sim.Config) { c.Cost.Enq = 0; c.Cost.Deq = 0 }},
		{"disabled L1", func(c *sim.Config) { c.Cache.Lines = 0 }},
		{"one-line L1", func(c *sim.Config) { c.Cache.Lines = 1 }},
		{"single core", func(c *sim.Config) { c.Cores = 1 }},
	}
	for _, m := range mods {
		c := sim.DefaultConfig(4)
		m.mod(&c)
		if err := c.Validate(); err != nil {
			t.Errorf("%s: rejected: %v", m.name, err)
		}
	}
}

func TestValidateRejectsUnusableMachines(t *testing.T) {
	cases := []struct {
		field string
		mod   func(*sim.Config)
	}{
		{"Cores", func(c *sim.Config) { c.Cores = 0 }},
		{"QueueLen", func(c *sim.Config) { c.QueueLen = 0 }},
		{"QueueLen", func(c *sim.Config) { c.QueueLen = -3 }},
		{"TransferLatency", func(c *sim.Config) { c.TransferLatency = -1 }},
		{"GroupSize", func(c *sim.Config) { c.GroupSize = -1 }},
		{"MemPortCycles", func(c *sim.Config) { c.MemPortCycles = -1 }},
		{"MaxSteps", func(c *sim.Config) { c.MaxSteps = -1 }},
		{"Cost.Enq", func(c *sim.Config) { c.Cost.Enq = -1 }},
		{"Cost.L1Miss", func(c *sim.Config) { c.Cost.L1Miss = -2 }},
		{"Cache.Lines", func(c *sim.Config) { c.Cache.Lines = -1 }},
		// A 4-byte line cannot hold one 8-byte element; a 48-byte line is
		// not a power of two. Both only matter with a real cache.
		{"Cache.LineSize", func(c *sim.Config) { c.Cache.Lines = 8; c.Cache.LineSize = 4 }},
		{"Cache.LineSize", func(c *sim.Config) { c.Cache.Lines = 8; c.Cache.LineSize = 48 }},
		{"Engine", func(c *sim.Config) { c.Engine = "warp-drive" }},
	}
	for _, tc := range cases {
		c := sim.DefaultConfig(4)
		tc.mod(&c)
		err := c.Validate()
		var ce *sim.ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: want *ConfigError, got %v", tc.field, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("rejected field %q, want %q (%v)", ce.Field, tc.field, err)
		}
		if !errors.Is(err, sim.ErrBadConfig) {
			t.Errorf("%s: error does not wrap ErrBadConfig", tc.field)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: message %q does not name the field", tc.field, err)
		}
	}
}

// TestNewRejectsInvalidConfig pins that the gate is wired into machine
// construction: an unusable configuration is a structured error, never a
// panic or a deadlocked machine.
func TestNewRejectsInvalidConfig(t *testing.T) {
	c := sim.DefaultConfig(1)
	c.QueueLen = 0
	if _, err := sim.New(nil, nil, c); !errors.Is(err, sim.ErrBadConfig) {
		t.Fatalf("New with zero queue capacity: %v, want ErrBadConfig", err)
	}
	c = sim.DefaultConfig(1)
	c.Engine = "nope"
	if _, err := sim.New(nil, nil, c); !errors.Is(err, sim.ErrBadConfig) {
		t.Fatalf("New with unknown engine: %v, want ErrBadConfig", err)
	}
}
