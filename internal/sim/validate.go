// Machine-configuration validation. The machine-space sweep (see
// internal/machspace) dials every hardware knob — queue capacity, transfer
// latency, enqueue/dequeue issue cost, L1 geometry and latencies — through
// literal zero and other degenerate corners, so the configuration surface
// needs one authoritative gate: a point either simulates correctly
// (bit-identical across all three engines, like any other configuration) or
// is rejected here with a structured diagnostic before any compile or
// simulation work starts. It must never reach a deadlock or a panic.

package sim

import (
	"errors"
	"fmt"
)

// ErrBadConfig is wrapped by every configuration-validation failure, so
// callers can classify rejection-vs-infrastructure with errors.Is.
var ErrBadConfig = errors.New("sim: invalid machine configuration")

// ConfigError is one structured validation diagnostic: the Config field at
// fault and why its value is unusable. It wraps ErrBadConfig.
type ConfigError struct {
	Field  string // Config field (or Cost./Cache. subfield) at fault
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid machine configuration: %s: %s", e.Field, e.Reason)
}

func (e *ConfigError) Unwrap() error { return ErrBadConfig }

// Validate checks that the configuration describes a machine the simulator
// can model, returning a *ConfigError naming the offending field otherwise.
// The legal envelope is deliberately wider than the paper's operating point:
// zero-cycle transfer latency, zero-cost enqueue/dequeue issue, a
// single-slot queue, and a disabled L1 (Cache.Lines == 0, every access
// hits) are all valid machines — the sensitivity sweeps request them
// literally — and are covered by the cross-engine degenerate-point tests.
func (c *Config) Validate() error {
	if c.Cores < 1 {
		return &ConfigError{Field: "Cores", Reason: fmt.Sprintf("must be >= 1, got %d", c.Cores)}
	}
	if c.QueueLen < 1 {
		return &ConfigError{Field: "QueueLen", Reason: fmt.Sprintf("queue capacity must be >= 1, got %d", c.QueueLen)}
	}
	if c.TransferLatency < 0 {
		return &ConfigError{Field: "TransferLatency", Reason: fmt.Sprintf("must be >= 0, got %d", c.TransferLatency)}
	}
	if c.GroupSize < 0 {
		return &ConfigError{Field: "GroupSize", Reason: fmt.Sprintf("must be >= 0, got %d", c.GroupSize)}
	}
	if c.MemPortCycles < 0 {
		return &ConfigError{Field: "MemPortCycles", Reason: fmt.Sprintf("must be >= 0, got %d", c.MemPortCycles)}
	}
	if c.MaxSteps < 0 {
		return &ConfigError{Field: "MaxSteps", Reason: fmt.Sprintf("must be >= 0, got %d", c.MaxSteps)}
	}
	// Every latency-table entry must be non-negative. Zero is legal for the
	// queue issue costs (the paper's "free" enqueue corner) and harmless for
	// compute ops: the pc still advances every instruction, so a zero-cost
	// loop terminates like any other — only its cycle count stops growing —
	// and the MaxSteps runaway guard stays the backstop either way.
	for _, e := range []struct {
		name string
		v    int64
	}{
		{"Cost.IntALU", c.Cost.IntALU}, {"Cost.IntMul", c.Cost.IntMul}, {"Cost.IntDiv", c.Cost.IntDiv},
		{"Cost.FAdd", c.Cost.FAdd}, {"Cost.FMul", c.Cost.FMul}, {"Cost.FDiv", c.Cost.FDiv},
		{"Cost.FSqrt", c.Cost.FSqrt}, {"Cost.FMath", c.Cost.FMath}, {"Cost.Cvt", c.Cost.Cvt},
		{"Cost.Mov", c.Cost.Mov}, {"Cost.Const", c.Cost.Const}, {"Cost.Branch", c.Cost.Branch},
		{"Cost.Store", c.Cost.Store}, {"Cost.L1Hit", c.Cost.L1Hit}, {"Cost.L1Miss", c.Cost.L1Miss},
		{"Cost.Enq", c.Cost.Enq}, {"Cost.Deq", c.Cost.Deq},
	} {
		if e.v < 0 {
			return &ConfigError{Field: e.name, Reason: fmt.Sprintf("latency must be >= 0, got %d", e.v)}
		}
	}
	// L1 geometry. Lines == 0 disables the timing model (uniform hit
	// latency) — the "L1 smaller than one line" corner resolves there rather
	// than in a degenerate indexing mode. With a real cache the line size
	// must hold at least one 8-byte element and be a power of two, or the
	// address-to-line shift would split elements across lines.
	if c.Cache.Lines < 0 {
		return &ConfigError{Field: "Cache.Lines", Reason: fmt.Sprintf("must be >= 0 (0 disables the L1 model), got %d", c.Cache.Lines)}
	}
	if c.Cache.Lines > 0 {
		ls := c.Cache.LineSize
		if ls < 8 || ls&(ls-1) != 0 {
			return &ConfigError{Field: "Cache.LineSize",
				Reason: fmt.Sprintf("must be a power of two >= 8 bytes when Cache.Lines > 0, got %d", ls)}
		}
	}
	if eng := c.EngineName(); eng != EngineBurst && eng != EngineReference && eng != EngineThreaded {
		return &ConfigError{Field: "Engine", Reason: fmt.Sprintf("unknown engine %q (have %v)", eng, Engines())}
	}
	return nil
}
