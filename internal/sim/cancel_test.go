// Cancellation conformance for both engines: a context cancelled before or
// during a run must abort it promptly (the burst engine within one
// cancellation stride, the reference engine within one polling stride),
// return the bare context error, leak no goroutines, and leave results of
// uncancelled runs bit-identical to Run().

package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/mem"
)

// spinProg builds a single-core program that counts to bound and halts:
// each iteration is add, compare, conditional-jump, jump. With a large
// bound it runs for hundreds of millions of steps — effectively forever on
// test timescales — without tripping MaxSteps.
func spinProg(bound int64) *isa.Program {
	return prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 0},
		isa.Instr{Op: isa.ConstI, Dst: 1, A: noReg, B: noReg, ImmI: 1},
		isa.Instr{Op: isa.ConstI, Dst: 2, A: noReg, B: noReg, ImmI: bound},
		isa.Instr{Op: isa.Bin, BinOp: ir.Add, K: ir.I64, Dst: 0, A: 0, B: 1},
		isa.Instr{Op: isa.Bin, BinOp: ir.Lt, K: ir.I64, Dst: 3, A: 0, B: 2},
		isa.Instr{Op: isa.Fjp, Dst: noReg, A: 3, B: noReg, Tgt: 7},
		isa.Instr{Op: isa.Jp, Dst: noReg, A: noReg, B: noReg, Tgt: 3},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
}

func engineConfigs() map[string]Config {
	burst := cfg1()
	ref := cfg1()
	ref.Reference = true
	threaded := cfg1()
	threaded.Engine = EngineThreaded
	return map[string]Config{"burst": burst, "reference": ref, "threaded": threaded}
}

func TestRunContextPreCancelled(t *testing.T) {
	for name, cfg := range engineConfigs() {
		t.Run(name, func(t *testing.T) {
			m, err := New([]*isa.Program{spinProg(1 << 40)}, mem.New(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := m.RunContext(ctx)
			if res != nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-cancelled run returned (%v, %v), want (nil, context.Canceled)", res, err)
			}
		})
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	for name, cfg := range engineConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			// ~1<<40 iterations: would take hours to finish; only a prompt
			// abort lets this test pass within its watchdog.
			m, err := New([]*isa.Program{spinProg(1 << 40)}, mem.New(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			type outcome struct {
				res *Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := m.RunContext(ctx)
				done <- outcome{res, err}
			}()
			time.Sleep(20 * time.Millisecond)
			cancelled := time.Now()
			cancel()
			select {
			case o := <-done:
				if elapsed := time.Since(cancelled); elapsed > 5*time.Second {
					t.Errorf("abort took %v after cancel; the engine is not honoring its stride", elapsed)
				}
				if o.res != nil || !errors.Is(o.err, context.Canceled) {
					t.Fatalf("cancelled run returned (%v, %v), want (nil, context.Canceled)", o.res, o.err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("run did not return within 60s of cancellation")
			}
			// Goroutine accounting: the runner goroutine above must be the
			// only one we created, and it has already exited.
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if now := runtime.NumGoroutine(); now > before {
				t.Errorf("goroutines grew from %d to %d across a cancelled run", before, now)
			}
		})
	}
}

func TestRunContextDeadline(t *testing.T) {
	for name, cfg := range engineConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			m, err := New([]*isa.Program{spinProg(1 << 40)}, mem.New(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			res, err := m.RunContext(ctx)
			if res != nil || !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("deadline run returned (%v, %v), want (nil, context.DeadlineExceeded)", res, err)
			}
		})
	}
}

// TestRunContextBackgroundMatchesRun: threading a never-cancelled context
// through must not perturb results — same cycles, instruction counts and
// halt state as the context-free entry point, on both engines.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	const bound = 200_000 // large enough to cross many cancellation strides
	for name, cfg := range engineConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			m1, err := New([]*isa.Program{spinProg(bound)}, mem.New(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := m1.Run()
			if err != nil {
				t.Fatal(err)
			}
			m2, err := New([]*isa.Program{spinProg(bound)}, mem.New(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			withCtx, err := m2.RunContext(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Cycles != withCtx.Cycles {
				t.Errorf("cycles drifted under a live context: %d vs %d", plain.Cycles, withCtx.Cycles)
			}
			if plain.PerCoreInstrs[0] != withCtx.PerCoreInstrs[0] {
				t.Errorf("instruction counts drifted: %d vs %d", plain.PerCoreInstrs[0], withCtx.PerCoreInstrs[0])
			}
		})
	}
}
