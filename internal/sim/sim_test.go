package sim

import (
	"errors"
	"strings"
	"testing"

	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/mem"
)

// prog builds a program from instructions, assigning register counts.
func prog(core int, instrs ...isa.Instr) *isa.Program {
	p := &isa.Program{Core: core}
	maxReg := isa.Reg(-1)
	for _, in := range instrs {
		for _, r := range []isa.Reg{in.Dst, in.A, in.B} {
			if r > maxReg {
				maxReg = r
			}
		}
		p.Append(in)
	}
	p.NRegs = int(maxReg) + 1
	return p
}

func cfg2() Config {
	c := DefaultConfig(2)
	c.Cache = mem.CacheConfig{} // uniform memory for timing determinism
	c.MemPortCycles = 0
	return c
}

const noReg = isa.NoReg

func TestHaltOnly(t *testing.T) {
	p := prog(0, isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg})
	m, err := New([]*isa.Program{p}, mem.New(), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 {
		t.Errorf("halt-only program took %d cycles", res.Cycles)
	}
}

func TestArithmeticAndMemory(t *testing.T) {
	mm := mem.New()
	mm.AddF("a", []float64{3, 4})
	p := prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 0},
		isa.Instr{Op: isa.ConstI, Dst: 1, A: noReg, B: noReg, ImmI: 1},
		isa.Instr{Op: isa.Load, Dst: 2, A: 0, B: noReg, K: ir.F64, Arr: 0},
		isa.Instr{Op: isa.Load, Dst: 3, A: 1, B: noReg, K: ir.F64, Arr: 0},
		isa.Instr{Op: isa.Bin, BinOp: ir.Mul, K: ir.F64, Dst: 4, A: 2, B: 3},
		isa.Instr{Op: isa.Store, A: 0, B: 4, Dst: noReg, K: ir.F64, Arr: 0},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	m, err := New([]*isa.Program{p}, mm, cfg1())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := mm.SnapshotF("a")[0]; got != 12 {
		t.Errorf("a[0] = %g, want 12", got)
	}
}

func cfg1() Config {
	c := DefaultConfig(1)
	c.Cache = mem.CacheConfig{}
	c.MemPortCycles = 0
	return c
}

// TestTransferLatencyVisibility reproduces the paper's Fig 11: a value
// enqueued at time T_A becomes visible at T_A + transfer latency. A core
// that dequeues early stalls until then; a core that dequeues later
// proceeds immediately.
func TestTransferLatencyVisibility(t *testing.T) {
	// Core 0: spend ~10 cycles, then enqueue.
	// Core 1: dequeue immediately (early), must wait for visibility.
	mk := func(senderDelayConsts int) (*isa.Program, *isa.Program) {
		var sIns []isa.Instr
		for i := 0; i < senderDelayConsts; i++ {
			sIns = append(sIns, isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 7})
		}
		sIns = append(sIns,
			isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: QID(0, 1, ir.I64, 2), Edge: 1},
			isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
		)
		sender := prog(0, sIns...)
		receiver := prog(1,
			isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: QID(0, 1, ir.I64, 2), Edge: 1},
			isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
		)
		return sender, receiver
	}

	c := cfg2()
	c.TransferLatency = 5
	c.DebugEdges = true

	sender, receiver := mk(10) // sender enqueues at t=10
	m, err := New([]*isa.Program{sender, receiver}, mem.New(), c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Receiver dequeues at max(0, 10+5) + deq cost = 16.
	if res.PerCoreCycles[1] != 16 {
		t.Errorf("early dequeuer finished at %d, want 16", res.PerCoreCycles[1])
	}
	if res.DeqStalls[1] != 15 {
		t.Errorf("dequeue stall = %d, want 15", res.DeqStalls[1])
	}

	// Late dequeuer: pad the receiver so it dequeues after visibility.
	sender2, _ := mk(2) // enqueue at t=2, visible at 7
	var rIns []isa.Instr
	for i := 0; i < 20; i++ {
		rIns = append(rIns, isa.Instr{Op: isa.ConstI, Dst: 1, A: noReg, B: noReg, ImmI: 0})
	}
	rIns = append(rIns,
		isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: QID(0, 1, ir.I64, 2), Edge: 1},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	receiver2 := prog(1, rIns...)
	m2, err := New([]*isa.Program{sender2, receiver2}, mem.New(), c)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Receiver reaches the dequeue at t=20 > 7: no stall, finishes at 21.
	if res2.PerCoreCycles[1] != 21 {
		t.Errorf("late dequeuer finished at %d, want 21", res2.PerCoreCycles[1])
	}
	if res2.DeqStalls[1] != 0 {
		t.Errorf("late dequeuer stalled %d cycles, want 0", res2.DeqStalls[1])
	}
}

func TestEnqueueBlocksWhenFull(t *testing.T) {
	// Queue of length 2; sender pushes 3 values immediately; receiver
	// dequeues after a long delay. The third enqueue must block until the
	// first dequeue frees a slot.
	c := cfg2()
	c.QueueLen = 2
	c.TransferLatency = 5
	q := QID(0, 1, ir.I64, 2)
	sender := prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 1},
		isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: q, Edge: 1},
		isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: q, Edge: 1},
		isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: q, Edge: 1},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	var rIns []isa.Instr
	for i := 0; i < 50; i++ {
		rIns = append(rIns, isa.Instr{Op: isa.ConstI, Dst: 1, A: noReg, B: noReg, ImmI: 0})
	}
	for i := 0; i < 3; i++ {
		rIns = append(rIns, isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: q, Edge: 1})
	}
	rIns = append(rIns, isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg})
	receiver := prog(1, rIns...)

	m, err := New([]*isa.Program{sender, receiver}, mem.New(), c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EnqStalls[0] == 0 {
		t.Error("third enqueue should have blocked on the full queue")
	}
	// Sender's final enqueue completes only after the receiver's first
	// dequeue at ~t=50.
	if res.PerCoreCycles[0] < 50 {
		t.Errorf("sender finished at %d, expected to wait for a slot (~50)", res.PerCoreCycles[0])
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two cores each dequeue from the other first: classic deadlock.
	c := cfg2()
	p0 := prog(0,
		isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: QID(1, 0, ir.I64, 2), Edge: 1},
		isa.Instr{Op: isa.ConstI, Dst: 1, A: noReg, B: noReg, ImmI: 1},
		isa.Instr{Op: isa.Enq, A: 1, B: noReg, Dst: noReg, K: ir.I64, Q: QID(0, 1, ir.I64, 2), Edge: 2},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	p1 := prog(1,
		isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: QID(0, 1, ir.I64, 2), Edge: 2},
		isa.Instr{Op: isa.ConstI, Dst: 1, A: noReg, B: noReg, ImmI: 1},
		isa.Instr{Op: isa.Enq, A: 1, B: noReg, Dst: noReg, K: ir.I64, Q: QID(1, 0, ir.I64, 2), Edge: 1},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	m, err := New([]*isa.Program{p0, p1}, mem.New(), c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("expected deadlock error, got %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "blocked-empty") {
		t.Errorf("deadlock dump missing core states: %v", err)
	}
}

func TestEdgeTagMismatchDetected(t *testing.T) {
	c := cfg2()
	c.DebugEdges = true
	q := QID(0, 1, ir.I64, 2)
	p0 := prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 1},
		isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: q, Edge: 7},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	p1 := prog(1,
		isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: q, Edge: 9},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	m, err := New([]*isa.Program{p0, p1}, mem.New(), c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "FIFO mismatch") {
		t.Errorf("expected FIFO mismatch error, got %v", err)
	}
}

func TestBranching(t *testing.T) {
	// if (r0 == 0) skip the store; run twice with different conditions.
	run := func(cond int64) float64 {
		mm := mem.New()
		mm.AddF("o", []float64{0})
		p := prog(0,
			isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: cond},
			isa.Instr{Op: isa.Fjp, A: 0, B: noReg, Dst: noReg, Tgt: 5},
			isa.Instr{Op: isa.ConstF, Dst: 1, A: noReg, B: noReg, ImmF: 42},
			isa.Instr{Op: isa.ConstI, Dst: 2, A: noReg, B: noReg, ImmI: 0},
			isa.Instr{Op: isa.Store, A: 2, B: 1, Dst: noReg, K: ir.F64, Arr: 0},
			isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
		)
		m, err := New([]*isa.Program{p}, mm, cfg1())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return mm.SnapshotF("o")[0]
	}
	if got := run(1); got != 42 {
		t.Errorf("taken path: o[0] = %g, want 42", got)
	}
	if got := run(0); got != 0 {
		t.Errorf("skipped path: o[0] = %g, want 0", got)
	}
}

func TestIndirectJump(t *testing.T) {
	mm := mem.New()
	mm.AddF("o", []float64{0})
	p := prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 4}, // target
		isa.Instr{Op: isa.Jr, A: 0, B: noReg, Dst: noReg},
		isa.Instr{Op: isa.ConstF, Dst: 1, A: noReg, B: noReg, ImmF: -1}, // skipped
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},         // skipped
		isa.Instr{Op: isa.ConstF, Dst: 1, A: noReg, B: noReg, ImmF: 5},
		isa.Instr{Op: isa.ConstI, Dst: 2, A: noReg, B: noReg, ImmI: 0},
		isa.Instr{Op: isa.Store, A: 2, B: 1, Dst: noReg, K: ir.F64, Arr: 0},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	m, err := New([]*isa.Program{p}, mm, cfg1())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := mm.SnapshotF("o")[0]; got != 5 {
		t.Errorf("o[0] = %g, want 5 (jr must skip to index 4)", got)
	}
}

func TestMemPortSerializesMisses(t *testing.T) {
	// Two cores each issue one cold miss at t=0; with port occupancy the
	// second miss queues behind the first.
	mkProg := func(core int) *isa.Program {
		return prog(core,
			isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: int64(core) * 512},
			isa.Instr{Op: isa.Load, Dst: 1, A: 0, B: noReg, K: ir.F64, Arr: 0},
			isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
		)
	}
	run := func(port int64) (int64, int64) {
		mm := mem.New()
		mm.AddF("a", make([]float64, 1024))
		c := DefaultConfig(2)
		c.MemPortCycles = port
		m, err := New([]*isa.Program{mkProg(0), mkProg(1)}, mm, c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.PerCoreCycles[0], res.PerCoreCycles[1]
	}
	a0, b0 := run(0)
	if a0 != b0 {
		t.Errorf("without port contention both cores finish together: %d vs %d", a0, b0)
	}
	a1, b1 := run(30)
	if a1 == b1 {
		t.Error("with port contention one core's miss must queue behind the other")
	}
	if max64(a1, b1)-min64(a1, b1) != 30 {
		t.Errorf("queueing delay = %d, want 30", max64(a1, b1)-min64(a1, b1))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestDeterminism(t *testing.T) {
	// Two runs of a ping-pong program produce identical cycle counts.
	c := cfg2()
	qa := QID(0, 1, ir.I64, 2)
	qb := QID(1, 0, ir.I64, 2)
	p0 := prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 5},
		isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: qa, Edge: 1},
		isa.Instr{Op: isa.Deq, Dst: 1, A: noReg, B: noReg, K: ir.I64, Q: qb, Edge: 2},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	p1 := prog(1,
		isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: qa, Edge: 1},
		isa.Instr{Op: isa.Bin, BinOp: ir.Add, K: ir.I64, Dst: 1, A: 0, B: 0},
		isa.Instr{Op: isa.Enq, A: 1, B: noReg, Dst: noReg, K: ir.I64, Q: qb, Edge: 2},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	run := func() int64 {
		m, err := New([]*isa.Program{p0, p1}, mem.New(), c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if run() != run() {
		t.Error("simulation is not deterministic")
	}
}

func TestRuntimeErrors(t *testing.T) {
	t.Run("int div zero", func(t *testing.T) {
		p := prog(0,
			isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 1},
			isa.Instr{Op: isa.ConstI, Dst: 1, A: noReg, B: noReg, ImmI: 0},
			isa.Instr{Op: isa.Bin, BinOp: ir.Div, K: ir.I64, Dst: 2, A: 0, B: 1},
			isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
		)
		m, _ := New([]*isa.Program{p}, mem.New(), cfg1())
		if _, err := m.Run(); err == nil {
			t.Error("expected division-by-zero error")
		}
	})
	t.Run("load out of bounds", func(t *testing.T) {
		mm := mem.New()
		mm.AddF("a", make([]float64, 2))
		p := prog(0,
			isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 5},
			isa.Instr{Op: isa.Load, Dst: 1, A: 0, B: noReg, K: ir.F64, Arr: 0},
			isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
		)
		m, _ := New([]*isa.Program{p}, mm, cfg1())
		if _, err := m.Run(); err == nil {
			t.Error("expected bounds error")
		}
	})
	t.Run("pc off the end", func(t *testing.T) {
		p := prog(0, isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 1})
		m, _ := New([]*isa.Program{p}, mem.New(), cfg1())
		if _, err := m.Run(); err == nil {
			t.Error("expected pc-out-of-program error")
		}
	})
}

func TestConfigValidation(t *testing.T) {
	p := prog(0, isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg})
	if _, err := New(nil, mem.New(), DefaultConfig(1)); err == nil {
		t.Error("no programs must error")
	}
	c := DefaultConfig(1)
	if _, err := New([]*isa.Program{p, p}, mem.New(), c); err == nil {
		t.Error("more programs than cores must error")
	}
	c.QueueLen = 0
	if _, err := New([]*isa.Program{p}, mem.New(), c); err == nil {
		t.Error("zero queue length must error")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	p := prog(0,
		isa.Instr{Op: isa.Jp, Tgt: 0, Dst: noReg, A: noReg, B: noReg},
	)
	c := cfg1()
	c.MaxSteps = 100
	m, _ := New([]*isa.Program{p}, mem.New(), c)
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "MaxSteps") {
		t.Errorf("expected MaxSteps error, got %v", err)
	}
}

func TestQueueStatsInResult(t *testing.T) {
	c := cfg2()
	q := QID(0, 1, ir.I64, 2)
	p0 := prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 1},
		isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: q, Edge: 1},
		isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: q, Edge: 1},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	p1 := prog(1,
		isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: q, Edge: 1},
		isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: q, Edge: 1},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	m, _ := New([]*isa.Program{p0, p1}, mem.New(), c)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.QueuesUsed != 1 || res.PairsUsed != 1 || res.Transfers != 2 {
		t.Errorf("queue stats: used=%d pairs=%d transfers=%d", res.QueuesUsed, res.PairsUsed, res.Transfers)
	}
}

func TestLiveOutExtraction(t *testing.T) {
	p := prog(0,
		isa.Instr{Op: isa.ConstF, Dst: 0, A: noReg, B: noReg, ImmF: 2.5},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	p.RegName = map[isa.Reg]string{0: "result"}
	m, _ := New([]*isa.Program{p}, mem.New(), cfg1())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.LiveOut["result"]; !ok || v.F != 2.5 {
		t.Errorf("LiveOut = %v", res.LiveOut)
	}
}

func TestTraceOutput(t *testing.T) {
	var buf strings.Builder
	c := cfg1()
	c.Trace = &buf
	p := prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 1},
		isa.Instr{Op: isa.Bin, BinOp: ir.Add, K: ir.I64, Dst: 1, A: 0, B: 0},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	m, err := New([]*isa.Program{p}, mem.New(), c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"t=0..1 core=0 pc=0 consti", "pc=1 bin", "halt"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q:\n%s", frag, out)
		}
	}
	// Three completed instructions, three lines.
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("trace has %d lines, want 3:\n%s", got, out)
	}
}
