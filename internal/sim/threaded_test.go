package sim

import (
	"strings"
	"testing"

	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/mem"
)

// TestThreadedPartitionShape pins the coarse partition: blocks end only at
// real control transfers, branch targets resolve to mid-block (block, op)
// refs instead of forcing leaders, and the pcmap round-trips every pc.
func TestThreadedPartitionShape(t *testing.T) {
	// 0..2 straight-line, Fjp, Jp whose target lands mid-block, halt.
	p := prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 3},
		isa.Instr{Op: isa.ConstI, Dst: 1, A: noReg, B: noReg, ImmI: 1},
		isa.Instr{Op: isa.Bin, BinOp: ir.Sub, K: ir.I64, Dst: 0, A: 0, B: 1},
		isa.Instr{Op: isa.Fjp, A: 0, B: noReg, Dst: noReg, Tgt: 5},
		isa.Instr{Op: isa.Jp, Dst: noReg, A: noReg, B: noReg, Tgt: 2},
		isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
	)
	tp := compileThreaded(p, DefaultConfig(1).Cost)
	if !tp.ok {
		t.Fatalf("program ineligible: %s", tp.reason)
	}
	if len(tp.blocks) != 3 {
		t.Fatalf("got %d blocks, want 3 (blocks must end only at control transfers)", len(tp.blocks))
	}
	if got := len(tp.blocks[0].ops); got != 3 {
		t.Errorf("block 0 fused %d ops, want 3", got)
	}
	// The loop-back Jp targets pc 2, which is op 2 inside block 0 — a
	// mid-block entry, not a block leader.
	if want := (tref{blk: 0, op: 2}); tp.pcmap[2] != want {
		t.Errorf("pcmap[2] = %+v, want %+v", tp.pcmap[2], want)
	}
	if tp.blocks[1].term != ttJp || tp.blocks[1].tgt != (tref{blk: 0, op: 2}) {
		t.Errorf("loop-back block: term=%d tgt=%+v, want ttJp into {0 2}", tp.blocks[1].term, tp.blocks[1].tgt)
	}
	for pc := range p.Instrs {
		ref := tp.pcmap[pc]
		if got := pcAt(&tp.blocks[ref.blk], int(ref.op)); got != pc {
			t.Errorf("pcmap round-trip: pc %d maps to %+v which is pc %d", pc, ref, got)
		}
	}
}

// TestThreadedIneligibility covers the soundness checks that demote a
// program to the burst engine, by reason.
func TestThreadedIneligibility(t *testing.T) {
	ci := func(dst isa.Reg, v int64) isa.Instr {
		return isa.Instr{Op: isa.ConstI, Dst: dst, A: noReg, B: noReg, ImmI: v}
	}
	halt := isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg}
	cases := []struct {
		name   string
		prog   *isa.Program
		reason string
	}{
		{"empty", prog(0), "empty program"},
		{"jr outside driver", prog(0,
			ci(0, 2),
			isa.Instr{Op: isa.Jr, A: 0, B: noReg, Dst: noReg},
			halt,
		), "indirect jump outside the canonical driver"},
		{"branch target out of program", prog(0,
			isa.Instr{Op: isa.Jp, Dst: noReg, A: noReg, B: noReg, Tgt: 99},
			halt,
		), "branch target"},
		{"kind conflict", prog(0,
			// ConstF pins r0 to F64; Fjp requires its condition to be I64.
			isa.Instr{Op: isa.ConstF, Dst: 0, A: noReg, B: noReg, ImmF: 1.5},
			isa.Instr{Op: isa.Fjp, Dst: noReg, A: 0, B: noReg, Tgt: 0},
			halt,
		), "kind conflict"},
		{"possibly unassigned read", prog(0,
			isa.Instr{Op: isa.Bin, BinOp: ir.Add, K: ir.I64, Dst: 1, A: 0, B: 0},
			halt,
		), "possibly-unassigned"},
		{"queue id outside packing", prog(0,
			ci(0, 1),
			isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: 300, Edge: 1},
			halt,
		), "queue id 300 outside the packed encoding"},
		{"edge tag outside packing", prog(0,
			ci(0, 1),
			isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: 0, Edge: 70000},
			halt,
		), "edge tag 70000 outside the packed encoding"},
		{"register count outside packing", prog(0,
			ci(70000, 1),
			halt,
		), "outside the packed encoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := compileThreaded(tc.prog, DefaultConfig(1).Cost)
			if tp.ok {
				t.Fatalf("program unexpectedly eligible")
			}
			if !strings.Contains(tp.reason, tc.reason) {
				t.Errorf("reason = %q, want substring %q", tp.reason, tc.reason)
			}
		})
	}
}

// runOn runs the same programs/memory on one engine and returns the result.
func runOn(t *testing.T, progs []*isa.Program, build func() *mem.Memory, cfg Config, engine string) (*Result, *mem.Memory) {
	t.Helper()
	mm := build()
	c := cfg
	c.Engine = engine
	m, err := New(progs, mm, c)
	if err != nil {
		t.Fatalf("%s: New: %v", engine, err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%s: Run: %v", engine, err)
	}
	return res, mm
}

// TestThreadedJrDeoptMatchesReference drives the indirect-jump guard: the
// primary dispatches a non-canonical Jr target, which must deoptimize the
// secondary onto the burst engine mid-run with bit-identical results.
func TestThreadedJrDeoptMatchesReference(t *testing.T) {
	q := QID(0, 1, ir.I64, 2)
	ci := func(dst isa.Reg, v int64) isa.Instr {
		return isa.Instr{Op: isa.ConstI, Dst: dst, A: noReg, B: noReg, ImmI: v}
	}
	enq := isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.I64, Q: q, Edge: 1}
	halt := isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg}
	primary := prog(0,
		ci(0, 5), enq, // 5 is a valid body pc but not the canonical driverLen
		ci(0, 3), enq, // canonical body
		ci(0, 0), enq, // shutdown
		halt,
	)
	secondary := prog(1,
		isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: q, Edge: 1}, // 0
		isa.Instr{Op: isa.Fjp, A: 0, B: noReg, Dst: noReg, Tgt: 9},                   // 1
		isa.Instr{Op: isa.Jr, A: 0, B: noReg, Dst: noReg},                            // 2
		ci(1, 41), // 3: canonical body
		isa.Instr{Op: isa.Jp, Dst: noReg, A: noReg, B: noReg, Tgt: 0}, // 4
		ci(2, 0),  // 5: non-canonical body
		ci(3, 42), // 6
		isa.Instr{Op: isa.Store, A: 2, B: 3, Dst: noReg, K: ir.I64, Arr: 0}, // 7
		isa.Instr{Op: isa.Jp, Dst: noReg, A: noReg, B: noReg, Tgt: 0},       // 8
		halt, // 9
	)
	if tp := compileThreaded(secondary, DefaultConfig(2).Cost); !tp.ok {
		t.Fatalf("secondary must be eligible (deopt is a runtime event): %s", tp.reason)
	}
	build := func() *mem.Memory {
		mm := mem.New()
		mm.AddI("o", []int64{0})
		return mm
	}
	cfg := cfg2()
	ref, refMem := runOn(t, []*isa.Program{primary, secondary}, build, cfg, EngineReference)
	thr, thrMem := runOn(t, []*isa.Program{primary, secondary}, build, cfg, EngineThreaded)
	if got := thrMem.SnapshotI("o")[0]; got != 42 {
		t.Errorf("o[0] = %d, want 42 (non-canonical body must run)", got)
	}
	if want := refMem.SnapshotI("o")[0]; thrMem.SnapshotI("o")[0] != want {
		t.Errorf("memory diverges: threaded %d, reference %d", thrMem.SnapshotI("o")[0], want)
	}
	if thr.Cycles != ref.Cycles {
		t.Errorf("cycles diverge after deopt: threaded %d, reference %d", thr.Cycles, ref.Cycles)
	}
	for i := range ref.PerCoreCycles {
		if thr.PerCoreCycles[i] != ref.PerCoreCycles[i] {
			t.Errorf("core %d cycles diverge: threaded %d, reference %d", i, thr.PerCoreCycles[i], ref.PerCoreCycles[i])
		}
	}
}

// TestThreadedDeqKindDeoptMatchesReference drives the dequeue kind guard:
// the producer enqueues a float where the consumer's static solution says
// int. The threaded consumer must complete the dequeue with reference
// semantics and permanently fall back to the burst engine.
func TestThreadedDeqKindDeoptMatchesReference(t *testing.T) {
	q := QID(1, 0, ir.I64, 2)
	halt := isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg}
	consumer := prog(0,
		isa.Instr{Op: isa.Deq, Dst: 0, A: noReg, B: noReg, K: ir.I64, Q: q, Edge: 1},
		isa.Instr{Op: isa.Bin, BinOp: ir.Add, K: ir.I64, Dst: 1, A: 0, B: 0},
		halt,
	)
	consumer.RegName = map[isa.Reg]string{1: "out"}
	producer := prog(1,
		isa.Instr{Op: isa.ConstF, Dst: 0, A: noReg, B: noReg, ImmF: 2.5},
		isa.Instr{Op: isa.Enq, A: 0, B: noReg, Dst: noReg, K: ir.F64, Q: q, Edge: 1},
		halt,
	)
	if tp := compileThreaded(consumer, DefaultConfig(2).Cost); !tp.ok {
		t.Fatalf("consumer must be eligible (the mismatch is a runtime event): %s", tp.reason)
	}
	cfg := cfg2()
	ref, _ := runOn(t, []*isa.Program{consumer, producer}, mem.New, cfg, EngineReference)
	thr, _ := runOn(t, []*isa.Program{consumer, producer}, mem.New, cfg, EngineThreaded)
	if thr.Cycles != ref.Cycles {
		t.Errorf("cycles diverge: threaded %d, reference %d", thr.Cycles, ref.Cycles)
	}
	got, ok := thr.LiveOut["out"]
	want := ref.LiveOut["out"]
	if !ok || got != want {
		t.Errorf("live-out diverges: threaded %+v (ok=%v), reference %+v", got, ok, want)
	}
	if want.K != ir.F64 || want.F != 5.0 {
		t.Errorf("reference live-out = %+v, want the dynamically-kinded float 5", want)
	}
}

// TestThreadedTranslationCache pins both cache layers: pointer identity
// short-circuits recompilation, structural equality shares through the
// content-addressed cache, and a different cost table recompiles.
func TestThreadedTranslationCache(t *testing.T) {
	mk := func() *isa.Program {
		return prog(0,
			isa.Instr{Op: isa.ConstI, Dst: 0, A: noReg, B: noReg, ImmI: 7},
			isa.Instr{Op: isa.Halt, Dst: noReg, A: noReg, B: noReg},
		)
	}
	ct := DefaultConfig(1).Cost
	p := mk()
	tp1 := threadedFor(p, ct)
	if !tp1.ok {
		t.Fatalf("ineligible: %s", tp1.reason)
	}
	if tp2 := threadedFor(p, ct); tp2 != tp1 {
		t.Error("same pointer + same cost table must hit the pointer cache")
	}
	if tp3 := threadedFor(mk(), ct); tp3 != tp1 {
		t.Error("structurally equal program must share through the content cache")
	}
	ct2 := ct
	ct2.IntALU += 1
	if tp4 := threadedFor(p, ct2); tp4 == tp1 {
		t.Error("different cost table must not share a translation")
	}
}
