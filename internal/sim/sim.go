// Package sim is the machine simulator: N in-order single-issue cores with
// a shared memory, per-core L1 timing caches, and the paper's hardware
// communication queues. It plays the role the Mambo Blue Gene/Q simulator
// plays in the paper's evaluation: it charges a configurable latency per
// instruction, makes enqueue/dequeue block on full/empty queues, and delays
// the visibility of transferred values by the queue transfer latency
// (Fig 11).
//
// The simulation is a deterministic discrete-event loop: among all runnable
// cores the one with the smallest local time executes its next instruction.
// Because cores interact only through the queues (the compiler never splits
// ordered memory accesses across cores), this ordering yields the same
// result as a cycle-by-cycle lockstep simulation.
package sim

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"fgp/internal/cost"
	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/mem"
	"fgp/internal/obs"
	"fgp/internal/queue"
)

// Config parameterizes the machine.
type Config struct {
	Cores           int
	QueueLen        int   // slots per queue (paper default: 20)
	TransferLatency int64 // cycles before an enqueued value is visible (paper default: 5)
	Cost            cost.Table
	Cache           mem.CacheConfig
	// DebugEdges verifies that every dequeued value carries the edge tag
	// the dequeue instruction expects, catching compiler FIFO-order bugs.
	DebugEdges bool
	// CollectProfile records per-TAC-instruction load latencies, consumed
	// by the partitioner as profile feedback.
	CollectProfile bool
	// GroupSize restricts queue connectivity: hardware queues exist only
	// between cores in the same group of this size (cores [0,G), [G,2G),
	// ...). 0 means all-to-all. The paper scales the design by grouping
	// cores and configuring queues within a group (Section II).
	GroupSize int
	// MemPortCycles is the occupancy of the shared memory port per L1
	// miss: consecutive misses from any cores are serialized at this rate,
	// modeling the finite miss bandwidth the cores share below their
	// private L1s (on BG/Q, the crossbar to the shared L2). 0 disables the
	// model (infinite bandwidth).
	MemPortCycles int64
	// MaxSteps bounds total executed instructions (runaway guard).
	MaxSteps int64
	// Trace, when non-nil, receives one line per completed instruction in
	// canonical event order: "t=<start>..<end> core=<id> pc=<pc> <op>".
	// Queue stalls show up as gaps between end and the next start. It is a
	// thin adapter over Sink (obs.NewText works under either engine); the
	// writes are buffered and flushed before Run returns.
	Trace io.Writer
	// Sink, when non-nil, receives the typed observability event stream —
	// instruction retires, queue operations, stall windows with causes,
	// region markers — in canonical order after the run, identical between
	// the burst and reference engines. A nil sink costs nothing: every
	// emission hides behind one predictable branch.
	Sink obs.Sink
	// Reference forces the retained per-instruction scheduler: one global
	// scheduling decision per executed instruction, exactly the seed
	// implementation. The default engine executes each picked core in
	// uninterrupted bursts of non-communicating instructions instead; both
	// engines produce bit-identical Results (cycles, stalls, transfers,
	// live-outs), which the determinism tests enforce. The reference engine
	// remains as the oracle the burst engine is validated against.
	Reference bool
	// Engine selects the execution engine by name: EngineBurst (the
	// default), EngineReference (the per-instruction oracle, equivalent to
	// Reference: true), or EngineThreaded (basic-block threaded code; see
	// threaded.go). When set it takes precedence over the legacy Reference
	// flag; an unknown name fails the run. All engines produce bit-identical
	// Results and event streams.
	Engine string
}

// Engine names accepted by Config.Engine.
const (
	EngineBurst     = "burst"
	EngineReference = "reference"
	EngineThreaded  = "threaded"
)

// Engines lists the selectable execution engines, default first.
func Engines() []string { return []string{EngineBurst, EngineReference, EngineThreaded} }

// EngineName resolves the effective engine: Engine when set, else the
// legacy Reference flag, else the burst default.
func (c *Config) EngineName() string {
	if c.Engine != "" {
		return c.Engine
	}
	if c.Reference {
		return EngineReference
	}
	return EngineBurst
}

// DefaultConfig returns the configuration used by the paper's main
// experiments: queue length 20, transfer latency 5 cycles.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:           cores,
		QueueLen:        20,
		TransferLatency: 5,
		Cost:            cost.Default(),
		Cache:           mem.DefaultCache(),
		MemPortCycles:   32,
		MaxSteps:        2_000_000_000,
	}
}

// QID computes the queue index for a (src, dst, class) triple.
func QID(src, dst int, class ir.Kind, cores int) int32 {
	c := int32(0)
	if class == ir.I64 {
		c = 1
	}
	return int32(src*cores+dst)*2 + c
}

// Result summarizes one simulation.
type Result struct {
	Cycles        int64
	PerCoreCycles []int64
	PerCoreInstrs []int64
	EnqStalls     []int64 // cycles spent blocked on full queues, per core
	DeqStalls     []int64 // cycles spent blocked/waiting on dequeues, per core
	QueuesUsed    int     // distinct queues that carried at least one value
	PairsUsed     int     // distinct (sender, receiver) core pairs used
	Transfers     int64   // total values moved through queues
	LoadHits      int64
	LoadMisses    int64
	// LiveOut holds the final values of registers named in the primary
	// program's RegName map for requested live-out temps.
	LiveOut map[string]interp.Value
	// LoadProfile maps TAC instruction id -> (total latency, count), when
	// CollectProfile is set.
	LoadProfile map[int32][2]int64
	// QueueHighWater is each queue's peak occupancy, indexed by queue id
	// (zero for absent or never-used queues).
	QueueHighWater []int
	// MemPortBusyCycles totals the cycles the shared memory port spent
	// occupied serializing L1 misses (Config.MemPortCycles per miss).
	MemPortBusyCycles int64
}

// ErrDeadlock is wrapped by the error returned when all unfinished cores
// are blocked on queues.
var ErrDeadlock = errors.New("sim: deadlock")

type blockKind uint8

const (
	notBlocked blockKind = iota
	blockedFull
	blockedEmpty
)

type coreState struct {
	id      int
	prog    *isa.Program
	pc      int
	time    int64
	regs    []interp.Value
	halted  bool
	blocked blockKind
	blockQ  *queue.Queue
	blockAt int64
	instrs  int64
	enqSt   int64
	deqSt   int64
	cache   *mem.Cache
}

// Machine wires programs, memory and queues together.
type Machine struct {
	cfg    Config
	mm     *mem.Memory
	cores  []*coreState
	queues []*queue.Queue
	// memPortFree is the time at which the shared memory port next accepts
	// an L1 miss (see Config.MemPortCycles).
	memPortFree int64
	// prof accumulates (total latency, count) per TAC instruction id when
	// Config.CollectProfile is set; dense because TAC ids are. result()
	// converts it to the sparse LoadProfile map.
	prof [][2]int64
	// portBusy totals the cycles the memory port spent occupied.
	portBusy int64
	// code holds the predecoded programs the burst engine executes; built
	// lazily on the first burst-mode Run.
	code [][]dinstr
	// Threaded-engine state (threaded.go/tcompile.go): the compiled block
	// programs, per-core typed register files, and the machine's memory
	// array bindings; all nil until the first threaded-mode Run.
	tprogs []*tprog
	tcores []*tcore
	tArrF  [][]float64
	tArrI  [][]int64
	tBase  []int64

	// Observability state (see internal/obs); all nil/false when no sink is
	// attached, so the hot paths pay one branch. sink is the effective sink
	// (Config.Sink plus the legacy Config.Trace adapter); obsBuf collects
	// events per core in emission order, merged into canonical order and
	// delivered after the run.
	sink                                     obs.Sink
	obsRetire, obsQueue, obsStall, obsRegion bool
	obsBuf                                   [][]obs.Event
	// marks indexes each core's region marks by pc; regionStack tracks the
	// regions currently open on each core so an exit mark on a shared merge
	// point only fires for the path that actually opened its region.
	marks       []map[int][]isa.Mark
	regionStack [][]int32
}

// New builds a machine for the given per-core programs. progs[i] runs on
// core i; len(progs) must not exceed cfg.Cores (idle cores are legal).
func New(progs []*isa.Program, memory *mem.Memory, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("sim: no programs")
	}
	if cfg.Cores < len(progs) {
		return nil, fmt.Errorf("sim: %d programs but only %d cores", len(progs), cfg.Cores)
	}
	m := &Machine{cfg: cfg, mm: memory}
	if cfg.CollectProfile {
		maxTac := int32(-1)
		for _, p := range progs {
			for i := range p.Instrs {
				if t := p.Instrs[i].Tac; t > maxTac {
					maxTac = t
				}
			}
		}
		m.prof = make([][2]int64, maxTac+1)
	}
	for i, p := range progs {
		m.cores = append(m.cores, &coreState{
			id:    i,
			prog:  p,
			regs:  make([]interp.Value, p.NRegs),
			cache: mem.NewCache(cfg.Cache),
		})
	}
	n := cfg.Cores
	m.queues = make([]*queue.Queue, n*n*2)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if cfg.GroupSize > 0 && s/cfg.GroupSize != d/cfg.GroupSize {
				continue // no hardware queue across groups
			}
			m.queues[QID(s, d, ir.F64, n)] = queue.New(QID(s, d, ir.F64, n), s, d, ir.F64, cfg.QueueLen)
			m.queues[QID(s, d, ir.I64, n)] = queue.New(QID(s, d, ir.I64, n), s, d, ir.I64, cfg.QueueLen)
		}
	}
	return m, nil
}

// Run executes until every core halts. It returns a deadlock error (with a
// state dump wrapped around ErrDeadlock) if all unfinished cores block.
//
// Two engines produce the identical deterministic execution: the default
// burst engine (runBurst) executes each picked core in uninterrupted runs
// of non-communicating instructions, and the reference engine
// (runReference) re-enters the global scheduler after every instruction.
// Config.Reference selects the latter. Both engines feed Config.Sink and
// Config.Trace, and produce the identical canonical event stream.
//
// On error (deadlock, runaway), the events emitted so far still reach the
// sink, so a partial trace of the failing run survives.
func (m *Machine) Run() (*Result, error) { return m.RunContext(context.Background()) }

// cancelStride is how many executed instructions may pass between context
// checks: the reference engine polls ctx.Done() every cancelStride steps,
// and the burst engine caps each uninterrupted burst at cancelStride steps
// when the context is cancellable (a context.Background() run pays nothing).
// It bounds cancellation latency to one burst horizon — a few tens of
// microseconds of host time — while keeping the poll off the per-instruction
// hot path. Must be a power of two.
const cancelStride = 1 << 16

// RunContext is Run with cooperative cancellation: when ctx is cancelled or
// its deadline passes, the simulation aborts within one burst horizon (at
// most cancelStride instructions) and returns ctx.Err() verbatim. Events
// emitted before the abort still reach the sink, like any other error path.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	sink := m.cfg.Sink
	var bw *bufio.Writer
	if m.cfg.Trace != nil {
		// The legacy text trace is an adapter over the event stream. Buffer
		// the per-line writes; the seed wrote every line straight through.
		bw = bufio.NewWriterSize(m.cfg.Trace, 1<<16)
		if text := obs.NewText(bw); sink != nil {
			sink = obs.Tee(text, sink)
		} else {
			sink = text
		}
	}
	if sink != nil {
		m.attachObs(sink)
	}
	var res *Result
	var err error
	switch eng := m.cfg.EngineName(); eng {
	case EngineReference:
		res, err = m.runReference(ctx)
	case EngineThreaded:
		res, err = m.runThreaded(ctx)
	case EngineBurst:
		res, err = m.runBurst(ctx)
	default:
		res, err = nil, fmt.Errorf("sim: unknown engine %q (have %v)", eng, Engines())
	}
	if sink != nil {
		if serr := m.drainObs(sink); serr != nil && err == nil {
			err = fmt.Errorf("sim: event sink: %w", serr)
		}
		if bw != nil {
			if ferr := bw.Flush(); ferr != nil && err == nil {
				err = fmt.Errorf("sim: flushing trace: %w", ferr)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if m.cfg.DebugEdges {
		// Debug runs also audit the queue stats the observability layer
		// pairs transfers with (Transfers/Pops vs occupancy); a completed
		// program has drained its queues, so any drift is now visible.
		for _, q := range m.queues {
			if q == nil {
				continue
			}
			if serr := q.CheckStats(); serr != nil {
				return nil, fmt.Errorf("sim: %w", serr)
			}
		}
	}
	return res, nil
}

// runReference is the retained per-instruction scheduler: the seed
// implementation, kept verbatim as the oracle for the burst engine (plus
// the strided cancellation poll both engines share).
func (m *Machine) runReference(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	var steps int64
	for {
		if done != nil && steps&(cancelStride-1) == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		c := m.pickCore()
		if c == nil {
			if m.allHalted() {
				break
			}
			return nil, fmt.Errorf("%w\n%s", ErrDeadlock, m.dump())
		}
		if err := m.step(c); err != nil {
			return nil, fmt.Errorf("sim: core %d pc %d t=%d: %w", c.id, c.pc, c.time, err)
		}
		steps++
		if steps > m.cfg.MaxSteps {
			return nil, fmt.Errorf("sim: exceeded MaxSteps=%d (livelock?)\n%s", m.cfg.MaxSteps, m.dump())
		}
	}
	return m.result(), nil
}

func (m *Machine) pickCore() *coreState {
	var best *coreState
	for _, c := range m.cores {
		if c.halted || c.blocked != notBlocked {
			continue
		}
		if best == nil || c.time < best.time {
			best = c
		}
	}
	return best
}

func (m *Machine) allHalted() bool {
	for _, c := range m.cores {
		if !c.halted {
			return false
		}
	}
	return true
}

func (m *Machine) coreByID(id int) *coreState {
	if id < len(m.cores) {
		return m.cores[id]
	}
	return nil
}

// step executes one instruction on c, emitting the completion's
// observability events when a sink is attached. The scheduler and the burst
// engine's communication path both come through here, so queue, stall and
// retire emission lives in one place. The wrapper is small enough to
// inline, so the nil-sink path costs one predictable branch over calling
// stepExec directly.
func (m *Machine) step(c *coreState) error {
	if m.sink != nil {
		return m.stepObs(c)
	}
	return m.stepExec(c)
}

// stepObs is step's instrumented slow path: it brackets stepExec with the
// retire-event bookkeeping.
func (m *Machine) stepObs(c *coreState) error {
	prePC, preT := c.pc, c.time
	err := m.stepExec(c)
	if err == nil && c.blocked == notBlocked && (c.pc != prePC || c.halted) {
		m.evComplete(c.id, prePC, c.prog.Instrs[prePC].Op, preT, c.time)
	}
	return err
}

// stepExec executes one instruction on c.
func (m *Machine) stepExec(c *coreState) error {
	if c.pc < 0 || c.pc >= len(c.prog.Instrs) {
		return fmt.Errorf("pc out of program (len %d)", len(c.prog.Instrs))
	}
	in := &c.prog.Instrs[c.pc]
	t := &m.cfg.Cost
	switch in.Op {
	case isa.Nop:
		c.time++
	case isa.ConstF:
		c.regs[in.Dst] = interp.VF(in.ImmF)
		c.time += t.Const
	case isa.ConstI:
		c.regs[in.Dst] = interp.VI(in.ImmI)
		c.time += t.Const
	case isa.Mov:
		c.regs[in.Dst] = c.regs[in.A]
		c.time += t.Mov
	case isa.Bin:
		v, err := interp.EvalBin(in.BinOp, c.regs[in.A], c.regs[in.B])
		if err != nil {
			return err
		}
		c.regs[in.Dst] = v
		c.time += t.Bin(in.BinOp, in.K)
	case isa.Un:
		v, err := interp.EvalUn(in.UnOp, c.regs[in.A])
		if err != nil {
			return err
		}
		c.regs[in.Dst] = v
		c.time += t.Un(in.UnOp, in.K)
	case isa.Load:
		idx := c.regs[in.A].I
		var v interp.Value
		if in.K == ir.F64 {
			f, err := m.mm.LoadF(in.Arr, idx)
			if err != nil {
				return err
			}
			v = interp.VF(f)
		} else {
			iv, err := m.mm.LoadI(in.Arr, idx)
			if err != nil {
				return err
			}
			v = interp.VI(iv)
		}
		c.regs[in.Dst] = v
		var lat int64
		if c.cache.Access(m.mm.Addr(in.Arr, idx)) {
			lat = t.L1Hit
		} else {
			start := c.time
			if m.cfg.MemPortCycles > 0 {
				if m.memPortFree > start {
					start = m.memPortFree
				}
				m.memPortFree = start + m.cfg.MemPortCycles
				m.portBusy += m.cfg.MemPortCycles
			}
			if m.obsStall {
				m.evStall(c.id, obs.CauseMemPort, c.time, start)
				m.evStall(c.id, obs.CauseL1Miss, start+t.L1Hit, start+t.L1Miss)
			}
			lat = start - c.time + t.L1Miss
		}
		c.time += lat
		if m.prof != nil && in.Tac >= 0 {
			m.prof[in.Tac][0] += lat
			m.prof[in.Tac][1]++
		}
	case isa.Store:
		idx := c.regs[in.A].I
		if in.K == ir.F64 {
			if err := m.mm.StoreF(in.Arr, idx, c.regs[in.B].F); err != nil {
				return err
			}
		} else {
			if err := m.mm.StoreI(in.Arr, idx, c.regs[in.B].I); err != nil {
				return err
			}
		}
		c.cache.Touch(m.mm.Addr(in.Arr, idx))
		c.time += t.Store
	case isa.Enq:
		q := m.queues[in.Q]
		if q == nil {
			return fmt.Errorf("no hardware queue %d (cross-group transfer)", in.Q)
		}
		if q.Full() {
			c.blocked = blockedFull
			c.blockQ = q
			c.blockAt = c.time
			return nil // pc unchanged; retried after a dequeue frees a slot
		}
		q.Push(c.regs[in.A], c.time+m.cfg.TransferLatency, in.Edge)
		if m.obsQueue {
			m.evQueue(obs.KEnq, c.id, q, c.time)
		}
		c.time += t.Enq
		// Wake the receiver if it is blocked waiting for this queue.
		if dst := m.coreByID(q.Dst); dst != nil && dst.blocked == blockedEmpty && dst.blockQ == q {
			dst.blocked = notBlocked
			dst.blockQ = nil
		}
	case isa.Deq:
		q := m.queues[in.Q]
		if q == nil {
			return fmt.Errorf("no hardware queue %d (cross-group transfer)", in.Q)
		}
		if q.Empty() {
			c.blocked = blockedEmpty
			c.blockQ = q
			c.blockAt = c.time
			return nil
		}
		e := q.Pop(c.time)
		if m.cfg.DebugEdges && in.Edge != e.Edge {
			return fmt.Errorf("queue %s FIFO mismatch: dequeue expects edge %d, head carries edge %d", q, in.Edge, e.Edge)
		}
		start := c.time
		if e.AvailAt > start {
			start = e.AvailAt
		}
		c.deqSt += start - c.time
		if m.obsStall {
			// The deq-empty window covers both the blocked-on-empty wait and
			// the visibility wait on the transfer latency — exactly what the
			// deqSt counter accumulates.
			m.evStall(c.id, obs.CauseDeqEmpty, c.time, start)
		}
		if m.obsQueue {
			m.evQueue(obs.KDeq, c.id, q, start)
		}
		c.regs[in.Dst] = e.V
		c.time = start + t.Deq
		// Wake the sender if it is blocked on a full queue.
		if src := m.coreByID(q.Src); src != nil && src.blocked == blockedFull && src.blockQ == q {
			src.blocked = notBlocked
			src.blockQ = nil
			src.enqSt += start - src.blockAt
			if m.obsStall {
				// The sender's enq-full window is known only now, at the
				// wake; emit it into the sender's buffer (the canonical merge
				// re-orders it by start time), matching enqSt exactly.
				m.evStall(src.id, obs.CauseEnqFull, src.blockAt, start)
			}
			if src.time < start {
				src.time = start
			}
		}
	case isa.Fjp:
		c.time += t.Branch
		if c.regs[in.A].I == 0 {
			c.pc = int(in.Tgt)
			c.instrs++
			return nil
		}
	case isa.Jp:
		c.time += t.Branch
		c.pc = int(in.Tgt)
		c.instrs++
		return nil
	case isa.Jr:
		c.time += t.Branch
		c.pc = int(c.regs[in.A].I)
		c.instrs++
		return nil
	case isa.Halt:
		c.halted = true
		c.instrs++
		return nil
	default:
		return fmt.Errorf("unknown opcode %s", in.Op)
	}
	c.pc++
	c.instrs++
	return nil
}

func (m *Machine) result() *Result {
	r := &Result{}
	if m.prof != nil {
		r.LoadProfile = map[int32][2]int64{}
		for tac, p := range m.prof {
			if p[1] > 0 {
				r.LoadProfile[int32(tac)] = p
			}
		}
	}
	for _, c := range m.cores {
		r.PerCoreCycles = append(r.PerCoreCycles, c.time)
		r.PerCoreInstrs = append(r.PerCoreInstrs, c.instrs)
		r.EnqStalls = append(r.EnqStalls, c.enqSt)
		r.DeqStalls = append(r.DeqStalls, c.deqSt)
		if c.time > r.Cycles {
			r.Cycles = c.time
		}
		r.LoadHits += c.cache.Hits
		r.LoadMisses += c.cache.Misses
	}
	pairs := map[[2]int]bool{}
	r.QueueHighWater = make([]int, len(m.queues))
	for i, q := range m.queues {
		if q != nil && q.Used() {
			q.FoldPeak() // settle any relaxed-order pushes (threaded engine)
			r.QueuesUsed++
			r.Transfers += q.Transfers
			r.QueueHighWater[i] = q.Peak
			pairs[[2]int{q.Src, q.Dst}] = true
		}
	}
	r.PairsUsed = len(pairs)
	r.MemPortBusyCycles = m.portBusy
	// Extract live-out values from the primary core's named registers.
	primary := m.cores[0]
	if len(primary.prog.RegName) > 0 {
		r.LiveOut = map[string]interp.Value{}
		for reg, name := range primary.prog.RegName {
			r.LiveOut[name] = primary.regs[reg]
		}
	}
	return r
}

func (m *Machine) dump() string {
	var sb strings.Builder
	for _, c := range m.cores {
		state := "run"
		switch {
		case c.halted:
			state = "halted"
		case c.blocked == blockedFull:
			state = fmt.Sprintf("blocked-full on %s", c.blockQ)
		case c.blocked == blockedEmpty:
			state = fmt.Sprintf("blocked-empty on %s", c.blockQ)
		}
		fmt.Fprintf(&sb, "  core %d: pc=%d t=%d %s\n", c.id, c.pc, c.time, state)
	}
	for _, q := range m.queues {
		if q != nil && q.Len() > 0 {
			fmt.Fprintf(&sb, "  %s has %d undelivered entries\n", q, q.Len())
		}
	}
	return sb.String()
}
