// Package cost defines the static latency model of the simulated in-order
// core. The same table serves two roles, mirroring the paper's setup:
//
//   - the simulator charges these latencies when executing instructions
//     (playing the part of the Mambo A2 pipeline model), and
//   - the compiler's partitioning heuristics use the table (together with
//     profile feedback for memory) as the static execution-time estimate.
package cost

import "fgp/internal/ir"

// Table holds per-operation latencies in cycles.
type Table struct {
	IntALU int64 // add/sub/logic/shift/compare on I64
	IntMul int64
	IntDiv int64
	FAdd   int64 // FP add/sub/min/max/abs/neg/compare
	FMul   int64
	FDiv   int64
	FSqrt  int64
	FMath  int64 // exp/log
	Cvt    int64 // int<->float conversion
	Mov    int64
	Const  int64
	Branch int64 // conditional or unconditional jump
	Store  int64 // write-through store issue
	L1Hit  int64
	L1Miss int64
	Enq    int64 // pipeline occupancy of an enqueue (paper: 1 cycle)
	Deq    int64 // pipeline occupancy of a dequeue (paper: 1 cycle)
}

// Default returns the latency table used in all experiments. The values are
// chosen to resemble a simple in-order core like the BG/Q A2: single-cycle
// integer ALU, moderately pipelined (but blocking, single-issue) FP ops,
// expensive divide/sqrt, an L1 with single-digit hit latency and a miss
// penalty near fifty cycles.
func Default() Table {
	return Table{
		IntALU: 1,
		IntMul: 2,
		IntDiv: 18,
		FAdd:   6,
		FMul:   6,
		FDiv:   22,
		FSqrt:  24,
		FMath:  38,
		Cvt:    2,
		Mov:    1,
		Const:  1,
		Branch: 2,
		Store:  1,
		L1Hit:  4,
		L1Miss: 46,
		Enq:    1,
		Deq:    1,
	}
}

// Bin returns the latency of a binary operator on operands of kind k.
func (t Table) Bin(op ir.BinOp, k ir.Kind) int64 {
	if k == ir.I64 || op.IsCompare() && k == ir.I64 {
		switch op {
		case ir.Mul:
			return t.IntMul
		case ir.Div, ir.Rem:
			return t.IntDiv
		default:
			return t.IntALU
		}
	}
	switch op {
	case ir.Mul:
		return t.FMul
	case ir.Div:
		return t.FDiv
	case ir.Add, ir.Sub, ir.Min, ir.Max:
		return t.FAdd
	default: // FP comparisons
		return t.FAdd
	}
}

// Un returns the latency of a unary operator on an operand of kind k.
func (t Table) Un(op ir.UnOp, k ir.Kind) int64 {
	switch op {
	case ir.Sqrt:
		return t.FSqrt
	case ir.Exp, ir.Log:
		return t.FMath
	case ir.CvtIF, ir.CvtFI:
		return t.Cvt
	case ir.Neg, ir.Abs, ir.Floor:
		if k == ir.F64 {
			return t.FAdd
		}
		return t.IntALU
	case ir.Not:
		return t.IntALU
	}
	return t.IntALU
}
