package cost

import (
	"testing"

	"fgp/internal/ir"
)

func TestBinLatencies(t *testing.T) {
	tab := Default()
	cases := []struct {
		op   ir.BinOp
		k    ir.Kind
		want int64
	}{
		{ir.Add, ir.I64, tab.IntALU},
		{ir.Mul, ir.I64, tab.IntMul},
		{ir.Div, ir.I64, tab.IntDiv},
		{ir.Rem, ir.I64, tab.IntDiv},
		{ir.And, ir.I64, tab.IntALU},
		{ir.Lt, ir.I64, tab.IntALU},
		{ir.Add, ir.F64, tab.FAdd},
		{ir.Sub, ir.F64, tab.FAdd},
		{ir.Mul, ir.F64, tab.FMul},
		{ir.Div, ir.F64, tab.FDiv},
		{ir.Min, ir.F64, tab.FAdd},
		{ir.Lt, ir.F64, tab.FAdd},
	}
	for _, c := range cases {
		if got := tab.Bin(c.op, c.k); got != c.want {
			t.Errorf("Bin(%s, %s) = %d, want %d", c.op, c.k, got, c.want)
		}
	}
}

func TestUnLatencies(t *testing.T) {
	tab := Default()
	cases := []struct {
		op   ir.UnOp
		k    ir.Kind
		want int64
	}{
		{ir.Sqrt, ir.F64, tab.FSqrt},
		{ir.Exp, ir.F64, tab.FMath},
		{ir.Log, ir.F64, tab.FMath},
		{ir.CvtIF, ir.I64, tab.Cvt},
		{ir.CvtFI, ir.F64, tab.Cvt},
		{ir.Neg, ir.F64, tab.FAdd},
		{ir.Neg, ir.I64, tab.IntALU},
		{ir.Abs, ir.F64, tab.FAdd},
		{ir.Not, ir.I64, tab.IntALU},
	}
	for _, c := range cases {
		if got := tab.Un(c.op, c.k); got != c.want {
			t.Errorf("Un(%s, %s) = %d, want %d", c.op, c.k, got, c.want)
		}
	}
}

func TestDefaultsSane(t *testing.T) {
	tab := Default()
	// The relationships the evaluation depends on: queue ops are single
	// cycle (paper Section V), misses dwarf hits, divides dwarf adds.
	if tab.Enq != 1 || tab.Deq != 1 {
		t.Errorf("enqueue/dequeue must cost one pipeline cycle (paper): %d/%d", tab.Enq, tab.Deq)
	}
	if tab.L1Miss <= tab.L1Hit*4 {
		t.Error("miss must dwarf hit latency")
	}
	if tab.FDiv <= tab.FMul || tab.FSqrt <= tab.FMul {
		t.Error("divide/sqrt must dwarf multiply")
	}
	if tab.IntALU != 1 {
		t.Error("integer ALU should be single cycle on an A2-like core")
	}
}
