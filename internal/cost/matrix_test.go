// Exhaustive coverage of the latency table: every operator × kind
// combination reachable from the IR constructors is pinned to its table
// entry, and a reflection guard fails the build of any future Table field
// that is not added to the coverage ledger below.

package cost

import (
	"reflect"
	"testing"

	"fgp/internal/ir"
)

// allBinOps and allUnOps must track the enums in internal/ir/kind.go; the
// String() fallback check below catches a drifted list.
var allBinOps = []ir.BinOp{
	ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.Min, ir.Max,
	ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr,
	ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge,
}

var allUnOps = []ir.UnOp{
	ir.Neg, ir.Not, ir.Sqrt, ir.Exp, ir.Log, ir.Abs, ir.Floor, ir.CvtIF, ir.CvtFI,
}

func TestOpListsComplete(t *testing.T) {
	// One past the last named constant must be unnamed in both enums.
	if got := ir.BinOp(len(allBinOps)).String(); got != "bin(18)" {
		t.Errorf("binary operator list out of date: op 18 prints %q", got)
	}
	if got := ir.UnOp(len(allUnOps)).String(); got != "un(9)" {
		t.Errorf("unary operator list out of date: op 9 prints %q", got)
	}
	for i, op := range allBinOps {
		if int(op) != i {
			t.Fatalf("allBinOps[%d] = %s, not in enum order", i, op)
		}
	}
	for i, op := range allUnOps {
		if int(op) != i {
			t.Fatalf("allUnOps[%d] = %s, not in enum order", i, op)
		}
	}
}

// TestBinMatrix pins Table.Bin for every operator on every kind the IR
// constructors can produce (IntOnly operators reject F64 operands at
// construction, so that corner is unreachable).
func TestBinMatrix(t *testing.T) {
	tab := Default()
	intWant := func(op ir.BinOp) int64 {
		switch op {
		case ir.Mul:
			return tab.IntMul
		case ir.Div, ir.Rem:
			return tab.IntDiv
		default:
			return tab.IntALU
		}
	}
	floatWant := func(op ir.BinOp) int64 {
		switch op {
		case ir.Mul:
			return tab.FMul
		case ir.Div:
			return tab.FDiv
		default: // add/sub/min/max and all comparisons share the FP adder
			return tab.FAdd
		}
	}
	for _, op := range allBinOps {
		if got, want := tab.Bin(op, ir.I64), intWant(op); got != want {
			t.Errorf("Bin(%s, i64) = %d, want %d", op, got, want)
		}
		if op.IntOnly() {
			continue
		}
		if got, want := tab.Bin(op, ir.F64), floatWant(op); got != want {
			t.Errorf("Bin(%s, f64) = %d, want %d", op, got, want)
		}
	}
}

// TestUnMatrix pins Table.Un for every unary operator on its legal kinds.
func TestUnMatrix(t *testing.T) {
	tab := Default()
	cases := []struct {
		op   ir.UnOp
		k    ir.Kind
		want int64
	}{
		{ir.Neg, ir.F64, tab.FAdd},
		{ir.Neg, ir.I64, tab.IntALU},
		{ir.Not, ir.I64, tab.IntALU},
		{ir.Sqrt, ir.F64, tab.FSqrt},
		{ir.Exp, ir.F64, tab.FMath},
		{ir.Log, ir.F64, tab.FMath},
		{ir.Abs, ir.F64, tab.FAdd},
		{ir.Abs, ir.I64, tab.IntALU},
		{ir.Floor, ir.F64, tab.FAdd},
		{ir.CvtIF, ir.I64, tab.Cvt},
		{ir.CvtFI, ir.F64, tab.Cvt},
	}
	seen := map[ir.UnOp]bool{}
	for _, c := range cases {
		seen[c.op] = true
		if got := tab.Un(c.op, c.k); got != c.want {
			t.Errorf("Un(%s, %s) = %d, want %d", c.op, c.k, got, c.want)
		}
	}
	for _, op := range allUnOps {
		if !seen[op] {
			t.Errorf("unary operator %s has no latency case", op)
		}
	}
}

// TestEveryTableEntryAccounted is the ledger: each field of Table must be
// claimed either by the operator matrices above or by the simulator's
// per-instruction charge test (internal/sim, TestChargesEveryTableEntry).
// Adding a Table field without extending one of those tests fails here.
func TestEveryTableEntryAccounted(t *testing.T) {
	covered := map[string]string{
		"IntALU": "cost.TestBinMatrix/TestUnMatrix",
		"IntMul": "cost.TestBinMatrix",
		"IntDiv": "cost.TestBinMatrix",
		"FAdd":   "cost.TestBinMatrix/TestUnMatrix",
		"FMul":   "cost.TestBinMatrix",
		"FDiv":   "cost.TestBinMatrix",
		"FSqrt":  "cost.TestUnMatrix",
		"FMath":  "cost.TestUnMatrix",
		"Cvt":    "cost.TestUnMatrix",
		"Mov":    "sim.TestChargesEveryTableEntry",
		"Const":  "sim.TestChargesEveryTableEntry",
		"Branch": "sim.TestChargesEveryTableEntry",
		"Store":  "sim.TestChargesEveryTableEntry",
		"L1Hit":  "sim.TestChargesEveryTableEntry",
		"L1Miss": "sim.TestChargesEveryTableEntry",
		"Enq":    "sim.TestChargesEveryTableEntry",
		"Deq":    "sim.TestChargesEveryTableEntry",
	}
	rt := reflect.TypeOf(Table{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if covered[name] == "" {
			t.Errorf("Table.%s has no latency coverage; extend the matrices or the sim charge test", name)
		}
		delete(covered, name)
	}
	for name := range covered {
		t.Errorf("coverage ledger names %s, which is not a Table field", name)
	}
}
