package deps

import (
	"testing"

	"fgp/internal/fiber"
	"fgp/internal/ir"
	"fgp/internal/tac"
)

func analyze(t *testing.T, build func(b *ir.Builder)) (*tac.Fn, *Info) {
	t.Helper()
	b := ir.NewBuilder("t", "i", 1, 32, 1)
	b.ArrayF("a", make([]float64, 64))
	b.ArrayF("o", make([]float64, 64))
	b.ArrayI("idx", make([]int64, 64))
	build(b)
	l := b.MustBuild()
	fn, err := tac.Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(fn, set)
	if err != nil {
		t.Fatal(err)
	}
	return fn, info
}

func TestAliasSameIteration(t *testing.T) {
	cases := []struct {
		name     string
		x, y     Affine
		sameIter bool
		carried  bool
	}{
		{"same index", Affine{1, 0, true}, Affine{1, 0, true}, true, false},
		{"disjoint offsets", Affine{1, 0, true}, Affine{1, 1, true}, false, true},
		{"distance two", Affine{1, 0, true}, Affine{1, 2, true}, false, true},
		{"same constant", Affine{0, 5, true}, Affine{0, 5, true}, true, true},
		{"different constants", Affine{0, 5, true}, Affine{0, 6, true}, false, false},
		{"unknown", Affine{}, Affine{1, 0, true}, true, true},
		{"different strides", Affine{1, 0, true}, Affine{2, 0, true}, true, true},
		{"huge distance not carried", Affine{1, 0, true}, Affine{1, 1000, true}, false, false},
	}
	for _, c := range cases {
		r := alias(c.x, c.y, 0, 32, 1)
		if r.sameIter != c.sameIter || r.carried != c.carried {
			t.Errorf("%s: alias = {sameIter:%v carried:%v}, want {%v %v}",
				c.name, r.sameIter, r.carried, c.sameIter, c.carried)
		}
	}
}

func TestAliasDistance(t *testing.T) {
	// x at i touches i+0; y at j touches j-1: x@i aliases y@(i+1):
	// dist = (Bx - By)/A = (0 - (-1))/1 = +1.
	r := alias(Affine{1, 0, true}, Affine{1, -1, true}, 0, 32, 1)
	if !r.carried || !r.distKnown || r.dist != 1 {
		t.Errorf("store[i] vs load[i-1]: %+v, want carried dist +1", r)
	}
	// Reverse: load[i-1] first in program order against store[i].
	r = alias(Affine{1, -1, true}, Affine{1, 0, true}, 0, 32, 1)
	if !r.carried || !r.distKnown || r.dist != -1 {
		t.Errorf("load[i-1] vs store[i]: %+v, want carried dist -1", r)
	}
	// Stride 2, offset 4: distance 2 iterations.
	r = alias(Affine{2, 0, true}, Affine{2, -4, true}, 0, 32, 1)
	if !r.carried || !r.distKnown || r.dist != 2 {
		t.Errorf("stride-2 distance: %+v, want dist 2", r)
	}
	// Offset not a stride multiple: never equal.
	r = alias(Affine{2, 0, true}, Affine{2, 1, true}, 0, 32, 1)
	if r.carried || r.sameIter {
		t.Errorf("odd offset on even stride should never alias: %+v", r)
	}
}

func TestAffinePropagation(t *testing.T) {
	fn, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		j := b.Def("j", ir.AddE(ir.MulE(i, ir.I(3)), ir.I(7)))
		k := b.Def("k", ir.SubE(j, ir.I(2)))
		m := b.Def("m", ir.ShlE(i, ir.I(2)))
		u := b.Def("u", ir.LDI("idx", i)) // not affine
		_ = k
		_ = m
		_ = u
		b.StoreF("o", i, ir.F(1))
	})
	get := func(name string) Affine {
		id, ok := fn.TempByName(name)
		if !ok {
			t.Fatalf("temp %s missing", name)
		}
		return info.Affine[id]
	}
	if a := get("j"); !a.OK || a.A != 3 || a.B != 7 {
		t.Errorf("j affine = %+v, want 3i+7", a)
	}
	if a := get("k"); !a.OK || a.A != 3 || a.B != 5 {
		t.Errorf("k affine = %+v, want 3i+5", a)
	}
	if a := get("m"); !a.OK || a.A != 4 || a.B != 0 {
		t.Errorf("m affine = %+v, want 4i", a)
	}
	if a := get("u"); a.OK {
		t.Errorf("u should not be affine: %+v", a)
	}
}

func TestAffineConditionalDefDegrades(t *testing.T) {
	fn, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(i, ir.I(4)))
		b.Def("j", ir.AddE(i, ir.I(0)))
		b.If(c, func() {
			b.Def("j", ir.AddE(i, ir.I(1)))
		}, nil)
		b.StoreF("o", b.T("j"), ir.F(1))
	})
	id, _ := fn.TempByName("j")
	if info.Affine[id].OK {
		t.Error("conditionally redefined temp must not stay affine")
	}
}

func TestRegDepsSingleDef(t *testing.T) {
	fn, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		v := b.Def("v", ir.MulE(ir.LDF("a", i), ir.F(2)))
		b.StoreF("o", i, ir.AddE(v, ir.F(1)))
	})
	vid, _ := fn.TempByName("v")
	found := false
	for _, e := range info.Edges {
		if e.Kind == Reg && e.Temp == vid {
			if e.Carried {
				t.Error("straight-line def-use must not be carried")
			}
			found = true
		}
	}
	if !found {
		t.Error("missing reg dep for v")
	}
}

func TestRegDepsAccumulatorColocates(t *testing.T) {
	b := ir.NewBuilder("t", "i", 0, 8, 1)
	b.ArrayF("a", make([]float64, 8))
	acc := b.ScalarF("acc", 0)
	_ = acc
	b.LiveOut("acc")
	b.Def("w", ir.MulE(b.T("acc"), ir.F(0.5))) // carried read before redefinition
	b.Def("acc", ir.AddE(b.T("acc"), ir.LDF("a", b.Idx())))
	l := b.MustBuild()
	fn, err := tac.Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(fn, set)
	if err != nil {
		t.Fatal(err)
	}
	// The w fiber reads acc before its def: must be co-located with the
	// accumulator's def fiber.
	var wFiber, accFiber int32 = -1, -1
	for _, in := range fn.Instrs {
		if in.Dst != tac.None {
			switch fn.Temps[in.Dst].Name {
			case "w":
				wFiber = in.Fiber
			case "acc":
				accFiber = in.Fiber
			}
		}
	}
	if !hasColocation(info, wFiber, accFiber) {
		t.Errorf("carried read (fiber %d) not co-located with accumulator def (fiber %d): %v",
			wFiber, accFiber, info.Colocate)
	}
}

func hasColocation(info *Info, a, b int32) bool {
	// Union-find over the colocation pairs.
	parent := map[int32]int32{}
	var find func(x int32) int32
	find = func(x int32) int32 {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	for _, pr := range info.Colocate {
		ra, rb := find(pr[0]), find(pr[1])
		if ra != rb {
			parent[ra] = rb
		}
	}
	return find(a) == find(b)
}

func TestMultiDefColocates(t *testing.T) {
	fn, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.MulE(ir.LDF("a", i), ir.F(2)))
		}, func() {
			b.Def("v", ir.F(0))
		})
		b.StoreF("o", i, b.T("v"))
	})
	var defFibers []int32
	vid, _ := fn.TempByName("v")
	for _, d := range fn.Temps[vid].Defs {
		defFibers = append(defFibers, fn.Instrs[d].Fiber)
	}
	if len(defFibers) != 2 {
		t.Fatalf("v has %d defs, want 2", len(defFibers))
	}
	if !hasColocation(info, defFibers[0], defFibers[1]) {
		t.Error("multi-def temp's defs not co-located")
	}
}

func TestMemDepsCarryDistance(t *testing.T) {
	fn, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		prev := b.Def("prev", ir.LDF("o", ir.SubE(i, ir.I(1))))
		b.StoreF("o", i, ir.AddE(prev, ir.LDF("a", i)))
	})
	_ = fn
	found := false
	for _, e := range info.Edges {
		if e.Kind == Mem && e.Carried {
			if !e.MemKnown {
				t.Error("distance should be known for affine sweep")
			}
			if e.MemDist != -1 && e.MemDist != 1 {
				t.Errorf("carried distance = %d, want ±1", e.MemDist)
			}
			found = true
		}
	}
	if !found {
		t.Error("missing carried memory dependence for the sweep")
	}
}

func TestMemDepsUnknownIndexBidirectional(t *testing.T) {
	_, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		j := b.Def("j", ir.LDI("idx", i))
		cur := b.Def("cur", ir.LDF("o", j))
		b.StoreF("o", j, ir.AddE(cur, ir.F(1)))
	})
	sameIter, carriedUnknown := false, false
	for _, e := range info.Edges {
		if e.Kind != Mem {
			continue
		}
		if !e.Carried {
			sameIter = true
		}
		if e.Carried && !e.MemKnown {
			carriedUnknown = true
		}
	}
	if !sameIter || !carriedUnknown {
		t.Errorf("indirect RMW needs same-iteration and unknown carried deps (got sameIter=%v carriedUnknown=%v)",
			sameIter, carriedUnknown)
	}
}

func TestNoMemDepBetweenLoads(t *testing.T) {
	_, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		b.StoreF("o", i, ir.AddE(ir.LDF("a", i), ir.LDF("a", ir.AddE(i, ir.I(1)))))
	})
	for _, e := range info.Edges {
		if e.Kind == Mem {
			t.Errorf("loads from a read-only array must not create memory deps: %+v", e)
		}
	}
}

func TestCtlDeps(t *testing.T) {
	fn, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.F(1))
		}, func() {
			b.Def("v", ir.F(2))
		})
		b.StoreF("o", i, b.T("v"))
	})
	cid, _ := fn.TempByName("c")
	n := 0
	for _, e := range info.Edges {
		if e.Kind == Ctl && e.Temp == cid {
			n++
		}
	}
	if n == 0 {
		t.Error("missing control dependences from the condition")
	}
}

func TestSiblingBranchColocation(t *testing.T) {
	// v defined in the then-branch, consumed in the else-branch (via the
	// merged value): the def in THEN and the use in ELSE sit in sibling
	// regions and must be co-located.
	fn, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		b.Def("v", ir.F(0))
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.F(1))
		}, func() {
			b.Def("w", ir.AddE(b.T("v"), ir.F(2)))
			b.StoreF("o", i, b.T("w"))
		})
		b.StoreF("o", ir.AddE(i, ir.I(1)), b.T("v"))
	})
	// Find the then-def of v and the else-use.
	vid, _ := fn.TempByName("v")
	var thenDef int32 = -1
	for _, d := range fn.Temps[vid].Defs {
		if fn.Instrs[d].Region != 0 {
			thenDef = fn.Instrs[d].Fiber
		}
	}
	var elseUse int32 = -1
	for _, in := range fn.Instrs {
		if in.Dst != tac.None && fn.Temps[in.Dst].Name == "w" {
			elseUse = in.Fiber
		}
	}
	if thenDef < 0 || elseUse < 0 {
		t.Fatal("test setup failed to find fibers")
	}
	if !hasColocation(info, thenDef, elseUse) {
		t.Error("sibling-branch def/use must be co-located")
	}
}

func TestDataDepCountExcludesCtl(t *testing.T) {
	_, info := analyze(t, func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.F(1))
		}, func() {
			b.Def("v", ir.F(2))
		})
		b.StoreF("o", i, b.T("v"))
	})
	total := info.DataDepCount()
	fe := info.FiberEdges()
	ctl := 0
	for _, e := range fe {
		if e.Kind == Ctl {
			ctl += e.Count
		}
	}
	if ctl == 0 {
		t.Error("expected some control edges")
	}
	sum := 0
	for _, e := range fe {
		if e.Kind != Ctl {
			sum += e.Count
		}
	}
	if total != sum {
		t.Errorf("DataDepCount = %d, want %d (non-ctl edges)", total, sum)
	}
}
