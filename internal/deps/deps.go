package deps

import (
	"fmt"

	"fgp/internal/fiber"
	"fgp/internal/tac"
)

// EdgeKind classifies a dependence edge.
type EdgeKind uint8

const (
	// Reg is a register (temp) flow dependence: To reads a value From wrote.
	Reg EdgeKind = iota
	// Mem is a memory dependence through a shared array.
	Mem
	// Ctl is a control dependence: To executes under a condition From
	// computed.
	Ctl
)

func (k EdgeKind) String() string {
	switch k {
	case Reg:
		return "reg"
	case Mem:
		return "mem"
	case Ctl:
		return "ctl"
	}
	return "?"
}

// Edge is an instruction-level dependence.
type Edge struct {
	From, To int // instruction IDs
	Kind     EdgeKind
	Carried  bool       // crosses iterations
	Temp     tac.TempID // for Reg/Ctl: the temp carrying the value
	// For carried Mem edges: MemKnown reports whether the dependence
	// distance is exact. MemDist > 0 means From at iteration i conflicts
	// with To at iteration i+MemDist (From must stay ahead); MemDist < 0
	// means To at iteration j conflicts with From at iteration j+|MemDist|.
	// When !MemKnown the direction and distance are unknown and the
	// compiler must bound the slip between the two accesses to one
	// iteration in both directions.
	MemKnown bool
	MemDist  int64
}

// Info is the analysis result.
type Info struct {
	Fn    *tac.Fn
	Set   *fiber.Set
	Edges []Edge
	// Colocate lists fiber pairs that the partitioner must merge before any
	// heuristic merging.
	Colocate [][2]int32
	Affine   map[tac.TempID]Affine
}

// Analyze computes dependences for a fiber-partitioned function.
func Analyze(fn *tac.Fn, set *fiber.Set) (*Info, error) {
	info := &Info{Fn: fn, Set: set, Affine: affineAnalysis(fn)}
	info.regDeps()
	if err := info.memDeps(); err != nil {
		return nil, err
	}
	info.ctlDeps()
	info.siblingBranchDeps()
	return info, nil
}

// siblingBranchDeps co-locates the endpoints of register dependences whose
// definition and use sit in opposite branches of the same conditional. A
// queue transfer for such a pair would have to enqueue after the branch
// joins but dequeue before it splits, which cannot be ordered against other
// communication inside the branch; keeping the pair on one core sidesteps
// the problem (the paper's compiler faces the same pairing constraint,
// Section III-I).
func (info *Info) siblingBranchDeps() {
	fn := info.Fn
	for _, e := range info.Edges {
		if e.Kind != Reg || e.Carried {
			continue
		}
		rd := fn.Instrs[e.From].Region
		ru := fn.Instrs[e.To].Region
		if rd == ru {
			continue
		}
		l := fn.LCA(rd, ru)
		a := fn.AncestorAt(rd, l)
		b := fn.AncestorAt(ru, l)
		if a >= 0 && b >= 0 && a != b && fn.Regions[a].Stmt == fn.Regions[b].Stmt {
			info.colocate(fn.Instrs[e.From].Fiber, fn.Instrs[e.To].Fiber)
		}
	}
}

func (info *Info) colocate(a, b int32) {
	if a != b {
		info.Colocate = append(info.Colocate, [2]int32{a, b})
	}
}

// regDeps builds temp flow edges. For a single-def temp the def dominates
// every use (guaranteed by IR validation), so each use gets one edge. For
// multi-def temps (conditionally assigned values, accumulators) every def
// may reach a given use; all defs are co-located, uses get edges from each
// def, and a use that precedes a def in program order is a loop-carried
// read, which additionally co-locates the reader.
func (info *Info) regDeps() {
	fn := info.Fn
	for tid := range fn.Temps {
		t := &fn.Temps[tid]
		if t.IsIndex {
			continue // replicated on every core, never communicated
		}
		temp := tac.TempID(tid)
		defs := t.Defs
		if len(defs) == 0 {
			continue // pure parameter: broadcast at region entry
		}
		multi := len(defs) > 1 || t.IsParam // param with a def = accumulator
		if multi {
			for i := 1; i < len(defs); i++ {
				info.colocate(fn.Instrs[defs[0]].Fiber, fn.Instrs[defs[i]].Fiber)
			}
		}
		// Collect uses.
		var ubuf []tac.TempID
		for _, in := range fn.Instrs {
			ubuf = ubuf[:0]
			ubuf = in.Uses(ubuf)
			reads := false
			for _, u := range ubuf {
				if u == temp {
					reads = true
				}
			}
			if !reads {
				continue
			}
			for _, d := range defs {
				if d == in.ID && len(defs) == 1 {
					// self-referencing single def (x = x op y without being
					// a param) cannot validate; defensive skip
					continue
				}
				carried := d >= in.ID // def at or after the use: previous iteration's value
				if d == in.ID {
					carried = true // e.g. sum = sum + x reads last iteration's sum
				}
				info.Edges = append(info.Edges, Edge{From: d, To: in.ID, Kind: Reg, Carried: carried, Temp: temp})
				if carried {
					info.colocate(fn.Instrs[d].Fiber, in.Fiber)
				}
			}
		}
	}
}

// memDeps adds edges between accesses to the same array when the indices
// may overlap. Unlike register values, memory traffic is not ordered by the
// queue hardware; when the partitioner separates two ordered accesses the
// code generator enforces the order with queue synchronization tokens
// (primed by the dependence distance for loop-carried dependences), so the
// edges here carry the distance information.
func (info *Info) memDeps() error {
	fn := info.Fn
	l := fn.Loop
	type access struct {
		in      *tac.Instr
		isStore bool
		idx     Affine
	}
	byArray := map[string][]access{}
	for _, in := range fn.Instrs {
		switch in.Op {
		case tac.OpLoad:
			byArray[in.Array] = append(byArray[in.Array], access{in, false, info.Affine[in.A]})
		case tac.OpStore:
			byArray[in.Array] = append(byArray[in.Array], access{in, true, info.Affine[in.A]})
		}
	}
	for arr, accs := range byArray {
		if l.Array(arr) == nil {
			return fmt.Errorf("deps: access to unknown array %q", arr)
		}
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				a, b := accs[i], accs[j]
				if !a.isStore && !b.isStore {
					continue
				}
				r := alias(a.idx, b.idx, l.Start, l.End, l.Step)
				if r.sameIter && a.in.ID != b.in.ID &&
					!mutuallyExclusive(fn, a.in.Region, b.in.Region) {
					info.Edges = append(info.Edges, Edge{From: a.in.ID, To: b.in.ID, Kind: Mem})
				}
				if r.carried {
					info.Edges = append(info.Edges, Edge{
						From: a.in.ID, To: b.in.ID, Kind: Mem, Carried: true,
						MemKnown: r.distKnown, MemDist: r.dist,
					})
				}
			}
		}
	}
	return nil
}

// mutuallyExclusive reports whether two regions can never execute in the
// same iteration: their predicate chains demand opposite senses of the
// same condition (opposite branches of one If). Same-iteration memory
// dependences between such regions are impossible; only cross-iteration
// ordering can matter.
func mutuallyExclusive(fn *tac.Fn, r1, r2 int) bool {
	sense := map[tac.TempID]bool{}
	for _, p := range fn.PredChain(r1) {
		sense[p.Cond] = p.Sense
	}
	for _, p := range fn.PredChain(r2) {
		if s, ok := sense[p.Cond]; ok && s != p.Sense {
			return true
		}
	}
	return false
}

// ctlDeps adds, for each guarded region, edges from the defining
// instruction(s) of the controlling condition to one representative
// instruction of each fiber inside the region. Every core replicating the
// branch structure needs the condition value, so these edges are real
// communication when fibers split across cores.
func (info *Info) ctlDeps() {
	fn := info.Fn
	// Fibers present in each region subtree.
	for _, in := range fn.Instrs {
		for r := in.Region; r > 0; r = fn.Regions[r].Parent {
			cond := fn.Regions[r].Cond
			for _, d := range fn.Temps[cond].Defs {
				if fn.Instrs[d].Fiber != in.Fiber {
					info.Edges = append(info.Edges, Edge{From: d, To: in.ID, Kind: Ctl, Temp: cond})
				}
			}
		}
	}
}

// FiberEdge is an aggregated dependence between two distinct fibers.
type FiberEdge struct {
	From, To int32
	Kind     EdgeKind
	Count    int
	Carried  bool
}

// FiberEdges aggregates instruction edges to fiber granularity, dropping
// intra-fiber edges and deduplicating by (from, to, kind, temp).
func (info *Info) FiberEdges() []FiberEdge {
	type key struct {
		from, to int32
		kind     EdgeKind
		temp     tac.TempID
	}
	seen := map[key]*FiberEdge{}
	var out []*FiberEdge
	for _, e := range info.Edges {
		ff := info.Fn.Instrs[e.From].Fiber
		tf := info.Fn.Instrs[e.To].Fiber
		if ff == tf {
			continue
		}
		k := key{ff, tf, e.Kind, e.Temp}
		if fe, ok := seen[k]; ok {
			fe.Count++
			fe.Carried = fe.Carried || e.Carried
			continue
		}
		fe := &FiberEdge{From: ff, To: tf, Kind: e.Kind, Count: 1, Carried: e.Carried}
		seen[k] = fe
		out = append(out, fe)
	}
	res := make([]FiberEdge, len(out))
	for i, fe := range out {
		res[i] = *fe
	}
	return res
}

// DataDepCount returns the number of data dependences (register + memory)
// between distinct initial fibers — the "Data Deps" column of Table III.
func (info *Info) DataDepCount() int {
	n := 0
	for _, fe := range info.FiberEdges() {
		if fe.Kind != Ctl {
			n += fe.Count
		}
	}
	return n
}
