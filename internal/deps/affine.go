// Package deps performs the dependence analyses the partitioner relies on
// (Section III-B of the paper): use-def chains for virtual registers,
// affine-index disambiguation for array accesses (including loop-carried
// distances), and control dependences derived from the region tree.
//
// The output is a set of instruction-level dependence edges plus a list of
// fiber co-location constraints. Constraints capture the cases the compiler
// must not split across cores:
//
//   - all definitions of a multiply-defined named temporary (so the merged
//     value lives in exactly one core's register),
//   - both endpoints of any loop-carried register dependence (scalar
//     recurrences/reductions stay on one core; the paper's umt2k-2/3
//     kernels show the load-imbalance consequence of this),
//   - both endpoints of any may-aliasing memory dependence (the hardware
//     queues order values, not shared-memory traffic).
package deps

import (
	"fgp/internal/ir"
	"fgp/internal/tac"
)

// Affine describes an index value of the form A*i + B where i is the loop
// induction variable. OK is false when the value is not provably affine.
type Affine struct {
	A, B int64
	OK   bool
}

// affineAnalysis propagates affine forms through the instruction list.
// A temp redefined with a different form (or conditionally) degrades to
// not-affine, which makes the memory analysis conservative.
func affineAnalysis(fn *tac.Fn) map[tac.TempID]Affine {
	aff := map[tac.TempID]Affine{}
	for id, t := range fn.Temps {
		if t.IsIndex {
			aff[tac.TempID(id)] = Affine{A: 1, B: 0, OK: true}
		}
		if t.IsParam && t.K == ir.I64 && len(t.Defs) == 0 {
			// Parameter values are known at compile time in this framework
			// (the kernel fixes them), so fold them into the affine form.
			if v, ok := fn.Loop.Scalar(t.Name); ok {
				aff[tac.TempID(id)] = Affine{A: 0, B: v.I, OK: true}
			}
		}
	}
	set := func(dst tac.TempID, v Affine, in *tac.Instr) {
		// A def under a condition, or a second conflicting def, is not a
		// single affine value for later reads.
		if in.Region != 0 {
			v = Affine{}
		}
		if old, seen := aff[dst]; seen && (old != v) {
			v = Affine{}
		}
		aff[dst] = v
	}
	for _, in := range fn.Instrs {
		if in.Dst == tac.None || in.K != ir.I64 && in.Op != tac.OpBin {
			if in.Dst == tac.None {
				continue
			}
		}
		if fn.Temps[in.Dst].K != ir.I64 {
			continue
		}
		switch in.Op {
		case tac.OpConstI:
			set(in.Dst, Affine{A: 0, B: in.CI, OK: true}, in)
		case tac.OpMov:
			set(in.Dst, aff[in.A], in)
		case tac.OpBin:
			a, b := aff[in.A], aff[in.B]
			var v Affine
			if a.OK && b.OK {
				switch in.BinOp {
				case ir.Add:
					v = Affine{A: a.A + b.A, B: a.B + b.B, OK: true}
				case ir.Sub:
					v = Affine{A: a.A - b.A, B: a.B - b.B, OK: true}
				case ir.Mul:
					if a.A == 0 {
						v = Affine{A: a.B * b.A, B: a.B * b.B, OK: true}
					} else if b.A == 0 {
						v = Affine{A: a.A * b.B, B: a.B * b.B, OK: true}
					}
				case ir.Shl:
					if b.A == 0 && b.B >= 0 && b.B < 62 {
						v = Affine{A: a.A << uint(b.B), B: a.B << uint(b.B), OK: true}
					}
				}
			}
			set(in.Dst, v, in)
		default:
			set(in.Dst, Affine{}, in)
		}
	}
	return aff
}

// aliasResult classifies the relationship of two array accesses.
type aliasResult struct {
	sameIter bool // the accesses can touch the same element in one iteration
	carried  bool // the accesses can touch the same element across iterations
	// distKnown/dist describe the carried relationship when it is exact:
	// the first access at iteration i touches the same element as the
	// second access at iteration i+dist (dist > 0), or the second access at
	// iteration j touches the same element as the first at j+|dist|
	// (dist < 0).
	distKnown bool
	dist      int64
}

// alias decides whether two accesses to the same array with the given index
// forms may overlap, within an iteration or across iterations of the loop
// i = start..end step s.
func alias(x, y Affine, start, end, step int64) aliasResult {
	if !x.OK || !y.OK {
		return aliasResult{sameIter: true, carried: true}
	}
	res := aliasResult{}
	// Same iteration: x.A*i + x.B == y.A*i + y.B for some valid i.
	if x.A == y.A {
		res.sameIter = x.B == y.B
	} else {
		num := y.B - x.B
		den := x.A - y.A
		if num%den == 0 {
			i := num / den
			if i >= start && i < end && (i-start)%step == 0 {
				res.sameIter = true
			}
		}
	}
	// Loop carried: x.A*i + x.B == y.A*j + y.B for some valid i != j.
	switch {
	case x.A == 0 && y.A == 0:
		// Same fixed element every iteration: carried in both directions at
		// every distance — unknown-direction for the synchronizer.
		res.carried = x.B == y.B
	case x.A == y.A:
		// Same stride: x at iteration i aliases y at j where
		// x.A*i + x.B == y.A*j + y.B, i.e. j = i + (x.B-y.B)/A.
		d := x.B - y.B
		if d != 0 && d%x.A == 0 {
			dist := d / x.A
			trips := (end - start + step - 1) / step
			if dist != 0 && abs64(dist) < trips*step {
				res.carried = true
				res.distKnown = true
				res.dist = dist
			}
		}
	default:
		// Different strides: a precise diophantine test is possible but the
		// conservative answer is cheap and rarely hurts the kernels.
		res.carried = true
	}
	return res
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
