package tac

import (
	"strings"
	"testing"

	"fgp/internal/ir"
)

func lower(t *testing.T, build func(b *ir.Builder)) *Fn {
	t.Helper()
	b := ir.NewBuilder("t", "i", 0, 8, 1)
	b.ArrayF("a", make([]float64, 8))
	b.ArrayF("o", make([]float64, 8))
	build(b)
	l := b.MustBuild()
	fn, err := Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestLowerSimpleAssign(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		v := b.Def("v", ir.AddE(ir.MulE(ir.LDF("a", i), ir.F(2)), ir.F(1)))
		b.StoreF("o", i, v)
	})
	// Expect: load, const 2, mul, const 1, add (retargeted to v), store.
	var ops []OpKind
	for _, in := range fn.Instrs {
		ops = append(ops, in.Op)
	}
	want := []OpKind{OpLoad, OpConstF, OpBin, OpConstF, OpBin, OpStore}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
	// The add's destination must be the named temp v (no extra mov).
	add := fn.Instrs[4]
	if !fn.Temps[add.Dst].Named || fn.Temps[add.Dst].Name != "v" {
		t.Errorf("root dst = %q, want retargeted to v", fn.TempName(add.Dst))
	}
}

func TestLowerMovForBareTempCopy(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		b.Def("x", ir.F(1))
		b.Def("y", b.T("x")) // y = x is a copy, must become a Mov
		b.StoreF("o", b.Idx(), b.T("y"))
	})
	found := false
	for _, in := range fn.Instrs {
		if in.Op == OpMov {
			found = true
		}
	}
	if !found {
		t.Error("expected a Mov for the bare temp copy")
	}
}

func TestLowerRegions(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.F(1))
		}, func() {
			b.Def("v", ir.F(2))
		})
		b.StoreF("o", i, b.T("v"))
	})
	if len(fn.Regions) != 3 {
		t.Fatalf("got %d regions, want 3 (root + then + else)", len(fn.Regions))
	}
	thenR, elseR := fn.Regions[1], fn.Regions[2]
	if thenR.Parent != 0 || elseR.Parent != 0 {
		t.Error("branch regions must be children of root")
	}
	if thenR.Sense == elseR.Sense {
		t.Error("then and else must have opposite senses")
	}
	if thenR.Cond != elseR.Cond {
		t.Error("then and else must share the condition temp")
	}
	if thenR.Stmt != elseR.Stmt {
		t.Error("then and else must share the If statement ordinal")
	}
	// Exactly one instruction in each branch region (the retargeted const).
	count := map[int]int{}
	for _, in := range fn.Instrs {
		count[in.Region]++
	}
	if count[1] != 1 || count[2] != 1 {
		t.Errorf("per-region instr counts %v", count)
	}
}

func TestLowerNestedRegions(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		c1 := b.Def("c1", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c1, func() {
			c2 := b.Def("c2", ir.LtE(ir.LDF("a", i), ir.F(1)))
			b.If(c2, func() {
				b.Def("v", ir.F(1))
			}, func() {
				b.Def("v", ir.F(2))
			})
		}, func() {
			b.Def("v", ir.F(3))
		})
		b.StoreF("o", i, b.T("v"))
	})
	// Regions: root, then1, (then2, else2 nested), else1 = 5.
	if len(fn.Regions) != 5 {
		t.Fatalf("got %d regions, want 5", len(fn.Regions))
	}
	// Depth of the nested branches is 2.
	deepest := 0
	for _, r := range fn.Regions {
		if r.Depth > deepest {
			deepest = r.Depth
		}
	}
	if deepest != 2 {
		t.Errorf("max depth %d, want 2", deepest)
	}
}

func TestPredChainAndLCA(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		c1 := b.Def("c1", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c1, func() {
			c2 := b.Def("c2", ir.LtE(ir.LDF("a", i), ir.F(1)))
			b.If(c2, func() {
				b.Def("v", ir.F(1))
			}, nil)
			b.Def("w", ir.F(4))
		}, func() {
			b.Def("u", ir.F(3))
		})
		b.StoreF("o", i, ir.F(0))
	})
	// Region ids: 0 root, 1 then1, 2 then2 (nested), 3 else1 (order of
	// creation). Verify via parents.
	var then1, then2, else1 = -1, -1, -1
	for _, r := range fn.Regions {
		switch {
		case r.Parent == 0 && r.Sense:
			then1 = r.ID
		case r.Parent > 0 && r.Sense:
			then2 = r.ID
		case r.Parent == 0 && !r.Sense && r.ID != 0:
			else1 = r.ID
		}
	}
	if then1 < 0 || then2 < 0 || else1 < 0 {
		t.Fatalf("region discovery failed: %+v", fn.Regions)
	}
	if got := fn.LCA(then2, else1); got != 0 {
		t.Errorf("LCA(then2, else1) = %d, want 0", got)
	}
	if got := fn.LCA(then2, then1); got != then1 {
		t.Errorf("LCA(then2, then1) = %d, want %d", got, then1)
	}
	chain := fn.PredChain(then2)
	if len(chain) != 2 || !chain[0].Sense || !chain[1].Sense {
		t.Errorf("PredChain(then2) = %+v", chain)
	}
	if got := fn.AncestorAt(then2, 0); got != then1 {
		t.Errorf("AncestorAt(then2, root) = %d, want %d", got, then1)
	}
	if got := fn.AncestorAt(then1, 0); got != then1 {
		t.Errorf("AncestorAt(then1, root) = %d, want itself", got)
	}
	if got := fn.AncestorAt(0, 0); got != -1 {
		t.Errorf("AncestorAt(root, root) = %d, want -1", got)
	}
	if got := fn.AncestorAt(else1, then1); got != -1 {
		t.Errorf("AncestorAt(else1, then1) = %d, want -1 (not a descendant)", got)
	}
}

func TestLowerIndexAndParams(t *testing.T) {
	b := ir.NewBuilder("t", "i", 0, 8, 1)
	b.ArrayF("o", make([]float64, 8))
	s := b.ScalarF("s", 2.5)
	b.StoreF("o", b.Idx(), ir.MulE(s, ir.F(1)))
	l := b.MustBuild()
	fn, err := Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	it, ok := fn.TempByName("i")
	if !ok || !fn.Temps[it].IsIndex {
		t.Error("index temp missing or not flagged")
	}
	st, ok := fn.TempByName("s")
	if !ok || !fn.Temps[st].IsParam {
		t.Error("param temp missing or not flagged")
	}
	if len(fn.Temps[st].Defs) != 0 {
		t.Error("pure param must have no defs")
	}
}

func TestLowerAccumulatorDefs(t *testing.T) {
	b := ir.NewBuilder("t", "i", 0, 8, 1)
	b.ArrayF("a", make([]float64, 8))
	acc := b.ScalarF("acc", 0)
	_ = acc
	b.LiveOut("acc")
	b.Def("acc", ir.AddE(b.T("acc"), ir.LDF("a", b.Idx())))
	l := b.MustBuild()
	fn, err := Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	at, _ := fn.TempByName("acc")
	if !fn.Temps[at].IsParam || len(fn.Temps[at].Defs) != 1 {
		t.Errorf("accumulator: IsParam=%v defs=%v", fn.Temps[at].IsParam, fn.Temps[at].Defs)
	}
}

func TestInstrUses(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		b.StoreF("o", i, ir.AddE(ir.LDF("a", i), ir.F(1)))
	})
	store := fn.Instrs[len(fn.Instrs)-1]
	if store.Op != OpStore {
		t.Fatalf("last instr is %s", store.Op)
	}
	var uses []TempID
	uses = store.Uses(uses)
	if len(uses) != 2 {
		t.Errorf("store uses %d temps, want 2 (index + value)", len(uses))
	}
}

func TestStmtOrdinalsMonotonic(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("x", ir.F(1))
			b.Def("y", ir.F(2))
		}, nil)
		b.StoreF("o", i, ir.F(3))
	})
	last := -1
	for _, in := range fn.Instrs {
		if in.Stmt < last {
			t.Fatalf("statement ordinals not monotonic at instr %d", in.ID)
		}
		last = in.Stmt
	}
}

func TestDumpContainsStructure(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		b.StoreF("o", i, ir.MulE(ir.LDF("a", i), ir.F(2)))
	})
	out := fn.Dump()
	for _, frag := range []string{"tac t:", "a[i]", "mul", "o["} {
		if !strings.Contains(out, frag) {
			t.Errorf("dump missing %q:\n%s", frag, out)
		}
	}
}

func TestIsCompute(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		b.StoreF("o", i, ir.SqrtE(ir.MulE(ir.LDF("a", i), ir.F(2))))
	})
	computes := 0
	for _, in := range fn.Instrs {
		if in.IsCompute() {
			computes++
		}
	}
	if computes != 2 { // mul + sqrt
		t.Errorf("computes = %d, want 2", computes)
	}
}

func TestLowerStoreIndexThenValueOrder(t *testing.T) {
	// Store lowering evaluates the index before the value, matching the
	// interpreter's evaluation order.
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		b.StoreF("o", ir.AddE(i, ir.I(0)), ir.MulE(ir.LDF("a", i), ir.F(2)))
	})
	st := fn.Instrs[len(fn.Instrs)-1]
	if st.Op != OpStore {
		t.Fatalf("last op %s", st.Op)
	}
	// Index def must precede value def in program order.
	idxDef := fn.Temps[st.A].Defs[0]
	valDef := fn.Temps[st.B].Defs[0]
	if idxDef > valDef {
		t.Errorf("index def %d after value def %d", idxDef, valDef)
	}
}

func TestTempByNameMiss(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		b.StoreF("o", b.Idx(), ir.F(1))
	})
	if _, ok := fn.TempByName("nope"); ok {
		t.Error("lookup of unknown temp must fail")
	}
	if _, ok := fn.TempByName("i"); !ok {
		t.Error("index temp must resolve")
	}
}

func TestInstrStringForms(t *testing.T) {
	fn := lower(t, func(b *ir.Builder) {
		i := b.Idx()
		b.Def("m", ir.MinE(ir.LDF("a", i), ir.F(1)))
		b.Def("u", ir.SqrtE(b.T("m")))
		b.Def("c", b.T("u"))
		b.StoreF("o", i, b.T("c"))
	})
	var forms []string
	for _, in := range fn.Instrs {
		forms = append(forms, fn.InstrString(in))
	}
	joined := strings.Join(forms, "\n")
	for _, frag := range []string{"a[i]", "min", "sqrt", "c = u", "o[i] = c"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("InstrString output missing %q:\n%s", frag, joined)
		}
	}
}
