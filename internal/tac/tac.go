// Package tac defines the compiler's predicated three-address form. The IR's
// expression trees are lowered so that every tree node becomes one TAC
// instruction producing a virtual register ("temp"); control flow becomes a
// region tree (one region per branch body) and every instruction knows the
// region that directly contains it. All later passes — fiber partitioning,
// dependence analysis, code-graph merging, scheduling and code generation —
// operate on this form.
package tac

import (
	"fmt"
	"strings"

	"fgp/internal/ir"
)

// TempID identifies a virtual register within a Fn.
type TempID int32

// None marks an unused operand slot.
const None TempID = -1

// TempInfo describes one virtual register.
type TempInfo struct {
	Name    string // original name for named temps, ".tN" for generated ones
	K       ir.Kind
	Named   bool // declared in the source (survives across statements)
	IsIndex bool // the loop induction variable (replicated on every core)
	IsParam bool // read-only region parameter (transferred at region entry)
	Defs    []int
}

// OpKind classifies a TAC instruction.
type OpKind uint8

const (
	OpConstF OpKind = iota
	OpConstI
	OpMov
	OpBin
	OpUn
	OpLoad
	OpStore
)

func (o OpKind) String() string {
	switch o {
	case OpConstF:
		return "constf"
	case OpConstI:
		return "consti"
	case OpMov:
		return "mov"
	case OpBin:
		return "bin"
	case OpUn:
		return "un"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one three-address instruction.
//
// Operand layout by OpKind:
//
//	OpConstF/OpConstI: Dst = CF/CI
//	OpMov:             Dst = A
//	OpBin:             Dst = A BinOp B
//	OpUn:              Dst = UnOp A
//	OpLoad:            Dst = Array[A]
//	OpStore:           Array[A] = B   (Dst is None)
type Instr struct {
	ID    int
	Op    OpKind
	BinOp ir.BinOp
	UnOp  ir.UnOp
	K     ir.Kind // result kind; for OpStore the kind of the stored value
	Dst   TempID
	A, B  TempID
	Array string
	CF    float64
	CI    int64

	Stmt   int // global statement ordinal (anchors item order in codegen)
	Line   int // pseudo source line (proximity heuristic)
	Region int
	Fiber  int32 // assigned by the fiber partitioner; -1 before that
}

// Uses appends the temp operands read by the instruction to buf.
func (in *Instr) Uses(buf []TempID) []TempID {
	switch in.Op {
	case OpMov, OpUn:
		buf = append(buf, in.A)
	case OpBin:
		buf = append(buf, in.A, in.B)
	case OpLoad:
		buf = append(buf, in.A)
	case OpStore:
		buf = append(buf, in.A, in.B)
	}
	return buf
}

// IsCompute reports whether the instruction is a compute operation in the
// paper's sense (used by the load-balance metric): a binary or unary
// arithmetic/logic operation.
func (in *Instr) IsCompute() bool { return in.Op == OpBin || in.Op == OpUn }

// Region is a node of the control-region tree. Region 0 is the loop body
// itself; each branch of each If introduces a child region. An instruction
// in region R executes iff every (Cond, Sense) pair on the path from R to
// the root holds.
type Region struct {
	ID     int
	Parent int    // -1 for the root
	Cond   TempID // condition temp controlling this branch (None for root)
	Sense  bool   // true: executes when Cond != 0
	Stmt   int    // statement ordinal of the owning If (anchors item order)
	Depth  int
}

// Fn is a lowered loop body.
type Fn struct {
	Loop    *ir.Loop
	Temps   []TempInfo
	Instrs  []*Instr
	Regions []Region
	// NStmts is the number of source statements (including Ifs).
	NStmts int

	byName map[string]TempID
}

// TempByName resolves a named temp; ok is false if it does not exist.
func (f *Fn) TempByName(name string) (TempID, bool) {
	t, ok := f.byName[name]
	return t, ok
}

// NewTemp appends a virtual register and returns its id.
func (f *Fn) NewTemp(info TempInfo) TempID {
	id := TempID(len(f.Temps))
	f.Temps = append(f.Temps, info)
	if info.Named || info.IsParam || info.IsIndex {
		if f.byName == nil {
			f.byName = map[string]TempID{}
		}
		f.byName[info.Name] = id
	}
	return id
}

// Emit appends an instruction, assigning its ID and recording the def.
func (f *Fn) Emit(in Instr) *Instr {
	in.ID = len(f.Instrs)
	in.Fiber = -1
	p := &in
	f.Instrs = append(f.Instrs, p)
	if in.Dst != None {
		f.Temps[in.Dst].Defs = append(f.Temps[in.Dst].Defs, in.ID)
	}
	return p
}

// PredChain returns the (cond temp, sense) pairs that guard region id, from
// outermost to innermost.
func (f *Fn) PredChain(region int) []Pred {
	var chain []Pred
	for r := region; r > 0; r = f.Regions[r].Parent {
		chain = append(chain, Pred{f.Regions[r].Cond, f.Regions[r].Sense})
	}
	// reverse to outermost-first
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// Pred is a control-flow predicate: "Cond has truth value Sense".
type Pred struct {
	Cond  TempID
	Sense bool
}

// LCA returns the lowest common ancestor of two regions.
func (f *Fn) LCA(a, b int) int {
	for f.Regions[a].Depth > f.Regions[b].Depth {
		a = f.Regions[a].Parent
	}
	for f.Regions[b].Depth > f.Regions[a].Depth {
		b = f.Regions[b].Parent
	}
	for a != b {
		a = f.Regions[a].Parent
		b = f.Regions[b].Parent
	}
	return a
}

// AncestorAt returns the ancestor of region r (possibly r itself) whose
// parent is region top; that is, the child-of-top subtree containing r.
// It returns -1 both when r == top (the instruction sits directly in top)
// and when r is not a descendant of top at all.
func (f *Fn) AncestorAt(r, top int) int {
	if r == top {
		return -1
	}
	for r >= 0 && f.Regions[r].Parent != top {
		r = f.Regions[r].Parent
	}
	return r
}

// TempName renders a temp id for diagnostics.
func (f *Fn) TempName(t TempID) string {
	if t == None {
		return "_"
	}
	return f.Temps[t].Name
}

// String renders one instruction for dumps.
func (f *Fn) InstrString(in *Instr) string {
	switch in.Op {
	case OpConstF:
		return fmt.Sprintf("%s = %g", f.TempName(in.Dst), in.CF)
	case OpConstI:
		return fmt.Sprintf("%s = %d", f.TempName(in.Dst), in.CI)
	case OpMov:
		return fmt.Sprintf("%s = %s", f.TempName(in.Dst), f.TempName(in.A))
	case OpBin:
		return fmt.Sprintf("%s = %s %s, %s", f.TempName(in.Dst), in.BinOp, f.TempName(in.A), f.TempName(in.B))
	case OpUn:
		return fmt.Sprintf("%s = %s %s", f.TempName(in.Dst), in.UnOp, f.TempName(in.A))
	case OpLoad:
		return fmt.Sprintf("%s = %s[%s]", f.TempName(in.Dst), in.Array, f.TempName(in.A))
	case OpStore:
		return fmt.Sprintf("%s[%s] = %s", in.Array, f.TempName(in.A), f.TempName(in.B))
	}
	return "?"
}

// Dump renders the whole function for inspection tools.
func (f *Fn) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tac %s: %d instrs, %d temps, %d regions\n", f.Loop.Name, len(f.Instrs), len(f.Temps), len(f.Regions))
	for _, in := range f.Instrs {
		pad := strings.Repeat("  ", f.Regions[in.Region].Depth)
		fib := ""
		if in.Fiber >= 0 {
			fib = fmt.Sprintf(" fiber=%d", in.Fiber)
		}
		fmt.Fprintf(&sb, "  %3d %s[s%02d r%d]%s %s\n", in.ID, pad, in.Stmt, in.Region, fib, f.InstrString(in))
	}
	return sb.String()
}
