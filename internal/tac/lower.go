package tac

import (
	"fmt"

	"fgp/internal/ir"
)

// Lower converts a validated IR loop body into TAC. Each expression-tree
// node becomes one instruction; conditionals become regions. The instruction
// list is in program order.
func Lower(l *ir.Loop) (*Fn, error) {
	f := &Fn{Loop: l, byName: map[string]TempID{}}
	f.Regions = []Region{{ID: 0, Parent: -1, Cond: None, Stmt: -1}}

	f.NewTemp(TempInfo{Name: l.Index, K: ir.I64, Named: true, IsIndex: true})
	for _, s := range l.Scalars {
		f.NewTemp(TempInfo{Name: s.Name, K: s.K, Named: true, IsParam: true})
	}

	lw := &lowerer{f: f}
	if err := lw.stmts(l.Body, 0); err != nil {
		return nil, fmt.Errorf("tac: %s: %w", l.Name, err)
	}
	f.NStmts = lw.stmt
	return f, nil
}

type lowerer struct {
	f     *Fn
	stmt  int // statement ordinal counter
	fresh int
}

func (lw *lowerer) genTemp(k ir.Kind) TempID {
	lw.fresh++
	return lw.f.NewTemp(TempInfo{Name: fmt.Sprintf(".t%d", lw.fresh), K: k})
}

func (lw *lowerer) stmts(stmts []ir.Stmt, region int) error {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ir.Assign:
			ord := lw.stmt
			lw.stmt++
			if err := lw.assign(x, ord, region); err != nil {
				return err
			}
		case *ir.If:
			ord := lw.stmt
			lw.stmt++
			cond, err := lw.expr(x.Cond, ord, x.Src, region)
			if err != nil {
				return err
			}
			thenR := lw.newRegion(region, cond, true, ord)
			if err := lw.stmts(x.Then, thenR); err != nil {
				return err
			}
			if len(x.Else) > 0 {
				elseR := lw.newRegion(region, cond, false, ord)
				if err := lw.stmts(x.Else, elseR); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (lw *lowerer) newRegion(parent int, cond TempID, sense bool, stmt int) int {
	id := len(lw.f.Regions)
	lw.f.Regions = append(lw.f.Regions, Region{
		ID: id, Parent: parent, Cond: cond, Sense: sense, Stmt: stmt,
		Depth: lw.f.Regions[parent].Depth + 1,
	})
	return id
}

func (lw *lowerer) assign(a *ir.Assign, ord, region int) error {
	switch d := a.Dest.(type) {
	case ir.TempDest:
		dst := lw.namedTemp(d.Name, d.K)
		// Lower the RHS; if it produced a fresh instruction inside this
		// statement, retarget that instruction's destination to the named
		// temp instead of emitting an extra move.
		v, root, err := lw.exprRoot(a.X, ord, a.Src, region)
		if err != nil {
			return err
		}
		if root != nil && !lw.f.Temps[root.Dst].Named {
			lw.retarget(root, dst)
			return nil
		}
		lw.f.Emit(Instr{Op: OpMov, K: d.K, Dst: dst, A: v, B: None, Stmt: ord, Line: a.Src, Region: region})
		return nil
	case *ir.ElemDest:
		idx, err := lw.expr(d.Index, ord, a.Src, region)
		if err != nil {
			return err
		}
		v, err := lw.expr(a.X, ord, a.Src, region)
		if err != nil {
			return err
		}
		lw.f.Emit(Instr{Op: OpStore, K: d.K, Dst: None, A: idx, B: v, Array: d.Array, Stmt: ord, Line: a.Src, Region: region})
		return nil
	}
	return fmt.Errorf("unknown dest %T", a.Dest)
}

// retarget redirects the destination of a freshly emitted instruction to a
// named temp. The generated temp it previously defined has exactly one def
// and no uses yet, so it becomes dead and is dropped from the def list.
func (lw *lowerer) retarget(in *Instr, dst TempID) {
	old := in.Dst
	lw.f.Temps[old].Defs = nil
	in.Dst = dst
	lw.f.Temps[dst].Defs = append(lw.f.Temps[dst].Defs, in.ID)
}

func (lw *lowerer) namedTemp(name string, k ir.Kind) TempID {
	if t, ok := lw.f.byName[name]; ok {
		return t
	}
	return lw.f.NewTemp(TempInfo{Name: name, K: k, Named: true})
}

// expr lowers an expression and returns the temp holding its value.
func (lw *lowerer) expr(e ir.Expr, ord, line, region int) (TempID, error) {
	t, _, err := lw.exprRoot(e, ord, line, region)
	return t, err
}

// exprRoot lowers an expression; root is the instruction that produced the
// value if the expression emitted one (nil when the value is a pre-existing
// temp reference).
func (lw *lowerer) exprRoot(e ir.Expr, ord, line, region int) (TempID, *Instr, error) {
	switch n := e.(type) {
	case ir.ConstF:
		dst := lw.genTemp(ir.F64)
		in := lw.f.Emit(Instr{Op: OpConstF, K: ir.F64, Dst: dst, A: None, B: None, CF: n.V, Stmt: ord, Line: line, Region: region})
		return dst, in, nil
	case ir.ConstI:
		dst := lw.genTemp(ir.I64)
		in := lw.f.Emit(Instr{Op: OpConstI, K: ir.I64, Dst: dst, A: None, B: None, CI: n.V, Stmt: ord, Line: line, Region: region})
		return dst, in, nil
	case ir.Temp:
		t, ok := lw.f.byName[n.Name]
		if !ok {
			return None, nil, fmt.Errorf("line %d: temp %q used before definition", line, n.Name)
		}
		return t, nil, nil
	case *ir.Load:
		idx, err := lw.expr(n.Index, ord, line, region)
		if err != nil {
			return None, nil, err
		}
		dst := lw.genTemp(n.K)
		in := lw.f.Emit(Instr{Op: OpLoad, K: n.K, Dst: dst, A: idx, B: None, Array: n.Array, Stmt: ord, Line: line, Region: region})
		return dst, in, nil
	case *ir.Bin:
		a, err := lw.expr(n.L, ord, line, region)
		if err != nil {
			return None, nil, err
		}
		b, err := lw.expr(n.R, ord, line, region)
		if err != nil {
			return None, nil, err
		}
		dst := lw.genTemp(n.Kind())
		in := lw.f.Emit(Instr{Op: OpBin, BinOp: n.Op, K: n.L.Kind(), Dst: dst, A: a, B: b, Stmt: ord, Line: line, Region: region})
		return dst, in, nil
	case *ir.Un:
		a, err := lw.expr(n.X, ord, line, region)
		if err != nil {
			return None, nil, err
		}
		dst := lw.genTemp(n.Kind())
		in := lw.f.Emit(Instr{Op: OpUn, UnOp: n.Op, K: n.X.Kind(), Dst: dst, A: a, B: None, Stmt: ord, Line: line, Region: region})
		return dst, in, nil
	}
	return None, nil, fmt.Errorf("unknown expression %T", e)
}
