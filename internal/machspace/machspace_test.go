package machspace

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"fgp/internal/experiments"
	"fgp/internal/kernels"
	"fgp/internal/sim"
)

func TestNormalizeFillsPaperDefaults(t *testing.T) {
	g, err := Grid{}.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Points()
	if len(pts) != 1 || g.Size() != 1 {
		t.Fatalf("empty grid should enumerate exactly the paper point, got %d", len(pts))
	}
	def := sim.DefaultConfig(4)
	want := Point{
		Cores: 4, QueueLen: def.QueueLen, TransferLatency: def.TransferLatency,
		EnqCost: def.Cost.Enq, DeqCost: def.Cost.Deq,
		L1Lines: def.Cache.Lines, L1Hit: def.Cost.L1Hit, L1Miss: def.Cost.L1Miss,
	}
	if pts[0] != want {
		t.Fatalf("paper point = %+v, want %+v", pts[0], want)
	}
	if pts[0].Validate() != nil {
		t.Fatalf("paper point must validate: %v", pts[0].Validate())
	}
}

func TestNormalizeRejectsBadAxes(t *testing.T) {
	cases := []struct {
		grid Grid
		axis string
	}{
		{Grid{Cores: []int{0}}, "cores"},
		{Grid{Cores: []int{17}}, "cores"},
		{Grid{QueueLen: []int{0}}, "queue_len"},
		{Grid{QueueLen: []int{1 << 13}}, "queue_len"},
		{Grid{TransferLatency: []int64{-1}}, "transfer_latency"},
		{Grid{EnqCost: []int64{-2}}, "enq_cost"},
		{Grid{DeqCost: []int64{1 << 21}}, "deq_cost"},
		{Grid{L1Lines: []int{-1}}, "l1_lines"},
		{Grid{L1Hit: []int64{-1}}, "l1_hit"},
		{Grid{L1Miss: []int64{-5}}, "l1_miss"},
	}
	for _, c := range cases {
		_, err := c.grid.Normalize(16)
		var ge *GridError
		if !errors.As(err, &ge) {
			t.Fatalf("grid %+v: want *GridError, got %v", c.grid, err)
		}
		if ge.Axis != c.axis {
			t.Errorf("grid %+v: rejected axis %q, want %q", c.grid, ge.Axis, c.axis)
		}
		if !errors.Is(err, ErrBadGrid) {
			t.Errorf("grid %+v: error does not wrap ErrBadGrid", c.grid)
		}
	}
}

func TestPointOrderIsDeterministic(t *testing.T) {
	g, err := Grid{
		QueueLen:        []int{20, 4},
		TransferLatency: []int64{0, 5},
	}.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Points()
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	// Axis values keep caller order; later axes vary faster.
	wantQ := []int{20, 20, 4, 4}
	wantL := []int64{0, 5, 0, 5}
	for i, p := range pts {
		if p.QueueLen != wantQ[i] || p.TransferLatency != wantL[i] {
			t.Fatalf("point %d = %+v, want q=%d lat=%d", i, p, wantQ[i], wantL[i])
		}
	}
}

func TestHWCostMonotone(t *testing.T) {
	base := func() Point {
		g, _ := Grid{}.Normalize(0)
		return g.Points()[0]
	}
	// Each favorable change must strictly raise the cost.
	mods := []struct {
		name string
		mod  func(*Point)
	}{
		{"more cores", func(p *Point) { p.Cores++ }},
		{"deeper queues", func(p *Point) { p.QueueLen += 4 }},
		{"faster transfer", func(p *Point) { p.TransferLatency = 0 }},
		{"free enqueue", func(p *Point) { p.EnqCost = 0 }},
		{"free dequeue", func(p *Point) { p.DeqCost = 0 }},
		{"bigger L1", func(p *Point) { p.L1Lines *= 2 }},
		{"faster L1 hit", func(p *Point) { p.L1Hit = 0 }},
		{"faster L1 miss", func(p *Point) { p.L1Miss = 10 }},
	}
	for _, m := range mods {
		p := base()
		before := p.HWCost()
		m.mod(&p)
		if after := p.HWCost(); after <= before {
			t.Errorf("%s: cost %d -> %d, want strictly higher", m.name, before, after)
		}
	}
}

func TestSweepBudgetRefusesBigGrid(t *testing.T) {
	g := Grid{
		QueueLen:        []int{1, 2, 4, 8, 20, 64},
		TransferLatency: []int64{0, 1, 2, 5, 20, 50, 100},
		EnqCost:         []int64{0, 1, 2, 4},
	}
	k, err := kernels.ByName("sphot-1")
	if err != nil {
		t.Fatal(err)
	}
	_, serr := Sweep(context.Background(), experiments.NewRunner(), k, g, Options{Budget: 100})
	var be *BudgetError
	if !errors.As(serr, &be) {
		t.Fatalf("want *BudgetError, got %v", serr)
	}
	if be.Points != 6*7*4 || be.Budget != 100 {
		t.Fatalf("budget error = %+v, want points=%d budget=100", be, 6*7*4)
	}
	if !errors.Is(serr, ErrBudget) {
		t.Fatal("budget error does not wrap ErrBudget")
	}
}

// sweepGrid is the small cross grid the determinism and frontier tests
// share: 2 queue capacities x 3 transfer latencies x 2 enqueue costs, with
// the zero-valued levers included literally.
func sweepGrid() Grid {
	return Grid{
		QueueLen:        []int{4, 20},
		TransferLatency: []int64{0, 5, 50},
		EnqCost:         []int64{0, 1},
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	k, err := kernels.ByName("sphot-1")
	if err != nil {
		t.Fatal(err)
	}
	var surfaces [][]byte
	for _, workers := range []int{1, 4} {
		// A fresh runner per worker count: byte-identity must not depend on
		// a shared artifact cache.
		s, err := Sweep(context.Background(), experiments.NewRunner(), k, sweepGrid(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		surfaces = append(surfaces, data)
	}
	if string(surfaces[0]) != string(surfaces[1]) {
		t.Fatalf("surface differs between workers=1 and workers=4:\n%s\nvs\n%s", surfaces[0], surfaces[1])
	}
}

func TestSweepZeroLatencyIsARealLever(t *testing.T) {
	k, err := kernels.ByName("umt2k-4")
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{TransferLatency: []int64{0, 5}}
	s, err := Sweep(context.Background(), experiments.NewRunner(), k, g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 || !s.Points[0].OK() || !s.Points[1].OK() {
		t.Fatalf("want 2 simulated points, got %+v", s.Points)
	}
	if s.Points[0].Cycles >= s.Points[1].Cycles {
		t.Fatalf("zero-latency transfer must be strictly faster: lat=0 %d cycles vs lat=5 %d",
			s.Points[0].Cycles, s.Points[1].Cycles)
	}
}

func TestSweepSeqBaselineTracksL1(t *testing.T) {
	k, err := kernels.ByName("sphot-1")
	if err != nil {
		t.Fatal(err)
	}
	// L1 disabled (every load hits) vs a 4-line thrash cache: the
	// sequential baseline must be re-measured per L1 setting.
	g := Grid{L1Lines: []int{0, 4}}
	s, err := Sweep(context.Background(), experiments.NewRunner(), k, g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Points[0].OK() || !s.Points[1].OK() {
		t.Fatalf("both points must simulate: %+v", s.Points)
	}
	if s.Points[0].SeqCycles >= s.Points[1].SeqCycles {
		t.Fatalf("disabled-L1 baseline (%d) must beat 4-line baseline (%d)",
			s.Points[0].SeqCycles, s.Points[1].SeqCycles)
	}
}

func TestParetoAndInverseQuery(t *testing.T) {
	k, err := kernels.ByName("umt2k-4")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sweep(context.Background(), experiments.NewRunner(), k, sweepGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	frontier := s.Pareto()
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	// Strictly ascending in both cost and speedup: each step buys speedup.
	for i := 1; i < len(frontier); i++ {
		if frontier[i].HWCost <= frontier[i-1].HWCost {
			t.Errorf("frontier cost not strictly ascending at %d: %d then %d", i, frontier[i-1].HWCost, frontier[i].HWCost)
		}
		if frontier[i].Speedup <= frontier[i-1].Speedup {
			t.Errorf("frontier speedup not strictly ascending at %d: %f then %f", i, frontier[i-1].Speedup, frontier[i].Speedup)
		}
	}
	// No surface point may dominate a frontier point.
	for _, f := range frontier {
		for i := range s.Points {
			p := &s.Points[i]
			if !p.OK() {
				continue
			}
			if (p.HWCost < f.HWCost && p.Speedup >= f.Speedup) ||
				(p.HWCost <= f.HWCost && p.Speedup > f.Speedup) {
				t.Errorf("frontier point %+v dominated by %+v", f, *p)
			}
		}
	}

	// Inverse query: the cheapest point at the frontier's median speedup
	// must cost no more than any point reaching it.
	target := frontier[len(frontier)/2].Speedup
	got, ok := s.Minimal(target)
	if !ok {
		t.Fatalf("target %f unreachable but frontier contains it", target)
	}
	for i := range s.Points {
		p := &s.Points[i]
		if p.OK() && p.Speedup >= target && p.HWCost < got.HWCost {
			t.Errorf("Minimal(%f) = cost %d, but %+v is cheaper", target, got.HWCost, *p)
		}
	}

	// Unreachable target: structured miss, and Best names the ceiling.
	if _, ok := s.Minimal(1000); ok {
		t.Fatal("speedup 1000 should be unreachable")
	}
	best, ok := s.Best()
	if !ok {
		t.Fatal("Best found nothing")
	}
	if wantBest := frontier[len(frontier)-1].Speedup; best.Speedup != wantBest {
		t.Errorf("Best speedup %f, want frontier max %f", best.Speedup, wantBest)
	}
}

func TestSweepRejectsDegeneratePointStructurally(t *testing.T) {
	k, err := kernels.ByName("sphot-1")
	if err != nil {
		t.Fatal(err)
	}
	// l1_lines 3 with the default 64-byte line is representable in the
	// grid envelope but not a power-of-two geometry problem — it IS valid.
	// The genuinely degenerate shape reachable through a normalized grid is
	// exercised via Point.Validate directly: grids cannot spell a negative
	// latency (Normalize rejects it), so a hand-built point stands in.
	p := Point{Cores: 2, QueueLen: 0, TransferLatency: 5, EnqCost: 1, DeqCost: 1, L1Lines: 512, L1Hit: 4, L1Miss: 46}
	var ce *sim.ConfigError
	if err := p.Validate(); !errors.As(err, &ce) || ce.Field != "QueueLen" {
		t.Fatalf("want *sim.ConfigError on QueueLen, got %v", err)
	}

	// And a queue-capacity-1 sweep point must either simulate correctly or
	// be recorded as a structured rejection — never fail the sweep.
	g := Grid{QueueLen: []int{1}}
	s, err := Sweep(context.Background(), experiments.NewRunner(), k, g, Options{Workers: 1})
	if err != nil {
		t.Fatalf("sweep must survive a capacity-1 point: %v", err)
	}
	pt := &s.Points[0]
	if pt.OK() {
		if pt.Speedup <= 0 {
			t.Fatalf("capacity-1 point simulated but speedup = %f", pt.Speedup)
		}
	} else if pt.Reject == "" {
		t.Fatal("capacity-1 point neither simulated nor diagnosed")
	}
}
