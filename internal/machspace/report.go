// The machspace report: the sweep rendered the way the paper renders its
// sensitivity story. One sweep per kernel feeds three views — the Fig 13
// latency-degradation row, the queue-saturation row (the queue-length
// extension sweep), and the Pareto frontier of speedup vs hardware cost —
// plus the inverse queries ("what is the cheapest machine that hits 2x?")
// that the /v1/frontier endpoint answers one at a time.

package machspace

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"fgp/internal/experiments"
	"fgp/internal/kernels"
)

// DefaultTargets are the inverse-query targets the report answers when the
// caller passes none: the paper's average 4-core speedup is 2.05, so 1.5
// is usually cheap, 2.0 is the interesting ask, and 3.0 is often
// unreachable — exercising the miss path.
var DefaultTargets = []float64{1.5, 2.0, 3.0}

// InverseQuery is one answered "cheapest machine reaching target" query.
// When no swept point reaches the target, Found is false and Best carries
// the surface's ceiling instead of Minimal.
type InverseQuery struct {
	Target  float64     `json:"target"`
	Found   bool        `json:"found"`
	Minimal PointResult `json:"minimal"`
	Best    PointResult `json:"best"`
}

// KernelReport is one kernel's view of the swept machine space. The rows
// hold full point results (in the grid's axis order) so shape checks and
// renderers read the same data.
type KernelReport struct {
	Kernel     string         `json:"kernel"`
	Points     int            `json:"points"`
	Rejected   int            `json:"rejected"`
	Anchor     Point          `json:"anchor"`
	LatencyRow []PointResult  `json:"latency_row"`
	QueueRow   []PointResult  `json:"queue_row"`
	Frontier   []PointResult  `json:"frontier"`
	Queries    []InverseQuery `json:"queries"`
}

// anchor picks the coordinate each single-axis row is read at: the paper
// default where the grid sweeps through it, otherwise the axis's first
// value — so the rows always exist, whatever the grid.
func anchor(g Grid) Point {
	pickI := func(axis []int, def int) int {
		if slices.Contains(axis, def) {
			return def
		}
		return axis[0]
	}
	pick64 := func(axis []int64, def int64) int64 {
		if slices.Contains(axis, def) {
			return def
		}
		return axis[0]
	}
	return Point{
		Cores:           pickI(g.Cores, paperDefault.Cores),
		QueueLen:        pickI(g.QueueLen, paperDefault.QueueLen),
		TransferLatency: pick64(g.TransferLatency, paperDefault.TransferLatency),
		EnqCost:         pick64(g.EnqCost, paperDefault.EnqCost),
		DeqCost:         pick64(g.DeqCost, paperDefault.DeqCost),
		L1Lines:         pickI(g.L1Lines, paperDefault.L1Lines),
		L1Hit:           pick64(g.L1Hit, paperDefault.L1Hit),
		L1Miss:          pick64(g.L1Miss, paperDefault.L1Miss),
	}
}

// row selects the surface points that sit on the anchor coordinate of
// every axis except the one `vary` frees, in grid order.
func row(s *Surface, a Point, vary func(p, a Point) bool) []PointResult {
	var out []PointResult
	for i := range s.Points {
		if vary(s.Points[i].Point, a) {
			out = append(out, s.Points[i])
		}
	}
	return out
}

func latencyRow(s *Surface, a Point) []PointResult {
	return row(s, a, func(p, a Point) bool {
		p.TransferLatency = a.TransferLatency
		return p == a
	})
}

func queueRow(s *Surface, a Point) []PointResult {
	return row(s, a, func(p, a Point) bool {
		p.QueueLen = a.QueueLen
		return p == a
	})
}

// Report sweeps every named kernel over the grid and reduces each surface
// to its report. Kernels are swept in the given order; the per-kernel
// sweep parallelizes across opt.Workers, and the output is byte-identical
// for any worker count. nil targets means DefaultTargets.
func Report(ctx context.Context, r *experiments.Runner, names []string, g Grid, targets []float64, opt Options) ([]KernelReport, error) {
	if len(targets) == 0 {
		targets = DefaultTargets
	}
	out := make([]KernelReport, 0, len(names))
	for _, name := range names {
		k, err := kernels.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("machspace report: %w", err)
		}
		surf, err := Sweep(ctx, r, k, g, opt)
		if err != nil {
			return nil, fmt.Errorf("machspace report: %s: %w", name, err)
		}
		a := anchor(surf.Grid)
		kr := KernelReport{
			Kernel:     name,
			Points:     len(surf.Points),
			Rejected:   surf.Rejected(),
			Anchor:     a,
			LatencyRow: latencyRow(surf, a),
			QueueRow:   queueRow(surf, a),
			Frontier:   surf.Pareto(),
		}
		for _, t := range targets {
			q := InverseQuery{Target: t}
			if p, ok := surf.Minimal(t); ok {
				q.Found, q.Minimal = true, p
			} else if b, ok := surf.Best(); ok {
				q.Best = b
			}
			kr.Queries = append(kr.Queries, q)
		}
		out = append(out, kr)
	}
	return out, nil
}

// FormatReport renders the machspace report as text tables, one block per
// kernel: the Fig 13-shaped latency row, the queue-saturation row, the
// Pareto frontier, and the inverse queries.
func FormatReport(reps []KernelReport) string {
	var sb strings.Builder
	sb.WriteString("machspace: speedup surface over the machine design space\n")
	for i := range reps {
		kr := &reps[i]
		a := kr.Anchor
		sb.WriteString(fmt.Sprintf("\n%s: %d points, %d rejected\n", kr.Kernel, kr.Points, kr.Rejected))

		sb.WriteString(fmt.Sprintf("  latency degradation at q=%d enq=%d (Fig 13 axis)\n", a.QueueLen, a.EnqCost))
		sb.WriteString("    latency")
		for _, p := range kr.LatencyRow {
			sb.WriteString(fmt.Sprintf(" %7d", p.Point.TransferLatency))
		}
		sb.WriteString("\n    speedup")
		for _, p := range kr.LatencyRow {
			sb.WriteString(fmt.Sprintf(" %7.2f", p.Speedup))
		}
		sb.WriteString("\n")

		sb.WriteString(fmt.Sprintf("  queue saturation at lat=%d enq=%d\n", a.TransferLatency, a.EnqCost))
		sb.WriteString("    qlen   ")
		for _, p := range kr.QueueRow {
			sb.WriteString(fmt.Sprintf(" %7d", p.Point.QueueLen))
		}
		sb.WriteString("\n    speedup")
		for _, p := range kr.QueueRow {
			sb.WriteString(fmt.Sprintf(" %7.2f", p.Speedup))
		}
		sb.WriteString("\n")

		sb.WriteString("  pareto frontier (speedup vs hw cost)\n")
		for _, line := range strings.Split(strings.TrimRight(FormatFrontier(kr.Frontier), "\n"), "\n") {
			sb.WriteString("  " + line + "\n")
		}

		for _, q := range kr.Queries {
			if q.Found {
				sb.WriteString(fmt.Sprintf("  target %.2fx -> hw cost %d  %s  (%.2fx)\n",
					q.Target, q.Minimal.HWCost, q.Minimal.Point, q.Minimal.Speedup))
			} else {
				sb.WriteString(fmt.Sprintf("  target %.2fx -> unreachable; best %.2fx at hw cost %d  %s\n",
					q.Target, q.Best.Speedup, q.Best.HWCost, q.Best.Point))
			}
		}
	}
	return sb.String()
}
