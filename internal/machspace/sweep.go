// The sweep engine: run every grid point of one kernel through the real
// compile-and-simulate pipeline and collect the speedup surface.
//
// Compile-relevant levers (core count, queue capacity — token priming must
// fit — and the partitioner) key the compiled artifact through the
// experiment runner's singleflight cache, so a grid with 6 latencies and 3
// enqueue costs per (cores, queue) cell compiles each cell once and
// simulates 18 times. Run-only levers (transfer latency, issue costs, L1
// geometry and latencies) are applied to the machine configuration at
// simulation time, exactly like the paper's Fig 13 latency sweep. The
// sequential baseline is re-measured per distinct (L1, cost-table) setting
// — a point with a tiny L1 slows the one-core machine down too, and an
// honest speedup divides by that machine's own baseline.

package machspace

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fgp/internal/core"
	"fgp/internal/experiments"
	"fgp/internal/kernels"
)

// DefaultBudget bounds a sweep's point count when Options.Budget is 0.
const DefaultBudget = 512

// ErrBudget is wrapped by sweeps whose grid exceeds the point budget.
var ErrBudget = errors.New("machspace: grid exceeds sweep budget")

// BudgetError reports a grid too large for the sweep budget.
type BudgetError struct {
	Points, Budget int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("machspace: grid enumerates %d points, budget is %d", e.Points, e.Budget)
}

func (e *BudgetError) Unwrap() error { return ErrBudget }

// Options parameterizes a sweep.
type Options struct {
	// Budget bounds the number of grid points (0 = DefaultBudget). A grid
	// past the budget is refused up front with a *BudgetError — never
	// silently truncated.
	Budget int
	// Workers bounds concurrent point simulations (0 = one per CPU, 1 =
	// serial). It changes wall-clock time only: the surface is byte-
	// identical for any worker count.
	Workers int
	// MaxCores bounds the grid's Cores axis (0 = 16, matching the service
	// default); see Grid.Normalize.
	MaxCores int
	// Partitioner selects the partition selector for every compiled point
	// ("" or "heuristic" for the paper's greedy merge, "search" for the
	// simulator-guided refinement); SearchSeed and SearchBudget configure
	// the latter.
	Partitioner  string
	SearchSeed   int64
	SearchBudget int
	// Engine routes every simulation through the named sim engine ("" =
	// the burst default). Results are bit-identical across engines.
	Engine string
}

// PointResult is one cell of the surface. Exactly one of (Cycles > 0) and
// (Reject != "") holds: a point the pipeline rejects — the machine
// validator, the verifier, or a simulated trap — carries the bounded
// diagnostic instead of numbers and is excluded from the frontier.
type PointResult struct {
	Point     Point   `json:"config"`
	HWCost    int64   `json:"hw_cost"`
	Cycles    int64   `json:"cycles,omitempty"`
	SeqCycles int64   `json:"seq_cycles,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	Reject    string  `json:"reject,omitempty"`
}

// OK reports whether the point simulated successfully.
func (p *PointResult) OK() bool { return p.Reject == "" }

// Surface is one kernel's swept speedup surface, points in Grid.Points
// order.
type Surface struct {
	Kernel string        `json:"kernel"`
	Grid   Grid          `json:"grid"`
	Points []PointResult `json:"points"`
}

// Rejected counts the points the pipeline refused.
func (s *Surface) Rejected() int {
	n := 0
	for i := range s.Points {
		if !s.Points[i].OK() {
			n++
		}
	}
	return n
}

// maxRejectBytes bounds one point's rejection diagnostic (deadlock dumps
// are multi-line machine states; the surface keeps the head).
const maxRejectBytes = 512

func boundReject(msg string) string {
	if len(msg) <= maxRejectBytes {
		return msg
	}
	return fmt.Sprintf("%s... (%d bytes truncated)", msg[:maxRejectBytes], len(msg)-maxRejectBytes)
}

// seqKey identifies a sequential-baseline measurement: the levers that
// exist on a one-core machine. Queue and transfer levers are absent by
// construction (sequential code has no communication).
type seqKey struct {
	l1Lines       int
	l1Hit, l1Miss int64
}

type seqCell struct {
	once sync.Once
	cy   int64
	err  error
}

// Sweep runs the grid for one kernel and returns its surface. The grid is
// normalized (unswept axes filled with paper defaults) and budget-checked
// before any work; each point then compiles through r's singleflight
// artifact cache and simulates under ctx, which cancels the sweep within
// one burst horizon. Same grid and options ⇒ byte-identical surface, for
// any Workers.
func Sweep(ctx context.Context, r *experiments.Runner, k *kernels.Kernel, g Grid, opt Options) (*Surface, error) {
	ng, err := g.Normalize(opt.MaxCores)
	if err != nil {
		return nil, err
	}
	budget := opt.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	if n := ng.Size(); n > budget {
		return nil, &BudgetError{Points: n, Budget: budget}
	}
	pts := ng.Points()
	surf := &Surface{Kernel: k.Name, Grid: ng, Points: make([]PointResult, len(pts))}

	// One sequential compile per sweep; one baseline simulation per
	// distinct (L1, latency-table) cell, singleflighted so workers racing
	// to the same cell measure it once.
	var seqOnce sync.Once
	var seqArt *core.Artifact
	var seqErr error
	var seqMu sync.Mutex
	seqCells := map[seqKey]*seqCell{}
	seqCycles := func(ctx context.Context, p Point) (int64, error) {
		seqOnce.Do(func() { seqArt, seqErr = core.CompileSequential(k.Build()) })
		if seqErr != nil {
			return 0, seqErr
		}
		key := seqKey{l1Lines: p.L1Lines, l1Hit: p.L1Hit, l1Miss: p.L1Miss}
		seqMu.Lock()
		cell, ok := seqCells[key]
		if !ok {
			cell = &seqCell{}
			seqCells[key] = cell
		}
		seqMu.Unlock()
		cell.once.Do(func() {
			cfg := seqArt.MachineConfig()
			cfg.Cache.Lines = p.L1Lines
			cfg.Cost.L1Hit = p.L1Hit
			cfg.Cost.L1Miss = p.L1Miss
			cfg.Engine = opt.Engine
			res, err := seqArt.RunContext(ctx, cfg)
			if err != nil {
				cell.err = err
				return
			}
			cell.cy = res.Cycles
		})
		return cell.cy, cell.err
	}

	err = experiments.ParallelEach(len(pts), opt.Workers, func(i int) error {
		p := pts[i]
		out := &surf.Points[i]
		out.Point = p
		out.HWCost = p.HWCost()

		// Gate the machine configuration before any compile work.
		if verr := p.Validate(); verr != nil {
			out.Reject = boundReject(verr.Error())
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}

		// Compile-relevant levers key the artifact cache; the rest are
		// applied to the machine configuration below.
		a, err := r.Artifact(k, experiments.Variant{
			Cores:        p.Cores,
			QueueLen:     p.QueueLen,
			Partitioner:  opt.Partitioner,
			SearchSeed:   opt.SearchSeed,
			SearchBudget: opt.SearchBudget,
		})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			out.Reject = boundReject(err.Error())
			return nil
		}

		cfg := a.MachineConfig()
		cfg.TransferLatency = p.TransferLatency
		cfg.Cost.Enq = p.EnqCost
		cfg.Cost.Deq = p.DeqCost
		cfg.Cache.Lines = p.L1Lines
		cfg.Cost.L1Hit = p.L1Hit
		cfg.Cost.L1Miss = p.L1Miss
		cfg.Engine = opt.Engine
		res, err := a.RunContext(ctx, cfg)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			out.Reject = boundReject(err.Error())
			return nil
		}
		seq, err := seqCycles(ctx, p)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// A baseline that traps fails the whole kernel, not one point:
			// no point of this surface has a denominator.
			return fmt.Errorf("machspace: %s: sequential baseline: %w", k.Name, err)
		}
		out.Cycles = res.Cycles
		out.SeqCycles = seq
		out.Speedup = float64(seq) / float64(res.Cycles)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return surf, nil
}
