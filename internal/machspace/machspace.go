// Package machspace explores the machine design space around the paper's
// fixed operating point (queue length 20, transfer latency 5, 1-cycle
// enqueue/dequeue, 4 cores, 32 KiB L1). The paper's Fig 13/14 sensitivity
// story varies one hardware lever at a time; this package productizes the
// idea: a budgeted sweep engine enumerates a grid over (core count, queue
// capacity, transfer latency, enqueue/dequeue issue cost, L1 size and
// latencies), runs every point through the real compile-and-simulate
// pipeline, and reduces the resulting surface to a Pareto frontier of
// speedup versus hardware cost — so "what hardware would this loop need to
// hit 2x?" has a computable, cacheable answer (the inverse query).
//
// Every axis may be dialed to literal zero where that describes a machine
// (zero-cycle transfers, free enqueues): sweep points are validated by
// sim.Config.Validate before any compile, and a point the pipeline rejects
// (e.g. the verifier refusing a priming depth that exceeds a one-slot
// queue) is recorded as a structured rejection in the surface rather than
// failing the sweep.
package machspace

import (
	"errors"
	"fmt"

	"fgp/internal/sim"
)

// Point is one hardware configuration: the swept subset of sim.Config,
// flattened. The zero value is NOT the paper default — grids are built by
// Grid.Normalize, which fills unswept axes with the paper's values.
type Point struct {
	Cores           int   `json:"cores"`
	QueueLen        int   `json:"queue_len"`
	TransferLatency int64 `json:"transfer_latency"`
	EnqCost         int64 `json:"enq_cost"`
	DeqCost         int64 `json:"deq_cost"`
	// L1Lines is the per-core L1 size in 64-byte lines (512 = the default
	// 32 KiB). 0 disables the L1 timing model: every load hits.
	L1Lines int   `json:"l1_lines"`
	L1Hit   int64 `json:"l1_hit"`
	L1Miss  int64 `json:"l1_miss"`
}

// Config renders the point as a machine configuration: the paper-default
// machine with this point's levers applied.
func (p Point) Config() sim.Config {
	cfg := sim.DefaultConfig(p.Cores)
	cfg.QueueLen = p.QueueLen
	cfg.TransferLatency = p.TransferLatency
	cfg.Cost.Enq = p.EnqCost
	cfg.Cost.Deq = p.DeqCost
	cfg.Cache.Lines = p.L1Lines
	cfg.Cost.L1Hit = p.L1Hit
	cfg.Cost.L1Miss = p.L1Miss
	return cfg
}

// Validate rejects points the simulator cannot model, with the structured
// *sim.ConfigError naming the offending lever.
func (p Point) Validate() error {
	cfg := p.Config()
	return cfg.Validate()
}

// HWCost scores the hardware the point asks for, in abstract cost units.
// The model is deliberately simple but strictly monotone in the favorable
// direction of every axis — more cores, more queue slots, more L1 lines,
// and *lower* latencies all cost more — which is all the Pareto reduction
// and the inverse query need. Units: a core costs 1000; the all-to-all
// queue fabric costs 2 per slot (cores² point-to-point pairs × 2 classes ×
// capacity); L1 lines cost 1 per core; each latency lever contributes a
// budget divided by (latency+1), so zero-cycle hardware is the most
// expensive spelling of its axis. Integer arithmetic keeps the score
// byte-stable across platforms.
func (p Point) HWCost() int64 {
	c := int64(p.Cores) * 1000
	c += int64(p.Cores) * int64(p.Cores) * 2 * int64(p.QueueLen) * 2
	c += int64(p.L1Lines) * int64(p.Cores)
	c += 600 / (p.TransferLatency + 1)
	c += 200/(p.EnqCost+1) + 200/(p.DeqCost+1)
	c += 400/(p.L1Hit+1) + 4000/(p.L1Miss+1)
	return c
}

// String renders the point compactly for reports and diagnostics.
func (p Point) String() string {
	return fmt.Sprintf("cores=%d q=%d lat=%d enq=%d deq=%d l1=%dx64B hit=%d miss=%d",
		p.Cores, p.QueueLen, p.TransferLatency, p.EnqCost, p.DeqCost, p.L1Lines, p.L1Hit, p.L1Miss)
}

// Grid spans the sweep: the cross product of its axes. An empty axis means
// "not swept" and is filled with the paper default by Normalize. Axis
// values keep their given order in the enumeration, so the point order —
// and therefore the surface layout — is exactly what the caller wrote.
type Grid struct {
	Cores           []int   `json:"cores,omitempty"`
	QueueLen        []int   `json:"queue_len,omitempty"`
	TransferLatency []int64 `json:"transfer_latency,omitempty"`
	EnqCost         []int64 `json:"enq_cost,omitempty"`
	DeqCost         []int64 `json:"deq_cost,omitempty"`
	L1Lines         []int   `json:"l1_lines,omitempty"`
	L1Hit           []int64 `json:"l1_hit,omitempty"`
	L1Miss          []int64 `json:"l1_miss,omitempty"`
}

// DefaultGrid is the grid a frontier query gets when it does not send one:
// the paper's operating point plus the levers its sensitivity figures
// actually move — transfer latency (Fig 13), queue capacity (the queue-
// length extension sweep), and the enqueue issue cost — at 4 cores. 90
// points, comfortably inside DefaultBudget.
func DefaultGrid() Grid {
	return Grid{
		Cores:           []int{4},
		QueueLen:        []int{1, 4, 8, 20, 64},
		TransferLatency: []int64{0, 1, 5, 20, 50, 100},
		EnqCost:         []int64{0, 1, 4},
	}
}

// ErrBadGrid is wrapped by every grid-validation failure.
var ErrBadGrid = errors.New("machspace: invalid grid")

// GridError is a structured grid rejection: the axis at fault and why.
type GridError struct {
	Axis   string
	Reason string
}

func (e *GridError) Error() string {
	return fmt.Sprintf("machspace: invalid grid: %s: %s", e.Axis, e.Reason)
}

func (e *GridError) Unwrap() error { return ErrBadGrid }

// Paper-default axis values, used for axes a grid does not sweep.
var paperDefault = func() Point {
	cfg := sim.DefaultConfig(4)
	return Point{
		Cores:           4,
		QueueLen:        cfg.QueueLen,
		TransferLatency: cfg.TransferLatency,
		EnqCost:         cfg.Cost.Enq,
		DeqCost:         cfg.Cost.Deq,
		L1Lines:         cfg.Cache.Lines,
		L1Hit:           cfg.Cost.L1Hit,
		L1Miss:          cfg.Cost.L1Miss,
	}
}()

// axisBounds keeps single axis values inside the envelope the service also
// enforces on /v1/run, so one hostile grid value cannot request a machine
// the simulator would take unbounded time or memory to model.
const (
	maxQueueLen = 1 << 12
	maxLatency  = 1 << 20
	maxL1Lines  = 1 << 20
)

// Normalize fills unswept axes with the paper defaults and validates every
// axis value, returning a *GridError naming the offending axis otherwise.
// maxCores bounds the Cores axis (0 = 16, the service default); the queue
// fabric is O(cores²), so it is a real resource bound, not a style check.
func (g Grid) Normalize(maxCores int) (Grid, error) {
	if maxCores <= 0 {
		maxCores = 16
	}
	fillI := func(axis []int, def int) []int {
		if len(axis) == 0 {
			return []int{def}
		}
		return axis
	}
	fill64 := func(axis []int64, def int64) []int64 {
		if len(axis) == 0 {
			return []int64{def}
		}
		return axis
	}
	g.Cores = fillI(g.Cores, paperDefault.Cores)
	g.QueueLen = fillI(g.QueueLen, paperDefault.QueueLen)
	g.TransferLatency = fill64(g.TransferLatency, paperDefault.TransferLatency)
	g.EnqCost = fill64(g.EnqCost, paperDefault.EnqCost)
	g.DeqCost = fill64(g.DeqCost, paperDefault.DeqCost)
	g.L1Lines = fillI(g.L1Lines, paperDefault.L1Lines)
	g.L1Hit = fill64(g.L1Hit, paperDefault.L1Hit)
	g.L1Miss = fill64(g.L1Miss, paperDefault.L1Miss)

	for _, c := range g.Cores {
		if c < 1 || c > maxCores {
			return Grid{}, &GridError{Axis: "cores", Reason: fmt.Sprintf("values must be in [1, %d], got %d", maxCores, c)}
		}
	}
	for _, q := range g.QueueLen {
		if q < 1 || q > maxQueueLen {
			return Grid{}, &GridError{Axis: "queue_len", Reason: fmt.Sprintf("values must be in [1, %d], got %d", maxQueueLen, q)}
		}
	}
	for axis, vals := range map[string][]int64{
		"transfer_latency": g.TransferLatency,
		"enq_cost":         g.EnqCost,
		"deq_cost":         g.DeqCost,
		"l1_hit":           g.L1Hit,
		"l1_miss":          g.L1Miss,
	} {
		for _, v := range vals {
			if v < 0 || v > maxLatency {
				return Grid{}, &GridError{Axis: axis, Reason: fmt.Sprintf("values must be in [0, %d], got %d", maxLatency, v)}
			}
		}
	}
	for _, l := range g.L1Lines {
		if l < 0 || l > maxL1Lines {
			return Grid{}, &GridError{Axis: "l1_lines", Reason: fmt.Sprintf("values must be in [0, %d] (0 disables the L1 model), got %d", maxL1Lines, l)}
		}
	}
	return g, nil
}

// Size is the number of points the grid enumerates (the product of its
// axis lengths). Meaningful after Normalize; empty axes count as 1.
func (g Grid) Size() int {
	n := 1
	for _, l := range []int{
		max(len(g.Cores), 1), max(len(g.QueueLen), 1), max(len(g.TransferLatency), 1),
		max(len(g.EnqCost), 1), max(len(g.DeqCost), 1), max(len(g.L1Lines), 1),
		max(len(g.L1Hit), 1), max(len(g.L1Miss), 1),
	} {
		n *= l
	}
	return n
}

// Points enumerates the cross product in a fixed deterministic order:
// cores vary slowest, then queue capacity, transfer latency, enqueue cost,
// dequeue cost, L1 lines, L1 hit, L1 miss fastest — each axis in the order
// the grid lists its values. Call on a normalized grid.
func (g Grid) Points() []Point {
	pts := make([]Point, 0, g.Size())
	for _, cores := range g.Cores {
		for _, q := range g.QueueLen {
			for _, lat := range g.TransferLatency {
				for _, enq := range g.EnqCost {
					for _, deq := range g.DeqCost {
						for _, lines := range g.L1Lines {
							for _, hit := range g.L1Hit {
								for _, miss := range g.L1Miss {
									pts = append(pts, Point{
										Cores: cores, QueueLen: q, TransferLatency: lat,
										EnqCost: enq, DeqCost: deq,
										L1Lines: lines, L1Hit: hit, L1Miss: miss,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}
