// Frontier reduction: collapse a swept surface to the configurations worth
// talking about (the Pareto set of speedup vs hardware cost) and answer
// the inverse query — the cheapest machine that reaches a target speedup.

package machspace

import (
	"fmt"
	"sort"
)

// Pareto returns the non-dominated points of the surface: maximize
// speedup, minimize hardware cost. A point is dominated when some other
// point is at least as fast and strictly cheaper, or as cheap and strictly
// faster. Rejected points never appear. The result is sorted by hardware
// cost ascending (speedup strictly ascending along it, by construction);
// among equal (cost, speedup) pairs the earliest grid point wins, so the
// frontier is deterministic for one surface.
func (s *Surface) Pareto() []PointResult {
	idx := make([]int, 0, len(s.Points))
	for i := range s.Points {
		if s.Points[i].OK() {
			idx = append(idx, i)
		}
	}
	// Cheapest first; at equal cost the fastest first; ties broken by grid
	// order so duplicates collapse deterministically.
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := &s.Points[idx[a]], &s.Points[idx[b]]
		if pa.HWCost != pb.HWCost {
			return pa.HWCost < pb.HWCost
		}
		return pa.Speedup > pb.Speedup
	})
	var out []PointResult
	best := -1.0
	for _, i := range idx {
		p := &s.Points[i]
		if p.Speedup > best {
			out = append(out, *p)
			best = p.Speedup
		}
	}
	return out
}

// Minimal answers the inverse query: the cheapest configuration whose
// speedup meets target (ties broken by higher speedup, then grid order).
// ok is false when no swept point reaches the target.
func (s *Surface) Minimal(target float64) (PointResult, bool) {
	found := false
	var bestPt PointResult
	for i := range s.Points {
		p := &s.Points[i]
		if !p.OK() || p.Speedup < target {
			continue
		}
		if !found || p.HWCost < bestPt.HWCost ||
			(p.HWCost == bestPt.HWCost && p.Speedup > bestPt.Speedup) {
			bestPt = *p
			found = true
		}
	}
	return bestPt, found
}

// Best returns the highest-speedup point of the surface (cheapest among
// ties, then grid order); ok is false when every point was rejected.
func (s *Surface) Best() (PointResult, bool) {
	found := false
	var bestPt PointResult
	for i := range s.Points {
		p := &s.Points[i]
		if !p.OK() {
			continue
		}
		if !found || p.Speedup > bestPt.Speedup ||
			(p.Speedup == bestPt.Speedup && p.HWCost < bestPt.HWCost) {
			bestPt = *p
			found = true
		}
	}
	return bestPt, found
}

// FormatFrontier renders a Pareto set as a text table.
func FormatFrontier(frontier []PointResult) string {
	out := fmt.Sprintf("%8s %8s  %s\n", "hw cost", "speedup", "config")
	for _, p := range frontier {
		out += fmt.Sprintf("%8d %8.2f  %s\n", p.HWCost, p.Speedup, p.Point)
	}
	return out
}
