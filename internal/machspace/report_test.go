// The committed machspace report is the regression gate for the sweep:
// its bytes pin every simulated speedup, and its shape pins the paper's
// Fig 13/14 qualitative story — speedup degrades monotonically as the
// transfer latency grows, and grows toward saturation as the queue
// capacity does. Regenerate with
//
//	go test ./internal/machspace -run TestGoldenReport -update
//
// after an intentional simulator or cost-model change.

package machspace

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fgp/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the golden machspace report")

// goldenGrid is the CI-budgeted sweep: the Fig 13 latency axis (plus the
// zero-latency corner) crossed with the queue-capacity axis at 4 cores.
// 30 points per kernel.
func goldenGrid() Grid {
	return Grid{
		Cores:           []int{4},
		QueueLen:        []int{1, 4, 8, 20, 64},
		TransferLatency: []int64{0, 1, 5, 20, 50, 100},
	}
}

// umt2k-4 is the inverse-query acceptance kernel (latency-tolerant: deep
// queues hide the transfer latency completely, so its degradation lives on
// the queue axis); umt2k-2 and lammps-2 carry the Fig 13 story — their
// speedup collapses monotonically as the latency grows.
var goldenKernels = []string{"umt2k-4", "umt2k-2", "lammps-2"}

func goldenReport(t *testing.T) []KernelReport {
	t.Helper()
	r := experiments.NewRunner()
	reps, err := Report(context.Background(), r, goldenKernels, goldenGrid(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return reps
}

func TestGoldenReport(t *testing.T) {
	reps := goldenReport(t)
	got := FormatReport(reps)

	path := filepath.Join("testdata", "golden_machspace.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden report rewritten: %s", path)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden report (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("machspace report drifted from the committed golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Shape, independently of the exact bytes: the paper's sensitivity
	// story must hold for every kernel in the report.
	degraded := false
	for _, kr := range reps {
		if len(kr.LatencyRow) < 3 || len(kr.QueueRow) < 3 {
			t.Fatalf("%s: report rows missing (latency %d, queue %d)", kr.Kernel, len(kr.LatencyRow), len(kr.QueueRow))
		}
		// Fig 13: more latency never helps. Monotone non-increasing.
		for i := 1; i < len(kr.LatencyRow); i++ {
			prev, cur := kr.LatencyRow[i-1], kr.LatencyRow[i]
			if cur.Speedup > prev.Speedup*1.001 {
				t.Errorf("%s: speedup rose with latency: %.4f at lat=%d -> %.4f at lat=%d",
					kr.Kernel, prev.Speedup, prev.Point.TransferLatency, cur.Speedup, cur.Point.TransferLatency)
			}
		}
		first, lastLat := kr.LatencyRow[0], kr.LatencyRow[len(kr.LatencyRow)-1]
		if lastLat.Speedup < first.Speedup*0.8 {
			degraded = true
		}
		// Queue capacity saturates: more slots never hurt, and the last
		// doubling (20 -> 64) buys almost nothing.
		for i := 1; i < len(kr.QueueRow); i++ {
			prev, cur := kr.QueueRow[i-1], kr.QueueRow[i]
			if cur.Speedup < prev.Speedup*0.999 {
				t.Errorf("%s: speedup fell with queue capacity: %.4f at q=%d -> %.4f at q=%d",
					kr.Kernel, prev.Speedup, prev.Point.QueueLen, cur.Speedup, cur.Point.QueueLen)
			}
		}
		last, prev := kr.QueueRow[len(kr.QueueRow)-1], kr.QueueRow[len(kr.QueueRow)-2]
		if last.Speedup > prev.Speedup*1.05 {
			t.Errorf("%s: queue axis not saturating: %.4f at q=%d -> %.4f at q=%d (>5%% gain on the last step)",
				kr.Kernel, prev.Speedup, prev.Point.QueueLen, last.Speedup, last.Point.QueueLen)
		}
		// The frontier is strictly improving along cost.
		for i := 1; i < len(kr.Frontier); i++ {
			a, b := kr.Frontier[i-1], kr.Frontier[i]
			if b.HWCost <= a.HWCost || b.Speedup <= a.Speedup {
				t.Errorf("%s: frontier not strictly improving: (%d, %.4f) -> (%d, %.4f)",
					kr.Kernel, a.HWCost, a.Speedup, b.HWCost, b.Speedup)
			}
		}
		// The inverse-query set exercises both the hit and the structured
		// miss path against this surface.
		for _, q := range kr.Queries {
			if q.Found {
				if q.Minimal.Speedup < q.Target {
					t.Errorf("%s: target %.2f answered with %.4f", kr.Kernel, q.Target, q.Minimal.Speedup)
				}
			} else if q.Best.Speedup >= q.Target {
				t.Errorf("%s: target %.2f reported unreachable but best is %.4f", kr.Kernel, q.Target, q.Best.Speedup)
			}
		}
	}
	if !degraded {
		t.Error("no kernel in the golden set shows the Fig 13 latency collapse (>20% drop across the latency axis)")
	}
}
