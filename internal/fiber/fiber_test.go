package fiber

import (
	"testing"

	"fgp/internal/ir"
	"fgp/internal/tac"
)

func partition(t *testing.T, build func(b *ir.Builder)) (*tac.Fn, *Set) {
	t.Helper()
	b := ir.NewBuilder("t", "i", 0, 8, 1)
	b.ArrayF("a", make([]float64, 32))
	b.ArrayF("o", make([]float64, 32))
	b.ArrayI("p", make([]int64, 32))
	build(b)
	l := b.MustBuild()
	fn, err := tac.Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Partition(fn)
	if err != nil {
		t.Fatal(err)
	}
	return fn, set
}

// TestFig4Example reproduces the paper's Figure 4: the expression
// (p2 % 7) + a[...] * (p1 % 13) must partition into exactly three fibers:
// one for C = (p2 % 7), one continued through D = (p1 % 13) and B = mul
// (the load is a leaf joining B), and a new one for the root add A.
func TestFig4Example(t *testing.T) {
	fn, _ := partition(t, func(b *ir.Builder) {
		i := b.Idx()
		p1 := b.Def("p1", ir.LDI("p", i))
		p2 := b.Def("p2", ir.LDI("p", ir.AddE(i, ir.I(1))))
		b.Def("r", ir.AddE(ir.IToF(ir.RemE(p2, ir.I(7))),
			ir.MulE(ir.LDF("a", i), ir.IToF(ir.RemE(p1, ir.I(13))))))
		b.StoreF("o", i, b.T("r"))
	})

	// Find the fibers of the statement defining r (the Fig 4 tree).
	var stmt = -1
	for _, in := range fn.Instrs {
		if in.Dst != tac.None && fn.Temps[in.Dst].Name == "r" {
			stmt = in.Stmt
		}
	}
	if stmt < 0 {
		t.Fatal("could not locate the r statement")
	}
	fibers := map[int32]bool{}
	for _, in := range fn.Instrs {
		if in.Stmt == stmt {
			fibers[in.Fiber] = true
		}
	}
	// Paper: three fibers — (p2%7 chain), (p1%13 chain continued by the
	// multiply), and the root add.
	if len(fibers) != 3 {
		t.Errorf("Fig 4 example produced %d fibers, want 3\n%s", len(fibers), fn.Dump())
	}
}

func TestEveryInstrAssigned(t *testing.T) {
	fn, _ := partition(t, func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.MulE(ir.LDF("a", i), ir.F(2)))
		}, func() {
			b.Def("v", ir.F(0))
		})
		b.StoreF("o", i, b.T("v"))
	})
	for _, in := range fn.Instrs {
		if in.Fiber < 0 {
			t.Fatalf("instr %d unassigned", in.ID)
		}
	}
}

func TestLeafLoadJoinsConsumer(t *testing.T) {
	fn, _ := partition(t, func(b *ir.Builder) {
		i := b.Idx()
		b.StoreF("o", i, ir.MulE(ir.LDF("a", i), ir.F(2)))
	})
	// The load, the const, the mul and the store must all share one fiber.
	fibers := map[int32]bool{}
	for _, in := range fn.Instrs {
		fibers[in.Fiber] = true
	}
	if len(fibers) != 1 {
		t.Errorf("single-chain statement split into %d fibers\n%s", len(fibers), fn.Dump())
	}
}

func TestIndependentSubtreesSplit(t *testing.T) {
	// (a[i]*a[i]) + (a[i+1]*a[i+1]): the two products are independent
	// subtrees and must land in different fibers; the root add starts a
	// third. The i+1 index computations are internal nodes of their own
	// (two more fibers), giving five in total.
	fn, _ := partition(t, func(b *ir.Builder) {
		i := b.Idx()
		l := ir.MulE(ir.LDF("a", i), ir.LDF("a", i))
		r := ir.MulE(ir.LDF("a", ir.AddE(i, ir.I(1))), ir.LDF("a", ir.AddE(i, ir.I(1))))
		b.StoreF("o", i, ir.AddE(l, r))
	})
	fibers := map[int32]bool{}
	var mulFibers []int32
	var rootFiber int32 = -1
	for _, in := range fn.Instrs {
		fibers[in.Fiber] = true
		if in.Op == tac.OpBin {
			switch in.BinOp {
			case ir.Mul:
				mulFibers = append(mulFibers, in.Fiber)
			case ir.Add:
				if in.K == ir.F64 {
					rootFiber = in.Fiber
				}
			}
		}
	}
	if len(fibers) != 5 {
		t.Errorf("got %d fibers, want 5\n%s", len(fibers), fn.Dump())
	}
	if len(mulFibers) != 2 || mulFibers[0] == mulFibers[1] {
		t.Errorf("the two products must be in distinct fibers: %v", mulFibers)
	}
	for _, mf := range mulFibers {
		if mf == rootFiber {
			t.Error("root add must start its own fiber (children in two fibers)")
		}
	}
}

func TestChainContinuesSingleFiber(t *testing.T) {
	// ((a+1)*2-3)/4: a pure chain stays one fiber.
	fn, _ := partition(t, func(b *ir.Builder) {
		i := b.Idx()
		e := ir.DivE(ir.SubE(ir.MulE(ir.AddE(ir.LDF("a", i), ir.F(1)), ir.F(2)), ir.F(3)), ir.F(4))
		b.StoreF("o", i, e)
	})
	fibers := map[int32]bool{}
	for _, in := range fn.Instrs {
		fibers[in.Fiber] = true
	}
	if len(fibers) != 1 {
		t.Errorf("chain split into %d fibers\n%s", len(fibers), fn.Dump())
	}
}

func TestNamedTempIsLeafBoundary(t *testing.T) {
	// x = a[i]*2; y = x + 3: the use of x in the second statement is a
	// leaf live-in, so y's statement starts its own fiber.
	fn, _ := partition(t, func(b *ir.Builder) {
		i := b.Idx()
		b.Def("x", ir.MulE(ir.LDF("a", i), ir.F(2)))
		b.Def("y", ir.AddE(b.T("x"), ir.F(3)))
		b.StoreF("o", i, b.T("y"))
	})
	xf, yf := int32(-1), int32(-1)
	for _, in := range fn.Instrs {
		if in.Dst != tac.None {
			switch fn.Temps[in.Dst].Name {
			case "x":
				xf = in.Fiber
			case "y":
				yf = in.Fiber
			}
		}
	}
	if xf < 0 || yf < 0 || xf == yf {
		t.Errorf("x fiber %d, y fiber %d; want distinct fibers", xf, yf)
	}
}

func TestFiberMetadata(t *testing.T) {
	fn, set := partition(t, func(b *ir.Builder) {
		i := b.Idx()
		b.StoreF("o", i, ir.AddE(ir.MulE(ir.LDF("a", i), ir.F(2)), ir.SqrtE(ir.LDF("a", ir.AddE(i, ir.I(1))))))
	})
	total := 0
	for _, f := range set.Fibers {
		total += len(f.Instrs)
		for _, id := range f.Instrs {
			if fn.Instrs[id].Fiber != int32(f.ID) {
				t.Fatalf("instr %d fiber mismatch", id)
			}
		}
		if set.ComputeOps(f) < 0 {
			t.Fatal("negative compute ops")
		}
	}
	if total != len(fn.Instrs) {
		t.Errorf("fibers cover %d instrs, function has %d", total, len(fn.Instrs))
	}
}

func TestLoneLoadStatement(t *testing.T) {
	// v = a[i] as a whole statement: the load is the root leaf and gets its
	// own fiber.
	fn, _ := partition(t, func(b *ir.Builder) {
		i := b.Idx()
		b.Def("v", ir.LDF("a", i))
		b.StoreF("o", i, b.T("v"))
	})
	for _, in := range fn.Instrs {
		if in.Fiber < 0 {
			t.Fatalf("instr %d unassigned\n%s", in.ID, fn.Dump())
		}
	}
}
