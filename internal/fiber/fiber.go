// Package fiber implements the paper's fiber-partitioning algorithm
// (Section III-A). A fiber is a sequence of instructions without control
// flow or memory-carried dependences among them; fibers are found by a
// post-order traversal of each statement's expression tree:
//
//   - all children of the current node are unassigned: start a new fiber
//     for the current node;
//   - all assigned children belong to the same fiber: continue that fiber;
//   - children belong to more than one fiber: start a new fiber.
//
// Leaf nodes (memory loads, literals, references to temporaries defined by
// other statements) remain unassigned during the traversal; afterwards each
// load/literal instruction joins the fiber of its consumer, since loads are
// issued locally by whichever core needs the value.
package fiber

import (
	"fmt"

	"fgp/internal/tac"
)

// Fiber is a group of TAC instructions that will never be split across
// cores.
type Fiber struct {
	ID     int
	Stmt   int // statement ordinal of the owning statement
	Region int
	Line   int // pseudo source line (proximity heuristic)
	Instrs []int
}

// Set is the result of partitioning: every instruction belongs to exactly
// one fiber (instr.Fiber is filled in).
type Set struct {
	Fn     *tac.Fn
	Fibers []*Fiber
}

// Partition splits all instructions of fn into fibers and annotates
// instr.Fiber.
func Partition(fn *tac.Fn) (*Set, error) {
	s := &Set{Fn: fn}

	// Group instructions by statement ordinal. Lowering emits each
	// statement's tree contiguously in post-order, which is exactly the
	// traversal order the algorithm needs.
	groups := map[int][]*tac.Instr{}
	order := []int{}
	for _, in := range fn.Instrs {
		if _, ok := groups[in.Stmt]; !ok {
			order = append(order, in.Stmt)
		}
		groups[in.Stmt] = append(groups[in.Stmt], in)
	}

	for _, stmt := range order {
		if err := s.partitionStmt(groups[stmt]); err != nil {
			return nil, fmt.Errorf("fiber: stmt %d: %w", stmt, err)
		}
	}

	// Verify the postcondition: every instruction assigned.
	for _, in := range fn.Instrs {
		if in.Fiber < 0 {
			return nil, fmt.Errorf("fiber: instr %d (%s) left unassigned", in.ID, fn.InstrString(in))
		}
	}
	return s, nil
}

func (s *Set) newFiber(in *tac.Instr) *Fiber {
	f := &Fiber{ID: len(s.Fibers), Stmt: in.Stmt, Region: in.Region, Line: in.Line}
	s.Fibers = append(s.Fibers, f)
	return f
}

func (s *Set) assign(in *tac.Instr, f *Fiber) {
	in.Fiber = int32(f.ID)
	f.Instrs = append(f.Instrs, in.ID)
}

func (s *Set) partitionStmt(group []*tac.Instr) error {
	fn := s.Fn
	// Map from temp -> defining instruction within this statement.
	defs := map[tac.TempID]*tac.Instr{}
	// Only generated temps participate in tree edges: a use of a named temp
	// is a leaf reference to another statement's value (or, for "sum =
	// sum + x", to the previous iteration's value), never an edge to the
	// root of the current tree.
	for _, in := range group {
		if in.Dst != tac.None && !fn.Temps[in.Dst].Named {
			defs[in.Dst] = in
		}
	}

	isInternal := func(in *tac.Instr) bool {
		switch in.Op {
		case tac.OpBin, tac.OpUn, tac.OpMov, tac.OpStore:
			return true
		}
		return false
	}

	// internalChildren returns the internal-node children of in, looking
	// through leaf loads: the compute chain of a load's index feeds the
	// load's consumer for partitioning purposes.
	var internalChildren func(in *tac.Instr) []*tac.Instr
	internalChildren = func(in *tac.Instr) []*tac.Instr {
		var kids []*tac.Instr
		var uses []tac.TempID
		uses = in.Uses(uses)
		for _, u := range uses {
			d, ok := defs[u]
			if !ok || d == in {
				continue // leaf reference: named temp from another statement
			}
			if isInternal(d) {
				kids = append(kids, d)
			} else {
				// Load or literal: look through it at its own children.
				kids = append(kids, internalChildren(d)...)
			}
		}
		return kids
	}

	// Post-order pass over internal nodes (program order is post-order).
	for _, in := range group {
		if !isInternal(in) {
			continue
		}
		kids := internalChildren(in)
		fibers := map[int32]bool{}
		for _, k := range kids {
			if k.Fiber >= 0 {
				fibers[k.Fiber] = true
			}
		}
		switch len(fibers) {
		case 0:
			s.assign(in, s.newFiber(in))
		case 1:
			for fid := range fibers {
				s.assign(in, s.Fibers[fid])
			}
		default:
			s.assign(in, s.newFiber(in))
		}
	}

	// Leaf post-pass: loads and literals join their consumer's fiber. Walk
	// in reverse program order so that chained loads (a[b[i]]) see their
	// consumer already assigned.
	consumer := map[tac.TempID]*tac.Instr{}
	for _, in := range group {
		var uses []tac.TempID
		uses = in.Uses(uses)
		for _, u := range uses {
			if d, ok := defs[u]; ok && d != in {
				consumer[u] = in
			}
		}
	}
	for i := len(group) - 1; i >= 0; i-- {
		in := group[i]
		if in.Fiber >= 0 {
			continue
		}
		if c, ok := consumer[in.Dst]; ok && c.Fiber >= 0 {
			s.assign(in, s.Fibers[c.Fiber])
			continue
		}
		// Root leaf (e.g. "t = a[i]" or "t = 5" as a whole statement):
		// it needs its own fiber.
		s.assign(in, s.newFiber(in))
	}
	return nil
}

// ComputeOps returns the number of compute operations in the fiber, the
// quantity the paper's load-balance metric counts.
func (s *Set) ComputeOps(f *Fiber) int {
	n := 0
	for _, id := range f.Instrs {
		if s.Fn.Instrs[id].IsCompute() {
			n++
		}
	}
	return n
}
