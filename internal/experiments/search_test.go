package experiments

import (
	"os"
	"testing"
)

const goldenSearchPath = "testdata/golden_search.txt"

// goldenSearchConfig mirrors the fgpexp defaults, so the committed report is
// exactly what `fgpexp -exp search` prints.
func goldenSearchConfig() SearchConfig {
	return SearchConfig{Budget: 48, Seed: 1, Tier2: true}
}

// TestGoldenSearchReport pins the partitioning-as-search experiment: the
// per-kernel heuristic-vs-searched cycle table over the tier-1 catalog and
// the tier-2 source corpus at 2 and 4 cores. Two gates hold independently of
// the committed bytes — the searched partition is never worse than the
// heuristic on any kernel/core cell, and at least one cell strictly improves
// (otherwise the searcher has silently degenerated into an expensive no-op).
// Regenerate after an intentional compiler/simulator/search change with:
//
//	go test ./internal/experiments -run TestGoldenSearchReport -update
func TestGoldenSearchReport(t *testing.T) {
	rows, err := Search(NewRunner(), goldenSearchConfig())
	if err != nil {
		t.Fatal(err)
	}

	improved := 0
	for _, r := range rows {
		if r.SearchedCycles > r.HeuristicCycles {
			t.Errorf("%s (%d cores): searched partition worse than heuristic: %d > %d cycles",
				r.Name, r.Cores, r.SearchedCycles, r.HeuristicCycles)
		}
		if r.SearchedCycles < r.HeuristicCycles {
			improved++
		}
		if r.Explored <= 0 {
			t.Errorf("%s (%d cores): search explored %d candidates", r.Name, r.Cores, r.Explored)
		}
	}
	if improved == 0 {
		t.Error("search improved no kernel/core cell at the golden budget; the explorer is a no-op")
	}

	text := FormatSearch(rows)
	if *update {
		if err := os.WriteFile(goldenSearchPath, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d rows, %d improved)", goldenSearchPath, len(rows), improved)
		return
	}
	want, err := os.ReadFile(goldenSearchPath)
	if err != nil {
		t.Fatalf("reading golden search report (run with -update to create it): %v", err)
	}
	if text != string(want) {
		t.Errorf("search report drifted from %s (regenerate with -update if intended):\n got:\n%s\nwant:\n%s",
			goldenSearchPath, text, want)
	}
}

// TestSearchReportDeterministic re-runs a slice of the experiment and
// requires byte-identical rows: the report is a pure function of
// (seed, budget), regardless of runner parallelism.
func TestSearchReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full search sweep is slow; skipped in -short mode")
	}
	cfg := SearchConfig{Budget: 24, Seed: 3, Cores: []int{4}}
	a, err := Search(NewRunner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(NewRunner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if FormatSearch(a) != FormatSearch(b) {
		t.Errorf("search report not deterministic:\nfirst:\n%s\nsecond:\n%s", FormatSearch(a), FormatSearch(b))
	}
}
