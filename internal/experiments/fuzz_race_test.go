package experiments

import (
	"testing"

	"fgp/internal/fuzz"
)

// TestParallelDifferentialBatch runs a differential-fuzzing batch on the
// experiments worker pool: every seed's kernel is generated, compiled, and
// cross-checked against the interpreter concurrently. Run under
// `go test -race` this is the data-race smoke test for the whole
// compile-and-simulate pipeline (compiler, both simulator engines, memory
// images) executing in parallel — the exact shape cmd/fgpfuzz uses for its
// batch mode.
func TestParallelDifferentialBatch(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 6
	}
	oc := fuzz.OracleConfig{MaxCores: 3, SkipRepeat: true, Norms: []int{0}}
	err := ParallelEach(n, 0, func(i int) error {
		l := fuzz.Generate(uint64(i), fuzz.GenConfig{Trips: 12, MaxStmts: 8})
		return fuzz.Check(l, oc)
	})
	if err != nil {
		t.Fatalf("parallel differential batch: %v", err)
	}
}
