package experiments

import (
	"strings"
	"testing"

	"fgp/internal/kernels"
)

func kernelByName(t *testing.T, name string) *kernels.Kernel {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestFig12ShapesMatchPaper(t *testing.T) {
	r := NewRunner()
	rows, err := Fig12(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("got %d rows, want 18", len(rows))
	}
	var a2, a4 float64
	byName := map[string]Fig12Row{}
	for _, row := range rows {
		a2 += row.Speedup2 / 18
		a4 += row.Speedup4 / 18
		byName[row.Name] = row
	}
	// The paper reports averages 1.32 (2 cores) and 2.05 (4 cores). Our
	// simulated substrate will not match exactly; require the same band.
	if a2 < 1.1 || a2 > 1.9 {
		t.Errorf("2-core average speedup %.2f outside the plausible band [1.1, 1.9]", a2)
	}
	if a4 < 1.7 || a4 > 2.9 {
		t.Errorf("4-core average speedup %.2f outside the plausible band [1.7, 2.9]", a4)
	}
	// Headline shape claims from the paper:
	if byName["umt2k-6"].Speedup4 >= 1.0 {
		t.Errorf("umt2k-6 should slow down at 4 cores (paper: 0.90), got %.2f", byName["umt2k-6"].Speedup4)
	}
	for _, worst := range []string{"umt2k-2", "umt2k-3", "irs-2"} {
		if byName[worst].Speedup4 > a4 {
			t.Errorf("%s should be below average (conditional reductions / carried sweep), got %.2f vs avg %.2f",
				worst, byName[worst].Speedup4, a4)
		}
	}
	// 4 cores should beat 2 cores on average.
	if a4 <= a2 {
		t.Errorf("4-core average (%.2f) should exceed 2-core average (%.2f)", a4, a2)
	}
	t.Log("\n" + FormatFig12(rows))
}

func TestTable2(t *testing.T) {
	r := NewRunner()
	rows, err := Table2(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d apps, want 4", len(rows))
	}
	for _, row := range rows {
		if row.Coverage < 0.35 || row.Coverage > 0.95 {
			t.Errorf("%s: coverage %.2f outside Table I bands", row.App, row.Coverage)
		}
		// Amdahl: app speedup must be below the per-kernel speedups and
		// above 1 wherever kernels speed up on 4 cores.
		if row.Speedup4 < 0.85 || row.Speedup4 > 4 {
			t.Errorf("%s: implausible app speedup %.2f", row.App, row.Speedup4)
		}
		if row.Speedup2 > row.Speedup4+0.2 {
			t.Errorf("%s: 2-core app speedup above 4-core", row.App)
		}
	}
	t.Log("\n" + FormatTable2(rows))
}

func TestTable3(t *testing.T) {
	r := NewRunner()
	rows, err := Table3(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Fibers < 2 {
			t.Errorf("%s: only %d fibers", row.Name, row.Fibers)
		}
		if row.CommOps%2 != 0 {
			t.Errorf("%s: comm ops %d not an enq/deq pairing", row.Name, row.CommOps)
		}
		if row.Queues < 1 {
			t.Errorf("%s: no queues used at 4 cores", row.Name)
		}
	}
	// Load-balance shape: the conditional-reduction kernels are the most
	// imbalanced in the paper (87.5 / 55.0); ours must rank them high too.
	var worst string
	var worstBal float64
	for _, row := range rows {
		if row.Balance > worstBal {
			worstBal, worst = row.Balance, row.Name
		}
	}
	if worst != "umt2k-2" && worst != "umt2k-3" && worst != "lammps-4" {
		t.Logf("note: worst balance is %s (%.1f), paper has umt2k-2", worst, worstBal)
	}
	t.Log("\n" + FormatTable3(rows))
}

func TestFig13LatencyDegradation(t *testing.T) {
	r := NewRunner()
	lats := []int64{5, 20, 50, 100}
	rows, err := Fig13(r, lats)
	if err != nil {
		t.Fatal(err)
	}
	avg := make([]float64, len(lats))
	for _, row := range rows {
		for i, s := range row.Speedups {
			avg[i] += s / float64(len(rows))
		}
	}
	for i := 1; i < len(avg); i++ {
		if avg[i] > avg[i-1]+0.02 {
			t.Errorf("average speedup should not improve with latency: %v", avg)
		}
	}
	if avg[0]-avg[len(avg)-1] < 0.15 {
		t.Errorf("no measurable latency sensitivity: %v", avg)
	}
	// Per the paper, the carried-dependence kernels lose their entire
	// speedup by 20-50 cycles.
	byName := map[string][]float64{}
	for _, row := range rows {
		byName[row.Name] = row.Speedups
	}
	for _, k := range []string{"umt2k-6", "umt2k-2", "irs-2"} {
		if byName[k][1] > 1.15 {
			t.Errorf("%s should lose its speedup at 20-cycle latency (paper), got %.2f", k, byName[k][1])
		}
	}
	t.Log("\n" + FormatFig13(rows, lats))
}

func TestFig14Speculation(t *testing.T) {
	r := NewRunner()
	rows, err := Fig14(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Speculated < row.Base*0.8 {
			t.Errorf("%s: speculation should not badly hurt (%.2f -> %.2f)", row.Name, row.Base, row.Speculated)
		}
	}
	// Note: the paper reports 8 kernels improving (avg 2.05 -> 2.33); on
	// this substrate the queues already hide condition-wait latency across
	// iterations, so speculation's extra work makes it neutral. The
	// qualitative discrepancy and its mechanism are analyzed in
	// EXPERIMENTS.md.
	t.Log("\n" + FormatFig14(rows))
}

func TestThroughputAblation(t *testing.T) {
	r := NewRunner()
	rows, err := Throughput(r)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatThroughput(rows)
	if !strings.Contains(out, "geomean") {
		t.Fatal("format missing summary")
	}
	t.Log("\n" + out)
}

func TestSIMDAnalysis(t *testing.T) {
	rows, err := SIMD()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SIMDRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Paper: lammps and sphot not suitable for SIMD.
	for _, name := range []string{"lammps-1", "lammps-2", "lammps-3", "lammps-4", "lammps-5", "sphot-2"} {
		if byName[name].Vectorizable {
			t.Errorf("%s should not be SIMD-suitable (paper Sec IV)", name)
		}
	}
	// Paper: irs-1 and umt2k-4 gain with 4-way SIMD.
	for _, name := range []string{"irs-1", "umt2k-4"} {
		r := byName[name]
		if !r.Vectorizable || r.Estimate <= 1.05 {
			t.Errorf("%s should be SIMD-suitable with a gain, got %+v", name, r)
		}
	}
	// umt2k-4 should out-gain irs-1 (paper: 1.90 vs 1.17 — irs-1 is
	// bandwidth-bound).
	if byName["umt2k-4"].Estimate <= byName["irs-1"].Estimate {
		t.Errorf("umt2k-4 (%.2f) should out-gain irs-1 (%.2f)",
			byName["umt2k-4"].Estimate, byName["irs-1"].Estimate)
	}
	t.Log("\n" + FormatSIMD(rows))
}

func TestQueueLenSweepIncludesDeadRegime(t *testing.T) {
	r := NewRunner()
	rows, err := QueueLen(r, []int{2, 20})
	if err != nil {
		t.Fatal(err)
	}
	var shortAvg, longAvg float64
	dead := 0
	for _, row := range rows {
		shortAvg += row.Speedups[0] / float64(len(rows))
		longAvg += row.Speedups[1] / float64(len(rows))
		if row.Speedups[0] == 0 {
			dead++
		}
	}
	if shortAvg >= longAvg {
		t.Errorf("2-slot queues (%.2f) should underperform 20-slot queues (%.2f)", shortAvg, longAvg)
	}
	if dead == 0 {
		t.Log("note: no kernel deadlocked at 2 slots in this run")
	}
	t.Log("\n" + FormatQueueLen(rows, []int{2, 20}))
}

func TestMultiPairReducesSteps(t *testing.T) {
	r := NewRunner()
	rows, err := MultiPair(r)
	if err != nil {
		t.Fatal(err)
	}
	fewer := 0
	for _, row := range rows {
		if row.MultiSteps <= row.BaseSteps {
			fewer++
		}
		// Multi-pair trades compile effort, not correctness: the resulting
		// speedup must stay in the same ballpark.
		if row.MultiPairResult < row.BaseSpeedup*0.7 {
			t.Errorf("%s: multi-pair speedup %.2f far below single-pair %.2f",
				row.Name, row.MultiPairResult, row.BaseSpeedup)
		}
	}
	if fewer != len(rows) {
		t.Errorf("multi-pair took more steps on %d kernels", len(rows)-fewer)
	}
	t.Log("\n" + FormatMultiPair(rows))
}

func TestScheduleAblation(t *testing.T) {
	r := NewRunner()
	rows, err := Schedule(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Scheduled < row.Base*0.7 {
			t.Errorf("%s: scheduling badly hurt (%.2f -> %.2f)", row.Name, row.Base, row.Scheduled)
		}
	}
	t.Log("\n" + FormatSchedule(rows))
}

func TestNormalizeAblation(t *testing.T) {
	r := NewRunner()
	rows, err := Normalize(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Normalized < row.Base*0.7 {
			t.Errorf("%s: normalization badly hurt (%.2f -> %.2f)", row.Name, row.Base, row.Normalized)
		}
	}
	t.Log("\n" + FormatNormalize(rows))
}

// TestDeterminism: the whole evaluation is reproducible — two fresh runners
// produce identical Fig 12 rows.
func TestDeterminism(t *testing.T) {
	a, err := Fig12(NewRunner())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig12(NewRunner())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRunnerCachesArtifacts: a second request for the same variant returns
// the identical artifact pointer.
func TestRunnerCachesArtifacts(t *testing.T) {
	r := NewRunner()
	k := kernelByName(t, "irs-3")
	a1, err := r.Artifact(k, Variant{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Artifact(k, Variant{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("runner failed to cache the artifact")
	}
	a3, err := r.Artifact(k, Variant{Cores: 2, Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Error("distinct variants must not share a cache slot")
	}
}
