// Error attribution in the figure sweeps: a failing (kernel, latency)
// point must fail the sweep with the offending point named, and the
// attribution must be deterministic for any worker count (ParallelEach
// returns the lowest-index error).

package experiments

import (
	"strings"
	"testing"

	"fgp/internal/ir"
	"fgp/internal/kernels"
)

// boomKernel is an injected kernel whose simulation traps (division by a
// zero scalar), so every sweep point over it fails.
func boomKernel() *kernels.Kernel {
	b := ir.NewBuilder("boom", "i", 0, 8, 1)
	b.ArrayI("n", []int64{1, 2, 3, 4, 5, 6, 7, 8})
	z := b.ScalarI("z", 0)
	b.StoreI("n", b.Idx(), b.Def("x", ir.DivE(ir.LDI("n", b.Idx()), z)))
	loop := b.MustBuild()
	return kernels.Wrap("boom", func() *ir.Loop { return loop })
}

func TestFig13NamesFailingPoint(t *testing.T) {
	good, err := kernels.ByName("sphot-1")
	if err != nil {
		t.Fatal(err)
	}
	ks := []*kernels.Kernel{good, boomKernel()}
	lats := []int64{5, 20}

	for _, workers := range []int{1, 4} {
		r := NewRunner()
		r.SetWorkers(workers)
		_, serr := Fig13Kernels(r, ks, lats)
		if serr == nil {
			t.Fatalf("workers=%d: sweep over a trapping kernel succeeded", workers)
		}
		msg := serr.Error()
		if !strings.Contains(msg, "boom") {
			t.Errorf("workers=%d: error %q does not name the failing kernel", workers, msg)
		}
		// The lowest-index failing point is boom's first latency, for any
		// worker interleaving.
		if !strings.Contains(msg, "latency 5") {
			t.Errorf("workers=%d: error %q does not name the failing latency point", workers, msg)
		}
		if !strings.Contains(msg, "division by zero") {
			t.Errorf("workers=%d: error %q lost the underlying cause", workers, msg)
		}
	}
}
