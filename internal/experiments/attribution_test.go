package experiments

import (
	"os"
	"testing"

	"fgp/internal/obs"
)

const goldenAttributionPath = "testdata/golden_attribution.txt"

// TestGoldenAttribution pins the full formatted stall-attribution report of
// sphot-1 at 1 and 3 cores. Any compiler or simulator change that shifts
// where cycles are attributed — even with total cycles unchanged — fails
// this test. Regenerate after an intentional model change with:
//
//	go test ./internal/experiments -run TestGoldenAttribution -update
func TestGoldenAttribution(t *testing.T) {
	rows, err := Attribution(NewRunner(), "sphot-1", []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	got := FormatAttribution(rows)

	if *update {
		if err := os.WriteFile(goldenAttributionPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenAttributionPath)
		return
	}
	want, err := os.ReadFile(goldenAttributionPath)
	if err != nil {
		t.Fatalf("missing golden report (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("stall attribution drifted from the golden report.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Structural spot checks, independent of the golden file: the per-cause
	// stall totals must reconcile with the report's own core rows, and the
	// 3-core run must attribute real queue stalls.
	for _, row := range rows {
		tot := row.Report.StallTotals()
		var sum int64
		for i := range row.Report.Cores {
			for c := 0; c < int(obs.NumCauses); c++ {
				sum += row.Report.Cores[i].Stalls[c]
			}
		}
		var totSum int64
		for _, v := range tot {
			totSum += v
		}
		if sum != totSum {
			t.Errorf("%d cores: per-core stalls sum to %d, totals rows say %d", row.Cores, sum, totSum)
		}
	}
	if rows[1].Report.StallTotals()[obs.CauseDeqEmpty] == 0 {
		t.Error("3-core sphot-1 reports zero deq-empty stalls; the attribution lost its signal")
	}
}
