package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelEach runs f(i) for every i in [0, n) on a pool of at most
// `workers` goroutines (workers <= 0 means one per available CPU). Workers
// pull indices from a shared counter, so uneven item costs still load the
// pool evenly. All indices are attempted even when some fail; the returned
// error is the one with the lowest index, which keeps the reported error
// deterministic regardless of goroutine interleaving.
//
// With workers == 1 the function degenerates to a plain serial loop on the
// calling goroutine — the experiment code paths are identical, only the
// concurrency changes.
func ParallelEach(n, workers int, f func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := f(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
