// The stall-attribution experiment: where the rest of the package measures
// how fast each kernel gets, this one explains why — recording the full
// observability event stream of one kernel across core counts and
// decomposing every core's cycles into busy time and attributed stalls
// (queue waits, L1 misses, memory-port serialization), plus queue occupancy
// telemetry and the load-imbalance index. It is the analysis the paper
// walks through when discussing why individual kernels in Figures 12–16
// speed up or stall.

package experiments

import (
	"fmt"
	"strings"

	"fgp/internal/kernels"
	"fgp/internal/obs"
	"fgp/internal/sim"
)

// AttributionRow is one kernel×cores cell: the speedup, the full stall
// report, and the raw event stream (for -trace-out exports; omitted from
// JSON output, where the report carries the aggregate story).
type AttributionRow struct {
	Kernel  string
	Cores   int
	Speedup float64
	Report  *obs.Report
	Events  []obs.Event `json:"-"`
	Meta    obs.Meta    `json:"-"`
}

// Attribution records one kernel at each core count and builds its stall
// attribution. Rows come back in coreCounts order regardless of worker
// scheduling.
func Attribution(r *Runner, name string, coreCounts []int) ([]AttributionRow, error) {
	k, err := kernels.ByName(name)
	if err != nil {
		return nil, err
	}
	rows := make([]AttributionRow, len(coreCounts))
	err = r.each(len(coreCounts), func(i int) error {
		cores := coreCounts[i]
		rec := obs.NewRecorder()
		sp, _, _, err := r.Speedup(k, Variant{Cores: cores}, func(cfg *sim.Config) {
			cfg.Sink = rec
		})
		if err != nil {
			return err
		}
		rows[i] = AttributionRow{
			Kernel:  k.Name,
			Cores:   cores,
			Speedup: sp,
			Report:  obs.BuildReport(rec.Meta, rec.Events),
			Events:  rec.Events,
			Meta:    rec.Meta,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAttribution renders the experiment as the text the CLI prints and
// the golden-report test pins.
func FormatAttribution(rows []AttributionRow) string {
	var sb strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "stall attribution: %s\n", rows[0].Kernel)
	}
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&sb, "--- %d core(s), speedup %.2f ---\n", r.Cores, r.Speedup)
		sb.WriteString(r.Report.Format())
	}
	return sb.String()
}
