package experiments

import (
	"fmt"
	"strings"

	"fgp/internal/kernels"
	"fgp/internal/sim"
)

// Fig12Row is one bar pair of Figure 12: speedup of fine-grained parallel
// code over sequential code, on 2 and 4 cores.
type Fig12Row struct {
	Name         string
	SeqCycles    int64
	Speedup2     float64
	Speedup4     float64
	PaperSpeedup float64 // Table III's 4-core value
}

// Fig12 regenerates Figure 12. The 2- and 4-core variants of every kernel
// fan out across the runner's worker pool; rows come back in kernel order.
func Fig12(r *Runner) ([]Fig12Row, error) {
	ks := kernels.All()
	rows := make([]Fig12Row, len(ks))
	// Two work items per kernel so a slow 4-core compile does not serialize
	// behind its own kernel's 2-core run.
	err := r.each(2*len(ks), func(i int) error {
		k, cores := ks[i/2], 2+2*(i%2)
		sp, _, _, err := r.Speedup(k, Variant{Cores: cores}, nil)
		if err != nil {
			return fmt.Errorf("fig12: %s at %d cores: %w", k.Name, cores, err)
		}
		seq, err := r.SeqCycles(k)
		if err != nil {
			return fmt.Errorf("fig12: %s: sequential baseline: %w", k.Name, err)
		}
		// The two items of one kernel write disjoint fields of the row.
		row := &rows[i/2]
		if cores == 2 {
			row.Name, row.SeqCycles, row.PaperSpeedup = k.Name, seq, k.PaperSpeedup
			row.Speedup2 = sp
		} else {
			row.Speedup4 = sp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFig12 renders the figure as a text table.
func FormatFig12(rows []Fig12Row) string {
	var sb strings.Builder
	sb.WriteString("Fig 12: speedup of fine-grained parallel code over sequential code\n")
	sb.WriteString(fmt.Sprintf("%-10s %12s %8s %8s %10s\n", "kernel", "seq cycles", "2-core", "4-core", "paper(4c)"))
	var a2, a4, ap float64
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %12d %8.2f %8.2f %10.2f\n", r.Name, r.SeqCycles, r.Speedup2, r.Speedup4, r.PaperSpeedup))
		a2 += r.Speedup2
		a4 += r.Speedup4
		ap += r.PaperSpeedup
	}
	n := float64(len(rows))
	sb.WriteString(fmt.Sprintf("%-10s %12s %8.2f %8.2f %10.2f\n", "average", "", a2/n, a4/n, ap/n))
	sb.WriteString("paper averages: 2-core 1.32, 4-core 2.05\n")
	return sb.String()
}

// Fig13Row is one line of Figure 13: 4-core speedup as the queue transfer
// latency grows (the paper plots the degradation at 20 and 50 cycles and
// discusses 100 in the text).
type Fig13Row struct {
	Name     string
	Speedups []float64 // one per latency
}

// Fig13 regenerates Figure 13 for the given latencies (paper: 5, 20, 50,
// 100) over the full Table I registry.
func Fig13(r *Runner, latencies []int64) ([]Fig13Row, error) {
	return Fig13Kernels(r, kernels.All(), latencies)
}

// Fig13Kernels runs the latency sweep over an explicit kernel list. The
// full kernel×latency grid is one flat work list; all latency points of a
// kernel share its compiled artifact through the runner cache. A failing
// point fails the sweep with the offending (kernel, latency) pair named —
// the lowest-index point, deterministically, regardless of the worker
// count (ParallelEach).
func Fig13Kernels(r *Runner, ks []*kernels.Kernel, latencies []int64) ([]Fig13Row, error) {
	rows := make([]Fig13Row, len(ks))
	for i, k := range ks {
		rows[i] = Fig13Row{Name: k.Name, Speedups: make([]float64, len(latencies))}
	}
	err := r.each(len(ks)*len(latencies), func(i int) error {
		ki, li := i/len(latencies), i%len(latencies)
		lat := latencies[li]
		sp, _, _, err := r.Speedup(ks[ki], Variant{Cores: 4}, func(c *sim.Config) { c.TransferLatency = lat })
		if err != nil {
			return fmt.Errorf("fig13: %s at latency %d: %w", ks[ki].Name, lat, err)
		}
		rows[ki].Speedups[li] = sp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFig13 renders the latency sweep.
func FormatFig13(rows []Fig13Row, latencies []int64) string {
	var sb strings.Builder
	sb.WriteString("Fig 13: 4-core speedup vs queue transfer latency\n")
	sb.WriteString(fmt.Sprintf("%-10s", "kernel"))
	for _, l := range latencies {
		sb.WriteString(fmt.Sprintf(" %7s", fmt.Sprintf("L=%d", l)))
	}
	sb.WriteString("\n")
	avgs := make([]float64, len(latencies))
	noSpeedup := make([]int, len(latencies))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s", r.Name))
		for i, s := range r.Speedups {
			sb.WriteString(fmt.Sprintf(" %7.2f", s))
			avgs[i] += s / float64(len(rows))
			if s <= 1.0 {
				noSpeedup[i]++
			}
		}
		sb.WriteString("\n")
	}
	sb.WriteString(fmt.Sprintf("%-10s", "average"))
	for _, a := range avgs {
		sb.WriteString(fmt.Sprintf(" %7.2f", a))
	}
	sb.WriteString("\n")
	sb.WriteString(fmt.Sprintf("%-10s", "no-speedup"))
	for _, n := range noSpeedup {
		sb.WriteString(fmt.Sprintf(" %7d", n))
	}
	sb.WriteString("\npaper: avg 2.05 / 1.85 / 1.36 / ~1.0; no-speedup counts 1 / 4 / 6 / 16\n")
	return sb.String()
}

// Fig14Row is one bar pair of Figure 14: the effect of control-flow
// speculation on the 4-core speedup.
type Fig14Row struct {
	Name          string
	Base          float64
	Speculated    float64
	SpeculatedIfs int
}

// Fig14 regenerates Figure 14, one worker item per kernel.
func Fig14(r *Runner) ([]Fig14Row, error) {
	ks := kernels.All()
	rows := make([]Fig14Row, len(ks))
	err := r.each(len(ks), func(i int) error {
		k := ks[i]
		base, _, _, err := r.Speedup(k, Variant{Cores: 4}, nil)
		if err != nil {
			return fmt.Errorf("fig14: %s: %w", k.Name, err)
		}
		spec, _, art, err := r.Speedup(k, Variant{Cores: 4, Speculate: true}, nil)
		if err != nil {
			return fmt.Errorf("fig14: %s (speculated): %w", k.Name, err)
		}
		rows[i] = Fig14Row{Name: k.Name, Base: base, Speculated: spec, SpeculatedIfs: art.Report.SpeculatedIfs}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFig14 renders the speculation comparison.
func FormatFig14(rows []Fig14Row) string {
	var sb strings.Builder
	sb.WriteString("Fig 14: effect of control-flow speculation (4 cores)\n")
	sb.WriteString(fmt.Sprintf("%-10s %8s %8s %8s %6s\n", "kernel", "base", "spec", "ratio", "#ifs"))
	var ab, as float64
	improved := 0
	for _, r := range rows {
		ratio := r.Speculated / r.Base
		sb.WriteString(fmt.Sprintf("%-10s %8.2f %8.2f %8.2f %6d\n", r.Name, r.Base, r.Speculated, ratio, r.SpeculatedIfs))
		ab += r.Base / float64(len(rows))
		as += r.Speculated / float64(len(rows))
		if ratio > 1.02 {
			improved++
		}
	}
	sb.WriteString(fmt.Sprintf("average %.2f -> %.2f (%d kernels improved)\n", ab, as, improved))
	sb.WriteString("paper: 8 kernels improved, average 2.05 -> 2.33 (+28% on the improved set)\n")
	return sb.String()
}
