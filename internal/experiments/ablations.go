package experiments

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"fgp/internal/kernels"
	"fgp/internal/sim"
	"fgp/internal/verify"
)

// ThroughputRow compares the default partitioner against the throughput
// (DAG-constraining) merge heuristic of Section III-B, which the paper
// found to be a net loss (3 of 18 kernels improved, 6 degraded, 11% average
// slowdown).
type ThroughputRow struct {
	Name       string
	Base       float64
	Throughput float64
}

// Throughput runs the ablation at 4 cores, one worker item per kernel.
func Throughput(r *Runner) ([]ThroughputRow, error) {
	ks := kernels.All()
	rows := make([]ThroughputRow, len(ks))
	err := r.each(len(ks), func(i int) error {
		k := ks[i]
		base, _, _, err := r.Speedup(k, Variant{Cores: 4}, nil)
		if err != nil {
			return err
		}
		thr, _, _, err := r.Speedup(k, Variant{Cores: 4, Throughput: true}, nil)
		if err != nil {
			return err
		}
		rows[i] = ThroughputRow{k.Name, base, thr}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatThroughput renders the ablation.
func FormatThroughput(rows []ThroughputRow) string {
	var sb strings.Builder
	sb.WriteString("Sec III-B ablation: throughput (DAG) merge heuristic, 4 cores\n")
	sb.WriteString(fmt.Sprintf("%-10s %8s %8s %8s\n", "kernel", "base", "dag", "ratio"))
	improved, degraded := 0, 0
	geo := 1.0
	for _, r := range rows {
		ratio := r.Throughput / r.Base
		sb.WriteString(fmt.Sprintf("%-10s %8.2f %8.2f %8.2f\n", r.Name, r.Base, r.Throughput, ratio))
		if ratio > 1.02 {
			improved++
		}
		if ratio < 0.98 {
			degraded++
		}
		geo *= ratio
	}
	geo = math.Pow(geo, 1/float64(len(rows)))
	sb.WriteString(fmt.Sprintf("improved %d, degraded %d, geomean ratio %.2f\n", improved, degraded, geo))
	sb.WriteString("paper: 3 improved, 6 degraded, 11% average slowdown\n")
	return sb.String()
}

// MultiPairRow compares compile effort and quality of the multi-pair merge
// variant (Section III-B: "allows faster compilation ... useful when there
// are a large number of fibers").
type MultiPairRow struct {
	Name            string
	BaseSteps       int
	MultiSteps      int
	BaseSpeedup     float64
	MultiPairResult float64
}

// MultiPair runs the compile-time variant ablation at 4 cores, one worker
// item per kernel.
func MultiPair(r *Runner) ([]MultiPairRow, error) {
	ks := kernels.All()
	rows := make([]MultiPairRow, len(ks))
	err := r.each(len(ks), func(i int) error {
		k := ks[i]
		base, _, ab, err := r.Speedup(k, Variant{Cores: 4}, nil)
		if err != nil {
			return err
		}
		multi, _, am, err := r.Speedup(k, Variant{Cores: 4, MultiPair: true}, nil)
		if err != nil {
			return err
		}
		rows[i] = MultiPairRow{
			Name:            k.Name,
			BaseSteps:       ab.Report.MergeSteps,
			MultiSteps:      am.Report.MergeSteps,
			BaseSpeedup:     base,
			MultiPairResult: multi,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatMultiPair renders the variant comparison.
func FormatMultiPair(rows []MultiPairRow) string {
	var sb strings.Builder
	sb.WriteString("Multi-pair merge variant: merge steps and resulting 4-core speedup\n")
	sb.WriteString(fmt.Sprintf("%-10s %11s %11s %9s %9s\n", "kernel", "steps", "steps(mp)", "speedup", "spd(mp)"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %11d %11d %9.2f %9.2f\n",
			r.Name, r.BaseSteps, r.MultiSteps, r.BaseSpeedup, r.MultiPairResult))
	}
	return sb.String()
}

// QueueLenRow sweeps the queue length (the paper fixes 20 slots; this
// extension shows where shorter queues start to throttle decoupling).
type QueueLenRow struct {
	Name     string
	Speedups []float64
}

// QueueLen sweeps queue capacities at 4 cores. A too-short queue can
// deadlock the compiled code outright (store-and-forward deadlock: a
// sender fills one queue while its receiver waits on another) — one of the
// reasons the paper provisions 20 slots. Deadlocked configurations are
// reported as speedup 0.
func QueueLen(r *Runner, lens []int) ([]QueueLenRow, error) {
	ks := kernels.All()
	rows := make([]QueueLenRow, len(ks))
	for i, k := range ks {
		rows[i] = QueueLenRow{Name: k.Name, Speedups: make([]float64, len(lens))}
	}
	err := r.each(len(ks)*len(lens), func(i int) error {
		ki, li := i/len(lens), i%len(lens)
		sp, _, _, err := r.Speedup(ks[ki], Variant{Cores: 4, QueueLen: lens[li]}, nil)
		if err != nil {
			// The static verifier rejects most deadlocking configurations
			// at compile time; the simulator catches any remainder.
			if errors.Is(err, sim.ErrDeadlock) || verify.HasCheck(err, "deadlock") || verify.HasCheck(err, "fifo-depth") {
				rows[ki].Speedups[li] = 0
				return nil
			}
			return err
		}
		rows[ki].Speedups[li] = sp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatQueueLen renders the sweep.
func FormatQueueLen(rows []QueueLenRow, lens []int) string {
	var sb strings.Builder
	sb.WriteString("Extension: 4-core speedup vs queue length (paper fixes 20)\n")
	sb.WriteString(fmt.Sprintf("%-10s", "kernel"))
	for _, l := range lens {
		sb.WriteString(fmt.Sprintf(" %7s", fmt.Sprintf("q=%d", l)))
	}
	sb.WriteString("\n")
	avgs := make([]float64, len(lens))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s", r.Name))
		for i, s := range r.Speedups {
			if s == 0 {
				sb.WriteString(fmt.Sprintf(" %7s", "dead"))
			} else {
				sb.WriteString(fmt.Sprintf(" %7.2f", s))
			}
			avgs[i] += s / float64(len(rows))
		}
		sb.WriteString("\n")
	}
	sb.WriteString(fmt.Sprintf("%-10s", "average"))
	for _, a := range avgs {
		sb.WriteString(fmt.Sprintf(" %7.2f", a))
	}
	sb.WriteString("\n\"dead\" = the configuration deadlocks (store-and-forward: too few slots\nfor the per-iteration traffic) — the reason the paper provisions 20 slots.\n")
	return sb.String()
}

// ScheduleRow compares the default source-order code layout against the
// within-region scheduling pass (producers-of-communicated-values early,
// consumers late; Section III-B last paragraph).
type ScheduleRow struct {
	Name      string
	Base      float64
	Scheduled float64
}

// Schedule runs the scheduling ablation at 4 cores, one worker item per
// kernel.
func Schedule(r *Runner) ([]ScheduleRow, error) {
	ks := kernels.All()
	rows := make([]ScheduleRow, len(ks))
	err := r.each(len(ks), func(i int) error {
		k := ks[i]
		base, _, _, err := r.Speedup(k, Variant{Cores: 4}, nil)
		if err != nil {
			return err
		}
		sched, _, _, err := r.Speedup(k, Variant{Cores: 4, Schedule: true}, nil)
		if err != nil {
			return err
		}
		rows[i] = ScheduleRow{k.Name, base, sched}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatSchedule renders the ablation.
func FormatSchedule(rows []ScheduleRow) string {
	var sb strings.Builder
	sb.WriteString("Scheduling ablation: within-region list scheduling, 4 cores\n")
	sb.WriteString(fmt.Sprintf("%-10s %8s %8s %8s\n", "kernel", "base", "sched", "ratio"))
	geo := 1.0
	for _, r := range rows {
		ratio := r.Scheduled / r.Base
		sb.WriteString(fmt.Sprintf("%-10s %8.2f %8.2f %8.2f\n", r.Name, r.Base, r.Scheduled, ratio))
		geo *= ratio
	}
	geo = math.Pow(geo, 1/float64(len(rows)))
	sb.WriteString(fmt.Sprintf("geomean ratio %.2f (the paper notes scheduling-adjacent changes had\n", geo))
	sb.WriteString("unpredictable effects; on this substrate the queues already decouple\n")
	sb.WriteString("producers from consumers, so the pass is near-neutral)\n")
	return sb.String()
}

// NormalizeRow compares partitioning with and without the Section III-A
// tree-splitting pre-pass (statements capped at 4 compute operations).
type NormalizeRow struct {
	Name       string
	Fibers     int
	FibersNorm int
	Base       float64
	Normalized float64
}

// Normalize runs the tree-splitting ablation at 4 cores, one worker item
// per kernel.
func Normalize(r *Runner) ([]NormalizeRow, error) {
	ks := kernels.All()
	rows := make([]NormalizeRow, len(ks))
	err := r.each(len(ks), func(i int) error {
		k := ks[i]
		base, _, ab, err := r.Speedup(k, Variant{Cores: 4}, nil)
		if err != nil {
			return err
		}
		norm, _, an, err := r.Speedup(k, Variant{Cores: 4, NormalizeOps: 4}, nil)
		if err != nil {
			return err
		}
		rows[i] = NormalizeRow{
			Name:       k.Name,
			Fibers:     ab.Report.InitialFibers,
			FibersNorm: an.Report.InitialFibers,
			Base:       base,
			Normalized: norm,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatNormalize renders the ablation.
func FormatNormalize(rows []NormalizeRow) string {
	var sb strings.Builder
	sb.WriteString("Sec III-A ablation: expression-tree splitting (statements capped at 4 ops)\n")
	sb.WriteString(fmt.Sprintf("%-10s %8s %10s %9s %9s\n", "kernel", "fibers", "fibers(n)", "speedup", "spd(n)"))
	geo := 1.0
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %8d %10d %9.2f %9.2f\n", r.Name, r.Fibers, r.FibersNorm, r.Base, r.Normalized))
		geo *= r.Normalized / r.Base
	}
	geo = math.Pow(geo, 1/float64(len(rows)))
	sb.WriteString(fmt.Sprintf("geomean ratio %.2f\n", geo))
	return sb.String()
}
