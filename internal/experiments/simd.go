package experiments

import (
	"fmt"
	"strings"

	"fgp/internal/cost"
	"fgp/internal/deps"
	"fgp/internal/fiber"
	"fgp/internal/kernels"
	"fgp/internal/profile"
	"fgp/internal/tac"
)

// SIMDRow estimates 4-way SIMD potential per kernel — the complementary
// fine-grained-parallelism note of Section IV. The paper reports that
// lammps and sphot are not suitable for SIMD (indirect accesses), while
// irs-1 gains 1.17x and umt2k-4 gains 1.90x.
type SIMDRow struct {
	Name         string
	Vectorizable bool
	Reason       string
	Estimate     float64 // estimated 4-way SIMD speedup (1.0 if not vectorizable)
}

// SIMD runs the static vectorizability analysis and cost-model estimate.
func SIMD() ([]SIMDRow, error) {
	tab := cost.Default()
	ic := profile.InstrCost(tab, nil)
	var rows []SIMDRow
	for _, k := range kernels.All() {
		l := k.Build()
		fn, err := tac.Lower(l)
		if err != nil {
			return nil, err
		}
		set, err := fiber.Partition(fn)
		if err != nil {
			return nil, err
		}
		info, err := deps.Analyze(fn, set)
		if err != nil {
			return nil, err
		}
		row := SIMDRow{Name: k.Name, Vectorizable: true}

		// Unit-stride (or invariant) affine accesses only: gathers and
		// scatters disqualify the loop on in-order SIMD hardware.
		for _, in := range fn.Instrs {
			if in.Op != tac.OpLoad && in.Op != tac.OpStore {
				continue
			}
			a := info.Affine[in.A]
			if !a.OK || (a.A != 0 && a.A != 1) {
				row.Vectorizable = false
				row.Reason = fmt.Sprintf("non-unit-stride access to %s", in.Array)
				break
			}
		}
		// Loop-carried memory dependences serialize the lanes.
		if row.Vectorizable {
			for _, e := range info.Edges {
				if e.Kind == deps.Mem && e.Carried {
					row.Vectorizable = false
					row.Reason = "loop-carried memory dependence"
					break
				}
			}
		}
		if !row.Vectorizable {
			row.Estimate = 1.0
			rows = append(rows, row)
			continue
		}

		// Cost-model estimate: vector lanes amortize FP arithmetic by the
		// vector width. Memory traffic does not shrink — unit-stride vector
		// loads move the same bytes through the same port, which is what
		// keeps bandwidth-bound loops like irs-1 near the paper's modest
		// 1.17x — and neither does scalar bookkeeping (loop control,
		// integer index math, reduction combines).
		const width = 4
		var vec, scalar int64
		for _, in := range fn.Instrs {
			c := ic(in)
			switch in.Op {
			case tac.OpBin, tac.OpUn:
				if in.K == 0 { // ir.F64
					vec += c
				} else {
					scalar += c
				}
			default:
				scalar += c
			}
		}
		overhead := int64(4) // per-iteration vector setup/select cost
		total := vec + scalar
		simd := vec/width + scalar + overhead
		if simd < 1 {
			simd = 1
		}
		row.Estimate = float64(total) / float64(simd)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSIMD renders the estimate table.
func FormatSIMD(rows []SIMDRow) string {
	var sb strings.Builder
	sb.WriteString("Sec IV note: 4-way SIMD suitability and cost-model estimate\n")
	sb.WriteString(fmt.Sprintf("%-10s %-12s %9s  %s\n", "kernel", "suitable", "est(4w)", "why not"))
	for _, r := range rows {
		suit := "yes"
		if !r.Vectorizable {
			suit = "no"
		}
		sb.WriteString(fmt.Sprintf("%-10s %-12s %9.2f  %s\n", r.Name, suit, r.Estimate, r.Reason))
	}
	sb.WriteString("paper: lammps and sphot unsuitable; irs-1 1.17x, umt2k-4 1.90x with 4-way SIMD\n")
	return sb.String()
}
