package experiments

import (
	"fmt"
	"strings"

	"fgp/internal/core"
	"fgp/internal/ir"
	"fgp/internal/kernels"
	"fgp/internal/kernels/tier2"
)

// SearchRow reports the partition-search experiment for one kernel at one
// core count: the simulated cycle count of the paper-heuristic partition,
// the cycle count of the searched partition (never larger, by
// construction), and how many candidates the search scored to find it.
// Both cycle counts come from the threaded engine, the search objective.
type SearchRow struct {
	Name            string
	Cores           int
	HeuristicCycles int64
	SearchedCycles  int64
	Explored        int
}

// Gain is the fractional cycle reduction vs the heuristic (0.1 = 10%).
func (r SearchRow) Gain() float64 {
	if r.HeuristicCycles == 0 {
		return 0
	}
	return float64(r.HeuristicCycles-r.SearchedCycles) / float64(r.HeuristicCycles)
}

// SearchConfig bounds the partition-search experiment.
type SearchConfig struct {
	// Budget is the per-kernel candidate budget (0 = search.DefaultBudget).
	Budget int
	// Seed seeds the annealing phase; the whole report is deterministic in
	// (Seed, Budget).
	Seed int64
	// Cores lists the core counts to search at (nil = {2, 4}).
	Cores []int
	// Tier2 includes the committed tier-2 source corpus after the tier-1
	// catalog.
	Tier2 bool
}

// searchItem is one (kernel, cores) cell of the experiment.
type searchItem struct {
	name  string
	build func() (*ir.Loop, error)
	cores int
}

// Search runs the partitioning-as-search experiment: every kernel is
// compiled with Options.Partitioner = "search" and the per-kernel
// heuristic-vs-searched cycle counts are read off the compile report. Rows
// come back in catalog order (tier-1 first, then tier-2 when enabled),
// core counts ascending within a kernel.
func Search(r *Runner, cfg SearchConfig) ([]SearchRow, error) {
	coresList := cfg.Cores
	if len(coresList) == 0 {
		coresList = []int{2, 4}
	}
	var items []searchItem
	for _, k := range kernels.All() {
		k := k
		for _, c := range coresList {
			items = append(items, searchItem{k.Name, func() (*ir.Loop, error) { return k.Build(), nil }, c})
		}
	}
	if cfg.Tier2 {
		t2, err := tier2.All()
		if err != nil {
			return nil, err
		}
		for _, k := range t2 {
			k := k
			for _, c := range coresList {
				items = append(items, searchItem{k.Name, k.Build, c})
			}
		}
	}
	rows := make([]SearchRow, len(items))
	err := r.each(len(items), func(i int) error {
		it := items[i]
		l, err := it.build()
		if err != nil {
			return err
		}
		opt := core.DefaultOptions(it.cores)
		opt.Partitioner = core.PartitionerSearch
		opt.SearchBudget = cfg.Budget
		opt.SearchSeed = cfg.Seed
		a, err := core.Compile(l, opt)
		if err != nil {
			return fmt.Errorf("experiments: search %s (%d cores): %w", it.name, it.cores, err)
		}
		rep := a.Report
		rows[i] = SearchRow{
			Name:            it.name,
			Cores:           it.cores,
			HeuristicCycles: rep.SearchBaselineCycles,
			SearchedCycles:  rep.SearchCycles,
			Explored:        rep.SearchExplored,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatSearch renders the experiment as the per-kernel table the golden
// report commits.
func FormatSearch(rows []SearchRow) string {
	var sb strings.Builder
	sb.WriteString("Partitioning as search: heuristic seed vs searched partition (threaded-engine cycles)\n")
	sb.WriteString(fmt.Sprintf("%-16s %5s %10s %10s %8s %9s\n", "kernel", "cores", "heuristic", "searched", "gain", "explored"))
	improved := 0
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-16s %5d %10d %10d %7.2f%% %9d\n",
			r.Name, r.Cores, r.HeuristicCycles, r.SearchedCycles, 100*r.Gain(), r.Explored))
		if r.SearchedCycles < r.HeuristicCycles {
			improved++
		}
	}
	sb.WriteString(fmt.Sprintf("improved %d of %d kernel/core cells; searched cycles never exceed heuristic cycles by construction\n", improved, len(rows)))
	return sb.String()
}
