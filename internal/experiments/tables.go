package experiments

import (
	"fmt"
	"strings"

	"fgp/internal/kernels"
)

// Table1Row is one row of Table I: the kernel inventory with the fraction
// of whole-application time each loop accounts for.
type Table1Row struct {
	Name    string
	App     string
	PctTime float64
}

// Table1 reproduces Table I from the kernel metadata.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, k := range kernels.All() {
		rows = append(rows, Table1Row{k.Name, k.App, k.PctTime})
	}
	return rows
}

// FormatTable1 renders the inventory.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table I: kernel loops and % of application time\n")
	sb.WriteString(fmt.Sprintf("%-10s %-8s %7s\n", "kernel", "app", "%time"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %-8s %7.1f\n", r.Name, r.App, r.PctTime))
	}
	return sb.String()
}

// Table2Row is one row of Table II: expected whole-application speedup,
// combining per-kernel speedups with Table I coverage via Amdahl's law.
type Table2Row struct {
	App             string
	Coverage        float64 // fraction of app time in the kernels
	Speedup2        float64
	Speedup4        float64
	Paper2, Paper4  float64
	KernelSpeedups2 map[string]float64
	KernelSpeedups4 map[string]float64
}

var paperTable2 = map[string][2]float64{
	"lammps": {1.05, 1.70},
	"irs":    {1.24, 1.79},
	"umt2k":  {1.16, 1.51},
	"sphot":  {1.25, 1.92},
}

// Table2 regenerates Table II from the Fig 12 per-kernel data.
func Table2(r *Runner) ([]Table2Row, error) {
	fig12, err := Fig12(r)
	if err != nil {
		return nil, err
	}
	byName := map[string]Fig12Row{}
	for _, row := range fig12 {
		byName[row.Name] = row
	}
	var rows []Table2Row
	for _, app := range kernels.Apps() {
		row := Table2Row{
			App:             app,
			KernelSpeedups2: map[string]float64{},
			KernelSpeedups4: map[string]float64{},
			Paper2:          paperTable2[app][0],
			Paper4:          paperTable2[app][1],
		}
		rem2, rem4 := 0.0, 0.0 // accelerated time remaining, as app-time fraction
		for _, k := range kernels.ByApp(app) {
			p := k.PctTime / 100
			f := byName[k.Name]
			row.Coverage += p
			rem2 += p / f.Speedup2
			rem4 += p / f.Speedup4
			row.KernelSpeedups2[k.Name] = f.Speedup2
			row.KernelSpeedups4[k.Name] = f.Speedup4
		}
		serial := 1 - row.Coverage
		row.Speedup2 = 1 / (serial + rem2)
		row.Speedup4 = 1 / (serial + rem4)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders the application-level speedups.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table II: expected whole-application speedups\n")
	sb.WriteString(fmt.Sprintf("%-8s %9s %8s %8s %9s %9s\n", "app", "coverage", "2-core", "4-core", "paper 2c", "paper 4c"))
	var a2, a4, p2, p4 float64
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-8s %8.0f%% %8.2f %8.2f %9.2f %9.2f\n",
			r.App, r.Coverage*100, r.Speedup2, r.Speedup4, r.Paper2, r.Paper4))
		a2 += r.Speedup2 / float64(len(rows))
		a4 += r.Speedup4 / float64(len(rows))
		p2 += r.Paper2 / float64(len(rows))
		p4 += r.Paper4 / float64(len(rows))
	}
	sb.WriteString(fmt.Sprintf("%-8s %9s %8.2f %8.2f %9.2f %9.2f\n", "average", "", a2, a4, p2, p4))
	return sb.String()
}

// Table3Row is one row of Table III: per-kernel compiler statistics for the
// 4-core configuration, alongside the paper's published values.
type Table3Row struct {
	Name    string
	Fibers  int
	Deps    int
	Balance float64
	CommOps int
	Queues  int // (sender,receiver) pairs actually used at runtime
	Speedup float64

	PaperFibers  int
	PaperDeps    int
	PaperBalance float64
	PaperCommOps int
	PaperQueues  int
	PaperSpeedup float64
}

// Table3 regenerates Table III, one worker item per kernel.
func Table3(r *Runner) ([]Table3Row, error) {
	ks := kernels.All()
	rows := make([]Table3Row, len(ks))
	err := r.each(len(ks), func(i int) error {
		k := ks[i]
		sp, res, a, err := r.Speedup(k, Variant{Cores: 4}, nil)
		if err != nil {
			return err
		}
		rows[i] = Table3Row{
			Name:    k.Name,
			Fibers:  a.Report.InitialFibers,
			Deps:    a.Report.DataDeps,
			Balance: a.Report.LoadBalance,
			CommOps: a.Report.CommOps,
			Queues:  res.PairsUsed,
			Speedup: sp,

			PaperFibers:  k.PaperFibers,
			PaperDeps:    k.PaperDeps,
			PaperBalance: k.PaperBalance,
			PaperCommOps: k.PaperCommOps,
			PaperQueues:  k.PaperQueues,
			PaperSpeedup: k.PaperSpeedup,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable3 renders the per-kernel statistics, ours against the paper's.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table III: per-kernel statistics at 4 cores (ours / paper)\n")
	sb.WriteString(fmt.Sprintf("%-10s %11s %11s %13s %9s %7s %13s\n",
		"kernel", "fibers", "deps", "balance", "comm", "queues", "speedup"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %4d /%4d  %4d /%4d  %5.2f /%5.1f  %3d /%3d %3d /%2d  %5.2f /%5.2f\n",
			r.Name, r.Fibers, r.PaperFibers, r.Deps, r.PaperDeps,
			r.Balance, r.PaperBalance, r.CommOps, r.PaperCommOps,
			r.Queues, r.PaperQueues, r.Speedup, r.PaperSpeedup))
	}
	return sb.String()
}
