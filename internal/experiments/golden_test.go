package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"fgp/internal/kernels"
)

var update = flag.Bool("update", false, "rewrite the golden cycle table from the current simulator")

const goldenPath = "testdata/golden_cycles.json"

// goldenKey names one configuration of the golden table.
func goldenKey(kernel string, cores int, speculate bool) string {
	return fmt.Sprintf("%s/%dc/spec=%v", kernel, cores, speculate)
}

// goldenTable simulates every kernel at 2 and 4 cores with speculation off
// and on, and returns the cycle counts plus the sequential baselines.
func goldenTable(t *testing.T, r *Runner) map[string]int64 {
	t.Helper()
	got := map[string]int64{}
	for _, k := range kernels.All() {
		seq, err := r.SeqCycles(k)
		if err != nil {
			t.Fatalf("%s: sequential: %v", k.Name, err)
		}
		got[k.Name+"/seq"] = seq
		for _, cores := range []int{2, 4} {
			for _, spec := range []bool{false, true} {
				_, res, _, err := r.Speedup(k, Variant{Cores: cores, Speculate: spec}, nil)
				if err != nil {
					t.Fatalf("%s (%d cores, spec=%v): %v", k.Name, cores, spec, err)
				}
				got[goldenKey(k.Name, cores, spec)] = res.Cycles
			}
		}
	}
	return got
}

// TestGoldenCycles pins the simulated cycle count of every kernel at 2 and
// 4 cores, with and without control-flow speculation, plus the sequential
// baselines — 18 kernels x 5 configurations. Any change to the compiler or
// either simulator engine that shifts simulated behavior fails this test;
// host-speed work must leave the table bit-identical. Regenerate after an
// intentional model change with:
//
//	go test ./internal/experiments -run TestGoldenCycles -update
func TestGoldenCycles(t *testing.T) {
	got := goldenTable(t, NewRunner())

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden table (run with -update to create it): %v", err)
	}
	want := map[string]int64{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}

	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: missing from current run", k)
		} else if g != want[k] {
			t.Errorf("%s: got %d cycles, golden table has %d", k, g, want[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: not in golden table (regenerate with -update)", k)
		}
	}
}

// TestGoldenCyclesReference runs the same table on the reference engine:
// the golden file pins both engines to one shared truth.
func TestGoldenCyclesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("reference engine table is slow; skipped in -short mode")
	}
	r := NewRunner()
	r.SetReference(true)
	got := goldenTable(t, r)

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden table (run with -update to create it): %v", err)
	}
	want := map[string]int64{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(got) != len(want) {
		t.Errorf("table size mismatch: got %d entries, want %d", len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; ok && g != w {
			t.Errorf("%s: reference engine got %d cycles, golden table has %d", k, g, w)
		}
	}
}
