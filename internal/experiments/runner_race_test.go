package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"fgp/internal/kernels"
)

// TestRunnerConcurrentArtifact hammers the singleflight artifact cache from
// many goroutines requesting overlapping (kernel, variant) pairs. Run under
// `go test -race`, this is the concurrency-safety check for the parallel
// sweep machinery; functionally it asserts every requester of a given key
// observes the same artifact pointer (compiled exactly once).
func TestRunnerConcurrentArtifact(t *testing.T) {
	r := NewRunner()
	ks := kernels.All()[:6]
	variants := []Variant{{Cores: 2}, {Cores: 4}, {Cores: 4, Speculate: true}}

	type key struct {
		kernel  string
		variant int
	}
	var mu sync.Mutex
	seen := map[key]any{}

	var wg sync.WaitGroup
	for rep := 0; rep < 4; rep++ {
		for ki := range ks {
			for vi := range variants {
				wg.Add(1)
				go func(ki, vi int) {
					defer wg.Done()
					a, err := r.Artifact(ks[ki], variants[vi])
					if err != nil {
						t.Errorf("%s: %v", ks[ki].Name, err)
						return
					}
					mu.Lock()
					defer mu.Unlock()
					k := key{ks[ki].Name, vi}
					if prev, ok := seen[k]; ok && prev != any(a) {
						t.Errorf("%s variant %d: got two distinct artifacts", ks[ki].Name, vi)
					}
					seen[k] = a
				}(ki, vi)
			}
		}
	}
	wg.Wait()
}

// TestRunnerParallelMatchesSerial runs the Fig 12 sweep once on a single
// worker and once on a saturated pool and requires identical rows: worker
// count must never leak into simulated results.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	serial := NewRunner()
	serial.SetWorkers(1)
	want, err := Fig12(serial)
	if err != nil {
		t.Fatal(err)
	}

	parallel := NewRunner()
	parallel.SetWorkers(2 * runtime.GOMAXPROCS(0))
	got, err := Fig12(parallel)
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("row count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRunnerReferenceMatchesBurst runs the Fig 12 sweep on both simulator
// engines through the Runner API and requires identical rows.
func TestRunnerReferenceMatchesBurst(t *testing.T) {
	burst := NewRunner()
	got, err := Fig12(burst)
	if err != nil {
		t.Fatal(err)
	}

	ref := NewRunner()
	ref.SetReference(true)
	want, err := Fig12(ref)
	if err != nil {
		t.Fatal(err)
	}

	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: burst %+v, reference %+v", i, got[i], want[i])
		}
	}
}

// TestParallelEach pins the helper's contract: full coverage of [0, n),
// deterministic lowest-index error selection, and the serial degenerate
// case.
func TestParallelEach(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 100
		hits := make([]int32, n)
		var mu sync.Mutex
		err := ParallelEach(n, workers, func(i int) error {
			mu.Lock()
			hits[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}

	wantErr := errFor(7)
	for _, workers := range []int{1, 4} {
		err := ParallelEach(20, workers, func(i int) error {
			if i == 7 || i == 13 {
				return errFor(i)
			}
			return nil
		})
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: got error %v, want %v", workers, err, wantErr)
		}
	}

	if err := ParallelEach(0, 4, func(int) error { panic("called") }); err != nil {
		t.Fatal(err)
	}
}

type indexError int

func (e indexError) Error() string { return fmt.Sprintf("item %d failed", int(e)) }

func errFor(i int) error { return indexError(i) }
