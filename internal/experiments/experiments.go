// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): Fig 12 (per-kernel speedups on 2 and 4 cores),
// Table I (kernel inventory), Table II (whole-application expected
// speedups), Table III (per-kernel compiler statistics), Fig 13 (queue
// transfer-latency sensitivity), Fig 14 (control-flow speculation), the
// Section III-B throughput-heuristic ablation, and two extension sweeps
// (queue length, multi-pair merging).
//
// Experiments fan kernel×variant compilations and simulations out across a
// bounded worker pool (see ParallelEach); the Runner's artifact cache is
// sharded and deduplicates concurrent compilations of the same variant, so
// every artifact is compiled exactly once no matter how many experiments
// request it at the same time.
package experiments

import (
	"fmt"
	"hash/fnv"
	"sync"

	"fgp/internal/core"
	"fgp/internal/kernels"
	"fgp/internal/profile"
	"fgp/internal/sim"
)

// artShards bounds lock contention when many workers consult the artifact
// cache at once. Lookups hash the kernel name, so variants of one kernel
// share a shard but different kernels spread across all of them.
const artShards = 16

// Runner caches compiled artifacts and sequential baselines across
// experiments so regenerating the full evaluation stays fast. It is safe
// for concurrent use: each cache entry is filled exactly once
// (singleflight), with concurrent requesters blocking on the first
// compilation instead of duplicating it.
type Runner struct {
	workers int
	engine  string // sim engine for every simulation; "" = the burst default

	shards [artShards]artShard
	seqMu  sync.Mutex
	seq    map[string]*seqEntry
	profMu sync.Mutex
	profs  map[profKey]*profEntry
}

type artShard struct {
	mu sync.Mutex
	m  map[artKey]*artEntry
}

// artEntry is a singleflight cell: the first goroutine to reach it compiles
// the artifact inside once.Do while later arrivals block until it is done.
type artEntry struct {
	once sync.Once
	a    *core.Artifact
	err  error
}

type seqEntry struct {
	once sync.Once
	cy   int64
	err  error
}

// profKey identifies a profiling measurement: everything that can change
// the profiled load latencies — the pre-lowering IR transformations and any
// machine override — but not the target core count (the profiling machine
// always has one core), so 2- and 4-core compilations of one variant share
// a single profiling simulation.
type profKey struct {
	kernel    string
	speculate bool
	normalize int
	queueLen  int
}

type profEntry struct {
	once sync.Once
	p    profile.Profile
	err  error
}

type artKey struct {
	kernel       string
	cores        int
	speculate    bool
	throughput   bool
	multiPair    bool
	schedule     bool
	queueLen     int
	normalize    int
	partitioner  string
	searchBudget int
	searchSeed   int64
}

func (k artKey) shard() int {
	h := fnv.New32a()
	h.Write([]byte(k.kernel))
	return int(h.Sum32() % artShards)
}

// NewRunner returns an empty cache. By default experiments use one worker
// per available CPU; see SetWorkers.
func NewRunner() *Runner {
	r := &Runner{seq: map[string]*seqEntry{}, profs: map[profKey]*profEntry{}}
	for i := range r.shards {
		r.shards[i].m = map[artKey]*artEntry{}
	}
	return r
}

// SetWorkers bounds the worker pool used by the experiment sweeps: n > 0
// uses exactly n workers (1 = fully serial), n <= 0 restores the default of
// one worker per available CPU. Call before launching experiments, not
// concurrently with them.
func (r *Runner) SetWorkers(n int) { r.workers = n }

// SetEngine routes every simulation this runner launches — main runs,
// sequential baselines, and compile-time profiling runs — through the named
// sim engine ("" or sim.EngineBurst for the default, sim.EngineReference,
// sim.EngineThreaded). Results are bit-identical across engines; only host
// time changes. Call before launching experiments, not concurrently with
// them.
func (r *Runner) SetEngine(engine string) { r.engine = engine }

// SetReference forces every simulation this runner launches onto the
// retained per-instruction reference scheduler instead of the burst engine.
// Kept as a thin wrapper over SetEngine for existing callers.
func (r *Runner) SetReference(ref bool) {
	if ref {
		r.engine = sim.EngineReference
	} else {
		r.engine = ""
	}
}

// each runs f(0..n-1) on this runner's worker pool.
func (r *Runner) each(n int, f func(int) error) error {
	return ParallelEach(n, r.workers, f)
}

// Variant selects compiler options for an experiment.
type Variant struct {
	Cores      int
	Speculate  bool
	Throughput bool
	MultiPair  bool
	Schedule   bool
	// QueueLen overrides the hardware queue length (0 = paper default 20).
	// It is a compile-time property too: carried-token priming must fit.
	QueueLen int
	// NormalizeOps enables the Section III-A tree-splitting pre-pass with
	// the given statement size bound (0 = off).
	NormalizeOps int
	// Partitioner selects the partition selector ("" or "heuristic" for
	// the paper's greedy merge, "search" for the internal/search
	// refinement); SearchBudget and SearchSeed configure the latter and
	// are part of the artifact cache identity.
	Partitioner  string
	SearchBudget int
	SearchSeed   int64
}

func (v Variant) options() core.Options {
	opt := core.DefaultOptions(v.Cores)
	opt.Speculate = v.Speculate
	opt.Throughput = v.Throughput
	opt.MultiPair = v.MultiPair
	opt.Schedule = v.Schedule
	opt.NormalizeOps = v.NormalizeOps
	opt.Partitioner = v.Partitioner
	opt.SearchBudget = v.SearchBudget
	opt.SearchSeed = v.SearchSeed
	if v.QueueLen > 0 {
		cfg := sim.DefaultConfig(v.Cores)
		cfg.QueueLen = v.QueueLen
		opt.Machine = &cfg
	}
	return opt
}

// Artifact compiles (or returns the cached artifact for) one kernel
// variant. Concurrent calls for the same variant compile it once and share
// the result.
func (r *Runner) Artifact(k *kernels.Kernel, v Variant) (*core.Artifact, error) {
	key := artKey{k.Name, v.Cores, v.Speculate, v.Throughput, v.MultiPair, v.Schedule, v.QueueLen, v.NormalizeOps, v.Partitioner, v.SearchBudget, v.SearchSeed}
	sh := &r.shards[key.shard()]
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		e = &artEntry{}
		sh.m[key] = e
	}
	sh.mu.Unlock()
	e.once.Do(func() {
		opt := v.options()
		if r.engine == sim.EngineReference {
			// Route the compile-time profiling simulation through the
			// reference engine too, so a reference runner exercises no burst
			// code at all (the honest baseline for host-speed comparisons —
			// the profile cache below is likewise bypassed, matching the one
			// profiling run per compilation of the original implementation).
			if opt.Machine == nil {
				cfg := sim.DefaultConfig(v.Cores)
				opt.Machine = &cfg
			}
			opt.Machine.Reference = true
			opt.Machine.Engine = sim.EngineReference
		} else if opt.UseProfile {
			p, err := r.profileFor(k, v)
			if err != nil {
				e.err = fmt.Errorf("experiments: %s (%d cores): %w", k.Name, v.Cores, err)
				return
			}
			opt.Profile = p
		}
		a, err := core.Compile(k.Build(), opt)
		if err != nil {
			e.err = fmt.Errorf("experiments: %s (%d cores): %w", k.Name, v.Cores, err)
			return
		}
		e.a = a
	})
	return e.a, e.err
}

// profileFor measures (or returns the cached) profile feedback for one
// kernel variant; all core counts of a variant share the measurement.
func (r *Runner) profileFor(k *kernels.Kernel, v Variant) (profile.Profile, error) {
	key := profKey{k.Name, v.Speculate, v.NormalizeOps, v.QueueLen}
	r.profMu.Lock()
	e, ok := r.profs[key]
	if !ok {
		e = &profEntry{}
		r.profs[key] = e
	}
	r.profMu.Unlock()
	e.once.Do(func() {
		opt := v.options()
		if r.engine != "" {
			// The profiling simulation runs on the runner's engine too, so a
			// threaded sweep exercises the threaded engine end to end.
			if opt.Machine == nil {
				cfg := sim.DefaultConfig(v.Cores)
				opt.Machine = &cfg
			}
			opt.Machine.Engine = r.engine
		}
		e.p, e.err = core.ComputeProfile(k.Build(), opt)
	})
	return e.p, e.err
}

// SeqCycles returns the sequential baseline cycle count for a kernel,
// compiling and simulating it at most once per runner.
func (r *Runner) SeqCycles(k *kernels.Kernel) (int64, error) {
	r.seqMu.Lock()
	e, ok := r.seq[k.Name]
	if !ok {
		e = &seqEntry{}
		r.seq[k.Name] = e
	}
	r.seqMu.Unlock()
	e.once.Do(func() {
		a, err := core.CompileSequential(k.Build())
		if err != nil {
			e.err = err
			return
		}
		cfg := a.MachineConfig()
		cfg.Engine = r.engine
		res, err := a.Run(cfg)
		if err != nil {
			e.err = err
			return
		}
		e.cy = res.Cycles
	})
	return e.cy, e.err
}

// Speedup runs a kernel variant (optionally overriding the machine config)
// and returns sequential-cycles / parallel-cycles plus the raw result.
func (r *Runner) Speedup(k *kernels.Kernel, v Variant, mod func(*sim.Config)) (float64, *sim.Result, *core.Artifact, error) {
	seq, err := r.SeqCycles(k)
	if err != nil {
		return 0, nil, nil, err
	}
	a, err := r.Artifact(k, v)
	if err != nil {
		return 0, nil, nil, err
	}
	cfg := a.MachineConfig()
	cfg.Engine = r.engine
	if mod != nil {
		mod(&cfg)
	}
	res, err := a.Run(cfg)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("experiments: run %s: %w", k.Name, err)
	}
	return float64(seq) / float64(res.Cycles), res, a, nil
}
