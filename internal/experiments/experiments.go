// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): Fig 12 (per-kernel speedups on 2 and 4 cores),
// Table I (kernel inventory), Table II (whole-application expected
// speedups), Table III (per-kernel compiler statistics), Fig 13 (queue
// transfer-latency sensitivity), Fig 14 (control-flow speculation), the
// Section III-B throughput-heuristic ablation, and two extension sweeps
// (queue length, multi-pair merging).
package experiments

import (
	"fmt"
	"sync"

	"fgp/internal/core"
	"fgp/internal/kernels"
	"fgp/internal/sim"
)

// Runner caches compiled artifacts and sequential baselines across
// experiments so regenerating the full evaluation stays fast.
type Runner struct {
	mu    sync.Mutex
	arts  map[artKey]*core.Artifact
	seqCy map[string]int64
	errs  map[artKey]error
}

type artKey struct {
	kernel     string
	cores      int
	speculate  bool
	throughput bool
	multiPair  bool
	schedule   bool
	queueLen   int
	normalize  int
}

// NewRunner returns an empty cache.
func NewRunner() *Runner {
	return &Runner{
		arts:  map[artKey]*core.Artifact{},
		seqCy: map[string]int64{},
		errs:  map[artKey]error{},
	}
}

// Variant selects compiler options for an experiment.
type Variant struct {
	Cores      int
	Speculate  bool
	Throughput bool
	MultiPair  bool
	Schedule   bool
	// QueueLen overrides the hardware queue length (0 = paper default 20).
	// It is a compile-time property too: carried-token priming must fit.
	QueueLen int
	// NormalizeOps enables the Section III-A tree-splitting pre-pass with
	// the given statement size bound (0 = off).
	NormalizeOps int
}

func (v Variant) options() core.Options {
	opt := core.DefaultOptions(v.Cores)
	opt.Speculate = v.Speculate
	opt.Throughput = v.Throughput
	opt.MultiPair = v.MultiPair
	opt.Schedule = v.Schedule
	opt.NormalizeOps = v.NormalizeOps
	if v.QueueLen > 0 {
		cfg := sim.DefaultConfig(v.Cores)
		cfg.QueueLen = v.QueueLen
		opt.Machine = &cfg
	}
	return opt
}

// Artifact compiles (or returns the cached artifact for) one kernel
// variant.
func (r *Runner) Artifact(k *kernels.Kernel, v Variant) (*core.Artifact, error) {
	key := artKey{k.Name, v.Cores, v.Speculate, v.Throughput, v.MultiPair, v.Schedule, v.QueueLen, v.NormalizeOps}
	r.mu.Lock()
	defer r.mu.Unlock()
	if a, ok := r.arts[key]; ok {
		return a, nil
	}
	if err, ok := r.errs[key]; ok {
		return nil, err
	}
	a, err := core.Compile(k.Build(), v.options())
	if err != nil {
		err = fmt.Errorf("experiments: %s (%d cores): %w", k.Name, v.Cores, err)
		r.errs[key] = err
		return nil, err
	}
	r.arts[key] = a
	return a, nil
}

// SeqCycles returns the sequential baseline cycle count for a kernel.
func (r *Runner) SeqCycles(k *kernels.Kernel) (int64, error) {
	r.mu.Lock()
	if cy, ok := r.seqCy[k.Name]; ok {
		r.mu.Unlock()
		return cy, nil
	}
	r.mu.Unlock()
	a, err := core.CompileSequential(k.Build())
	if err != nil {
		return 0, err
	}
	res, err := a.RunDefault()
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.seqCy[k.Name] = res.Cycles
	r.mu.Unlock()
	return res.Cycles, nil
}

// Speedup runs a kernel variant (optionally overriding the machine config)
// and returns sequential-cycles / parallel-cycles plus the raw result.
func (r *Runner) Speedup(k *kernels.Kernel, v Variant, mod func(*sim.Config)) (float64, *sim.Result, *core.Artifact, error) {
	seq, err := r.SeqCycles(k)
	if err != nil {
		return 0, nil, nil, err
	}
	a, err := r.Artifact(k, v)
	if err != nil {
		return 0, nil, nil, err
	}
	cfg := a.MachineConfig()
	if mod != nil {
		mod(&cfg)
	}
	res, err := a.Run(cfg)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("experiments: run %s: %w", k.Name, err)
	}
	return float64(seq) / float64(res.Cycles), res, a, nil
}
