package speculate

import (
	"testing"

	"fgp/internal/interp"
	"fgp/internal/ir"
)

// equivalent runs both loops on the interpreter and compares every array
// bit-for-bit.
func equivalent(t *testing.T, a, b *ir.Loop) {
	t.Helper()
	ra, err := interp.Run(a)
	if err != nil {
		t.Fatalf("original: %v", err)
	}
	rb, err := interp.Run(b)
	if err != nil {
		t.Fatalf("speculated: %v", err)
	}
	for name, av := range ra.ArraysF {
		bv := rb.ArraysF[name]
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("array %s differs at %d: %v vs %v", name, i, av[i], bv[i])
			}
		}
	}
	for name, av := range ra.ArraysI {
		bv := rb.ArraysI[name]
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("array %s differs at %d: %v vs %v", name, i, av[i], bv[i])
			}
		}
	}
}

func dataLoop(body func(b *ir.Builder)) *ir.Loop {
	b := ir.NewBuilder("spec", "i", 0, 32, 1)
	data := make([]float64, 32)
	for i := range data {
		data[i] = float64(i%7) - 3
	}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, 32))
	body(b)
	return b.MustBuild()
}

func TestSpeculatePureBranches(t *testing.T) {
	l := dataLoop(func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.SqrtE(ir.AbsE(ir.LDF("a", i))))
		}, func() {
			b.Def("v", ir.MulE(ir.LDF("a", i), ir.F(-0.5)))
		})
		b.StoreF("o", i, b.T("v"))
	})
	out, res := Apply(l)
	if res.Transformed != 1 || res.Candidates != 1 {
		t.Fatalf("transformed %d of %d candidates, want 1 of 1", res.Transformed, res.Candidates)
	}
	if err := ir.Validate(out); err != nil {
		t.Fatal(err)
	}
	equivalent(t, l, out)

	// The rewritten If must contain only selection moves.
	var iff *ir.If
	ir.WalkStmts(out.Body, func(s ir.Stmt) {
		if x, ok := s.(*ir.If); ok {
			iff = x
		}
	})
	if iff == nil {
		t.Fatal("speculated loop lost its If")
	}
	for _, s := range append(append([]ir.Stmt{}, iff.Then...), iff.Else...) {
		a, ok := s.(*ir.Assign)
		if !ok {
			t.Fatalf("branch contains %T", s)
		}
		if _, isTemp := a.X.(ir.Temp); !isTemp {
			t.Errorf("branch statement %v is not a selection move", a)
		}
	}
}

func TestSpeculateSkipsStores(t *testing.T) {
	l := dataLoop(func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.StoreF("o", i, ir.F(1))
		}, func() {
			b.StoreF("o", i, ir.F(2))
		})
	})
	_, res := Apply(l)
	if res.Transformed != 0 {
		t.Error("branches with stores must not be speculated")
	}
}

func TestSpeculateSkipsIntegerDivision(t *testing.T) {
	b := ir.NewBuilder("spec", "i", 0, 16, 1)
	b.ArrayI("p", []int64{1, 2, 0, 4, 1, 2, 0, 4, 1, 2, 0, 4, 1, 2, 0, 4})
	b.ArrayI("o", make([]int64, 16))
	i := b.Idx()
	d := b.Def("d", ir.LDI("p", i))
	c := b.Def("c", ir.NeE(d, ir.I(0)))
	b.If(c, func() {
		b.Def("v", ir.DivE(ir.I(100), b.T("d")))
	}, func() {
		b.Def("v", ir.I(0))
	})
	b.StoreI("o", i, b.T("v"))
	l := b.MustBuild()
	out, res := Apply(l)
	if res.Transformed != 0 {
		t.Fatal("a guarded integer division must not be hoisted")
	}
	equivalent(t, l, out)
}

func TestSpeculateSkipsAccumulators(t *testing.T) {
	b := ir.NewBuilder("spec", "i", 0, 16, 1)
	b.ArrayF("a", make([]float64, 16))
	acc := b.ScalarF("acc", 0)
	_ = acc
	b.LiveOut("acc")
	i := b.Idx()
	c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
	b.If(c, func() {
		b.Def("acc", ir.AddE(b.T("acc"), ir.F(1)))
	}, func() {
		b.Def("acc", ir.SubE(b.T("acc"), ir.F(1)))
	})
	l := b.MustBuild()
	_, res := Apply(l)
	if res.Transformed != 0 {
		t.Error("recurrence updates must not be speculated")
	}
}

func TestSpeculateSkipsNestedIf(t *testing.T) {
	l := dataLoop(func(b *ir.Builder) {
		i := b.Idx()
		c1 := b.Def("c1", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c1, func() {
			c2 := b.Def("c2", ir.LtE(ir.LDF("a", i), ir.F(2)))
			b.If(c2, func() {
				b.Def("v", ir.F(1))
			}, func() {
				b.Def("v", ir.F(2))
			})
		}, func() {
			b.Def("v", ir.F(3))
		})
		b.StoreF("o", i, b.T("v"))
	})
	out, res := Apply(l)
	// The inner if is speculable; the outer (containing an If after the
	// rewrite) is not.
	if res.Transformed != 1 {
		t.Errorf("transformed = %d, want 1 (inner only)", res.Transformed)
	}
	if res.Candidates != 2 {
		t.Errorf("candidates = %d, want 2", res.Candidates)
	}
	if err := ir.Validate(out); err != nil {
		t.Fatal(err)
	}
	equivalent(t, l, out)
}

func TestSpeculateSelfReference(t *testing.T) {
	// v = v + 1 inside a branch where v is defined before the if: the use
	// refers to the outer value and must not be captured by the rename.
	l := dataLoop(func(b *ir.Builder) {
		i := b.Idx()
		b.Def("v", ir.LDF("a", i))
		c := b.Def("c", ir.GtE(b.T("v"), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.AddE(b.T("v"), ir.F(1)))
		}, func() {
			b.Def("v", ir.SubE(b.T("v"), ir.F(1)))
		})
		b.StoreF("o", i, b.T("v"))
	})
	out, res := Apply(l)
	if res.Transformed != 1 {
		t.Fatalf("transformed = %d, want 1", res.Transformed)
	}
	if err := ir.Validate(out); err != nil {
		t.Fatal(err)
	}
	equivalent(t, l, out)
}

func TestSpeculateMultipleDefsInBranch(t *testing.T) {
	l := dataLoop(func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("x", ir.MulE(ir.LDF("a", i), ir.F(2)))
			b.Def("x", ir.AddE(b.T("x"), ir.F(1))) // redefinition within branch
			b.Def("y", ir.MulE(b.T("x"), ir.F(3)))
		}, func() {
			b.Def("x", ir.F(0))
			b.Def("y", ir.F(0))
		})
		b.StoreF("o", i, ir.AddE(b.T("x"), b.T("y")))
	})
	out, res := Apply(l)
	if res.Transformed != 1 {
		t.Fatalf("transformed = %d, want 1", res.Transformed)
	}
	if err := ir.Validate(out); err != nil {
		t.Fatal(err)
	}
	equivalent(t, l, out)
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	l := dataLoop(func(b *ir.Builder) {
		i := b.Idx()
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.F(1))
		}, func() {
			b.Def("v", ir.F(2))
		})
		b.StoreF("o", i, b.T("v"))
	})
	before := len(l.Body)
	Apply(l)
	if len(l.Body) != before {
		t.Error("Apply mutated the input loop")
	}
}

func TestEmptyElseBranch(t *testing.T) {
	l := dataLoop(func(b *ir.Builder) {
		i := b.Idx()
		b.Def("v", ir.F(0))
		c := b.Def("c", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(c, func() {
			b.Def("v", ir.SqrtE(ir.AbsE(ir.LDF("a", i))))
		}, nil)
		b.StoreF("o", i, b.T("v"))
	})
	out, res := Apply(l)
	if res.Transformed != 1 {
		t.Fatalf("transformed = %d, want 1", res.Transformed)
	}
	if err := ir.Validate(out); err != nil {
		t.Fatal(err)
	}
	equivalent(t, l, out)
}
