package speculate

import (
	"math"
	"testing"

	"fgp/internal/interp"
	"fgp/internal/ir"
)

// TestDiscardWrongPathPoison pins the misspeculation-discard semantics: both
// branch bodies execute ahead of the condition, so the wrong path really is
// evaluated — its result must be discarded by the selection moves without
// ever contaminating outputs. The wrong path here computes log of a negative
// number (NaN) and a huge overflow product, the nastiest values a discarded
// computation can produce.
func TestDiscardWrongPathPoison(t *testing.T) {
	b := ir.NewBuilder("poison", "i", 0, 16, 1)
	data := make([]float64, 16)
	for i := range data {
		data[i] = float64(i%4) - 1.5 // mix of negative and positive
	}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, 16))
	i := b.Idx()
	cnd := b.Def("cnd", ir.GtE(ir.LDF("a", i), ir.F(0)))
	b.If(cnd, func() {
		// Taken only for positive a[i]: log is well-defined.
		b.Def("v", ir.LogE(ir.LDF("a", i)))
	}, func() {
		// Taken only for non-positive a[i]; when NOT taken this computes
		// log(negative) = NaN and an overflowing product.
		b.Def("v", ir.AddE(ir.LogE(ir.LDF("a", i)), ir.MulE(ir.F(1e300), ir.F(1e300))))
	})
	b.StoreF("o", i, b.T("v"))
	l := b.MustBuild()

	spec, res := Apply(l)
	if res.Transformed != 1 {
		t.Fatalf("expected the conditional to speculate, got %+v", res)
	}

	ro, err := interp.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := interp.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ro.ArraysF["o"] {
		want, got := ro.ArraysF["o"][i], rs.ArraysF["o"][i]
		if math.Float64bits(want) != math.Float64bits(got) &&
			!(math.IsNaN(want) && math.IsNaN(got)) {
			t.Fatalf("o[%d] = %v, want %v (wrong-path value leaked)", i, got, want)
		}
	}
}

// TestDiscardStructure pins the rewrite shape the discard semantics rely
// on: every speculated branch statement is hoisted above the conditional
// into a renamed temporary, and the residual branches contain nothing but
// selection moves (temp = renamed-temp). If real work stayed inside the
// branches, "both paths execute ahead" would be false; if a hoisted
// statement kept its original name, the wrong path would clobber the right
// one instead of being discarded.
func TestDiscardStructure(t *testing.T) {
	l := dataLoop(func(b *ir.Builder) {
		i := b.Idx()
		cnd := b.Def("cnd", ir.GtE(ir.LDF("a", i), ir.F(0)))
		b.If(cnd, func() {
			b.Def("u", ir.MulE(ir.LDF("a", i), ir.F(2)))
			b.Def("v", ir.AddE(b.T("u"), ir.F(1)))
		}, func() {
			b.Def("v", ir.NegE(ir.LDF("a", i)))
		})
		b.StoreF("o", i, b.T("v"))
	})
	spec, res := Apply(l)
	if res.Transformed != 1 {
		t.Fatalf("expected 1 transform, got %+v", res)
	}

	var iff *ir.If
	hoistedDefs := map[string]bool{}
	for _, st := range spec.Body {
		switch x := st.(type) {
		case *ir.If:
			if iff != nil {
				t.Fatal("more than one conditional survived speculation")
			}
			iff = x
		case *ir.Assign:
			if d, ok := x.Dest.(ir.TempDest); ok {
				hoistedDefs[d.Name] = true
			}
		}
	}
	if iff == nil {
		t.Fatal("conditional disappeared entirely")
	}
	// Three speculative temps must be hoisted: u and v from then, v from else.
	renamed := 0
	for name := range hoistedDefs {
		if len(name) > 1 && name != "cnd" {
			renamed++
		}
	}
	if renamed < 3 {
		t.Fatalf("expected >= 3 hoisted speculative defs, got %v", hoistedDefs)
	}
	// Residual branches: only selection moves of the original names.
	for _, branch := range [][]ir.Stmt{iff.Then, iff.Else} {
		for _, st := range branch {
			a, ok := st.(*ir.Assign)
			if !ok {
				t.Fatalf("non-assign survived in branch: %T", st)
			}
			if _, ok := a.X.(ir.Temp); !ok {
				t.Fatalf("branch statement is not a selection move: %v", ir.Print(spec))
			}
		}
	}
	equivalent(t, l, spec)
}

// TestDiscardAlternatingPaths drives the selection through both branches on
// interleaved iterations, with each branch reading the value the other
// branch's previous selection produced via memory — any stale speculative
// temp surviving a discarded path shows up as a wrong array value.
func TestDiscardAlternatingPaths(t *testing.T) {
	b := ir.NewBuilder("alt", "i", 1, 24, 1)
	data := make([]float64, 24)
	for i := range data {
		data[i] = float64(i)*0.25 - 2
	}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, 24))
	i := b.Idx()
	cnd := b.Def("cnd", ir.GtE(ir.LDF("a", i), ir.F(0)))
	b.If(cnd, func() {
		b.Def("w", ir.AddE(ir.LDF("o", ir.SubE(i, ir.I(1))), ir.LDF("a", i)))
	}, func() {
		b.Def("w", ir.SubE(ir.LDF("o", ir.SubE(i, ir.I(1))), ir.F(1)))
	})
	b.StoreF("o", i, b.T("w"))
	l := b.MustBuild()

	spec, res := Apply(l)
	if res.Transformed != 1 {
		t.Fatalf("expected 1 transform, got %+v", res)
	}
	equivalent(t, l, spec)
}
