// Package speculate implements the paper's limited control-flow speculation
// (Section III-H, Fig 10): if-then-else statements whose branch bodies are
// side-effect free are rewritten so both bodies execute ahead of time,
// before the condition value is known, into renamed temporaries; the
// branches reduce to cheap selection moves. Because nothing speculated
// writes memory, no rollback is ever needed — the property the paper relies
// on to keep every enqueue statically paired with its dequeue.
//
// After this rewrite the fiber partitioner naturally places the two
// (now unconditional) computations on different cores, where they run
// concurrently with the condition evaluation.
package speculate

import (
	"fmt"

	"fgp/internal/ir"
)

// Result reports what the pass did.
type Result struct {
	// Transformed counts if-statements rewritten.
	Transformed int
	// Candidates counts if-statements inspected (all ifs in the body).
	Candidates int
}

// Apply returns a copy of the loop with eligible conditionals speculated.
// The input loop is not modified.
func Apply(l *ir.Loop) (*ir.Loop, Result) {
	out := l.Clone()
	s := &speculator{carried: map[string]bool{}}
	// Scalar parameters redefined by the body are recurrences (reduction
	// accumulators); speculating their updates serializes extra work onto
	// the recurrence chain, so they are never eligible.
	for _, sc := range l.Scalars {
		s.carried[sc.Name] = true
	}
	out.Body = s.rewrite(out.Body)
	return out, s.res
}

type speculator struct {
	res     Result
	fresh   int
	carried map[string]bool
}

func (s *speculator) rewrite(stmts []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, st := range stmts {
		iff, ok := st.(*ir.If)
		if !ok {
			out = append(out, st)
			continue
		}
		// Transform inner conditionals first; an if whose branches contain
		// only speculable inner ifs is still not eligible itself (the inner
		// rewrite leaves an If for the selects), matching the paper's
		// restriction to simple branch bodies.
		iff.Then = s.rewrite(iff.Then)
		iff.Else = s.rewrite(iff.Else)
		s.res.Candidates++

		hoisted, newIf, ok := s.speculateIf(iff)
		if !ok {
			out = append(out, iff)
			continue
		}
		s.res.Transformed++
		out = append(out, hoisted...)
		out = append(out, newIf)
	}
	return out
}

// speculateIf attempts the rewrite for one conditional. It succeeds only
// when every statement of both branches assigns to a temporary (no stores,
// no nested control flow) and no branch temp is read before it is written
// within its branch.
func (s *speculator) speculateIf(iff *ir.If) (hoisted []ir.Stmt, repl ir.Stmt, ok bool) {
	thenRen, ok := s.renameBranch(iff.Then, "t")
	if !ok {
		return nil, nil, false
	}
	elseRen, ok := s.renameBranch(iff.Else, "e")
	if !ok {
		return nil, nil, false
	}
	if len(thenRen.stmts) == 0 && len(elseRen.stmts) == 0 {
		return nil, nil, false
	}
	hoisted = append(hoisted, thenRen.stmts...)
	hoisted = append(hoisted, elseRen.stmts...)
	repl = &ir.If{
		Src:  iff.Src,
		Cond: iff.Cond,
		Then: thenRen.selects,
		Else: elseRen.selects,
	}
	return hoisted, repl, true
}

type renamed struct {
	stmts   []ir.Stmt // hoisted, with defined temps renamed
	selects []ir.Stmt // name = renamed-name moves left in the branch
}

func (s *speculator) renameBranch(body []ir.Stmt, tag string) (renamed, bool) {
	var r renamed
	ren := map[string]string{} // original temp -> speculative temp
	order := []string{}
	for _, st := range body {
		a, ok := st.(*ir.Assign)
		if !ok {
			return r, false // nested control flow
		}
		d, ok := a.Dest.(ir.TempDest)
		if !ok {
			return r, false // store: a side effect, not speculable
		}
		if s.carried[d.Name] {
			return r, false // recurrence update: speculation adds serial work
		}
		if faultable(a.X) {
			return r, false // executing ahead of time could trap
		}
		// Uses see prior renames; a use of a temp defined later in this
		// branch would be a loop-carried read, which renaming would break.
		nx, bad := renameExpr(a.X, ren, d.Name)
		if bad {
			return r, false
		}
		if _, seen := ren[d.Name]; !seen {
			s.fresh++
			ren[d.Name] = fmt.Sprintf("%s#%s%d", d.Name, tag, s.fresh)
			order = append(order, d.Name)
		}
		r.stmts = append(r.stmts, &ir.Assign{
			Src:  a.Src,
			Dest: ir.TempDest{Name: ren[d.Name], K: d.K},
			X:    nx,
		})
	}
	for _, name := range order {
		k := tempKind(body, name)
		r.selects = append(r.selects, &ir.Assign{
			Src:  body[len(body)-1].Line(),
			Dest: ir.TempDest{Name: name, K: k},
			X:    ir.Temp{Name: ren[name], K: k},
		})
	}
	return r, true
}

// renameExpr substitutes renamed temps. bad is true when the expression
// reads the temp currently being defined before its in-branch rename exists
// AND it is not an outer value — that case is a self-reference (x = x + 1)
// whose outer value the rename would capture incorrectly only if x was
// already renamed; reading the outer value is fine.
func renameExpr(e ir.Expr, ren map[string]string, _ string) (ir.Expr, bool) {
	switch n := e.(type) {
	case ir.ConstF, ir.ConstI:
		return e, false
	case ir.Temp:
		if nn, ok := ren[n.Name]; ok {
			return ir.Temp{Name: nn, K: n.K}, false
		}
		return e, false
	case *ir.Load:
		idx, bad := renameExpr(n.Index, ren, "")
		if bad {
			return nil, true
		}
		return &ir.Load{Array: n.Array, K: n.K, Index: idx}, false
	case *ir.Bin:
		l, bad := renameExpr(n.L, ren, "")
		if bad {
			return nil, true
		}
		rr, bad := renameExpr(n.R, ren, "")
		if bad {
			return nil, true
		}
		return &ir.Bin{Op: n.Op, L: l, R: rr}, false
	case *ir.Un:
		x, bad := renameExpr(n.X, ren, "")
		if bad {
			return nil, true
		}
		return &ir.Un{Op: n.Op, X: x}, false
	}
	return nil, true
}

// faultable reports whether evaluating the expression unconditionally could
// trap: integer division/remainder (divide-by-zero) disqualifies a branch
// from speculation. Loads are treated as safe non-faulting accesses, the
// usual assumption for compiler-controlled speculation of code whose
// indices stay in bounds on both paths; kernels honoring the paper's
// patterns satisfy this.
func faultable(e ir.Expr) bool {
	bad := false
	ir.WalkExpr(e, func(n ir.Expr) {
		if b, ok := n.(*ir.Bin); ok {
			if (b.Op == ir.Div || b.Op == ir.Rem) && b.L.Kind() == ir.I64 {
				bad = true
			}
		}
	})
	return bad
}

func tempKind(body []ir.Stmt, name string) ir.Kind {
	for _, st := range body {
		if a, ok := st.(*ir.Assign); ok {
			if d, ok := a.Dest.(ir.TempDest); ok && d.Name == name {
				return d.K
			}
		}
	}
	return ir.F64
}
