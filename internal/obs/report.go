// The stall-attribution report: one simulation's cycles decomposed per
// core by cause, queue occupancy telemetry, and the load-imbalance index —
// the analysis the paper runs behind Figures 13–16 to explain every
// speedup or slowdown as communication overhead, queue stalls, or load
// imbalance across the partitioned fibers.

package obs

import (
	"fmt"
	"strings"
)

// CoreReport decomposes one core's cycles.
type CoreReport struct {
	Core   int
	Cycles int64 // this core's final local time
	Instrs int64 // retired instructions
	Busy   int64 // Cycles minus all attributed stalls
	Stalls [NumCauses]int64
}

// Util returns the fraction of this core's cycles spent busy.
func (c *CoreReport) Util() float64 {
	if c.Cycles <= 0 {
		return 0
	}
	return float64(c.Busy) / float64(c.Cycles)
}

// OccSample is one point of a queue's occupancy time series.
type OccSample struct {
	Time int64
	Occ  int32
}

// QueueReport summarizes one queue's telemetry.
type QueueReport struct {
	QueueMeta
	Transfers int64
	HighWater int32
	// AvgOcc is the time-weighted mean occupancy over the whole run.
	AvgOcc float64
	// Series is the full occupancy time series (one sample per enqueue
	// and dequeue, occupancy after the operation).
	Series []OccSample
}

// Report is the full cycle attribution of one simulation.
type Report struct {
	Meta        Meta
	TotalCycles int64
	Cores       []CoreReport
	Queues      []QueueReport // only queues that carried traffic, by id
	// Imbalance is max(busy)/mean(busy) across all cores; 1.0 is a
	// perfectly balanced partitioning.
	Imbalance float64
}

// StallTotals sums each cause across cores. The queue-cause entries equal
// the simulator's aggregate EnqStalls/DeqStalls counters exactly (the
// fuzz oracle's metamorphic invariant).
func (r *Report) StallTotals() [NumCauses]int64 {
	var t [NumCauses]int64
	for i := range r.Cores {
		for c := 0; c < int(NumCauses); c++ {
			t[c] += r.Cores[i].Stalls[c]
		}
	}
	return t
}

// BuildReport computes the attribution from one recorded stream. Events
// must be in canonical order (as delivered to a Sink; Recorder streams
// qualify).
func BuildReport(meta Meta, events []Event) *Report {
	r := &Report{Meta: meta, Cores: make([]CoreReport, meta.Cores)}
	for i := range r.Cores {
		r.Cores[i].Core = i
	}
	type qacc struct {
		samples  []OccSample
		integral int64 // occupancy-cycles accumulated up to lastT
		lastT    int64
		lastOcc  int32
		hi       int32
		n        int64
	}
	qs := map[int32]*qacc{}
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KRetire:
			c := &r.Cores[e.Core]
			c.Instrs++
			if e.End > c.Cycles {
				c.Cycles = e.End
			}
		case KStallBegin:
			r.Cores[e.Core].Stalls[e.Cause] += e.End - e.Time
		case KEnq, KDeq:
			a := qs[e.Queue]
			if a == nil {
				a = &qacc{}
				qs[e.Queue] = a
			}
			a.integral += int64(a.lastOcc) * (e.Time - a.lastT)
			a.lastT = e.Time
			a.lastOcc = e.Occ
			if e.Occ > a.hi {
				a.hi = e.Occ
			}
			if e.Kind == KEnq {
				a.n++
			}
			a.samples = append(a.samples, OccSample{Time: e.Time, Occ: e.Occ})
		}
	}
	for i := range r.Cores {
		if r.Cores[i].Cycles > r.TotalCycles {
			r.TotalCycles = r.Cores[i].Cycles
		}
	}
	var busySum, busyMax int64
	for i := range r.Cores {
		c := &r.Cores[i]
		c.Busy = c.Cycles
		for _, s := range c.Stalls {
			c.Busy -= s
		}
		busySum += c.Busy
		if c.Busy > busyMax {
			busyMax = c.Busy
		}
	}
	r.Imbalance = 1.0
	if len(r.Cores) > 0 && busySum > 0 {
		r.Imbalance = float64(busyMax) * float64(len(r.Cores)) / float64(busySum)
	}
	for _, qm := range meta.Queues {
		a := qs[qm.ID]
		if a == nil {
			continue
		}
		a.integral += int64(a.lastOcc) * (r.TotalCycles - a.lastT)
		avg := 0.0
		if r.TotalCycles > 0 {
			avg = float64(a.integral) / float64(r.TotalCycles)
		}
		r.Queues = append(r.Queues, QueueReport{
			QueueMeta: qm, Transfers: a.n, HighWater: a.hi,
			AvgOcc: avg, Series: a.samples,
		})
	}
	return r
}

// Format renders the report as the text table the CLIs print and the
// golden-report test pins.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "stall attribution — %d cores, %d cycles, imbalance %.2f (max/mean busy)\n",
		r.Meta.Cores, r.TotalCycles, r.Imbalance)
	fmt.Fprintf(&sb, "%4s %10s %10s %10s %10s %10s %10s %6s\n",
		"core", "cycles", "busy", "deq-empty", "enq-full", "l1-miss", "mem-port", "util%")
	for i := range r.Cores {
		c := &r.Cores[i]
		fmt.Fprintf(&sb, "%4d %10d %10d %10d %10d %10d %10d %6.1f\n",
			c.Core, c.Cycles, c.Busy,
			c.Stalls[CauseDeqEmpty], c.Stalls[CauseEnqFull],
			c.Stalls[CauseL1Miss], c.Stalls[CauseMemPort], 100*c.Util())
	}
	t := r.StallTotals()
	fmt.Fprintf(&sb, "totals: deq-empty %d  enq-full %d  l1-miss %d  mem-port %d\n",
		t[CauseDeqEmpty], t[CauseEnqFull], t[CauseL1Miss], t[CauseMemPort])
	if len(r.Queues) > 0 {
		fmt.Fprintf(&sb, "%-6s %8s %6s %10s %11s %8s\n",
			"queue", "src->dst", "class", "transfers", "high-water", "avg-occ")
		for i := range r.Queues {
			q := &r.Queues[i]
			fmt.Fprintf(&sb, "q%-5d %4d->%-3d %6s %10d %11d %8.2f\n",
				q.ID, q.Src, q.Dst, q.Class, q.Transfers, q.HighWater, q.AvgOcc)
		}
	}
	return sb.String()
}
