package obs

import (
	"bytes"
	"strings"
	"testing"
)

// synthetic is a small, hand-checkable two-core stream: core 0 enqueues
// twice into q3, core 1 dequeues twice (stalling on visibility first),
// and core 1 takes one L1 miss that waits at the memory port.
func synthetic() (Meta, []Event) {
	meta := Meta{
		Cores:           2,
		TransferLatency: 5,
		Queues:          []QueueMeta{{ID: 3, Src: 0, Dst: 1, Class: "f64", Cap: 4}},
		RegionNames:     map[int32]string{0: "iter"},
	}
	events := []Event{
		{Kind: KRegionEnter, Core: 0, Region: 0, Queue: -1, Time: 0, End: 0},
		{Kind: KRetire, Core: 0, Op: 2, PC: 0, Queue: -1, Time: 0, End: 1},
		{Kind: KEnq, Core: 0, Queue: 3, Occ: 1, Seq: 0, Time: 1, End: 1},
		{Kind: KRetire, Core: 0, Op: 8, PC: 1, Queue: -1, Time: 1, End: 2},
		{Kind: KStallBegin, Core: 1, Cause: CauseDeqEmpty, Queue: -1, Time: 0, End: 6},
		{Kind: KStallEnd, Core: 1, Cause: CauseDeqEmpty, Queue: -1, Time: 6, End: 6},
		{Kind: KDeq, Core: 1, Queue: 3, Occ: 0, Seq: 0, Time: 6, End: 6},
		{Kind: KRetire, Core: 1, Op: 9, PC: 0, Queue: -1, Time: 0, End: 7},
		{Kind: KEnq, Core: 0, Queue: 3, Occ: 1, Seq: 1, Time: 2, End: 2},
		{Kind: KRetire, Core: 0, Op: 8, PC: 2, Queue: -1, Time: 2, End: 3},
		{Kind: KRegionExit, Core: 0, Region: 0, Queue: -1, Time: 3, End: 3},
		{Kind: KRetire, Core: 0, Op: 13, PC: 3, Queue: -1, Time: 3, End: 3},
		{Kind: KStallBegin, Core: 1, Cause: CauseMemPort, Queue: -1, Time: 7, End: 9},
		{Kind: KStallEnd, Core: 1, Cause: CauseMemPort, Queue: -1, Time: 9, End: 9},
		{Kind: KStallBegin, Core: 1, Cause: CauseL1Miss, Queue: -1, Time: 10, End: 29},
		{Kind: KStallEnd, Core: 1, Cause: CauseL1Miss, Queue: -1, Time: 29, End: 29},
		{Kind: KRetire, Core: 1, Op: 6, PC: 1, Queue: -1, Time: 7, End: 29},
		{Kind: KDeq, Core: 1, Queue: 3, Occ: 0, Seq: 1, Time: 29, End: 29},
		{Kind: KRetire, Core: 1, Op: 9, PC: 2, Queue: -1, Time: 29, End: 30},
		{Kind: KRetire, Core: 1, Op: 13, PC: 3, Queue: -1, Time: 30, End: 30},
	}
	Canonicalize(events)
	return meta, events
}

func TestCanonicalizeOrdersByTimeThenCore(t *testing.T) {
	_, events := synthetic()
	for i := 1; i < len(events); i++ {
		a, b := &events[i-1], &events[i]
		if a.Time > b.Time || (a.Time == b.Time && a.Core > b.Core) {
			t.Fatalf("event %d out of canonical order: %+v before %+v", i, a, b)
		}
	}
}

func TestTextSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewText(&buf)
	if s.Mask() != MRetire {
		t.Fatalf("text sink mask = %v, want MRetire", s.Mask())
	}
	meta, events := synthetic()
	s.Begin(meta)
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	var retires int
	for _, e := range events {
		if e.Kind == KRetire {
			retires++
		}
	}
	if len(lines) != retires {
		t.Fatalf("got %d lines for %d retires:\n%s", len(lines), retires, buf.String())
	}
	if lines[0] != "t=0..1 core=0 pc=0 consti" {
		t.Errorf("first line = %q, want %q", lines[0], "t=0..1 core=0 pc=0 consti")
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "t=") || !strings.Contains(l, " core=") || !strings.Contains(l, " pc=") {
			t.Errorf("malformed trace line %q", l)
		}
	}
}

func TestSumStalls(t *testing.T) {
	_, events := synthetic()
	sums := SumStalls(events)
	if sums[CauseDeqEmpty] != 6 {
		t.Errorf("deq-empty = %d, want 6", sums[CauseDeqEmpty])
	}
	if sums[CauseMemPort] != 2 {
		t.Errorf("mem-port = %d, want 2", sums[CauseMemPort])
	}
	if sums[CauseL1Miss] != 19 {
		t.Errorf("l1-miss = %d, want 19", sums[CauseL1Miss])
	}
	if sums[CauseEnqFull] != 0 {
		t.Errorf("enq-full = %d, want 0", sums[CauseEnqFull])
	}
}

func TestBuildReport(t *testing.T) {
	meta, events := synthetic()
	r := BuildReport(meta, events)
	if r.TotalCycles != 30 {
		t.Errorf("TotalCycles = %d, want 30", r.TotalCycles)
	}
	if len(r.Cores) != 2 {
		t.Fatalf("got %d core reports, want 2", len(r.Cores))
	}
	c0, c1 := &r.Cores[0], &r.Cores[1]
	if c0.Cycles != 3 || c0.Instrs != 4 || c0.Busy != 3 {
		t.Errorf("core 0 = cycles %d instrs %d busy %d, want 3/4/3", c0.Cycles, c0.Instrs, c0.Busy)
	}
	// Core 1: 30 cycles minus 6 deq-empty, 2 mem-port, 19 l1-miss = 3 busy.
	if c1.Cycles != 30 || c1.Busy != 3 {
		t.Errorf("core 1 = cycles %d busy %d, want 30/3", c1.Cycles, c1.Busy)
	}
	// Both cores busy 3 => perfectly balanced.
	if r.Imbalance != 1.0 {
		t.Errorf("imbalance = %v, want 1.0", r.Imbalance)
	}
	if len(r.Queues) != 1 {
		t.Fatalf("got %d queue reports, want 1", len(r.Queues))
	}
	q := &r.Queues[0]
	if q.Transfers != 2 || q.HighWater != 1 {
		t.Errorf("queue = transfers %d high-water %d, want 2/1", q.Transfers, q.HighWater)
	}
	// Occupied [1,6) and [2? no: samples at t=1 occ1, t=2 occ1, t=6 occ0,
	// t=29 occ0] => integral = 1*(6-1) = 5 over 30 cycles.
	if want := 5.0 / 30.0; q.AvgOcc != want {
		t.Errorf("avg occupancy = %v, want %v", q.AvgOcc, want)
	}
	text := r.Format()
	for _, needle := range []string{
		"stall attribution — 2 cores, 30 cycles",
		"deq-empty", "enq-full", "l1-miss", "mem-port",
		"totals: deq-empty 6  enq-full 0  l1-miss 19  mem-port 2",
		"q3", "0->1",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("formatted report missing %q:\n%s", needle, text)
		}
	}
}

func TestWritePerfettoValidates(t *testing.T) {
	meta, events := synthetic()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePerfetto(buf.Bytes()); err != nil {
		t.Fatalf("exporter output fails its own validator: %v", err)
	}
	out := buf.String()
	for _, needle := range []string{
		`"ph":"M"`, `"ph":"X"`, `"ph":"s"`, `"ph":"f"`, `"ph":"C"`,
		`"q3.0"`, `"q3.1"`, "core 0", "core 1", "iter",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("perfetto JSON missing %s", needle)
		}
	}
}

func TestValidatePerfettoRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"empty":         `{"traceEvents":[]}`,
		"missing ph":    `{"traceEvents":[{"name":"x"}]}`,
		"missing name":  `{"traceEvents":[{"ph":"X"}]}`,
		"x without dur": `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":0,"tid":0}]}`,
		"negative dur":  `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}]}`,
		"unknown phase": `{"traceEvents":[{"name":"x","ph":"Z","ts":0}]}`,
		"unpaired flow": `{"traceEvents":[{"name":"q","ph":"s","ts":0,"pid":0,"tid":0,"id":"q1.0"}]}`,
	}
	for name, data := range cases {
		if err := ValidatePerfetto([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted invalid trace %s", name, data)
		}
	}
}

// failWriter errors after n bytes, for sink error propagation.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, bytes.ErrTooLarge
	}
	f.n -= len(p)
	return len(p), nil
}

func TestTextSinkReportsWriteError(t *testing.T) {
	s := NewText(&failWriter{n: 10})
	_, events := synthetic()
	for _, e := range events {
		s.Emit(e)
	}
	if s.Close() == nil {
		t.Fatal("text sink swallowed the write error")
	}
}

func TestTeeFiltersByMask(t *testing.T) {
	var buf bytes.Buffer
	text := NewText(&buf)
	rec := NewRecorder()
	s := Tee(text, rec)
	if s.Mask() != MAll {
		t.Fatalf("tee mask = %v, want MAll", s.Mask())
	}
	meta, events := synthetic()
	s.Begin(meta)
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != len(events) {
		t.Errorf("recorder kept %d of %d events", len(rec.Events), len(events))
	}
	if rec.Meta.Cores != 2 {
		t.Errorf("recorder meta not delivered: %+v", rec.Meta)
	}
	if buf.Len() == 0 {
		t.Error("text sink received nothing through the tee")
	}
}
