// Package obs is the cycle-attribution observability subsystem: a typed,
// allocation-conscious event stream emitted by both simulator engines, plus
// the consumers that turn one simulation's stream into the paper's
// evaluation artifacts — a per-core/per-queue stall-attribution report
// (the analysis behind Figures 13–16), a Chrome trace-event / Perfetto
// JSON export, and the legacy text trace.
//
// The simulator buffers events per core while it runs and delivers them to
// the Sink in canonical order after the run: a stable sort by (Time, Core)
// that preserves per-core emission order among ties. Because each core's
// execution — and therefore its emission sequence — is bit-identical across
// the burst and reference engines, the canonical stream is identical too,
// which the determinism tests and the fuzz oracle enforce. A nil sink is
// never consulted: the hot paths guard every emission behind one
// predictable branch, so tracing costs nothing when off.
package obs

import (
	"sort"

	"fgp/internal/isa"
)

// Kind enumerates event types.
type Kind uint8

const (
	// KRetire is one completed instruction: [Time, End) on core Core at PC.
	KRetire Kind = iota
	// KEnq is a value entering queue Queue at Time; Occ is the occupancy
	// after the push and Seq the 0-based transfer sequence number.
	KEnq
	// KDeq is a value leaving queue Queue at Time (the moment the receiver
	// obtains it); Occ is the occupancy after the pop, Seq the sequence
	// number of the transfer (pairing it with its KEnq).
	KDeq
	// KStallBegin opens a stall window [Time, End) with cause Cause.
	KStallBegin
	// KStallEnd closes the most recent stall window of Cause on Core; its
	// Time equals the matching KStallBegin's End.
	KStallEnd
	// KRegionEnter marks control entering outlined region Region at Time.
	KRegionEnter
	// KRegionExit marks control leaving outlined region Region at Time.
	KRegionExit
)

var kindNames = [...]string{
	KRetire: "retire", KEnq: "enq", KDeq: "deq",
	KStallBegin: "stall-begin", KStallEnd: "stall-end",
	KRegionEnter: "region-enter", KRegionExit: "region-exit",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// StallCause attributes a stall window to the hardware resource responsible.
type StallCause uint8

const (
	// CauseNone marks non-stall events.
	CauseNone StallCause = iota
	// CauseDeqEmpty: a dequeue waiting on an empty queue or on the transfer
	// latency of an in-flight value. Sums exactly to Result.DeqStalls.
	CauseDeqEmpty
	// CauseEnqFull: an enqueue blocked on a full queue until the receiver
	// freed a slot. Sums exactly to Result.EnqStalls.
	CauseEnqFull
	// CauseL1Miss: the excess latency of an L1 load miss over an L1 hit
	// (the raw memory penalty, after any port wait).
	CauseL1Miss
	// CauseMemPort: cycles a missing load waited for the shared memory
	// port to accept it (miss-bandwidth serialization below the L1s).
	CauseMemPort

	// NumCauses bounds arrays indexed by StallCause.
	NumCauses
)

var causeNames = [...]string{
	CauseNone: "none", CauseDeqEmpty: "deq-empty", CauseEnqFull: "enq-full",
	CauseL1Miss: "l1-miss", CauseMemPort: "mem-port",
}

func (c StallCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "cause?"
}

// Event is one typed trace event. It is a flat value — no pointers, no
// per-event allocation — so recording is a slice append.
type Event struct {
	Kind   Kind
	Cause  StallCause
	Op     uint8 // isa.Op of the retiring instruction (KRetire only)
	Core   int16
	PC     int32
	Queue  int32 // queue id for KEnq/KDeq, else -1
	Occ    int32 // queue occupancy after the operation (KEnq/KDeq)
	Seq    int32 // transfer sequence number within the queue (KEnq/KDeq)
	Region int32 // region id (KRegionEnter/KRegionExit)
	Time   int64 // event time / window start
	End    int64 // window end for KRetire and KStallBegin; == Time otherwise
}

// Mask declares which event kinds a sink consumes; producers may skip
// emitting (and buffering) kinds outside the mask.
type Mask uint8

const (
	MRetire Mask = 1 << iota
	MQueue
	MStall
	MRegion

	MAll = MRetire | MQueue | MStall | MRegion
)

// QueueMeta describes one hardware queue for consumers.
type QueueMeta struct {
	ID       int32
	Src, Dst int
	Class    string
	Cap      int
}

// Meta is the machine context delivered to a sink before any event.
type Meta struct {
	Cores           int
	TransferLatency int64
	Queues          []QueueMeta
	// RegionNames maps region ids appearing in KRegionEnter/KRegionExit
	// events to display names.
	RegionNames map[int32]string
}

// QueueByID returns the metadata for one queue id, or nil.
func (m *Meta) QueueByID(id int32) *QueueMeta {
	for i := range m.Queues {
		if m.Queues[i].ID == id {
			return &m.Queues[i]
		}
	}
	return nil
}

// RegionName returns the display name of a region id.
func (m *Meta) RegionName(r int32) string {
	if n, ok := m.RegionNames[r]; ok {
		return n
	}
	return "region " + itoa(int64(r))
}

// Sink receives one simulation's event stream.
type Sink interface {
	// Mask declares the event kinds this sink consumes.
	Mask() Mask
	// Begin delivers the machine metadata before the first event.
	Begin(Meta)
	// Emit delivers events in canonical order.
	Emit(Event)
	// Close flushes the sink after the last event and reports the first
	// write error, if any.
	Close() error
}

// Recorder is a Sink that retains the full stream in memory for the
// report and Perfetto consumers.
type Recorder struct {
	Meta   Meta
	Events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Mask implements Sink: a recorder keeps everything.
func (r *Recorder) Mask() Mask { return MAll }

// Begin implements Sink.
func (r *Recorder) Begin(m Meta) { r.Meta = m }

// Emit implements Sink.
func (r *Recorder) Emit(e Event) { r.Events = append(r.Events, e) }

// Close implements Sink.
func (r *Recorder) Close() error { return nil }

// tee fans one stream out to several sinks.
type tee struct{ sinks []Sink }

// Tee returns a sink that forwards to every given sink; its mask is the
// union, and each sink only receives the kinds it asked for.
func Tee(sinks ...Sink) Sink { return &tee{sinks} }

func (t *tee) Mask() Mask {
	var m Mask
	for _, s := range t.sinks {
		m |= s.Mask()
	}
	return m
}

func (t *tee) Begin(m Meta) {
	for _, s := range t.sinks {
		s.Begin(m)
	}
}

var kindMask = [...]Mask{
	KRetire: MRetire, KEnq: MQueue, KDeq: MQueue,
	KStallBegin: MStall, KStallEnd: MStall,
	KRegionEnter: MRegion, KRegionExit: MRegion,
}

// KindMask returns the mask bit covering one event kind.
func KindMask(k Kind) Mask { return kindMask[k] }

func (t *tee) Emit(e Event) {
	bit := KindMask(e.Kind)
	for _, s := range t.sinks {
		if s.Mask()&bit != 0 {
			s.Emit(e)
		}
	}
}

func (t *tee) Close() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Canonicalize stable-sorts events into the canonical delivery order:
// by Time, then core id, preserving per-core emission order among ties.
// The simulator calls it on the concatenated per-core buffers; consumers
// that re-derive ordering from raw recordings can reuse it.
func Canonicalize(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Core < events[j].Core
	})
}

// SumStalls totals the stall windows per cause across all KStallBegin
// events (windows carry their end, so KStallEnd events add nothing).
func SumStalls(events []Event) [NumCauses]int64 {
	var sums [NumCauses]int64
	for i := range events {
		if events[i].Kind == KStallBegin {
			sums[events[i].Cause] += events[i].End - events[i].Time
		}
	}
	return sums
}

// OpName renders an isa opcode byte.
func OpName(op uint8) string { return isa.Op(op).String() }

// itoa is a minimal integer formatter (avoids strconv in the hot-adjacent
// paths; consumers needing full formatting use fmt).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
