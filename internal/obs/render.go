// RenderTrace: the one switch behind every CLI's -trace-format flag.

package obs

import (
	"bytes"
	"fmt"
)

// TraceFormats lists the formats RenderTrace accepts, for flag help text.
const TraceFormats = "text, perfetto, report"

// RenderTrace renders one recorded stream in a named format: "text" (the
// legacy per-retire line format), "perfetto" (Chrome trace-event JSON,
// validated against the schema before being returned), or "report" (the
// stall-attribution table). Events must be in canonical order.
func RenderTrace(format string, meta Meta, events []Event) ([]byte, error) {
	var buf bytes.Buffer
	switch format {
	case "text":
		t := NewText(&buf)
		t.Begin(meta)
		for _, e := range events {
			t.Emit(e)
		}
		if err := t.Close(); err != nil {
			return nil, err
		}
	case "perfetto":
		if err := WritePerfetto(&buf, meta, events); err != nil {
			return nil, err
		}
		if err := ValidatePerfetto(buf.Bytes()); err != nil {
			return nil, fmt.Errorf("obs: perfetto export failed self-validation: %w", err)
		}
	case "report":
		buf.WriteString(BuildReport(meta, events).Format())
	default:
		return nil, fmt.Errorf("obs: unknown trace format %q (want one of: %s)", format, TraceFormats)
	}
	return buf.Bytes(), nil
}
