// The legacy text trace, re-implemented as a thin adapter over the typed
// event stream: one line per retired instruction in canonical order,
//
//	t=<start>..<end> core=<id> pc=<pc> <op>
//
// exactly the format sim.Config.Trace has always produced. Queue stalls
// show up as gaps between one line's end and the next line's start.

package obs

import (
	"fmt"
	"io"
)

// TextSink renders retire events in the legacy Config.Trace line format.
type TextSink struct {
	w   io.Writer
	err error
}

// NewText returns a sink writing legacy trace lines to w. Callers that
// need buffering wrap w themselves (the simulator buffers Config.Trace).
func NewText(w io.Writer) *TextSink { return &TextSink{w: w} }

// Mask implements Sink: the text format only shows retires.
func (t *TextSink) Mask() Mask { return MRetire }

// Begin implements Sink.
func (t *TextSink) Begin(Meta) {}

// Emit implements Sink.
func (t *TextSink) Emit(e Event) {
	if t.err != nil || e.Kind != KRetire {
		return
	}
	_, t.err = fmt.Fprintf(t.w, "t=%d..%d core=%d pc=%d %s\n",
		e.Time, e.End, e.Core, e.PC, OpName(e.Op))
}

// Close implements Sink, reporting the first write error.
func (t *TextSink) Close() error { return t.err }
