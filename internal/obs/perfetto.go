// Chrome trace-event / Perfetto export: one simulation's event stream as a
// JSON trace loadable in ui.perfetto.dev (or chrome://tracing), with one
// track per core, slices for instructions, stall windows and outlined
// regions, flow arrows for every queue transfer (enqueue on the sender's
// track to dequeue on the receiver's), and a counter track per queue's
// occupancy. Timestamps are simulated cycles reported in the trace's
// microsecond field — 1 cycle renders as 1 µs.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one entry of the trace-event JSON schema. Only the fields
// a given phase uses are populated; the rest are omitted.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func dur(d int64) *int64 { return &d }

// WritePerfetto renders the stream as trace-event JSON. Events must be in
// canonical order (Recorder streams qualify).
func WritePerfetto(w io.Writer, meta Meta, events []Event) error {
	tf := traceFile{DisplayTimeUnit: "ms"}
	add := func(e traceEvent) { tf.TraceEvents = append(tf.TraceEvents, e) }

	add(traceEvent{Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "fgp simulation"}})
	for c := 0; c < meta.Cores; c++ {
		add(traceEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: c,
			Args: map[string]any{"name": fmt.Sprintf("core %d", c)}})
		add(traceEvent{Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: c,
			Args: map[string]any{"sort_index": c}})
	}

	// Open region stack per core; unmatched enters close at the end of
	// the trace.
	type openRegion struct {
		region int32
		ts     int64
	}
	regions := make([][]openRegion, meta.Cores)
	var last int64

	for i := range events {
		e := &events[i]
		if e.End > last {
			last = e.End
		}
		if e.Time > last {
			last = e.Time
		}
		switch e.Kind {
		case KRetire:
			add(traceEvent{Name: OpName(e.Op), Cat: "instr", Ph: "X",
				Ts: e.Time, Dur: dur(e.End - e.Time), Pid: 0, Tid: int(e.Core),
				Args: map[string]any{"pc": e.PC}})
		case KStallBegin:
			add(traceEvent{Name: "stall: " + e.Cause.String(), Cat: "stall", Ph: "X",
				Ts: e.Time, Dur: dur(e.End - e.Time), Pid: 0, Tid: int(e.Core)})
		case KEnq:
			qn := fmt.Sprintf("q%d", e.Queue)
			id := fmt.Sprintf("q%d.%d", e.Queue, e.Seq)
			add(traceEvent{Name: qn, Cat: "queue", Ph: "s",
				Ts: e.Time, Pid: 0, Tid: int(e.Core), ID: id})
			add(traceEvent{Name: qn + " occupancy", Cat: "queue", Ph: "C",
				Ts: e.Time, Pid: 0, Args: map[string]any{"occ": e.Occ}})
		case KDeq:
			qn := fmt.Sprintf("q%d", e.Queue)
			id := fmt.Sprintf("q%d.%d", e.Queue, e.Seq)
			add(traceEvent{Name: qn, Cat: "queue", Ph: "f", BP: "e",
				Ts: e.Time, Pid: 0, Tid: int(e.Core), ID: id})
			add(traceEvent{Name: qn + " occupancy", Cat: "queue", Ph: "C",
				Ts: e.Time, Pid: 0, Args: map[string]any{"occ": e.Occ}})
		case KRegionEnter:
			regions[e.Core] = append(regions[e.Core], openRegion{e.Region, e.Time})
		case KRegionExit:
			st := regions[e.Core]
			if n := len(st); n > 0 && st[n-1].region == e.Region {
				add(traceEvent{Name: meta.RegionName(e.Region), Cat: "region", Ph: "X",
					Ts: st[n-1].ts, Dur: dur(e.Time - st[n-1].ts), Pid: 0, Tid: int(e.Core)})
				regions[e.Core] = st[:n-1]
			}
		}
	}
	for core, st := range regions {
		for _, o := range st {
			add(traceEvent{Name: meta.RegionName(o.region), Cat: "region", Ph: "X",
				Ts: o.ts, Dur: dur(last - o.ts), Pid: 0, Tid: core})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&tf)
}

// ValidatePerfetto checks serialized trace JSON against the trace-event
// schema: a non-empty traceEvents array whose entries carry the fields
// their phase requires, with every queue-transfer flow 's' paired to
// exactly one 'f'. The CLIs run it on every Perfetto export before the
// file is reported written.
func ValidatePerfetto(data []byte) error {
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no traceEvents")
	}
	flows := map[string][2]int{} // id -> {starts, finishes}
	for i, e := range tf.TraceEvents {
		ph, _ := e["ph"].(string)
		name, hasName := e["name"].(string)
		if ph == "" {
			return fmt.Errorf("obs: traceEvents[%d]: missing ph", i)
		}
		if !hasName || name == "" {
			return fmt.Errorf("obs: traceEvents[%d]: missing name", i)
		}
		needNum := func(field string) error {
			if _, ok := e[field].(float64); !ok {
				return fmt.Errorf("obs: traceEvents[%d] (%s %q): missing numeric %s", i, ph, name, field)
			}
			return nil
		}
		switch ph {
		case "M":
			if _, ok := e["args"].(map[string]any); !ok {
				return fmt.Errorf("obs: traceEvents[%d]: metadata event without args", i)
			}
		case "X":
			for _, f := range []string{"ts", "dur", "pid", "tid"} {
				if err := needNum(f); err != nil {
					return err
				}
			}
			if d := e["dur"].(float64); d < 0 {
				return fmt.Errorf("obs: traceEvents[%d] (%q): negative dur %v", i, name, d)
			}
		case "C":
			if err := needNum("ts"); err != nil {
				return err
			}
			if _, ok := e["args"].(map[string]any); !ok {
				return fmt.Errorf("obs: traceEvents[%d]: counter event without args", i)
			}
		case "s", "f":
			for _, f := range []string{"ts", "pid", "tid"} {
				if err := needNum(f); err != nil {
					return err
				}
			}
			id, ok := e["id"].(string)
			if !ok || id == "" {
				return fmt.Errorf("obs: traceEvents[%d]: flow event without id", i)
			}
			c := flows[id]
			if ph == "s" {
				c[0]++
			} else {
				c[1]++
			}
			flows[id] = c
		default:
			return fmt.Errorf("obs: traceEvents[%d]: unknown phase %q", i, ph)
		}
	}
	for id, c := range flows {
		if c[0] != 1 || c[1] != 1 {
			return fmt.Errorf("obs: flow %s has %d starts and %d finishes (want 1 and 1)", id, c[0], c[1])
		}
	}
	return nil
}
