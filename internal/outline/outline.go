// Package outline generates per-core machine programs from a partitioned
// TAC function. It implements Sections III-C through III-G of the paper:
//
//   - Outlining: each partition becomes a separate code body; the primary
//     core (core 0) runs its partition inline, secondary cores run theirs
//     as outlined functions dispatched by a runtime driver loop.
//   - Communication insertion: for every value defined in one partition and
//     used in another, an enqueue is placed right after the producing item
//     and a dequeue right before the first consuming item, at the lowest
//     common control region of producer and consumers.
//   - Conditional-structure replication: every core that owns code or
//     communication inside a branch re-creates the branch skeleton (FJP /
//     JP / label) and receives the condition value through a queue.
//   - Live-variable copy-out: region live-outs computed on secondary cores
//     are enqueued back to the primary at region exit.
//   - Runtime thread management: secondaries run a driver loop that blocks
//     on a dequeue for a function index, executes the outlined function,
//     and signals completion back to the primary; index 0 shuts the thread
//     down.
//
// A static FIFO matcher verifies (and where legal, repairs by hoisting
// dequeues) that for every (sender, receiver, register class) pair the
// dynamic enqueue order equals the dequeue order on every control path.
package outline

import (
	"fmt"

	"fgp/internal/codegraph"
	"fgp/internal/deps"
	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/mem"
	"fgp/internal/tac"
)

// Options configures code generation.
type Options struct {
	// MachineCores is the total core count of the target machine (queue
	// indices are computed against it). It must be >= the partition count.
	MachineCores int
	// Schedule enables the within-region instruction scheduling pass
	// (producers of communicated values early, consumers late). It
	// requires InstrCost.
	Schedule bool
	// InstrCost estimates one instruction's latency, for scheduling
	// priorities.
	InstrCost func(*tac.Instr) int64
	// TokenDepthCap bounds carried-token queue priming; it must not exceed
	// the hardware queue length. 0 selects the default (8).
	TokenDepthCap int
}

// Compiled is the result of code generation.
type Compiled struct {
	// Programs holds one program per participating core; Programs[0] is the
	// primary.
	Programs []*isa.Program
	// CommOps is the number of enqueue+dequeue operations inserted in the
	// loop body (Table III's "Com Ops"; runtime-protocol transfers outside
	// the loop are not counted).
	CommOps int
	// Transfers is the number of distinct communicated values per iteration.
	Transfers int
	// StaticQueues is the number of distinct (sender, receiver) core pairs
	// with at least one queue operation anywhere in the generated code.
	StaticQueues int
}

// Generate produces machine code for every partition in parts.
func Generate(fn *tac.Fn, info *deps.Info, parts *codegraph.Result, opt Options) (*Compiled, error) {
	np := len(parts.Parts)
	if np == 0 {
		// A loop with an empty body has no fibers and therefore no
		// partitions, but it is still valid IR: compile it as one core
		// running the bare loop skeleton.
		parts = &codegraph.Result{Parts: [][]int32{nil}, PartOf: parts.PartOf}
		np = 1
	}
	if opt.MachineCores < np {
		return nil, fmt.Errorf("outline: %d partitions exceed %d machine cores", np, opt.MachineCores)
	}
	g := &generator{fn: fn, info: info, parts: parts, opt: opt, np: np}
	g.partOf()
	if err := g.planTransfers(); err != nil {
		return nil, err
	}
	if err := g.buildItems(); err != nil {
		return nil, err
	}
	if opt.Schedule {
		g.scheduleItems()
	}
	if err := g.matchFIFO(); err != nil {
		return nil, err
	}
	return g.emitAll()
}

// BuildMemory creates a fresh memory image for a loop; array IDs equal the
// array's index in loop.Arrays, matching the IDs compiled into programs.
func BuildMemory(l *ir.Loop) *mem.Memory {
	m := mem.New()
	for _, a := range l.Arrays {
		if a.K == ir.F64 {
			m.AddF(a.Name, a.InitF)
		} else {
			m.AddI(a.Name, a.InitI)
		}
	}
	return m
}

type generator struct {
	fn    *tac.Fn
	info  *deps.Info
	parts *codegraph.Result
	opt   Options
	np    int

	part []int // instr id -> partition

	transfers []*transfer
	// trByTempDst dedupes transfers: (temp, dstPart) -> transfer.
	trByTempDst map[trKey]*transfer

	// materialized[p] is the set of regions partition p must emit.
	materialized []map[int]bool

	// items[p][r] is the ordered item list of region r on partition p.
	items []map[int][]*item

	// paramNeeds[p] lists the param temps partition p reads.
	paramNeeds [][]tac.TempID

	// constNeeds[p] holds literal-producing instruction IDs partition p
	// rematerializes in its loop preheader (instead of communicating).
	constNeeds []map[int]bool

	// accInit[p] lists accumulator parameters (region parameters that the
	// loop redefines, e.g. reduction variables) whose initial value
	// partition p must materialize in its preheader: the partition that
	// owns the recurrence.
	accInit [][]tac.TempID

	nextEdge int32
}

type trKey struct {
	temp tac.TempID
	dst  int
}

// transfer is one communicated value per iteration (or per region entry for
// conditions): an ENQ on src and a DEQ on dst at placement region.
type transfer struct {
	temp     tac.TempID
	src, dst int
	region   int // placement region (LCA of producer and consumer anchors)
	class    ir.Kind
	edge     int32
	planned  bool // region has been computed at least once

	// Memory-ordering synchronization token (no payload): the enqueue
	// follows the producing access, the dequeue precedes the consuming
	// access. depth > 0 primes the queue with depth tokens before the loop
	// (and drains them after), allowing the consumer to trail the producer
	// by up to depth iterations — the compiled form of a loop-carried
	// memory dependence of that distance.
	token bool
	depth int
	// For same-iteration tokens: the memory-access instructions ordered by
	// this token. The scheduler pins producers before the enqueue anchor
	// and consumers after the dequeue anchor.
	prodIDs, consIDs []int

	// enqAfter / deqBefore anchor the queue ops in the region's item order.
	enqAfter  anchor
	deqBefore anchor
}

type anchor struct {
	// instr >= 0 anchors at that instruction item; otherwise subtree >= 0
	// anchors at the branch item owning that child region.
	instr   int
	subtree int
	stmt    int
}

func instrAnchor(in *tac.Instr) anchor { return anchor{instr: in.ID, subtree: -1, stmt: in.Stmt} }

func subtreeAnchor(fnRegions []tac.Region, region int) anchor {
	return anchor{instr: -1, subtree: region, stmt: fnRegions[region].Stmt}
}

type itemKind uint8

const (
	itInstr itemKind = iota
	itBranch
	itEnq
	itDeq
)

type item struct {
	kind itemKind
	// itInstr
	instr int
	// itBranch: thenRegion/elseRegion (-1 if absent), cond temp
	thenRegion, elseRegion int
	cond                   tac.TempID
	// itEnq/itDeq
	tr *transfer
	// ordering
	stmt int
}

func (g *generator) partOf() {
	g.part = make([]int, len(g.fn.Instrs))
	for i, in := range g.fn.Instrs {
		g.part[i] = int(g.parts.PartOf[in.Fiber])
	}
}

func (g *generator) newEdge() int32 {
	e := g.nextEdge
	g.nextEdge++
	return e
}

// defsPart returns the partition holding all defs of a temp (defs are
// co-located by the dependence constraints) or -1 for def-less temps
// (parameters, the induction variable).
func (g *generator) defsPart(t tac.TempID) int {
	defs := g.fn.Temps[t].Defs
	if len(defs) == 0 {
		return -1
	}
	return g.part[defs[0]]
}
