package outline

import (
	"sort"

	"fgp/internal/tac"
)

// scheduleItems reorders instructions within each control region so that
// instructions producing values communicated to other cores execute as
// early as possible and instructions depending on received values execute
// as late as possible (Section III-B, final paragraph).
//
// The implementation computes ONE global schedule per region over the
// instructions of all partitions (a priority list schedule by critical-path
// length on the cross-core dependence graph) and then emits each
// partition's items in that global order, with each enqueue placed directly
// after its producer and each dequeue ordered by the producer's global
// position. Deriving every core's order from a single global linear order
// guarantees that (a) per-queue enqueue and dequeue sequences agree and
// (b) no cross-core waiting cycle can form.
func (g *generator) scheduleItems() {
	if g.opt.InstrCost == nil {
		return
	}
	for r := range g.fn.Regions {
		present := false
		for p := 0; p < g.np && !present; p++ {
			present = len(g.items[p][r]) > 0
		}
		if present {
			g.scheduleRegion(r)
		}
	}
}

const branchNodeBase = int64(1) << 40

func (g *generator) nodeOf(in *tac.Instr, region int) (int64, bool) {
	if in.Region == region {
		return int64(in.ID), true
	}
	sub := g.fn.AncestorAt(in.Region, region)
	if sub < 0 {
		return 0, false
	}
	return branchNodeBase + int64(g.fn.Regions[sub].Stmt), true
}

func (g *generator) scheduleRegion(region int) {
	// Collect the global node set from every partition's items.
	nodes := map[int64]*schedNodeInfo{}
	addInstrNode := func(id int) {
		in := g.fn.Instrs[id]
		n := int64(id)
		if nodes[n] == nil {
			nodes[n] = &schedNodeInfo{stmt: in.Stmt}
		}
		nodes[n].weight += g.opt.InstrCost(in)
	}
	for p := 0; p < g.np; p++ {
		for _, it := range g.items[p][region] {
			switch it.kind {
			case itInstr:
				addInstrNode(it.instr)
			case itBranch:
				n := branchNodeBase + int64(it.stmt)
				if nodes[n] == nil {
					nodes[n] = &schedNodeInfo{stmt: it.stmt}
				}
			}
		}
	}
	// Branch node weights: total latency of the instructions inside.
	for _, in := range g.fn.Instrs {
		if in.Region == region || g.hoistable(in) {
			continue
		}
		if n, ok := g.nodeOf(in, region); ok && n >= branchNodeBase && nodes[n] != nil {
			nodes[n].weight += g.opt.InstrCost(in)
		}
	}
	if len(nodes) < 2 {
		return
	}

	// Dependence edges projected to region level: flow/memory/control from
	// the analysis, plus anti- and output-dependences on multiply-defined
	// temps (register reuse must not be reordered).
	succ := map[int64][]int64{}
	indeg := map[int64]int{}
	addEdge := func(a, b int64) {
		if a == b {
			return
		}
		if nodes[a] == nil || nodes[b] == nil {
			return
		}
		succ[a] = append(succ[a], b)
		indeg[b]++
	}
	projected := func(id int) (int64, bool) {
		in := g.fn.Instrs[id]
		if g.hoistable(in) {
			return 0, false
		}
		return g.nodeOf(in, region)
	}
	for _, e := range g.info.Edges {
		if e.Carried {
			continue
		}
		a, ok := projected(e.From)
		if !ok {
			continue
		}
		b, ok := projected(e.To)
		if !ok {
			continue
		}
		addEdge(a, b)
	}
	// Anti (use before redefinition) and output (def before def) edges.
	for tid := range g.fn.Temps {
		t := &g.fn.Temps[tid]
		if len(t.Defs) < 2 && !(t.IsParam && len(t.Defs) > 0) {
			continue
		}
		var events []int // instruction ids touching the temp, program order
		var uses []tac.TempID
		for _, in := range g.fn.Instrs {
			uses = uses[:0]
			uses = in.Uses(uses)
			touches := in.Dst == tac.TempID(tid)
			for _, u := range uses {
				if u == tac.TempID(tid) {
					touches = true
				}
			}
			if touches {
				events = append(events, in.ID)
			}
		}
		for i := 0; i+1 < len(events); i++ {
			a, ok := projected(events[i])
			if !ok {
				continue
			}
			b, ok2 := projected(events[i+1])
			if !ok2 {
				continue
			}
			addEdge(a, b)
		}
	}

	// Same-iteration memory tokens: their queue ops are keyed off anchor
	// items, so every producing access must stay before the enqueue anchor
	// and every consuming access after the dequeue anchor — otherwise the
	// schedule could move a store past the token that publishes it.
	anchorNode := func(a anchor) (int64, bool) {
		if a.instr >= 0 {
			n := int64(a.instr)
			_, ok := nodes[n]
			return n, ok
		}
		if a.subtree >= 0 {
			n := branchNodeBase + int64(g.fn.Regions[a.subtree].Stmt)
			_, ok := nodes[n]
			return n, ok
		}
		return 0, false
	}
	for _, tr := range g.transfers {
		if !tr.token || tr.depth > 0 || tr.region != region {
			continue
		}
		en, enOK := anchorNode(tr.enqAfter)
		dn, dnOK := anchorNode(tr.deqBefore)
		if enOK {
			for _, p := range tr.prodIDs {
				if a, ok2 := projected(p); ok2 {
					addEdge(a, en)
				}
			}
		}
		if dnOK {
			for _, c := range tr.consIDs {
				if a, ok2 := projected(c); ok2 {
					addEdge(dn, a)
				}
			}
		}
		// The token's whole producer side must precede its whole consumer
		// side in the global order, or a merged token could deadlock.
		if enOK && dnOK {
			addEdge(en, dn)
		}
	}

	// Critical-path priorities via reverse topological DP.
	order := g.topo(nodes, succ, indeg)
	if order == nil {
		return // unexpected cycle after projection; keep source order
	}
	cp := map[int64]int64{}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		best := int64(0)
		for _, s := range succ[n] {
			if cp[s] > best {
				best = cp[s]
			}
		}
		cp[n] = nodes[n].weight + best
	}

	// Priority list schedule: ready node with the longest critical path
	// first; ties broken by source position for determinism.
	ind2 := map[int64]int{}
	for n := range nodes {
		ind2[n] = 0
	}
	for _, ss := range succ {
		for _, s := range ss {
			ind2[s]++
		}
	}
	var ready []int64
	for n, d := range ind2 {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	pos := map[int64]int{}
	next := 0
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			a, b := ready[i], ready[best]
			ca, cb := cp[a], cp[b]
			if ca != cb {
				if ca > cb {
					best = i
				}
				continue
			}
			if nodes[a].stmt != nodes[b].stmt {
				if nodes[a].stmt < nodes[b].stmt {
					best = i
				}
				continue
			}
			if a < b {
				best = i
			}
		}
		n := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		pos[n] = next
		next++
		for _, s := range succ[n] {
			ind2[s]--
			if ind2[s] == 0 {
				ready = append(ready, s)
			}
		}
	}

	// Rebuild each partition's item order from the global schedule.
	posOfAnchor := func(a anchor) int {
		if a.instr >= 0 {
			if p, ok := pos[int64(a.instr)]; ok {
				return p
			}
			return 1 << 29
		}
		if a.subtree < 0 {
			// Sentinel anchors of carried tokens: iteration start or end.
			if a.stmt >= endOfIteration {
				return 1 << 30
			}
			return -1
		}
		if p, ok := pos[branchNodeBase+int64(g.fn.Regions[a.subtree].Stmt)]; ok {
			return p
		}
		return 1 << 29
	}
	for p := 0; p < g.np; p++ {
		its := g.items[p][region]
		type keyed struct {
			key [3]int
			it  *item
		}
		ks := make([]keyed, len(its))
		for i, it := range its {
			var k [3]int
			switch it.kind {
			case itInstr:
				k = [3]int{pos[int64(it.instr)], 0, it.instr}
			case itBranch:
				k = [3]int{pos[branchNodeBase+int64(it.stmt)], 0, 0}
			case itEnq:
				k = [3]int{posOfAnchor(it.tr.enqAfter), 1, int(it.tr.edge)}
			case itDeq:
				switch {
				case it.tr.token && it.tr.depth > 0:
					// Carried tokens open the iteration on the receiver.
					k = [3]int{posOfAnchor(it.tr.deqBefore), -1, int(it.tr.edge)}
				case it.tr.token:
					// Same-iteration tokens sit just before their earliest
					// consumer; the anchor edges added above guarantee every
					// consumer is scheduled after the anchor.
					k = [3]int{posOfAnchor(it.tr.deqBefore), -1, int(it.tr.edge)}
				default:
					// Value dequeues follow the producer's position: every
					// consumer has a flow edge from the producer, so it is
					// scheduled strictly later. (Keying off the first
					// consumer would race against other consumers the
					// scheduler may move earlier.) The FIFO matcher
					// afterwards hoists dequeues the minimal amount needed
					// to align with the sender's enqueue order.
					k = [3]int{posOfAnchor(it.tr.enqAfter), 2, int(it.tr.edge)}
				}
			}
			ks[i] = keyed{k, it}
		}
		sort.SliceStable(ks, func(i, j int) bool {
			a, b := ks[i].key, ks[j].key
			if a[0] != b[0] {
				return a[0] < b[0]
			}
			if a[1] != b[1] {
				return a[1] < b[1]
			}
			return a[2] < b[2]
		})
		for i := range ks {
			its[i] = ks[i].it
		}
		g.items[p][region] = its
	}
}

// schedNodeInfo carries the weight and source position of one scheduling
// node (an instruction or a nested-branch subtree).
type schedNodeInfo struct {
	weight int64
	stmt   int
}

// topo returns a topological order of nodes, or nil on a cycle.
func (g *generator) topo(nodes map[int64]*schedNodeInfo, succ map[int64][]int64, indeg map[int64]int) []int64 {
	ind := map[int64]int{}
	for n := range nodes {
		ind[n] = 0
	}
	for _, ss := range succ {
		for _, s := range ss {
			ind[s]++
		}
	}
	var stack []int64
	for n, d := range ind {
		if d == 0 {
			stack = append(stack, n)
		}
	}
	sort.Slice(stack, func(i, j int) bool { return stack[i] < stack[j] })
	var order []int64
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, n)
		for _, s := range succ[n] {
			ind[s]--
			if ind[s] == 0 {
				stack = append(stack, s)
			}
		}
	}
	if len(order) != len(nodes) {
		return nil
	}
	return order
}
