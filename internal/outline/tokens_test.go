package outline

import (
	"testing"

	"fgp/internal/codegraph"
	"fgp/internal/cost"
	"fgp/internal/deps"
	"fgp/internal/fiber"
	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/profile"
	"fgp/internal/sim"
	"fgp/internal/tac"
)

// manualSplit builds a two-partition assignment by statement ordinal:
// fibers whose first instruction's statement is < cut go to partition 0.
func manualSplit(fn *tac.Fn, set *fiber.Set, cut int) *codegraph.Result {
	parts := &codegraph.Result{PartOf: make([]int32, len(set.Fibers))}
	var p0, p1 []int32
	for fi, f := range set.Fibers {
		if fn.Instrs[f.Instrs[0]].Stmt < cut {
			parts.PartOf[fi] = 0
			p0 = append(p0, int32(fi))
		} else {
			parts.PartOf[fi] = 1
			p1 = append(p1, int32(fi))
		}
	}
	parts.Parts = [][]int32{p0, p1}
	parts.Cost = []int64{0, 0}
	return parts
}

// TestSplitRMWOrderedByTokens splits two read-modify-writes of the same
// indirect slot across two cores and verifies (a) the generated code is
// functionally identical to the interpreter, (b) a same-iteration token
// orders them, and (c) a carried token with priming bounds the slip for the
// next iteration.
func TestSplitRMWOrderedByTokens(t *testing.T) {
	b := ir.NewBuilder("rmw2", "i", 0, 16, 1)
	idx := make([]int64, 16)
	for i := range idx {
		idx[i] = int64(i % 3) // repeats: carried conflicts across iterations
	}
	b.ArrayI("idx", idx)
	b.ArrayF("y", make([]float64, 16))
	av := make([]float64, 16)
	for i := range av {
		av[i] = float64(i) + 1
	}
	b.ArrayF("a", av)
	i := b.Idx()
	t1 := b.Def("t1", ir.LDI("idx", i))
	t2 := b.Def("t2", ir.LDF("y", t1))
	b.StoreF("y", t1, ir.AddE(t2, ir.F(1)))
	t6 := b.Def("t6", ir.LDI("idx", i))
	t7 := b.Def("t7", ir.LDF("y", t6))
	b.StoreF("y", t6, ir.AddE(t7, ir.MulE(ir.LDF("a", i), ir.F(2))))
	l := b.MustBuild()

	fn, err := tac.Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		t.Fatal(err)
	}
	info, err := deps.Analyze(fn, set)
	if err != nil {
		t.Fatal(err)
	}
	parts := manualSplit(fn, set, 3) // RMW1 on core 0, RMW2 on core 1
	ic := profile.InstrCost(cost.Default(), nil)
	for _, sched := range []bool{false, true} {
		c, err := Generate(fn, info, parts, Options{MachineCores: 2, Schedule: sched, InstrCost: ic})
		if err != nil {
			t.Fatalf("sched=%v: %v", sched, err)
		}

		// Token accounting: at least one immediate (0->1) and one primed
		// carried (1->0) token must exist. Priming enqueues appear outside
		// the loop; count enq/deq per program.
		counts := map[isa.Op]int{}
		for _, p := range c.Programs {
			for _, in := range p.Instrs {
				if in.Op == isa.Enq || in.Op == isa.Deq {
					counts[in.Op]++
				}
			}
		}
		// Statically the primary holds one more enqueue than there are
		// dequeues: the driver's single dequeue instruction services both
		// the dispatch and the shutdown message.
		if counts[isa.Enq] != counts[isa.Deq]+1 {
			t.Errorf("sched=%v: unexpected queue-op counts: %v", sched, counts)
		}

		cfg := sim.DefaultConfig(2)
		cfg.DebugEdges = true
		memImage := BuildMemory(l)
		m, err := sim.New(c.Programs, memImage, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("sched=%v: %v", sched, err)
		}
		ref, err := interp.Run(l)
		if err != nil {
			t.Fatal(err)
		}
		got := memImage.SnapshotF("y")
		for i, want := range ref.ArraysF["y"] {
			if got[i] != want {
				t.Fatalf("sched=%v: y[%d] = %v, want %v", sched, i, got[i], want)
			}
		}
	}
}

// TestSweptRecurrenceSplit splits a forward sweep (w[i] depends on w[i-1])
// so the load and the store live on different cores, and checks the primed
// carried token preserves the recurrence exactly.
func TestSweptRecurrenceSplit(t *testing.T) {
	b := ir.NewBuilder("sweep", "i", 1, 20, 1)
	src := make([]float64, 20)
	for i := range src {
		src[i] = float64(i%5) * 0.5
	}
	b.ArrayF("s", src)
	b.ArrayF("w", make([]float64, 20))
	i := b.Idx()
	prev := b.Def("prev", ir.LDF("w", ir.SubE(i, ir.I(1))))
	mixed := b.Def("mixed", ir.AddE(ir.MulE(prev, ir.F(0.5)), ir.LDF("s", i)))
	b.StoreF("w", i, mixed)
	l := b.MustBuild()

	fn, _ := tac.Lower(l)
	set, _ := fiber.Partition(fn)
	info, _ := deps.Analyze(fn, set)
	parts := manualSplit(fn, set, 1) // load on core 0, compute+store on core 1
	if len(parts.Parts[0]) == 0 || len(parts.Parts[1]) == 0 {
		t.Skip("fiber layout did not produce a two-sided split")
	}
	ic := profile.InstrCost(cost.Default(), nil)
	c, err := Generate(fn, info, parts, Options{MachineCores: 2, InstrCost: ic})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(2)
	cfg.DebugEdges = true
	memImage := BuildMemory(l)
	m, err := sim.New(c.Programs, memImage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ref, _ := interp.Run(l)
	got := memImage.SnapshotF("w")
	for i, want := range ref.ArraysF["w"] {
		if got[i] != want {
			t.Fatalf("w[%d] = %v, want %v (recurrence broken)", i, got[i], want)
		}
	}
}

// TestSharedQueueCarriedDepthTwo is the regression test for a miscompile
// found by the differential fuzzer (internal/fuzz/testdata/crashers/
// fuzz-a8c80032281a475d.bin): a distance-2 carried memory dependence and a
// same-iteration dependence between the same core pair share one hardware
// queue. The carried token used to be primed to its full depth (2) and was
// excluded from FIFO matching, so the primed stream E·E·(e0·E)* could never
// line up with the receiver's (E·e0)* dequeue order — worse, the receiver's
// same-iteration dequeue was satisfied by a preheader primer, silently
// dropping the store→load ordering it was meant to enforce. Shared carried
// tokens must be clamped to one primed entry and verified by the matcher's
// conjugacy check (P·S == R·P).
func TestSharedQueueCarriedDepthTwo(t *testing.T) {
	b := ir.NewBuilder("carried2", "i", 1, 18, 1)
	src := make([]float64, 20)
	for i := range src {
		src[i] = float64(i%7)*0.75 + 1
	}
	b.ArrayF("s", src)
	b.ArrayF("of", make([]float64, 20))
	b.ArrayF("o2", make([]float64, 20))
	i := b.Idx()
	// Core 0 stores of[i+1]; core 1 reads of[i+1] (same iteration) and
	// of[i-1] (written two iterations earlier) — one immediate and one
	// depth-2 carried token on the same 0 -> 1 queue.
	b.StoreF("of", ir.AddE(i, ir.I(1)), ir.MulE(ir.LDF("s", i), ir.F(2)))
	b.StoreF("o2", i, ir.AddE(ir.LDF("of", ir.SubE(i, ir.I(1))), ir.LDF("of", ir.AddE(i, ir.I(1)))))
	l := b.MustBuild()

	fn, _ := tac.Lower(l)
	set, _ := fiber.Partition(fn)
	info, _ := deps.Analyze(fn, set)
	parts := manualSplit(fn, set, 1) // producer statement on core 0, consumer on core 1
	ic := profile.InstrCost(cost.Default(), nil)
	c, err := Generate(fn, info, parts, Options{MachineCores: 2, InstrCost: ic})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(2)
	cfg.DebugEdges = true // fails on any FIFO tag mismatch
	memImage := BuildMemory(l)
	m, err := sim.New(c.Programs, memImage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ref, _ := interp.Run(l)
	for _, arr := range []string{"of", "o2"} {
		got := memImage.SnapshotF(arr)
		for i, want := range ref.ArraysF[arr] {
			if got[i] != want {
				t.Fatalf("%s[%d] = %v, want %v", arr, i, got[i], want)
			}
		}
	}
}

// TestFIFORepairPath forces a receiver whose natural dequeue order differs
// from the sender's enqueue order: two values flow 0 -> 1 but the second
// value's consumer comes before the first value's consumer on the receiver.
func TestFIFORepairPath(t *testing.T) {
	b := ir.NewBuilder("fifo", "i", 0, 16, 1)
	av := make([]float64, 16)
	for i := range av {
		av[i] = float64(i) + 1
	}
	b.ArrayF("a", av)
	b.ArrayF("o1", make([]float64, 16))
	b.ArrayF("o2", make([]float64, 16))
	i := b.Idx()
	// Producers on core 0 (stmts 0-1), consumers on core 1 (stmts 2-3) in
	// swapped order: v2's consumer comes first.
	v1 := b.Def("v1", ir.SqrtE(ir.LDF("a", i)))
	v2 := b.Def("v2", ir.MulE(ir.LDF("a", i), ir.F(3)))
	b.StoreF("o2", i, ir.AddE(v2, ir.F(1)))
	b.StoreF("o1", i, ir.SubE(v1, ir.F(1)))
	l := b.MustBuild()

	fn, _ := tac.Lower(l)
	set, _ := fiber.Partition(fn)
	info, _ := deps.Analyze(fn, set)
	parts := manualSplit(fn, set, 2)
	ic := profile.InstrCost(cost.Default(), nil)
	c, err := Generate(fn, info, parts, Options{MachineCores: 2, InstrCost: ic})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(2)
	cfg.DebugEdges = true // would fail on any FIFO tag mismatch
	memImage := BuildMemory(l)
	m, err := sim.New(c.Programs, memImage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ref, _ := interp.Run(l)
	for _, arr := range []string{"o1", "o2"} {
		got := memImage.SnapshotF(arr)
		for i, want := range ref.ArraysF[arr] {
			if got[i] != want {
				t.Fatalf("%s[%d] = %v, want %v", arr, i, got[i], want)
			}
		}
	}
}
