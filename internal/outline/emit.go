package outline

import (
	"fmt"
	"sort"

	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/sim"
	"fgp/internal/tac"
)

// liveOutPlan records how one region live-out returns to the primary core.
type liveOutPlan struct {
	temp  tac.TempID
	owner int
	edge  int32
}

// emitter turns one partition's item tree into a machine program.
type emitter struct {
	g    *generator
	part int
	prog *isa.Program
	regs map[tac.TempID]isa.Reg
}

func (g *generator) emitAll() (*Compiled, error) {
	c := &Compiled{
		CommOps:   2 * len(g.transfers),
		Transfers: len(g.transfers),
	}
	pairs := map[[2]int]bool{}
	for _, tr := range g.transfers {
		pairs[[2]int{tr.src, tr.dst}] = true
	}

	// Protocol edges, allocated deterministically after transfer edges.
	dispatch := make([]int32, g.np)
	completion := make([]int32, g.np)
	paramEdges := make([]map[tac.TempID]int32, g.np)
	for s := 1; s < g.np; s++ {
		dispatch[s] = g.newEdge()
		paramEdges[s] = map[tac.TempID]int32{}
		for _, t := range g.paramNeeds[s] {
			paramEdges[s][t] = g.newEdge()
		}
		pairs[[2]int{0, s}] = true
		pairs[[2]int{s, 0}] = true
	}
	// Live-out copy-back plan: (temp, owner part) in declaration order.
	var liveOuts []liveOutPlan
	for _, name := range g.fn.Loop.LiveOut {
		t, ok := g.fn.TempByName(name)
		if !ok {
			return nil, fmt.Errorf("outline: live-out %q has no temp", name)
		}
		owner := g.defsPart(t)
		if owner < 0 {
			owner = 0 // pure parameter: primary already holds it
		}
		lo := liveOutPlan{temp: t, owner: owner}
		if owner != 0 {
			lo.edge = g.newEdge()
			pairs[[2]int{owner, 0}] = true
		}
		liveOuts = append(liveOuts, lo)
	}
	for s := 1; s < g.np; s++ {
		completion[s] = g.newEdge()
	}
	c.StaticQueues = len(pairs)

	for p := 0; p < g.np; p++ {
		e := &emitter{
			g:    g,
			part: p,
			prog: &isa.Program{Core: p, RegName: map[isa.Reg]string{}},
			regs: map[tac.TempID]isa.Reg{},
		}
		if p == 0 {
			e.emitPrimary(dispatch, completion, paramEdges, liveOuts)
		} else {
			e.emitSecondary(dispatch[p], completion[p], paramEdges[p], liveOuts)
		}
		e.prog.NRegs = len(e.regs) + 1
		c.Programs = append(c.Programs, e.prog)
	}
	return c, nil
}

func (e *emitter) reg(t tac.TempID) isa.Reg {
	if r, ok := e.regs[t]; ok {
		return r
	}
	r := isa.Reg(len(e.regs))
	e.regs[t] = r
	return r
}

// scratch allocates a register not bound to any temp.
func (e *emitter) scratch() isa.Reg {
	r := isa.Reg(len(e.regs))
	e.regs[tac.TempID(-2-len(e.regs))] = r // unique fake key
	return r
}

func (e *emitter) arrID(name string) int32 {
	for i, a := range e.g.fn.Loop.Arrays {
		if a.Name == name {
			return int32(i)
		}
	}
	panic(fmt.Sprintf("outline: unknown array %q", name))
}

func (e *emitter) qid(src, dst int, class ir.Kind) int32 {
	return sim.QID(src, dst, class, e.g.opt.MachineCores)
}

// emitPrimary lays out the primary core's program: parameter
// materialization, secondary dispatch, the loop, live-out collection,
// completion barrier, and secondary shutdown.
func (e *emitter) emitPrimary(dispatch, completion []int32, paramEdges []map[tac.TempID]int32, liveOuts []liveOutPlan) {
	g := e.g
	l := g.fn.Loop

	// Materialize every parameter any participating part needs.
	need := map[tac.TempID]bool{}
	for p := 0; p < g.np; p++ {
		for _, t := range g.paramNeeds[p] {
			need[t] = true
		}
	}
	var params []tac.TempID
	for t := range need {
		params = append(params, t)
	}
	sort.Slice(params, func(i, j int) bool { return params[i] < params[j] })
	e.prog.Label("params")
	for _, t := range params {
		name := g.fn.Temps[t].Name
		s, _ := l.Scalar(name)
		if s.K == ir.F64 {
			e.prog.Append(isa.Instr{Op: isa.ConstF, Dst: e.reg(t), A: isa.NoReg, B: isa.NoReg, ImmF: s.F, Edge: -1, Tac: -1})
		} else {
			e.prog.Append(isa.Instr{Op: isa.ConstI, Dst: e.reg(t), A: isa.NoReg, B: isa.NoReg, ImmI: s.I, Edge: -1, Tac: -1})
		}
	}

	// Dispatch each secondary: function index (the instruction after the
	// 3-instruction driver), then its parameters (Fig 9).
	e.prog.Label("dispatch")
	for s := 1; s < g.np; s++ {
		fnIdx := e.scratch()
		e.prog.Append(isa.Instr{Op: isa.ConstI, Dst: fnIdx, A: isa.NoReg, B: isa.NoReg, ImmI: driverLen, Edge: -1, Tac: -1})
		e.prog.Append(isa.Instr{Op: isa.Enq, A: fnIdx, B: isa.NoReg, Dst: isa.NoReg, K: ir.I64, Q: e.qid(0, s, ir.I64), Edge: dispatch[s], Tac: -1})
		for _, t := range g.paramNeeds[s] {
			k := g.fn.Temps[t].K
			e.prog.Append(isa.Instr{Op: isa.Enq, A: e.reg(t), B: isa.NoReg, Dst: isa.NoReg, K: k, Q: e.qid(0, s, k), Edge: paramEdges[s][t], Tac: -1})
		}
	}

	e.emitBody()

	// Collect live-outs computed on secondaries, then the completion
	// barrier, then shut the secondaries down.
	e.prog.Label("epilogue")
	for _, lo := range liveOuts {
		name := g.fn.Temps[lo.temp].Name
		if lo.owner != 0 {
			k := g.fn.Temps[lo.temp].K
			e.prog.Append(isa.Instr{Op: isa.Deq, Dst: e.reg(lo.temp), A: isa.NoReg, B: isa.NoReg, K: k, Q: e.qid(lo.owner, 0, k), Edge: lo.edge, Tac: -1})
		}
		e.prog.RegName[e.reg(lo.temp)] = name
	}
	for s := 1; s < g.np; s++ {
		done := e.scratch()
		e.prog.Append(isa.Instr{Op: isa.Deq, Dst: done, A: isa.NoReg, B: isa.NoReg, K: ir.I64, Q: e.qid(s, 0, ir.I64), Edge: completion[s], Tac: -1})
	}
	for s := 1; s < g.np; s++ {
		z := e.scratch()
		e.prog.Append(isa.Instr{Op: isa.ConstI, Dst: z, A: isa.NoReg, B: isa.NoReg, ImmI: 0, Edge: -1, Tac: -1})
		e.prog.Append(isa.Instr{Op: isa.Enq, A: z, B: isa.NoReg, Dst: isa.NoReg, K: ir.I64, Q: e.qid(0, s, ir.I64), Edge: dispatch[s], Tac: -1})
	}
	e.prog.Append(isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Edge: -1, Tac: -1})
}

// driverLen is the instruction count of the secondary driver loop; the
// outlined function body starts right after it.
const driverLen = 3

// emitSecondary lays out a secondary core: the driver loop (dequeue a
// function index, 0 means halt, otherwise jump to it), then the single
// outlined function: parameter receive, loop body, live-out send,
// completion signal, return to driver.
func (e *emitter) emitSecondary(dispatchEdge, completionEdge int32, paramEdges map[tac.TempID]int32, liveOuts []liveOutPlan) {
	g := e.g
	p := e.part

	fnReg := e.scratch()
	e.prog.Label("driver")
	e.prog.Append(isa.Instr{Op: isa.Deq, Dst: fnReg, A: isa.NoReg, B: isa.NoReg, K: ir.I64, Q: e.qid(0, p, ir.I64), Edge: dispatchEdge, Tac: -1})
	fjp := e.prog.Append(isa.Instr{Op: isa.Fjp, A: fnReg, B: isa.NoReg, Dst: isa.NoReg, Edge: -1, Tac: -1})
	e.prog.Append(isa.Instr{Op: isa.Jr, A: fnReg, B: isa.NoReg, Dst: isa.NoReg, Edge: -1, Tac: -1})
	if len(e.prog.Instrs) != driverLen {
		panic("outline: driver length drifted from driverLen")
	}

	e.prog.Label("fn")
	for _, t := range g.paramNeeds[p] {
		k := g.fn.Temps[t].K
		e.prog.Append(isa.Instr{Op: isa.Deq, Dst: e.reg(t), A: isa.NoReg, B: isa.NoReg, K: k, Q: e.qid(0, p, k), Edge: paramEdges[t], Tac: -1})
	}

	e.emitBody()

	e.prog.Label("epilogue")
	for _, lo := range liveOuts {
		if lo.owner != p {
			continue
		}
		k := g.fn.Temps[lo.temp].K
		e.prog.Append(isa.Instr{Op: isa.Enq, A: e.reg(lo.temp), B: isa.NoReg, Dst: isa.NoReg, K: k, Q: e.qid(p, 0, k), Edge: lo.edge, Tac: -1})
	}
	one := e.scratch()
	e.prog.Append(isa.Instr{Op: isa.ConstI, Dst: one, A: isa.NoReg, B: isa.NoReg, ImmI: 1, Edge: -1, Tac: -1})
	e.prog.Append(isa.Instr{Op: isa.Enq, A: one, B: isa.NoReg, Dst: isa.NoReg, K: ir.I64, Q: e.qid(p, 0, ir.I64), Edge: completionEdge, Tac: -1})
	e.prog.Append(isa.Instr{Op: isa.Jp, Tgt: 0, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Edge: -1, Tac: -1})

	halt := e.prog.Append(isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Edge: -1, Tac: -1})
	e.prog.Label("halt")
	e.prog.Instrs[fjp].Tgt = int32(halt)
}

// emitBody emits the loop preheader (rematerialized literals, loop
// control), the loop skeleton, and the region-0 item tree.
func (e *emitter) emitBody() {
	g := e.g
	l := g.fn.Loop

	e.prog.Label("preheader")
	var consts []int
	for id := range g.constNeeds[e.part] {
		consts = append(consts, id)
	}
	sort.Ints(consts)
	for _, id := range consts {
		in := g.fn.Instrs[id]
		e.emitInstr(in)
	}
	for _, t := range g.accInit[e.part] {
		s, ok := l.Scalar(g.fn.Temps[t].Name)
		if !ok {
			panic(fmt.Sprintf("outline: accumulator %s has no scalar declaration", g.fn.Temps[t].Name))
		}
		if s.K == ir.F64 {
			e.prog.Append(isa.Instr{Op: isa.ConstF, Dst: e.reg(t), A: isa.NoReg, B: isa.NoReg, ImmF: s.F, Edge: -1, Tac: -1})
		} else {
			e.prog.Append(isa.Instr{Op: isa.ConstI, Dst: e.reg(t), A: isa.NoReg, B: isa.NoReg, ImmI: s.I, Edge: -1, Tac: -1})
		}
	}

	// Token register: the payload of memory-ordering tokens (value is
	// irrelevant; initialized so no read is ever undefined).
	needsToken := false
	for _, tr := range g.transfers {
		if tr.token && (tr.src == e.part || tr.dst == e.part) {
			needsToken = true
		}
	}
	if needsToken {
		e.prog.Append(isa.Instr{Op: isa.ConstI, Dst: e.reg(tokenTemp), A: isa.NoReg, B: isa.NoReg, ImmI: 0, Edge: -1, Tac: -1})
	}
	// Prime carried-token queues: depth entries of slack before the loop.
	for _, tr := range g.transfers {
		if tr.token && tr.depth > 0 && tr.src == e.part {
			for k := 0; k < tr.depth; k++ {
				e.prog.Append(isa.Instr{Op: isa.Enq, A: e.reg(tokenTemp), B: isa.NoReg, Dst: isa.NoReg, K: tr.class, Q: e.qid(tr.src, tr.dst, tr.class), Edge: tr.edge, Tac: -1})
			}
		}
	}

	iReg := e.reg(e.indexTemp())
	endReg := e.scratch()
	stepReg := e.scratch()
	cmpReg := e.scratch()
	e.prog.Append(isa.Instr{Op: isa.ConstI, Dst: iReg, A: isa.NoReg, B: isa.NoReg, ImmI: l.Start, Edge: -1, Tac: -1})
	e.prog.Append(isa.Instr{Op: isa.ConstI, Dst: endReg, A: isa.NoReg, B: isa.NoReg, ImmI: l.End, Edge: -1, Tac: -1})
	e.prog.Append(isa.Instr{Op: isa.ConstI, Dst: stepReg, A: isa.NoReg, B: isa.NoReg, ImmI: l.Step, Edge: -1, Tac: -1})

	e.prog.Label("loop")
	head := len(e.prog.Instrs)
	e.prog.Append(isa.Instr{Op: isa.Bin, BinOp: ir.Lt, K: ir.I64, Dst: cmpReg, A: iReg, B: endReg, Edge: -1, Tac: -1})
	exitFjp := e.prog.Append(isa.Instr{Op: isa.Fjp, A: cmpReg, B: isa.NoReg, Dst: isa.NoReg, Edge: -1, Tac: -1})

	// Region marks for the observability layer: each iteration of this
	// partition's fiber is region 0 ("iter"), spanning the loop body and
	// the latch. The exit mark on the loop head closes the previous
	// iteration (a no-op on the first pass — the region stack is empty);
	// the one on the loop exit closes the final iteration.
	e.prog.AddMark(head, 0, false, "iter")
	e.prog.AddMark(len(e.prog.Instrs), 0, true, "iter")
	e.emitRegion(0)

	e.prog.Append(isa.Instr{Op: isa.Bin, BinOp: ir.Add, K: ir.I64, Dst: iReg, A: iReg, B: stepReg, Edge: -1, Tac: -1})
	e.prog.Append(isa.Instr{Op: isa.Jp, Tgt: int32(head), Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Edge: -1, Tac: -1})
	e.prog.Instrs[exitFjp].Tgt = int32(len(e.prog.Instrs))
	e.prog.Label("exit")
	e.prog.AddMark(len(e.prog.Instrs), 0, false, "iter")

	// Drain leftover primed tokens so the queues are clean for the
	// epilogue protocol traffic.
	for _, tr := range g.transfers {
		if tr.token && tr.depth > 0 && tr.dst == e.part {
			for k := 0; k < tr.depth; k++ {
				e.prog.Append(isa.Instr{Op: isa.Deq, Dst: e.reg(tokenTemp), A: isa.NoReg, B: isa.NoReg, K: tr.class, Q: e.qid(tr.src, tr.dst, tr.class), Edge: tr.edge, Tac: -1})
			}
		}
	}
}

// tokenTemp is the pseudo temp backing the token payload register.
const tokenTemp = tac.TempID(-1)

func (e *emitter) indexTemp() tac.TempID {
	t, ok := e.g.fn.TempByName(e.g.fn.Loop.Index)
	if !ok {
		panic("outline: loop index temp missing")
	}
	return t
}

func (e *emitter) emitRegion(region int) {
	for _, it := range e.g.items[e.part][region] {
		switch it.kind {
		case itInstr:
			e.emitInstr(e.g.fn.Instrs[it.instr])
		case itEnq:
			tr := it.tr
			src := e.reg(tr.temp) // tokens use the token register (temp None)
			e.prog.Append(isa.Instr{Op: isa.Enq, A: src, B: isa.NoReg, Dst: isa.NoReg, K: tr.class, Q: e.qid(tr.src, tr.dst, tr.class), Edge: tr.edge, Tac: -1})
		case itDeq:
			tr := it.tr
			e.prog.Append(isa.Instr{Op: isa.Deq, Dst: e.reg(tr.temp), A: isa.NoReg, B: isa.NoReg, K: tr.class, Q: e.qid(tr.src, tr.dst, tr.class), Edge: tr.edge, Tac: -1})
		case itBranch:
			condReg := e.reg(it.cond)
			fjp := e.prog.Append(isa.Instr{Op: isa.Fjp, A: condReg, B: isa.NoReg, Dst: isa.NoReg, Edge: -1, Tac: -1})
			if it.thenRegion >= 0 {
				e.markedRegion(it.thenRegion, "then")
			}
			if it.elseRegion >= 0 {
				jp := e.prog.Append(isa.Instr{Op: isa.Jp, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Edge: -1, Tac: -1})
				e.prog.Instrs[fjp].Tgt = int32(len(e.prog.Instrs))
				e.markedRegion(it.elseRegion, "else")
				e.prog.Instrs[jp].Tgt = int32(len(e.prog.Instrs))
			} else {
				e.prog.Instrs[fjp].Tgt = int32(len(e.prog.Instrs))
			}
		}
	}
}

// markedRegion emits a guarded region bracketed by observability marks.
// The enter mark sits on the region's first instruction, the exit mark on
// the first instruction after it — which for a then-without-else or an
// else region is the branch's merge point, shared with the other path.
// The simulator's region stack makes the exit fire only when this region
// actually opened, so the mark is inert on the other path. Regions that
// emit no instructions on this partition get no marks.
func (e *emitter) markedRegion(region int, kind string) {
	start := len(e.prog.Instrs)
	e.emitRegion(region)
	if len(e.prog.Instrs) == start {
		return
	}
	name := fmt.Sprintf("%s#%d", kind, region)
	e.prog.AddMark(start, int32(region), true, name)
	e.prog.AddMark(len(e.prog.Instrs), int32(region), false, name)
}

func (e *emitter) emitInstr(in *tac.Instr) {
	base := isa.Instr{Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Edge: -1, Tac: int32(in.ID)}
	switch in.Op {
	case tac.OpConstF:
		base.Op, base.Dst, base.ImmF = isa.ConstF, e.reg(in.Dst), in.CF
	case tac.OpConstI:
		base.Op, base.Dst, base.ImmI = isa.ConstI, e.reg(in.Dst), in.CI
	case tac.OpMov:
		base.Op, base.Dst, base.A = isa.Mov, e.reg(in.Dst), e.reg(in.A)
	case tac.OpBin:
		base.Op, base.BinOp, base.K = isa.Bin, in.BinOp, in.K
		base.Dst, base.A, base.B = e.reg(in.Dst), e.reg(in.A), e.reg(in.B)
	case tac.OpUn:
		base.Op, base.UnOp, base.K = isa.Un, in.UnOp, in.K
		base.Dst, base.A = e.reg(in.Dst), e.reg(in.A)
	case tac.OpLoad:
		base.Op, base.K, base.Arr = isa.Load, in.K, e.arrID(in.Array)
		base.Dst, base.A = e.reg(in.Dst), e.reg(in.A)
	case tac.OpStore:
		base.Op, base.K, base.Arr = isa.Store, in.K, e.arrID(in.Array)
		base.A, base.B = e.reg(in.A), e.reg(in.B)
	default:
		panic(fmt.Sprintf("outline: cannot emit %s", in.Op))
	}
	e.prog.Append(base)
}
