package outline

import (
	"fmt"
	"sort"

	"fgp/internal/ir"
	"fgp/internal/tac"
)

// planTransfers decides which values cross cores and where the queue
// operations go. It runs to a fixpoint: placing communication inside a
// branch forces both endpoint cores to replicate the branch skeleton, which
// in turn may require transferring the branch condition to a core that did
// not previously need it.
func (g *generator) planTransfers() error {
	g.trByTempDst = map[trKey]*transfer{}
	g.materialized = make([]map[int]bool, g.np)
	g.paramNeeds = make([][]tac.TempID, g.np)
	paramSeen := make([]map[tac.TempID]bool, g.np)
	g.constNeeds = make([]map[int]bool, g.np)
	for p := 0; p < g.np; p++ {
		g.materialized[p] = map[int]bool{0: true}
		paramSeen[p] = map[tac.TempID]bool{}
		g.constNeeds[p] = map[int]bool{}
	}

	needValue := func(t tac.TempID, p int) {
		info := &g.fn.Temps[t]
		if info.IsIndex {
			return // induction variable is replicated
		}
		defs := info.Defs
		if len(defs) == 0 {
			if info.IsParam {
				if !paramSeen[p][t] {
					paramSeen[p][t] = true
					g.paramNeeds[p] = append(g.paramNeeds[p], t)
				}
				return
			}
			// Unreachable for validated IR.
			return
		}
		dp := g.defsPart(t)
		if dp == p {
			return
		}
		// Loop-invariant literals are rematerialized locally instead of
		// being communicated.
		if len(defs) == 1 {
			if op := g.fn.Instrs[defs[0]].Op; op == tac.OpConstF || op == tac.OpConstI {
				g.constNeeds[p][defs[0]] = true
				return
			}
		}
		k := trKey{t, p}
		if _, ok := g.trByTempDst[k]; ok {
			return
		}
		g.trByTempDst[k] = &transfer{temp: t, src: dp, dst: p, class: info.K}
	}

	// Base needs: operand uses, and regions containing instructions.
	for _, in := range g.fn.Instrs {
		p := g.part[in.ID]
		var uses []tac.TempID
		uses = in.Uses(uses)
		for _, u := range uses {
			needValue(u, p)
		}
		for r := in.Region; r > 0; r = g.fn.Regions[r].Parent {
			g.materialized[p][r] = true
		}
	}

	// Memory-ordering tokens (fixed placement, appended to g.transfers).
	g.planTokens()

	// Fixpoint: communication placement regions force materialization;
	// materialized branches force condition availability.
	for round := 0; ; round++ {
		if round > len(g.fn.Regions)+4 {
			return fmt.Errorf("outline: transfer planning did not converge")
		}
		changed := false

		// Recompute placement regions for all transfers.
		for _, tr := range g.trByTempDst {
			region := g.placementRegion(tr)
			if region != tr.region || !tr.planned {
				tr.region = region
				tr.planned = true
				changed = true
			}
		}
		// Communication endpoints materialize the placement region (tokens,
		// already in g.transfers, included).
		materialize := func(tr *transfer) {
			for _, p := range [2]int{tr.src, tr.dst} {
				for r := tr.region; r > 0; r = g.fn.Regions[r].Parent {
					if !g.materialized[p][r] {
						g.materialized[p][r] = true
						changed = true
					}
				}
			}
		}
		for _, tr := range g.trByTempDst {
			materialize(tr)
		}
		for _, tr := range g.transfers {
			materialize(tr)
		}
		// Conditions of materialized regions must be available locally.
		before := len(g.trByTempDst)
		for p := 0; p < g.np; p++ {
			for r := range g.materialized[p] {
				if r == 0 {
					continue
				}
				needValue(g.fn.Regions[r].Cond, p)
			}
		}
		if len(g.trByTempDst) != before {
			changed = true
		}
		if !changed {
			break
		}
	}

	// Freeze the transfer list in a deterministic order and assign edges
	// and anchors. Token transfers come from a deterministic construction
	// and keep the anchors they were built with.
	for _, tr := range g.trByTempDst {
		g.transfers = append(g.transfers, tr)
	}
	sort.SliceStable(g.transfers, func(i, j int) bool {
		a, b := g.transfers[i], g.transfers[j]
		if a.temp != b.temp {
			return a.temp < b.temp
		}
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.enqAfter.stmt < b.enqAfter.stmt
	})
	// A carried token that shares its hardware queue with any other traffic
	// must be primed to exactly one entry: with the enqueue closing the
	// sender's iteration and the dequeue opening the receiver's, the primed
	// stream P·S matches the dequeue stream R·P only for |P| = 1 (the
	// conjugacy matchFIFO verifies). Deeper priming is pure slack, so
	// clamping is always sound; a lone token on its queue keeps full depth.
	keyCount := map[pairKey]int{}
	for _, tr := range g.transfers {
		keyCount[g.keyOf(tr)]++
	}
	for _, tr := range g.transfers {
		if tr.token && tr.depth > 1 && keyCount[g.keyOf(tr)] > 1 {
			tr.depth = 1
		}
	}
	for _, tr := range g.transfers {
		tr.edge = g.newEdge()
		if tr.token {
			continue
		}
		if err := g.anchorTransfer(tr); err != nil {
			return err
		}
	}
	for p := range g.paramNeeds {
		sort.Slice(g.paramNeeds[p], func(i, j int) bool { return g.paramNeeds[p][i] < g.paramNeeds[p][j] })
	}

	// Accumulator parameters: a parameter the loop redefines is a
	// recurrence; its owning partition materializes the initial value in
	// its preheader.
	g.accInit = make([][]tac.TempID, g.np)
	for tid := range g.fn.Temps {
		t := &g.fn.Temps[tid]
		if t.IsParam && len(t.Defs) > 0 {
			p := g.defsPart(tac.TempID(tid))
			g.accInit[p] = append(g.accInit[p], tac.TempID(tid))
		}
	}
	return nil
}

// consumerRegions returns the regions of every consumer of tr's value on
// the destination partition: operand uses, plus the parents of materialized
// branch regions whose condition is the transferred temp.
func (g *generator) consumerRegions(tr *transfer) []int {
	var regions []int
	var uses []tac.TempID
	for _, in := range g.fn.Instrs {
		if g.part[in.ID] != tr.dst {
			continue
		}
		uses = uses[:0]
		uses = in.Uses(uses)
		for _, u := range uses {
			if u == tr.temp {
				regions = append(regions, in.Region)
				break
			}
		}
	}
	for r := range g.materialized[tr.dst] {
		if r != 0 && g.fn.Regions[r].Cond == tr.temp {
			regions = append(regions, g.fn.Regions[r].Parent)
		}
	}
	return regions
}

// placementRegion computes the lowest common control region of the value's
// definitions and all its consumers on the destination core.
func (g *generator) placementRegion(tr *transfer) int {
	region := -1
	join := func(r int) {
		if region < 0 {
			region = r
		} else {
			region = g.fn.LCA(region, r)
		}
	}
	for _, d := range g.fn.Temps[tr.temp].Defs {
		join(g.fn.Instrs[d].Region)
	}
	for _, r := range g.consumerRegions(tr) {
		join(r)
	}
	if region < 0 {
		region = 0
	}
	return region
}

// anchorTransfer fixes where in the placement region's item order the
// enqueue and dequeue go: the enqueue right after the latest item that can
// define the value, the dequeue right before the earliest item that
// consumes it.
func (g *generator) anchorTransfer(tr *transfer) error {
	fnR := g.fn.Regions

	// Enqueue anchor: latest def, projected to the placement region level.
	var enq anchor
	enqSet := false
	for _, d := range g.fn.Temps[tr.temp].Defs {
		in := g.fn.Instrs[d]
		var a anchor
		if in.Region == tr.region {
			a = instrAnchor(in)
		} else {
			sub := g.fn.AncestorAt(in.Region, tr.region)
			if sub < 0 {
				return fmt.Errorf("outline: def of %s not under placement region", g.fn.TempName(tr.temp))
			}
			a = subtreeAnchor(fnR, sub)
		}
		if !enqSet || a.stmt > enq.stmt {
			enq = a
			enqSet = true
		}
	}
	if !enqSet {
		return fmt.Errorf("outline: transfer of def-less temp %s", g.fn.TempName(tr.temp))
	}
	tr.enqAfter = enq

	// Dequeue anchor: earliest consumer, projected to the placement region.
	var deq anchor
	deqSet := false
	consider := func(a anchor) {
		if !deqSet || a.stmt < deq.stmt {
			deq = a
			deqSet = true
		}
	}
	var uses []tac.TempID
	for _, in := range g.fn.Instrs {
		if g.part[in.ID] != tr.dst {
			continue
		}
		uses = uses[:0]
		uses = in.Uses(uses)
		reads := false
		for _, u := range uses {
			if u == tr.temp {
				reads = true
			}
		}
		if !reads {
			continue
		}
		if in.Region == tr.region {
			consider(instrAnchor(in))
		} else if sub := g.fn.AncestorAt(in.Region, tr.region); sub >= 0 {
			consider(subtreeAnchor(fnR, sub))
		}
	}
	for r := range g.materialized[tr.dst] {
		if r == 0 || fnR[r].Cond != tr.temp {
			continue
		}
		// The consumer is the branch item for region r, which sits in r's
		// parent. The placement region is an ancestor of (or equal to) that
		// parent by construction.
		if parent := fnR[r].Parent; parent == tr.region {
			consider(subtreeAnchor(fnR, r))
		} else if sub := g.fn.AncestorAt(parent, tr.region); sub >= 0 {
			consider(subtreeAnchor(fnR, sub))
		}
	}
	if !deqSet {
		return fmt.Errorf("outline: transfer of %s to part %d has no consumer", g.fn.TempName(tr.temp), tr.dst)
	}
	tr.deqBefore = deq
	return nil
}

// class returns whether a kind maps to the FPR or GPR queue class.
func classOf(k ir.Kind) ir.Kind { return k }
