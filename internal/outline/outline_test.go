package outline

import (
	"strings"
	"testing"

	"fgp/internal/codegraph"
	"fgp/internal/cost"
	"fgp/internal/deps"
	"fgp/internal/fiber"
	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/profile"
	"fgp/internal/sim"
	"fgp/internal/tac"
)

// compile builds a loop, partitions it for n cores, and generates code.
func compile(t *testing.T, l *ir.Loop, cores int, opt Options) (*tac.Fn, *codegraph.Result, *Compiled) {
	t.Helper()
	fn, err := tac.Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		t.Fatal(err)
	}
	info, err := deps.Analyze(fn, set)
	if err != nil {
		t.Fatal(err)
	}
	ic := profile.InstrCost(cost.Default(), nil)
	parts, err := codegraph.Merge(info, codegraph.Options{
		Targets: cores, Weights: codegraph.DefaultWeights(), InstrCost: ic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.MachineCores == 0 {
		opt.MachineCores = cores
	}
	if opt.InstrCost == nil {
		opt.InstrCost = ic
	}
	c, err := Generate(fn, info, parts, opt)
	if err != nil {
		t.Fatal(err)
	}
	return fn, parts, c
}

// runAndCheck simulates the compiled programs with edge verification and
// compares the memory image to the interpreter.
func runAndCheck(t *testing.T, l *ir.Loop, c *Compiled, cores int) *sim.Result {
	t.Helper()
	cfg := sim.DefaultConfig(cores)
	cfg.DebugEdges = true
	memImage := BuildMemory(l)
	m, err := sim.New(c.Programs, memImage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, arr := range l.Arrays {
		if arr.K == ir.F64 {
			got := memImage.SnapshotF(arr.Name)
			for i, want := range ref.ArraysF[arr.Name] {
				if got[i] != want {
					t.Fatalf("%s[%d] = %v, want %v", arr.Name, i, got[i], want)
				}
			}
		} else {
			got := memImage.SnapshotI(arr.Name)
			for i, want := range ref.ArraysI[arr.Name] {
				if got[i] != want {
					t.Fatalf("%s[%d] = %v, want %v", arr.Name, i, got[i], want)
				}
			}
		}
	}
	return res
}

func twoChainLoop() *ir.Loop {
	b := ir.NewBuilder("twochain", "i", 0, 32, 1)
	a := make([]float64, 32)
	for i := range a {
		a[i] = float64(i)*0.5 + 1
	}
	b.ArrayF("a", a)
	b.ArrayF("o1", make([]float64, 32))
	b.ArrayF("o2", make([]float64, 32))
	i := b.Idx()
	b.StoreF("o1", i, ir.MulE(ir.AddE(ir.LDF("a", i), ir.F(1)), ir.F(2)))
	b.StoreF("o2", i, ir.SubE(ir.MulE(ir.LDF("a", i), ir.F(3)), ir.F(4)))
	return b.MustBuild()
}

func TestGenerateSingleCore(t *testing.T) {
	l := twoChainLoop()
	_, _, c := compile(t, l, 1, Options{})
	if len(c.Programs) != 1 {
		t.Fatalf("got %d programs", len(c.Programs))
	}
	if c.CommOps != 0 || c.Transfers != 0 {
		t.Errorf("single core must have no communication (comm=%d)", c.CommOps)
	}
	runAndCheck(t, l, c, 1)
}

func TestGenerateTwoCores(t *testing.T) {
	l := twoChainLoop()
	_, parts, c := compile(t, l, 2, Options{})
	if len(parts.Parts) != 2 || len(c.Programs) != 2 {
		t.Fatalf("expected a 2-way split, got %d parts", len(parts.Parts))
	}
	res := runAndCheck(t, l, c, 2)
	// The dispatch/completion protocol must have used both directions.
	if res.PairsUsed < 2 {
		t.Errorf("pairs used = %d, want >= 2 (dispatch + completion)", res.PairsUsed)
	}
}

func TestDriverStructure(t *testing.T) {
	l := twoChainLoop()
	_, _, c := compile(t, l, 2, Options{})
	sec := c.Programs[1]
	// The driver must be exactly: Deq, Fjp, Jr.
	if sec.Instrs[0].Op != isa.Deq || sec.Instrs[1].Op != isa.Fjp || sec.Instrs[2].Op != isa.Jr {
		t.Fatalf("driver prologue wrong:\n%s", sec.Disasm())
	}
	// The Fjp must target a Halt.
	tgt := sec.Instrs[1].Tgt
	if sec.Instrs[tgt].Op != isa.Halt {
		t.Error("driver shutdown path must reach Halt")
	}
	// The function body must end by jumping back to the driver.
	foundReturn := false
	for _, in := range sec.Instrs {
		if in.Op == isa.Jp && in.Tgt == 0 {
			foundReturn = true
		}
	}
	if !foundReturn {
		t.Error("outlined function must return to the driver loop")
	}
}

func TestLiveOutTransfer(t *testing.T) {
	b := ir.NewBuilder("lo", "i", 0, 16, 1)
	data := make([]float64, 16)
	for i := range data {
		data[i] = float64(i)
	}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, 16))
	acc := b.ScalarF("acc", 0)
	_ = acc
	b.LiveOut("acc")
	i := b.Idx()
	b.Def("acc", ir.AddE(b.T("acc"), ir.LDF("a", i)))
	b.StoreF("o", i, ir.MulE(ir.LDF("a", i), ir.F(2)))
	l := b.MustBuild()

	_, _, c := compile(t, l, 2, Options{})
	res := runAndCheck(t, l, c, 2)
	if v, ok := res.LiveOut["acc"]; !ok || v.F != 120 {
		t.Errorf("live-out acc = %+v, want 120", res.LiveOut["acc"])
	}
}

func TestConditionalReplication(t *testing.T) {
	b := ir.NewBuilder("cond", "i", 0, 32, 1)
	data := make([]float64, 32)
	for i := range data {
		data[i] = float64(i%5) - 2
	}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, 32))
	i := b.Idx()
	cnd := b.Def("cnd", ir.GtE(ir.LDF("a", i), ir.F(0)))
	b.If(cnd, func() {
		b.Def("v", ir.MulE(ir.LDF("a", i), ir.MulE(ir.LDF("a", i), ir.LDF("a", i))))
	}, func() {
		b.Def("v", ir.NegE(ir.LDF("a", i)))
	})
	b.StoreF("o", i, b.T("v"))
	l := b.MustBuild()

	for cores := 2; cores <= 4; cores++ {
		_, _, c := compile(t, l, cores, Options{})
		runAndCheck(t, l, c, cores)
	}
}

func TestTokenPriming(t *testing.T) {
	// A swept recurrence through memory: when split, the generated code
	// must prime the token queue with exactly `depth` entries and drain
	// them after the loop.
	b := ir.NewBuilder("sweep", "i", 1, 24, 1)
	src := make([]float64, 25)
	for i := range src {
		src[i] = float64(i % 7)
	}
	b.ArrayF("s", src)
	b.ArrayF("w", make([]float64, 25))
	i := b.Idx()
	prev := b.Def("prev", ir.LDF("w", ir.SubE(i, ir.I(1))))
	heavy := b.Def("heavy", ir.SqrtE(ir.AbsE(ir.MulE(ir.LDF("s", i), ir.LDF("s", ir.AddE(i, ir.I(1)))))))
	b.StoreF("w", i, ir.AddE(ir.MulE(prev, ir.F(0.5)), heavy))
	l := b.MustBuild()

	_, _, c := compile(t, l, 2, Options{})
	runAndCheck(t, l, c, 2)
	// Count enq/deq with equal edge tags appearing outside the loop on
	// paired cores: priming enqueues precede the loop label.
	counted := false
	for _, p := range c.Programs {
		dis := p.Disasm()
		if strings.Contains(dis, "enq") {
			counted = true
		}
	}
	if !counted {
		t.Fatal("no queue traffic generated for the split sweep")
	}
}

func TestGenerateErrors(t *testing.T) {
	l := twoChainLoop()
	fn, err := tac.Lower(l)
	if err != nil {
		t.Fatal(err)
	}
	set, _ := fiber.Partition(fn)
	info, _ := deps.Analyze(fn, set)
	ic := profile.InstrCost(cost.Default(), nil)
	parts, _ := codegraph.Merge(info, codegraph.Options{Targets: 2, Weights: codegraph.DefaultWeights(), InstrCost: ic})
	if _, err := Generate(fn, info, parts, Options{MachineCores: 1}); err == nil {
		t.Error("partitions exceeding machine cores must error")
	}
}

func TestCommOpsCounting(t *testing.T) {
	// A value computed on one side and consumed on the other: at least one
	// transfer; CommOps is always 2x transfers.
	b := ir.NewBuilder("x", "i", 0, 32, 1)
	a := make([]float64, 32)
	for i := range a {
		a[i] = float64(i) + 1
	}
	b.ArrayF("a", a)
	b.ArrayF("o", make([]float64, 32))
	i := b.Idx()
	v := b.Def("v", ir.SqrtE(ir.LDF("a", i)))
	w := b.Def("w", ir.MulE(ir.LDF("a", i), ir.F(3)))
	b.StoreF("o", i, ir.AddE(ir.MulE(v, v), ir.MulE(w, ir.AddE(v, w))))
	l := b.MustBuild()
	_, _, c := compile(t, l, 2, Options{})
	if c.CommOps != 2*c.Transfers {
		t.Errorf("CommOps = %d, Transfers = %d", c.CommOps, c.Transfers)
	}
	runAndCheck(t, l, c, 2)
}

func TestBuildMemoryMatchesArrayIDs(t *testing.T) {
	l := twoChainLoop()
	m := BuildMemory(l)
	for idx, arr := range l.Arrays {
		id, ok := m.ID(arr.Name)
		if !ok || int(id) != idx {
			t.Errorf("array %s: memory id %d, declaration index %d", arr.Name, id, idx)
		}
	}
}

func TestScheduleOptionPreservesSemantics(t *testing.T) {
	l := twoChainLoop()
	_, _, c := compile(t, l, 2, Options{Schedule: true})
	runAndCheck(t, l, c, 2)
}

func TestIdleMachineCores(t *testing.T) {
	// 2 partitions on a 4-core machine: queue IDs must be computed against
	// the machine size, and the run must still verify.
	l := twoChainLoop()
	fn, _ := tac.Lower(l)
	set, _ := fiber.Partition(fn)
	info, _ := deps.Analyze(fn, set)
	ic := profile.InstrCost(cost.Default(), nil)
	parts, _ := codegraph.Merge(info, codegraph.Options{Targets: 2, Weights: codegraph.DefaultWeights(), InstrCost: ic})
	c, err := Generate(fn, info, parts, Options{MachineCores: 4, InstrCost: ic})
	if err != nil {
		t.Fatal(err)
	}
	runAndCheck(t, l, c, 4)
}
