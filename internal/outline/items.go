package outline

import (
	"fmt"
	"sort"

	"fgp/internal/ir"
	"fgp/internal/tac"
)

// itemPos is the total order of items within one region: source statement
// first, then instructions before branch skeletons of the same statement,
// then instruction id.
type itemPos struct {
	stmt int
	rank int // 0 = instruction, 1 = branch
	id   int
	side int // -1 dequeues-before, 0 the item itself, +1 enqueues-after
}

func less(a, b itemPos) bool {
	if a.stmt != b.stmt {
		return a.stmt < b.stmt
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.id != b.id {
		return a.id < b.id
	}
	return a.side < b.side
}

func (g *generator) anchorPos(a anchor, side int) itemPos {
	if a.instr >= 0 {
		return itemPos{stmt: a.stmt, rank: 0, id: a.instr, side: side}
	}
	return itemPos{stmt: a.stmt, rank: 1, id: 1 << 30, side: side}
}

// hoistable reports whether a literal-producing instruction is emitted in
// loop preheaders (loop-invariant rematerialization) rather than in region
// bodies.
func (g *generator) hoistable(in *tac.Instr) bool {
	if in.Op != tac.OpConstF && in.Op != tac.OpConstI {
		return false
	}
	return len(g.fn.Temps[in.Dst].Defs) == 1
}

// buildItems constructs each partition's per-region ordered item lists:
// its own instructions, replicated branch skeletons, and the planned queue
// operations.
func (g *generator) buildItems() error {
	g.items = make([]map[int][]*item, g.np)
	for p := 0; p < g.np; p++ {
		g.items[p] = map[int][]*item{}
	}

	// Base instruction items (literals are hoisted to preheaders).
	for _, in := range g.fn.Instrs {
		p := g.part[in.ID]
		if g.hoistable(in) {
			// The owning part also rematerializes it in the preheader.
			if g.usedByPart(in.Dst, p) {
				g.constNeeds[p][in.ID] = true
			}
			continue
		}
		g.items[p][in.Region] = append(g.items[p][in.Region],
			&item{kind: itInstr, instr: in.ID, stmt: in.Stmt})
	}

	// Branch skeleton items: for every materialized guarded region, its
	// parent gets one branch item per If (then/else regions grouped by the
	// owning statement).
	type ifKey struct {
		parent int
		stmt   int
	}
	for p := 0; p < g.np; p++ {
		branches := map[ifKey]*item{}
		for r := range g.materialized[p] {
			if r == 0 {
				continue
			}
			reg := &g.fn.Regions[r]
			k := ifKey{reg.Parent, reg.Stmt}
			b, ok := branches[k]
			if !ok {
				b = &item{kind: itBranch, thenRegion: -1, elseRegion: -1, cond: reg.Cond, stmt: reg.Stmt}
				branches[k] = b
				g.items[p][reg.Parent] = append(g.items[p][reg.Parent], b)
			}
			if reg.Sense {
				b.thenRegion = r
			} else {
				b.elseRegion = r
			}
			if _, ok := g.items[p][r]; !ok {
				g.items[p][r] = nil // ensure the region list exists
			}
		}
	}

	// Order base items.
	for p := 0; p < g.np; p++ {
		for r := range g.items[p] {
			its := g.items[p][r]
			sort.SliceStable(its, func(i, j int) bool { return less(g.posOf(its[i]), g.posOf(its[j])) })
			g.items[p][r] = its
		}
	}

	// Insert queue operations at their anchors.
	for _, tr := range g.transfers {
		if !tr.token || tr.depth == 0 {
			// Carried tokens legitimately dequeue "before" their enqueue
			// position — the priming entries supply the slack. Everything
			// else must enqueue no later than it dequeues.
			enqPos := g.anchorPos(tr.enqAfter, +1)
			deqPos := g.anchorPos(tr.deqBefore, -1)
			if less(deqPos, enqPos) {
				return fmt.Errorf("outline: transfer of %s (part %d -> %d, token=%v depth=%d, region %d) would dequeue (anchor instr %d/subtree %d stmt %d) before its enqueue (anchor instr %d/subtree %d stmt %d); unsupported cross-branch pattern",
					g.fn.TempName(tr.temp), tr.src, tr.dst, tr.token, tr.depth, tr.region,
					tr.deqBefore.instr, tr.deqBefore.subtree, tr.deqBefore.stmt,
					tr.enqAfter.instr, tr.enqAfter.subtree, tr.enqAfter.stmt)
			}
		}
		if err := g.insertAt(tr.src, tr.region, &item{kind: itEnq, tr: tr, stmt: tr.enqAfter.stmt}, tr.enqAfter, true); err != nil {
			return err
		}
		if err := g.insertAt(tr.dst, tr.region, &item{kind: itDeq, tr: tr, stmt: tr.deqBefore.stmt}, tr.deqBefore, false); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) posOf(it *item) itemPos {
	switch it.kind {
	case itInstr:
		return itemPos{stmt: it.stmt, rank: 0, id: it.instr}
	case itBranch:
		return itemPos{stmt: it.stmt, rank: 1, id: 1 << 30}
	case itEnq:
		return g.anchorPos(it.tr.enqAfter, +1)
	default:
		return g.anchorPos(it.tr.deqBefore, -1)
	}
}

// usedByPart reports whether any instruction of partition p reads temp t.
func (g *generator) usedByPart(t tac.TempID, p int) bool {
	var uses []tac.TempID
	for _, in := range g.fn.Instrs {
		if g.part[in.ID] != p {
			continue
		}
		uses = uses[:0]
		uses = in.Uses(uses)
		for _, u := range uses {
			if u == t {
				return true
			}
		}
	}
	return false
}

// insertAt places a queue-op item immediately after (after=true) or before
// its anchor item in the region list. Sentinel anchors (carried tokens)
// place at the very start or end of the region.
func (g *generator) insertAt(p, region int, it *item, a anchor, after bool) error {
	its := g.items[p][region]
	if a.instr < 0 && a.subtree < 0 {
		if a.stmt >= endOfIteration {
			g.items[p][region] = append(its, it)
		} else {
			its = append([]*item{it}, its...)
			g.items[p][region] = its
		}
		return nil
	}
	idx := -1
	for i, cand := range its {
		if a.instr >= 0 {
			if cand.kind == itInstr && cand.instr == a.instr {
				idx = i
				break
			}
		} else if cand.kind == itBranch && (cand.thenRegion == a.subtree || cand.elseRegion == a.subtree) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("outline: anchor not found for %s on part %d in region %d (instr %d, subtree %d)",
			g.fn.TempName(it.tr.temp), p, region, a.instr, a.subtree)
	}
	pos := idx
	if after {
		pos = idx + 1
	}
	its = append(its, nil)
	copy(its[pos+1:], its[pos:])
	its[pos] = it
	g.items[p][region] = its
	return nil
}

// pairKey identifies one hardware queue at the partition level.
type pairKey struct {
	src, dst int
	class    int // 0 = FPR, 1 = GPR
}

func (g *generator) keyOf(tr *transfer) pairKey {
	c := 0
	if tr.class == ir.I64 {
		c = 1
	}
	return pairKey{tr.src, tr.dst, c}
}

// seqTok is one element of a projected communication sequence: either a
// queue operation (edge >= 0) or a branch marker (stmt of the If).
type seqTok struct {
	edge   int32 // -1 for markers
	marker int   // If statement ordinal for markers
}

// projectSeq walks a region's items and returns the communication sequence
// for one queue: edges of matching enqueues (sender side) or dequeues
// (receiver side), with markers for branch items whose subtrees contain
// matching operations.
func (g *generator) projectSeq(p, region int, key pairKey, sender bool) []seqTok {
	var out []seqTok
	for _, it := range g.items[p][region] {
		switch it.kind {
		case itEnq:
			if sender && g.keyOf(it.tr) == key {
				out = append(out, seqTok{edge: it.tr.edge})
			}
		case itDeq:
			if !sender && g.keyOf(it.tr) == key {
				out = append(out, seqTok{edge: it.tr.edge})
			}
		case itBranch:
			if g.subtreeHasKey(p, it, key, sender) {
				out = append(out, seqTok{edge: -1, marker: it.stmt})
			}
		}
	}
	return out
}

func (g *generator) subtreeHasKey(p int, b *item, key pairKey, sender bool) bool {
	for _, r := range [2]int{b.thenRegion, b.elseRegion} {
		if r < 0 {
			continue
		}
		for _, it := range g.items[p][r] {
			switch it.kind {
			case itEnq:
				if sender && g.keyOf(it.tr) == key {
					return true
				}
			case itDeq:
				if !sender && g.keyOf(it.tr) == key {
					return true
				}
			case itBranch:
				if g.subtreeHasKey(p, it, key, sender) {
					return true
				}
			}
		}
	}
	return false
}

// matchFIFO verifies, for every queue and every control region, that the
// receiver dequeues values in exactly the order the sender enqueues them,
// repairing order differences by hoisting dequeues earlier (always safe:
// a dequeue may block arbitrarily early, and the guard in buildItems
// ensures no dequeue needs to move later).
//
// Carried tokens complicate the top-level region: their queues are primed
// with P slack entries before the loop and drained after it, so the
// dynamic streams are P·S·S·… on the sender and R·R·…·P on the receiver.
// Those agree for every trip count exactly when P·S == R·P (the standard
// conjugacy criterion for x·uⁿ == vⁿ·x with |u| == |v|), which
// degenerates to plain S == R on queues without priming.
func (g *generator) matchFIFO() error {
	keys := map[pairKey]bool{}
	for _, tr := range g.transfers {
		keys[g.keyOf(tr)] = true
	}
	orderedKeys := make([]pairKey, 0, len(keys))
	for k := range keys {
		orderedKeys = append(orderedKeys, k)
	}
	sort.Slice(orderedKeys, func(i, j int) bool {
		a, b := orderedKeys[i], orderedKeys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.class < b.class
	})
	for _, key := range orderedKeys {
		// Collect all regions containing ops for this key on either side.
		regions := map[int]bool{}
		for _, tr := range g.transfers {
			if g.keyOf(tr) == key {
				regions[tr.region] = true
			}
		}
		regionList := make([]int, 0, len(regions))
		for r := range regions {
			regionList = append(regionList, r)
		}
		sort.Ints(regionList)
		for _, r := range regionList {
			if err := g.matchRegion(key, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// primerSeq returns the queue-priming entries emitted in the preheader for
// one queue: every carried token's edge, repeated depth times, in transfer
// order (the order emitBody primes them). Only the top-level region sees
// primed queues.
func (g *generator) primerSeq(key pairKey, region int) []seqTok {
	if region != 0 {
		return nil
	}
	var out []seqTok
	for _, tr := range g.transfers {
		if tr.token && tr.depth > 0 && g.keyOf(tr) == key {
			for k := 0; k < tr.depth; k++ {
				out = append(out, seqTok{edge: tr.edge})
			}
		}
	}
	return out
}

// conjugate reports whether the primed enqueue stream matches the dequeue
// stream for every trip count: p·s·s·… == r·r·…·p, equivalent to the
// finite check p·s == r·p (plain s == r when nothing is primed).
func conjugate(p, s, r []seqTok) bool {
	if len(s) != len(r) {
		return false
	}
	if len(p) == 0 {
		return seqEqual(s, r)
	}
	ps := append(append([]seqTok{}, p...), s...)
	rp := append(append([]seqTok{}, r...), p...)
	return seqEqual(ps, rp)
}

func (g *generator) matchRegion(key pairKey, region int) error {
	se := g.projectSeq(key.src, region, key, true)
	re := g.projectSeq(key.dst, region, key, false)
	primers := g.primerSeq(key, region)
	if conjugate(primers, se, re) {
		return nil
	}
	// Multisets must match even when order differs (primers cancel).
	if !seqSameMultiset(se, re) {
		return fmt.Errorf("outline: queue %d->%d class %d region %d: enqueue tokens %v != dequeue tokens %v",
			key.src, key.dst, key.class, region, se, re)
	}
	// The only receiver order satisfying P·S == R·P is the first |S|
	// tokens of P·S — well-defined only when P·S ends with P (guaranteed
	// by depth-1 clamping plus end-of-iteration carried enqueues; anything
	// else is statically uncompilable on a shared FIFO).
	required := se
	if len(primers) > 0 {
		ps := append(append([]seqTok{}, primers...), se...)
		if !seqEqual(ps[len(se):], primers) {
			return fmt.Errorf("outline: queue %d->%d class %d region %d: primed tokens %v cannot interleave with traffic %v on one FIFO",
				key.src, key.dst, key.class, region, primers, se)
		}
		required = ps[:len(se)]
	}
	// Rebuild the receiver's dequeue placement to the required order with
	// an as-late-as-possible sweep: each dequeue's deadline is its current
	// (before-first-consumer) position; walking the required sequence in
	// reverse, every dequeue lands at the minimum of its own deadline and
	// the slot of its successor. Dequeues only move earlier, each by the
	// least amount that restores FIFO order — placing them any earlier
	// (e.g. hoisting the whole group) can deadlock against values this
	// core must send before the partner can produce the awaited one.
	its := g.items[key.dst][region]
	var kept []*item
	deqOf := map[int32]*item{}
	origSlot := map[int32]int{} // edge -> index into kept where the deq sat
	for _, it := range its {
		if it.kind == itDeq && g.keyOf(it.tr) == key {
			deqOf[it.tr.edge] = it
			origSlot[it.tr.edge] = len(kept)
			continue
		}
		kept = append(kept, it)
	}
	// Positions (in kept) of the branch items this key's traffic flows
	// through, in order; a dequeue whose sender enqueues before marker m
	// must also land before m.
	var markerPos []int
	for i, it := range kept {
		if it.kind == itBranch && g.subtreeHasKey(key.dst, it, key, false) {
			markerPos = append(markerPos, i)
		}
	}
	var senderEdges []int32
	var nextMarker []int // markers already passed when each edge is sent
	seenMarkers := 0
	for _, tok := range required {
		if tok.edge < 0 {
			seenMarkers++
			continue
		}
		senderEdges = append(senderEdges, tok.edge)
		nextMarker = append(nextMarker, seenMarkers)
	}
	slot := make([]int, len(senderEdges))
	bound := len(kept)
	for k := len(senderEdges) - 1; k >= 0; k-- {
		s := origSlot[senderEdges[k]]
		if m := nextMarker[k]; m < len(markerPos) && s > markerPos[m] {
			s = markerPos[m]
		}
		if s > bound {
			s = bound
		}
		slot[k] = s
		bound = s
	}
	var out []*item
	next := 0
	for i := 0; i <= len(kept); i++ {
		for next < len(senderEdges) && slot[next] == i {
			out = append(out, deqOf[senderEdges[next]])
			next++
		}
		if i < len(kept) {
			out = append(out, kept[i])
		}
	}
	g.items[key.dst][region] = out

	// Re-verify.
	se2 := g.projectSeq(key.src, region, key, true)
	re2 := g.projectSeq(key.dst, region, key, false)
	if !conjugate(primers, se2, re2) {
		return fmt.Errorf("outline: queue %d->%d class %d region %d: FIFO repair failed (%v vs %v, primed %v)",
			key.src, key.dst, key.class, region, se2, re2, primers)
	}
	return nil
}

func seqEqual(a, b []seqTok) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func seqSameMultiset(a, b []seqTok) bool {
	ca := map[seqTok]int{}
	for _, t := range a {
		ca[t]++
	}
	for _, t := range b {
		ca[t]--
	}
	for _, n := range ca {
		if n != 0 {
			return false
		}
	}
	return true
}
