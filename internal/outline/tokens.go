package outline

import (
	"sort"

	"fgp/internal/deps"
	"fgp/internal/ir"
	"fgp/internal/tac"
)

// defaultTokenDepth caps queue priming well below the 20-slot queue
// capacity. A deeper real dependence distance only means more available
// slack, so clamping is always sound.
const defaultTokenDepth = 8

// Sentinel anchor positions for carried tokens: the dequeue opens the
// iteration, the enqueue closes it.
const (
	startOfIteration = -1
	endOfIteration   = 1 << 28
)

// tokenReq is one directed memory-ordering requirement between partitions:
// the consumer instruction at iteration i must execute after the producer
// instruction at iteration i-depth (depth 0: same iteration).
type tokenReq struct {
	producer, consumer int
	depth              int
}

// planTokens converts cross-partition memory dependences into
// synchronization-token transfers. It runs after partitions are fixed and
// before the region-materialization fixpoint uses transfer placements.
func (g *generator) planTokens() {
	var reqs []tokenReq
	seen := map[[2]int]int{} // (producer, consumer) -> index into reqs
	cap := g.opt.TokenDepthCap
	if cap <= 0 {
		cap = defaultTokenDepth
	}
	add := func(producer, consumer, depth int) {
		if g.part[producer] == g.part[consumer] {
			return // same core: program order already enforces it
		}
		if depth > cap {
			depth = cap
		}
		key := [2]int{producer, consumer}
		if i, ok := seen[key]; ok {
			if depth < reqs[i].depth {
				reqs[i].depth = depth
			}
			return
		}
		seen[key] = len(reqs)
		reqs = append(reqs, tokenReq{producer, consumer, depth})
	}
	for _, e := range g.info.Edges {
		if e.Kind != deps.Mem {
			continue
		}
		switch {
		case !e.Carried:
			add(e.From, e.To, 0)
		case e.MemKnown && e.MemDist > 0:
			add(e.From, e.To, int(e.MemDist))
		case e.MemKnown && e.MemDist < 0:
			add(e.To, e.From, int(-e.MemDist))
		default:
			// Unknown distance/direction: bound the slip between the two
			// accesses to one iteration in both directions.
			add(e.From, e.To, 1)
			add(e.To, e.From, 1)
		}
	}
	if len(reqs) == 0 {
		return
	}

	// Group by core pair, then coalesce requirements into few tokens per
	// iteration. Same-iteration requirements may only merge while the
	// latest producer still precedes the earliest consumer; carried
	// requirements (depth >= 1) have slack and merge freely.
	byPair := map[[2]int][]tokenReq{}
	for _, r := range reqs {
		k := [2]int{g.part[r.producer], g.part[r.consumer]}
		byPair[k] = append(byPair[k], r)
	}
	var pairKeys [][2]int
	for k := range byPair {
		pairKeys = append(pairKeys, k)
	}
	sort.Slice(pairKeys, func(i, j int) bool {
		a, b := pairKeys[i], pairKeys[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})

	for _, pk := range pairKeys {
		group := byPair[pk]
		var immediate, carried []tokenReq
		for _, r := range group {
			if r.depth == 0 {
				immediate = append(immediate, r)
			} else {
				carried = append(carried, r)
			}
		}
		// Carried: one token for the whole pair, placed canonically — the
		// enqueue closes the sender's iteration and the dequeue opens the
		// receiver's. With depth primed entries this rotates cleanly
		// through the shared FIFO alongside the pair's other traffic.
		if len(carried) > 0 {
			depth := carried[0].depth
			for _, r := range carried[1:] {
				if r.depth < depth {
					depth = r.depth
				}
			}
			g.transfers = append(g.transfers, &transfer{
				temp: tac.None, src: pk[0], dst: pk[1], region: 0, class: ir.I64,
				planned: true, token: true, depth: depth,
				enqAfter:  anchor{instr: -1, subtree: -1, stmt: endOfIteration},
				deqBefore: anchor{instr: -1, subtree: -1, stmt: startOfIteration},
			})
		}
		// Immediate: greedy coalescing, with feasibility tested exactly the
		// way the merged token will be anchored — producers and consumers
		// projected to the group's lowest common region. (Raw positions are
		// not enough: two accesses in opposite branches of one If project
		// onto colliding branch-item anchors.)
		sort.Slice(immediate, func(i, j int) bool {
			pi := g.instrPos(immediate[i].consumer)
			pj := g.instrPos(immediate[j].consumer)
			return less(pi, pj)
		})
		for len(immediate) > 0 {
			producers := []int{immediate[0].producer}
			consumers := []int{immediate[0].consumer}
			var next []tokenReq
			for _, r := range immediate[1:] {
				cp := append(append([]int{}, producers...), r.producer)
				cc := append(append([]int{}, consumers...), r.consumer)
				if g.tokenAnchorsFeasible(cp, cc) {
					producers, consumers = cp, cc
					continue
				}
				next = append(next, r)
			}
			g.emitToken(pk[0], pk[1], 0, producers, consumers)
			immediate = next
		}
	}
}

// tokenAnchorsFeasible reports whether one token covering the given
// producers and consumers can be anchored with its enqueue no later than
// its dequeue, using the same projection emitToken will use.
func (g *generator) tokenAnchorsFeasible(producers, consumers []int) bool {
	region, enq, deq := g.tokenAnchors(producers, consumers)
	_ = region
	return !less(g.anchorPos(deq, -1), g.anchorPos(enq, +1))
}

// tokenAnchors computes the placement region and projected anchors for a
// token over the given accesses.
func (g *generator) tokenAnchors(producers, consumers []int) (int, anchor, anchor) {
	region := -1
	join := func(r int) {
		if region < 0 {
			region = r
		} else {
			region = g.fn.LCA(region, r)
		}
	}
	for _, p := range producers {
		join(g.fn.Instrs[p].Region)
	}
	for _, c := range consumers {
		join(g.fn.Instrs[c].Region)
	}
	project := func(id int) anchor {
		in := g.fn.Instrs[id]
		if in.Region == region {
			return instrAnchor(in)
		}
		return subtreeAnchor(g.fn.Regions, g.fn.AncestorAt(in.Region, region))
	}
	enq := project(producers[0])
	for _, p := range producers[1:] {
		if a := project(p); less(g.anchorPos(enq, +1), g.anchorPos(a, +1)) {
			enq = a
		}
	}
	deq := project(consumers[0])
	for _, c := range consumers[1:] {
		if a := project(c); less(g.anchorPos(a, -1), g.anchorPos(deq, -1)) {
			deq = a
		}
	}
	return region, enq, deq
}

func (g *generator) instrPos(id int) itemPos {
	in := g.fn.Instrs[id]
	return itemPos{stmt: in.Stmt, rank: 0, id: id}
}

// emitToken appends one token transfer with anchors projected to the
// lowest common region of all involved accesses.
func (g *generator) emitToken(src, dst, depth int, producers, consumers []int) {
	region, enq, deq := g.tokenAnchors(producers, consumers)
	g.transfers = append(g.transfers, &transfer{
		temp: tac.None, src: src, dst: dst, region: region, class: ir.I64,
		planned: true, token: true, depth: depth,
		enqAfter: enq, deqBefore: deq,
		prodIDs: producers, consIDs: consumers,
	})
}
