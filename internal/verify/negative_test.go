package verify_test

import (
	"errors"
	"fmt"
	"testing"

	"fgp/internal/core"
	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/kernels"
	"fgp/internal/sim"
	"fgp/internal/verify"
)

// requireCheck asserts that err is a verify.Error containing at least one
// diagnostic of the named check, and that every diagnostic carries its
// structured location fields.
func requireCheck(t *testing.T, err error, check string) verify.Diagnostic {
	t.Helper()
	if err == nil {
		t.Fatalf("verifier accepted a miscompiled program; want a %q rejection", check)
	}
	var ve *verify.Error
	if !errors.As(err, &ve) {
		t.Fatalf("error is not a *verify.Error: %v", err)
	}
	for _, d := range ve.Diags {
		if d.Check == check {
			if d.String() == "" {
				t.Fatalf("diagnostic has no rendering: %+v", d)
			}
			return d
		}
	}
	t.Fatalf("no %q diagnostic in rejection: %v", check, err)
	return verify.Diagnostic{}
}

// ---- hand-built miscompiles (no compiler involved) ----

func prog(core int, instrs ...isa.Instr) *isa.Program {
	nregs := 0
	for i := range instrs {
		if instrs[i].Q == 0 && instrs[i].Op != isa.Enq && instrs[i].Op != isa.Deq {
			instrs[i].Q = -1
		}
		for _, r := range []isa.Reg{instrs[i].Dst, instrs[i].A, instrs[i].B} {
			if int(r)+1 > nregs {
				nregs = int(r) + 1
			}
		}
	}
	return &isa.Program{Core: core, Instrs: instrs, NRegs: nregs}
}

// TestHandBuiltExchangeAccepted sanity-checks the harness: a correct
// two-core value exchange passes.
func TestHandBuiltExchangeAccepted(t *testing.T) {
	q01 := sim.QID(0, 1, ir.I64, 2)
	err := verify.Check(verify.Input{
		Cores: 2, QueueLen: 4,
		Programs: []*isa.Program{
			prog(0,
				isa.Instr{Op: isa.ConstI, Dst: 0, ImmI: 5, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
				isa.Instr{Op: isa.Enq, A: 0, Q: q01, Edge: 1, Dst: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
			),
			prog(1,
				isa.Instr{Op: isa.Deq, Dst: 0, Q: q01, Edge: 1, A: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
			),
		},
	})
	if err != nil {
		t.Fatalf("correct exchange rejected: %v", err)
	}
}

// TestSwappedEnqueueOrderRejected: the sender enqueues edges 1,2 but the
// receiver dequeues 2,1 — the k-th dequeue no longer matches the k-th
// enqueue and the verifier must say so with the queue and edge identified.
func TestSwappedEnqueueOrderRejected(t *testing.T) {
	q01 := sim.QID(0, 1, ir.I64, 2)
	err := verify.Check(verify.Input{
		Cores: 2, QueueLen: 4,
		Programs: []*isa.Program{
			prog(0,
				isa.Instr{Op: isa.ConstI, Dst: 0, ImmI: 5, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
				isa.Instr{Op: isa.Enq, A: 0, Q: q01, Edge: 1, Dst: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Enq, A: 0, Q: q01, Edge: 2, Dst: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
			),
			prog(1,
				isa.Instr{Op: isa.Deq, Dst: 0, Q: q01, Edge: 2, A: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Deq, Dst: 1, Q: q01, Edge: 1, A: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
			),
		},
	})
	d := requireCheck(t, err, "fifo-order")
	if d.Queue != q01 || d.Core != 1 || d.PC != 0 {
		t.Errorf("diagnostic should locate the first mismatched dequeue (core 1, pc 0, q %d), got %+v", q01, d)
	}
}

// TestOverCapacityPrimingRejected: the sender primes 3 standing entries
// into a 2-slot queue before the receiver's loop begins. Steady-state
// occupancy exceeds the queue; the program completes here only because the
// receiver races ahead — exactly the fragile shape the depth bound exists
// to reject.
func TestOverCapacityPrimingRejected(t *testing.T) {
	q01 := sim.QID(0, 1, ir.I64, 2)
	sender := prog(0,
		isa.Instr{Op: isa.ConstI, Dst: 0, ImmI: 0, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
		isa.Instr{Op: isa.Enq, A: 0, Q: q01, Edge: 7, Dst: isa.NoReg, B: isa.NoReg, Tac: -1},
		isa.Instr{Op: isa.Enq, A: 0, Q: q01, Edge: 7, Dst: isa.NoReg, B: isa.NoReg, Tac: -1},
		isa.Instr{Op: isa.Enq, A: 0, Q: q01, Edge: 7, Dst: isa.NoReg, B: isa.NoReg, Tac: -1},
		isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
	)
	// The receiver runs a one-iteration loop (so its drain dequeues land
	// after the loop, not in the pre-loop phase) and then drains.
	receiver := prog(1,
		isa.Instr{Op: isa.ConstI, Dst: 0, ImmI: 1, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
		isa.Instr{Op: isa.Fjp, A: 0, Tgt: 4, Dst: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
		isa.Instr{Op: isa.ConstI, Dst: 0, ImmI: 0, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
		isa.Instr{Op: isa.Jp, Tgt: 1, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
		isa.Instr{Op: isa.Deq, Dst: 1, Q: q01, Edge: 7, A: isa.NoReg, B: isa.NoReg, Tac: -1},
		isa.Instr{Op: isa.Deq, Dst: 1, Q: q01, Edge: 7, A: isa.NoReg, B: isa.NoReg, Tac: -1},
		isa.Instr{Op: isa.Deq, Dst: 1, Q: q01, Edge: 7, A: isa.NoReg, B: isa.NoReg, Tac: -1},
		isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
	)
	err := verify.Check(verify.Input{
		Cores: 2, QueueLen: 2,
		Programs: []*isa.Program{sender, receiver},
	})
	d := requireCheck(t, err, "fifo-depth")
	if d.Queue != q01 {
		t.Errorf("diagnostic should name queue %d, got %+v", q01, d)
	}
}

// TestCyclicWaitsRejected: two cores each dequeue first from the other —
// the classic cross wait. The verifier must report the deadlock and the
// wait-for cycle rather than leaving it to sim.ErrDeadlock at run time.
func TestCyclicWaitsRejected(t *testing.T) {
	q01 := sim.QID(0, 1, ir.I64, 2)
	q10 := sim.QID(1, 0, ir.I64, 2)
	err := verify.Check(verify.Input{
		Cores: 2, QueueLen: 4,
		Programs: []*isa.Program{
			prog(0,
				isa.Instr{Op: isa.ConstI, Dst: 0, ImmI: 1, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
				isa.Instr{Op: isa.Deq, Dst: 1, Q: q10, Edge: 1, A: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Enq, A: 0, Q: q01, Edge: 2, Dst: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
			),
			prog(1,
				isa.Instr{Op: isa.ConstI, Dst: 0, ImmI: 1, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
				isa.Instr{Op: isa.Deq, Dst: 1, Q: q01, Edge: 2, A: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Enq, A: 0, Q: q10, Edge: 1, Dst: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
			),
		},
	})
	d := requireCheck(t, err, "deadlock")
	if d.PC != 1 {
		t.Errorf("diagnostic should point at the blocked dequeue (pc 1), got %+v", d)
	}
}

// TestDroppedDequeueRejected: an enqueue with no matching dequeue leaves
// the queue undrained at halt.
func TestDroppedDequeueRejected(t *testing.T) {
	q01 := sim.QID(0, 1, ir.I64, 2)
	err := verify.Check(verify.Input{
		Cores: 2, QueueLen: 4,
		Programs: []*isa.Program{
			prog(0,
				isa.Instr{Op: isa.ConstI, Dst: 0, ImmI: 5, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
				isa.Instr{Op: isa.Enq, A: 0, Q: q01, Edge: 1, Dst: isa.NoReg, B: isa.NoReg, Tac: -1},
				isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
			),
			prog(1,
				isa.Instr{Op: isa.Halt, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Tac: -1, Edge: -1},
			),
		},
	})
	requireCheck(t, err, "fifo-order")
}

// ---- mutations of real compiler output ----

func compileKernel(t *testing.T, name string, cores int) (*core.Artifact, verify.Input) {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.Compile(k.Build(), core.DefaultOptions(cores))
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	mc := art.MachineConfig()
	return art, verify.Input{
		Programs: art.Compiled.Programs,
		Cores:    mc.Cores,
		QueueLen: mc.QueueLen,
		Fn:       art.Fn,
		Deps:     art.Deps,
		Parts:    art.Parts,
	}
}

func cloneProgram(p *isa.Program) *isa.Program {
	cp := *p
	cp.Instrs = append([]isa.Instr(nil), p.Instrs...)
	return &cp
}

func cloneInput(in verify.Input) verify.Input {
	ps := make([]*isa.Program, len(in.Programs))
	for i, p := range in.Programs {
		ps[i] = cloneProgram(p)
	}
	in.Programs = ps
	return in
}

// tokenEdges returns the edge ids whose enqueue payloads are protocol
// zero-constants — the memory-ordering tokens. A token payload register is
// written only by `ConstI 0` instructions with no TAC provenance.
func tokenEdges(in verify.Input) map[int32]bool {
	edges := map[int32]bool{}
	for _, p := range in.Programs {
		zeroOnly := map[isa.Reg]bool{}
		for _, ins := range p.Instrs {
			if ins.Dst == isa.NoReg {
				continue
			}
			switch {
			case ins.Op == isa.ConstI && ins.ImmI == 0 && ins.Tac < 0:
				if _, seen := zeroOnly[ins.Dst]; !seen {
					zeroOnly[ins.Dst] = true
				}
			case ins.Op == isa.Deq || ins.Op == isa.Enq && ins.Dst == isa.NoReg:
				// queue ops don't define payload registers
			default:
				zeroOnly[ins.Dst] = false
			}
		}
		for _, ins := range p.Instrs {
			if ins.Op == isa.Enq && ins.Edge >= 0 && zeroOnly[ins.A] {
				edges[ins.Edge] = true
			}
		}
	}
	return edges
}

func nopOut(ins *isa.Instr) {
	*ins = isa.Instr{Op: isa.Nop, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Q: -1, Edge: -1, Tac: -1}
}

// TestDroppedTokenRejected erases a memory-ordering token — every queue op
// carrying its edge, on all cores — from real compiler output. Data
// traffic is untouched, so the only thing lost is the cross-core
// happens-before ordering of a memory dependence, and the verifier must
// flag exactly that.
func TestDroppedTokenRejected(t *testing.T) {
	found := false
	for _, k := range kernels.All() {
		_, in := compileKernel(t, k.Name, 4)
		edges := tokenEdges(in)
		if len(edges) == 0 {
			continue
		}
		for e := range edges {
			mut := cloneInput(in)
			for _, p := range mut.Programs {
				for i := range p.Instrs {
					if (p.Instrs[i].Op == isa.Enq || p.Instrs[i].Op == isa.Deq) && p.Instrs[i].Edge == e {
						nopOut(&p.Instrs[i])
					}
				}
			}
			err := verify.Check(mut)
			if verify.HasCheck(err, "token-coverage") {
				found = true
				requireCheck(t, err, "token-coverage")
			} else if err == nil {
				t.Errorf("%s: dropping token edge %d went unnoticed", k.Name, e)
			}
			// Some token edges double as the only traffic keeping two
			// cores in lockstep; dropping those surfaces as a different
			// (still fatal) diagnostic, which is fine — but at least one
			// kernel must produce the specific token-coverage rejection.
		}
	}
	if !found {
		t.Fatal("no kernel produced a token-coverage rejection; the check is dead")
	}
}

// TestMissingCopyOutRejected redirects a live-out dequeue on the primary
// into a scratch register, so the named result register is never written.
func TestMissingCopyOutRejected(t *testing.T) {
	found := false
	for _, k := range kernels.All() {
		_, in := compileKernel(t, k.Name, 4)
		p0 := in.Programs[0]
		victim := -1
		for i, ins := range p0.Instrs {
			if ins.Op == isa.Deq && ins.Dst != isa.NoReg && p0.RegName[ins.Dst] != "" {
				victim = i
				break
			}
		}
		if victim < 0 {
			continue
		}
		mut := cloneInput(in)
		scratch := isa.Reg(mut.Programs[0].NRegs)
		mut.Programs[0].NRegs++
		mut.Programs[0].Instrs[victim].Dst = scratch
		err := verify.Check(mut)
		if verify.HasCheck(err, "copy-out") {
			found = true
			requireCheck(t, err, "copy-out")
		} else if err == nil {
			t.Errorf("%s: redirected live-out dequeue went unnoticed", k.Name)
		}
	}
	if !found {
		t.Fatal("no kernel produced a copy-out rejection; the check is dead")
	}
}

// TestSwappedPayloadRejected swaps the payload registers of two data
// enqueues on the same core, delivering each consumer the other's value.
// The provenance check must notice the consumer receiving a temp it never
// uses on at least one real kernel.
func TestSwappedPayloadRejected(t *testing.T) {
	found := false
	for _, k := range kernels.All() {
		if found {
			break
		}
		_, in := compileKernel(t, k.Name, 4)
		tokens := tokenEdges(in)
		for ci, p := range in.Programs {
			var datas []int
			for i, ins := range p.Instrs {
				if ins.Op == isa.Enq && ins.Edge >= 0 && !tokens[ins.Edge] && ins.A != isa.NoReg {
					datas = append(datas, i)
				}
			}
			for x := 0; x < len(datas) && !found; x++ {
				for y := x + 1; y < len(datas) && !found; y++ {
					i, j := datas[x], datas[y]
					if p.Instrs[i].A == p.Instrs[j].A || p.Instrs[i].K != p.Instrs[j].K {
						continue
					}
					mut := cloneInput(in)
					mp := mut.Programs[ci]
					mp.Instrs[i].A, mp.Instrs[j].A = mp.Instrs[j].A, mp.Instrs[i].A
					err := verify.Check(mut)
					if verify.HasCheck(err, "provenance") {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no payload swap on any kernel produced a provenance rejection; the check is dead")
	}
}

// TestDiagnosticRendering pins the structured fields surfaced to fgpd 422
// responses and fuzz shrink reports.
func TestDiagnosticRendering(t *testing.T) {
	d := verify.Diagnostic{Check: "fifo-order", Core: 1, PC: 12, Queue: 3, Edge: 7, Msg: "boom"}
	want := "fifo-order core=1 pc=12 q=3 edge=7: boom"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
	e := &verify.Error{Diags: []verify.Diagnostic{d}}
	if e.Error() == "" || !errors.As(error(e), new(*verify.Error)) {
		t.Error("Error must render and unwrap as *verify.Error")
	}
	if !verify.HasCheck(fmt.Errorf("wrapped: %w", e), "fifo-order") {
		t.Error("HasCheck must see through wrapping")
	}
	if verify.HasCheck(e, "deadlock") {
		t.Error("HasCheck must not match absent checks")
	}
}
