package verify

import (
	"fmt"
	"math"
	"sort"

	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/isa"
)

// aval is one abstract register value: either a concrete scalar (literals,
// the replicated induction variable, protocol constants and everything
// computed from them) or a symbolic value identified by its provenance —
// the TAC instruction that produced it and the abstract iteration it ran
// in. Values keep their provenance when they travel through queues, which
// is what lets the verifier match a dequeued value against the consumer's
// use set and keep replicated branch decisions consistent across cores.
type aval struct {
	conc bool
	isF  bool
	i    int64
	f    float64
	orig int32 // producing TAC instruction; -1 = unknown
	iter int32
}

func undef() aval { return aval{orig: -1, iter: -1} }

func symval(orig, iter int32, isF bool) aval {
	return aval{isF: isF, orig: orig, iter: iter}
}

func (v aval) zero() bool {
	if v.isF {
		return v.f == 0
	}
	return v.i == 0
}

func (v aval) toValue() interp.Value {
	if v.isF {
		return interp.VF(v.f)
	}
	return interp.VI(v.i)
}

func avalEq(a, b aval) bool {
	if a.conc != b.conc {
		return false
	}
	if a.conc {
		if a.isF != b.isF {
			return false
		}
		if a.isF {
			return math.Float64bits(a.f) == math.Float64bits(b.f)
		}
		return a.i == b.i
	}
	return a.orig >= 0 && a.orig == b.orig && a.iter == b.iter
}

// qentry is one abstract in-flight queue value: the edge tag the enqueue
// carried, the value, and the sender's vector clock at the enqueue (the
// happens-before payload for the token-coverage check).
type qentry struct {
	edge int32
	v    aval
	vc   []int64
}

type blockKind uint8

const (
	notBlocked blockKind = iota
	blockedEmpty
	blockedFull
)

type coreState struct {
	pc     int
	regs   []aval
	vc     []int64
	iter   int32 // main-loop header visits
	phase  int8  // 0 before the loop, 1 inside, 2 after
	halted bool
	block  blockKind
	blockQ int32
}

// okey keys the shared branch-condition oracle: the provenance of the
// condition value. Every core branching on the same dynamic condition sees
// the same key, so replicated conditionals stay consistent per path.
type okey struct {
	orig int32
	iter int32
}

// evRec is one clock-stamped execution of a memory instruction. Worlds keep
// these in an append-only log (not a map) so a fork shares the parent's
// prefix for free; checkTokens folds the log into a lookup map once per
// completed path, with later records for the same key winning — the same
// overwrite semantics a map would have had.
type evRec struct {
	k  evKey
	vc []int64
}

// world is one explored control path of the joint abstract execution.
//
// Forking at every unexplored branch decision makes clone() the verifier's
// hottest operation, so the per-world state is laid out for cheap copying:
// queues and the phase counters are dense slices indexed by queue id
// (capacity-clamped slice headers and flat memcpys instead of map
// iteration), and the event log is shared copy-on-write. Only the branch
// oracle and the sparse primed-edge tallies stay maps.
type world struct {
	cores  []coreState
	queues [][]qentry    // queue id -> in-flight entries
	oracle map[okey]bool // true = condition nonzero (fall through)
	events []evRec       // append-only; shared COW across forks

	// Path-local communication counters, folded into the checker's
	// monotone aggregates when the world finishes.
	prePushW []int // queue id -> enqueues before the sender's loop
	prePopW  []int // queue id -> dequeues before the receiver's loop
	primedW  []map[int32]int
	curPush  []int

	steps int
	dead  bool // a fatal diagnostic fired; skip completion checks
}

func newWorld(c *checker) *world {
	w := &world{
		queues:   make([][]qentry, c.nq),
		oracle:   map[okey]bool{},
		prePushW: make([]int, c.nq),
		prePopW:  make([]int, c.nq),
		primedW:  make([]map[int32]int, c.nq),
		curPush:  make([]int, c.nq),
	}
	n := len(c.in.Programs)
	w.cores = make([]coreState, n)
	for ci, p := range c.in.Programs {
		nregs := p.NRegs
		for _, in := range p.Instrs {
			for _, r := range []isa.Reg{in.Dst, in.A, in.B} {
				if int(r)+1 > nregs {
					nregs = int(r) + 1
				}
			}
		}
		regs := make([]aval, nregs)
		for i := range regs {
			regs[i] = undef()
		}
		w.cores[ci] = coreState{regs: regs, vc: make([]int64, n)}
	}
	return w
}

func (w *world) clone() *world {
	nw := &world{
		cores: make([]coreState, len(w.cores)),
		// The event log is shared copy-on-write: the fork gets a
		// capacity-clamped view of the parent's log, so either side's next
		// append reallocates instead of aliasing. Records and their clock
		// snapshots are immutable once appended.
		events:   w.events[:len(w.events):len(w.events)],
		queues:   make([][]qentry, len(w.queues)),
		oracle:   make(map[okey]bool, len(w.oracle)+1),
		prePushW: append([]int(nil), w.prePushW...),
		prePopW:  append([]int(nil), w.prePopW...),
		curPush:  append([]int(nil), w.curPush...),
		primedW:  make([]map[int32]int, len(w.primedW)),
		steps:    w.steps,
	}
	for i, cs := range w.cores {
		cs.regs = append([]aval(nil), cs.regs...)
		cs.vc = append([]int64(nil), cs.vc...)
		nw.cores[i] = cs
	}
	for q, ents := range w.queues {
		// Same COW scheme as the event log: entries are immutable, dequeues
		// only advance the slice head, and the clamped capacity forces the
		// first post-fork enqueue on either side to reallocate.
		nw.queues[q] = ents[:len(ents):len(ents)]
	}
	for k, v := range w.oracle {
		nw.oracle[k] = v
	}
	for q, m := range w.primedW {
		if m == nil {
			continue
		}
		cm := make(map[int32]int, len(m))
		for e, n := range m {
			cm[e] = n
		}
		nw.primedW[q] = cm
	}
	return nw
}

// run co-executes all cores to completion, deadlock, or a fatal
// diagnostic, then folds counters and runs the per-path completion checks.
func (w *world) run(c *checker) {
	for !w.dead && !c.full() {
		progress := false
		allHalted := true
		for ci := range w.cores {
			if w.cores[ci].halted {
				continue
			}
			allHalted = false
			if w.runCore(c, ci) {
				progress = true
			}
			if w.dead || c.full() {
				break
			}
		}
		if w.dead || c.full() {
			break
		}
		if allHalted {
			w.complete(c)
			break
		}
		if !progress {
			w.deadlock(c)
			break
		}
	}
	w.foldAll(c)
}

// foldAll flushes the world's communication counters into the checker's
// monotone aggregates.
func (w *world) foldAll(c *checker) {
	for ci := range w.cores {
		w.foldIter(c, ci)
	}
	for q, n := range w.prePushW {
		if n > c.prePush[int32(q)] {
			c.prePush[int32(q)] = n
		}
	}
	for q, n := range w.prePopW {
		if n > c.prePop[int32(q)] {
			c.prePop[int32(q)] = n
		}
	}
	for q, m := range w.primedW {
		if m == nil {
			continue
		}
		gm := c.primedEdge[int32(q)]
		if gm == nil {
			gm = map[int32]int{}
			c.primedEdge[int32(q)] = gm
		}
		for e, n := range m {
			if n > gm[e] {
				gm[e] = n
			}
		}
	}
}

// foldIter closes the current iteration's enqueue counts for every queue
// core ci sends on.
func (w *world) foldIter(c *checker, ci int) {
	for q, n := range w.curPush {
		if n == 0 || c.qSrc(int32(q)) != ci {
			continue
		}
		if n > c.maxIterPush[int32(q)] {
			c.maxIterPush[int32(q)] = n
		}
		w.curPush[q] = 0
	}
}

// jumpTo moves core ci to newpc, tracking loop iterations and phases.
func (w *world) jumpTo(c *checker, ci, newpc int) {
	cs := &w.cores[ci]
	li := c.loops[ci]
	if li.head >= 0 {
		if newpc == li.head {
			w.foldIter(c, ci)
			cs.iter++
			if cs.phase == 0 {
				cs.phase = 1
			}
		} else if cs.phase == 1 && (newpc < li.head || newpc > li.latch) {
			w.foldIter(c, ci)
			cs.phase = 2
		}
	}
	cs.pc = newpc
}

func (w *world) read(cs *coreState, r isa.Reg) aval {
	if r == isa.NoReg || int(r) >= len(cs.regs) {
		return undef()
	}
	return cs.regs[r]
}

func (w *world) write(cs *coreState, r isa.Reg, v aval) {
	if r == isa.NoReg || int(r) >= len(cs.regs) {
		return
	}
	cs.regs[r] = v
}

// checkProv validates a symbolic operand against the TAC use-def relation:
// the consuming instruction must actually use the temp the operand's
// producer defines.
func (w *world) checkProv(c *checker, ci, pc int, in *isa.Instr, v aval) {
	if v.conc || v.orig < 0 || in.Tac < 0 || c.in.Fn == nil {
		return
	}
	if int(in.Tac) >= len(c.uses) || int(v.orig) >= len(c.defTemp) {
		return
	}
	dt := c.defTemp[v.orig]
	if dt < 0 {
		return
	}
	for _, u := range c.uses[in.Tac] {
		if u == dt {
			return
		}
	}
	c.report(Diagnostic{Check: "provenance", Core: ci, PC: pc, Queue: -1, Edge: -1,
		Msg: fmt.Sprintf("instruction (tac %d) consumes the value of tac %d (temp %s), which it does not use — a transfer delivered the wrong value",
			in.Tac, v.orig, c.in.Fn.TempName(dt))})
}

func copyVC(vc []int64) []int64 { return append([]int64(nil), vc...) }

// runCore executes core ci until it halts or blocks on a queue. Returns
// whether at least one instruction executed.
func (w *world) runCore(c *checker, ci int) bool {
	cs := &w.cores[ci]
	prog := c.in.Programs[ci]
	li := c.loops[ci]
	executed := false
	for !cs.halted && !w.dead && !c.full() {
		if w.steps >= maxStepsPerWorld {
			c.report(Diagnostic{Check: "structure", Core: ci, PC: cs.pc, Queue: -1, Edge: -1,
				Msg: "abstract execution exceeded its step budget (runaway control flow)"})
			w.dead = true
			return executed
		}
		if cs.pc < 0 || cs.pc >= len(prog.Instrs) {
			c.report(Diagnostic{Check: "structure", Core: ci, PC: cs.pc, Queue: -1, Edge: -1,
				Msg: "control fell off the end of the program"})
			w.dead = true
			return executed
		}
		pc := cs.pc
		in := &prog.Instrs[pc]

		// Blocking checks happen before the instruction is charged.
		switch in.Op {
		case isa.Enq:
			if len(w.queues[in.Q]) >= c.in.QueueLen {
				cs.block, cs.blockQ = blockedFull, in.Q
				return executed
			}
		case isa.Deq:
			if len(w.queues[in.Q]) == 0 {
				cs.block, cs.blockQ = blockedEmpty, in.Q
				return executed
			}
		}
		cs.block = notBlocked
		w.steps++
		executed = true
		cs.vc[ci]++

		switch in.Op {
		case isa.Nop:
			cs.pc++
		case isa.ConstF:
			w.write(cs, in.Dst, aval{conc: true, isF: true, f: in.ImmF})
			cs.pc++
		case isa.ConstI:
			w.write(cs, in.Dst, aval{conc: true, i: in.ImmI})
			cs.pc++
		case isa.Mov:
			v := w.read(cs, in.A)
			w.checkProv(c, ci, pc, in, v)
			if !v.conc && in.Tac >= 0 {
				v = symval(in.Tac, cs.iter, v.isF)
			}
			w.write(cs, in.Dst, v)
			cs.pc++
		case isa.Bin:
			a, b := w.read(cs, in.A), w.read(cs, in.B)
			w.checkProv(c, ci, pc, in, a)
			w.checkProv(c, ci, pc, in, b)
			res := symval(in.Tac, cs.iter, in.K == ir.F64)
			if a.conc && b.conc && a.isF == b.isF {
				if v, err := interp.EvalBin(in.BinOp, a.toValue(), b.toValue()); err == nil {
					res = aval{conc: true, isF: v.K == ir.F64, i: v.I, f: v.F}
				}
			}
			w.write(cs, in.Dst, res)
			cs.pc++
		case isa.Un:
			a := w.read(cs, in.A)
			w.checkProv(c, ci, pc, in, a)
			res := symval(in.Tac, cs.iter, in.K == ir.F64)
			if a.conc {
				if v, err := interp.EvalUn(in.UnOp, a.toValue()); err == nil {
					res = aval{conc: true, isF: v.K == ir.F64, i: v.I, f: v.F}
				}
			}
			w.write(cs, in.Dst, res)
			cs.pc++
		case isa.Load:
			w.checkProv(c, ci, pc, in, w.read(cs, in.A))
			w.write(cs, in.Dst, symval(in.Tac, cs.iter, in.K == ir.F64))
			w.recordEvent(c, ci, in)
			cs.pc++
		case isa.Store:
			w.checkProv(c, ci, pc, in, w.read(cs, in.A))
			w.checkProv(c, ci, pc, in, w.read(cs, in.B))
			w.recordEvent(c, ci, in)
			cs.pc++
		case isa.Enq:
			v := w.read(cs, in.A)
			w.queues[in.Q] = append(w.queues[in.Q], qentry{edge: in.Edge, v: v, vc: copyVC(cs.vc)})
			switch cs.phase {
			case 0:
				w.prePushW[in.Q]++
				pm := w.primedW[in.Q]
				if pm == nil {
					pm = map[int32]int{}
					w.primedW[in.Q] = pm
				}
				pm[in.Edge]++
			case 1:
				w.curPush[in.Q]++
				lp := c.loopPush[in.Q]
				if lp == nil {
					lp = map[int32]bool{}
					c.loopPush[in.Q] = lp
				}
				lp[in.Edge] = true
			}
			cs.pc++
		case isa.Deq:
			ents := w.queues[in.Q]
			e := ents[0]
			w.queues[in.Q] = ents[1:]
			if e.edge != in.Edge {
				c.report(Diagnostic{Check: "fifo-order", Core: ci, PC: pc, Queue: in.Q, Edge: in.Edge,
					Msg: fmt.Sprintf("dequeue expects edge %d but the queue's next entry carries edge %d — enqueue/dequeue sequences disagree on this path",
						in.Edge, e.edge)})
				w.dead = true
				return executed
			}
			for i, t := range e.vc {
				if t > cs.vc[i] {
					cs.vc[i] = t
				}
			}
			w.write(cs, in.Dst, e.v)
			switch cs.phase {
			case 0:
				w.prePopW[in.Q]++
			case 1:
				lp := c.loopPop[in.Q]
				if lp == nil {
					lp = map[int32]bool{}
					c.loopPop[in.Q] = lp
				}
				lp[in.Edge] = true
			}
			cs.pc++
		case isa.Fjp:
			v := w.read(cs, in.A)
			isExit := li.head >= 0 && pc >= li.head && pc <= li.latch && int(in.Tgt) > li.latch
			if isExit && cs.iter > c.nIter {
				// Abstract horizon reached: force the loop exit. Every core
				// replicates the same concrete trip count, so this is
				// consistent with a real execution of nIter iterations.
				w.jumpTo(c, ci, int(in.Tgt))
				continue
			}
			if v.conc {
				if v.zero() {
					w.jumpTo(c, ci, int(in.Tgt))
				} else {
					cs.pc++
				}
				continue
			}
			key := okey{orig: v.orig, iter: v.iter}
			if v.orig < 0 {
				// No provenance to coordinate on (never emitted by the
				// compiler); fork locally with a core/pc-unique key.
				key = okey{orig: -2 - int32(ci)*1009 - int32(pc), iter: cs.iter}
			}
			dec, ok := w.oracle[key]
			if !ok {
				// First time this world meets the decision: default to the
				// fall-through arm, and fork a world taking the other arm —
				// but only on the first *global* encounter of the key. Every
				// decision still gets both arms explored (with all other
				// open decisions at their defaults), while the world count
				// stays linear in distinct decisions instead of exponential
				// in their product. Cross-decision conjunctions are not
				// explored; like the maxWorlds cap, that keeps the pass
				// best-effort in the direction of acceptance.
				if !c.forked[key] {
					c.forked[key] = true
					fork := w.clone()
					fork.oracle[key] = false
					c.stack = append(c.stack, fork)
				}
				w.oracle[key] = true
				dec = true
			}
			if dec {
				cs.pc++ // condition nonzero: fall through
			} else {
				w.jumpTo(c, ci, int(in.Tgt))
			}
		case isa.Jp:
			w.jumpTo(c, ci, int(in.Tgt))
		case isa.Jr:
			v := w.read(cs, in.A)
			if !v.conc || v.isF {
				c.report(Diagnostic{Check: "structure", Core: ci, PC: pc, Queue: -1, Edge: -1,
					Msg: "indirect jump target is not a statically known integer"})
				w.dead = true
				return executed
			}
			if v.i < 0 || v.i >= int64(len(prog.Instrs)) {
				c.report(Diagnostic{Check: "structure", Core: ci, PC: pc, Queue: -1, Edge: -1,
					Msg: fmt.Sprintf("indirect jump target %d out of range", v.i)})
				w.dead = true
				return executed
			}
			w.jumpTo(c, ci, int(v.i))
		case isa.Halt:
			cs.halted = true
		default:
			c.report(Diagnostic{Check: "structure", Core: ci, PC: pc, Queue: -1, Edge: -1,
				Msg: fmt.Sprintf("unknown opcode %s", in.Op)})
			w.dead = true
			return executed
		}
	}
	return executed
}

func (w *world) recordEvent(c *checker, ci int, in *isa.Instr) {
	if in.Tac < 0 || !c.needEv[in.Tac] {
		return
	}
	w.events = append(w.events, evRec{
		k:  evKey{tac: in.Tac, iter: w.cores[ci].iter},
		vc: copyVC(w.cores[ci].vc),
	})
}

// deadlock reports the stuck state: every unfinished core and the
// cross-core wait-for cycle, if one exists.
func (w *world) deadlock(c *checker) {
	waitsOn := map[int]int{}
	for ci := range w.cores {
		cs := &w.cores[ci]
		if cs.halted || cs.block == notBlocked {
			continue
		}
		if cs.block == blockedEmpty {
			waitsOn[ci] = c.qSrc(cs.blockQ)
		} else {
			waitsOn[ci] = c.qDst(cs.blockQ)
		}
	}
	cycle := findCycle(waitsOn)
	for ci := range w.cores {
		cs := &w.cores[ci]
		if cs.halted || cs.block == notBlocked {
			continue
		}
		kind := "empty"
		peer := c.qSrc(cs.blockQ)
		if cs.block == blockedFull {
			kind = "full"
			peer = c.qDst(cs.blockQ)
		}
		edge := int32(-1)
		if cs.pc >= 0 && cs.pc < len(c.in.Programs[ci].Instrs) {
			edge = c.in.Programs[ci].Instrs[cs.pc].Edge
		}
		msg := fmt.Sprintf("core %d blocked on %s queue %d->%d (waits for core %d)",
			ci, kind, c.qSrc(cs.blockQ), c.qDst(cs.blockQ), peer)
		if cycle != "" {
			msg += "; wait-for cycle " + cycle
		}
		c.report(Diagnostic{Check: "deadlock", Core: ci, PC: cs.pc, Queue: cs.blockQ, Edge: edge, Msg: msg})
	}
}

func findCycle(waitsOn map[int]int) string {
	starts := make([]int, 0, len(waitsOn))
	for s := range waitsOn {
		starts = append(starts, s)
	}
	sort.Ints(starts) // deterministic walk order, deterministic diagnostics
	for _, start := range starts {
		seen := map[int]int{} // core -> position in walk
		path := []int{}
		cur := start
		for {
			if pos, ok := seen[cur]; ok {
				cyc := path[pos:]
				s := ""
				for _, n := range cyc {
					s += fmt.Sprintf("%d->", n)
				}
				return s + fmt.Sprint(cyc[0])
			}
			next, ok := waitsOn[cur]
			if !ok {
				break
			}
			seen[cur] = len(path)
			path = append(path, cur)
			cur = next
		}
	}
	return ""
}

// complete runs the per-path end-state checks: drained queues, token
// happens-before coverage, and live-out copy-out.
func (w *world) complete(c *checker) {
	for qi, ents := range w.queues {
		if len(ents) == 0 {
			continue
		}
		q := int32(qi)
		c.report(Diagnostic{Check: "fifo-order", Core: c.qDst(q), PC: -1, Queue: q, Edge: ents[0].edge,
			Msg: fmt.Sprintf("queue %d->%d still holds %d entr%s at halt (head edge %d) — enqueues without matching dequeues",
				c.qSrc(q), c.qDst(q), len(ents), plural(len(ents), "y", "ies"), ents[0].edge)})
	}
	w.checkTokens(c)
	w.checkCopyOut(c)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// checkTokens verifies every cross-core memory dependence is ordered by a
// happens-before chain through the queues at its dependence distance.
func (w *world) checkTokens(c *checker) {
	if len(c.memEdges) == 0 {
		return
	}
	// Fold the append-only event log into a lookup map; a later record for
	// the same (tac, iter) wins, preserving the overwrite semantics the log
	// replaced.
	events := make(map[evKey][]int64, len(w.events))
	for _, r := range w.events {
		events[r.k] = r.vc
	}
	for _, e := range c.memEdges {
		type pair struct {
			aTac, bTac int32
			ak, bk     int32
		}
		var pairs []pair
		switch {
		case !e.Carried:
			for k := int32(1); k <= c.nIter; k++ {
				pairs = append(pairs, pair{int32(e.From), int32(e.To), k, k})
			}
		case e.MemKnown:
			dist := e.MemDist
			from, to := int32(e.From), int32(e.To)
			if dist < 0 {
				dist, from, to = -dist, to, from
			}
			if dist >= int64(c.nIter) {
				continue // structural fallback in staticChecks
			}
			for k := int32(1); k+int32(dist) <= c.nIter; k++ {
				pairs = append(pairs, pair{from, to, k, k + int32(dist)})
			}
		default:
			// Unknown direction and distance: slip must be bounded to one
			// iteration both ways.
			for k := int32(1); k+1 <= c.nIter; k++ {
				pairs = append(pairs, pair{int32(e.From), int32(e.To), k, k + 1})
				pairs = append(pairs, pair{int32(e.To), int32(e.From), k, k + 1})
			}
		}
		for _, p := range pairs {
			va, oka := events[evKey{tac: p.aTac, iter: p.ak}]
			vb, okb := events[evKey{tac: p.bTac, iter: p.bk}]
			if !oka || !okb {
				continue // one side did not execute on this path
			}
			ca := c.instPart[p.aTac]
			if ca < 0 || ca >= len(vb) {
				continue
			}
			if vb[ca] < va[ca] {
				c.report(Diagnostic{Check: "token-coverage", Core: c.instPart[p.bTac], PC: -1, Queue: -1, Edge: -1,
					Msg: fmt.Sprintf("memory dependence tac %d (core %d, iter %d) -> tac %d (core %d, iter %d) is not ordered by any queue chain — missing or misplaced memory-ordering token",
						p.aTac, ca, p.ak, p.bTac, c.instPart[p.bTac], p.bk)})
			}
		}
	}
}

// checkCopyOut verifies the primary ends holding, under each live-out
// name, the value the owning core computed.
func (w *world) checkCopyOut(c *checker) {
	fn := c.in.Fn
	if fn == nil {
		return
	}
	p0 := c.in.Programs[0]
	regByName := map[string]isa.Reg{}
	for r, n := range p0.RegName {
		regByName[n] = r
	}
	for _, name := range fn.Loop.LiveOut {
		t, ok := fn.TempByName(name)
		if !ok {
			continue
		}
		defs := fn.Temps[t].Defs
		r, ok := regByName[name]
		if !ok {
			c.report(Diagnostic{Check: "copy-out", Core: 0, PC: -1, Queue: -1, Edge: -1,
				Msg: fmt.Sprintf("live-out %q has no named register on the primary — its value cannot be extracted", name)})
			continue
		}
		got := w.read(&w.cores[0], r)
		if len(defs) == 0 {
			continue // pure parameter; the primary materialized it
		}
		owner := c.instPart[defs[0]]
		if owner < 0 {
			continue
		}
		if owner == 0 || owner >= len(w.cores) {
			if !got.conc && (got.orig < 0 || !defsContain(defs, got.orig)) {
				c.report(Diagnostic{Check: "copy-out", Core: 0, PC: -1, Queue: -1, Edge: -1,
					Msg: fmt.Sprintf("live-out %q does not hold a value defined by its own assignments", name)})
			}
			continue
		}
		ownerReg := findTempReg(c.in.Programs[owner], defs)
		if ownerReg == isa.NoReg {
			c.report(Diagnostic{Check: "copy-out", Core: owner, PC: -1, Queue: -1, Edge: -1,
				Msg: fmt.Sprintf("live-out %q is owned by core %d but that core never computes it", name, owner)})
			continue
		}
		want := w.read(&w.cores[owner], ownerReg)
		if !avalEq(got, want) {
			c.report(Diagnostic{Check: "copy-out", Core: 0, PC: -1, Queue: -1, Edge: -1,
				Msg: fmt.Sprintf("live-out %q on the primary does not match the final value on owning core %d — missing or stale copy-out", name, owner)})
		}
	}
}

func defsContain(defs []int, orig int32) bool {
	for _, d := range defs {
		if int32(d) == orig {
			return true
		}
	}
	return false
}

// findTempReg locates the register a program allocates for a temp, via any
// of the temp's defining TAC instructions.
func findTempReg(p *isa.Program, defs []int) isa.Reg {
	for _, in := range p.Instrs {
		if in.Tac < 0 || in.Dst == isa.NoReg {
			continue
		}
		for _, d := range defs {
			if in.Tac == int32(d) {
				return in.Dst
			}
		}
	}
	return isa.NoReg
}
