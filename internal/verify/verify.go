// Package verify is the compiler's static translation-validation pass: it
// checks every compiled multi-core program set against the communication
// invariants the paper's splitting transformation must preserve, at compile
// time, before anything is simulated.
//
// The checker symbolically co-executes all per-core programs in an abstract
// machine. Registers hold either concrete values (literals, the replicated
// induction variable, protocol constants) or symbolic values tagged with
// their provenance — the TAC instruction that produced them and the
// iteration it ran in. Queues are bounded FIFOs of (edge tag, value) pairs.
// The main loop of every core is executed for a small, fixed number of
// abstract iterations (enough to observe the steady state and one carried
// boundary); data-dependent branches fork the exploration through a shared
// condition oracle keyed by the condition's provenance, so every core
// replicating a conditional takes the same arm on every explored path —
// exactly the conditional-replication contract of Section III-I. Each
// distinct decision is forked once (both arms run, other decisions at
// their defaults), so the explored path count is linear in the number of
// dynamic branch decisions, not exponential in their product.
//
// Per explored path the checker enforces:
//
//  1. FIFO order: the k-th dequeue on every (sender, receiver, class) queue
//     pops the entry the k-th enqueue pushed (matched by communication-edge
//     tag), and all queues are fully drained at halt.
//  2. Static depth: primed slack plus the per-iteration enqueue count on
//     every queue fits the queue capacity, so steady-state traffic never
//     depends on the receiver draining mid-burst.
//  3. Deadlock freedom: the co-execution is a bounded Kahn process network
//     (deterministic cores, blocking FIFO ops), so if any fair schedule
//     gets stuck, every schedule does; a stuck state is reported with the
//     cross-core wait-for cycle.
//  4. Token coverage: every cross-core memory dependence reported by
//     internal/deps is ordered by a happens-before chain through the
//     queues (tracked with vector clocks), at its required dependence
//     distance.
//  5. Copy-out completeness: after halt the primary holds, under its
//     live-out register names, the same value the owning core computed.
//
// Additionally, every symbolic operand consumed by a compute instruction is
// checked against the TAC function's use-def relation (a value that arrived
// over a queue must be one the consuming instruction actually uses), which
// catches transfers wired to the wrong register even when edge tags agree.
package verify

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fgp/internal/codegraph"
	"fgp/internal/deps"
	"fgp/internal/isa"
	"fgp/internal/tac"
)

// Diagnostic is one structured invariant violation. Core, PC, Queue and
// Edge are -1 when the violation is not tied to that coordinate.
type Diagnostic struct {
	// Check identifies the violated invariant: "fifo-order", "fifo-depth",
	// "deadlock", "token-coverage", "copy-out", "provenance", "structure".
	Check string `json:"check"`
	Core  int    `json:"core"`
	PC    int    `json:"pc"`
	Queue int32  `json:"queue"`
	Edge  int32  `json:"edge"`
	Msg   string `json:"msg"`
}

func (d Diagnostic) String() string {
	var sb strings.Builder
	sb.WriteString(d.Check)
	if d.Core >= 0 {
		fmt.Fprintf(&sb, " core=%d", d.Core)
	}
	if d.PC >= 0 {
		fmt.Fprintf(&sb, " pc=%d", d.PC)
	}
	if d.Queue >= 0 {
		fmt.Fprintf(&sb, " q=%d", d.Queue)
	}
	if d.Edge >= 0 {
		fmt.Fprintf(&sb, " edge=%d", d.Edge)
	}
	sb.WriteString(": ")
	sb.WriteString(d.Msg)
	return sb.String()
}

// Error carries every distinct diagnostic the verifier found (bounded).
type Error struct {
	Diags []Diagnostic
}

func (e *Error) Error() string {
	n := len(e.Diags)
	show := n
	if show > 3 {
		show = 3
	}
	parts := make([]string, 0, show)
	for _, d := range e.Diags[:show] {
		parts = append(parts, d.String())
	}
	s := fmt.Sprintf("verify: %d invariant violation(s): %s", n, strings.Join(parts, "; "))
	if n > show {
		s += fmt.Sprintf("; and %d more", n-show)
	}
	return s
}

// HasCheck reports whether err is (or wraps) a verification Error carrying
// at least one diagnostic of the named check. Callers use it to recognize
// specific rejection classes — e.g. a compile-time "deadlock" rejection in
// a sweep that deliberately explores deadlocking configurations.
func HasCheck(err error, check string) bool {
	var ve *Error
	if !errors.As(err, &ve) {
		return false
	}
	for _, d := range ve.Diags {
		if d.Check == check {
			return true
		}
	}
	return false
}

// Input is everything the verifier needs. Programs, Cores and QueueLen are
// required; Fn, Deps and Parts are optional compiler context that enable
// the token-coverage, copy-out and provenance checks (the FIFO, depth and
// deadlock checks run on the machine code alone).
type Input struct {
	Programs []*isa.Program
	// Cores is the machine core count queue ids were computed against
	// (sim.QID); it may exceed len(Programs).
	Cores int
	// QueueLen is the per-queue capacity (slots).
	QueueLen int

	Fn    *tac.Fn
	Deps  *deps.Info
	Parts *codegraph.Result
}

// maxDiags bounds the number of distinct diagnostics collected before the
// exploration stops early.
const maxDiags = 32

// maxWorlds bounds the number of explored control paths; past it the
// verification is best-effort (no spurious rejection).
const maxWorlds = 4096

// maxStepsPerWorld bounds abstract instructions per explored path.
const maxStepsPerWorld = 1 << 20

// nIterCap bounds the abstract iteration count even when deep carried
// dependences would want more; deeper distances fall back to the
// structural token check.
const nIterCap = 5

// Check validates one compiled program set and returns nil or an *Error
// with structured diagnostics.
func Check(in Input) error {
	if len(in.Programs) == 0 {
		return nil
	}
	if in.Cores < len(in.Programs) {
		in.Cores = len(in.Programs)
	}
	if in.QueueLen <= 0 {
		in.QueueLen = 20
	}
	c := newChecker(in)
	c.explore()
	c.staticChecks()
	if len(c.diags) == 0 {
		return nil
	}
	return &Error{Diags: c.diags}
}

// evKey identifies one dynamic execution of a TAC memory instruction.
type evKey struct {
	tac  int32
	iter int32
}

type checker struct {
	in    Input
	nIter int32
	nq    int // queue-id space size; per-world state is dense over it

	// Derived from Fn/Deps/Parts when present.
	defTemp  []tac.TempID   // TAC instr id -> destination temp (None for stores)
	uses     [][]tac.TempID // TAC instr id -> temps read
	instPart []int          // TAC instr id -> partition (-1 unknown)
	memEdges []deps.Edge    // cross-partition memory dependences
	needEv   map[int32]bool // TAC ids whose executions must be clock-stamped

	// Per-program structure.
	loops []loopInfo

	// Monotone aggregates across worlds (schedule- and path-independent
	// counts folded with max, so one world suffices to establish them and
	// extra worlds can only confirm).
	prePush     map[int32]int            // queue -> enqueues before the sender's loop
	prePop      map[int32]int            // queue -> dequeues before the receiver's loop
	primedEdge  map[int32]map[int32]int  // queue -> edge -> primed entries
	maxIterPush map[int32]int            // queue -> max enqueues in one sender iteration
	loopPush    map[int32]map[int32]bool // queue -> edge pushed during some loop iteration
	loopPop     map[int32]map[int32]bool // queue -> edge popped during some loop iteration

	diags    []Diagnostic
	diagSeen map[string]bool
	worlds   int
	stack    []*world
	// forked records branch-decision keys whose false arm already has a
	// world exploring it, keeping the explored path count linear in
	// distinct decisions rather than exponential in their product.
	forked map[okey]bool
}

type loopInfo struct {
	head  int // -1 when the program has no (non-driver) loop
	latch int
}

func newChecker(in Input) *checker {
	c := &checker{
		in:          in,
		nIter:       2,
		prePush:     map[int32]int{},
		prePop:      map[int32]int{},
		primedEdge:  map[int32]map[int32]int{},
		maxIterPush: map[int32]int{},
		loopPush:    map[int32]map[int32]bool{},
		loopPop:     map[int32]map[int32]bool{},
		diagSeen:    map[string]bool{},
		needEv:      map[int32]bool{},
		forked:      map[okey]bool{},
	}
	if in.Fn != nil {
		fn := in.Fn
		c.defTemp = make([]tac.TempID, len(fn.Instrs))
		c.uses = make([][]tac.TempID, len(fn.Instrs))
		c.instPart = make([]int, len(fn.Instrs))
		for i, inst := range fn.Instrs {
			c.defTemp[i] = inst.Dst
			c.uses[i] = inst.Uses(nil)
			c.instPart[i] = -1
			if in.Parts != nil && inst.Fiber >= 0 && int(inst.Fiber) < len(in.Parts.PartOf) {
				c.instPart[i] = int(in.Parts.PartOf[inst.Fiber])
			}
		}
	}
	if in.Deps != nil && in.Fn != nil && in.Parts != nil {
		maxDist := int64(0)
		for _, e := range in.Deps.Edges {
			if e.Kind != deps.Mem {
				continue
			}
			pf, pt := c.instPart[e.From], c.instPart[e.To]
			if pf < 0 || pt < 0 || pf == pt {
				continue
			}
			c.memEdges = append(c.memEdges, e)
			c.needEv[int32(e.From)] = true
			c.needEv[int32(e.To)] = true
			if e.Carried && e.MemKnown {
				d := e.MemDist
				if d < 0 {
					d = -d
				}
				if d > maxDist {
					maxDist = d
				}
			}
		}
		if maxDist+1 > int64(c.nIter) {
			n := maxDist + 1
			if n > nIterCap {
				n = nIterCap
			}
			c.nIter = int32(n)
		}
	}
	c.loops = make([]loopInfo, len(in.Programs))
	for pi, p := range in.Programs {
		c.loops[pi] = c.findLoop(pi, p)
	}
	// The sim.QID numbering spans Cores^2 queues per value class; hand-built
	// programs in tests may not declare Cores, so widen to the largest queue
	// id any instruction actually names.
	c.nq = in.Cores * in.Cores * 2
	for _, p := range in.Programs {
		for i := range p.Instrs {
			inst := &p.Instrs[i]
			if (inst.Op == isa.Enq || inst.Op == isa.Deq) && int(inst.Q)+1 > c.nq {
				c.nq = int(inst.Q) + 1
			}
		}
	}
	return c
}

// findLoop locates the program's main loop: the unique target of backward
// jumps other than instruction 0 (the secondary driver re-entry).
func (c *checker) findLoop(core int, p *isa.Program) loopInfo {
	li := loopInfo{head: -1, latch: -1}
	for pc, in := range p.Instrs {
		if (in.Op == isa.Jp || in.Op == isa.Fjp) && in.Tgt >= 0 && int(in.Tgt) <= pc && in.Tgt != 0 {
			h := int(in.Tgt)
			if li.head >= 0 && li.head != h {
				c.report(Diagnostic{Check: "structure", Core: core, PC: pc, Queue: -1, Edge: -1,
					Msg: fmt.Sprintf("multiple loop headers (%d and %d); cannot verify", li.head, h)})
				continue
			}
			li.head = h
			if pc > li.latch {
				li.latch = pc
			}
		}
	}
	return li
}

func (c *checker) report(d Diagnostic) {
	if len(c.diags) >= maxDiags {
		return
	}
	key := d.String()
	if c.diagSeen[key] {
		return
	}
	c.diagSeen[key] = true
	c.diags = append(c.diags, d)
}

func (c *checker) full() bool { return len(c.diags) >= maxDiags }

// qSrc / qDst decode the sim.QID queue numbering.
func (c *checker) qSrc(q int32) int { return int(q/2) / c.in.Cores }
func (c *checker) qDst(q int32) int { return int(q/2) % c.in.Cores }

// explore runs the joint abstract execution over every control path.
func (c *checker) explore() {
	if c.full() {
		return
	}
	c.stack = []*world{newWorld(c)}
	for len(c.stack) > 0 && c.worlds < maxWorlds && !c.full() {
		w := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		c.worlds++
		w.run(c)
	}
}

// staticChecks evaluates the path-independent invariants accumulated
// during exploration: the per-iteration depth bound and the structural
// token fallback for dependence distances beyond the abstract horizon.
func (c *checker) staticChecks() {
	// (2) standing primed entries must fit in the queue. Per-iteration
	// data traffic larger than capacity is fine — enqueue blocks and the
	// receiver drains concurrently — but primed tokens occupy slots for a
	// full dependence distance, so a priming burst beyond capacity means
	// steady-state occupancy exceeds the queue and the program runs only
	// if the receiver happens to race ahead during priming. The compiler's
	// own TokenDepthCap promises never to emit this.
	qids := make([]int32, 0, len(c.prePush))
	for q := range c.prePush {
		qids = append(qids, q)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	for _, q := range qids {
		primed := c.prePush[q] - c.prePop[q]
		if primed > c.in.QueueLen {
			c.report(Diagnostic{Check: "fifo-depth", Core: c.qSrc(q), PC: -1, Queue: q, Edge: -1,
				Msg: fmt.Sprintf("queue %d->%d holds %d primed entries before the loop but capacity is %d; standing depth exceeds the queue",
					c.qSrc(q), c.qDst(q), primed, c.in.QueueLen)})
		}
	}

	// (4, far distances) carried dependences beyond the abstract horizon:
	// require a primed token edge with slack within the dependence
	// distance between the two partitions.
	for _, e := range c.memEdges {
		if !e.Carried || !e.MemKnown {
			continue
		}
		dist := e.MemDist
		from, to := e.From, e.To
		if dist < 0 {
			dist, from, to = -dist, e.To, e.From
		}
		if dist < int64(c.nIter) {
			continue // covered exactly by the happens-before check
		}
		sender, receiver := c.instPart[from], c.instPart[to]
		if c.hasTokenEdge(sender, receiver, dist) {
			continue
		}
		c.report(Diagnostic{Check: "token-coverage", Core: sender, PC: -1, Queue: -1, Edge: -1,
			Msg: fmt.Sprintf("carried memory dependence %d->%d (distance %d) crosses cores %d->%d with no primed token edge of slack <= %d",
				e.From, e.To, e.MemDist, c.instPart[e.From], c.instPart[e.To], dist)})
	}
}

// hasTokenEdge reports whether some queue from sender to receiver carries a
// primed per-iteration edge with 1..dist entries of slack.
func (c *checker) hasTokenEdge(sender, receiver int, dist int64) bool {
	for q, edges := range c.primedEdge {
		if c.qSrc(q) != sender || c.qDst(q) != receiver {
			continue
		}
		for e, primed := range edges {
			if primed < 1 || int64(primed) > dist {
				continue
			}
			if c.loopPush[q][e] && c.loopPop[q][e] {
				return true
			}
		}
	}
	return false
}
