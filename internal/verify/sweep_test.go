package verify_test

import (
	"fmt"
	"testing"

	"fgp/internal/core"
	"fgp/internal/kernels"
	"fgp/internal/verify"
)

// TestKernelSweep is the acceptance gate for the verifier: every
// evaluation kernel, at every core count, with and without speculation and
// normalization, must compile to programs the static verifier accepts.
// core.Compile already runs verify.Check internally and fails the compile
// on rejection; the explicit Check call below additionally exercises the
// public entry point on the finished artifact.
func TestKernelSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel sweep is not a -short test")
	}
	for _, k := range kernels.All() {
		for _, cores := range []int{2, 3, 4} {
			for _, spec := range []bool{false, true} {
				for _, norm := range []int{0, 3} {
					name := fmt.Sprintf("%s/c%d/spec=%v/norm=%d", k.Name, cores, spec, norm)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						opt := core.DefaultOptions(cores)
						opt.Speculate = spec
						opt.NormalizeOps = norm
						art, err := core.Compile(k.Build(), opt)
						if err != nil {
							t.Fatalf("compile: %v", err)
						}
						mc := art.MachineConfig()
						if err := verify.Check(verify.Input{
							Programs: art.Compiled.Programs,
							Cores:    mc.Cores,
							QueueLen: mc.QueueLen,
							Fn:       art.Fn,
							Deps:     art.Deps,
							Parts:    art.Parts,
						}); err != nil {
							t.Fatalf("verify: %v", err)
						}
					})
				}
			}
		}
	}
}

// TestSweepWithoutContext checks the verifier also accepts every kernel
// when given only the programs (no TAC function, dependence info or
// partition map) — the degraded mode used on bare program inputs.
func TestSweepWithoutContext(t *testing.T) {
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			art, err := core.Compile(k.Build(), core.DefaultOptions(4))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			mc := art.MachineConfig()
			if err := verify.Check(verify.Input{
				Programs: art.Compiled.Programs,
				Cores:    mc.Cores,
				QueueLen: mc.QueueLen,
			}); err != nil {
				t.Fatalf("verify without context: %v", err)
			}
		})
	}
}
