// Metrics under contention: 32 goroutines hammering /metrics and
// Snapshot() while a mixed load burst runs. CI executes this under -race;
// the assertions here pin the semantic half of the contract — counters are
// monotonic within an observer, quantiles stay ordered, and the final
// totals reconcile exactly with the traffic the clients issued.

package service

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"fgp/internal/ir"
)

func TestMetricsUnderContention(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 1024})

	var (
		stop        atomic.Bool
		issuedRuns  atomic.Int64
		issuedBatch atomic.Int64
		loadWG      sync.WaitGroup
	)
	// Load burst: hits, cold compiles, and batches, until the readers are
	// done observing.
	for g := 0; g < 8; g++ {
		g := g
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			for i := 0; !stop.Load(); i++ {
				switch i % 3 {
				case 0, 1:
					code, _, _ := postRun(t, ts, RunRequest{Kernel: "sphot-1", Cores: 2})
					if code == 200 || code == 429 {
						issuedRuns.Add(1)
					}
				case 2:
					wire, err := ir.MarshalLoop(uniqueLoop(int64(g*10_000+i), 64))
					if err != nil {
						t.Error(err)
						return
					}
					code, _, trailer := postBatch(t, ts, BatchRequest{Items: []RunRequest{
						{Kernel: "irs-1", Cores: 2},
						{IR: wire, Cores: 2},
					}})
					if code == 200 && trailer != nil {
						issuedBatch.Add(1)
					}
				}
			}
		}()
	}

	// 32 observers: each alternates the HTTP endpoint and the in-process
	// snapshot, asserting the counters it sees never move backwards.
	var readWG sync.WaitGroup
	for r := 0; r < 32; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			var last Metrics
			for i := 0; i < 40; i++ {
				var m Metrics
				if i%2 == 0 {
					m = s.Snapshot()
				} else {
					resp, err := http.Get(ts.URL + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					err = json.NewDecoder(resp.Body).Decode(&m)
					resp.Body.Close()
					if err != nil {
						t.Errorf("decoding /metrics: %v", err)
						return
					}
				}
				for _, c := range []struct {
					name      string
					prev, cur int64
				}{
					{"requests", last.Requests, m.Requests},
					{"batches", last.Batches, m.Batches},
					{"batch_items", last.BatchItems, m.BatchItems},
					{"cache lookups", last.Cache.Hits + last.Cache.Misses, m.Cache.Hits + m.Cache.Misses},
					{"artifact resolutions", last.Artifacts.MemHits + last.Artifacts.DiskHits + last.Artifacts.Compiles,
						m.Artifacts.MemHits + m.Artifacts.DiskHits + m.Artifacts.Compiles},
					{"latency count", last.Latency.Count, m.Latency.Count},
				} {
					if c.cur < c.prev {
						t.Errorf("%s moved backwards: %d -> %d", c.name, c.prev, c.cur)
					}
				}
				if m.Latency.Count > 0 &&
					(m.Latency.P50Ms > m.Latency.P99Ms || m.Latency.P99Ms > m.Latency.P999Ms) {
					t.Errorf("quantiles out of order: p50=%.3f p99=%.3f p999=%.3f",
						m.Latency.P50Ms, m.Latency.P99Ms, m.Latency.P999Ms)
				}
				last = m
			}
		}()
	}
	readWG.Wait()
	stop.Store(true)
	loadWG.Wait()

	// Final reconciliation: the server's totals match what clients issued.
	m := s.Snapshot()
	wantReqs := issuedRuns.Load() + issuedBatch.Load()
	if m.Requests != wantReqs {
		t.Errorf("server counted %d requests, clients issued %d", m.Requests, wantReqs)
	}
	if m.Batches != issuedBatch.Load() || m.BatchItems != 2*issuedBatch.Load() {
		t.Errorf("batches=%d items=%d, want %d/%d", m.Batches, m.BatchItems,
			issuedBatch.Load(), 2*issuedBatch.Load())
	}
	if m.Cache.Hits == 0 || m.Cache.Misses == 0 {
		t.Errorf("burst produced hits=%d misses=%d; both paths must run", m.Cache.Hits, m.Cache.Misses)
	}
}
