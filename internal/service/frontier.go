// The /v1/frontier endpoint: sweep the machine design space for one loop
// and answer with the Pareto frontier of speedup versus hardware cost —
// or, in inverse-query mode (target_speedup), the minimal configuration
// that reaches a target.
//
// A swept surface is expensive (a budgeted grid of full compile-and-
// simulate runs), so it is content-addressed like an artifact: sha256 over
// the normalized grid, the partitioner, and the canonical loop bytes, then
// cached through the same two tiers — the in-memory singleflight cache,
// with the on-disk store underneath ("srf" kind). Repeating a query, or
// asking a different question of the same surface (another target_speedup),
// costs zero compiles and zero simulations; a restarted daemon sharing the
// store directory answers from disk.

package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"fgp/internal/core"
	"fgp/internal/experiments"
	"fgp/internal/ir"
	"fgp/internal/kernels"
	"fgp/internal/machspace"
)

// FrontierRequest is the /v1/frontier body. The loop selector works
// exactly like /v1/run: exactly one of Kernel, IR, or Source.
type FrontierRequest struct {
	Kernel string          `json:"kernel,omitempty"`
	IR     json.RawMessage `json:"ir,omitempty"`
	Source string          `json:"source,omitempty"`

	// Grid is the machine-space grid to sweep; absent axes are filled with
	// the paper defaults. Omitting the grid sweeps machspace.DefaultGrid
	// (queue capacity x transfer latency x enqueue cost at 4 cores).
	Grid *machspace.Grid `json:"grid,omitempty"`
	// TargetSpeedup, when > 0, turns the query inverse: answer with the
	// cheapest configuration whose speedup meets the target, or a
	// structured 404 naming the best the surface reaches.
	TargetSpeedup float64 `json:"target_speedup,omitempty"`
	// Partitioner selects the partition selector for every swept point
	// (same lever and spelling rules as /v1/run).
	Partitioner string `json:"partitioner,omitempty"`
	// TimeoutMs tightens (never extends) the server's per-request budget.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// FrontierResponse is the /v1/frontier result.
type FrontierResponse struct {
	Kernel string         `json:"kernel"`
	Grid   machspace.Grid `json:"grid"`
	// Points and Rejected count the swept grid: Rejected cells carried a
	// machine the pipeline refused (structured rejection in the surface)
	// and are excluded from the frontier.
	Points   int `json:"points"`
	Rejected int `json:"rejected"`
	// SurfaceAddress is the surface's content address; CachedSurface
	// reports whether this request was served from the cache (memory or
	// disk) rather than paying for the sweep.
	SurfaceAddress string `json:"surface_address"`
	CachedSurface  bool   `json:"cached_surface"`
	// Frontier is the Pareto set: hardware cost ascending, speedup
	// strictly ascending along it.
	Frontier []machspace.PointResult `json:"frontier"`
	// Minimal is the inverse-query answer (only with target_speedup).
	Minimal *machspace.PointResult `json:"minimal,omitempty"`
}

// FrontierMiss is the structured 404 body for an unreachable
// target_speedup: the target, the best the surface reaches, and where.
type FrontierMiss struct {
	Error         string                 `json:"error"`
	TargetSpeedup float64                `json:"target_speedup"`
	BestSpeedup   float64                `json:"best_speedup"`
	Best          *machspace.PointResult `json:"best,omitempty"`
}

// surfaceAddress content-addresses a swept surface. The grid is
// normalized before hashing, so two spellings of one sweep — axes listed
// or defaulted — share an address; the version tag isolates the encoding
// from future surface-shape changes.
func surfaceAddress(loopBytes []byte, partitioner string, g machspace.Grid) string {
	h := sha256.New()
	key, _ := json.Marshal(struct {
		V           string         `json:"v"`
		Partitioner string         `json:"partitioner"`
		Grid        machspace.Grid `json:"grid"`
	}{"frontier1", partitioner, g}) // fixed struct, cannot fail
	h.Write(key)
	h.Write([]byte{0})
	h.Write(loopBytes)
	return hex.EncodeToString(h.Sum(nil))
}

// encodeSurface / decodeSurface carry a swept surface through the on-disk
// store's []byte interface.
func encodeSurface(v any) ([]byte, error) {
	return json.Marshal(v.(*machspace.Surface))
}

func decodeSurface(data []byte) (any, error) {
	var s machspace.Surface
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// handleFrontierGet serves the query-parameter spelling:
// GET /v1/frontier?kernel=NAME[&target_speedup=2.0][&partitioner=search].
// It sweeps the default grid; custom grids need the POST body.
func (s *Server) handleFrontierGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := FrontierRequest{
		Kernel:      q.Get("kernel"),
		Partitioner: q.Get("partitioner"),
	}
	if req.Kernel == "" {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, "missing kernel parameter")
		return
	}
	if ts := q.Get("target_speedup"); ts != "" {
		v, err := strconv.ParseFloat(ts, 64)
		if err != nil {
			s.met.errors.Add(1)
			httpError(w, http.StatusBadRequest, "target_speedup must be a number")
			return
		}
		req.TargetSpeedup = v
	}
	s.serveFrontier(w, r, &req)
}

func (s *Server) handleFrontierPost(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req FrontierRequest
	if err := dec.Decode(&req); err != nil {
		s.met.errors.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	s.serveFrontier(w, r, &req)
}

// serveFrontier validates the query, then sweeps (or re-reads) the surface
// under admission control and renders the frontier.
func (s *Server) serveFrontier(w http.ResponseWriter, r *http.Request, req *FrontierRequest) {
	loop, ae := s.resolveLoop(req.Kernel, req.IR, req.Source)
	if ae != nil {
		writeJSON(w, ae.status, ae.body)
		return
	}

	// Everything below rejects before admission: a malformed grid must
	// cost a 400, not a worker slot.
	grid := machspace.DefaultGrid()
	if req.Grid != nil {
		grid = *req.Grid
	}
	grid, err := grid.Normalize(s.cfg.MaxCores)
	if err != nil {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if n := grid.Size(); n > machspace.DefaultBudget {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest,
			(&machspace.BudgetError{Points: n, Budget: machspace.DefaultBudget}).Error())
		return
	}
	if req.TargetSpeedup < 0 {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, "target_speedup must be >= 0")
		return
	}
	partitioner := req.Partitioner
	if partitioner == core.PartitionerHeuristic {
		partitioner = "" // one content address for both spellings of the default
	}
	if partitioner != "" && partitioner != core.PartitionerSearch {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("partitioner must be one of %v", core.Partitioners()))
		return
	}

	loopBytes, err := ir.MarshalLoop(loop)
	if err != nil {
		s.met.errors.Add(1)
		httpError(w, http.StatusInternalServerError, "canonicalizing ir: "+err.Error())
		return
	}
	addr := surfaceAddress(loopBytes, partitioner, grid)

	s.admit(w, r, time.Duration(req.TimeoutMs)*time.Millisecond, func(ctx context.Context) {
		// The sweep fill runs detached, bounded by the server budget: other
		// requests may be waiting on the same surface (see execute). swept
		// records whether this request actually paid for the sweep: a
		// memory hit skips the fill entirely, a disk hit runs the fill but
		// not this closure. Only this request's own closure writes it, so
		// there is no race with concurrent fillers.
		swept := false
		val, hit, err := s.cache.do(ctx, "srf:"+addr, s.tieredFill("srf", addr,
			func() (any, error) {
				swept = true
				fctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
				defer cancel()
				// A fresh runner per surface fill: the runner's artifact
				// cache is keyed by kernel *name*, and posted IR loops
				// choose their own names — sharing a runner across requests
				// would alias them. Reuse happens one level up, at the
				// content-addressed surface.
				k := kernels.Wrap(loop.Name, func() *ir.Loop { return loop })
				return machspace.Sweep(fctx, experiments.NewRunner(), k, grid, machspace.Options{
					Workers:      1, // the request holds one worker slot
					MaxCores:     s.cfg.MaxCores,
					Partitioner:  partitioner,
					SearchSeed:   serverSearchSeed,
					SearchBudget: serverSearchBudget,
				})
			},
			encodeSurface, decodeSurface))
		if err != nil {
			s.failRun(w, "sweep", err)
			return
		}
		if hit {
			s.met.artMemHits.Add(1)
		}
		cached := hit || !swept // memory hit, or the disk tier served the fill
		surf := val.(*machspace.Surface)

		resp := FrontierResponse{
			Kernel:         surf.Kernel,
			Grid:           surf.Grid,
			Points:         len(surf.Points),
			Rejected:       surf.Rejected(),
			SurfaceAddress: addr,
			CachedSurface:  cached,
			Frontier:       surf.Pareto(),
		}
		if req.TargetSpeedup > 0 {
			pt, ok := surf.Minimal(req.TargetSpeedup)
			if !ok {
				miss := FrontierMiss{
					Error: fmt.Sprintf("no swept configuration reaches speedup %.2f",
						req.TargetSpeedup),
					TargetSpeedup: req.TargetSpeedup,
				}
				if best, ok := surf.Best(); ok {
					miss.BestSpeedup = best.Speedup
					miss.Best = &best
				}
				writeJSON(w, http.StatusNotFound, miss)
				return
			}
			resp.Minimal = &pt
		}
		writeJSON(w, http.StatusOK, resp)
	})
}
