// POST /v1/batch: many (kernel, levers) pairs under one admission ticket,
// results streamed back as NDJSON lines in completion order.
//
// Semantics:
//
//   - One ticket. The whole batch passes admission control once — one
//     queue slot, one worker slot, one min(server, request) deadline. A
//     full queue sheds the entire batch with 429 before any work starts; a
//     client gone while queued is one 499.
//   - Per-item isolation. Items execute independently: a malformed item is
//     its own 400 line, a trapping or verifier-rejected kernel its own 422
//     line, and neither disturbs its siblings. A panic anywhere in one
//     item's pipeline is contained to that item's line.
//   - Join-safe streaming. Results arrive in completion order, not
//     submission order; every line carries the item's index so the client
//     joins them back. The final line is a trailer ({"done":true, ...})
//     with outcome counts — its presence distinguishes a complete batch
//     from a truncated stream.
//   - Shared deadline. The batch deadline covers all items; items still
//     running (or not yet started) when it passes report 504/499 lines and
//     count as canceled in the trailer. Identical items in one batch (or
//     across concurrent batches) deduplicate through the singleflight
//     compile cache: the artifact is compiled once.
//
// The HTTP status is decided before the first item completes, so it is 200
// whenever the batch was admitted; per-item status lives in the lines.

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fgp/internal/frontend"
	"fgp/internal/verify"
)

// BatchRequest is the /v1/batch body.
type BatchRequest struct {
	// Items are executed with per-item isolation; each produces one result
	// line. An item's own TimeoutMs tightens the batch deadline for that
	// item only.
	Items []RunRequest `json:"items"`
	// TimeoutMs tightens (never extends) the server's per-request budget
	// for the whole batch.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Parallelism bounds how many items run concurrently; 0 means the
	// server's configured batch parallelism. It is clamped, never refused.
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchItemResult is one NDJSON line of the /v1/batch response stream.
type BatchItemResult struct {
	Index             int                   `json:"index"`
	Status            int                   `json:"status"`
	Result            *RunResponse          `json:"result,omitempty"`
	Error             string                `json:"error,omitempty"`
	Diagnostics       []verify.Diagnostic   `json:"diagnostics,omitempty"`
	SourceDiagnostics []frontend.Diagnostic `json:"source_diagnostics,omitempty"`
}

// BatchTrailer is the final NDJSON line: outcome counts for the whole
// batch. A stream without it was truncated (connection lost mid-batch).
type BatchTrailer struct {
	Done      bool    `json:"done"`
	Items     int     `json:"items"`
	OK        int     `json:"ok"`
	Failed    int     `json:"failed"`
	Canceled  int     `json:"canceled"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req BatchRequest
	if err := dec.Decode(&req); err != nil {
		s.met.errors.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, "batch carries no items")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("batch carries %d items, limit %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}

	s.admit(w, r, time.Duration(req.TimeoutMs)*time.Millisecond, func(ctx context.Context) {
		s.met.batches.Add(1)
		s.runBatch(ctx, w, &req)
	})
}

// runBatch executes an admitted batch and streams its result lines.
func (s *Server) runBatch(ctx context.Context, w http.ResponseWriter, req *BatchRequest) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var wmu sync.Mutex
	writeLine := func(v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return // fixed structs; cannot happen
		}
		wmu.Lock()
		defer wmu.Unlock()
		_, _ = w.Write(append(data, '\n'))
		if flusher != nil {
			flusher.Flush() // stream each line; the client may act on early results
		}
	}

	par := req.Parallelism
	if par <= 0 || par > s.cfg.BatchParallelism {
		par = s.cfg.BatchParallelism
	}
	if par > len(req.Items) {
		par = len(req.Items)
	}

	var ok, failed, canceled atomic.Int64
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s.met.items.Add(1)

			ictx := ctx
			if ms := req.Items[i].TimeoutMs; ms > 0 {
				var cancel context.CancelFunc
				ictx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
				defer cancel()
			}
			if err := ictx.Err(); err != nil {
				// The batch died before this item started; report without
				// touching the pipeline.
				canceled.Add(1)
				status := statusClientClosedRequest
				if errors.Is(err, context.DeadlineExceeded) {
					status = http.StatusGatewayTimeout
				}
				writeLine(BatchItemResult{Index: i, Status: status, Error: "batch " + err.Error()})
				return
			}

			resp, ae := s.execute(ictx, &req.Items[i])
			if ae == nil {
				ok.Add(1)
				writeLine(BatchItemResult{Index: i, Status: http.StatusOK, Result: resp})
				return
			}
			if ae.status == statusClientClosedRequest || ae.status == http.StatusGatewayTimeout {
				canceled.Add(1)
			} else {
				failed.Add(1)
			}
			writeLine(BatchItemResult{
				Index:             i,
				Status:            ae.status,
				Error:             ae.body.Error,
				Diagnostics:       ae.body.Diagnostics,
				SourceDiagnostics: ae.body.SourceDiagnostics,
			})
		}(i)
	}
	wg.Wait()

	writeLine(BatchTrailer{
		Done:      true,
		Items:     len(req.Items),
		OK:        int(ok.Load()),
		Failed:    int(failed.Load()),
		Canceled:  int(canceled.Load()),
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}
