package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fgp/internal/ir"
	"fgp/internal/kernels"
	"fgp/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postRun sends a /v1/run request and decodes the response envelope.
func postRun(t *testing.T, ts *httptest.Server, req any) (int, *RunResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.Unmarshal(data, &eb)
		return resp.StatusCode, nil, eb.Error
	}
	var rr RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, data)
	}
	return resp.StatusCode, &rr, ""
}

func TestHealthzAndKernels(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/v1/kernels")
	if err != nil {
		t.Fatal(err)
	}
	var ks []KernelInfo
	if err := json.NewDecoder(resp.Body).Decode(&ks); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ks) != 18 {
		t.Fatalf("catalog lists %d kernels, want 18", len(ks))
	}
	if ks[0].Name != "lammps-1" || ks[0].App != "lammps" {
		t.Errorf("first kernel = %+v, want lammps-1", ks[0])
	}
}

// TestRunCachedBitIdentical is the core cache acceptance criterion: a
// request served from the compile cache returns bit-identical simulation
// results to the cold compile that filled it.
func TestRunCachedBitIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := RunRequest{Kernel: "sphot-1", Cores: 3}

	code, cold, _ := postRun(t, ts, req)
	if code != 200 {
		t.Fatalf("cold run: %d", code)
	}
	if cold.CachedArtifact {
		t.Error("first request claims a cache hit")
	}
	if cold.Cycles <= 0 || cold.SeqCycles <= cold.Cycles || cold.Speedup <= 1 {
		t.Errorf("implausible cold result: %+v", cold)
	}

	code, warm, _ := postRun(t, ts, req)
	if code != 200 {
		t.Fatalf("warm run: %d", code)
	}
	if !warm.CachedArtifact {
		t.Error("second identical request missed the cache")
	}
	// Strip the fields that legitimately differ (timings, cache flag) and
	// require everything else to match exactly.
	norm := func(r RunResponse) RunResponse {
		r.CachedArtifact = false
		r.CompileMs = 0
		r.SimMs = 0
		return r
	}
	a, _ := json.Marshal(norm(*cold))
	b, _ := json.Marshal(norm(*warm))
	if !bytes.Equal(a, b) {
		t.Errorf("cached result differs from cold compile:\ncold: %s\nwarm: %s", a, b)
	}

	m := s.Snapshot()
	if m.Cache.Hits == 0 || m.Cache.Misses == 0 || m.Cache.HitRate <= 0 {
		t.Errorf("cache metrics did not move: %+v", m.Cache)
	}
}

// TestRunInlineIRSharesCache: submitting the same kernel as inline IR must
// content-address to the same artifact as the named form.
func TestRunInlineIRSharesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, named, _ := postRun(t, ts, RunRequest{Kernel: "irs-1", Cores: 2})
	if code != 200 {
		t.Fatalf("named run: %d", code)
	}

	k, err := kernels.ByName("irs-1")
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ir.MarshalLoop(k.Build())
	if err != nil {
		t.Fatal(err)
	}
	code, inline, _ := postRun(t, ts, RunRequest{IR: wire, Cores: 2})
	if code != 200 {
		t.Fatalf("inline run: %d", code)
	}
	if !inline.CachedArtifact {
		t.Error("inline IR of a built-in kernel missed the cache the named request filled")
	}
	if inline.Cycles != named.Cycles || inline.SeqCycles != named.SeqCycles {
		t.Errorf("inline vs named drifted: %d/%d vs %d/%d cycles",
			inline.Cycles, inline.SeqCycles, named.Cycles, named.SeqCycles)
	}
}

func TestRunReferenceEngineMatches(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, burst, _ := postRun(t, ts, RunRequest{Kernel: "umt2k-1", Cores: 2})
	if code != 200 {
		t.Fatalf("burst run: %d", code)
	}
	code, ref, _ := postRun(t, ts, RunRequest{Kernel: "umt2k-1", Cores: 2, Reference: true})
	if code != 200 {
		t.Fatalf("reference run: %d", code)
	}
	if burst.Cycles != ref.Cycles {
		t.Errorf("engines disagree over HTTP: burst %d, reference %d", burst.Cycles, ref.Cycles)
	}
	if !ref.CachedArtifact {
		t.Error("engine selection must not change the content address")
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		code int
		want string
	}{
		{"neither", `{}`, 400, "exactly one of kernel, ir or source"},
		{"both", `{"kernel":"irs-1","ir":{"name":"x"}}`, 400, "exactly one"},
		{"unknown kernel", `{"kernel":"lulesh-1"}`, 404, "lulesh-1"},
		{"bad ir", `{"ir":{"name":"x"}}`, 400, "ir:"},
		{"bad cores", `{"kernel":"irs-1","cores":99}`, 400, "cores"},
		{"negative queue", `{"kernel":"irs-1","queue_len":-1}`, 400, "queue_len"},
		{"unknown field", `{"kernel":"irs-1","corse":4}`, 400, "unknown field"},
		{"bad trace format", `{"kernel":"sphot-1","cores":2,"trace":"svg"}`, 400, "unknown trace format"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != c.code {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.code, data)
			}
			var eb errorBody
			_ = json.Unmarshal(data, &eb)
			if !strings.Contains(eb.Error, c.want) {
				t.Errorf("error %q does not mention %q", eb.Error, c.want)
			}
		})
	}
}

func TestRunBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1 << 10})
	big := fmt.Sprintf(`{"kernel":"irs-1","cores":2,"trace":%q}`, strings.Repeat("x", 2<<10))
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestRunAttributionAndPerfettoTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, rr, _ := postRun(t, ts, RunRequest{Kernel: "sphot-1", Cores: 3, Attribution: true, Trace: "perfetto"})
	if code != 200 {
		t.Fatalf("run: %d", code)
	}
	if !strings.Contains(rr.Attribution, "stall attribution — 3 cores") {
		t.Errorf("attribution text missing or malformed:\n%s", rr.Attribution)
	}
	if err := obs.ValidatePerfetto(rr.Trace); err != nil {
		t.Errorf("returned trace fails perfetto validation: %v", err)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Warm one request through so the drain has completed work behind it.
	if code, _, _ := postRun(t, ts, RunRequest{Kernel: "sphot-1", Cores: 2}); code != 200 {
		t.Fatalf("warmup failed: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	code, _, msg := postRun(t, ts, RunRequest{Kernel: "sphot-1", Cores: 2})
	if code != http.StatusServiceUnavailable || !strings.Contains(msg, "draining") {
		t.Errorf("run after drain: %d %q, want 503 draining", code, msg)
	}
	if !s.Snapshot().Draining {
		t.Error("metrics do not report draining")
	}
}

// TestAttributionMatchesGoldenReport is the cross-surface acceptance check:
// the sphot-1 attribution report served over HTTP must be byte-for-byte the
// golden text pinned by the experiments package (what the CLI prints).
func TestAttributionMatchesGoldenReport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/attribution?kernel=sphot-1&cores=1,3")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	want, err := readGoldenAttribution()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP attribution drifted from the golden CLI report\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestQueueFullSheds pins the admission-control contract deterministically:
// with the only worker slot held and the queue at its depth limit, the next
// request is shed with 429 immediately.
func TestQueueFullSheds(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.sem <- struct{}{} // occupy the only worker from the outside
	defer func() { <-s.sem }()

	queuedDone := make(chan int, 1)
	go func() {
		code, _, _ := postRun(t, ts, RunRequest{Kernel: "sphot-1", Cores: 2})
		queuedDone <- code
	}()
	waitFor(t, func() bool { return s.Snapshot().Queued == 1 })

	code, _, msg := postRun(t, ts, RunRequest{Kernel: "sphot-1", Cores: 2})
	if code != http.StatusTooManyRequests || !strings.Contains(msg, "queue full") {
		t.Errorf("over-depth request: %d %q, want 429 queue full", code, msg)
	}
	if s.Snapshot().Rejected == 0 {
		t.Error("rejection not counted")
	}

	<-s.sem // free the worker; the queued request must now run
	if code := <-queuedDone; code != 200 {
		t.Errorf("queued request finished with %d, want 200", code)
	}
	s.sem <- struct{}{} // restore for the deferred release
}

// TestCancelWhileQueued: a client that disconnects while waiting for a
// worker must leave the queue (and be counted) without consuming a slot.
func TestCancelWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(RunRequest{Kernel: "sphot-1", Cores: 2})
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", bytes.NewReader(body))
		_, err := ts.Client().Do(req)
		errc <- err
	}()
	waitFor(t, func() bool { return s.Snapshot().Queued == 1 })
	cancel()
	if err := <-errc; err == nil {
		t.Error("cancelled client saw no error")
	}
	waitFor(t, func() bool {
		m := s.Snapshot()
		return m.Queued == 0 && m.Canceled >= 1
	})
}

// waitFor polls cond for up to 10 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAttributionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for url, code := range map[string]int{
		"/v1/attribution":                          400,
		"/v1/attribution?kernel=sphot-1&cores=0":   400,
		"/v1/attribution?kernel=sphot-1&cores=abc": 400,
		"/v1/attribution?kernel=nope-9&cores=1":    404,
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != code {
			t.Errorf("%s: status %d, want %d", url, resp.StatusCode, code)
		}
	}
}
