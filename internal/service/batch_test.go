// Batch conformance: /v1/batch must give per-item isolation (one bad item
// costs one line, never the batch), join-safe streamed ordering (every index
// exactly once, trailer last), singleflight dedup of identical items,
// whole-batch 429/499 semantics, and goroutine convergence after a client
// abandons a streaming batch mid-flight.

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"fgp/internal/ir"
)

// postBatch sends a batch and parses the NDJSON stream into item lines and
// the trailer. A nil trailer means the stream was truncated.
func postBatch(t *testing.T, ts *httptest.Server, req BatchRequest) (int, []BatchItemResult, *BatchTrailer) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	var (
		items   []BatchItemResult
		trailer *BatchTrailer
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if trailer != nil {
			t.Fatalf("line after the trailer: %s", sc.Text())
		}
		var tr BatchTrailer
		if err := json.Unmarshal(sc.Bytes(), &tr); err == nil && tr.Done {
			trailer = &tr
			continue
		}
		var item BatchItemResult
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("unparseable line: %v\n%s", err, sc.Text())
		}
		items = append(items, item)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return resp.StatusCode, items, trailer
}

// TestBatchMixedItemIsolation: healthy, malformed, verifier-rejected, and
// trapping items in one batch each get their own status line; none disturbs
// its siblings; the trailer counts match.
func TestBatchMixedItemIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	trap := ir.NewBuilder("div0", "i", 0, 8, 1)
	trap.ArrayI("n", []int64{1, 2, 3, 4, 5, 6, 7, 8})
	z := trap.ScalarI("z", 0)
	trap.StoreI("n", trap.Idx(), trap.Def("x", ir.DivE(ir.LDI("n", trap.Idx()), z)))
	trapWire, err := ir.MarshalLoop(trap.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	missWire, err := ir.MarshalLoop(uniqueLoop(9001, 64))
	if err != nil {
		t.Fatal(err)
	}

	shortQueue := 2
	req := BatchRequest{Items: []RunRequest{
		{Kernel: "sphot-1", Cores: 2},                         // 0: healthy hit
		{IR: json.RawMessage(`{"name":"x"}`), Cores: 2},       // 1: malformed → 400
		{Kernel: "lammps-3", Cores: 4, QueueLen: &shortQueue}, // 2: verifier-rejected → 422
		{IR: trapWire, Cores: 2},                              // 3: semantic trap → 422
		{IR: missWire, Cores: 2},                              // 4: healthy cold compile
	}}
	code, items, trailer := postBatch(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("batch status %d, want 200", code)
	}
	if len(items) != len(req.Items) {
		t.Fatalf("%d item lines, want %d", len(items), len(req.Items))
	}
	byIndex := map[int]BatchItemResult{}
	for _, it := range items {
		byIndex[it.Index] = it
	}
	wantStatus := map[int]int{0: 200, 1: 400, 2: 422, 3: 422, 4: 200}
	for idx, want := range wantStatus {
		got, ok := byIndex[idx]
		if !ok {
			t.Fatalf("no line for item %d", idx)
		}
		if got.Status != want {
			t.Errorf("item %d: status %d, want %d (error %q)", idx, got.Status, want, got.Error)
		}
	}
	for _, idx := range []int{0, 4} {
		if byIndex[idx].Result == nil || byIndex[idx].Result.Cycles == 0 {
			t.Errorf("item %d: 200 line carries no result", idx)
		}
	}
	if len(byIndex[2].Diagnostics) == 0 {
		t.Error("verifier-rejected item carries no structured diagnostics")
	}
	if !strings.Contains(byIndex[3].Error, "division by zero") {
		t.Errorf("trap item error %q does not carry the trap diagnostic", byIndex[3].Error)
	}
	if trailer == nil {
		t.Fatal("stream has no trailer")
	}
	if trailer.Items != 5 || trailer.OK != 2 || trailer.Failed != 3 || trailer.Canceled != 0 {
		t.Errorf("trailer %+v, want items=5 ok=2 failed=3 canceled=0", trailer)
	}
}

// TestBatchJoinSafeOrdering: lines may arrive in completion order, but each
// index appears exactly once and the trailer is the final line (postBatch
// fails on a line after it), so a client can always join the stream back.
func TestBatchJoinSafeOrdering(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var req BatchRequest
	for i := 0; i < 12; i++ {
		k := []string{"sphot-1", "irs-1", "umt2k-1"}[i%3]
		req.Items = append(req.Items, RunRequest{Kernel: k, Cores: 1 + i%4})
	}
	req.Parallelism = 4
	code, items, trailer := postBatch(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	seen := map[int]int{}
	for _, it := range items {
		seen[it.Index]++
		if it.Status != 200 {
			t.Errorf("item %d: status %d (%s)", it.Index, it.Status, it.Error)
		}
	}
	for i := 0; i < 12; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d appeared %d times, want exactly once", i, seen[i])
		}
	}
	if trailer == nil || trailer.OK != 12 {
		t.Fatalf("trailer %+v, want ok=12", trailer)
	}
}

// TestBatchDedupIdenticalItems: identical cold items in one batch must
// share a single compile through the singleflight cache — the artifact and
// its sequential baseline each compile exactly once.
func TestBatchDedupIdenticalItems(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	wire, err := ir.MarshalLoop(uniqueLoop(31337, 64))
	if err != nil {
		t.Fatal(err)
	}
	var req BatchRequest
	for i := 0; i < 8; i++ {
		req.Items = append(req.Items, RunRequest{IR: wire, Cores: 2})
	}
	req.Parallelism = 8
	code, items, trailer := postBatch(t, ts, req)
	if code != http.StatusOK || trailer == nil || trailer.OK != 8 {
		t.Fatalf("batch: code %d trailer %+v, want 8 ok", code, trailer)
	}
	for _, it := range items[1:] {
		if it.Result.Cycles != items[0].Result.Cycles {
			t.Errorf("identical items disagree: %d vs %d cycles", it.Result.Cycles, items[0].Result.Cycles)
		}
	}
	m := s.Snapshot()
	if m.Artifacts.Compiles != 2 { // one artifact + one sequential baseline
		t.Errorf("8 identical items cost %d compiles, want 2 (artifact + baseline)", m.Artifacts.Compiles)
	}
	if m.Cache.Misses != 2 || m.Cache.Hits != 14 {
		t.Errorf("cache hits=%d misses=%d, want 14/2: dedup through singleflight broke", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Batches != 1 || m.BatchItems != 8 {
		t.Errorf("batches=%d items=%d, want 1/8", m.Batches, m.BatchItems)
	}
}

// TestBatchValidation: empty batches, oversized batches, and unknown fields
// are refused with 400 before admission.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2})
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"items":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", code)
	}
	if code := post(`{"items":[{"kernel":"sphot-1"},{"kernel":"sphot-1"},{"kernel":"sphot-1"}]}`); code != http.StatusBadRequest {
		t.Errorf("over-limit batch: %d, want 400", code)
	}
	if code := post(`{"items":[{"kernel":"sphot-1"}],"bogus":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", code)
	}
	if code := post(`{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", code)
	}
}

// TestBatchQueueFullSheds429: a batch is one admission ticket — a full
// queue refuses the whole batch up front, before any item runs.
func TestBatchQueueFullSheds429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.sem <- struct{}{} // occupy the only worker from the outside
	defer func() { <-s.sem }()

	queuedDone := make(chan int, 1)
	go func() {
		code, _, _ := postRun(t, ts, RunRequest{Kernel: "sphot-1", Cores: 2})
		queuedDone <- code
	}()
	waitFor(t, func() bool { return s.Snapshot().Queued == 1 })

	code, _, trailer := postBatch(t, ts, BatchRequest{Items: []RunRequest{{Kernel: "sphot-1", Cores: 2}}})
	if code != http.StatusTooManyRequests {
		t.Errorf("batch against a full queue: %d, want 429", code)
	}
	if trailer != nil {
		t.Error("shed batch still produced a trailer; items must not have run")
	}
	if s.Snapshot().BatchItems != 0 {
		t.Error("shed batch executed items")
	}

	<-s.sem
	if code := <-queuedDone; code != 200 {
		t.Errorf("queued request finished with %d, want 200", code)
	}
	s.sem <- struct{}{}
}

// TestBatchCancelMidStreamConverges: a client that abandons a streaming
// batch mid-flight must cost nothing durable — in-flight items abort with
// the context, the handler unwinds, and goroutines converge back.
func TestBatchCancelMidStreamConverges(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, err := New(Config{Workers: 2, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	var req BatchRequest
	for i := 0; i < 6; i++ {
		wire, err := ir.MarshalLoop(uniqueLoop(int64(5000+i), 2_000_000))
		if err != nil {
			t.Fatal(err)
		}
		req.Items = append(req.Items, RunRequest{IR: wire, Cores: 2})
	}
	req.Parallelism = 2
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(20 * time.Millisecond) // let some items start
		cancel()
	}()
	resp, err := ts.Client().Do(hreq)
	if err == nil {
		// The request may have won the race and streamed some bytes before
		// the cancel; draining it must then fail or come back truncated.
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var tr BatchTrailer
			if json.Unmarshal(sc.Bytes(), &tr) == nil && tr.Done {
				t.Log("batch completed before the cancel fired; convergence check still applies")
			}
		}
		resp.Body.Close()
	}

	// Every admitted item must unwind: drain, then converge.
	dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after abandoned batch: %v", err)
	}
	m := s.Snapshot()
	if m.InFlight != 0 || m.Queued != 0 {
		t.Errorf("work left behind: inflight=%d queued=%d", m.InFlight, m.Queued)
	}

	ts.Close()
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(30 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > baseline+2 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines: %d at start, %d after shutdown\n%s", baseline, now, buf[:n])
	}
}

// TestBatchItemDeadlineIsPerItem: an item's own timeout_ms kills only that
// item; its siblings complete, and the trailer separates the outcomes.
func TestBatchItemDeadlineIsPerItem(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	slowWire, err := ir.MarshalLoop(uniqueLoop(777, 5_000_000))
	if err != nil {
		t.Fatal(err)
	}
	req := BatchRequest{Items: []RunRequest{
		{Kernel: "sphot-1", Cores: 2},
		{IR: slowWire, Cores: 2, TimeoutMs: 1},
		{Kernel: "irs-1", Cores: 2},
	}}
	code, items, trailer := postBatch(t, ts, req)
	if code != http.StatusOK || trailer == nil {
		t.Fatalf("batch: code %d trailer %+v", code, trailer)
	}
	byIndex := map[int]BatchItemResult{}
	for _, it := range items {
		byIndex[it.Index] = it
	}
	if byIndex[0].Status != 200 || byIndex[2].Status != 200 {
		t.Errorf("sibling items disturbed: statuses %d/%d, want 200/200", byIndex[0].Status, byIndex[2].Status)
	}
	if st := byIndex[1].Status; st != http.StatusGatewayTimeout && st != statusClientClosedRequest {
		t.Errorf("deadlined item: status %d, want 504 or 499", st)
	}
	if trailer.OK != 2 || trailer.Canceled != 1 {
		t.Errorf("trailer %+v, want ok=2 canceled=1", trailer)
	}
}
