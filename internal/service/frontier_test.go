// /v1/frontier conformance: inverse queries answered from the cached
// surface with zero recompiles, structured 404 misses, bad-grid 400s,
// zero-valued lever grids, and warm restart from the on-disk store.

package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postFrontier sends a raw /v1/frontier body and decodes the result.
func postFrontier(t *testing.T, ts *httptest.Server, body string) (int, *FrontierResponse, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/frontier", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, data
	}
	var fr FrontierResponse
	if err := json.Unmarshal(data, &fr); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, data)
	}
	return resp.StatusCode, &fr, data
}

// smallGrid keeps test sweeps cheap: 2 queue capacities x 3 transfer
// latencies at 4 cores = 6 points, 2 compiles.
const smallGrid = `"grid":{"queue_len":[4,20],"transfer_latency":[0,5,50]}`

func TestFrontierInverseQueryCachedSurface(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	body := `{"kernel":"umt2k-4",` + smallGrid + `,"target_speedup":2.0}`
	code, first, _ := postFrontier(t, ts, body)
	if code != 200 {
		t.Fatalf("first query: %d", code)
	}
	if first.CachedSurface {
		t.Error("first query claims a cached surface")
	}
	if first.Minimal == nil || first.Minimal.Speedup < 2.0 {
		t.Fatalf("inverse answer %+v, want speedup >= 2.0", first.Minimal)
	}
	if len(first.Frontier) == 0 || first.Points != 6 {
		t.Fatalf("frontier %d points of %d swept, want a frontier over 6", len(first.Frontier), first.Points)
	}
	for i := 1; i < len(first.Frontier); i++ {
		if first.Frontier[i].Speedup <= first.Frontier[i-1].Speedup ||
			first.Frontier[i].HWCost <= first.Frontier[i-1].HWCost {
			t.Errorf("frontier not strictly ascending at %d", i)
		}
	}

	// The second identical query must be answered from the cached surface
	// with zero recompiles.
	before := s.Snapshot().Artifacts.Compiles
	code, second, _ := postFrontier(t, ts, body)
	if code != 200 {
		t.Fatalf("second query: %d", code)
	}
	if !second.CachedSurface {
		t.Error("second query resweeped instead of hitting the surface cache")
	}
	if after := s.Snapshot().Artifacts.Compiles; after != before {
		t.Errorf("second query cost %d compiles, want 0", after-before)
	}
	if second.SurfaceAddress != first.SurfaceAddress || *second.Minimal != *first.Minimal {
		t.Error("cached surface answered differently")
	}

	// A different question of the same surface is also compile-free.
	code, third, _ := postFrontier(t, ts, `{"kernel":"umt2k-4",`+smallGrid+`,"target_speedup":1.1}`)
	if code != 200 || !third.CachedSurface {
		t.Fatalf("re-query: code %d cached=%v, want cached hit", code, third != nil && third.CachedSurface)
	}
	if third.Minimal == nil || third.Minimal.HWCost > first.Minimal.HWCost {
		t.Errorf("easier target got a costlier machine: %+v vs %+v", third.Minimal, first.Minimal)
	}
}

func TestFrontierUnreachableTargetIsStructured404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, data := postFrontier(t, ts, `{"kernel":"sphot-1",`+smallGrid+`,"target_speedup":1000}`)
	if code != http.StatusNotFound {
		t.Fatalf("unreachable target: %d, want 404", code)
	}
	var miss FrontierMiss
	if err := json.Unmarshal(data, &miss); err != nil {
		t.Fatalf("miss body not structured: %v\n%s", err, data)
	}
	if miss.TargetSpeedup != 1000 || miss.BestSpeedup <= 0 || miss.Best == nil {
		t.Errorf("miss %+v, want the target echoed and the best achievable point named", miss)
	}
	if !strings.Contains(miss.Error, "1000") {
		t.Errorf("miss error %q does not name the target", miss.Error)
	}
}

func TestFrontierValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		code int
		want string
	}{
		{`{"kernel":"sphot-1","grid":{"transfer_latency":[-1]}}`, 400, "transfer_latency"},
		{`{"kernel":"sphot-1","grid":{"queue_len":[0]}}`, 400, "queue_len"},
		{`{"kernel":"sphot-1","grid":{"cores":[99]}}`, 400, "cores"},
		{`{"kernel":"sphot-1","grid":{"queue_len":[1,2,3,4,5,6,7,8,9,10],
			"transfer_latency":[0,1,2,3,4,5,6,7,8,9],
			"enq_cost":[0,1,2,3,4,5]}}`, 400, "budget"},
		{`{"kernel":"sphot-1","target_speedup":-1}`, 400, "target_speedup"},
		{`{"kernel":"sphot-1","partitioner":"annealing"}`, 400, "partitioner"},
		{`{"kernel":"no-such-kernel"}`, 404, "unknown kernel"},
		{`{}`, 400, "exactly one"},
	}
	for _, c := range cases {
		code, _, data := postFrontier(t, ts, c.body)
		if code != c.code {
			t.Errorf("%s: status %d, want %d", c.body, code, c.code)
		}
		if !strings.Contains(string(data), c.want) {
			t.Errorf("%s: body %s does not mention %q", c.body, data, c.want)
		}
	}

	// The GET spelling validates its parameters too.
	for path, want := range map[string]int{
		"/v1/frontier": 400, // no kernel
		"/v1/frontier?kernel=sphot-1&target_speedup=abc": 400,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestFrontierZeroValuedLeverGrid(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Every lever dialed to its zero: a one-slot queue with free, instant
	// transfers. The point must simulate (or carry a structured rejection)
	// — never 500.
	code, fr, data := postFrontier(t, ts,
		`{"kernel":"sphot-1","grid":{"queue_len":[1],"transfer_latency":[0],"enq_cost":[0],"deq_cost":[0]}}`)
	if code != 200 {
		t.Fatalf("zero-lever grid: %d\n%s", code, data)
	}
	if fr.Points != 1 {
		t.Fatalf("swept %d points, want 1", fr.Points)
	}
	if fr.Rejected == 0 {
		if len(fr.Frontier) != 1 || fr.Frontier[0].Speedup <= 0 {
			t.Errorf("zero-lever point simulated but frontier is %+v", fr.Frontier)
		}
	} else if len(fr.Frontier) != 0 {
		t.Error("rejected point leaked into the frontier")
	}
}

func TestFrontierWarmRestartFromStore(t *testing.T) {
	dir := t.TempDir()
	body := `{"kernel":"umt2k-4",` + smallGrid + `,"target_speedup":2.0}`

	s1, ts1 := newTestServer(t, Config{StoreDir: dir})
	code, first, _ := postFrontier(t, ts1, body)
	if code != 200 {
		t.Fatalf("cold sweep: %d", code)
	}
	if c := s1.Snapshot().Artifacts.Compiles; c == 0 {
		t.Fatal("cold sweep cost no fills; the test proves nothing")
	}

	// A fresh daemon sharing the store directory: the repeated sweep must
	// be a disk hit with zero recompiles.
	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	code, second, _ := postFrontier(t, ts2, body)
	if code != 200 {
		t.Fatalf("warm sweep: %d", code)
	}
	m := s2.Snapshot()
	if m.Artifacts.Compiles != 0 {
		t.Errorf("warm restart recompiled %d times, want 0", m.Artifacts.Compiles)
	}
	if m.Artifacts.DiskHits == 0 {
		t.Error("warm restart never touched the disk store")
	}
	if !second.CachedSurface {
		t.Error("warm sweep not reported as cached")
	}
	if second.SurfaceAddress != first.SurfaceAddress {
		t.Errorf("surface address changed across restart: %s vs %s", second.SurfaceAddress, first.SurfaceAddress)
	}
	a, _ := json.Marshal(first.Frontier)
	b, _ := json.Marshal(second.Frontier)
	if !bytes.Equal(a, b) {
		t.Errorf("frontier differs across restart:\n%s\nvs\n%s", a, b)
	}
	if *second.Minimal != *first.Minimal {
		t.Errorf("inverse answer differs across restart: %+v vs %+v", second.Minimal, first.Minimal)
	}
}
