// The request handlers: /v1/run (compile + simulate one kernel),
// /v1/kernels (the built-in catalog), and /v1/attribution (the stall
// report, byte-identical to the fgprun golden text).

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fgp/internal/core"
	"fgp/internal/experiments"
	"fgp/internal/frontend"
	"fgp/internal/interp"
	"fgp/internal/ir"
	"fgp/internal/kernels"
	"fgp/internal/mem"
	"fgp/internal/obs"
	"fgp/internal/sim"
	"fgp/internal/verify"
)

// RunRequest is the /v1/run body. Exactly one of Kernel (a built-in
// evaluation kernel name, see /v1/kernels), IR (a loop in the
// ir.MarshalLoop wire encoding), or Source (an fgp source program, see
// internal/frontend) selects what to compile.
type RunRequest struct {
	Kernel string          `json:"kernel,omitempty"`
	IR     json.RawMessage `json:"ir,omitempty"`
	Source string          `json:"source,omitempty"`

	// Pipeline and machine configuration (zero/absent = paper defaults).
	Cores int `json:"cores,omitempty"`
	// QueueLen and TransferLatency are pointers so presence survives
	// decoding: transfer latency 0 is a real machine (instant transfers)
	// and must be distinguishable from "not sent". An absent field means
	// the paper default; so does `queue_len: 0` (0 is not a legal literal
	// capacity, and the legacy encoding used it as "default"), and so does
	// sending the default value explicitly — all three spellings share one
	// canonical content address.
	QueueLen        *int   `json:"queue_len,omitempty"`
	TransferLatency *int64 `json:"transfer_latency,omitempty"`
	Speculate       bool   `json:"speculate,omitempty"`
	NormalizeOps    int    `json:"normalize_ops,omitempty"`
	Schedule        bool   `json:"schedule,omitempty"`
	// Partitioner selects the partition selector: "" or "heuristic" (the
	// paper's greedy merge) or "search" (the internal/search refinement,
	// run server-side with a fixed seed and budget so the artifact is
	// content-addressable and byte-identical across replicas).
	Partitioner string `json:"partitioner,omitempty"`

	// Reference routes the simulation through the retained per-instruction
	// engine instead of the burst engine (bit-identical results).
	Reference bool `json:"reference,omitempty"`
	// Engine selects the execution engine by name ("burst", "reference",
	// "threaded"); it wins over Reference when both are set. All engines
	// return bit-identical results — the lever trades host time only.
	Engine string `json:"engine,omitempty"`
	// Attribution includes the stall-attribution report text.
	Attribution bool `json:"attribution,omitempty"`
	// Trace includes a rendered trace: "perfetto", "text", or "report".
	Trace string `json:"trace,omitempty"`
	// TimeoutMs tightens (never extends) the server's per-request budget.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// RunResponse is the /v1/run result.
type RunResponse struct {
	Kernel    string  `json:"kernel"`
	Cores     int     `json:"cores"`
	Cycles    int64   `json:"cycles"`
	SeqCycles int64   `json:"seq_cycles"`
	Speedup   float64 `json:"speedup"`

	PerCoreCycles     []int64 `json:"per_core_cycles"`
	EnqStalls         []int64 `json:"enq_stalls"`
	DeqStalls         []int64 `json:"deq_stalls"`
	Transfers         int64   `json:"transfers"`
	PairsUsed         int     `json:"pairs_used"`
	LoadHits          int64   `json:"load_hits"`
	LoadMisses        int64   `json:"load_misses"`
	MemPortBusyCycles int64   `json:"mem_port_busy_cycles"`

	// CachedArtifact reports whether the compiled artifact was served from
	// the content-addressed cache (the simulation always runs fresh).
	CachedArtifact bool `json:"cached_artifact"`
	// ArtifactAddress is the artifact's canonical content address (sha256
	// over the pipeline configuration and the canonical loop bytes).
	// Requests that spell the same machine differently — e.g. omitting
	// transfer_latency versus sending the paper-default 5 — share one
	// address; a genuinely different machine (transfer_latency 0) gets its
	// own.
	ArtifactAddress string  `json:"artifact_address"`
	CompileMs       float64 `json:"compile_ms"`
	SimMs           float64 `json:"sim_ms"`

	Attribution string          `json:"attribution,omitempty"`
	Trace       json.RawMessage `json:"trace,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		s.met.errors.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	s.admit(w, r, time.Duration(req.TimeoutMs)*time.Millisecond, func(ctx context.Context) {
		resp, ae := s.execute(ctx, &req)
		if ae != nil {
			writeJSON(w, ae.status, ae.body)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

// sourceLimits bounds what a source program in a request may cost the
// parser. The body-size cap already bounds raw bytes; these bound the
// amplification past it — recursion depth (goroutine stacks) and node
// count (array splats expand far beyond their source text). Rejections are
// 400s with positioned diagnostics, never an OOM or a stack overflow.
var sourceLimits = frontend.Limits{MaxDepth: 64, MaxNodes: 200_000, MaxDiags: 20}

// apiError is a request failure with its HTTP rendering decided: execute
// returns it instead of writing, so /v1/run can send it as the response
// status while /v1/batch folds it into one NDJSON item line.
type apiError struct {
	status int
	body   errorBody
}

func apiErrorf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, body: errorBody{Error: fmt.Sprintf(format, args...)}}
}

// resolveLoop resolves a request's loop selector — exactly one of a
// built-in kernel name, wire-encoded IR, or fgp source — shared by
// /v1/run, /v1/batch and /v1/frontier. Failures count toward the error
// metric and carry their HTTP rendering.
func (s *Server) resolveLoop(kernel string, irRaw json.RawMessage, source string) (*ir.Loop, *apiError) {
	fail := func(status int, msg string) (*ir.Loop, *apiError) {
		s.met.errors.Add(1)
		return nil, apiErrorf(status, "%s", msg)
	}
	selected := 0
	for _, set := range []bool{kernel != "", len(irRaw) > 0, source != ""} {
		if set {
			selected++
		}
	}
	if selected != 1 {
		return fail(http.StatusBadRequest, "request must select exactly one of kernel, ir or source")
	}
	switch {
	case kernel != "":
		k, err := kernels.ByName(kernel)
		if err != nil {
			return fail(http.StatusNotFound, err.Error())
		}
		return k.Build(), nil
	case len(irRaw) > 0:
		loop, err := ir.UnmarshalLoop(irRaw)
		if err != nil {
			return fail(http.StatusBadRequest, "ir: "+err.Error())
		}
		return loop, nil
	default:
		loop, err := frontend.ParseWithLimits([]byte(source), sourceLimits)
		if err != nil {
			s.met.errors.Add(1)
			var fe *frontend.Error
			if errors.As(err, &fe) {
				return nil, &apiError{status: http.StatusBadRequest, body: errorBody{
					Error:             boundMsg("source: " + err.Error()),
					SourceDiagnostics: fe.Diags,
				}}
			}
			return nil, apiErrorf(http.StatusBadRequest, "%s", boundMsg("source: "+err.Error()))
		}
		return loop, nil
	}
}

// execute runs one admitted request: resolve the kernel, fetch or fill the
// cached sequential baseline and artifact (memory tier, then disk store,
// then a real compile), simulate under the request context, and build the
// response. It never writes to the connection.
func (s *Server) execute(ctx context.Context, req *RunRequest) (resp *RunResponse, ae *apiError) {
	// Recover boundary: compiler and simulator internals assume validated
	// input and panic otherwise. A malformed request must cost the client a
	// 400, never the worker goroutine (cache fills have their own boundary
	// in safeFill; this one covers everything else in the handler).
	defer func() {
		if r := recover(); r != nil {
			s.met.errors.Add(1)
			resp, ae = nil, apiErrorf(http.StatusBadRequest,
				"%s", boundMsg(fmt.Sprintf("internal panic (malformed input reached the pipeline): %v", r)))
		}
	}()
	fail := func(status int, msg string) (*RunResponse, *apiError) {
		s.met.errors.Add(1)
		return nil, apiErrorf(status, "%s", msg)
	}

	loop, ae := s.resolveLoop(req.Kernel, req.IR, req.Source)
	if ae != nil {
		return nil, ae
	}

	// Bound the machine parameters.
	cores := req.Cores
	if cores == 0 {
		cores = 4
	}
	if cores < 1 || cores > s.cfg.MaxCores {
		return fail(http.StatusBadRequest, fmt.Sprintf("cores must be in [1, %d]", s.cfg.MaxCores))
	}
	// Resolve the machine levers to their effective values. The pipeline
	// key stores effective values, so unset, the legacy `queue_len: 0`
	// spelling, and an explicit paper default all produce one canonical
	// content address — while `transfer_latency: 0` is its own machine.
	machineDefaults := sim.DefaultConfig(cores)
	queueLen := machineDefaults.QueueLen
	if req.QueueLen != nil {
		q := *req.QueueLen
		if q < 0 || q > 1<<12 {
			return fail(http.StatusBadRequest, "queue_len must be in [1, 4096] (0 = default)")
		}
		if q != 0 {
			queueLen = q
		}
	}
	transferLatency := machineDefaults.TransferLatency
	if req.TransferLatency != nil {
		tl := *req.TransferLatency
		if tl < 0 || tl > 1<<20 {
			return fail(http.StatusBadRequest, "transfer_latency must be in [0, 1048576]")
		}
		transferLatency = tl
	}
	if req.NormalizeOps < 0 || req.NormalizeOps > 64 {
		return fail(http.StatusBadRequest, "normalize_ops must be in [0, 64]")
	}
	partitioner := req.Partitioner
	if partitioner == core.PartitionerHeuristic {
		partitioner = "" // one content address for both spellings of the default
	}
	if partitioner != "" && partitioner != core.PartitionerSearch {
		return fail(http.StatusBadRequest, fmt.Sprintf("partitioner must be one of %v", core.Partitioners()))
	}

	loopBytes, err := ir.MarshalLoop(loop)
	if err != nil {
		return fail(http.StatusInternalServerError, "canonicalizing ir: "+err.Error())
	}

	pk := pipelineKey{
		Cores:           cores,
		QueueLen:        queueLen,
		TransferLatency: transferLatency,
		Speculate:       req.Speculate,
		NormalizeOps:    req.NormalizeOps,
		Schedule:        req.Schedule,
		Partitioner:     partitioner,
	}

	// Cache fills run on a detached context bounded by the server budget:
	// other requests may be waiting on the same fill, so one client's
	// disconnect must not abort (or poison) the shared compile. The
	// per-request simulation below runs under the request context proper.
	fillCtx := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), s.cfg.Timeout)
	}

	compileStart := time.Now()

	// Sequential baseline, cached per kernel (configuration-independent).
	seqAddr := contentAddress(loopBytes, pipelineKey{Sequential: true})
	seqVal, seqHit, err := s.cache.do(ctx, "seq:"+seqAddr, s.tieredFill("seq", seqAddr,
		func() (any, error) {
			fctx, cancel := fillCtx()
			defer cancel()
			a, err := core.CompileSequential(loop)
			if err != nil {
				return nil, err
			}
			res, err := a.RunContext(fctx, a.MachineConfig())
			if err != nil {
				return nil, err
			}
			return res.Cycles, nil
		},
		encodeSeqCycles, decodeSeqCycles))
	if err != nil {
		return nil, s.runError("sequential baseline", err)
	}
	if seqHit {
		s.met.artMemHits.Add(1)
	}
	seqCycles := seqVal.(int64)

	// The compiled artifact, content-addressed and singleflighted through
	// the memory tier, with the on-disk store underneath.
	artAddr := contentAddress(loopBytes, pk)
	artVal, hit, err := s.cache.do(ctx, "art:"+artAddr, s.tieredFill("art", artAddr,
		func() (any, error) {
			fctx, cancel := fillCtx()
			defer cancel()
			opt := core.DefaultOptions(cores)
			opt.Speculate = req.Speculate
			opt.NormalizeOps = req.NormalizeOps
			opt.Schedule = req.Schedule
			if partitioner == core.PartitionerSearch {
				// Fixed server-side search parameters: the artifact must be a
				// pure function of its content address, so the seed and budget
				// are not client levers.
				opt.Partitioner = core.PartitionerSearch
				opt.SearchSeed = serverSearchSeed
				opt.SearchBudget = serverSearchBudget
			}
			// Always pin the machine: the effective levers are already
			// resolved, and a machine at the paper defaults compiles the
			// identical artifact a nil Machine would.
			mc := sim.DefaultConfig(cores)
			mc.QueueLen = queueLen
			mc.TransferLatency = transferLatency
			opt.Machine = &mc
			return core.CompileContext(fctx, loop, opt)
		},
		encodeArtifact, decodeArtifact))
	if err != nil {
		return nil, s.runError("compile", err)
	}
	if hit {
		s.met.artMemHits.Add(1)
	}
	art := artVal.(*core.Artifact)
	compileMs := float64(time.Since(compileStart)) / float64(time.Millisecond)

	// Simulate under the request context: a client disconnect or deadline
	// aborts within one burst horizon (sim.RunContext).
	cfg := art.MachineConfig()
	cfg.Reference = req.Reference
	cfg.Engine = req.Engine
	var rec *obs.Recorder
	if req.Attribution || req.Trace != "" {
		rec = obs.NewRecorder()
		cfg.Sink = rec
	}
	simStart := time.Now()
	res, err := art.RunContext(ctx, cfg)
	if err != nil {
		return nil, s.runError("simulate", err)
	}
	simMs := float64(time.Since(simStart)) / float64(time.Millisecond)

	resp = &RunResponse{
		Kernel:            loop.Name,
		Cores:             cores,
		Cycles:            res.Cycles,
		SeqCycles:         seqCycles,
		Speedup:           float64(seqCycles) / float64(res.Cycles),
		PerCoreCycles:     res.PerCoreCycles,
		EnqStalls:         res.EnqStalls,
		DeqStalls:         res.DeqStalls,
		Transfers:         res.Transfers,
		PairsUsed:         res.PairsUsed,
		LoadHits:          res.LoadHits,
		LoadMisses:        res.LoadMisses,
		MemPortBusyCycles: res.MemPortBusyCycles,
		CachedArtifact:    hit,
		ArtifactAddress:   artAddr,
		CompileMs:         compileMs,
		SimMs:             simMs,
	}
	if rec != nil {
		obs.Canonicalize(rec.Events)
		if req.Attribution {
			resp.Attribution = obs.BuildReport(rec.Meta, rec.Events).Format()
		}
		if req.Trace != "" {
			data, err := obs.RenderTrace(req.Trace, rec.Meta, rec.Events)
			if err != nil {
				return fail(http.StatusBadRequest, err.Error())
			}
			if req.Trace == "perfetto" {
				resp.Trace = data // already JSON
			} else {
				resp.Trace, _ = json.Marshal(string(data))
			}
		}
	}
	return resp, nil
}

// maxErrorBytes bounds the detail text of any error response. Simulator
// deadlock errors carry a full multi-line machine-state dump; the response
// keeps enough to diagnose and says how much it dropped.
const maxErrorBytes = 2048

func boundMsg(msg string) string {
	if len(msg) <= maxErrorBytes {
		return msg
	}
	return fmt.Sprintf("%s... (%d bytes truncated)", msg[:maxErrorBytes], len(msg)-maxErrorBytes)
}

// runError maps a compile/simulate error to its HTTP rendering:
// cancellation becomes 499 (the client is gone), a blown deadline 504.
// Rejections that are the kernel's own fault — a static-verifier rejection,
// a deadlock, a semantic trap like division by zero — are 422 (the request
// was well-formed, the program is not runnable), with the verifier's
// structured diagnostics attached when it has them. A panic caught at the
// recover boundary is a 400 (bad input reached code that assumed validated
// input). Only genuine infrastructure failures remain 500.
func (s *Server) runError(stage string, err error) *apiError {
	var ve *verify.Error
	var pe *panicError
	switch {
	case errors.Is(err, context.Canceled):
		s.met.canceled.Add(1)
		return apiErrorf(statusClientClosedRequest, "%s: canceled", stage)
	case errors.Is(err, context.DeadlineExceeded):
		s.met.canceled.Add(1)
		return apiErrorf(http.StatusGatewayTimeout, "%s: deadline exceeded", stage)
	case errors.As(err, &ve):
		s.met.errors.Add(1)
		return &apiError{status: http.StatusUnprocessableEntity, body: errorBody{
			Error:       boundMsg(stage + ": " + err.Error()),
			Diagnostics: ve.Diags,
		}}
	case errors.As(err, &pe):
		s.met.errors.Add(1)
		return apiErrorf(http.StatusBadRequest, "%s", boundMsg(stage+": "+pe.Error()))
	case errors.Is(err, sim.ErrDeadlock),
		errors.Is(err, interp.ErrDivByZero),
		errors.Is(err, interp.ErrOutOfBounds),
		errors.Is(err, mem.ErrOutOfBounds):
		s.met.errors.Add(1)
		return apiErrorf(http.StatusUnprocessableEntity, "%s", boundMsg(stage+": "+err.Error()))
	default:
		s.met.errors.Add(1)
		return apiErrorf(http.StatusInternalServerError, "%s", boundMsg(stage+": "+err.Error()))
	}
}

// failRun renders runError's mapping straight to the connection (the
// single-request handlers' path).
func (s *Server) failRun(w http.ResponseWriter, stage string, err error) {
	ae := s.runError(stage, err)
	writeJSON(w, ae.status, ae.body)
}

// KernelInfo is one row of /v1/kernels.
type KernelInfo struct {
	Name         string  `json:"name"`
	App          string  `json:"app"`
	PctTime      float64 `json:"pct_time"`
	PaperSpeedup float64 `json:"paper_speedup"`
}

func (s *Server) handleKernels(w http.ResponseWriter, _ *http.Request) {
	ks := kernels.All()
	out := make([]KernelInfo, len(ks))
	for i, k := range ks {
		out[i] = KernelInfo{Name: k.Name, App: k.App, PctTime: k.PctTime, PaperSpeedup: k.PaperSpeedup}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAttribution serves GET /v1/attribution?kernel=NAME&cores=1,3 as
// text/plain — the exact bytes of experiments.FormatAttribution, i.e. what
// `fgprun -trace-format report` prints and the golden file pins.
func (s *Server) handleAttribution(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("kernel")
	if name == "" {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, "missing kernel parameter")
		return
	}
	coresParam := r.URL.Query().Get("cores")
	if coresParam == "" {
		coresParam = "4"
	}
	var coreCounts []int
	for _, f := range strings.Split(coresParam, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 || n > s.cfg.MaxCores {
			s.met.errors.Add(1)
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("cores must be a comma list of ints in [1, %d]", s.cfg.MaxCores))
			return
		}
		coreCounts = append(coreCounts, n)
	}
	s.admit(w, r, 0, func(ctx context.Context) {
		rows, err := experiments.Attribution(s.exp, name, coreCounts)
		if err != nil {
			if _, nf := kernels.ByName(name); nf != nil {
				s.met.errors.Add(1)
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			s.failRun(w, "attribution", err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, experiments.FormatAttribution(rows))
	})
}
