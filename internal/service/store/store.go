// Package store is fgpd's content-addressed on-disk artifact store: the
// persistent tier below the in-memory singleflight compile cache. A daemon
// pointed at a populated directory (-store-dir) warm-starts — restarts and
// horizontal replicas serve earlier fills as cache hits instead of
// recompiling.
//
// Three properties the service depends on:
//
//   - Crash safety: fills write to a temporary file and rename into place,
//     so a process killed mid-fill leaves no partially written entry
//     visible. Leftover temporaries are swept on Open.
//   - Integrity: every entry carries a sha256 checksum of its payload; a
//     corrupted entry (bit rot, torn write, truncation) is detected on
//     read-back, evicted, and reported as ErrCorrupt — the caller
//     recompiles rather than serving garbage.
//   - Bounded size: the store is an LRU over total payload bytes. Put
//     evicts least-recently-used entries past MaxBytes; Get refreshes
//     recency. Recency survives restarts via file mtimes (Get touches).
//
// Keys are the service's content addresses (a short namespace prefix plus
// a hex sha256) — NOT the payload hash, hence the separate checksum.
package store

import (
	"container/list"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotFound reports that no entry exists for the key.
var ErrNotFound = errors.New("store: entry not found")

// ErrCorrupt reports that the entry existed but failed its integrity check;
// it has been evicted. The caller should treat the key as a miss.
var ErrCorrupt = errors.New("store: entry corrupt")

const (
	// magic heads every entry file; a version bump invalidates the store.
	magic = "FGPSTORE1\n"
	// headerLen is magic plus the 32-byte payload sha256.
	headerLen = len(magic) + sha256.Size
	// entryExt marks committed entries; temporaries use tmpPrefix.
	entryExt  = ".art"
	tmpPrefix = "tmp-"
)

// DefaultMaxBytes bounds the store when the caller passes 0: 1 GiB.
const DefaultMaxBytes = 1 << 30

// Metrics is a snapshot of the store's counters.
type Metrics struct {
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Corrupt   int64 `json:"corrupt"`
	Evictions int64 `json:"evictions"`
}

type entry struct {
	key  string
	size int64 // payload bytes (excluding header)
	elem *list.Element
}

// Store is a content-addressed on-disk LRU. Safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[string]*entry
	lru   *list.List // front = most recently used; values are *entry
	bytes int64

	hits, misses, corrupt, evictions atomic.Int64
}

// Open creates or reopens a store rooted at dir. maxBytes bounds total
// payload bytes (0 = DefaultMaxBytes). Leftover temporaries from a crashed
// fill are removed; committed entries are indexed oldest-first by mtime so
// LRU order approximates the previous process's recency.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		index:    map[string]*entry{},
		lru:      list.New(),
	}

	type onDisk struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []onDisk
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// A fill that never committed: invisible by design, delete.
			_ = os.Remove(path)
			return nil
		}
		if !strings.HasSuffix(name, entryExt) {
			return nil // not ours; leave it alone
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent eviction; skip
		}
		size := info.Size() - int64(headerLen)
		if size < 0 {
			_ = os.Remove(path) // can't even hold a header: torn, drop it
			return nil
		}
		found = append(found, onDisk{
			key:   strings.TrimSuffix(name, entryExt),
			size:  size,
			mtime: info.ModTime(),
		})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found {
		e := &entry{key: f.key, size: f.size}
		e.elem = s.lru.PushFront(e)
		s.index[f.key] = e
		s.bytes += f.size
	}
	s.mu.Lock()
	s.evictOverLocked()
	s.mu.Unlock()
	return s, nil
}

// validKey accepts the service's content addresses: lowercase hex plus a
// short namespace prefix joined by '-'. Anything else could escape the
// store directory via the filesystem.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	// Two-level fan-out on the key's tail (the hex digest part) keeps
	// directories small under millions of entries.
	sub := key
	if n := len(key); n >= 2 {
		sub = key[n-2:]
	}
	return filepath.Join(s.dir, sub, key+entryExt)
}

// Get returns the payload stored for key, verifying its checksum. A missing
// entry returns ErrNotFound; a corrupt one is evicted and returns
// ErrCorrupt.
func (s *Store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	e, ok := s.index[key]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, ErrNotFound
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		// Index said present but the file is gone (external deletion).
		s.dropLocked(e)
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, ErrNotFound
	}
	if len(data) < headerLen || string(data[:len(magic)]) != magic {
		s.dropLocked(e)
		s.mu.Unlock()
		_ = os.Remove(path)
		s.corrupt.Add(1)
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupt, key)
	}
	payload := data[headerLen:]
	sum := sha256.Sum256(payload)
	if subtle.ConstantTimeCompare(sum[:], data[len(magic):headerLen]) != 1 {
		s.dropLocked(e)
		s.mu.Unlock()
		_ = os.Remove(path)
		s.corrupt.Add(1)
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, key)
	}
	s.lru.MoveToFront(e.elem)
	s.mu.Unlock()
	s.hits.Add(1)
	// Touch so recency survives a restart (Open orders by mtime). Best
	// effort: a failed touch only ages the entry's restart-order.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return payload, nil
}

// Put stores payload under key, atomically: the entry becomes visible only
// via the final rename, so a crash mid-write leaves at most an invisible
// temporary (swept on the next Open). Re-putting an existing key refreshes
// its payload and recency.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var rnd [8]byte
	if _, err := rand.Read(rnd[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(filepath.Dir(path), tmpPrefix+hex.EncodeToString(rnd[:]))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(payload)
	_, err = f.Write([]byte(magic))
	if err == nil {
		_, err = f.Write(sum[:])
	}
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: committing %s: %w", key, err)
	}

	s.mu.Lock()
	if e, ok := s.index[key]; ok {
		s.bytes += int64(len(payload)) - e.size
		e.size = int64(len(payload))
		s.lru.MoveToFront(e.elem)
	} else {
		e := &entry{key: key, size: int64(len(payload))}
		e.elem = s.lru.PushFront(e)
		s.index[key] = e
		s.bytes += e.size
	}
	s.evictOverLocked()
	s.mu.Unlock()
	return nil
}

// dropLocked removes an entry from the in-memory index (not the file).
func (s *Store) dropLocked(e *entry) {
	if _, ok := s.index[e.key]; !ok {
		return
	}
	delete(s.index, e.key)
	s.lru.Remove(e.elem)
	s.bytes -= e.size
}

// evictOverLocked removes least-recently-used entries until total payload
// bytes fit MaxBytes. Never evicts the most recent entry: a single artifact
// larger than the whole budget still serves its own warm restarts.
func (s *Store) evictOverLocked() {
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		e := back.Value.(*entry)
		s.dropLocked(e)
		_ = os.Remove(s.path(e.key))
		s.evictions.Add(1)
	}
}

// Snapshot returns the store's counters.
func (s *Store) Snapshot() Metrics {
	s.mu.Lock()
	entries, bytes := int64(len(s.index)), s.bytes
	s.mu.Unlock()
	return Metrics{
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  s.maxBytes,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Evictions: s.evictions.Load(),
	}
}

// Len returns the number of committed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}
