package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	payload := []byte("the artifact bytes")
	if err := s.Put("art-abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("art-abc123")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("got %q, want %q", got, payload)
	}
	if _, err := s.Get("art-missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key: %v, want ErrNotFound", err)
	}
	m := s.Snapshot()
	if m.Hits != 1 || m.Misses != 1 || m.Entries != 1 {
		t.Errorf("metrics %+v, want 1 hit / 1 miss / 1 entry", m)
	}
}

func TestRejectsInvalidKeys(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	for _, key := range []string{"", "UPPER", "has/slash", "dot.dot", "..", strings.Repeat("a", 200)} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, err := s.Get(key); err == nil {
			t.Errorf("Get(%q) accepted an invalid key", key)
		}
	}
}

// TestWarmReopenServesEarlierFills is the warm-restart contract: a second
// store opened on the same directory serves the first store's fills.
func TestWarmReopenServesEarlierFills(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	for i := 0; i < 8; i++ {
		if err := s1.Put(fmt.Sprintf("art-%02x", i), []byte(strings.Repeat("v", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	s2 := open(t, dir, 0)
	if s2.Len() != 8 {
		t.Fatalf("reopened store indexed %d entries, want 8", s2.Len())
	}
	for i := 0; i < 8; i++ {
		got, err := s2.Get(fmt.Sprintf("art-%02x", i))
		if err != nil {
			t.Fatalf("entry %d after reopen: %v", i, err)
		}
		if len(got) != i+1 {
			t.Errorf("entry %d: %d bytes, want %d", i, len(got), i+1)
		}
	}
}

// TestKillMidFillLeavesNothingVisible: a fill that dies before the rename
// (simulated by planting the temporary a crashed process would leave) must
// not be served, and Open must sweep it.
func TestKillMidFillLeavesNothingVisible(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	if err := s1.Put("art-aa", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	// A crashed fill: header + partial payload under a temp name, next to a
	// committed entry.
	tmp := filepath.Join(dir, "aa", tmpPrefix+"deadbeef00000000")
	if err := os.WriteFile(tmp, []byte(magic+"partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("Open left the crashed temporary in place: %v", err)
	}
	if s2.Len() != 1 {
		t.Errorf("reopened store indexed %d entries, want only the committed one", s2.Len())
	}
	if got, err := s2.Get("art-aa"); err != nil || string(got) != "committed" {
		t.Errorf("committed entry unreadable after crash sweep: %q, %v", got, err)
	}
}

// TestCorruptEntryDetectedAndEvicted: a bit-flipped payload must fail the
// checksum, return ErrCorrupt, and disappear — never be served.
func TestCorruptEntryDetectedAndEvicted(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	payload := bytes.Repeat([]byte("artifact"), 64)
	if err := s.Put("art-bb", payload); err != nil {
		t.Fatal(err)
	}
	path := s.path("art-bb")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+17] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Get("art-bb"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped entry: %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry file not removed")
	}
	if _, err := s.Get("art-bb"); !errors.Is(err, ErrNotFound) {
		t.Errorf("corrupt entry still indexed: %v, want ErrNotFound", err)
	}
	if m := s.Snapshot(); m.Corrupt != 1 {
		t.Errorf("corrupt count %d, want 1", m.Corrupt)
	}

	// Refilling the key must fully recover it.
	if err := s.Put("art-bb", payload); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("art-bb"); err != nil || !bytes.Equal(got, payload) {
		t.Errorf("refilled entry broken: %v", err)
	}
}

// TestTruncatedEntryDetected: an entry cut below the header (torn write
// plus lost rename ordering on a dumb filesystem) reads as corrupt.
func TestTruncatedEntryDetected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.Put("art-cc", []byte("some payload")); err != nil {
		t.Fatal(err)
	}
	path := s.path("art-cc")
	if err := os.WriteFile(path, []byte(magic[:4]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("art-cc"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated entry: %v, want ErrCorrupt", err)
	}
}

// TestChecksumGuardsHeaderNotJustPayload: flipping a checksum byte (not the
// payload) must also read as corrupt.
func TestChecksumGuardsHeaderNotJustPayload(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.Put("art-dd", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := s.path("art-dd")
	data, _ := os.ReadFile(path)
	data[len(magic)+sha256.Size/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("art-dd"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("checksum-flipped entry: %v, want ErrCorrupt", err)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 100)
	payload := bytes.Repeat([]byte("x"), 40)
	for _, k := range []string{"art-01", "art-02", "art-03"} {
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// 3 x 40 = 120 > 100: the oldest (art-01) must have been evicted.
	if _, err := s.Get("art-01"); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest entry survived eviction: %v", err)
	}
	for _, k := range []string{"art-02", "art-03"} {
		if _, err := s.Get(k); err != nil {
			t.Errorf("recent entry %s evicted: %v", k, err)
		}
	}
	if m := s.Snapshot(); m.Evictions != 1 || m.Bytes != 80 {
		t.Errorf("metrics %+v, want 1 eviction / 80 bytes", m)
	}

	// Touch art-02 (now LRU order 02 > 03 after the Gets above... re-get 02
	// to make 03 the coldest), then overflow again: 03 must go, 02 stay.
	if _, err := s.Get("art-02"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("art-04", payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("art-03"); !errors.Is(err, ErrNotFound) {
		t.Error("cold entry art-03 survived; LRU recency not honored")
	}
	if _, err := s.Get("art-02"); err != nil {
		t.Errorf("recently used art-02 evicted: %v", err)
	}
}

// TestOversizeSingleEntrySurvives: one artifact larger than the budget is
// kept (evicting it would make the store useless for its only client).
func TestOversizeSingleEntrySurvives(t *testing.T) {
	s := open(t, t.TempDir(), 10)
	big := bytes.Repeat([]byte("y"), 64)
	if err := s.Put("art-big", big); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("art-big"); err != nil || !bytes.Equal(got, big) {
		t.Errorf("oversize entry not served: %v", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir(), 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				key := fmt.Sprintf("art-%02d%02d", g, i%8)
				payload := []byte(fmt.Sprintf("payload-%d-%d", g, i%8))
				if err := s.Put(key, payload); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
				got, err := s.Get(key)
				if err != nil {
					t.Errorf("get %s: %v", key, err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("get %s: %q, want %q", key, got, payload)
					return
				}
			}
		}()
	}
	wg.Wait()
}
