// Package service implements fgpd, the resident compile-and-simulate
// daemon: the paper's runtime-thread-management component (Section IV.H)
// grown into a long-lived HTTP/JSON service. Clients submit IR kernels (or
// name a built-in evaluation kernel); the server runs the full pipeline —
// normalize, speculate, lower, partition, outline — simulates the result on
// the requested machine, and returns cycles, speedup over the sequential
// baseline, stall attribution, and optionally a Perfetto trace.
//
// Three production concerns shape the package:
//
//   - Caching: compiled artifacts are content-addressed by the hash of the
//     kernel's canonical JSON encoding plus the pipeline configuration, with
//     singleflight de-duplication (the pattern of internal/experiments'
//     Runner), so serving many simulation configurations of one kernel
//     compiles it once.
//   - Admission control: a bounded worker pool executes requests, a
//     queue-depth limit sheds load with 429 before work piles up, every
//     request carries a deadline, and SIGTERM drains gracefully.
//   - Cancellation: the request context is threaded through the compile
//     pipeline into the simulator, which aborts within one burst horizon
//     when the client disconnects or the deadline passes (sim.RunContext).
//
// A fourth concern arrived with scale: persistence. When Config.StoreDir
// is set, compiled artifacts and sequential baselines are written through
// to a content-addressed on-disk store (internal/service/store) layered
// under the in-memory singleflight cache, so a restarted daemon — or a
// horizontal replica sharing the directory — warm-starts instead of
// recompiling.
//
// Endpoints: POST /v1/run, POST /v1/batch, GET|POST /v1/frontier,
// GET /v1/kernels, GET /v1/attribution, GET /healthz, GET /metrics.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fgp/internal/experiments"
	"fgp/internal/frontend"
	"fgp/internal/service/store"
	"fgp/internal/verify"
)

// Config parameterizes the server.
type Config struct {
	// Workers bounds concurrently executing requests (compiles and
	// simulations). 0 means one per available CPU.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot; beyond it the
	// server sheds load with 429 immediately. 0 means 64.
	QueueDepth int
	// Timeout is the per-request wall-clock budget, compile plus simulate.
	// Requests may tighten it per call (timeout_ms) but never exceed it.
	// 0 means 60s.
	Timeout time.Duration
	// MaxBodyBytes bounds the request body (IR kernels carry their array
	// data inline). 0 means 32 MiB.
	MaxBodyBytes int64
	// MaxCores bounds the simulated core count a request may ask for (the
	// queue fabric is O(cores²)). 0 means 16.
	MaxCores int
	// MaxBatchItems bounds how many items one /v1/batch request may carry.
	// 0 means 256.
	MaxBatchItems int
	// BatchParallelism bounds how many items of one batch execute
	// concurrently (the batch as a whole holds a single admission ticket).
	// 0 means Workers.
	BatchParallelism int
	// StoreDir, when non-empty, enables the on-disk artifact store: compile
	// fills are written through and later misses in the in-memory cache are
	// served from disk instead of recompiling.
	StoreDir string
	// StoreMaxBytes bounds the on-disk store's total payload bytes (LRU
	// eviction past it). 0 means store.DefaultMaxBytes.
	StoreMaxBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxCores <= 0 {
		c.MaxCores = 16
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.BatchParallelism <= 0 {
		c.BatchParallelism = c.Workers
	}
	return c
}

// Server is the daemon. Create with New, serve via Handler, stop by
// draining (Drain) before closing the listener's http.Server.
type Server struct {
	cfg Config
	mux *http.ServeMux

	cache *compileCache
	disk  *store.Store        // nil unless Config.StoreDir is set
	exp   *experiments.Runner // backs /v1/attribution with its own artifact cache

	sem      chan struct{} // worker slots
	queued   atomic.Int64  // admitted, waiting for a slot
	inflight atomic.Int64  // holding a slot
	// drainMu gates admission against Drain: admit registers with wg under
	// the read lock, Drain flips draining under the write lock before
	// waiting, so wg.Add can never race wg.Wait at a zero counter.
	drainMu  sync.RWMutex
	draining atomic.Bool
	wg       sync.WaitGroup // every admitted request, for Drain

	met metrics
}

// New builds a server. It fails only when Config.StoreDir is set and the
// on-disk store cannot be opened.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newCompileCache(),
		exp:   experiments.NewRunner(),
		sem:   make(chan struct{}, cfg.Workers),
	}
	if cfg.StoreDir != "" {
		disk, err := store.Open(cfg.StoreDir, cfg.StoreMaxBytes)
		if err != nil {
			return nil, err
		}
		s.disk = disk
	}
	// Attribution already holds a worker slot; don't fan out further.
	s.exp.SetWorkers(1)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	s.mux.HandleFunc("GET /v1/attribution", s.handleAttribution)
	s.mux.HandleFunc("GET /v1/frontier", s.handleFrontierGet)
	s.mux.HandleFunc("POST /v1/frontier", s.handleFrontierPost)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain marks the server draining (healthz flips to 503 so load balancers
// stop routing) and waits until every admitted request has finished, or ctx
// expires. New work arriving while draining is refused with 503.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted with %d request(s) in flight: %w",
			s.queued.Load()+s.inflight.Load(), ctx.Err())
	}
}

// admit applies admission control and runs fn on a worker slot with the
// request deadline attached. fn must write the response itself. reqTimeout
// (0 = none) tightens, never extends, the server budget.
//
// The min(server, request) budget starts at admission, not at slot
// acquisition: time spent queued for a worker counts against the deadline.
// (It used to start after the queue wait, which silently extended
// timeout_ms under sustained offered load — a request asking for 50ms
// could sit queued for seconds and still run. Surfaced by fgpload's
// open-loop overload points; pinned by TestQueuedRequestHonorsDeadline.)
func (s *Server) admit(w http.ResponseWriter, r *http.Request, reqTimeout time.Duration, fn func(ctx context.Context)) {
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.met.requests.Add(1)
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.drainMu.RUnlock()
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "queue full")
		return
	}
	s.wg.Add(1)
	s.drainMu.RUnlock()
	defer s.wg.Done()

	budget := s.cfg.Timeout
	if reqTimeout > 0 && reqTimeout < budget {
		budget = reqTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	start := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
	case <-ctx.Done():
		s.queued.Add(-1)
		s.met.canceled.Add(1)
		s.met.lat.observe(time.Since(start))
		if ctx.Err() == context.DeadlineExceeded {
			httpError(w, http.StatusGatewayTimeout, "deadline exceeded while queued for a worker")
		} else {
			// The client is gone; nobody reads this status.
			httpError(w, statusClientClosedRequest, "client closed request while queued")
		}
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		<-s.sem
	}()

	fn(ctx)
	s.met.lat.observe(time.Since(start))
}

// statusClientClosedRequest is nginx's conventional code for a client that
// disconnected before the response; it only shows up in logs and metrics.
const statusClientClosedRequest = 499

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Metrics is the /metrics document.
type Metrics struct {
	Requests   int64 `json:"requests"`
	Rejected   int64 `json:"rejected_429"`
	Canceled   int64 `json:"canceled"`
	Errors     int64 `json:"errors"`
	Batches    int64 `json:"batches"`
	BatchItems int64 `json:"batch_items"`
	InFlight   int64 `json:"inflight"`
	Queued     int64 `json:"queued"`
	Draining   bool  `json:"draining"`
	Cache      struct {
		Entries   int64   `json:"entries"`
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Abandoned int64   `json:"abandoned"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`
	// Artifacts rolls up where artifact and sequential-baseline lookups
	// were satisfied: the in-memory singleflight tier, the on-disk store,
	// or a genuine compile.
	Artifacts struct {
		MemHits  int64   `json:"mem_hits"`
		DiskHits int64   `json:"disk_hits"`
		Compiles int64   `json:"compiles"`
		HitRate  float64 `json:"hit_rate"` // (mem+disk) / all lookups
	} `json:"artifacts"`
	// Store is the on-disk tier's own counters; absent when no -store-dir.
	Store   *store.Metrics `json:"store,omitempty"`
	Latency struct {
		P50Ms  float64 `json:"p50_ms"`
		P99Ms  float64 `json:"p99_ms"`
		P999Ms float64 `json:"p999_ms"`
		Count  int64   `json:"count"`
		Window int     `json:"window"`
	} `json:"latency"`
}

// Snapshot returns the current metrics document (the /metrics payload).
func (s *Server) Snapshot() Metrics {
	var m Metrics
	m.Requests = s.met.requests.Load()
	m.Rejected = s.met.rejected.Load()
	m.Canceled = s.met.canceled.Load()
	m.Errors = s.met.errors.Load()
	m.Batches = s.met.batches.Load()
	m.BatchItems = s.met.items.Load()
	m.InFlight = s.inflight.Load()
	m.Queued = s.queued.Load()
	m.Draining = s.draining.Load()
	m.Cache.Entries = s.cache.entries()
	m.Cache.Hits = s.cache.hits.Load()
	m.Cache.Misses = s.cache.misses.Load()
	m.Cache.Abandoned = s.cache.abandoned.Load()
	if total := m.Cache.Hits + m.Cache.Misses; total > 0 {
		m.Cache.HitRate = float64(m.Cache.Hits) / float64(total)
	}
	m.Artifacts.MemHits = s.met.artMemHits.Load()
	m.Artifacts.DiskHits = s.met.artDiskHits.Load()
	m.Artifacts.Compiles = s.met.artCompiles.Load()
	if total := m.Artifacts.MemHits + m.Artifacts.DiskHits + m.Artifacts.Compiles; total > 0 {
		m.Artifacts.HitRate = float64(m.Artifacts.MemHits+m.Artifacts.DiskHits) / float64(total)
	}
	if s.disk != nil {
		sm := s.disk.Snapshot()
		m.Store = &sm
	}
	p50, p99, p999, count, window := s.met.lat.quantiles()
	m.Latency.P50Ms = float64(p50) / float64(time.Millisecond)
	m.Latency.P99Ms = float64(p99) / float64(time.Millisecond)
	m.Latency.P999Ms = float64(p999) / float64(time.Millisecond)
	m.Latency.Count = count
	m.Latency.Window = window
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode left
}

// errorBody is the JSON error envelope every non-2xx response carries.
// Diagnostics is populated on 422s produced by the static pipeline
// verifier: one structured entry per violated invariant (check name, core,
// instruction index, queue, edge). SourceDiagnostics is populated on 400s
// rejecting an fgp source program: one positioned entry (line, column,
// message, snippet) per frontend error.
type errorBody struct {
	Error             string                `json:"error"`
	Diagnostics       []verify.Diagnostic   `json:"diagnostics,omitempty"`
	SourceDiagnostics []frontend.Diagnostic `json:"source_diagnostics,omitempty"`
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
