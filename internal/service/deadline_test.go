// Regression tests for deadline semantics under sustained load. The bug:
// admit() used to start the min(server, request) budget only after a worker
// slot was acquired, so time spent queued silently extended timeout_ms —
// under saturation, a request with a 50ms budget could wait seconds and
// then still run. The budget now starts at admission and covers the queue
// wait; a request whose deadline passes while queued is a prompt 504.

package service

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestQueuedRequestHonorsDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Timeout: 60 * time.Second})
	s.sem <- struct{}{} // saturate the only worker from the outside
	defer func() { <-s.sem }()

	start := time.Now()
	code, _, msg := postRun(t, ts, RunRequest{Kernel: "sphot-1", Cores: 2, TimeoutMs: 50})
	elapsed := time.Since(start)

	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued request past its deadline: %d %q, want 504", code, msg)
	}
	if !strings.Contains(msg, "queued") {
		t.Errorf("504 body %q does not say the deadline passed in the queue", msg)
	}
	// The old behavior waited out the 60s server budget (or forever, for
	// requests with no server timeout). 5s is generous for a 50ms budget on
	// a loaded CI machine while still catching the regression.
	if elapsed > 5*time.Second {
		t.Errorf("504 took %v; the deadline must fire while queued, not after", elapsed)
	}
	m := s.Snapshot()
	if m.Queued != 0 {
		t.Errorf("request left a queue slot behind: queued=%d", m.Queued)
	}
	if m.Canceled == 0 {
		t.Error("queued-deadline expiry not counted")
	}
	if m.Latency.Count == 0 {
		t.Error("queued-deadline expiry not observed in the latency reservoir")
	}
}

// TestBatchQueuedDeadline: the same contract holds for a whole batch — its
// TimeoutMs covers the queue wait, and expiry is one 504 before any item
// runs.
func TestBatchQueuedDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Timeout: 60 * time.Second})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	start := time.Now()
	code, _, trailer := postBatch(t, ts, BatchRequest{
		Items:     []RunRequest{{Kernel: "sphot-1", Cores: 2}, {Kernel: "irs-1", Cores: 2}},
		TimeoutMs: 50,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued batch past its deadline: %d, want 504", code)
	}
	if trailer != nil {
		t.Error("timed-out batch produced a trailer; items must not have run")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("batch 504 took %v", elapsed)
	}
	if s.Snapshot().BatchItems != 0 {
		t.Error("timed-out batch executed items")
	}
}
