// The compile cache: compiled artifacts and sequential baselines are
// content-addressed by sha256 of the kernel's canonical JSON encoding plus
// the pipeline configuration, with singleflight de-duplication so N
// concurrent requests for one (kernel, pipeline) pair compile it once and
// share the artifact. Artifacts are immutable after compilation (every
// simulation builds a fresh memory image), so sharing is safe.

package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// pipelineKey is the part of the content address that is not the kernel
// itself: every compiler and machine option that changes the artifact.
// Simulation-engine selection (burst vs reference) is deliberately absent —
// the engines are bit-identical, so both serve from one artifact.
type pipelineKey struct {
	Cores           int   `json:"cores"`
	QueueLen        int   `json:"queue_len"`
	TransferLatency int64 `json:"transfer_latency"`
	Speculate       bool  `json:"speculate"`
	NormalizeOps    int   `json:"normalize_ops"`
	Schedule        bool  `json:"schedule"`
	Sequential      bool  `json:"sequential"`
	// Partitioner is "" for the default heuristic ("heuristic" is
	// normalized away by the handler) or "search". The search seed and
	// budget are server constants, not client levers, so they are not part
	// of the address.
	Partitioner string `json:"partitioner"`
}

// Server-side partition-search parameters. Fixed so a searched artifact is
// a pure function of its content address: every replica (and the on-disk
// store) computes byte-identical partitions for the same request.
const (
	serverSearchSeed   = 1
	serverSearchBudget = 48
)

// contentAddress hashes the canonical loop bytes together with the pipeline
// configuration. Loops that print differently but encode identically are
// the same kernel; loops authored identically always encode identically
// (MarshalLoop is canonical — pinned by the codec round-trip tests).
func contentAddress(loopBytes []byte, pk pipelineKey) string {
	h := sha256.New()
	cfg, _ := json.Marshal(pk) // fixed struct, cannot fail
	h.Write(cfg)
	h.Write([]byte{0})
	h.Write(loopBytes)
	return hex.EncodeToString(h.Sum(nil))
}

const cacheShards = 16

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	done chan struct{} // closed once val/err are set
	val  any
	err  error
}

// compileCache is the singleflight content-addressed store. The first
// requester of a key runs fill; everyone else blocks on the entry (or their
// own context) and shares the outcome. Entries whose fill failed with a
// context error are evicted rather than cached, so a timeout never poisons
// the key for later, luckier requests.
type compileCache struct {
	shards       [cacheShards]cacheShard
	hits, misses atomic.Int64
	// abandoned counts waiters that gave up (context done) before the
	// in-flight fill completed; they are neither hits nor misses.
	abandoned atomic.Int64
}

func newCompileCache() *compileCache {
	c := &compileCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]*cacheEntry{}
	}
	return c
}

func (c *compileCache) shardOf(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

// do returns the cached value for key, filling it via fill on first use.
// hit reports whether an entry already existed (i.e. this request did not
// pay for the fill itself). Waiters give up when ctx expires without
// disturbing the fill in progress.
func (c *compileCache) do(ctx context.Context, key string, fill func() (any, error)) (val any, hit bool, err error) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		sh.m[key] = e
		sh.mu.Unlock()
		c.misses.Add(1)
		e.val, e.err = safeFill(fill)
		if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
			sh.mu.Lock()
			if sh.m[key] == e {
				delete(sh.m, key)
			}
			sh.mu.Unlock()
		}
		close(e.done)
		return e.val, false, e.err
	}
	sh.mu.Unlock()
	select {
	case <-e.done:
		c.hits.Add(1)
		return e.val, true, e.err
	case <-ctx.Done():
		// Not a hit: this request never saw the artifact. Counting it as
		// one inflated the hit rate under cancel-heavy load (surfaced by
		// fgpload's cancel traffic class).
		c.abandoned.Add(1)
		return nil, true, fmt.Errorf("service: abandoned wait for in-flight compile: %w", ctx.Err())
	}
}

func (c *compileCache) entries() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += int64(len(sh.m))
		sh.mu.Unlock()
	}
	return n
}

// panicError is a fill panic converted to an error. A panicking compile
// must not kill the filling goroutine with e.done still open (every later
// request for the key would block forever) nor poison the entry; safeFill
// turns it into a value the handlers map to an HTTP 400.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("internal panic: %v", p.val)
}

// safeFill runs fill, converting a panic into a *panicError result. The
// entry is still cached: the same input would panic identically, so
// re-running the fill for every retry only burns CPU.
func safeFill(fill func() (any, error)) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	return fill()
}
