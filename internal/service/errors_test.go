// Request tests for the failure-path contract: every malformed inline-IR
// shape that would panic an in-process constructor must come back as a
// clean 400; kernels that are well-formed but not runnable (verifier
// rejection, deadlock, semantic trap) are 422 with bounded detail; and a
// panic anywhere in the pipeline costs the client one 400, never a worker.

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fgp/internal/ir"
	"fgp/internal/sim"
	"fgp/internal/verify"
)

// postRaw sends a raw body to /v1/run and returns status and decoded
// error envelope (zero-valued on 2xx).
func postRaw(t *testing.T, ts *httptest.Server, body string) (int, errorBody) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if resp.StatusCode != http.StatusOK {
		if err := json.Unmarshal(data, &eb); err != nil {
			t.Fatalf("non-2xx body is not the error envelope: %v\n%s", err, data)
		}
	}
	return resp.StatusCode, eb
}

// irBody wraps a fragment of loop JSON into a full /v1/run body with the
// boilerplate (bounds, arrays, scalars) filled in.
func irBody(bodyStmts string) string {
	return fmt.Sprintf(`{"cores":2,"ir":{"name":"adv","index":"i","start":0,"end":8,"step":1,
		"arrays":[{"name":"a","kind":"f64","f64":[1,2,3,4,5,6,7,8]},
		          {"name":"n","kind":"i64","i64":[1,2,3,4,5,6,7,8]}],
		"scalars":[{"name":"s","kind":"f64","f64":2.5},{"name":"k","kind":"i64","i64":3}],
		"body":[%s]}}`, bodyStmts)
}

// TestRunMalformedIRPanicSites sends one adversarial inline-IR request per
// kind-check that panics in the in-process constructors (ir/expr.go,
// ir/stmt.go, ir/builder.go, outline/emit.go). The wire decoder must turn
// every one into a 400 — never a 500, a dropped connection, or a wedged
// worker — and the server must still serve a healthy request afterwards.
func TestRunMalformedIRPanicSites(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string // the panic site class the input aims at
		body string
	}{
		{"expr.go load index kind", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"load":{"array":"a","kind":"f64","index":{"f64":1.5}}}}}`)},
		{"expr.go bin operand kinds differ", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"bin":{"op":"add","l":{"f64":1},"r":{"i64":1}}}}}`)},
		{"expr.go bin int-only op on floats", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"bin":{"op":"rem","l":{"f64":1},"r":{"f64":2}}}}}`)},
		{"expr.go un not on float", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"i64","expr":{"un":{"op":"not","x":{"f64":1}}}}}`)},
		{"expr.go un sqrt on int", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"un":{"op":"sqrt","x":{"i64":4}}}}}`)},
		{"expr.go cvtif on float", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"un":{"op":"cvtif","x":{"f64":1}}}}}`)},
		{"expr.go cvtfi on int", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"i64","expr":{"un":{"op":"cvtfi","x":{"i64":1}}}}}`)},
		{"stmt.go store index kind", irBody(
			`{"line":1,"assign":{"array":"a","kind":"f64","index":{"f64":0.5},"expr":{"f64":1}}}`)},
		{"stmt.go store value kind", irBody(
			`{"line":1,"assign":{"array":"a","kind":"f64","index":{"i64":0},"expr":{"i64":7}}}`)},
		{"builder.go undefined temp", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"temp":"ghost","kind":"f64"}}}`)},
		{"builder.go redefinition with different kind", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"f64":1}}},
			 {"line":2,"assign":{"temp":"x","kind":"i64","expr":{"i64":2}}}`)},
		{"builder.go assign kind disagrees with expr", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"i64":1}}}`)},
		{"emit.go unknown array", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"load":{"array":"ghost","kind":"f64","index":{"i64":0}}}}}`)},
		{"emit.go array/scalar kind confusion", irBody(
			`{"line":1,"assign":{"temp":"x","kind":"i64","expr":{"load":{"array":"a","kind":"i64","index":{"i64":0}}}}}`)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, eb := postRaw(t, ts, c.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (error %q)", code, eb.Error)
			}
			if eb.Error == "" {
				t.Error("400 carried no diagnostic")
			}
		})
	}
	// The daemon is still healthy after the adversarial batch.
	if code, _, errMsg := postRun(t, ts, RunRequest{Kernel: "irs-1", Cores: 2}); code != 200 {
		t.Fatalf("healthy request after adversarial batch: %d (%s)", code, errMsg)
	}
}

// TestRunVerifierRejectionReturns422: a configuration the static verifier
// rejects at compile time (lammps-3 with 2-slot queues deadlocks) must be
// a 422 carrying the structured diagnostics, not a 500 with a state dump.
func TestRunVerifierRejectionReturns422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, eb := postRaw(t, ts, `{"kernel":"lammps-3","cores":4,"queue_len":2}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (error %q)", code, eb.Error)
	}
	if !strings.Contains(eb.Error, "verify") {
		t.Errorf("error %q does not mention the verifier", eb.Error)
	}
	if len(eb.Diagnostics) == 0 {
		t.Fatal("422 carried no structured diagnostics")
	}
	for _, d := range eb.Diagnostics {
		if d.Check == "" || d.Msg == "" {
			t.Errorf("diagnostic missing check or message: %+v", d)
		}
	}
	if len(eb.Error) > maxErrorBytes+64 {
		t.Errorf("error text not bounded: %d bytes", len(eb.Error))
	}
}

// TestRunTrapReturns422: a well-formed kernel whose own semantics trap
// (division by zero) is the kernel's fault, not the server's.
func TestRunTrapReturns422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	b := ir.NewBuilder("div0", "i", 0, 8, 1)
	b.ArrayI("n", []int64{1, 2, 3, 4, 5, 6, 7, 8})
	z := b.ScalarI("z", 0)
	x := b.Def("x", ir.DivE(ir.LDI("n", b.Idx()), z))
	b.StoreI("n", b.Idx(), x)
	wire, err := ir.MarshalLoop(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	code, _, errMsg := postRun(t, ts, RunRequest{IR: wire, Cores: 2})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (error %q)", code, errMsg)
	}
	if !strings.Contains(errMsg, "division by zero") {
		t.Errorf("error %q does not carry the trap diagnostic", errMsg)
	}
}

// TestFailRunMapping unit-tests the error→status mapping, including the
// dump-size bound on simulator deadlock errors.
func TestFailRunMapping(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		err    error
		status int
		want   string
	}{
		{"deadlock dump bounded",
			fmt.Errorf("%w\n%s", sim.ErrDeadlock, strings.Repeat("core state line\n", 500)),
			http.StatusUnprocessableEntity, "truncated"},
		{"verifier rejection",
			fmt.Errorf("compile: %w", &verify.Error{Diags: []verify.Diagnostic{
				{Check: "deadlock", Core: 1, PC: 3, Queue: 2, Edge: 4, Msg: "stuck"}}}),
			http.StatusUnprocessableEntity, "deadlock"},
		{"panic boundary",
			fmt.Errorf("compile: %w", &panicError{val: "index out of range"}),
			http.StatusBadRequest, "internal panic"},
		{"infrastructure failure",
			fmt.Errorf("disk on fire"),
			http.StatusInternalServerError, "disk on fire"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.failRun(rec, "stage", c.err)
			if rec.Code != c.status {
				t.Fatalf("status %d, want %d", rec.Code, c.status)
			}
			var eb errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(eb.Error, c.want) {
				t.Errorf("error %q does not contain %q", eb.Error, c.want)
			}
			if len(eb.Error) > maxErrorBytes+64 {
				t.Errorf("error text not bounded: %d bytes", len(eb.Error))
			}
		})
	}
}

// TestSafeFillPanicIsContained: a panicking cache fill must neither kill
// the goroutine nor leave the entry's done channel open (which would hang
// every later request for the key forever). The panic converts to an
// error, and repeat lookups return it immediately.
func TestSafeFillPanicIsContained(t *testing.T) {
	c := newCompileCache()
	fills := 0
	boom := func() (any, error) { fills++; panic("kind mismatch in emitter") }
	for i := 0; i < 3; i++ {
		_, _, err := c.do(t.Context(), "key", boom)
		var pe *panicError
		if err == nil || !strings.Contains(err.Error(), "internal panic") {
			t.Fatalf("lookup %d: err = %v, want panic error", i, err)
		}
		if ok := errors.As(err, &pe); !ok || pe.val != "kind mismatch in emitter" {
			t.Fatalf("lookup %d: panic value lost: %v", i, err)
		}
		if len(pe.stack) == 0 {
			t.Error("panic stack not captured")
		}
	}
	if fills != 1 {
		t.Errorf("fill ran %d times; a deterministic panic should be cached like any error", fills)
	}
}
