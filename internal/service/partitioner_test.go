// Conformance for the partitioner lever over HTTP: /v1/run and /v1/batch
// accept partitioner "heuristic" (the default, both spellings one content
// address) and "search" (server-side fixed seed/budget), searched artifacts
// content-address separately from heuristic ones, a searched run is never
// slower than the heuristic run of the same request, and a bad lever value
// is a 400 naming the valid set.

package service

import (
	"net/http"
	"strings"
	"testing"
)

func TestRunPartitionerLever(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := RunRequest{Kernel: "umt2k-3", Cores: 4}

	code, heur, _ := postRun(t, ts, base)
	if code != 200 {
		t.Fatalf("heuristic run: %d", code)
	}
	if heur.CachedArtifact {
		t.Error("first heuristic request claims a cache hit")
	}

	searchReq := base
	searchReq.Partitioner = "search"
	code, searched, _ := postRun(t, ts, searchReq)
	if code != 200 {
		t.Fatalf("search run: %d", code)
	}
	if searched.CachedArtifact {
		t.Error("search request hit the heuristic artifact: the lever must be part of the content address")
	}
	if searched.Cycles > heur.Cycles {
		t.Errorf("searched partition slower than heuristic over HTTP: %d > %d cycles",
			searched.Cycles, heur.Cycles)
	}
	if searched.SeqCycles != heur.SeqCycles {
		t.Errorf("sequential baseline drifted with the partitioner lever: %d vs %d",
			searched.SeqCycles, heur.SeqCycles)
	}

	// Replay: the searched artifact is cached under its own address and the
	// warm run is cycle-identical (fixed server seed/budget make the search
	// a pure function of the address).
	code, warm, _ := postRun(t, ts, searchReq)
	if code != 200 {
		t.Fatalf("warm search run: %d", code)
	}
	if !warm.CachedArtifact {
		t.Error("identical search request missed the cache")
	}
	if warm.Cycles != searched.Cycles {
		t.Errorf("cached searched artifact diverged: %d vs %d cycles", warm.Cycles, searched.Cycles)
	}

	// The explicit "heuristic" spelling shares the default's address.
	explicit := base
	explicit.Partitioner = "heuristic"
	code, eh, _ := postRun(t, ts, explicit)
	if code != 200 {
		t.Fatalf("explicit heuristic run: %d", code)
	}
	if !eh.CachedArtifact {
		t.Error(`partitioner "heuristic" did not share the default's content address`)
	}
	if eh.Cycles != heur.Cycles {
		t.Errorf("explicit heuristic diverged from default: %d vs %d cycles", eh.Cycles, heur.Cycles)
	}
}

func TestRunPartitionerValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, msg := postRun(t, ts, RunRequest{Kernel: "irs-1", Cores: 2, Partitioner: "annealed"})
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	for _, want := range []string{"partitioner", "heuristic", "search"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// TestBatchPartitionerLever: the lever rides through /v1/batch items
// unchanged — a heuristic and a search item for the same kernel both
// succeed, and the searched item is never slower.
func TestBatchPartitionerLever(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := BatchRequest{Items: []RunRequest{
		{Kernel: "lammps-2", Cores: 4},
		{Kernel: "lammps-2", Cores: 4, Partitioner: "search"},
		{Kernel: "lammps-2", Cores: 4, Partitioner: "bogus"},
	}}
	code, items, trailer := postBatch(t, ts, req)
	if code != 200 {
		t.Fatalf("batch: %d", code)
	}
	if trailer == nil || trailer.Items != 3 || trailer.OK != 2 || trailer.Failed != 1 {
		t.Fatalf("trailer %+v, want 3 items / 2 ok / 1 failed", trailer)
	}
	byIndex := map[int]BatchItemResult{}
	for _, it := range items {
		byIndex[it.Index] = it
	}
	heur, searched, bad := byIndex[0], byIndex[1], byIndex[2]
	if heur.Status != 200 || searched.Status != 200 {
		t.Fatalf("healthy items failed: heuristic %d, search %d", heur.Status, searched.Status)
	}
	if searched.Result.Cycles > heur.Result.Cycles {
		t.Errorf("batch searched item slower than heuristic: %d > %d cycles",
			searched.Result.Cycles, heur.Result.Cycles)
	}
	if bad.Status != http.StatusBadRequest || !strings.Contains(bad.Error, "partitioner") {
		t.Errorf("bad lever item: status %d error %q, want 400 naming the lever", bad.Status, bad.Error)
	}
}
