// The race soak: 64 concurrent clients against one server, mixing cache
// hits on named kernels, cold compiles of unique inline IR, mid-simulation
// client cancellations, adversarial inputs (malformed JSON, ill-kinded IR,
// trapping kernels, verifier-rejected configurations), and a queue small
// enough to force 429s. CI runs this under -race; locally it doubles as
// the admission-control and goroutine-hygiene check.

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fgp/internal/ir"
)

func TestSoakConcurrentMixedLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s, err := New(Config{Workers: 4, QueueDepth: 6, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	post := func(ctx context.Context, req RunRequest) (int, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, err
		}
		hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(hreq)
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// postRaw sends an arbitrary (possibly malformed) body.
	postBytes := func(body string) (int, error) {
		resp, err := client.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Adversarial bodies: each must be refused with a clean 4xx (or shed
	// with 429 under load) — never a 5xx, a hung worker, or a dead daemon.
	adversarial := []string{
		`{not json`,
		`{"cores":2,"ir":{"name":"x"}}`,
		`{"cores":2,"ir":{"name":"adv","index":"i","start":0,"end":4,"step":1,
			"arrays":[{"name":"a","kind":"f64","f64":[1,2,3,4]}],
			"body":[{"line":1,"assign":{"temp":"x","kind":"f64","expr":{"bin":{"op":"add","l":{"f64":1},"r":{"i64":1}}}}}]}}`,
		`{"cores":2,"ir":{"name":"adv","index":"i","start":0,"end":4,"step":1,
			"arrays":[{"name":"n","kind":"i64","i64":[1,0,3,4]}],
			"body":[{"line":1,"assign":{"array":"n","kind":"i64","index":{"temp":"i","kind":"i64"},
				"expr":{"bin":{"op":"div","l":{"i64":1},"r":{"load":{"array":"n","kind":"i64","index":{"temp":"i","kind":"i64"}}}}}}}]}}`,
		`{"kernel":"lammps-3","cores":4,"queue_len":2}`,
	}

	const clients = 64
	var (
		wg          sync.WaitGroup
		ok          atomic.Int64
		shed        atomic.Int64 // 429s observed by clients
		aborted     atomic.Int64 // client-side cancellations
		rejected4xx atomic.Int64 // adversarial inputs correctly refused
		failures    atomic.Int64
	)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				switch (c + iter) % 5 {
				case 0: // cache hit on a named kernel
					code, err := post(context.Background(), RunRequest{Kernel: "sphot-1", Cores: 2})
					switch {
					case err != nil:
						failures.Add(1)
						t.Errorf("client %d: %v", c, err)
					case code == 200:
						ok.Add(1)
					case code == 429:
						shed.Add(1)
					default:
						failures.Add(1)
						t.Errorf("client %d: named run returned %d", c, code)
					}
				case 1: // cold compile of a unique kernel
					wire, err := ir.MarshalLoop(uniqueLoop(int64(c*31+iter), 64))
					if err != nil {
						failures.Add(1)
						t.Errorf("client %d: %v", c, err)
						continue
					}
					code, err := post(context.Background(), RunRequest{IR: wire, Cores: 2})
					switch {
					case err != nil:
						failures.Add(1)
						t.Errorf("client %d: %v", c, err)
					case code == 200:
						ok.Add(1)
					case code == 429:
						shed.Add(1)
					default:
						failures.Add(1)
						t.Errorf("client %d: cold run returned %d", c, code)
					}
				case 2: // cancel mid-flight: a long simulation, client gone early
					wire, err := ir.MarshalLoop(uniqueLoop(int64(c), 2_000_000))
					if err != nil {
						failures.Add(1)
						t.Errorf("client %d: %v", c, err)
						continue
					}
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+c%20)*time.Millisecond)
					_, err = post(ctx, RunRequest{IR: wire, Cores: 2})
					cancel()
					if err != nil {
						aborted.Add(1) // the expected outcome: request died with the context
					} else {
						ok.Add(1) // raced to completion first — also fine
					}
				case 3: // burst of cheap catalog reads mixed with named runs
					resp, err := client.Get(ts.URL + "/v1/kernels")
					if err != nil {
						failures.Add(1)
						t.Errorf("client %d: %v", c, err)
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					code, err := post(context.Background(), RunRequest{Kernel: "irs-1", Cores: 2})
					switch {
					case err != nil:
						failures.Add(1)
						t.Errorf("client %d: %v", c, err)
					case code == 200:
						ok.Add(1)
					case code == 429:
						shed.Add(1)
					default:
						failures.Add(1)
						t.Errorf("client %d: run returned %d", c, code)
					}
				case 4: // adversarial input: malformed, trapping, or unrunnable
					body := adversarial[(c+iter)%len(adversarial)]
					code, err := postBytes(body)
					switch {
					case err != nil:
						failures.Add(1)
						t.Errorf("client %d: adversarial post: %v", c, err)
					case code == 429:
						shed.Add(1)
					case code >= 400 && code < 500:
						rejected4xx.Add(1) // the expected outcome
					default:
						failures.Add(1)
						t.Errorf("client %d: adversarial input returned %d, want 4xx", c, code)
					}
				}
			}
		}()
	}
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("no request succeeded")
	}
	if rejected4xx.Load() == 0 && shed.Load() == 0 {
		t.Error("no adversarial input was refused; the failure paths never ran")
	}
	t.Logf("soak: %d ok, %d shed (429), %d client-aborted, %d adversarial-refused, %d failures",
		ok.Load(), shed.Load(), aborted.Load(), rejected4xx.Load(), failures.Load())

	// Drain; every admitted request (including abandoned ones whose
	// handlers are still unwinding) must finish.
	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}

	m := s.Snapshot()
	if m.InFlight != 0 || m.Queued != 0 {
		t.Errorf("work left behind after drain: inflight=%d queued=%d", m.InFlight, m.Queued)
	}
	if m.Cache.Hits == 0 {
		t.Error("soak produced zero cache hits; the content-addressed cache is not being reused")
	}
	if m.Cache.Misses == 0 {
		t.Error("soak produced zero cache misses; cold compiles never happened")
	}
	if m.Cache.HitRate <= 0 || m.Cache.HitRate >= 1 {
		t.Errorf("hit rate %v outside (0, 1)", m.Cache.HitRate)
	}
	if m.Latency.Count == 0 {
		t.Error("latency reservoir recorded nothing")
	}
	if shed.Load() > 0 && m.Rejected == 0 {
		t.Errorf("clients saw %d 429s but the server counted none rejected", shed.Load())
	}

	ts.Close()
	client.CloseIdleConnections()

	// Goroutine hygiene: after the server closes, we must converge back to
	// (about) the starting count — abandoned handlers must not linger.
	deadline := time.Now().Add(30 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > baseline+2 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines: %d at start, %d after shutdown\n%s", baseline, now, buf[:n])
	}
}
