// Disk-tier conformance: a daemon restarted (or a replica started) on the
// same -store-dir serves earlier fills from disk instead of recompiling; a
// crash mid-fill leaves nothing visible; a bit-flipped entry is detected,
// evicted, recompiled, and overwritten — and results stay bit-identical
// through every path.

package service

import (
	"io/fs"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fgp/internal/kernels"
)

// sweep runs the full built-in catalog (the Fig 12 kernel set) at 2 cores
// and returns name → (cycles, seq cycles, speedup).
func sweep(t *testing.T, s *Server) map[string][3]any {
	t.Helper()
	ts := newServerOn(t, s)
	out := map[string][3]any{}
	for _, k := range kernels.All() {
		code, resp, errMsg := postRun(t, ts, RunRequest{Kernel: k.Name, Cores: 2})
		if code != 200 {
			t.Fatalf("%s: status %d (%s)", k.Name, code, errMsg)
		}
		out[k.Name] = [3]any{resp.Cycles, resp.SeqCycles, resp.Speedup}
	}
	return out
}

// newServerOn wraps an already-built Server in an httptest listener.
func newServerOn(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestWarmRestartServesFromDisk is the acceptance demo: a second daemon on
// the same -store-dir must serve the first's fills with a ≥90% artifact hit
// rate and zero recompiles, bit-identically.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	n := int64(len(kernels.All()))

	a, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold := sweep(t, a)
	am := a.Snapshot()
	if am.Artifacts.Compiles != 2*n { // one artifact + one baseline per kernel
		t.Fatalf("cold sweep: %d compiles, want %d", am.Artifacts.Compiles, 2*n)
	}
	if am.Store == nil || am.Store.Entries != 2*n {
		t.Fatalf("store after cold sweep: %+v, want %d entries", am.Store, 2*n)
	}

	// "Restart": a fresh process image — empty memory cache, same store.
	b, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm := sweep(t, b)
	bm := b.Snapshot()
	if bm.Artifacts.Compiles != 0 {
		t.Errorf("warm restart recompiled %d times, want 0", bm.Artifacts.Compiles)
	}
	if bm.Artifacts.DiskHits != 2*n {
		t.Errorf("warm restart: %d disk hits, want %d", bm.Artifacts.DiskHits, 2*n)
	}
	if bm.Artifacts.HitRate < 0.9 {
		t.Errorf("warm restart artifact hit rate %.2f, want >= 0.90", bm.Artifacts.HitRate)
	}
	for name, got := range warm {
		if got != cold[name] {
			t.Errorf("%s: warm result %v differs from cold %v", name, got, cold[name])
		}
	}
}

// TestCorruptStoreEntryRecompiled: flip a byte in every committed entry;
// the next daemon must detect the corruption, evict, recompile with
// identical results, and leave a clean store behind for the daemon after.
func TestCorruptStoreEntryRecompiled(t *testing.T) {
	dir := t.TempDir()
	req := RunRequest{Kernel: "sphot-1", Cores: 2}

	a, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	code, want, _ := postRun(t, newServerOn(t, a), req)
	if code != 200 {
		t.Fatalf("cold run: %d", code)
	}

	// Bit-flip the last byte (payload territory) of every entry.
	flipped := 0
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".art") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)-1] ^= 0xff
		flipped++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil || flipped != 2 {
		t.Fatalf("corrupting entries: flipped=%d err=%v", flipped, err)
	}

	b, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	code, got, errMsg := postRun(t, newServerOn(t, b), req)
	if code != 200 {
		t.Fatalf("run against corrupt store: %d (%s); corruption must cost a recompile, not the request", code, errMsg)
	}
	if got.Cycles != want.Cycles || got.SeqCycles != want.SeqCycles {
		t.Errorf("recompiled result differs: %+v vs %+v", got, want)
	}
	bm := b.Snapshot()
	if bm.Store.Corrupt != 2 {
		t.Errorf("store counted %d corrupt entries, want 2", bm.Store.Corrupt)
	}
	if bm.Artifacts.Compiles != 2 {
		t.Errorf("%d compiles after corruption, want 2", bm.Artifacts.Compiles)
	}

	// The recompile overwrote the bad entries: a third daemon warm-starts.
	c, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if code, _, _ := postRun(t, newServerOn(t, c), req); code != 200 {
		t.Fatalf("run on healed store: %d", code)
	}
	cm := c.Snapshot()
	if cm.Artifacts.Compiles != 0 || cm.Artifacts.DiskHits != 2 {
		t.Errorf("healed store: %d compiles / %d disk hits, want 0/2", cm.Artifacts.Compiles, cm.Artifacts.DiskHits)
	}
}

// TestCrashMidFillInvisible: temp files from a daemon killed mid-Put must
// never surface as entries, and the next Open sweeps them from disk.
func TestCrashMidFillInvisible(t *testing.T) {
	dir := t.TempDir()
	// Simulate the wreckage: a partially-written temp file in a fan-out
	// subdirectory, exactly where Put stages them.
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "tmp-deadbeef"), []byte("half-written artifac"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if m := s.Snapshot(); m.Store == nil || m.Store.Entries != 0 {
		t.Errorf("temp wreckage surfaced as entries: %+v", m.Store)
	}
	var tmps []string
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(filepath.Base(path), "tmp-") {
			tmps = append(tmps, path)
		}
		return nil
	})
	if len(tmps) != 0 {
		t.Errorf("temp files survived Open: %v", tmps)
	}
	// The daemon is fully functional on the swept store.
	if code, _, errMsg := postRun(t, newServerOn(t, s), RunRequest{Kernel: "irs-1", Cores: 2}); code != 200 {
		t.Fatalf("run after sweep: %d (%s)", code, errMsg)
	}
}

// TestStoreDirUnopenable: a store directory that cannot be created is a
// startup error, not a silent memory-only daemon.
func TestStoreDirUnopenable(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{StoreDir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("New succeeded with an unopenable store dir")
	}
}
