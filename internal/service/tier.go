// The disk tier: cache fills routed through the content-addressed on-disk
// artifact store when one is configured (-store-dir). The in-memory
// singleflight cache stays the first tier — it deduplicates concurrent
// fills and holds live *core.Artifact values — while the store underneath
// makes fills durable, so a restarted daemon or a horizontal replica
// sharing the directory serves earlier fills as disk hits instead of
// recompiling.
//
// The store detects corruption itself (sha256 read-back check) and evicts
// bad entries; a decode failure here (e.g. an artifact wire-version skew
// after an upgrade) is treated exactly like a miss — recompile and
// overwrite. Put failures are deliberately non-fatal: a full or read-only
// disk degrades the daemon to memory-only caching rather than failing
// requests.

package service

import (
	"strconv"

	"fgp/internal/core"
)

// tieredFill wraps a compile closure with the disk tier. kind namespaces
// the on-disk key ("art" or "seq"); addr is the content address (hex
// sha256). The returned closure is what the in-memory cache singleflights,
// so at most one goroutine per key runs it at a time.
func (s *Server) tieredFill(kind, addr string, compile func() (any, error),
	encode func(any) ([]byte, error), decode func([]byte) (any, error)) func() (any, error) {
	if s.disk == nil {
		return func() (any, error) {
			v, err := compile()
			if err == nil {
				s.met.artCompiles.Add(1)
			}
			return v, err
		}
	}
	key := kind + "-" + addr
	return func() (any, error) {
		if data, err := s.disk.Get(key); err == nil {
			if v, derr := decode(data); derr == nil {
				s.met.artDiskHits.Add(1)
				return v, nil
			}
			// Decodable by the store (checksum passed) but not by us:
			// wire-version skew from an older daemon. Recompile; the Put
			// below overwrites the stale entry.
		}
		v, err := compile()
		if err != nil {
			return nil, err
		}
		s.met.artCompiles.Add(1)
		if data, eerr := encode(v); eerr == nil {
			_ = s.disk.Put(key, data) // best effort; see package comment
		}
		return v, nil
	}
}

// encodeArtifact / decodeArtifact carry a compiled *core.Artifact through
// the store's []byte interface.
func encodeArtifact(v any) ([]byte, error) {
	return v.(*core.Artifact).MarshalBinary()
}

func decodeArtifact(data []byte) (any, error) {
	return core.UnmarshalArtifact(data)
}

// encodeSeqCycles / decodeSeqCycles persist the sequential baseline — a
// single int64 cycle count — as decimal text.
func encodeSeqCycles(v any) ([]byte, error) {
	return strconv.AppendInt(nil, v.(int64), 10), nil
}

func decodeSeqCycles(data []byte) (any, error) {
	n, err := strconv.ParseInt(string(data), 10, 64)
	if err != nil {
		return nil, err
	}
	return n, nil
}
