// Request counters and the latency reservoir behind /metrics.

package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type metrics struct {
	requests atomic.Int64 // everything that passed the draining gate
	rejected atomic.Int64 // shed with 429 (queue full)
	canceled atomic.Int64 // client gone or deadline passed mid-request
	errors   atomic.Int64 // 4xx/5xx from validation, compile, or simulate
	lat      latencyReservoir
}

// latencyWindow is how many recent request durations the p50/p99 estimates
// are computed over.
const latencyWindow = 1024

// latencyReservoir keeps the last latencyWindow request durations in a
// ring. Quantiles are computed on demand from a sorted copy — /metrics is
// low-rate, requests are not, so the observe path stays O(1).
type latencyReservoir struct {
	mu    sync.Mutex
	buf   [latencyWindow]time.Duration
	next  int
	total int64
}

func (r *latencyReservoir) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % latencyWindow
	r.total++
	r.mu.Unlock()
}

// quantiles returns p50 and p99 over the current window, the lifetime
// observation count, and the window size.
func (r *latencyReservoir) quantiles() (p50, p99 time.Duration, count int64, window int) {
	r.mu.Lock()
	n := int(r.total)
	if n > latencyWindow {
		n = latencyWindow
	}
	sorted := make([]time.Duration, n)
	copy(sorted, r.buf[:n])
	count = r.total
	r.mu.Unlock()
	if n == 0 {
		return 0, 0, count, latencyWindow
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Nearest-rank on the window.
	rank := func(q float64) time.Duration {
		i := int(q*float64(n)+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.99), count, latencyWindow
}
