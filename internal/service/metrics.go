// Request counters and the latency reservoir behind /metrics.
//
// Both are sharded: under sustained offered load (cmd/fgpload drives tens
// of thousands of requests per second through an in-process server) every
// request touches these paths, and a single atomic word — let alone a
// single mutex — becomes a coherence hot spot that shows up in the soak
// profile. The cure is McKenney's statistical ("scalable") counter: per-
// shard counts on their own cache lines, incremented mostly-locally and
// summed only when /metrics reads them. Reads are approximate under
// concurrent writes but monotonic across snapshots: each shard is read in
// the same order every time, and each shard only grows.

package service

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counterShards is a power of two so the shard pick compiles to a mask.
const counterShards = 16

// padded is an atomic counter alone on its cache line, so neighboring
// shards do not false-share.
type padded struct {
	n atomic.Int64
	_ [56]byte
}

// counter is a sharded monotonic counter. Add picks a shard with the
// runtime's per-P fastrand (no shared state on the increment path); Load
// sums the shards.
type counter struct {
	shards [counterShards]padded
}

func (c *counter) Add(delta int64) {
	c.shards[rand.Uint32N(counterShards)].n.Add(delta)
}

func (c *counter) Load() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

type metrics struct {
	requests counter // everything that passed the draining gate
	rejected counter // shed with 429 (queue full)
	canceled counter // client gone or deadline passed mid-request
	errors   counter // 4xx/5xx from validation, compile, or simulate
	batches  counter // /v1/batch requests admitted
	items    counter // batch items executed (all outcomes)

	// Artifact-lookup rollup across both cache tiers. One increment per
	// artifact or sequential-baseline lookup: memory singleflight hit,
	// disk-store hit (no recompile), or a genuine compile.
	artMemHits  counter
	artDiskHits counter
	artCompiles counter

	lat latencyReservoir
}

// latShards shards the reservoir's mutex; latencyWindow is the total
// sample count quantiles are computed over (p999 needs a few thousand).
const (
	latShards       = 16
	latencyWindow   = 4096
	latShardWindow  = latencyWindow / latShards
)

type latShard struct {
	mu    sync.Mutex
	buf   [latShardWindow]time.Duration
	next  int
	total int64
	_     [32]byte
}

// latencyReservoir keeps the last ~latencyWindow request durations across
// latShards independently locked rings. Quantiles are computed on demand
// from a sorted merge — /metrics is low-rate, requests are not, so the
// observe path stays O(1) and contends only 1/latShards of the time.
type latencyReservoir struct {
	shards [latShards]latShard
}

func (r *latencyReservoir) observe(d time.Duration) {
	sh := &r.shards[rand.Uint32N(latShards)]
	sh.mu.Lock()
	sh.buf[sh.next] = d
	sh.next = (sh.next + 1) % latShardWindow
	sh.total++
	sh.mu.Unlock()
}

// quantiles returns p50/p99/p999 over the current window, the lifetime
// observation count, and the window size.
func (r *latencyReservoir) quantiles() (p50, p99, p999 time.Duration, count int64, window int) {
	sorted := make([]time.Duration, 0, latencyWindow)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := int(sh.total)
		if n > latShardWindow {
			n = latShardWindow
		}
		sorted = append(sorted, sh.buf[:n]...)
		count += sh.total
		sh.mu.Unlock()
	}
	if len(sorted) == 0 {
		return 0, 0, 0, count, latencyWindow
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Nearest-rank on the window.
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.99), rank(0.999), count, latencyWindow
}
