// Lever-presence conformance: the machine levers on /v1/run must
// distinguish "not sent" from a literal zero. transfer_latency 0 is a real
// machine (instant transfers) with its own content address and cycle
// count; unset, the legacy `queue_len: 0` spelling, and an explicit paper
// default are all one canonical address.

package service

import (
	"encoding/json"
	"strings"
	"testing"
)

// rawJSON feeds a hand-written body through postRun's marshal step
// unchanged, so tests can spell field presence exactly.
func rawJSON(s string) json.RawMessage { return json.RawMessage(s) }

func TestZeroTransferLatencyIsARealLever(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post := func(body string) *RunResponse {
		t.Helper()
		code, resp, errMsg := postRun(t, ts, rawJSON(body))
		if code != 200 {
			t.Fatalf("POST %s: %d %s", body, code, errMsg)
		}
		return resp
	}

	unset := post(`{"kernel":"umt2k-4","cores":4}`)
	if unset.ArtifactAddress == "" {
		t.Fatal("response carries no artifact address")
	}

	// The explicit paper default is the same machine: same canonical
	// address (so the artifact is a cache hit), same cycle count.
	explicitDefault := post(`{"kernel":"umt2k-4","cores":4,"transfer_latency":5}`)
	if explicitDefault.ArtifactAddress != unset.ArtifactAddress {
		t.Errorf("explicit transfer_latency 5 address %s != unset %s",
			explicitDefault.ArtifactAddress, unset.ArtifactAddress)
	}
	if !explicitDefault.CachedArtifact {
		t.Error("explicit paper default recompiled instead of hitting the canonical address")
	}
	if explicitDefault.Cycles != unset.Cycles {
		t.Errorf("explicit default cycles %d != unset %d", explicitDefault.Cycles, unset.Cycles)
	}

	// transfer_latency 0 is a different machine: distinct address,
	// strictly fewer cycles (umt2k-4 at 4 cores communicates).
	zero := post(`{"kernel":"umt2k-4","cores":4,"transfer_latency":0}`)
	if zero.ArtifactAddress == unset.ArtifactAddress {
		t.Error("transfer_latency 0 shares the unset content address; zero was decoded as absent")
	}
	if zero.Cycles >= unset.Cycles {
		t.Errorf("transfer_latency 0 cycles %d, want strictly fewer than default %d",
			zero.Cycles, unset.Cycles)
	}
}

func TestQueueLenLegacyZeroStaysCanonical(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post := func(body string) *RunResponse {
		t.Helper()
		code, resp, errMsg := postRun(t, ts, rawJSON(body))
		if code != 200 {
			t.Fatalf("POST %s: %d %s", body, code, errMsg)
		}
		return resp
	}
	unset := post(`{"kernel":"sphot-1","cores":2}`)
	for _, body := range []string{
		`{"kernel":"sphot-1","cores":2,"queue_len":0}`,  // legacy "default" spelling
		`{"kernel":"sphot-1","cores":2,"queue_len":20}`, // explicit paper default
	} {
		r := post(body)
		if r.ArtifactAddress != unset.ArtifactAddress {
			t.Errorf("%s: address %s, want the canonical %s", body, r.ArtifactAddress, unset.ArtifactAddress)
		}
		if !r.CachedArtifact {
			t.Errorf("%s: recompiled instead of hitting the canonical address", body)
		}
	}
	// A real capacity override is its own machine.
	short := post(`{"kernel":"sphot-1","cores":2,"queue_len":4}`)
	if short.ArtifactAddress == unset.ArtifactAddress {
		t.Error("queue_len 4 shares the default content address")
	}
}

func TestLeverBoundsStillRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, c := range []struct {
		body string
		want string
	}{
		{`{"kernel":"irs-1","queue_len":-1}`, "queue_len"},
		{`{"kernel":"irs-1","queue_len":5000}`, "queue_len"},
		{`{"kernel":"irs-1","transfer_latency":-1}`, "transfer_latency"},
		{`{"kernel":"irs-1","transfer_latency":1048577}`, "transfer_latency"},
	} {
		code, eb := postRaw(t, ts, c.body)
		if code != 400 {
			t.Errorf("%s: status %d, want 400", c.body, code)
		}
		if !strings.Contains(eb.Error, c.want) {
			t.Errorf("%s: error %q does not name %s", c.body, eb.Error, c.want)
		}
	}
}
