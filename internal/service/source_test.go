// Tests for the fgp source front door on /v1/run and /v1/batch: cache
// convergence with inline IR, positioned diagnostics on 400s, and the
// adversarial-input bounds (depth, node budget, body size).

package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"fgp/internal/frontend"
	"fgp/internal/ir"
	"fgp/internal/kernels"
)

// mustBody renders a request as the raw JSON string postRaw wants.
func mustBody(t *testing.T, req RunRequest) string {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRunSourceSharesCacheWithIR is the service acceptance criterion: a
// source program equivalent to an inline-IR request must return
// bit-identical results and hit the artifact cache entry the IR request
// filled (same content address).
func TestRunSourceSharesCacheWithIR(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	k, err := kernels.ByName("irs-1")
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ir.MarshalLoop(k.Build())
	if err != nil {
		t.Fatal(err)
	}
	code, inline, _ := postRun(t, ts, RunRequest{IR: wire, Cores: 2})
	if code != 200 {
		t.Fatalf("inline run: %d", code)
	}

	src := frontend.Format(k.Build())
	code, fromSrc, _ := postRun(t, ts, RunRequest{Source: src, Cores: 2})
	if code != 200 {
		t.Fatalf("source run: %d", code)
	}
	if !fromSrc.CachedArtifact {
		t.Error("source form of the kernel missed the cache the inline-IR request filled")
	}
	if fromSrc.Cycles != inline.Cycles || fromSrc.SeqCycles != inline.SeqCycles {
		t.Errorf("source vs inline drifted: %d/%d vs %d/%d cycles",
			fromSrc.Cycles, fromSrc.SeqCycles, inline.Cycles, inline.SeqCycles)
	}
	if fromSrc.Kernel != inline.Kernel {
		t.Errorf("kernel name drifted: %q vs %q", fromSrc.Kernel, inline.Kernel)
	}
}

// TestRunSourceDiagnostics: a malformed program is a 400 whose envelope
// carries positioned frontend diagnostics, not just a flat message.
func TestRunSourceDiagnostics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, eb := postRaw(t, ts,
		`{"cores":2,"source":"array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = missing;\n}"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	if !strings.HasPrefix(eb.Error, "source: ") {
		t.Errorf("error = %q, want a source: prefix", eb.Error)
	}
	if len(eb.SourceDiagnostics) == 0 {
		t.Fatal("400 carries no source diagnostics")
	}
	for _, d := range eb.SourceDiagnostics {
		if d.Line < 1 || d.Col < 1 {
			t.Errorf("diagnostic without position: %+v", d)
		}
	}
	if d := eb.SourceDiagnostics[0]; d.Line != 3 || !strings.Contains(d.Msg, "missing") {
		t.Errorf("diagnostic = %+v, want line 3 about %q", d, "missing")
	}
}

func TestRunSourceMutualExclusion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"kernel":"irs-1","source":"x"}`,
		`{"ir":{"name":"x"},"source":"x"}`,
		`{}`,
	} {
		code, eb := postRaw(t, ts, body)
		if code != http.StatusBadRequest || !strings.Contains(eb.Error, "exactly one") {
			t.Errorf("%s: got %d %q, want 400 mentioning \"exactly one\"", body, code, eb.Error)
		}
	}
}

// TestRunSourceDepthBound: pathological nesting inside a request-sized
// body must come back as a positioned 400, not a stack overflow.
func TestRunSourceDepthBound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	depth := 5000
	src := "array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = " +
		strings.Repeat("(", depth) + "1.0" + strings.Repeat(")", depth) + ";\n}"
	code, eb := postRaw(t, ts, mustBody(t, RunRequest{Source: src, Cores: 2}))
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
	if len(eb.SourceDiagnostics) == 0 || !strings.Contains(eb.Error, "depth") {
		t.Errorf("depth blowup not diagnosed: %q %+v", eb.Error, eb.SourceDiagnostics)
	}
}

// TestRunSourceNodeBudget: amplification past the body-size cap — a splat
// expanding to tens of millions of elements, and a megabyte-scale token
// run — must both die on the node budget with a 400.
func TestRunSourceNodeBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	splat := "array f64 a[] = {1.0; 50000000};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0;\n}"
	code, eb := postRaw(t, ts, mustBody(t, RunRequest{Source: splat, Cores: 2}))
	if code != http.StatusBadRequest || !strings.Contains(eb.Error, "budget") {
		t.Errorf("splat blowup: got %d %q, want 400 mentioning the budget", code, eb.Error)
	}

	var b strings.Builder
	b.WriteString("array f64 a[] = {1.0};\nfor i = 0; i < 1; i += 1 {\n a[i] = 1.0")
	for b.Len() < 2<<20 { // ~500k '+ 1.0' tokens, past the 200k node budget
		b.WriteString(" + 1.0")
	}
	b.WriteString(";\n}")
	code, eb = postRaw(t, ts, mustBody(t, RunRequest{Source: b.String(), Cores: 2}))
	if code != http.StatusBadRequest || !strings.Contains(eb.Error, "budget") {
		t.Errorf("token run: got %d %q, want 400 mentioning the budget", code, eb.Error)
	}
}

// TestRunSourceBodyLimit: the byte cap fires before the parser ever sees
// an oversized program.
func TestRunSourceBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 4096})
	src := "array f64 a[] = {" + strings.Repeat("1.0, ", 4096) + "1.0};"
	code, eb := postRaw(t, ts, mustBody(t, RunRequest{Source: src, Cores: 2}))
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d %q, want 413", code, eb.Error)
	}
}

// TestBatchSourceItems: source works per batch item, and a malformed item
// carries its diagnostics on its own NDJSON line without disturbing
// siblings.
func TestBatchSourceItems(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	k, err := kernels.ByName("sphot-2")
	if err != nil {
		t.Fatal(err)
	}
	good := frontend.Format(k.Build())
	bad := "for i = 0; i < 1; i += 1 {\n t = 1.0 +;\n}"

	code, items, trailer := postBatch(t, ts, BatchRequest{Items: []RunRequest{
		{Source: good, Cores: 2},
		{Source: bad, Cores: 2},
	}})
	if code != 200 || trailer == nil {
		t.Fatalf("batch: %d, trailer %v", code, trailer)
	}
	if trailer.OK != 1 || trailer.Failed != 1 {
		t.Fatalf("trailer = %+v, want 1 ok / 1 failed", trailer)
	}
	for _, it := range items {
		switch it.Index {
		case 0:
			if it.Status != 200 || it.Result == nil || it.Result.Kernel != "sphot-2" {
				t.Errorf("good item: %+v", it)
			}
		case 1:
			if it.Status != http.StatusBadRequest || len(it.SourceDiagnostics) == 0 {
				t.Errorf("bad item lost its diagnostics: %+v", it)
			}
		}
	}
}
