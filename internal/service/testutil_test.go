package service

import (
	"os"
	"path/filepath"

	"fgp/internal/ir"
)

// readGoldenAttribution loads the experiments package's pinned sphot-1
// stall report — the bytes /v1/attribution must reproduce exactly.
func readGoldenAttribution() ([]byte, error) {
	return os.ReadFile(filepath.Join("..", "experiments", "testdata", "golden_attribution.txt"))
}

// uniqueLoop builds a small kernel whose content address differs per seed:
// the array data (and so the canonical encoding) depends on it. trips
// controls how long the simulation runs.
func uniqueLoop(seed int64, trips int64) *ir.Loop {
	b := ir.NewBuilder("soak", "i", 0, trips, 1)
	n := trips
	if n > 64 {
		n = 64
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(seed+int64(i))*0.5 + 1
	}
	b.ArrayF("a", data)
	b.ArrayF("o", make([]float64, n))
	s := b.ScalarF("scale", float64(seed%7)+0.5)
	i := b.Idx()
	idx := b.Def("j", ir.RemE(i, ir.I(n)))
	x := b.Def("x", ir.MulE(ir.LDF("a", idx), s))
	b.Def("y", ir.AddE(ir.SqrtE(ir.AbsE(x)), ir.F(1)))
	b.StoreF("o", idx, b.T("y"))
	return b.MustBuild()
}
