// Package search treats partitioning as a search problem. The paper commits
// to one greedy code-graph merging heuristic (internal/codegraph) and every
// downstream speedup inherits its choices; this package explores the
// neighborhood of that heuristic's partition with the simulator itself as
// the objective function, so the final partition is chosen by measured
// cycles rather than by a static affinity score.
//
// The explorer is seeded with the paper-heuristic partition and is
// *never worse by construction*: the seed is the first candidate evaluated,
// and the incumbent only changes when a candidate strictly beats it (ties
// resolve to the lexicographically smallest canonical partition encoding,
// which keeps the argmax deterministic). Two phases spend a shared
// evaluation budget:
//
//   - Beam search over a load-balance-aware move set: migrate a unit from
//     the costliest partition to the cheapest (the imbalance move), swap
//     boundary units between the two most-imbalanced partitions, and split
//     a merged cluster by peeling its cheapest unit onto every other core.
//     Moves operate on colocation units — fiber groups the dependence
//     analysis requires to stay together — so no candidate can violate a
//     hard placement constraint.
//   - Simulated-annealing refinement from the beam's incumbent: randomized
//     migrate/swap proposals drawn from a seeded generator, accepted by the
//     Metropolis rule on simulated cycles with a geometric cooling
//     schedule.
//
// Candidates are scored by an Objective the caller supplies; the compiler
// driver (internal/core) builds one that compiles the candidate through the
// normal outline → static-verify path and simulates it on the threaded
// engine, so an illegal partition is rejected by internal/verify before it
// is ever scored and a scored candidate is always a runnable program.
//
// Determinism: the proposal sequence depends only on (seed partition,
// Options.Seed, Options.Budget); every batch's random draws happen before
// any candidate in the batch is scored, and scored batches are folded in
// generation order. Workers therefore changes wall-clock only — the best
// partition and every reported statistic are byte-identical for any worker
// count, which the seeded-determinism tests pin under -race.
package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"fgp/internal/codegraph"
	"fgp/internal/deps"
)

// Objective scores one candidate partition, returning its simulated cycle
// count. An error marks the candidate infeasible (verifier rejection, trap,
// resource bound); the explorer discards it without updating the incumbent.
// Objectives must be safe for concurrent calls when Options.Workers > 1.
type Objective func(ctx context.Context, cand *codegraph.Result) (int64, error)

// Options bounds and seeds one Refine run.
type Options struct {
	// Seed drives every random draw of the annealing phase. Same seed,
	// same budget => byte-identical outcome.
	Seed int64
	// Budget is the maximum number of objective evaluations, including the
	// seed partition's baseline evaluation. 0 selects DefaultBudget.
	Budget int
	// Beam is the beam width of the first phase (0 selects DefaultBeam).
	Beam int
	// Workers bounds concurrent objective evaluations (<= 1 is serial).
	// It cannot change the search outcome, only host time.
	Workers int
	// Observer, when set, is called for every candidate the explorer
	// evaluates — seed included, winners and losers alike — with the
	// candidate's score or its rejection error. Calls happen on the
	// explorer goroutine in deterministic generation order.
	Observer func(cand *codegraph.Result, cycles int64, err error)
}

// DefaultBudget is the evaluation budget when Options.Budget is zero.
const DefaultBudget = 64

// DefaultBeam is the beam width when Options.Beam is zero.
const DefaultBeam = 4

// Result reports one Refine run.
type Result struct {
	// Best is the winning partition in canonical form. It equals the seed
	// partition when no explored candidate strictly improved on it.
	Best *codegraph.Result
	// BestCycles and SeedCycles are the simulated cycle counts of the
	// winner and of the heuristic seed; BestCycles <= SeedCycles always.
	BestCycles int64
	SeedCycles int64
	// Explored counts objective evaluations spent (seed included).
	Explored int
	// Rejected counts evaluated candidates the objective refused.
	Rejected int
	// Improved reports whether Best strictly beats the seed.
	Improved bool
}

// unit is an atomic placement group: one or more fibers the dependence
// analysis colocates (sibling branch arms), moved as a whole.
type unit struct {
	fibers []int32
	cost   int64
}

// state is one candidate: an assignment of units to partition labels. The
// canonical Result (and its key) is derived, never stored mutated.
type state struct {
	assign []int32
	res    *codegraph.Result
	key    string
	cycles int64
	err    error
}

type problem struct {
	units      []unit
	fiber2unit []int
	nparts     int
	// adj[u][v] is the undirected dependence-edge multiplicity between
	// units u and v, for boundary-aware swap ordering.
	adj  [][]int32
	obj  Objective
	opt  Options
	seen map[string]bool

	explored, rejected int
	best               *state
	observer           func(*state)
}

// Refine explores partitions of the analyzed function around the heuristic
// seed, scoring candidates with obj, and returns the best partition found.
// fiberCost[i] is the estimated compute cost of fiber i (the same costs the
// merge heuristics used); it orders the load-balance moves and fills the
// Cost field of candidate Results. Refine returns an error only for an
// invalid setup, a cancelled context, or a seed partition the objective
// itself cannot score.
func Refine(ctx context.Context, info *deps.Info, seed *codegraph.Result, fiberCost []int64, obj Objective, opt Options) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("search: objective is required")
	}
	if len(seed.Parts) == 0 {
		return nil, fmt.Errorf("search: seed partition is empty")
	}
	if opt.Budget <= 0 {
		opt.Budget = DefaultBudget
	}
	if opt.Beam <= 0 {
		opt.Beam = DefaultBeam
	}

	p := &problem{nparts: len(seed.Parts), obj: obj, opt: opt, seen: map[string]bool{}}
	p.buildUnits(info, seed, fiberCost)
	if opt.Observer != nil {
		p.observer = func(st *state) { opt.Observer(st.res, st.cycles, st.err) }
	}

	seedSt := p.fromParts(seed)
	p.seen[seedSt.key] = true
	if err := p.eval(ctx, []*state{seedSt}); err != nil {
		return nil, err
	}
	if seedSt.err != nil {
		// The heuristic partition itself cannot be scored (the kernel traps,
		// or a machine bound rejects it). There is no objective to optimize:
		// report the seed as the degenerate winner.
		return &Result{Best: seedSt.res, BestCycles: 0, SeedCycles: 0,
			Explored: p.explored, Rejected: p.rejected}, seedSt.err
	}
	p.best = seedSt
	seedCycles := seedSt.cycles

	// Phase 1: beam search until the move set dries up, improvement stalls,
	// or the beam share of the budget is spent.
	beamBudget := opt.Budget * 3 / 5
	if err := p.beamPhase(ctx, seedSt, beamBudget); err != nil {
		return nil, err
	}
	// Phase 2: simulated annealing from the incumbent with the rest.
	if err := p.annealPhase(ctx); err != nil {
		return nil, err
	}

	return &Result{
		Best:       p.best.res,
		BestCycles: p.best.cycles,
		SeedCycles: seedCycles,
		Explored:   p.explored,
		Rejected:   p.rejected,
		Improved:   p.best.cycles < seedCycles,
	}, nil
}

// buildUnits groups fibers into colocation units (union-find over the
// dependence analysis' Colocate pairs) and aggregates the edge multiset to
// unit granularity.
func (p *problem) buildUnits(info *deps.Info, seed *codegraph.Result, fiberCost []int64) {
	nf := len(seed.PartOf)
	parent := make([]int32, nf)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, pair := range info.Colocate {
		a, b := find(pair[0]), find(pair[1])
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	root2unit := map[int32]int{}
	fiber2unit := make([]int, nf)
	for f := 0; f < nf; f++ {
		r := find(int32(f))
		u, ok := root2unit[r]
		if !ok {
			u = len(p.units)
			root2unit[r] = u
			p.units = append(p.units, unit{})
		}
		fiber2unit[f] = u
		p.units[u].fibers = append(p.units[u].fibers, int32(f))
		if f < len(fiberCost) {
			p.units[u].cost += fiberCost[f]
		}
	}
	p.fiber2unit = fiber2unit
	p.adj = make([][]int32, len(p.units))
	for i := range p.adj {
		p.adj[i] = make([]int32, len(p.units))
	}
	for _, fe := range info.FiberEdges() {
		a, b := fiber2unit[fe.From], fiber2unit[fe.To]
		if a != b {
			p.adj[a][b] += int32(fe.Count)
			p.adj[b][a] += int32(fe.Count)
		}
	}
}

// fromParts converts a Result into a unit assignment state.
func (p *problem) fromParts(r *codegraph.Result) *state {
	assign := make([]int32, len(p.units))
	for pi, fibers := range r.Parts {
		for _, f := range fibers {
			assign[p.fiber2unit[f]] = int32(pi)
		}
	}
	return p.finish(assign)
}

// finish canonicalizes an assignment into a state: partitions ordered by
// smallest fiber id (the codegraph.Merge output convention, which fixes
// which partition the primary core runs), fibers ascending within each.
func (p *problem) finish(assign []int32) *state {
	groups := make([][]int32, p.nparts)
	costs := make([]int64, p.nparts)
	for u, lbl := range assign {
		groups[lbl] = append(groups[lbl], p.units[u].fibers...)
		costs[lbl] += p.units[u].cost
	}
	type part struct {
		fibers []int32
		cost   int64
	}
	parts := make([]part, 0, p.nparts)
	for i, g := range groups {
		if len(g) == 0 {
			return nil // structural reject: a core with no work
		}
		sort.Slice(g, func(a, b int) bool { return g[a] < g[b] })
		parts = append(parts, part{g, costs[i]})
	}
	sort.Slice(parts, func(a, b int) bool { return parts[a].fibers[0] < parts[b].fibers[0] })
	res := &codegraph.Result{PartOf: make([]int32, len(p.fiber2unit))}
	for pi, pt := range parts {
		res.Parts = append(res.Parts, pt.fibers)
		res.Cost = append(res.Cost, pt.cost)
		for _, f := range pt.fibers {
			res.PartOf[f] = int32(pi)
		}
	}
	// Re-derive the assignment against canonical labels so move generation
	// is independent of the label history that produced this state.
	canon := make([]int32, len(p.units))
	for u := range p.units {
		canon[u] = res.PartOf[p.units[u].fibers[0]]
	}
	return &state{assign: canon, res: res, key: res.CanonicalKey()}
}

// propose returns finish(assign with u moved to part dst), or nil when the
// move is structurally illegal or already explored.
func (p *problem) propose(st *state, mutate func(assign []int32)) *state {
	assign := append([]int32(nil), st.assign...)
	mutate(assign)
	cand := p.finish(assign)
	if cand == nil || p.seen[cand.key] {
		return nil
	}
	p.seen[cand.key] = true
	return cand
}

// partOrder returns partition labels of st ordered by cost descending
// (ties to the smaller label), plus the per-part unit lists.
func (p *problem) partOrder(st *state) (byCostDesc []int32, members [][]int) {
	costs := make([]int64, p.nparts)
	members = make([][]int, p.nparts)
	for u, lbl := range st.assign {
		costs[lbl] += p.units[u].cost
		members[lbl] = append(members[lbl], u)
	}
	for lbl := 0; lbl < p.nparts; lbl++ {
		byCostDesc = append(byCostDesc, int32(lbl))
		// Units within a part ordered by cost descending, id ascending.
		m := members[lbl]
		sort.Slice(m, func(a, b int) bool {
			if p.units[m[a]].cost != p.units[m[b]].cost {
				return p.units[m[a]].cost > p.units[m[b]].cost
			}
			return m[a] < m[b]
		})
	}
	sort.Slice(byCostDesc, func(a, b int) bool {
		if costs[byCostDesc[a]] != costs[byCostDesc[b]] {
			return costs[byCostDesc[a]] > costs[byCostDesc[b]]
		}
		return byCostDesc[a] < byCostDesc[b]
	})
	return byCostDesc, members
}

// neighbors generates up to cap unseen candidates from st, in a fixed
// deterministic order: imbalance migrations first (costliest partition
// feeds the cheapest), then boundary swaps between the two most imbalanced
// partitions, then cluster splits (cheapest unit of the costliest
// partition offered to every other core).
func (p *problem) neighbors(st *state, cap int) []*state {
	if p.nparts < 2 {
		return nil
	}
	order, members := p.partOrder(st)
	var out []*state
	add := func(cand *state) bool {
		if cand != nil {
			out = append(out, cand)
		}
		return len(out) >= cap
	}

	// Migrations: walk (src, dst) pairs from most-imbalanced outward.
	for si := 0; si < len(order); si++ {
		src := order[si]
		if len(members[src]) < 2 {
			continue // would empty the source core
		}
		for di := len(order) - 1; di >= 0; di-- {
			dst := order[di]
			if dst == src {
				continue
			}
			for _, u := range members[src] {
				cand := p.propose(st, func(a []int32) { a[u] = dst })
				if add(cand) {
					return out
				}
				break // one unit per (src, dst) pair in the beam move set
			}
		}
	}

	// Boundary swaps between the costliest and cheapest partitions: prefer
	// unit pairs connected by dependence edges (swapping them moves the
	// communication boundary), heaviest unit out of the hot partition.
	hi, lo := order[0], order[len(order)-1]
	if hi != lo {
		for _, u := range members[hi] {
			for _, v := range members[lo] {
				if p.units[u].cost <= p.units[v].cost && p.adj[u][v] == 0 {
					continue
				}
				cand := p.propose(st, func(a []int32) { a[u], a[v] = lo, hi })
				if add(cand) {
					return out
				}
			}
		}
	}

	// Splits: peel the cheapest unit off the costliest mergeable partition
	// and offer it to every other core, not just the cheapest.
	for _, src := range order {
		if len(members[src]) < 2 {
			continue
		}
		cheapest := members[src][len(members[src])-1]
		for di := 0; di < len(order); di++ {
			if order[di] == src {
				continue
			}
			dst := order[di]
			cand := p.propose(st, func(a []int32) { a[cheapest] = dst })
			if add(cand) {
				return out
			}
		}
		break
	}
	return out
}

// beamPhase runs beam search, spending at most budget evaluations.
func (p *problem) beamPhase(ctx context.Context, seed *state, budget int) error {
	beam := []*state{seed}
	stall := 0
	for budget > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		perState := 3 * p.opt.Beam / len(beam)
		if perState < 2 {
			perState = 2
		}
		var cands []*state
		for _, st := range beam {
			n := p.neighbors(st, perState)
			cands = append(cands, n...)
		}
		if len(cands) == 0 {
			return nil
		}
		if len(cands) > budget {
			cands = cands[:budget]
		}
		if err := p.eval(ctx, cands); err != nil {
			return err
		}
		budget -= len(cands)

		prevBest := p.best
		pool := append(append([]*state(nil), beam...), scoredOK(cands)...)
		sortStates(pool)
		if len(pool) > p.opt.Beam {
			pool = pool[:p.opt.Beam]
		}
		beam = pool
		p.updateBest(cands)
		if p.best == prevBest {
			stall++
			if stall >= 2 {
				return nil
			}
		} else {
			stall = 0
		}
	}
	return nil
}

// annealPhase spends the remaining budget on Metropolis-accepted random
// moves from the incumbent. Proposals for a batch (moves and acceptance
// uniforms alike) are drawn before any scoring, and batches fold in
// generation order, so the outcome is independent of Workers.
func (p *problem) annealPhase(ctx context.Context) error {
	rng := rand.New(rand.NewSource(p.opt.Seed))
	cur := p.best
	temp := float64(cur.cycles) / 50
	if temp < 1 {
		temp = 1
	}
	const batchSize = 6
	misses := 0
	for p.explored < p.opt.Budget {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := p.opt.Budget - p.explored
		if n > batchSize {
			n = batchSize
		}
		type proposal struct {
			st *state
			u  float64
		}
		var batch []proposal
		for i := 0; i < 4*n && len(batch) < n; i++ {
			st := p.randomMove(rng, cur)
			u := rng.Float64()
			if st != nil {
				batch = append(batch, proposal{st, u})
			}
		}
		if len(batch) == 0 {
			misses++
			if misses >= 3 {
				return nil // neighborhood exhausted
			}
			continue
		}
		misses = 0
		sts := make([]*state, len(batch))
		for i := range batch {
			sts[i] = batch[i].st
		}
		if err := p.eval(ctx, sts); err != nil {
			return err
		}
		for _, pr := range batch {
			if pr.st.err != nil {
				continue
			}
			delta := float64(pr.st.cycles - cur.cycles)
			if delta < 0 || pr.u < math.Exp(-delta/temp) {
				cur = pr.st
				break // one acceptance per batch keeps the walk sequential
			}
		}
		p.updateBest(sts)
		temp *= 0.85
		if temp < 1 {
			temp = 1
		}
	}
	return nil
}

// randomMove draws one random migrate or swap from st (nil when the draw
// is structurally illegal or already seen).
func (p *problem) randomMove(rng *rand.Rand, st *state) *state {
	if len(p.units) < 2 || p.nparts < 2 {
		return nil
	}
	if rng.Intn(2) == 0 {
		// Migrate a random unit to a random other partition.
		u := rng.Intn(len(p.units))
		dst := int32(rng.Intn(p.nparts))
		if st.assign[u] == dst {
			return nil
		}
		// Reject emptying moves cheaply before canonicalization.
		cnt := 0
		for _, l := range st.assign {
			if l == st.assign[u] {
				cnt++
			}
		}
		if cnt < 2 {
			return nil
		}
		return p.propose(st, func(a []int32) { a[u] = dst })
	}
	u := rng.Intn(len(p.units))
	v := rng.Intn(len(p.units))
	if u == v || st.assign[u] == st.assign[v] {
		return nil
	}
	return p.propose(st, func(a []int32) { a[u], a[v] = a[v], a[u] })
}

// eval scores candidates with the objective, Workers at a time. Observer
// callbacks and all bookkeeping happen on the calling goroutine in slice
// order after every score is in.
func (p *problem) eval(ctx context.Context, cands []*state) error {
	workers := p.opt.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for _, st := range cands {
			st.cycles, st.err = p.obj(ctx, st.res)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					cands[i].cycles, cands[i].err = p.obj(ctx, cands[i].res)
				}
			}()
		}
		for i := range cands {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, st := range cands {
		p.explored++
		if st.err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			p.rejected++
		}
		if p.observer != nil {
			p.observer(st)
		}
	}
	return nil
}

// updateBest folds scored candidates into the incumbent in slice order:
// strictly fewer cycles wins; equal cycles resolve to the smaller canonical
// key, so the argmax never depends on evaluation interleaving.
func (p *problem) updateBest(cands []*state) {
	for _, st := range cands {
		if st.err != nil {
			continue
		}
		if st.cycles < p.best.cycles || (st.cycles == p.best.cycles && st.key < p.best.key) {
			p.best = st
		}
	}
}

// scoredOK filters out rejected candidates.
func scoredOK(cands []*state) []*state {
	out := cands[:0:0]
	for _, st := range cands {
		if st.err == nil {
			out = append(out, st)
		}
	}
	return out
}

// sortStates orders by (cycles, canonical key) ascending.
func sortStates(sts []*state) {
	sort.Slice(sts, func(a, b int) bool {
		if sts[a].cycles != sts[b].cycles {
			return sts[a].cycles < sts[b].cycles
		}
		return sts[a].key < sts[b].key
	})
}
