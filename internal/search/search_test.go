// Tests for the partition searcher. The load-bearing property (demanded by
// the experiment design) is that correctness is structural, not sampled:
// every candidate the explorer ever emits — not just the winner — compiles
// through the outline → Validate → verify.Check gate and simulates without a
// trap, across the whole kernel catalog and 100+ generated kernels. The
// negative side is pinned too: a hand-built cycle-creating merge is rejected
// by the gate with its specific diagnostic, and a tampered program is
// rejected by the static verifier with its specific check kind, so the gate
// provably has teeth.
package search_test

import (
	"context"
	"strings"
	"testing"

	"fgp/internal/codegraph"
	"fgp/internal/deps"
	"fgp/internal/fiber"
	"fgp/internal/fuzz"
	"fgp/internal/ir"
	"fgp/internal/isa"
	"fgp/internal/kernels"
	"fgp/internal/outline"
	"fgp/internal/profile"
	"fgp/internal/search"
	"fgp/internal/sim"
	"fgp/internal/tac"
	"fgp/internal/verify"
)

// pipeline carries one kernel's front-end products up to the point where
// partitions diverge, mirroring core.CompileContext exactly.
type pipeline struct {
	loop      *ir.Loop
	fn        *tac.Fn
	info      *deps.Info
	mc        sim.Config
	instr     func(*tac.Instr) int64
	seed      *codegraph.Result
	fiberCost []int64
}

func lowerKernel(t *testing.T, l *ir.Loop, cores int) *pipeline {
	t.Helper()
	fn, err := tac.Lower(l)
	if err != nil {
		t.Fatalf("%s: lower: %v", l.Name, err)
	}
	set, err := fiber.Partition(fn)
	if err != nil {
		t.Fatalf("%s: fiber: %v", l.Name, err)
	}
	info, err := deps.Analyze(fn, set)
	if err != nil {
		t.Fatalf("%s: deps: %v", l.Name, err)
	}
	mc := sim.DefaultConfig(cores)
	instr := profile.InstrCost(mc.Cost, nil)
	seed, err := codegraph.Merge(info, codegraph.Options{
		Targets: cores, Weights: codegraph.DefaultWeights(), InstrCost: instr,
	})
	if err != nil {
		t.Fatalf("%s: merge: %v", l.Name, err)
	}
	fiberCost := make([]int64, len(seed.PartOf))
	for i := range fn.Instrs {
		fiberCost[fn.Instrs[i].Fiber] += instr(fn.Instrs[i])
	}
	return &pipeline{loop: l, fn: fn, info: info, mc: mc, instr: instr, seed: seed, fiberCost: fiberCost}
}

// gate compiles one candidate through the same outline → Validate →
// verify.Check sequence core.CompileContext uses, returning the compiled
// programs or the first rejection.
func (p *pipeline) gate(cand *codegraph.Result) (*outline.Compiled, error) {
	compiled, err := outline.Generate(p.fn, p.info, cand, outline.Options{
		MachineCores: p.mc.Cores, InstrCost: p.instr, TokenDepthCap: 8,
	})
	if err != nil {
		return nil, err
	}
	for _, prog := range compiled.Programs {
		if err := prog.Validate(p.mc.Cores); err != nil {
			return nil, err
		}
	}
	if err := verify.Check(verify.Input{
		Programs: compiled.Programs, Cores: p.mc.Cores, QueueLen: p.mc.QueueLen,
		Fn: p.fn, Deps: p.info, Parts: cand,
	}); err != nil {
		return nil, err
	}
	return compiled, nil
}

// objective is the real thing: gate then threaded-engine simulation.
func (p *pipeline) objective() search.Objective {
	return func(ctx context.Context, cand *codegraph.Result) (int64, error) {
		compiled, err := p.gate(cand)
		if err != nil {
			return 0, err
		}
		cfg := p.mc
		cfg.Engine = sim.EngineThreaded
		m, err := sim.New(compiled.Programs, outline.BuildMemory(p.loop), cfg)
		if err != nil {
			return 0, err
		}
		res, err := m.RunContext(ctx)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
}

// checkCandidate asserts the structural invariants every emitted candidate
// must satisfy: a true partition (each fiber exactly once, no empty part,
// PartOf consistent), canonical ordering (parts by smallest fiber, fibers
// ascending within a part), and every colocation pair co-resident.
func checkCandidate(t *testing.T, name string, info *deps.Info, nfibers int, cand *codegraph.Result) {
	t.Helper()
	if len(cand.PartOf) != nfibers {
		t.Fatalf("%s: candidate covers %d fibers, want %d", name, len(cand.PartOf), nfibers)
	}
	seen := make([]bool, nfibers)
	prevMin := int32(-1)
	for pi, part := range cand.Parts {
		if len(part) == 0 {
			t.Fatalf("%s: empty partition %d", name, pi)
		}
		if part[0] <= prevMin {
			t.Fatalf("%s: partitions not ordered by smallest fiber: part %d starts at %d after %d",
				name, pi, part[0], prevMin)
		}
		prevMin = part[0]
		prev := int32(-1)
		for _, f := range part {
			if f <= prev {
				t.Fatalf("%s: part %d fibers not ascending: %v", name, pi, part)
			}
			prev = f
			if seen[f] {
				t.Fatalf("%s: fiber %d appears twice", name, f)
			}
			seen[f] = true
			if cand.PartOf[f] != int32(pi) {
				t.Fatalf("%s: PartOf[%d]=%d but fiber listed in part %d", name, f, cand.PartOf[f], pi)
			}
		}
	}
	for f, ok := range seen {
		if !ok {
			t.Fatalf("%s: fiber %d unassigned", name, f)
		}
	}
	for _, pair := range info.Colocate {
		if cand.PartOf[pair[0]] != cand.PartOf[pair[1]] {
			t.Fatalf("%s: colocation pair (%d,%d) split across parts %d/%d",
				name, pair[0], pair[1], cand.PartOf[pair[0]], cand.PartOf[pair[1]])
		}
	}
}

// refineChecked runs one Refine with an observer that asserts every emitted
// candidate verifies and scores, then asserts the run-level invariants.
func refineChecked(t *testing.T, name string, p *pipeline, opt search.Options) *search.Result {
	t.Helper()
	candidates := 0
	opt.Observer = func(cand *codegraph.Result, cycles int64, err error) {
		candidates++
		if err != nil {
			t.Fatalf("%s: candidate %d rejected by the gate: %v", name, candidates, err)
		}
		if cycles <= 0 {
			t.Fatalf("%s: candidate %d scored nonpositive cycles %d", name, candidates, cycles)
		}
		checkCandidate(t, name, p.info, len(p.seed.PartOf), cand)
	}
	r, err := search.Refine(context.Background(), p.info, p.seed, p.fiberCost, p.objective(), opt)
	if err != nil {
		t.Fatalf("%s: Refine: %v", name, err)
	}
	if r.Rejected != 0 {
		t.Fatalf("%s: %d candidates rejected; the move set must only emit legal partitions", name, r.Rejected)
	}
	if r.Explored != candidates {
		t.Fatalf("%s: Explored=%d but observer saw %d candidates", name, r.Explored, candidates)
	}
	if r.BestCycles > r.SeedCycles {
		t.Fatalf("%s: searched partition worse than heuristic seed: %d > %d", name, r.BestCycles, r.SeedCycles)
	}
	if r.Improved != (r.BestCycles < r.SeedCycles) {
		t.Fatalf("%s: Improved=%v inconsistent with cycles %d vs %d", name, r.Improved, r.BestCycles, r.SeedCycles)
	}
	checkCandidate(t, name+" (winner)", p.info, len(p.seed.PartOf), r.Best)
	return r
}

// TestEveryCandidateVerifies sweeps the full kernel catalog: every candidate
// the explorer emits at 2 and 4 cores passes the verify gate and simulates,
// zero rejections, and the winner is never worse than the heuristic seed.
func TestEveryCandidateVerifies(t *testing.T) {
	coreCounts := []int{2, 4}
	budget := 24
	if testing.Short() {
		coreCounts = []int{2}
		budget = 12
	}
	for _, k := range kernels.All() {
		for _, cores := range coreCounts {
			p := lowerKernel(t, k.Build(), cores)
			if len(p.seed.Parts) < 2 {
				continue // nothing to search at one effective core
			}
			refineChecked(t, k.Name, p, search.Options{Seed: 1, Budget: budget})
		}
	}
}

// TestGeneratedKernelCandidatesVerify runs the same every-candidate property
// over 100+ generator seeds — kernels with shapes no human wrote — at 3
// cores, covering odd colocation structures the catalog lacks.
func TestGeneratedKernelCandidatesVerify(t *testing.T) {
	n := 110
	if testing.Short() {
		n = 25
	}
	for seed := 0; seed < n; seed++ {
		l := fuzz.Generate(uint64(seed), fuzz.GenConfig{})
		p := lowerKernel(t, l, 3)
		if len(p.seed.Parts) < 2 {
			continue
		}
		refineChecked(t, l.Name, p, search.Options{Seed: int64(seed), Budget: 6})
	}
}

// TestIllegalMergeRejectedByGate pins the negative case the property tests
// cannot reach (the move set never produces it): a hand-built cycle-creating
// merge — sphot-2's fibers dealt round-robin across 2 cores, which places a
// dequeue ahead of its enqueue on the branchy path — must be rejected by the
// compile gate with the cross-branch cycle diagnostic, proving illegal
// partitions cannot reach the simulator, let alone the incumbent.
func TestIllegalMergeRejectedByGate(t *testing.T) {
	k, err := kernels.ByName("sphot-2")
	if err != nil {
		t.Fatal(err)
	}
	p := lowerKernel(t, k.Build(), 2)
	nf := len(p.seed.PartOf)
	bad := &codegraph.Result{PartOf: make([]int32, nf), Parts: make([][]int32, 2), Cost: make([]int64, 2)}
	for f := 0; f < nf; f++ {
		pi := int32(f % 2)
		bad.PartOf[f] = pi
		bad.Parts[pi] = append(bad.Parts[pi], int32(f))
		bad.Cost[pi] += p.fiberCost[f]
	}
	_, err = p.gate(bad)
	if err == nil {
		t.Fatal("cycle-creating merge passed the compile gate")
	}
	for _, want := range []string{"would dequeue", "before its enqueue"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("gate rejection lost its diagnostic: want substring %q in %q", want, err)
		}
	}
}

// TestTamperedProgramRejectedByVerifier pins the static verifier's share of
// the gate: swapping two same-queue enqueues in an otherwise-legal compiled
// program (the kind of ordering bug a broken partition move could induce
// downstream) must trip verify.Check with the fifo-order diagnostic.
func TestTamperedProgramRejectedByVerifier(t *testing.T) {
	k, err := kernels.ByName("lammps-1")
	if err != nil {
		t.Fatal(err)
	}
	p := lowerKernel(t, k.Build(), 2)
	compiled, err := p.gate(p.seed)
	if err != nil {
		t.Fatalf("heuristic partition rejected: %v", err)
	}
	// Find, in deterministic instruction order, the first queue that
	// receives two enqueues on core 0 and swap them.
	prog := compiled.Programs[0]
	firstEnq := map[int32]int{}
	i, j := -1, -1
	for idx, ins := range prog.Instrs {
		if ins.Op != isa.Enq {
			continue
		}
		if prev, ok := firstEnq[ins.Q]; ok {
			i, j = prev, idx
			break
		}
		firstEnq[ins.Q] = idx
	}
	if i < 0 {
		t.Fatal("no queue receives two enqueues on core 0; pick another kernel")
	}
	prog.Instrs[i], prog.Instrs[j] = prog.Instrs[j], prog.Instrs[i]
	err = verify.Check(verify.Input{
		Programs: compiled.Programs, Cores: p.mc.Cores, QueueLen: p.mc.QueueLen,
		Fn: p.fn, Deps: p.info, Parts: p.seed,
	})
	if err == nil {
		t.Fatal("verifier accepted a program with reordered same-queue enqueues")
	}
	if !verify.HasCheck(err, "fifo-order") {
		t.Fatalf("want fifo-order diagnostic, got: %v", err)
	}
	if !strings.Contains(err.Error(), "enqueue/dequeue sequences disagree") {
		t.Fatalf("fifo-order diagnostic lost its message: %v", err)
	}
}

// TestSeededDeterminism pins the reproducibility contract: same seed and
// budget give a byte-identical winner and identical statistics across
// repeated runs and across worker counts (under -race in CI). Workers may
// only change wall-clock time, never the outcome.
func TestSeededDeterminism(t *testing.T) {
	k, err := kernels.ByName("umt2k-3")
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		key                string
		best, seed         int64
		explored, rejected int
		improved           bool
	}
	run := func(workers int) outcome {
		p := lowerKernel(t, k.Build(), 4)
		r := refineChecked(t, k.Name, p, search.Options{Seed: 11, Budget: 32, Workers: workers})
		return outcome{r.Best.CanonicalKey(), r.BestCycles, r.SeedCycles, r.Explored, r.Rejected, r.Improved}
	}
	want := run(1)
	if want.key == "" {
		t.Fatal("empty canonical key")
	}
	for _, workers := range []int{1, 2, 4} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d changed the outcome:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestSeedFallbackNeverWorse: even with a budget of 1 (seed evaluation only)
// the result is exactly the heuristic partition — the explorer cannot
// regress below its seed no matter how starved it is.
func TestSeedFallbackNeverWorse(t *testing.T) {
	k, err := kernels.ByName("lammps-2")
	if err != nil {
		t.Fatal(err)
	}
	p := lowerKernel(t, k.Build(), 4)
	r, err := search.Refine(context.Background(), p.info, p.seed, p.fiberCost, p.objective(), search.Options{Seed: 1, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Explored != 1 || r.Improved {
		t.Fatalf("budget 1 must evaluate exactly the seed: explored=%d improved=%v", r.Explored, r.Improved)
	}
	if r.Best.CanonicalKey() != p.seed.CanonicalKey() {
		t.Fatalf("budget-1 winner differs from seed:\n got %s\nwant %s", r.Best.CanonicalKey(), p.seed.CanonicalKey())
	}
	if r.BestCycles != r.SeedCycles {
		t.Fatalf("budget-1 cycles diverge: %d vs %d", r.BestCycles, r.SeedCycles)
	}
}
